package pathrouting

// Integration smoke tests: one test per experiment E1–E14, each running
// a miniature version of the experiment and asserting its headline
// inequality. cmd/paperrepro prints the full tables; these tests keep
// every experiment permanently wired into `go test`.

import (
	"math/rand"
	"testing"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/cdag"
	"pathrouting/internal/expansion"
	"pathrouting/internal/pebble"
	"pathrouting/internal/routing"
	"pathrouting/internal/schedule"
	"pathrouting/internal/viz"
)

func TestE1MeasuredIOAboveBound(t *testing.T) {
	alg := Strassen()
	res, err := MeasureIO(alg, 4, 48, MIN, ScheduleDFS)
	if err != nil {
		t.Fatal(err)
	}
	lb := SequentialLowerBound(alg, 16, 48)
	if float64(res.IO()) < lb {
		t.Errorf("measured %d below Θ-bound %v", res.IO(), lb)
	}
}

func TestE2Claim1Smoke(t *testing.T) {
	st, err := VerifyDecodingRouting(Strassen(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if int64(st.MaxVertexHits) > st.Bound {
		t.Errorf("claim 1: %v", st)
	}
}

func TestE3RoutingTheoremSmoke(t *testing.T) {
	for _, alg := range []*Algorithm{Strassen(), DisconnectedFast()} {
		k := 2
		if alg.A() >= 16 {
			k = 1
		}
		if _, err := VerifyRoutingTheorem(alg, k); err != nil {
			t.Errorf("%s: %v", alg.Name, err)
		}
	}
}

func TestE4E5LemmaSmoke(t *testing.T) {
	g, err := cdag.New(bilinear.Strassen(), 2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := routing.NewRouter(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.VerifyGuaranteedRouting(); err != nil {
		t.Error(err)
	}
	if err := r.VerifyChainUsage(); err != nil {
		t.Error(err)
	}
}

func TestE6HallSmoke(t *testing.T) {
	for _, alg := range Catalog() {
		if _, err := routing.NewBaseMatching(alg); err != nil {
			t.Errorf("%s: %v", alg.Name, err)
		}
	}
}

func TestE7Equation2Smoke(t *testing.T) {
	g, err := NewCDAG(Strassen(), 4)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := BuildSchedule(g, ScheduleDFS, nil)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := CertifySchedule(g, sched, CertifyOptions{K: 2, RelaxedTarget: 8})
	if err != nil {
		t.Fatal(err)
	}
	if cert.MinDeltaRatio < 1.0/12 {
		t.Errorf("ratio %v", cert.MinDeltaRatio)
	}
	s5, err := CertifySection5(g, append([]V(nil), sched...), 4, 1)
	if err == nil && s5.MinDeltaRatio < 1.0/22 {
		t.Errorf("section 5 ratio %v", s5.MinDeltaRatio)
	}
}

func TestE8InputDisjointSmoke(t *testing.T) {
	g, err := NewCDAG(Strassen(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if picked := g.InputDisjointCollection(2); len(picked) < 1 {
		t.Error("no input-disjoint subcomputations")
	}
}

func TestE9StructureSmoke(t *testing.T) {
	for _, alg := range Catalog() {
		if bilinear.Analyze(alg).DecodingHasCopy {
			t.Errorf("%s: Lemma 2 violated", alg.Name)
		}
	}
	if expansion.Analyze(DisconnectedFast()).EdgeExpansionUsable {
		t.Error("expansion must fail on disconnected56")
	}
}

func TestE10ParallelSmoke(t *testing.T) {
	cannon, err := RunCannon(256, 8)
	if err != nil {
		t.Fatal(err)
	}
	caps, err := RunCAPS(Strassen(), 256, 49, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if cannon.Bandwidth <= 0 || caps.Bandwidth <= 0 {
		t.Error("no bandwidth recorded")
	}
	lb := MemoryIndependentLowerBound(Strassen(), 256, 49)
	if float64(caps.Bandwidth) < lb {
		t.Errorf("CAPS %d below memory-independent bound %v", caps.Bandwidth, lb)
	}
}

func TestE11CrossoverSmoke(t *testing.T) {
	if CrossoverN(Strassen(), 1024) <= 1 {
		t.Error("no crossover")
	}
}

func TestE12FiguresSmoke(t *testing.T) {
	if len(viz.BaseGraphDOT(Strassen())) == 0 ||
		len(viz.Lemma4ASCII(3, 0, 1, 2, 2)) == 0 ||
		len(viz.RecursionDOT(Strassen())) == 0 {
		t.Error("figure renderers returned empty output")
	}
}

func TestE13ExtensionsSmoke(t *testing.T) {
	if _, err := VerifySection8(DisconnectedFast(), 1); err != nil {
		t.Error(err)
	}
	cmp, err := CompareMatchings(Strassen(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.GreedyOK && cmp.GreedyHits <= cmp.HallMaxHits {
		t.Log("greedy behaved at k=2 (bound break shows at k=3)")
	}
	if err := VerifyLemma6(Strassen(), nil, 0); err != nil {
		t.Error(err)
	}
	rng := rand.New(rand.NewSource(14))
	if _, err := RandomOrbitAlgorithm(rng, nil); err != nil {
		t.Error(err)
	}
	g, err := NewCDAG(Strassen(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RankBalancedPartition(g, 4, PartitionContiguous, nil); err != nil {
		t.Error(err)
	}
}

func TestE14LocalitySmoke(t *testing.T) {
	g, err := NewCDAG(Strassen(), 4)
	if err != nil {
		t.Fatal(err)
	}
	dfsS := schedule.RecursiveDFS(g)
	rankS := schedule.RankByRank(g)
	dfs, err := pebble.AnalyzeStackDistances(g, dfsS)
	if err != nil {
		t.Fatal(err)
	}
	rank, err := pebble.AnalyzeStackDistances(g, rankS)
	if err != nil {
		t.Fatal(err)
	}
	if dfs.MissesAt(128) >= rank.MissesAt(128) {
		t.Error("DFS locality not better than rank-major at M=128")
	}
	lvD, err := pebble.AnalyzeLiveness(g, dfsS)
	if err != nil {
		t.Fatal(err)
	}
	lvR, err := pebble.AnalyzeLiveness(g, rankS)
	if err != nil {
		t.Fatal(err)
	}
	if lvD.Peak >= lvR.Peak {
		t.Errorf("DFS peak %d not below rank peak %d", lvD.Peak, lvR.Peak)
	}
	// The parallel certificate is exercised here too (it belongs to the
	// Theorem 1 parallel family).
	owner := make([]int32, g.NumVertices())
	for v := range owner {
		owner[v] = int32(v % 2)
	}
	sched, err := BuildSchedule(g, ScheduleDFS, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CertifyParallel(g, sched, owner, 2, 2, 0, 8); err != nil {
		t.Error(err)
	}
}
