// Command pebblesim runs the red-blue pebble-game simulator on the CDAG
// G_r of a catalog algorithm and reports the measured I/O next to the
// paper's bounds.
//
// Usage:
//
//	pebblesim [-alg strassen] [-r 5] [-m 64] [-policy min] [-schedule dfs]
//	          [-debugaddr :8080] [-debughold 0]
//	pebblesim -sweep   # sweep M for the chosen graph and schedule
//
// With -debugaddr, a debug HTTP server exposes Prometheus-format
// /metrics (per-segment I/O histogram, read/write totals) and
// /debug/pprof; -debughold keeps it up after the run for scraping.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"
	"time"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/bounds"
	"pathrouting/internal/cdag"
	"pathrouting/internal/obs"
	"pathrouting/internal/pebble"
	"pathrouting/internal/schedule"
)

var (
	algName   = flag.String("alg", "strassen", "algorithm name from the catalog")
	r         = flag.Int("r", 5, "recursion depth (n = n0^r)")
	m         = flag.Int("m", 64, "cache size in words")
	policy    = flag.String("policy", "min", "replacement policy: min, lru, fifo")
	schedKind = flag.String("schedule", "dfs", "schedule: dfs, rank, random")
	sweep     = flag.Bool("sweep", false, "sweep cache sizes")
	seed      = flag.Int64("seed", 1, "seed for the random schedule")
	debugAddr = flag.String("debugaddr", "", "serve /metrics and /debug/pprof on this address (e.g. :8080)")
	debugHold = flag.Duration("debughold", 0, "with -debugaddr: keep the debug server up this long after the run")
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}

func main() {
	flag.Parse()
	var alg *bilinear.Algorithm
	for _, a := range bilinear.All() {
		if a.Name == *algName {
			alg = a
		}
	}
	if alg == nil {
		fail(fmt.Errorf("unknown algorithm %q", *algName))
	}
	g, err := cdag.New(alg, *r)
	if err != nil {
		fail(err)
	}
	var sched []cdag.V
	switch *schedKind {
	case "dfs":
		sched = schedule.RecursiveDFS(g)
	case "rank":
		sched = schedule.RankByRank(g)
	case "random":
		sched, err = schedule.RandomTopological(g, rand.New(rand.NewSource(*seed)))
		if err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("unknown schedule %q", *schedKind))
	}
	var pol pebble.Policy
	switch strings.ToLower(*policy) {
	case "min":
		pol = pebble.MIN
	case "lru":
		pol = pebble.LRU
	case "fifo":
		pol = pebble.FIFO
	default:
		fail(fmt.Errorf("unknown policy %q", *policy))
	}

	reg := obs.NewRegistry()
	in := pebble.NewInstruments(reg)
	if *debugAddr != "" {
		srv, err := obs.StartServer(*debugAddr, reg, nil)
		if err != nil {
			fail(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug server listening on %s\n", srv.URL())
		if *debugHold > 0 {
			defer func() {
				fmt.Fprintf(os.Stderr, "debug server held for %v\n", *debugHold)
				time.Sleep(*debugHold)
			}()
		}
	}

	n := math.Pow(float64(alg.N0), float64(*r))
	fmt.Printf("%s G_%d: %d vertices, n = %.0f, schedule %s, policy %s\n",
		alg.Name, *r, g.NumVertices(), n, *schedKind, *policy)
	fmt.Printf("%-8s %-12s %-12s %-12s %-12s %-10s\n", "M", "reads", "writes", "IO", "Thm1 LB", "IO/LB")

	ms := []int{*m}
	if *sweep {
		ms = nil
		for mm := 8; float64(mm) <= 2*n*n; mm *= 2 {
			ms = append(ms, mm)
		}
	}
	for _, mm := range ms {
		res, err := (&pebble.Simulator{G: g, M: mm, P: pol, Obs: in}).Run(sched)
		if err != nil {
			fmt.Printf("%-8d %v\n", mm, err)
			continue
		}
		lb := bounds.Theorem1Sequential(alg.Omega0(), n, float64(mm))
		fmt.Printf("%-8d %-12d %-12d %-12d %-12.0f %-10.2f\n",
			mm, res.Reads, res.Writes, res.IO(), lb, float64(res.IO())/lb)
	}
}
