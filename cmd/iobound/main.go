// Command iobound prints the communication bounds of the paper for a
// sweep of problem sizes, cache sizes, and processor counts.
//
// Usage:
//
//	iobound [-alg strassen] [-n 4096] [-m 1024] [-p 1]
//	iobound -table ms   # sweep cache sizes at fixed n
//	iobound -table ns   # sweep problem sizes at fixed M
//	iobound -table ps   # sweep processor counts
package main

import (
	"flag"
	"fmt"
	"os"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/bounds"
)

var (
	algName = flag.String("alg", "strassen", "algorithm name from the catalog")
	n       = flag.Float64("n", 4096, "matrix dimension")
	m       = flag.Float64("m", 1024, "fast memory size in words")
	p       = flag.Int("p", 1, "processor count")
	table   = flag.String("table", "", "sweep: ms, ns, or ps")
)

func findAlg(name string) *bilinear.Algorithm {
	for _, alg := range bilinear.All() {
		if alg.Name == name {
			return alg
		}
	}
	fmt.Fprintf(os.Stderr, "unknown algorithm %q; available:", name)
	for _, alg := range bilinear.All() {
		fmt.Fprintf(os.Stderr, " %s", alg.Name)
	}
	fmt.Fprintln(os.Stderr)
	os.Exit(2)
	return nil
}

func row(alg *bilinear.Algorithm, n, m float64, p int) {
	w := alg.Omega0()
	fmt.Printf("%-10.0f %-10.0f %-5d %-14.4g %-14.4g %-14.4g %-14.4g\n",
		n, m, p,
		bounds.Theorem1Parallel(w, n, m, p),
		bounds.MemoryIndependent(w, n, p),
		bounds.HongKungClassical(n, m)/float64(p),
		bounds.DFSUpperBound(alg, n, m)/float64(p))
}

func main() {
	flag.Parse()
	alg := findAlg(*algName)
	fmt.Printf("algorithm %s: n0=%d, b=%d, ω₀=%.4f, fast=%v\n",
		alg.Name, alg.N0, alg.B(), alg.Omega0(), alg.IsFast())
	fmt.Printf("%-10s %-10s %-5s %-14s %-14s %-14s %-14s\n",
		"n", "M", "P", "Thm1 LB", "mem-indep LB", "classical LB", "DFS UB")
	switch *table {
	case "":
		row(alg, *n, *m, *p)
	case "ms":
		for mm := 64.0; mm <= *n**n; mm *= 4 {
			row(alg, *n, mm, *p)
		}
	case "ns":
		for nn := 64.0; nn <= *n; nn *= 2 {
			row(alg, nn, *m, *p)
		}
	case "ps":
		for pp := 1; pp <= 1<<16; pp *= 4 {
			row(alg, *n, *m, pp)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown table %q (want ms, ns, or ps)\n", *table)
		os.Exit(2)
	}
	if x := bounds.CrossoverN(alg.Omega0(), *m); x > 0 {
		fmt.Printf("classical/fast bound crossover at n ≈ %.0f for M = %.0f\n", x, *m)
	}
}
