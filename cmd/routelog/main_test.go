package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestAnalyzeGolden locks the full analysis report for the checked-in
// fixture journal — a routed job killed mid-run and resumed (one trace
// across both legs, with a restored-work credit), plus an untraced
// schema-2 run and a torn tail. Timestamps in the fixture are fixed,
// so the report is byte-stable.
func TestAnalyzeGolden(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-width", "40", "-buckets", "4", "testdata/journal.jsonl"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	golden := filepath.Join("testdata", "analyze.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(out.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(want) {
		t.Fatalf("report drifted from golden (run `go test ./cmd/routelog -run Golden -update` if intended)\n--- got ---\n%s\n--- want ---\n%s",
			out.String(), want)
	}
}

// TestResourcesGolden locks the -resources cost table for the same
// crash+resume fixture: the traced job reports the accumulated
// schema-4 Resources block of its last final record (both legs), the
// per-shard-second rate from its shard_enumerate spans, and the peak
// heap from its heartbeat; the pre-schema-4 untraced run reports that
// it has no resource records.
func TestResourcesGolden(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-resources", "testdata/journal.jsonl"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	golden := filepath.Join("testdata", "resources.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(out.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(want) {
		t.Fatalf("cost table drifted from golden (run `go test ./cmd/routelog -run Golden -update` if intended)\n--- got ---\n%s\n--- want ---\n%s",
			out.String(), want)
	}
}

// TestResourcesMergesGenerations: the same job journaled across two
// daemon generations (the fixture split at the restart boundary into
// two files) reports one trace whose cost table carries the resumed
// leg's accumulated totals — identical to the single-file report.
func TestResourcesMergesGenerations(t *testing.T) {
	body, err := os.ReadFile("testdata/journal.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(body), "\n")
	cut := -1
	for i, line := range lines {
		if strings.Contains(line, `"resumed":true`) && strings.Contains(line, "run_start") {
			cut = i
			break
		}
	}
	if cut < 0 {
		t.Fatal("fixture lost its resumed run_start line")
	}
	dir := t.TempDir()
	legA := filepath.Join(dir, "gen1.jsonl")
	legB := filepath.Join(dir, "gen2.jsonl")
	if err := os.WriteFile(legA, []byte(strings.Join(lines[:cut], "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(legB, []byte(strings.Join(lines[cut:], "")), 0o644); err != nil {
		t.Fatal(err)
	}
	var merged, single, errOut strings.Builder
	id := "3f2a9c81d4e6b05731fa8c2d9b40e617"
	if code := run([]string{"-resources", "-trace", id, legA, legB}, &merged, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if code := run([]string{"-resources", "-trace", id, "testdata/journal.jsonl"}, &single, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	stripHeader := func(s string) string {
		_, rest, _ := strings.Cut(s, "\n")
		return rest
	}
	if stripHeader(merged.String()) != stripHeader(single.String()) {
		t.Fatalf("merged generations diverge from single journal\n--- merged ---\n%s\n--- single ---\n%s",
			merged.String(), single.String())
	}
	if !strings.Contains(merged.String(), "legs 2") {
		t.Fatalf("merged report lost the cross-generation leg count:\n%s", merged.String())
	}
}

// TestAnalyzeTraceFilter: -trace narrows the report to one trace and
// errors on unknown IDs.
func TestAnalyzeTraceFilter(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-trace", "3f2a9c81d4e6b05731fa8c2d9b40e617", "testdata/journal.jsonl"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "trace 3f2a9c81d4e6b05731fa8c2d9b40e617") ||
		strings.Contains(out.String(), "untraced") {
		t.Fatalf("filtered report:\n%s", out.String())
	}
	out.Reset()
	if code := run([]string{"-trace", "nope", "testdata/journal.jsonl"}, &out, &errOut); code != 1 {
		t.Fatalf("unknown trace: exit %d", code)
	}
}

// TestFollowReplaysJournal: -follow over a static journal replays its
// records as tail lines and stops at -followfor.
func TestFollowReplaysJournal(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-follow", "-followfor", "50ms", "-poll", "10ms", "testdata/journal.jsonl"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{
		"3f2a9c81 j00000001 run_start  routed strassen k=3",
		"shard 0: 1/4 (+16384 paths)",
		"restored 2/4 (+32768 paths)",
		"job_run 3.200s",
		"paused at 32768 paths",
		"65536 paths in 3.20s",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("follow output missing %q:\n%s", want, got)
		}
	}
	// The torn tail must not fabricate a line.
	if strings.Contains(got, "11:00:02") {
		t.Fatalf("torn tail leaked:\n%s", got)
	}
}

// TestUsageErrors: bad invocations exit 2 without touching files.
func TestUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("no args: exit %d", code)
	}
	if code := run([]string{"-follow", "a.jsonl", "b.jsonl"}, &out, &errOut); code != 2 {
		t.Fatalf("-follow with two files: exit %d", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "missing.jsonl")}, &out, &errOut); code != 1 {
		t.Fatalf("missing file: exit %d", code)
	}
}
