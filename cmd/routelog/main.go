// Command routelog is the trace-analysis companion to the runlog
// journal: where `routecheck -summarize` rolls a journal up per
// configuration, routelog groups records by their schema-3 trace
// identity and reconstructs what each run actually did — a span
// waterfall (which shard enumerations overlapped, where checkpoint
// persists sat), per-span-name latency percentiles, and the
// shard-completion timeline. Stdlib only, like everything else here.
//
// Usage:
//
//	routelog [-trace ID] [-width 60] [-spans 40] [-buckets 8] journal.jsonl [more.jsonl...]
//	routelog -resources [-trace ID] journal.jsonl [more.jsonl...]
//	routelog -follow [-followfor 30s] [-poll 500ms] journal.jsonl
//
// With several journal files (say a crash leg and a resume leg), the
// records merge by trace, so one job journaled across restarts still
// reconstructs as a single run. -resources renders the per-trace cost
// table instead of the waterfall: what each job actually consumed —
// queue wait, CPU seconds, allocated bytes, paths/s, enumeration
// shard-time — reconstructed from the schema-4 Resources records and
// accumulated across daemon generations. -follow tails the journal
// and prints one line per new record as it lands — a poor man's live
// dashboard over nothing but the file.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"pathrouting/internal/runlog"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole CLI behind a testable seam.
func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("routelog", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		trace     = fs.String("trace", "", "only analyze this trace ID")
		width     = fs.Int("width", 60, "timeline bar width in columns")
		spans     = fs.Int("spans", 40, "max waterfall rows per trace (0 = all)")
		buckets   = fs.Int("buckets", 8, "shard-timeline bucket count")
		resources = fs.Bool("resources", false, "render the per-trace cost table (schema-4 Resources records)")
		follow    = fs.Bool("follow", false, "tail the journal, printing new records as they land")
		followFor = fs.Duration("followfor", 0, "with -follow: stop after this long (0 = forever)")
		poll      = fs.Duration("poll", 500*time.Millisecond, "with -follow: file poll interval")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	paths := fs.Args()
	if len(paths) == 0 {
		fmt.Fprintln(errOut, "routelog: no journal files given")
		fs.Usage()
		return 2
	}
	if *follow {
		if len(paths) != 1 {
			fmt.Fprintln(errOut, "routelog: -follow tails exactly one journal")
			return 2
		}
		if err := followJournal(paths[0], *trace, *followFor, *poll, out); err != nil {
			fmt.Fprintln(errOut, "routelog:", err)
			return 1
		}
		return 0
	}
	if *resources {
		if err := resourceReport(paths, *trace, out); err != nil {
			fmt.Fprintln(errOut, "routelog:", err)
			return 1
		}
		return 0
	}
	if err := analyze(paths, *trace, *width, *spans, *buckets, out); err != nil {
		fmt.Fprintln(errOut, "routelog:", err)
		return 1
	}
	return 0
}

// resourceReport renders the per-trace cost table: for each trace,
// the accumulated Resources block its last final record carried
// (internal/serve folds every crash/resume leg into it, so the last
// final across merged journals is the cross-generation total), plus
// derived rates — paths per wall second and per shard-enumeration
// second — and the peak heap any schema-4 heartbeat observed.
func resourceReport(paths []string, only string, out io.Writer) error {
	ts, err := runlog.CollectTracesFiles(paths...)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "journal: %d records (%d skipped), %d traces\n",
		ts.Records, ts.Skipped, len(ts.Traces))
	shown := 0
	for _, t := range ts.Traces {
		if only != "" && t.ID != only {
			continue
		}
		shown++
		fmt.Fprintf(out, "\n%s\n", traceIdent(t))
		res := resourcesOf(t)
		if res == nil {
			fmt.Fprintf(out, "  no resource records (pre-schema-4 journal)\n")
			continue
		}
		legs := res.Legs
		if legs == 0 {
			legs = t.Starts
		}
		fmt.Fprintf(out, "  legs %d  wall %.2fs  queue-wait %.2fs  cpu %.2fs  allocs %s\n",
			legs, res.WallSeconds, res.QueueWaitSeconds, res.CPUSeconds, formatBytes(res.AllocBytes))
		if t.Final != nil && t.Final.Paths > 0 {
			line := fmt.Sprintf("  paths %d", t.Final.Paths)
			if pps := pathsPerSec(t, res); pps > 0 {
				line += fmt.Sprintf("  %.0f paths/s", pps)
			}
			if st := shardSeconds(t); st > 0 {
				line += fmt.Sprintf("  shard-time %.2fs  %.0f paths per shard-sec",
					st, float64(t.Final.Paths)/st)
			}
			fmt.Fprintln(out, line)
		}
		if t.PeakHeapBytes > 0 {
			fmt.Fprintf(out, "  peak heap %s\n", formatBytes(t.PeakHeapBytes))
		}
	}
	if only != "" && shown == 0 {
		return fmt.Errorf("no records for trace %q", only)
	}
	return nil
}

// traceIdent is the identity half of a trace header (no span/shard
// counts — the cost table has its own lines).
func traceIdent(t *runlog.Trace) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s", t.ID)
	if t.Traced {
		ident := strings.TrimSpace(fmt.Sprintf("%s %s", t.Tool, t.Alg))
		if ident != "" {
			fmt.Fprintf(&b, "  %s", ident)
		}
		if t.K > 0 {
			fmt.Fprintf(&b, " k=%d", t.K)
		}
		if t.Job != "" {
			fmt.Fprintf(&b, " job=%s", t.Job)
		}
	}
	switch {
	case t.Final == nil:
		b.WriteString("  (no final record)")
	case t.Final.Error != "":
		fmt.Fprintf(&b, "  FAILED: %s", t.Final.Error)
	case t.Final.Paused:
		b.WriteString("  (paused)")
	}
	return b.String()
}

// resourcesOf picks the trace's accumulated cost block: the last
// final record's Resources (serve accumulates across legs, so the
// last final is the total).
func resourcesOf(t *runlog.Trace) *runlog.Resources {
	if t.Final == nil || t.Final.Resources == nil {
		return nil
	}
	return t.Final.Resources
}

// pathsPerSec prefers the accumulated cross-leg rate; older records
// fall back to the final record's single-leg rate.
func pathsPerSec(t *runlog.Trace, res *runlog.Resources) float64 {
	if res.PathsPerSec > 0 {
		return res.PathsPerSec
	}
	return t.Final.PathsPerSec
}

// shardSeconds sums the trace's shard_enumerate span durations — the
// time actually spent enumerating paths, as opposed to merging,
// persisting checkpoints, or waiting in the queue.
func shardSeconds(t *runlog.Trace) float64 {
	var sum float64
	for _, sp := range t.Spans {
		if sp.Name == "shard_enumerate" {
			sum += sp.Dur.Seconds()
		}
	}
	return sum
}

// formatBytes renders a byte count with a binary unit, one decimal.
func formatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// analyze renders the trace report for one or more journal files.
func analyze(paths []string, only string, width, spans, buckets int, out io.Writer) error {
	ts, err := runlog.CollectTracesFiles(paths...)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "journal: %d records (%d skipped), %d traces\n",
		ts.Records, ts.Skipped, len(ts.Traces))
	shown := 0
	for _, t := range ts.Traces {
		if only != "" && t.ID != only {
			continue
		}
		shown++
		fmt.Fprintf(out, "\n%s\n", t.Header())
		if wf := t.Waterfall(width, spans); wf != "" {
			fmt.Fprintf(out, " waterfall:\n%s", wf)
		}
		if tl := t.ShardTimeline(buckets, width/2); tl != "" {
			fmt.Fprintf(out, " shard timeline:\n%s", tl)
		}
	}
	if only != "" && shown == 0 {
		return fmt.Errorf("no records for trace %q", only)
	}
	if lats := ts.SpanLatencies(); len(lats) > 0 && only == "" {
		fmt.Fprintf(out, "\nspan latencies (all traces):\n%s", runlog.FormatLatencies(lats))
	}
	return nil
}

// followJournal tails one journal file: existing records print first
// (replay), then each new line as the file grows. Rotation-free
// append-only journals make this a simple offset chase.
func followJournal(path, only string, stopAfter, poll time.Duration, out io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var deadline <-chan time.Time
	if stopAfter > 0 {
		timer := time.NewTimer(stopAfter)
		defer timer.Stop()
		deadline = timer.C
	}
	r := bufio.NewReader(f)
	var partial strings.Builder
	for {
		for {
			line, err := r.ReadString('\n')
			if err == io.EOF {
				// Torn tail: keep the fragment for the next poll round.
				partial.WriteString(line)
				break
			}
			if err != nil {
				return err
			}
			full := partial.String() + line
			partial.Reset()
			if rec, ok := parseRecord(full); ok && (only == "" || rec.Trace == only) {
				fmt.Fprintln(out, followLine(rec))
			}
		}
		select {
		case <-deadline:
			return nil
		case <-time.After(poll):
		}
	}
}

func parseRecord(line string) (runlog.Record, bool) {
	var rec runlog.Record
	if err := json.Unmarshal([]byte(strings.TrimSpace(line)), &rec); err != nil || rec.Event == "" {
		return rec, false
	}
	return rec, true
}

// followLine renders one record as a compact tail line, using the
// record's own timestamp so output is reproducible from the file.
func followLine(rec runlog.Record) string {
	clock := rec.Time
	if at, err := time.Parse(time.RFC3339Nano, rec.Time); err == nil {
		clock = at.Format("15:04:05")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s", clock)
	if rec.Trace != "" {
		short := rec.Trace
		if len(short) > 8 {
			short = short[:8]
		}
		fmt.Fprintf(&b, " %s", short)
	}
	if rec.Job != "" {
		fmt.Fprintf(&b, " %s", rec.Job)
	}
	fmt.Fprintf(&b, " %-10s", rec.Event)
	switch rec.Event {
	case runlog.EventRunStart:
		fmt.Fprintf(&b, " %s %s k=%d", rec.Tool, rec.Alg, rec.K)
		if rec.Resumed {
			b.WriteString(" (resumed)")
		}
	case runlog.EventShardDone:
		if rec.Shard < 0 {
			fmt.Fprintf(&b, " restored %d/%d (+%d paths)", rec.ShardsDone, rec.ShardsTotal, rec.ShardPaths)
		} else {
			fmt.Fprintf(&b, " shard %d: %d/%d (+%d paths)", rec.Shard, rec.ShardsDone, rec.ShardsTotal, rec.ShardPaths)
		}
	case runlog.EventSpan:
		fmt.Fprintf(&b, " %s %.3fs", rec.Span, rec.DurSec)
	case runlog.EventHeartbeat:
		fmt.Fprintf(&b, " %d metrics", len(rec.Metrics))
	case runlog.EventViolation:
		fmt.Fprintf(&b, " %s", rec.Error)
	case runlog.EventFinal:
		switch {
		case rec.Error != "":
			fmt.Fprintf(&b, " FAILED: %s", rec.Error)
		case rec.Paused:
			fmt.Fprintf(&b, " paused at %d paths", rec.Paths)
		default:
			fmt.Fprintf(&b, " %d paths in %.2fs", rec.Paths, rec.ElapsedSec)
		}
	}
	return b.String()
}
