// Command ladsearch reconstructs uncertain coefficient rows of Laderman's
// 23-multiplication 3×3 algorithm. Given the product encodings (U, V)
// with some rows possibly misremembered, it searches candidate rows over
// {-1,0,1}^9 for which the 23 rank-one tensors span 3×3 matrix
// multiplication (checked by modular Gaussian elimination, then confirmed
// exactly by the rational solver in internal/bilinear).
package main

import (
	"fmt"
	"os"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/rat"
)

const p = 2147483647

func mod(x int64) uint64 {
	m := x % p
	if m < 0 {
		m += p
	}
	return uint64(m)
}

func modInv(a uint64) uint64 {
	// Fermat.
	var r uint64 = 1
	b := a
	e := uint64(p - 2)
	for e > 0 {
		if e&1 == 1 {
			r = r * b % p
		}
		b = b * b % p
		e >>= 1
	}
	return r
}

// consistent reports whether the 81×(23+9) system U⊗V·w = targets is
// solvable mod p. u and v are 23×9 integer coefficient rows.
func consistent(u, v [][]int64) bool { return consistentSkippingE(u, v, -1) }

// consistentSkippingE is consistent but ignores system rows whose A-entry
// index equals skipE (pass -1 to keep all rows).
func consistentSkippingE(u, v [][]int64, skipE int) bool {
	const nA = 9
	cols := 23 + 9
	m := make([][]uint64, 0, nA*nA)
	for e := 0; e < nA; e++ {
		if e == skipE {
			continue
		}
		re, ce := e/3, e%3
		for f := 0; f < nA; f++ {
			rf, cf := f/3, f%3
			row := make([]uint64, cols)
			for t := 0; t < 23; t++ {
				row[t] = mod(u[t][e]) * mod(v[t][f]) % p
			}
			if ce == rf {
				row[23+re*3+cf] = 1
			}
			m = append(m, row)
		}
	}
	rows := len(m)
	// Gaussian elimination over the first 23 columns.
	r := 0
	for c := 0; c < 23 && r < rows; c++ {
		pr := -1
		for i := r; i < rows; i++ {
			if m[i][c] != 0 {
				pr = i
				break
			}
		}
		if pr < 0 {
			continue
		}
		m[r], m[pr] = m[pr], m[r]
		inv := modInv(m[r][c])
		for j := c; j < cols; j++ {
			m[r][j] = m[r][j] * inv % p
		}
		for i := 0; i < rows; i++ {
			if i != r && m[i][c] != 0 {
				f := m[i][c]
				for j := c; j < cols; j++ {
					m[i][j] = (m[i][j] + p - f*m[r][j]%p) % p
				}
			}
		}
		r++
	}
	for i := r; i < rows; i++ {
		for j := 23; j < cols; j++ {
			if m[i][j] != 0 {
				return false
			}
		}
	}
	return true
}

func candidates() [][]int64 {
	out := make([][]int64, 0, 19683)
	var rec func(row []int64)
	rec = func(row []int64) {
		if len(row) == 9 {
			cp := make([]int64, 9)
			copy(cp, row)
			out = append(out, cp)
			return
		}
		for _, c := range []int64{0, 1, -1} {
			rec(append(row, c))
		}
	}
	rec(nil)
	return out
}

func toInts(rows [][]rat.Rat) [][]int64 {
	out := make([][]int64, len(rows))
	for i, r := range rows {
		out[i] = make([]int64, len(r))
		for j, c := range r {
			if !c.IsInt() {
				panic("non-integer coefficient")
			}
			out[i][j] = c.Num()
		}
	}
	return out
}

func confirm(u, v [][]int64) bool {
	ru := make([][]rat.Rat, len(u))
	rv := make([][]rat.Rat, len(v))
	for t := range u {
		ru[t] = make([]rat.Rat, 9)
		rv[t] = make([]rat.Rat, 9)
		for e := 0; e < 9; e++ {
			ru[t][e] = rat.Int(u[t][e])
			rv[t][e] = rat.Int(v[t][e])
		}
	}
	w, err := bilinear.SolveDecoder(3, ru, rv)
	if err != nil {
		return false
	}
	alg := &bilinear.Algorithm{Name: "laderman-candidate", N0: 3, U: ru, V: rv, W: w}
	return alg.Validate() == nil
}

func fmtRow(r []int64) string {
	s := ""
	names := []string{"b11", "b12", "b13", "b21", "b22", "b23", "b31", "b32", "b33"}
	for i, c := range r {
		switch c {
		case 1:
			s += "+" + names[i]
		case -1:
			s += "-" + names[i]
		}
	}
	return s
}

func main() {
	u, v := bilinear.LadermanProducts()
	ui, vi := toInts(u), toInts(v)

	if consistent(ui, vi) {
		fmt.Println("base products already consistent")
		return
	}

	cands := candidates()
	// Products whose V rows are uncertain (0-based): m3 -> 2, m11 -> 10,
	// m12 -> 11, m16 -> 15.
	uncertain := []int{2, 10, 11, 15}

	// Single-row search.
	for _, t := range uncertain {
		orig := vi[t]
		for _, c := range cands {
			vi[t] = c
			if consistent(ui, vi) && confirm(ui, vi) {
				fmt.Printf("FOUND single: m%d V row = %v  (%s)\n", t+1, c, fmtRow(c))
				return
			}
		}
		vi[t] = orig
	}
	fmt.Println("no single-row fix; trying pairs (m3, m11)")

	// Pair search over the two most uncertain rows (m3, m11) with
	// pruning. m11's left operand is the bare entry a32 (e = 7), so its
	// rank-one term only touches system rows with e = 7; the system
	// restricted to e != 7 must already be consistent for the right m3
	// row. That restriction filters m3 candidates cheaply.
	o3, o11 := vi[2], vi[10]
	var survivors [][]int64
	for _, c3 := range cands {
		vi[2] = c3
		if consistentSkippingE(ui, vi, 7) {
			survivors = append(survivors, c3)
		}
	}
	fmt.Printf("m3 survivors: %d\n", len(survivors))
	for _, c3 := range survivors {
		vi[2] = c3
		for _, c11 := range cands {
			vi[10] = c11
			if consistent(ui, vi) && confirm(ui, vi) {
				fmt.Printf("FOUND pair:\n  m3  V row = %v (%s)\n  m11 V row = %v (%s)\n",
					c3, fmtRow(c3), c11, fmtRow(c11))
				return
			}
		}
	}
	vi[2], vi[10] = o3, o11
	fmt.Println("no fix found")
	os.Exit(1)
}
