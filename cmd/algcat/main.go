// Command algcat inspects the algorithm catalog: structural summaries,
// communication exponents, duals, and JSON export/import of verified
// algorithms.
//
// Usage:
//
//	algcat                        # summary table of the catalog
//	algcat -show strassen         # full coefficient listing
//	algcat -export strassen       # JSON to stdout
//	algcat -verify file.json      # import + Brent-verify a JSON algorithm
//	algcat -duals strassen        # the algorithm's symmetry family
package main

import (
	"flag"
	"fmt"
	"os"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/expansion"
)

var (
	show   = flag.String("show", "", "print full coefficients of the named algorithm")
	export = flag.String("export", "", "print the named algorithm as JSON")
	verify = flag.String("verify", "", "import and verify an algorithm JSON file")
	duals  = flag.String("duals", "", "list the symmetry family of the named algorithm")
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}

func find(name string) *bilinear.Algorithm {
	for _, alg := range bilinear.All() {
		if alg.Name == name {
			return alg
		}
	}
	fail(fmt.Errorf("unknown algorithm %q", name))
	return nil
}

func main() {
	flag.Parse()
	switch {
	case *show != "":
		alg := find(*show)
		fmt.Printf("%s: n0=%d b=%d ω₀=%.4f\n", alg.Name, alg.N0, alg.B(), alg.Omega0())
		for t := 0; t < alg.B(); t++ {
			fmt.Printf("  m%-3d U=%v\n       V=%v\n", t+1, alg.U[t], alg.V[t])
		}
		for o := 0; o < alg.A(); o++ {
			fmt.Printf("  c%-3d W=%v\n", o+1, alg.W[o])
		}
	case *export != "":
		data, err := bilinear.MarshalAlgorithm(find(*export))
		if err != nil {
			fail(err)
		}
		os.Stdout.Write(data)
		fmt.Println()
	case *verify != "":
		data, err := os.ReadFile(*verify)
		if err != nil {
			fail(err)
		}
		alg, err := bilinear.UnmarshalAlgorithm(data)
		if err != nil {
			fail(err)
		}
		fmt.Printf("VERIFIED: %s (n0=%d, b=%d, ω₀=%.4f) passes the Brent equations\n",
			alg.Name, alg.N0, alg.B(), alg.Omega0())
	case *duals != "":
		alg := find(*duals)
		family := bilinear.Duals(alg)
		fmt.Printf("%s has %d verified duals:\n", alg.Name, len(family))
		for _, d := range family {
			fmt.Printf("  %s\n", d.Name)
		}
	default:
		fmt.Printf("%-16s %-4s %-4s %-7s %-6s %-9s %-9s %-10s\n",
			"algorithm", "n0", "b", "ω₀", "fast", "oneMult", "decConn", "expansion")
		for _, alg := range bilinear.All() {
			st := bilinear.Analyze(alg)
			rep := expansion.Analyze(alg)
			expStr := "usable"
			if !rep.EdgeExpansionUsable {
				expStr = "fails"
			}
			fmt.Printf("%-16s %-4d %-4d %-7.3f %-6v %-9v %-9v %-10s\n",
				alg.Name, alg.N0, alg.B(), alg.Omega0(), alg.IsFast(),
				st.SatisfiesOneMultiplicationPerCombination(), rep.DecodingConnected, expStr)
		}
	}
}
