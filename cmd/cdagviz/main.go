// Command cdagviz emits Graphviz DOT renderings of the paper's graph
// objects: base graphs, meta-vertices, routing chains, and segments.
//
// Usage:
//
//	cdagviz -fig base -alg strassen            # Figure 1
//	cdagviz -fig meta -alg strassen -r 2       # Figure 2
//	cdagviz -fig chain -alg strassen -r 2      # Figures 3/4
//	cdagviz -fig h -alg strassen               # Figure 8
//	cdagviz -fig g1circle -alg strassen        # Figure 9
//	cdagviz -fig lemma4                        # Figure 6 (ASCII)
package main

import (
	"flag"
	"fmt"
	"os"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/cdag"
	"pathrouting/internal/routing"
	"pathrouting/internal/viz"
)

var (
	fig     = flag.String("fig", "base", "figure: base, meta, chain, h, g1circle, lemma4")
	algName = flag.String("alg", "strassen", "algorithm name from the catalog")
	r       = flag.Int("r", 2, "recursion depth where applicable")
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}

func main() {
	flag.Parse()
	var alg *bilinear.Algorithm
	for _, a := range bilinear.All() {
		if a.Name == *algName {
			alg = a
		}
	}
	if alg == nil {
		fail(fmt.Errorf("unknown algorithm %q", *algName))
	}
	switch *fig {
	case "base":
		fmt.Print(viz.BaseGraphDOT(alg))
	case "meta":
		g, err := cdag.New(alg, *r)
		if err != nil {
			fail(err)
		}
		for v := cdag.V(0); int(v) < g.NumVertices(); v++ {
			if g.IsCopy(v) {
				fmt.Print(viz.MetaVertexDOT(g, g.MetaRoot(v)))
				return
			}
		}
		fail(fmt.Errorf("%s G_%d has no copy vertices", alg.Name, *r))
	case "chain":
		g, err := cdag.New(alg, *r)
		if err != nil {
			fail(err)
		}
		rt, err := routing.NewRouter(g)
		if err != nil {
			fail(err)
		}
		chain, ok := rt.AppendChain(bilinear.SideA, 1, 0, nil)
		if !ok {
			fail(fmt.Errorf("dependency (1,0) not guaranteed"))
		}
		fmt.Print(viz.PathDOT(g, chain, "guaranteed-dependency chain"))
	case "h":
		fmt.Print(viz.HGraphDOT(alg, bilinear.SideA, 1, 0))
	case "g1circle":
		fmt.Print(viz.G1CircleDOT(alg, 1, []int{0, 1, 3}))
	case "lemma4":
		fmt.Print(viz.Lemma4ASCII(4, 0, 1, 2, 3))
	default:
		fail(fmt.Errorf("unknown figure %q", *fig))
	}
}
