package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

const benchOut = `goos: linux
goarch: amd64
pkg: pathrouting
cpu: Fake CPU @ 3.00GHz
BenchmarkA9EnumerationKernel/scratch-8   	       5	  20000000 ns/op	   1048576 B/op	      12 allocs/op	  500000 paths/s
BenchmarkA7ParallelVerification-8        	       5	  40000000 ns/op	   2097152 B/op	      30 allocs/op
PASS
ok  	pathrouting	1.234s
`

// TestParseBenchOutput: every value/unit pair becomes a metric, and
// the go test header lands in Env.
func TestParseBenchOutput(t *testing.T) {
	doc, err := parse(strings.NewReader(benchOut))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %+v", doc.Benchmarks)
	}
	bm := doc.Benchmarks[0]
	if bm.Name != "BenchmarkA9EnumerationKernel/scratch-8" || bm.Iterations != 5 {
		t.Fatalf("first benchmark = %+v", bm)
	}
	for metric, want := range map[string]float64{
		"ns/op": 20000000, "B/op": 1048576, "allocs/op": 12, "paths/s": 500000,
	} {
		if bm.Metrics[metric] != want {
			t.Fatalf("%s = %v, want %v", metric, bm.Metrics[metric], want)
		}
	}
	if doc.Env["goarch"] != "amd64" || doc.Env["cpu"] != "Fake CPU @ 3.00GHz" {
		t.Fatalf("env = %+v", doc.Env)
	}
}

// TestWriteThenCompareClean: -o writes a JSON doc that a second run of
// identical output compares clean against (exit 0).
func TestWriteThenCompareClean(t *testing.T) {
	base := filepath.Join(t.TempDir(), "base.json")
	var out, errOut strings.Builder
	if code := run([]string{"-o", base}, strings.NewReader(benchOut), &out, &errOut); code != 0 {
		t.Fatalf("write run: exit %d, stderr: %s", code, errOut.String())
	}
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	var doc Doc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("written file is not valid JSON: %v", err)
	}
	out.Reset()
	if code := run([]string{"-baseline", base}, strings.NewReader(benchOut), &out, &errOut); code != 0 {
		t.Fatalf("identical compare: exit %d\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "within tolerance") {
		t.Fatalf("compare output:\n%s", out.String())
	}
}

// TestCompareRegression: ns/op 2x worse than baseline exits 3 past the
// tolerance, and the delta table names the offender.
func TestCompareRegression(t *testing.T) {
	base := filepath.Join(t.TempDir(), "base.json")
	var out, errOut strings.Builder
	if code := run([]string{"-o", base}, strings.NewReader(benchOut), &out, &errOut); code != 0 {
		t.Fatalf("write run: exit %d", code)
	}
	slower := strings.ReplaceAll(benchOut, "  40000000 ns/op", "  80000000 ns/op")
	out.Reset()
	code := run([]string{"-baseline", base, "-tolerance", "10"}, strings.NewReader(slower), &out, &errOut)
	if code != 3 {
		t.Fatalf("regressed compare: exit %d, want 3\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") ||
		!strings.Contains(out.String(), "BenchmarkA7ParallelVerification-8") {
		t.Fatalf("delta table:\n%s", out.String())
	}
	// Raising the tolerance above the 100% delta clears the gate.
	out.Reset()
	if code := run([]string{"-baseline", base, "-tolerance", "150"}, strings.NewReader(slower), &out, &errOut); code != 0 {
		t.Fatalf("tolerant compare: exit %d\n%s", code, out.String())
	}
}

// TestCompareHardGate: a regression on a metric named in -hard exits 4
// (the CI-fatal code) while the same regression on a soft metric stays
// at 3, and an unknown -hard metric is a usage error.
func TestCompareHardGate(t *testing.T) {
	base := filepath.Join(t.TempDir(), "base.json")
	var out, errOut strings.Builder
	if code := run([]string{"-o", base}, strings.NewReader(benchOut), &out, &errOut); code != 0 {
		t.Fatalf("write run: exit %d", code)
	}

	// allocs/op doubles: hard-gated → 4, with the (hard) marker.
	leaky := strings.ReplaceAll(benchOut, "      30 allocs/op", "      60 allocs/op")
	out.Reset()
	code := run([]string{"-baseline", base, "-tolerance", "10", "-hard", "allocs/op"},
		strings.NewReader(leaky), &out, &errOut)
	if code != 4 {
		t.Fatalf("hard regression: exit %d, want 4\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED (hard)") {
		t.Fatalf("hard marker missing:\n%s", out.String())
	}

	// ns/op doubles: not in -hard → still the soft exit 3.
	slower := strings.ReplaceAll(benchOut, "  40000000 ns/op", "  80000000 ns/op")
	out.Reset()
	code = run([]string{"-baseline", base, "-tolerance", "10", "-hard", "allocs/op"},
		strings.NewReader(slower), &out, &errOut)
	if code != 3 {
		t.Fatalf("soft regression under -hard: exit %d, want 3\n%s", code, out.String())
	}

	// Typoed -hard metric: usage error, not a silently ungated run.
	errOut.Reset()
	if code := run([]string{"-baseline", base, "-hard", "alloc/op"},
		strings.NewReader(benchOut), &out, &errOut); code != 2 {
		t.Fatalf("unknown hard metric: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "not gated") {
		t.Fatalf("stderr: %s", errOut.String())
	}
}

// TestEnvRecordsParallelism: the converter stamps its GOMAXPROCS and
// the machine core count into the env block so baselines carry the
// parallelism they were measured at.
func TestEnvRecordsParallelism(t *testing.T) {
	base := filepath.Join(t.TempDir(), "base.json")
	var out, errOut strings.Builder
	if code := run([]string{"-o", base}, strings.NewReader(benchOut), &out, &errOut); code != 0 {
		t.Fatalf("write run: exit %d", code)
	}
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	var doc Doc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Env["gomaxprocs"] != strconv.Itoa(runtime.GOMAXPROCS(0)) {
		t.Fatalf("env gomaxprocs = %q", doc.Env["gomaxprocs"])
	}
	if doc.Env["cores"] != strconv.Itoa(runtime.NumCPU()) {
		t.Fatalf("env cores = %q", doc.Env["cores"])
	}
}

// TestCompareReportsMissingAndNew: renamed benchmarks show up as
// missing-from-run and not-in-baseline rather than silently passing.
func TestCompareReportsMissingAndNew(t *testing.T) {
	base := filepath.Join(t.TempDir(), "base.json")
	var out, errOut strings.Builder
	if code := run([]string{"-o", base}, strings.NewReader(benchOut), &out, &errOut); code != 0 {
		t.Fatalf("write run: exit %d", code)
	}
	renamed := strings.ReplaceAll(benchOut,
		"BenchmarkA7ParallelVerification-8", "BenchmarkA7ParallelVerificationV2-8")
	out.Reset()
	if code := run([]string{"-baseline", base}, strings.NewReader(renamed), &out, &errOut); code != 0 {
		t.Fatalf("renamed compare: exit %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "BenchmarkA7ParallelVerificationV2-8 (not in baseline)") &&
		!strings.Contains(out.String(), "(not in baseline)") {
		t.Fatalf("new benchmark not flagged:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "(missing from this run)") {
		t.Fatalf("vanished benchmark not flagged:\n%s", out.String())
	}
}

// TestErrors: empty stdin, bad baseline path, disjoint baseline, and
// negative tolerance all fail with distinct exits.
func TestErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, strings.NewReader("PASS\n"), &out, &errOut); code != 1 {
		t.Fatalf("empty input: exit %d", code)
	}
	if code := run([]string{"-baseline", filepath.Join(t.TempDir(), "nope.json")},
		strings.NewReader(benchOut), &out, &errOut); code != 1 {
		t.Fatalf("missing baseline: exit %d", code)
	}
	if code := run([]string{"-tolerance", "-5"}, strings.NewReader(benchOut), &out, &errOut); code != 2 {
		t.Fatalf("negative tolerance: exit %d", code)
	}
	// A baseline with no overlapping benchmarks is a wiring mistake,
	// not a clean pass.
	base := filepath.Join(t.TempDir(), "other.json")
	os.WriteFile(base, []byte(`{"benchmarks":[{"name":"BenchmarkElse-8","iterations":1,"metrics":{"ns/op":1}}]}`), 0o644)
	if code := run([]string{"-baseline", base}, strings.NewReader(benchOut), &out, &errOut); code != 1 {
		t.Fatalf("disjoint baseline: exit %d", code)
	}
}
