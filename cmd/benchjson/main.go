// Command benchjson converts `go test -bench` text output (stdin) into
// a machine-readable JSON document, so `make bench` can emit
// BENCH_routing.json without depending on jq or benchstat being
// installed. Every value/unit pair on a benchmark line becomes a
// metric, so custom b.ReportMetric units (paths/s, io/bound, ...) come
// through next to ns/op — and with `go test -benchmem`, the B/op and
// allocs/op columns land as metrics of the same names (the allocation
// budget of the routing enumeration kernel is tracked this way; see
// `make bench`).
//
// Usage:
//
//	go test -run xxx -bench . -benchtime 5x -benchmem . | benchjson -o BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one `BenchmarkName-P  N  v1 unit1  v2 unit2 ...` line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the whole converted run.
type Doc struct {
	// Env holds the run header go test prints (goos, goarch, pkg, cpu).
	Env        map[string]string `json:"env,omitempty"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

var out = flag.String("o", "", "output file (default: stdout)")

func main() {
	flag.Parse()
	doc := Doc{Env: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				doc.Env[key] = strings.TrimSpace(v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		bm := Benchmark{Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			bm.Metrics[f[i+1]] = v
		}
		doc.Benchmarks = append(doc.Benchmarks, bm)
	}
	if err := sc.Err(); err != nil {
		fail(err)
	}
	if len(doc.Benchmarks) == 0 {
		fail(fmt.Errorf("no benchmark lines on stdin — did the bench run fail?"))
	}
	buf, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fail(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
