// Command benchjson converts `go test -bench` text output (stdin) into
// a machine-readable JSON document, so `make bench` can emit
// BENCH_routing.json without depending on jq or benchstat being
// installed. Every value/unit pair on a benchmark line becomes a
// metric, so custom b.ReportMetric units (paths/s, io/bound, ...) come
// through next to ns/op — and with `go test -benchmem`, the B/op and
// allocs/op columns land as metrics of the same names (the allocation
// budget of the routing enumeration kernel is tracked this way; see
// `make bench`).
//
// The env block records the run header go test prints (goos, goarch,
// pkg, cpu) plus the converting process's GOMAXPROCS and machine core
// count, so a baseline records the parallelism it was measured at.
//
// With -baseline it additionally compares the fresh run against a
// previously written JSON document and prints a per-benchmark delta
// table for the regression-sensitive columns (ns/op, B/op, allocs/op).
// A delta worse than -tolerance percent on any of them exits 3 — or 4
// when the regressed metric is named in -hard, a comma-separated list
// of metrics whose regressions are hard failures. `make bench-diff`
// runs with -hard allocs/op: allocation counts are deterministic, so
// they gate CI hard, while the noisy wall-clock columns stay soft.
//
// Usage:
//
//	go test -run xxx -bench . -benchtime 5x -benchmem . | benchjson -o BENCH.json
//	go test -run xxx -bench . -benchtime 5x -benchmem . | benchjson -baseline BENCH.json -tolerance 10 -hard allocs/op
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one `BenchmarkName-P  N  v1 unit1  v2 unit2 ...` line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the whole converted run.
type Doc struct {
	// Env holds the run header go test prints (goos, goarch, pkg, cpu).
	Env        map[string]string `json:"env,omitempty"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable body of main. Exit codes: 0 ok, 1 input/IO
// error, 2 usage, 3 soft regression past tolerance, 4 hard regression
// (a metric named in -hard).
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "output file (default: stdout, suppressed in -baseline mode)")
	baseline := fs.String("baseline", "", "prior benchjson output to compare against")
	tolerance := fs.Float64("tolerance", 10, "regression threshold for -baseline, in percent")
	hard := fs.String("hard", "", "comma-separated metrics whose regressions exit 4 instead of 3 (e.g. allocs/op)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *tolerance < 0 {
		fmt.Fprintln(stderr, "benchjson: -tolerance must be non-negative")
		return 2
	}
	hardSet := map[string]bool{}
	for _, m := range strings.Split(*hard, ",") {
		if m = strings.TrimSpace(m); m == "" {
			continue
		}
		known := false
		for _, rm := range regressionMetrics {
			known = known || m == rm
		}
		if !known {
			fmt.Fprintf(stderr, "benchjson: -hard metric %q is not gated (want one of %s)\n",
				m, strings.Join(regressionMetrics, ", "))
			return 2
		}
		hardSet[m] = true
	}

	doc, err := parse(stdin)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	doc.Env["gomaxprocs"] = strconv.Itoa(runtime.GOMAXPROCS(0))
	doc.Env["cores"] = strconv.Itoa(runtime.NumCPU())

	if *out != "" {
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "benchjson:", err)
			return 1
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, "benchjson:", err)
			return 1
		}
		fmt.Fprintf(stdout, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
	}

	if *baseline != "" {
		return compare(doc, *baseline, *tolerance, hardSet, stdout, stderr)
	}

	if *out == "" {
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "benchjson:", err)
			return 1
		}
		stdout.Write(append(buf, '\n'))
	}
	return 0
}

// parse converts `go test -bench` text into a Doc.
func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Env: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				doc.Env[key] = strings.TrimSpace(v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		bm := Benchmark{Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			bm.Metrics[f[i+1]] = v
		}
		doc.Benchmarks = append(doc.Benchmarks, bm)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines on stdin — did the bench run fail?")
	}
	return doc, nil
}

// regressionMetrics are the columns a baseline compare gates on: for
// all three, bigger is worse. Throughput metrics (paths/s) are shown
// in the JSON but deliberately not gated — they invert the comparison
// and are far noisier than the allocation columns.
var regressionMetrics = []string{"ns/op", "B/op", "allocs/op"}

// compare diffs doc against the JSON document at path and prints one
// line per benchmark/metric pair. Returns 4 if a metric in hard got
// worse by more than tol percent, 3 if only soft metrics did, 0
// otherwise.
func compare(doc *Doc, path string, tol float64, hard map[string]bool, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	var base Doc
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(stderr, "benchjson: parse baseline %s: %v\n", path, err)
		return 1
	}
	old := make(map[string]Benchmark, len(base.Benchmarks))
	for _, bm := range base.Benchmarks {
		old[bm.Name] = bm
	}

	fmt.Fprintf(stdout, "benchjson: comparing against %s (tolerance %.1f%%)\n", path, tol)
	fmt.Fprintf(stdout, "%-44s %-10s %14s %14s %8s\n", "benchmark", "metric", "old", "new", "delta")
	softRegressed, hardRegressed := 0, 0
	matched := 0
	for _, bm := range doc.Benchmarks {
		prev, ok := old[bm.Name]
		if !ok {
			fmt.Fprintf(stdout, "%-44s (not in baseline)\n", bm.Name)
			continue
		}
		matched++
		for _, metric := range regressionMetrics {
			nv, haveNew := bm.Metrics[metric]
			ov, haveOld := prev.Metrics[metric]
			if !haveNew || !haveOld {
				continue
			}
			var pct float64
			switch {
			case ov != 0:
				pct = (nv - ov) / ov * 100
			case nv != 0:
				pct = 100 // something from nothing: treat as full regression
			}
			mark := ""
			if pct > tol {
				if hard[metric] {
					mark = "  REGRESSED (hard)"
					hardRegressed++
				} else {
					mark = "  REGRESSED"
					softRegressed++
				}
			}
			fmt.Fprintf(stdout, "%-44s %-10s %14.1f %14.1f %+7.1f%%%s\n",
				bm.Name, metric, ov, nv, pct, mark)
		}
	}
	// Benchmarks that vanished from the run are worth a line: a renamed
	// benchmark silently drops out of the gate otherwise.
	var gone []string
	seen := make(map[string]bool, len(doc.Benchmarks))
	for _, bm := range doc.Benchmarks {
		seen[bm.Name] = true
	}
	for name := range old {
		if !seen[name] {
			gone = append(gone, name)
		}
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Fprintf(stdout, "%-44s (missing from this run)\n", name)
	}
	if matched == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark overlaps the baseline — wrong file?")
		return 1
	}
	if hardRegressed > 0 {
		fmt.Fprintf(stdout, "benchjson: %d hard-gated metric(s) regressed past %.1f%% (plus %d soft)\n",
			hardRegressed, tol, softRegressed)
		return 4
	}
	if softRegressed > 0 {
		fmt.Fprintf(stdout, "benchjson: %d metric(s) regressed past %.1f%%\n", softRegressed, tol)
		return 3
	}
	fmt.Fprintf(stdout, "benchjson: %d benchmark(s) within tolerance\n", matched)
	return 0
}
