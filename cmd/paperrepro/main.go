// Command paperrepro runs the full experiment suite E1–E14 of the
// reproduction (see DESIGN.md and EXPERIMENTS.md) and prints the
// resulting tables. Each experiment makes one family of the paper's
// claims executable and reports measured quantities next to the
// claimed bounds.
//
// Usage:
//
//	paperrepro [-experiment all|E1|...|E12] [-quick] [-dotdir DIR] [-progress]
//	           [-journal run.jsonl] [-checkpointdir DIR] [-resume]
//	           [-debugaddr :8080] [-heartbeat 30s]
//	           [-cpuprofile cpu.pb.gz] [-memprofile mem.pb.gz]
//
// With -checkpointdir, the heavy E3 routing verifications run through
// the sharded checkpoint engine, persisting per-case checkpoint files
// there; re-running with -resume skips completed shards. -journal
// appends structured JSONL records (see internal/runlog) for the E3
// runs, summarizable with `routecheck -summarize`.
//
// With -debugaddr, a debug HTTP server exposes Prometheus-format
// /metrics (routing and pebble instrument families), a JSON /healthz
// with the latest per-experiment progress, and /debug/pprof. With
// -journal, -heartbeat emits heartbeat records carrying the metrics
// snapshot at that interval.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/bounds"
	"pathrouting/internal/cdag"
	"pathrouting/internal/core"
	"pathrouting/internal/expansion"
	"pathrouting/internal/hall"
	"pathrouting/internal/obs"
	"pathrouting/internal/parallel"
	"pathrouting/internal/pebble"
	"pathrouting/internal/routing"
	"pathrouting/internal/runlog"
	"pathrouting/internal/schedule"
	"pathrouting/internal/viz"
)

var (
	experiment = flag.String("experiment", "all", "experiment id (E1..E14) or all")
	quick      = flag.Bool("quick", false, "smaller parameter sweeps")
	dotDir     = flag.String("dotdir", "", "directory to write E12 DOT figures (default: print names only)")
	csvDir     = flag.String("csvdir", "", "directory to also write machine-readable CSV series")
	progress   = flag.Bool("progress", false, "print per-worker progress (stderr) during the heavy routing verifications (E3)")
	orbits     = flag.Bool("orbits", false, "run the E3 verifications orbit-reduced (bit-identical stats, faster; -orbits=false cross-checks)")
	journal    = flag.String("journal", "", "append JSONL run records for the E3 verifications to this file")
	ckptDir    = flag.String("checkpointdir", "", "run E3 verifications through per-case checkpoint files in this directory")
	resume     = flag.Bool("resume", false, "with -checkpointdir: skip shards already completed in existing checkpoints")
	debugAddr  = flag.String("debugaddr", "", "serve /metrics, /healthz and /debug/pprof on this address (e.g. :8080)")
	heartbeat  = flag.Duration("heartbeat", 30*time.Second, "with -journal: interval between heartbeat records (0 = off)")
	cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file (verifier workers carry pprof labels)")
	memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	sampleEach = flag.Duration("sample", 10*time.Second, "runtime self-telemetry sampling cadence, proc_* metrics (0 = off)")
	captureDir = flag.String("capturedir", "", "anomaly pprof capture ring directory (enables /debug/captures; empty = off)")
)

// obsReg collects every instrument family of the process; it backs both
// the -debugaddr /metrics endpoint and the -journal heartbeats.
var obsReg = obs.NewRegistry()

// pebbleIn instruments the pebble-game simulators of E1/E7/E11
// (initialized in main, after the registry exists for sure).
var pebbleIn *pebble.Instruments

// healthProg holds the latest Progress per experiment tag for /healthz.
var (
	healthMu   sync.Mutex
	healthProg = map[string]routing.Progress{}
)

func healthDoc() any {
	type progDoc struct {
		Tag   string `json:"tag"`
		Done  int64  `json:"done_paths"`
		Total int64  `json:"total_paths"`
		Peak  int64  `json:"peak_vertex_hits"`
		Final bool   `json:"final"`
	}
	doc := struct {
		Status     string    `json:"status"`
		Experiment string    `json:"experiment"`
		Progress   []progDoc `json:"progress,omitempty"`
	}{Status: "ok", Experiment: *experiment}
	healthMu.Lock()
	defer healthMu.Unlock()
	tags := make([]string, 0, len(healthProg))
	for tag := range healthProg {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	for _, tag := range tags {
		p := healthProg[tag]
		doc.Progress = append(doc.Progress, progDoc{Tag: tag,
			Done: p.Done, Total: p.Total, Peak: p.PeakVertexHits, Final: p.Final})
	}
	return doc
}

// journalWriter is the shared (possibly nil — nil is a valid no-op
// sink) run journal, opened lazily on first use.
var (
	journalW    *runlog.Writer
	journalOnce sync.Once
)

func journalWriter() *runlog.Writer {
	journalOnce.Do(func() {
		if *journal == "" {
			return
		}
		w, err := runlog.Open(*journal)
		if err != nil {
			fmt.Fprintln(os.Stderr, "journal:", err)
			return
		}
		journalW = w
	})
	return journalW
}

// progressPrinter returns a concurrency-safe routing.Progress callback
// feeding /healthz (and stderr with -progress), or nil when neither
// consumer is active.
func progressPrinter(tag string) func(routing.Progress) {
	if !*progress && *debugAddr == "" {
		return nil
	}
	var mu sync.Mutex
	return func(p routing.Progress) {
		healthMu.Lock()
		healthProg[tag] = p
		healthMu.Unlock()
		if !*progress {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		state := "…"
		if p.Final {
			state = "done"
		}
		fmt.Fprintf(os.Stderr, "[%s] worker %d/%d: %d/%d paths, peak vertex hits %d %s\n",
			tag, p.Worker+1, p.Workers, p.Done, p.Total, p.PeakVertexHits, state)
	}
}

// csvOut appends rows to <csvdir>/<name>.csv (header written once per
// process). No-op when -csvdir is unset.
var csvSeen = map[string]bool{}

func csvOut(name string, header []string, rows [][]string) {
	if *csvDir == "" {
		return
	}
	path := filepath.Join(*csvDir, name+".csv")
	var f *os.File
	var err error
	if !csvSeen[name] {
		f, err = os.Create(path)
		if err == nil {
			w := csv.NewWriter(f)
			_ = w.Write(header)
			w.Flush()
		}
		csvSeen[name] = true
	} else {
		f, err = os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "csv:", err)
		return
	}
	defer f.Close()
	w := csv.NewWriter(f)
	for _, row := range rows {
		_ = w.Write(row)
	}
	w.Flush()
}

func main() {
	flag.Parse()
	defer func() { journalW.Close() }() // nil-safe; only non-nil once e3 opened it
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}()
	}
	pebbleIn = pebble.NewInstruments(obsReg)
	// Runtime self-telemetry (proc_* families) plus, with -capturedir,
	// the anomaly-triggered pprof capture ring under /debug/captures.
	var prof *obs.Profiler
	if *captureDir != "" {
		p, err := obs.NewProfiler(obs.ProfilerConfig{
			Dir:                   *captureDir,
			HeapGrowthBytesPerSec: 1 << 30,
			GCPauseP99Seconds:     0.5,
			Registry:              obsReg,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		prof = p
	}
	sampler := obs.StartRuntimeSampler(obsReg, *sampleEach, prof.Consider)
	defer sampler.Stop()
	if *debugAddr != "" {
		srv, err := obs.StartServerMux(*debugAddr, obsReg, healthDoc, prof.Mount)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug server listening on %s\n", srv.URL())
	}
	if jw := journalWriter(); jw != nil && *heartbeat > 0 {
		stop := obs.StartHeartbeat(jw, runlog.Record{Tool: "paperrepro"}, obsReg, *heartbeat)
		defer stop()
	}
	runs := map[string]func(){
		"E1": e1, "E2": e2, "E3": e3, "E4": e4, "E5": e5, "E6": e6,
		"E7": e7, "E8": e8, "E9": e9, "E10": e10, "E11": e11, "E12": e12,
		"E13": e13, "E14": e14,
	}
	if *experiment == "all" {
		ids := make([]string, 0, len(runs))
		for id := range runs {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool {
			if len(ids[i]) != len(ids[j]) {
				return len(ids[i]) < len(ids[j])
			}
			return ids[i] < ids[j]
		})
		for _, id := range ids {
			runs[id]()
		}
		return
	}
	run, ok := runs[strings.ToUpper(*experiment)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
	run()
}

func header(id, title string) {
	fmt.Printf("\n=== %s: %s ===\n", id, title)
}

func must[T any](v T, err error) T {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	return v
}

func mustGraph(alg *bilinear.Algorithm, r int) *cdag.Graph { return must(cdag.New(alg, r)) }

// e1: Theorem 1 — measured DFS-schedule I/O against the sequential
// lower bound, with an exponent fit across r.
func e1() {
	header("E1", "Theorem 1 sequential I/O: measured vs Ω((n/√M)^ω₀·M)")
	fmt.Printf("%-16s %-3s %-5s %-10s %-10s %-12s %-8s\n", "algorithm", "r", "M", "IO(MIN)", "IO(LRU)", "Θ-bound", "IO/bound")
	type pt struct{ r, io float64 }
	cases := []struct {
		alg  *bilinear.Algorithm
		rMax int
		m    int
	}{
		{bilinear.Strassen(), 6, 48},
		{bilinear.Winograd(), 5, 48},
		{bilinear.DisconnectedFast(), 3, 200},
	}
	if lad, err := bilinear.Laderman(); err == nil {
		cases = append(cases, struct {
			alg  *bilinear.Algorithm
			rMax int
			m    int
		}{lad, 3, 100})
	}
	for _, c := range cases {
		rMax := c.rMax
		if *quick {
			rMax--
		}
		var pts []pt
		for r := 2; r <= rMax; r++ {
			g := mustGraph(c.alg, r)
			sched := schedule.RecursiveDFS(g)
			minIO := must((&pebble.Simulator{G: g, M: c.m, P: pebble.MIN, Obs: pebbleIn}).Run(sched)).IO()
			lruIO := must((&pebble.Simulator{G: g, M: c.m, P: pebble.LRU, Obs: pebbleIn}).Run(sched)).IO()
			n := math.Pow(float64(c.alg.N0), float64(r))
			lb := bounds.Theorem1Sequential(c.alg.Omega0(), n, float64(c.m))
			fmt.Printf("%-16s %-3d %-5d %-10d %-10d %-12.0f %-8.2f\n",
				c.alg.Name, r, c.m, minIO, lruIO, lb, float64(minIO)/lb)
			csvOut("e1_sequential_io",
				[]string{"algorithm", "r", "M", "io_min", "io_lru", "theta_bound"},
				[][]string{{c.alg.Name, strconv.Itoa(r), strconv.Itoa(c.m),
					strconv.FormatInt(minIO, 10), strconv.FormatInt(lruIO, 10),
					strconv.FormatFloat(lb, 'f', 0, 64)}})
			pts = append(pts, pt{float64(r), float64(minIO)})
		}
		// The DFS I/O obeys IO(r) = A·b^r − c·a^r (recurrence
		// IO(r) = b·IO(r−1) + Θ(a^r)), so the per-level growth ratio
		// approaches b = n₀^ω₀ from above. Report the ratio trend and
		// the asymptotic coefficient A extracted from consecutive
		// sizes: A should stabilize, certifying the Θ((n/√M)^ω₀·M)
		// shape.
		bF := float64(c.alg.B())
		aF := float64(c.alg.A())
		fmt.Printf("  per-level IO growth for %s (→ b = %.0f):", c.alg.Name, bF)
		for i := 1; i < len(pts); i++ {
			fmt.Printf(" %.2f", pts[i].io/pts[i-1].io)
		}
		fmt.Println()
		if len(pts) >= 2 {
			fmt.Printf("  asymptotic coefficient A in IO = A·b^r − c·a^r:")
			for i := 1; i < len(pts); i++ {
				r1 := pts[i-1].r
				// Solve A·b^r1 − c·a^r1 = io1; A·b^(r1+1) − c·a^(r1+1) = io2.
				b1, a1 := math.Pow(bF, r1), math.Pow(aF, r1)
				det := b1*bF*a1 - b1*a1*aF
				A := (pts[i].io*a1 - pts[i-1].io*a1*aF) / det
				fmt.Printf(" %.3f", A)
			}
			fmt.Println()
		}
	}
}

// e2: Claim 1 — the decoding-graph routing of Section 5.
func e2() {
	header("E2", "Claim 1: (11·7ᵏ)-routing in Strassen's decoding graph D_k")
	fmt.Printf("%-3s %-10s %-10s %-12s %-8s\n", "k", "paths", "maxHits", "bound", "slack")
	kMax := 4
	if *quick {
		kMax = 3
	}
	for k := 1; k <= kMax; k++ {
		g := mustGraph(bilinear.Strassen(), k)
		dr := must(routing.NewDecodingRouter(g))
		st := must(dr.VerifyClaim1())
		fmt.Printf("%-3d %-10d %-10d %-12d %-8.3f\n", k, st.NumPaths, st.MaxVertexHits, st.Bound,
			float64(st.MaxVertexHits)/float64(st.Bound))
	}
	fmt.Println("negative control (disconnected decoding -> Section 5 inapplicable):")
	for _, alg := range []*bilinear.Algorithm{bilinear.Classical(2), bilinear.DisconnectedFast()} {
		g := mustGraph(alg, 1)
		if _, err := routing.NewDecodingRouter(g); err != nil {
			fmt.Printf("  %-16s %v\n", alg.Name, err)
		} else {
			fmt.Printf("  %-16s UNEXPECTEDLY ROUTABLE\n", alg.Name)
		}
	}
}

// e3: Theorem 2 — the full 6aᵏ-routing.
func e3() {
	header("E3", "Routing Theorem: 6aᵏ-routing between inputs and outputs of G_k")
	fmt.Printf("%-16s %-3s %-10s %-10s %-10s %-12s %-8s %s\n",
		"algorithm", "k", "paths", "maxHits", "maxMeta", "bound 6aᵏ", "slack", "throughput")
	cases := []struct {
		alg *bilinear.Algorithm
		k   int
	}{
		{bilinear.Strassen(), 1}, {bilinear.Strassen(), 2}, {bilinear.Strassen(), 3},
		{bilinear.Winograd(), 2}, {bilinear.Classical(2), 2}, {bilinear.Classical(3), 1},
		{bilinear.StrassenSquared(), 1}, {bilinear.DisconnectedFast(), 1},
	}
	if !*quick {
		cases = append(cases, struct {
			alg *bilinear.Algorithm
			k   int
		}{bilinear.Strassen(), 4})
		if lad, err := bilinear.Laderman(); err == nil {
			cases = append(cases, struct {
				alg *bilinear.Algorithm
				k   int
			}{lad, 2})
		}
	}
	for _, c := range cases {
		g := mustGraph(c.alg, c.k)
		r := must(routing.NewRouter(g))
		r.OrbitReduction = *orbits
		r.Progress = progressPrinter(fmt.Sprintf("E3 %s k=%d", c.alg.Name, c.k))
		jw := journalWriter()
		// One trace per E3 configuration run, so routelog reconstructs
		// each A-series waterfall from the journal.
		trace := obs.NewTraceID()
		r.Obs = routing.NewInstruments(obsReg)
		r.Obs.Tracer = obs.NewTracer(jw, runlog.Record{Tool: "paperrepro", Alg: c.alg.Name, K: c.k, Trace: trace})
		emit := func(rec runlog.Record) {
			rec.Tool, rec.Alg, rec.K = "paperrepro", c.alg.Name, c.k
			rec.Trace = trace
			if err := jw.Emit(rec); err != nil {
				fmt.Fprintln(os.Stderr, "journal:", err)
			}
		}
		emit(runlog.Record{Event: runlog.EventRunStart, Resumed: *resume})
		var st routing.Stats
		var err error
		if *ckptDir != "" {
			st, err = r.VerifyFullRoutingCheckpointed(0, routing.CheckpointConfig{
				Path:   filepath.Join(*ckptDir, fmt.Sprintf("e3-%s-k%d.ckpt", c.alg.Name, c.k)),
				Resume: *resume,
				OnShard: func(d routing.ShardDone) {
					emit(runlog.Record{Event: runlog.EventShardDone,
						Shard: d.Shard, ShardsDone: d.Done, ShardsTotal: d.Total, ShardPaths: d.Paths})
				},
			})
		} else {
			st, err = r.VerifyFullRoutingParallel(0)
		}
		if err != nil {
			emit(runlog.Record{Event: runlog.EventViolation, Error: err.Error()})
		}
		st = must(st, err)
		rec := runlog.Record{Event: runlog.EventFinal, Paths: st.NumPaths,
			TotalHits: st.TotalHits, MaxVertexHits: st.MaxVertexHits, MaxMetaHits: st.MaxMetaHits,
			Bound: st.Bound, AdjChecked: st.AdjacencyChecked,
			ElapsedSec: st.Elapsed.Seconds(), PathsPerSec: st.PathsPerSecond(), Resumed: *resume}
		emit(rec)
		fmt.Printf("%-16s %-3d %-10d %-10d %-10d %-12d %-8.3f %8.3g paths/s\n",
			c.alg.Name, c.k, st.NumPaths, st.MaxVertexHits, st.MaxMetaHits, st.Bound,
			float64(st.MaxVertexHits)/float64(st.Bound), st.PathsPerSecond())
	}
}

// e4: Lemma 3 — guaranteed-dependency chain routing.
func e4() {
	header("E4", "Lemma 3: 2n₀ᵏ-routing of guaranteed dependencies (chains only)")
	fmt.Printf("%-16s %-3s %-10s %-10s %-12s\n", "algorithm", "k", "chains", "maxHits", "bound 2n₀ᵏ")
	cases := []struct {
		alg *bilinear.Algorithm
		k   int
	}{
		{bilinear.Strassen(), 2}, {bilinear.Strassen(), 3}, {bilinear.Strassen(), 4},
		{bilinear.Winograd(), 3}, {bilinear.Classical(2), 3}, {bilinear.DisconnectedFast(), 2},
	}
	if *quick {
		cases = cases[:4]
	}
	for _, c := range cases {
		g := mustGraph(c.alg, c.k)
		r := must(routing.NewRouter(g))
		st := must(r.VerifyGuaranteedRouting())
		fmt.Printf("%-16s %-3d %-10d %-10d %-12d\n", c.alg.Name, c.k, st.NumPaths, st.MaxVertexHits, st.Bound)
	}
}

// e5: Lemma 4 — exact chain-usage counting.
func e5() {
	header("E5", "Lemma 4: every guaranteed-dependency chain used exactly 3n₀ᵏ times")
	for _, c := range []struct {
		alg *bilinear.Algorithm
		k   int
	}{
		{bilinear.Strassen(), 2}, {bilinear.Strassen(), 3}, {bilinear.Classical(3), 2},
	} {
		r := must(routing.NewRouter(mustGraph(c.alg, c.k)))
		if err := r.VerifyChainUsage(); err != nil {
			fmt.Printf("%-16s k=%d FAIL: %v\n", c.alg.Name, c.k, err)
		} else {
			want := 3 * int64(math.Pow(float64(c.alg.N0), float64(c.k)))
			fmt.Printf("%-16s k=%d OK: every chain used exactly %d times\n", c.alg.Name, c.k, want)
		}
	}
}

// e6: Lemma 5 / Theorem 3 — Hall condition and the matching.
func e6() {
	header("E6", "Lemma 5: Hall condition |N(D)| ≥ |D|/n₀ and the many-to-one matching")
	fmt.Printf("%-16s %-5s %-9s %-12s %-14s\n", "algorithm", "side", "matched", "maxUse≤n₀", "exhaustive")
	for _, alg := range bilinear.All() {
		bm, err := routing.NewBaseMatching(alg)
		if err != nil {
			fmt.Printf("%-16s %-5s MATCHING FAILED: %v\n", alg.Name, "-", err)
			continue
		}
		maxUse := must(bm.VerifyCapacities())
		for _, side := range []bilinear.Side{bilinear.SideA, bilinear.SideB} {
			ex := "skipped (|X|>24)"
			deps := routing.GuaranteedBaseDeps(alg, side)
			if len(deps) <= 24 {
				viol := hall.CheckHall(len(deps), alg.B(),
					func(x int) []int { return routing.DepProducts(alg, side, deps[x][0], deps[x][1]) },
					func(int) int { return alg.N0 })
				if viol == nil {
					ex = "holds (all 2^|X| subsets)"
				} else {
					ex = fmt.Sprintf("VIOLATED at %v", viol)
				}
			}
			fmt.Printf("%-16s %-5v %-9s %-12d %-14s\n", alg.Name, side, "yes", maxUse, ex)
		}
	}
	fmt.Println("negative control (crippled decoder must violate the Hall condition):")
	bad := bilinear.Strassen()
	for t := 1; t < bad.B(); t++ {
		bad.W[0][t] = bad.W[0][t].Sub(bad.W[0][t])
		bad.W[1][t] = bad.W[1][t].Sub(bad.W[1][t])
	}
	if _, err := routing.NewBaseMatching(bad); err != nil {
		fmt.Printf("  detected: %v\n", err)
	} else {
		fmt.Println("  NOT DETECTED — Lemma 5 checker broken")
	}
}

// e7: Equations (1)/(2) — the segment argument.
func e7() {
	header("E7", "Equation (2): |δ′(S′)| ≥ |S̄|/12 over schedule segments")
	fmt.Printf("%-10s %-10s %-9s %-10s %-12s %-12s\n", "schedule", "segments", "minRatio", "collection", "certified", "deepPaths")
	g := mustGraph(bilinear.Strassen(), 4)
	rng := rand.New(rand.NewSource(3))
	for _, sc := range []struct {
		name  string
		sched []cdag.V
	}{
		{"dfs", schedule.RecursiveDFS(g)},
		{"rank", schedule.RankByRank(g)},
		{"random", must(schedule.RandomTopological(g, rng))},
	} {
		cert, err := core.Certify(g, sc.sched, core.Options{K: 2, RelaxedTarget: 8, DeepSegments: 2})
		if err != nil {
			fmt.Printf("%-10s FAIL: %v\n", sc.name, err)
			continue
		}
		var deep int64
		for _, s := range cert.Segments {
			deep += s.CrossingPaths
		}
		fmt.Printf("%-10s %-10d %-9.3f %-10d %-12s %-12d\n",
			sc.name, cert.CompleteSegments, cert.MinDeltaRatio, cert.CollectionSize, "(relaxed)", deep)
	}
	// The simpler Section 5 argument (Equation (1), decoding-only).
	g5 := mustGraph(bilinear.Strassen(), 5)
	s5 := must(core.CertifySection5(g5, schedule.RecursiveDFS(g5), 4, 1))
	fmt.Printf("Section 5 (Eq. 1, r=5, k=4, M=1): segments=%d minRatio=%.3f ≥ 1/22 certified=%d\n",
		s5.CompleteSegments, s5.MinDeltaRatio, s5.CertifiedIO)
	if _, err := core.CertifySection5(mustGraph(bilinear.Classical(2), 5), schedule.RecursiveDFS(mustGraph(bilinear.Classical(2), 5)), 4, 1); err != nil {
		fmt.Printf("Section 5 on classical2: refused as expected (%v)\n", err)
	}
	if !*quick {
		fmt.Println("full paper constants (r=7, k=5, M=14):")
		g7 := mustGraph(bilinear.Strassen(), 7)
		sched := schedule.RecursiveDFS(g7)
		cert := must(core.Certify(g7, sched, core.Options{K: 5, M: 14}))
		measured := must((&pebble.Simulator{G: g7, M: 14, P: pebble.MIN, Obs: pebbleIn}).Run(sched))
		fmt.Printf("  segments=%d certified IO≥%d measured IO=%d closed-form=%d minRatio=%.3f\n",
			cert.CompleteSegments, cert.CertifiedIO, measured.IO(),
			bounds.ProofSequential(bilinear.Strassen(), 7, 14), cert.MinDeltaRatio)
		// Parallel step: busiest processor of a balanced owner table.
		owner := make([]int32, g5.NumVertices())
		for v := range owner {
			owner[v] = int32(v % 4)
		}
		par := must(core.CertifyParallel(g5, schedule.RecursiveDFS(g5), owner, 4, 2, 0, 8))
		fmt.Printf("  parallel step (P=4, relaxed): busiest proc %d holds %d counted; %d segments, minRatio=%.3f\n",
			par.BusiestProc, par.BusiestCounted, par.CompleteSegments, par.MinDeltaRatio)
	}
}

// e8: Lemma 1 — input-disjoint subcomputation density.
func e8() {
	header("E8", "Lemma 1: ≥ 1/b² of subcomputations are mutually input-disjoint")
	fmt.Printf("%-16s %-3s %-3s %-8s %-8s %-10s %-10s\n", "algorithm", "r", "k", "picked", "total", "density", "bound 1/b²")
	cases := []struct {
		alg  *bilinear.Algorithm
		r, k int
	}{
		{bilinear.Strassen(), 4, 2}, {bilinear.Strassen(), 5, 2}, {bilinear.Strassen(), 5, 3},
		{bilinear.Winograd(), 4, 2}, {bilinear.Classical(2), 4, 2}, {bilinear.DisconnectedFast(), 3, 1},
	}
	if *quick {
		cases = cases[:3]
	}
	for _, c := range cases {
		g := mustGraph(c.alg, c.r)
		picked := g.InputDisjointCollection(c.k)
		total := int64(math.Pow(float64(c.alg.B()), float64(c.r-c.k)))
		fmt.Printf("%-16s %-3d %-3d %-8d %-8d %-10.4f %-10.4f\n",
			c.alg.Name, c.r, c.k, len(picked), total,
			float64(len(picked))/float64(total), 1/float64(c.alg.B()*c.alg.B()))
	}
}

// e9: Lemma 2 / structural table.
func e9() {
	header("E9", "base-graph structure: connectivity, copying, assumption, Lemma 2")
	fmt.Printf("%-16s %-4s %-4s %-8s %-9s %-9s %-10s %-9s\n",
		"algorithm", "ω₀", "fast", "decComp", "multCopy", "oneMult", "decNoCopy", "expansion")
	for _, alg := range bilinear.All() {
		st := bilinear.Analyze(alg)
		rep := expansion.Analyze(alg)
		expStr := "usable"
		if !rep.EdgeExpansionUsable {
			expStr = "FAILS"
		}
		fmt.Printf("%-16s %-4.2f %-4v %-8d %-9v %-9v %-10v %-9s\n",
			alg.Name, alg.Omega0(), alg.IsFast(), st.DecComponents,
			st.MultipleCopying(bilinear.SideA) || st.MultipleCopying(bilinear.SideB),
			st.SatisfiesOneMultiplicationPerCombination(), !st.DecodingHasCopy, expStr)
	}
}

// e10: the parallel corollaries of Theorem 1.
func e10() {
	header("E10", "parallel bandwidth: Cannon vs 2.5D vs CAPS, and the P-scaling exponent")
	n := 4096
	if *quick {
		n = 1024
	}
	fmt.Printf("%-14s %-7s %-12s %-12s %-14s\n", "algorithm", "P", "bandwidth", "mem/proc", "LB (Θ-form)")
	for _, p := range []int{4, 8, 16, 32} {
		if n%p != 0 {
			continue
		}
		res := must(parallel.Cannon(n, p))
		fmt.Printf("%-14s %-7d %-12d %-12d %-14.0f\n", "cannon", res.P, res.Bandwidth, res.MemoryPerProc,
			parallel.ClassicalLowerBound2D(float64(n), res.P))
	}
	for _, grid := range [][2]int{{16, 4}, {32, 4}} {
		if n%grid[0] != 0 {
			continue
		}
		res := must(parallel.TwoPointFiveD(n, grid[0], grid[1]))
		fmt.Printf("%-14s %-7d %-12d %-12d %-14.0f\n", "2.5d(c=4)", res.P, res.Bandwidth, res.MemoryPerProc,
			parallel.ClassicalLowerBound2D(float64(n), res.P)/2)
	}
	alg := bilinear.Strassen()
	type pt struct{ p, bw float64 }
	var pts []pt
	capsPs := []int{7, 49, 343}
	if !*quick {
		capsPs = append(capsPs, 2401, 16807)
	}
	for _, p := range capsPs {
		res := must(parallel.CAPS(alg, n, p, 1<<44))
		lb := bounds.MemoryIndependent(alg.Omega0(), float64(n), p)
		fmt.Printf("%-14s %-7d %-12d %-12d %-14.0f\n", "caps", p, res.Bandwidth, res.PeakMemory, lb)
		csvOut("e10_parallel_bw",
			[]string{"algorithm", "P", "bandwidth", "lower_bound"},
			[][]string{{"caps", strconv.Itoa(p), strconv.FormatInt(res.Bandwidth, 10),
				strconv.FormatFloat(lb, 'f', 0, 64)}})
		pts = append(pts, pt{float64(p), float64(res.Bandwidth)})
	}
	// Fit the P-scaling exponent bandwidth ∝ P^(−s) from the largest
	// consecutive pair (the exact cost is C·n²·((b/a)^log_b P − 1)/P,
	// which converges to the Theorem 1 exponent s = 2/ω₀ from below as
	// the level count grows).
	if len(pts) >= 2 {
		last, prev := pts[len(pts)-1], pts[len(pts)-2]
		s := math.Log(prev.bw/last.bw) / math.Log(last.p/prev.p)
		fmt.Printf("CAPS P-scaling exponent (largest pair): %.3f → 2/ω₀ = %.3f\n", s, 2/alg.Omega0())
	}
	// Memory-limited CAPS against the memory-dependent bound.
	fmt.Println("memory-limited CAPS (P=49):")
	for _, mFactor := range []int64{4, 16, 64} {
		m := 3*int64(n)*int64(n)/49 + int64(n)*mFactor
		res, err := parallel.CAPS(alg, n, 49, m)
		if err != nil {
			fmt.Printf("  M=%-12d %v\n", m, err)
			continue
		}
		lb := bounds.Theorem1Parallel(alg.Omega0(), float64(n), float64(m), 49)
		fmt.Printf("  M=%-12d BW=%-12d BFS/DFS=%d/%d  LB=%.0f\n", m, res.Bandwidth, res.BFSLevels, res.DFSLevels, lb)
	}
}

// e11: crossover between classical and fast, bound-predicted and
// pebble-measured.
func e11() {
	header("E11", "classical vs fast crossover: bound curves and measured I/O")
	alg := bilinear.Strassen()
	fmt.Printf("%-8s %-14s %-14s %-10s\n", "M", "crossover n", "classical@n", "fast@n")
	for _, m := range []float64{256, 1024, 4096, 16384} {
		x := bounds.CrossoverN(alg.Omega0(), m)
		fmt.Printf("%-8.0f %-14.0f %-14.3g %-10.3g\n", m, x,
			bounds.HongKungClassical(x, m), bounds.Theorem1Sequential(alg.Omega0(), x, m))
	}
	fmt.Println("measured pebble I/O at equal n, M (classical CDAG vs Strassen CDAG, DFS+MIN):")
	fmt.Printf("%-4s %-6s %-12s %-12s %-8s\n", "n", "M", "classical", "strassen", "winner")
	rMax := 6
	if *quick {
		rMax = 4
	}
	for r := 3; r <= rMax; r++ {
		n := 1 << r
		m := 24
		gc := mustGraph(bilinear.Classical(2), r)
		gs := mustGraph(bilinear.Strassen(), r)
		ioC := must((&pebble.Simulator{G: gc, M: m, P: pebble.MIN, Obs: pebbleIn}).Run(schedule.RecursiveDFS(gc))).IO()
		ioS := must((&pebble.Simulator{G: gs, M: m, P: pebble.MIN, Obs: pebbleIn}).Run(schedule.RecursiveDFS(gs))).IO()
		winner := "classical"
		if ioS < ioC {
			winner = "strassen"
		}
		fmt.Printf("%-4d %-6d %-12d %-12d %-8s\n", n, m, ioC, ioS, winner)
	}
}

// e12: figures.
func e12() {
	header("E12", "figures 1–9 as DOT/ASCII")
	g := mustGraph(bilinear.Strassen(), 2)
	r := must(routing.NewRouter(g))
	chain, _ := r.AppendChain(bilinear.SideA, 1, 0, nil)
	var root cdag.V = -1
	for v := cdag.V(0); int(v) < g.NumVertices(); v++ {
		if g.IsCopy(v) {
			root = g.MetaRoot(v)
			break
		}
	}
	sched := schedule.RecursiveDFS(g)
	figures := map[string]string{
		"fig1-basegraph.dot":  viz.BaseGraphDOT(bilinear.Strassen()),
		"fig2-metavertex.dot": viz.MetaVertexDOT(g, root),
		"fig4-chain.dot":      viz.PathDOT(g, chain, "guaranteed-dependency chain in G_2"),
		"fig5-segment.dot":    viz.SegmentDOT(mustGraph(bilinear.Strassen(), 1), pebble.MetaClosure(g1(), schedule.RecursiveDFS(g1())[:6])),
		"fig6-lemma4.txt":     viz.Lemma4ASCII(4, 0, 1, 2, 3),
		"fig8-matchingH.dot":  viz.HGraphDOT(bilinear.Strassen(), bilinear.SideA, 1, 0),
		"fig9-g1circle.dot":   viz.G1CircleDOT(bilinear.Strassen(), 1, []int{0, 1, 3}),
	}
	_ = sched
	names := make([]string, 0, len(figures))
	for name := range figures {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if *dotDir == "" {
			fmt.Printf("  %s (%d bytes) — pass -dotdir to write\n", name, len(figures[name]))
			continue
		}
		path := filepath.Join(*dotDir, name)
		if err := os.WriteFile(path, []byte(figures[name]), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("  wrote %s\n", path)
	}
	fmt.Println(viz.Lemma4ASCII(3, 0, 1, 2, 2))
}

func g1() *cdag.Graph { return mustGraph(bilinear.Strassen(), 1) }

// e13: extensions and ablations beyond the paper's proven statements.
func e13() {
	header("E13", "extensions & ablations: Section 8 conjecture, matching ablation, partitions, Lemma 6, random orbits")

	fmt.Println("Section 8 (value-class identification — the one-vertex-per-value model):")
	fmt.Printf("%-16s %-3s %-9s %-12s %-12s %-10s\n", "algorithm", "k", "sharing", "classHits", "bound 6aᵏ", "holds")
	for _, c := range []struct {
		alg *bilinear.Algorithm
		k   int
	}{
		{bilinear.Strassen(), 2}, {bilinear.Classical(2), 2},
		{bilinear.DisconnectedFast(), 1}, {bilinear.DisconnectedFast(), 2},
	} {
		g := mustGraph(c.alg, c.k)
		r := must(routing.NewRouter(g))
		st, err := r.VerifyValueClassRouting()
		holds := err == nil
		fmt.Printf("%-16s %-3d %-9v %-12d %-12d %-10v\n",
			c.alg.Name, c.k, g.HasValueSharing(), st.MaxMetaHits, st.Bound, holds)
	}

	fmt.Println("\nHall matching vs greedy first-fit (why Theorem 3's capacity matters):")
	fmt.Printf("%-16s %-3s %-12s %-10s %-10s %-12s %-12s\n",
		"algorithm", "k", "bound 6aᵏ", "hallLoad", "hallHits", "greedyLoad", "greedyHits")
	for _, c := range []struct {
		alg *bilinear.Algorithm
		k   int
	}{
		{bilinear.Strassen(), 2}, {bilinear.Strassen(), 3}, {bilinear.Winograd(), 2},
	} {
		cmp := must(routing.CompareMatchings(c.alg, c.k))
		verdict := ""
		if !cmp.GreedyOK {
			verdict = "  <- greedy BREAKS the bound"
		}
		fmt.Printf("%-16s %-3d %-12d %-10d %-10d %-12d %-12d%s\n",
			cmp.Alg, cmp.K, cmp.Bound, cmp.HallLoad, cmp.HallMaxHits, cmp.GreedyLoad, cmp.GreedyHits, verdict)
	}

	fmt.Println("\nrank-balanced CDAG partitions vs the cache-independent bound (Strassen G_5, n = 32):")
	fmt.Printf("%-6s %-12s %-14s %-14s %-16s\n", "P", "style", "crossEdges", "criticalPath", "LB n²/P^(2/ω₀)")
	g5 := mustGraph(bilinear.Strassen(), 5)
	rng := rand.New(rand.NewSource(12))
	w := bilinear.Strassen().Omega0()
	for _, p := range []int{4, 16, 49} {
		for _, style := range []parallel.PartitionStyle{parallel.Contiguous, parallel.Shuffled} {
			res := must(parallel.RankBalancedPartition(g5, p, style, rng))
			fmt.Printf("%-6d %-12v %-14d %-14d %-16.0f\n",
				p, style, res.CrossEdges, res.CriticalPath, bounds.MemoryIndependent(w, 32, p))
		}
	}

	fmt.Println("\nLemma 6 (Winograd bound on G₁° instances):")
	for _, alg := range []*bilinear.Algorithm{bilinear.Strassen(), bilinear.Winograd(), bilinear.Classical(2)} {
		if err := bilinear.VerifyLemma6Exhaustive(alg); err != nil {
			fmt.Printf("  %-16s FAIL: %v\n", alg.Name, err)
		} else {
			fmt.Printf("  %-16s holds on all %d product subsets × %d rows\n", alg.Name, 1<<uint(alg.B()), alg.N0)
		}
	}
	lad, err := bilinear.Laderman()
	if err == nil {
		if err := bilinear.VerifyLemma6Random(lad, rng, 300); err != nil {
			fmt.Printf("  %-16s FAIL: %v\n", lad.Name, err)
		} else {
			fmt.Printf("  %-16s holds on 300 random subsets × 3 rows\n", lad.Name)
		}
	}

	fmt.Println("\nrandom symmetry-orbit algorithms (full pipeline on machine-generated instances):")
	nOrbit := 5
	if *quick {
		nOrbit = 2
	}
	for i := 0; i < nOrbit; i++ {
		alg, err := bilinear.RandomAlgorithm(rng, nil)
		if err != nil {
			fmt.Printf("  draw %d: %v\n", i, err)
			continue
		}
		g := mustGraph(alg, 2)
		if err := g.Validate(rng); err != nil {
			fmt.Printf("  draw %d: CDAG INVALID: %v\n", i, err)
			continue
		}
		r, err := routing.NewRouter(g)
		if err != nil {
			fmt.Printf("  draw %d: matching failed: %v\n", i, err)
			continue
		}
		st, err := r.VerifyFullRouting()
		if err != nil {
			fmt.Printf("  draw %d: %v\n", i, err)
			continue
		}
		fmt.Printf("  draw %d: verified (maxHits %d ≤ %d)\n", i, st.MaxVertexHits, st.Bound)
	}
}

// e14: Mattson miss curves — the whole LRU miss curve of each schedule
// in one pass, against the Theorem 1 bound curve over M.
func e14() {
	header("E14", "LRU miss curves (Mattson stack distances) vs the bound curve over M")
	alg := bilinear.Strassen()
	r := 4
	if !*quick {
		r = 5
	}
	g := mustGraph(alg, r)
	n := math.Pow(2, float64(r))
	dfs := must(pebble.AnalyzeStackDistances(g, schedule.RecursiveDFS(g)))
	rank := must(pebble.AnalyzeStackDistances(g, schedule.RankByRank(g)))
	hybrid2 := must(pebble.AnalyzeStackDistances(g, schedule.HybridDFS(g, 2)))
	fmt.Printf("Strassen G_%d: %d accesses, %d compulsory\n", r, dfs.Accesses, dfs.Compulsory)
	fmt.Printf("%-8s %-12s %-12s %-12s %-12s\n", "M", "misses(dfs)", "misses(hyb2)", "misses(rank)", "Thm1 LB")
	for m := 8; m <= 1<<(2*r+1); m *= 4 {
		lb := bounds.Theorem1Sequential(alg.Omega0(), n, float64(m))
		fmt.Printf("%-8d %-12d %-12d %-12d %-12.0f\n",
			m, dfs.MissesAt(m), hybrid2.MissesAt(m), rank.MissesAt(m), lb)
		csvOut("e14_miss_curves",
			[]string{"M", "misses_dfs", "misses_hybrid2", "misses_rank", "theta_bound"},
			[][]string{{strconv.Itoa(m), strconv.FormatInt(dfs.MissesAt(m), 10),
				strconv.FormatInt(hybrid2.MissesAt(m), 10),
				strconv.FormatInt(rank.MissesAt(m), 10),
				strconv.FormatFloat(lb, 'f', 0, 64)}})
	}
	fmt.Printf("max reuse distance: dfs=%d hybrid2=%d rank=%d (the cache size where each\n",
		dfs.MaxDistance(), hybrid2.MaxDistance(), rank.MaxDistance())
	fmt.Println("schedule becomes compulsory-only; compare liveness peaks below)")
	lvD := must(pebble.AnalyzeLiveness(g, schedule.RecursiveDFS(g)))
	lvR := must(pebble.AnalyzeLiveness(g, schedule.RankByRank(g)))
	fmt.Printf("liveness peaks: dfs=%d rank=%d\n", lvD.Peak, lvR.Peak)
}
