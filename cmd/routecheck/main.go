// Command routecheck constructs the paper's routings on G_k of a
// catalog algorithm and verifies every claimed hit-count bound,
// printing a histogram of vertex hits.
//
// Usage:
//
//	routecheck [-alg strassen] [-k 3] [-which full|chains|decoding]
//	           [-workers 0] [-progress] [-adjstride 0]
//	           [-checkpoint run.ckpt] [-resume] [-shardrows 0] [-maxshards 0]
//	           [-journal run.jsonl] [-debugaddr :8080] [-debughold 0]
//	           [-heartbeat 30s] [-sample 10s] [-capturedir DIR]
//	           [-cpuprofile cpu.pb.gz] [-memprofile mem.pb.gz]
//	routecheck -summarize run.jsonl
//
// With -checkpoint, the full routing persists completed shards to the
// given file; a killed run restarted with -resume skips them and
// reports final stats bit-identical to an uninterrupted run. -maxshards
// stops after N new shards (exit code 3) to time-box long runs.
// -journal appends structured JSONL records (see internal/runlog);
// -summarize aggregates such a journal and exits.
//
// With -debugaddr, a debug HTTP server exposes Prometheus-format
// /metrics, a JSON /healthz (latest per-worker progress and checkpoint
// shard coverage), and /debug/pprof; the bound address is printed to
// stderr. -debughold keeps the server up after the run so one-shot
// runs can still be scraped. With -journal, -heartbeat emits a
// heartbeat record carrying the metrics snapshot — and, since schema
// 4, a compact resource snapshot (heap, goroutines, GC pauses, CPU) —
// at that interval. -sample sets the runtime self-telemetry cadence
// (the proc_* metric families); -capturedir enables anomaly-triggered
// pprof captures into a bounded ring served at /debug/captures.
//
// -cpuprofile and -memprofile write pprof profiles covering the whole
// run (flushed on every exit path, including verification failure and
// the -maxshards pause). Verifier workers run under pprof labels
// (worker=N), so `go tool pprof -tagfocus` attributes samples per
// worker.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/cdag"
	"pathrouting/internal/obs"
	"pathrouting/internal/routing"
	"pathrouting/internal/runlog"
)

var (
	algName    = flag.String("alg", "strassen", "algorithm name from the catalog")
	k          = flag.Int("k", 3, "recursion depth of G_k")
	which      = flag.String("which", "full", "routing: full (Theorem 2), chains (Lemma 3), decoding (Claim 1)")
	workers    = flag.Int("workers", 0, "worker goroutines for the full routing (0 = GOMAXPROCS)")
	progress   = flag.Bool("progress", false, "print per-worker progress while the full routing verifies")
	adjStride  = flag.Int64("adjstride", 0, "verify every Nth path edge-by-edge (0 = default 257, 1 = every path)")
	orbits     = flag.Bool("orbits", false, "full routing: collapse pair-path orbits (bit-identical stats, ~n₀ᵏ-fold less chain work; -orbits=false cross-checks)")
	orbStage1  = flag.Bool("orbitstage1", false, "with -orbits: use the stage-1 kernel (per-orbit chain rebuilds) instead of the family-aggregated stage-2 kernel; stats are bit-identical, useful for cross-checks and perf comparison")
	checkpoint = flag.String("checkpoint", "", "persist completed shards of the full routing to this file")
	resume     = flag.Bool("resume", false, "with -checkpoint: skip shards already completed in the checkpoint file")
	shardRows  = flag.Int64("shardrows", 0, "with -checkpoint: enumeration rows per shard (0 = ~1M paths per shard)")
	maxShards  = flag.Int64("maxshards", 0, "with -checkpoint: stop after N new shards, exit 3 (0 = run to completion)")
	journal    = flag.String("journal", "", "append JSONL run records to this file")
	summarize  = flag.String("summarize", "", "summarize a JSONL journal and exit")
	debugAddr  = flag.String("debugaddr", "", "serve /metrics, /healthz and /debug/pprof on this address (e.g. :8080)")
	debugHold  = flag.Duration("debughold", 0, "with -debugaddr: keep the debug server up this long after the run")
	heartbeat  = flag.Duration("heartbeat", 30*time.Second, "with -journal: interval between heartbeat records (0 = off)")
	cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file (verifier workers carry pprof labels)")
	memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	sampleEach = flag.Duration("sample", 10*time.Second, "runtime self-telemetry sampling cadence, proc_* metrics (0 = off)")
	captureDir = flag.String("capturedir", "", "anomaly pprof capture ring directory (enables /debug/captures; empty = off)")
)

// profileStop flushes at most once: every exit path (normal return,
// fail, the paused os.Exit) funnels through stopProfiles, and the
// paths overlap (fail after the deferred stop is armed).
var profileStop sync.Once

// startProfiles begins CPU profiling per the flags. The matching
// stopProfiles must run on every exit, including the os.Exit paths
// that skip defers, or the profile file is left truncated.
func startProfiles() {
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
	}
}

// stopProfiles flushes the CPU profile and writes the heap profile.
func stopProfiles() {
	profileStop.Do(func() {
		if *cpuProfile != "" {
			pprof.StopCPUProfile()
		}
		if *memProfile != "" {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
			f.Close()
		}
	})
}

// debugSrv is the optional debug HTTP server (nil without -debugaddr).
var debugSrv *obs.Server

// health aggregates the live run state served by /healthz.
var health = &healthState{workers: map[int]routing.Progress{}}

type healthState struct {
	mu      sync.Mutex
	workers map[int]routing.Progress
	shards  *routing.ShardDone
}

func (h *healthState) onProgress(p routing.Progress) {
	h.mu.Lock()
	h.workers[p.Worker] = p
	h.mu.Unlock()
}

func (h *healthState) onShard(d routing.ShardDone) {
	h.mu.Lock()
	h.shards = &d
	h.mu.Unlock()
}

// snapshot renders the current run state as the /healthz document.
func (h *healthState) snapshot() any {
	type workerDoc struct {
		Worker  int   `json:"worker"`
		Workers int   `json:"workers"`
		Done    int64 `json:"done_paths"`
		Total   int64 `json:"total_paths"`
		Peak    int64 `json:"peak_vertex_hits"`
		Final   bool  `json:"final"`
	}
	type shardDoc struct {
		Done  int64 `json:"done"`
		Total int64 `json:"total"`
		Last  int64 `json:"last_shard"`
	}
	doc := struct {
		Status  string       `json:"status"`
		Alg     string       `json:"alg"`
		K       int          `json:"k"`
		Which   string       `json:"which"`
		Process obs.ProcInfo `json:"process"`
		Workers []workerDoc  `json:"progress,omitempty"`
		Shards  *shardDoc    `json:"checkpoint_shards,omitempty"`
	}{Status: "ok", Alg: *algName, K: *k, Which: *which, Process: obs.ProcessInfo()}
	h.mu.Lock()
	defer h.mu.Unlock()
	ids := make([]int, 0, len(h.workers))
	for w := range h.workers {
		ids = append(ids, w)
	}
	sort.Ints(ids)
	for _, w := range ids {
		p := h.workers[w]
		doc.Workers = append(doc.Workers, workerDoc{Worker: p.Worker, Workers: p.Workers,
			Done: p.Done, Total: p.Total, Peak: p.PeakVertexHits, Final: p.Final})
	}
	if h.shards != nil {
		doc.Shards = &shardDoc{Done: h.shards.Done, Total: h.shards.Total, Last: h.shards.Shard}
	}
	return doc
}

// chainProgress fans one Progress callback out to several consumers
// (stderr printer, /healthz state); nil entries are dropped and an
// all-nil chain collapses to nil so the hot path skips emission.
func chainProgress(cbs ...func(routing.Progress)) func(routing.Progress) {
	live := cbs[:0]
	for _, cb := range cbs {
		if cb != nil {
			live = append(live, cb)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(p routing.Progress) {
		for _, cb := range live {
			cb(p)
		}
	}
}

// holdDebug parks the process so the debug server outlives a short run
// long enough to be scraped (make obs-smoke relies on this).
func holdDebug() {
	if debugSrv != nil && *debugHold > 0 {
		fmt.Fprintf(os.Stderr, "debug server held for %v\n", *debugHold)
		time.Sleep(*debugHold)
	}
}

// exitPaused signals an intentionally incomplete checkpointed run,
// distinguishable from verification failure (1) in scripts.
const exitPaused = 3

func fail(err error) {
	stopProfiles()
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}

func main() {
	flag.Parse()
	if *summarize != "" {
		s, err := runlog.SummarizeFile(*summarize)
		if err != nil {
			fail(err)
		}
		fmt.Print(s.Format())
		return
	}
	startProfiles()
	defer stopProfiles()
	var alg *bilinear.Algorithm
	for _, a := range bilinear.All() {
		if a.Name == *algName {
			alg = a
		}
	}
	if alg == nil {
		fail(fmt.Errorf("unknown algorithm %q", *algName))
	}
	g, err := cdag.New(alg, *k)
	if err != nil {
		fail(err)
	}

	var jw *runlog.Writer // nil journal is a no-op sink
	if *journal != "" {
		jw, err = runlog.Open(*journal)
		if err != nil {
			fail(err)
		}
		defer jw.Close()
	}
	// Every run gets a trace ID so its journal records — spans,
	// heartbeats, shard completions — group under one identity for
	// routelog, same as routed's service jobs.
	base := runlog.Record{Tool: "routecheck", Alg: alg.Name, K: *k, Workers: *workers,
		Trace: obs.NewTraceID()}
	emit := func(rec runlog.Record) {
		rec.Tool, rec.Alg, rec.K, rec.Workers = base.Tool, base.Alg, base.K, base.Workers
		rec.Trace = base.Trace
		if err := jw.Emit(rec); err != nil {
			fmt.Fprintln(os.Stderr, "journal:", err)
		}
	}

	reg := obs.NewRegistry()
	// Runtime self-telemetry plus (with -capturedir) the anomaly
	// profiler: the sampler's snapshots feed the capture thresholds,
	// and a tripped threshold lands a pprof capture in the ring.
	var prof *obs.Profiler
	if *captureDir != "" {
		prof, err = obs.NewProfiler(obs.ProfilerConfig{
			Dir:                   *captureDir,
			HeapGrowthBytesPerSec: 1 << 30,
			GCPauseP99Seconds:     0.5,
			Registry:              reg,
		})
		if err != nil {
			fail(err)
		}
	}
	sampler := obs.StartRuntimeSampler(reg, *sampleEach, prof.Consider)
	defer sampler.Stop()
	if *debugAddr != "" {
		debugSrv, err = obs.StartServerMux(*debugAddr, reg, health.snapshot, prof.Mount)
		if err != nil {
			fail(err)
		}
		defer debugSrv.Close()
		fmt.Fprintf(os.Stderr, "debug server listening on %s\n", debugSrv.URL())
	}
	if jw != nil && *heartbeat > 0 {
		stop := obs.StartHeartbeat(jw, base, reg, *heartbeat)
		defer stop()
	}
	defer holdDebug()

	var st routing.Stats
	switch *which {
	case "full":
		r, err := routing.NewRouter(g)
		if err != nil {
			fail(err)
		}
		r.AdjacencySampleStride = *adjStride
		r.OrbitReduction = *orbits
		r.OrbitStage1 = *orbStage1
		r.Obs = routing.NewInstruments(reg)
		r.Obs.Tracer = obs.NewTracer(jw, base)
		var printer func(routing.Progress)
		if *progress {
			printer = progressPrinter()
		}
		r.Progress = chainProgress(printer, health.onProgress)
		if *checkpoint != "" {
			runCheckpointed(r, alg, emit)
			return
		}
		emit(runlog.Record{Event: runlog.EventRunStart})
		st, err = r.VerifyFullRoutingParallel(*workers)
		if err != nil {
			emit(runlog.Record{Event: runlog.EventViolation, Error: err.Error()})
			fail(err)
		}
		emit(finalRecord(st, false, false))
		if err := r.VerifyChainUsage(); err != nil {
			fail(err)
		}
		fmt.Println("Lemma 4 chain-usage counts verified exact.")
		hist := histogram(g, r)
		printHist(hist)
	case "chains":
		r, err := routing.NewRouter(g)
		if err != nil {
			fail(err)
		}
		st, err = r.VerifyGuaranteedRouting()
		if err != nil {
			fail(err)
		}
	case "decoding":
		dr, err := routing.NewDecodingRouter(g)
		if err != nil {
			fail(err)
		}
		st, err = dr.VerifyClaim1()
		if err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("unknown routing %q", *which))
	}
	fmt.Printf("%s G_%d %s routing: %s\n", alg.Name, *k, *which, st)
	printStatsLine(st)
	fmt.Printf("VERIFIED: max vertex hits %d ≤ bound %d; max meta-vertex hits %d ≤ bound %d\n",
		st.MaxVertexHits, st.Bound, st.MaxMetaHits, st.Bound)
	if st.AdjacencyChecked > 0 {
		fmt.Printf("adjacency verified edge-by-edge on %d paths\n", st.AdjacencyChecked)
	}
}

// runCheckpointed drives the sharded crash-safe verifier and exits.
// The hit histogram is skipped here: it re-enumerates every path
// sequentially, which defeats the point of resumable deep-k runs.
func runCheckpointed(r *routing.Router, alg *bilinear.Algorithm, emit func(runlog.Record)) {
	emit(runlog.Record{Event: runlog.EventRunStart, Resumed: *resume})
	st, err := r.VerifyFullRoutingCheckpointed(*workers, routing.CheckpointConfig{
		Path:      *checkpoint,
		ShardRows: *shardRows,
		MaxShards: *maxShards,
		Resume:    *resume,
		OnShard: func(d routing.ShardDone) {
			health.onShard(d)
			emit(runlog.Record{Event: runlog.EventShardDone,
				Shard: d.Shard, ShardsDone: d.Done, ShardsTotal: d.Total, ShardPaths: d.Paths})
			if *progress {
				fmt.Fprintf(os.Stderr, "shard %d done (%d paths), %d/%d complete\n",
					d.Shard, d.Paths, d.Done, d.Total)
			}
		},
	})
	switch {
	case err == nil:
		emit(finalRecord(st, *resume, false))
		fmt.Printf("%s G_%d full routing: %s\n", alg.Name, *k, st)
		printStatsLine(st)
		fmt.Printf("VERIFIED: max vertex hits %d ≤ bound %d; max meta-vertex hits %d ≤ bound %d\n",
			st.MaxVertexHits, st.Bound, st.MaxMetaHits, st.Bound)
	case errors.Is(err, routing.ErrPaused):
		emit(finalRecord(st, *resume, true))
		fmt.Printf("PAUSED: %v\n", err)
		fmt.Printf("rerun with -resume to continue; partial stats: %s\n", st)
		holdDebug() // os.Exit skips the deferred hold
		stopProfiles()
		os.Exit(exitPaused)
	default:
		emit(runlog.Record{Event: runlog.EventViolation, Error: err.Error()})
		fail(err)
	}
}

// printStatsLine prints the deterministic stats fields on one line —
// everything in Stats except wall time — so interrupted+resumed and
// uninterrupted runs can be compared byte-for-byte (make verify-resume
// does exactly that).
func printStatsLine(st routing.Stats) {
	fmt.Printf("stats: paths=%d totalHits=%d maxVertexHits=%d maxMetaHits=%d bound=%d adjChecked=%d\n",
		st.NumPaths, st.TotalHits, st.MaxVertexHits, st.MaxMetaHits, st.Bound, st.AdjacencyChecked)
}

// finalRecord converts Stats to the journal's final-event record.
func finalRecord(st routing.Stats, resumed, paused bool) runlog.Record {
	rec := runlog.Record{
		Event:         runlog.EventFinal,
		Paths:         st.NumPaths,
		TotalHits:     st.TotalHits,
		MaxVertexHits: st.MaxVertexHits,
		MaxMetaHits:   st.MaxMetaHits,
		Bound:         st.Bound,
		AdjChecked:    st.AdjacencyChecked,
		ElapsedSec:    st.Elapsed.Seconds(),
		Resumed:       resumed,
		Paused:        paused,
	}
	if st.Elapsed > 0 {
		rec.PathsPerSec = float64(st.NumPaths) / st.Elapsed.Seconds()
	}
	return rec
}

// progressPrinter returns a concurrency-safe routing.Progress callback
// printing one line per snapshot to stderr.
func progressPrinter() func(routing.Progress) {
	var mu sync.Mutex
	return func(p routing.Progress) {
		mu.Lock()
		defer mu.Unlock()
		state := "…"
		if p.Final {
			state = "done"
		}
		fmt.Fprintf(os.Stderr, "worker %d/%d: %d/%d paths, peak vertex hits %d %s\n",
			p.Worker+1, p.Workers, p.Done, p.Total, p.PeakVertexHits, state)
	}
}

// histogram buckets vertex hit counts of the full routing by global rank.
func histogram(g *cdag.Graph, r *routing.Router) map[int][2]int64 {
	hits := make([]int64, g.NumVertices())
	r.ForEachPairPath(func(_ bilinear.Side, _, _ int64, path []cdag.V) {
		for _, v := range path {
			hits[v]++
		}
	})
	byRank := map[int][2]int64{} // rank -> {max, total}
	for v, h := range hits {
		rank := g.GlobalRank(cdag.V(v))
		cur := byRank[rank]
		if h > cur[0] {
			cur[0] = h
		}
		cur[1] += h
		byRank[rank] = cur
	}
	return byRank
}

func printHist(hist map[int][2]int64) {
	ranks := make([]int, 0, len(hist))
	for rk := range hist {
		ranks = append(ranks, rk)
	}
	sort.Ints(ranks)
	fmt.Printf("%-6s %-10s %-12s\n", "rank", "maxHits", "totalHits")
	for _, rk := range ranks {
		fmt.Printf("%-6d %-10d %-12d\n", rk, hist[rk][0], hist[rk][1])
	}
}
