// Command routecheck constructs the paper's routings on G_k of a
// catalog algorithm and verifies every claimed hit-count bound,
// printing a histogram of vertex hits.
//
// Usage:
//
//	routecheck [-alg strassen] [-k 3] [-which full|chains|decoding]
//	           [-workers 0] [-progress] [-adjstride 0]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/cdag"
	"pathrouting/internal/routing"
)

var (
	algName   = flag.String("alg", "strassen", "algorithm name from the catalog")
	k         = flag.Int("k", 3, "recursion depth of G_k")
	which     = flag.String("which", "full", "routing: full (Theorem 2), chains (Lemma 3), decoding (Claim 1)")
	workers   = flag.Int("workers", 0, "worker goroutines for the full routing (0 = GOMAXPROCS)")
	progress  = flag.Bool("progress", false, "print per-worker progress while the full routing verifies")
	adjStride = flag.Int64("adjstride", 0, "verify every Nth path edge-by-edge (0 = default 257, 1 = every path)")
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}

func main() {
	flag.Parse()
	var alg *bilinear.Algorithm
	for _, a := range bilinear.All() {
		if a.Name == *algName {
			alg = a
		}
	}
	if alg == nil {
		fail(fmt.Errorf("unknown algorithm %q", *algName))
	}
	g, err := cdag.New(alg, *k)
	if err != nil {
		fail(err)
	}

	var st routing.Stats
	switch *which {
	case "full":
		r, err := routing.NewRouter(g)
		if err != nil {
			fail(err)
		}
		r.AdjacencySampleStride = *adjStride
		if *progress {
			r.Progress = progressPrinter()
		}
		st, err = r.VerifyFullRoutingParallel(*workers)
		if err != nil {
			fail(err)
		}
		if err := r.VerifyChainUsage(); err != nil {
			fail(err)
		}
		fmt.Println("Lemma 4 chain-usage counts verified exact.")
		hist := histogram(g, r)
		printHist(hist)
	case "chains":
		r, err := routing.NewRouter(g)
		if err != nil {
			fail(err)
		}
		st, err = r.VerifyGuaranteedRouting()
		if err != nil {
			fail(err)
		}
	case "decoding":
		dr, err := routing.NewDecodingRouter(g)
		if err != nil {
			fail(err)
		}
		st, err = dr.VerifyClaim1()
		if err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("unknown routing %q", *which))
	}
	fmt.Printf("%s G_%d %s routing: %s\n", alg.Name, *k, *which, st)
	fmt.Printf("VERIFIED: max vertex hits %d ≤ bound %d; max meta-vertex hits %d ≤ bound %d\n",
		st.MaxVertexHits, st.Bound, st.MaxMetaHits, st.Bound)
	if st.AdjacencyChecked > 0 {
		fmt.Printf("adjacency verified edge-by-edge on %d paths\n", st.AdjacencyChecked)
	}
}

// progressPrinter returns a concurrency-safe routing.Progress callback
// printing one line per snapshot to stderr.
func progressPrinter() func(routing.Progress) {
	var mu sync.Mutex
	return func(p routing.Progress) {
		mu.Lock()
		defer mu.Unlock()
		state := "…"
		if p.Final {
			state = "done"
		}
		fmt.Fprintf(os.Stderr, "worker %d/%d: %d/%d paths, peak vertex hits %d %s\n",
			p.Worker+1, p.Workers, p.Done, p.Total, p.PeakVertexHits, state)
	}
}

// histogram buckets vertex hit counts of the full routing by global rank.
func histogram(g *cdag.Graph, r *routing.Router) map[int][2]int64 {
	hits := make([]int64, g.NumVertices())
	r.ForEachPairPath(func(_ bilinear.Side, _, _ int64, path []cdag.V) {
		for _, v := range path {
			hits[v]++
		}
	})
	byRank := map[int][2]int64{} // rank -> {max, total}
	for v, h := range hits {
		rank := g.GlobalRank(cdag.V(v))
		cur := byRank[rank]
		if h > cur[0] {
			cur[0] = h
		}
		cur[1] += h
		byRank[rank] = cur
	}
	return byRank
}

func printHist(hist map[int][2]int64) {
	ranks := make([]int, 0, len(hist))
	for rk := range hist {
		ranks = append(ranks, rk)
	}
	sort.Ints(ranks)
	fmt.Printf("%-6s %-10s %-12s\n", "rank", "maxHits", "totalHits")
	for _, rk := range ranks {
		fmt.Printf("%-6d %-10d %-12d\n", rk, hist[rk][0], hist[rk][1])
	}
}
