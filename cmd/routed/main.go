// Command routed is the verification-as-a-service daemon: clients
// POST (algorithm, k, kernel, adjstride, orbits) jobs to /jobs, get a
// job ID, poll GET /jobs/{id} or stream GET /jobs/{id}/events (SSE)
// for live progress, and fetch the final Stats certificate. One
// listener serves the job API next to the observability surface
// (/metrics, /healthz, /debug/pprof).
//
// Usage:
//
//	routed [-addr :7607] [-datadir routed-data] [-queue 64]
//	       [-jobs 1] [-jobworkers 0] [-maxk 6]
//	       [-journal routed.jsonl] [-heartbeat 30s] [-sample 10s]
//	       [-capturedir DIR] [-captures 8] [-heapgrowth N] [-gcpause 500ms]
//	       [-draintimeout 30s] [-crashaftershards 0]
//
// The service core (internal/serve) gives repeated traffic three
// layers of reuse: a content-addressed result cache (identical
// specs — by algorithm content, not name — return the cached
// certificate without enumerating), single-flight coalescing
// (identical in-flight submissions join one run), and per-job
// checkpoints under -datadir (a killed daemon restarted over the same
// directory re-enqueues incomplete jobs and resumes them mid-run,
// with certificates bit-identical to uninterrupted runs).
//
// Every job carries an end-to-end trace ID — minted at submission, or
// accepted from the client's X-Trace-Id header — stamped onto every
// journal record and span the run emits, so `routelog -journal
// routed.jsonl` reconstructs per-job waterfalls after the fact. The
// journal (with -journal) records each job's run_start, shard
// completions, heartbeats (with -heartbeat), engine spans, and final
// stats under that trace.
//
// The daemon watches itself: a runtime sampler publishes the proc_*
// metric families (heap, GC pauses, goroutines, CPU) every -sample
// and stamps a resource snapshot onto heartbeat journal records; an
// anomaly profiler captures pprof heap+CPU profiles into a bounded
// ring under -capturedir (default <datadir>/captures) when the heap
// grows faster than -heapgrowth bytes/sec, GC pause p99 exceeds
// -gcpause, or the job queue fills — browsable at /debug/captures.
// Every job's doc carries a resources block (wall, queue-wait, CPU,
// allocated bytes, paths/s) accumulated across crash/resume legs;
// `routelog -resources` rebuilds the same table from the journal.
//
// SIGINT/SIGTERM drains gracefully: the service stops claiming shards
// and closes SSE streams (/healthz reports "draining"), in-flight
// HTTP requests finish, running jobs stop at the next shard boundary
// with their checkpoints persisted, and the process exits within
// -draintimeout.
//
// -crashaftershards N is a failpoint: the process exits hard (no
// drain, no final flush) after N shard completions — the seam
// `make routed-smoke` uses to simulate a kill mid-job.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	"pathrouting/internal/obs"
	"pathrouting/internal/routing"
	"pathrouting/internal/runlog"
	"pathrouting/internal/serve"
)

var (
	addr         = flag.String("addr", ":7607", "HTTP listen address (job API, /metrics, /healthz, /debug/pprof)")
	dataDir      = flag.String("datadir", "routed-data", "state root: per-job checkpoints and the result-cache spill")
	queueDepth   = flag.Int("queue", 64, "bounded FIFO job queue depth (full queue = HTTP 503)")
	jobs         = flag.Int("jobs", 1, "jobs enumerated concurrently")
	jobWorkers   = flag.Int("jobworkers", 0, "verifier goroutines per running job (0 = GOMAXPROCS/jobs)")
	maxK         = flag.Int("maxk", 6, "largest accepted recursion depth k")
	journalPath  = flag.String("journal", "", "append JSONL run records to this file")
	heartbeat    = flag.Duration("heartbeat", 30*time.Second, "per-job heartbeat cadence, journal records and SSE events (0 = off)")
	drainTimeout = flag.Duration("draintimeout", 30*time.Second, "graceful-shutdown deadline on SIGINT/SIGTERM")
	crashAfter   = flag.Int64("crashaftershards", 0, "failpoint: exit hard after N shard completions (0 = off)")
	sample       = flag.Duration("sample", 10*time.Second, "runtime self-telemetry sampling cadence, proc_* metrics (0 = off)")
	captureDir   = flag.String("capturedir", "", "anomaly pprof capture ring directory (default <datadir>/captures)")
	captures     = flag.Int("captures", 8, "anomaly pprof capture ring size")
	heapGrowth   = flag.Int64("heapgrowth", 1<<30, "capture trigger: heap growth rate in bytes/sec (0 = off)")
	gcPause      = flag.Duration("gcpause", 500*time.Millisecond, "capture trigger: sampled GC pause p99 (0 = off)")
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "routed:", err)
	os.Exit(1)
}

func main() {
	flag.Parse()
	reg := obs.NewRegistry()

	var jw *runlog.Writer
	if *journalPath != "" {
		w, err := runlog.Open(*journalPath)
		if err != nil {
			fail(err)
		}
		defer w.Close()
		jw = w
	}

	// The failpoint counts real (non-restored) shard completions across
	// all jobs. OnShard fires after the shard is merged but before its
	// checkpoint flush, so dying on the Nth callback leaves N-1 shards
	// durable — a genuine mid-job kill, not a tidy pause. All journaling
	// (per-job shard/heartbeat/final records, trace-stamped) lives in
	// internal/serve now; the daemon only owns the failpoint.
	var shardCount atomic.Int64
	opts := serve.Options{
		DataDir:     *dataDir,
		QueueDepth:  *queueDepth,
		Concurrency: *jobs,
		JobWorkers:  *jobWorkers,
		MaxK:        *maxK,
		Registry:    reg,
		Journal:     jw,
		Heartbeat:   *heartbeat,
		OnShard: func(_ *serve.Job, d routing.ShardDone) {
			if *crashAfter > 0 && !d.Restored && shardCount.Add(1) >= *crashAfter {
				fmt.Fprintf(os.Stderr, "routed: failpoint: exiting after %d shard completions\n", *crashAfter)
				os.Exit(2)
			}
		},
	}

	s, err := serve.New(opts)
	if err != nil {
		fail(err)
	}

	// Anomaly-triggered profiling: the runtime sampler feeds every
	// snapshot through the profiler's thresholds (plus the serving
	// layer's queue depth, which the runtime cannot see); trips land
	// pprof captures in a bounded on-disk ring under /debug/captures.
	capDir := *captureDir
	if capDir == "" {
		capDir = filepath.Join(*dataDir, "captures")
	}
	prof, err := obs.NewProfiler(obs.ProfilerConfig{
		Dir:                   capDir,
		MaxCaptures:           *captures,
		HeapGrowthBytesPerSec: float64(*heapGrowth),
		GCPauseP99Seconds:     gcPause.Seconds(),
		QueueDepth:            s.QueueLen,
		QueueLimit:            *queueDepth,
		Registry:              reg,
	})
	if err != nil {
		fail(err)
	}
	sampler := obs.StartRuntimeSampler(reg, *sample, prof.Consider)

	srv, err := obs.StartServerMux(*addr, reg, s.Health, func(mux *http.ServeMux) {
		s.Mount(mux)
		prof.Mount(mux)
	})
	if err != nil {
		fail(err)
	}
	// Daemon-lifecycle record: process start, no trace (per-job
	// run_start records carry the traces).
	_ = jw.Emit(runlog.Record{Event: runlog.EventRunStart, Tool: "routed"})
	s.Start()
	fmt.Fprintf(os.Stderr, "routed listening on %s\n", srv.URL())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Fprintf(os.Stderr, "routed: %s: draining (deadline %s)\n", got, *drainTimeout)

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain order matters: BeginDrain first, so open SSE streams end
	// (they watch the serve stop channel) and /healthz flips to
	// "draining" — otherwise srv.Shutdown would hang on live streams
	// until the deadline. Then the HTTP listener, so in-flight requests
	// finish with complete bodies and new submissions stop at the
	// socket. Then the job drain, so running enumerations checkpoint
	// their last shard before the process exits.
	s.BeginDrain()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "routed:", err)
	}
	if err := s.Shutdown(ctx); err != nil {
		fail(err)
	}
	sampler.Stop()
	prof.Close()
}
