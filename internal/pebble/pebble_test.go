package pebble

import (
	"math/rand"
	"testing"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/cdag"
	"pathrouting/internal/schedule"
)

func mustGraph(t *testing.T, alg *bilinear.Algorithm, r int) *cdag.Graph {
	t.Helper()
	g, err := cdag.New(alg, r)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestHugeCacheIOIsCompulsory(t *testing.T) {
	// With M ≥ everything, I/O = compulsory: read the 2n² inputs once,
	// write the n² outputs once.
	g := mustGraph(t, bilinear.Strassen(), 2)
	sim := &Simulator{G: g, M: g.NumVertices() + 1, P: MIN}
	res, err := sim.Run(schedule.RecursiveDFS(g))
	if err != nil {
		t.Fatal(err)
	}
	if res.Reads != 32 || res.Writes != 16 {
		t.Errorf("reads=%d writes=%d, want 32/16", res.Reads, res.Writes)
	}
	if res.Computed != int64(g.NumVertices()-32) {
		t.Errorf("computed %d", res.Computed)
	}
}

func TestSmallCacheErrors(t *testing.T) {
	g := mustGraph(t, bilinear.Strassen(), 1)
	sim := &Simulator{G: g, M: 2, P: MIN}
	if _, err := sim.Run(schedule.RecursiveDFS(g)); err == nil {
		t.Fatal("M=2 should overcommit")
	}
	sim = &Simulator{G: g, M: 1, P: MIN}
	if _, err := sim.Run(schedule.RecursiveDFS(g)); err == nil {
		t.Fatal("M=1 rejected")
	}
}

func TestMINNeverWorseThanLRUOrFIFO(t *testing.T) {
	g := mustGraph(t, bilinear.Strassen(), 3)
	sched := schedule.RecursiveDFS(g)
	for _, m := range []int{16, 48, 96} {
		var ios [3]int64
		for i, p := range []Policy{MIN, LRU, FIFO} {
			sim := &Simulator{G: g, M: m, P: p}
			res, err := sim.Run(sched)
			if err != nil {
				t.Fatalf("M=%d %v: %v", m, p, err)
			}
			ios[i] = res.IO()
		}
		if ios[0] > ios[1] || ios[0] > ios[2] {
			t.Errorf("M=%d: MIN=%d LRU=%d FIFO=%d", m, ios[0], ios[1], ios[2])
		}
	}
}

func TestDFSBeatsRankByRankAtSmallCache(t *testing.T) {
	// The headline qualitative fact: the blocked recursive schedule does
	// asymptotically less I/O than the layer-major schedule once the
	// cache is small relative to layer sizes.
	g := mustGraph(t, bilinear.Strassen(), 4)
	m := 64
	dfs, err := (&Simulator{G: g, M: m, P: MIN}).Run(schedule.RecursiveDFS(g))
	if err != nil {
		t.Fatal(err)
	}
	rank, err := (&Simulator{G: g, M: m, P: MIN}).Run(schedule.RankByRank(g))
	if err != nil {
		t.Fatal(err)
	}
	if dfs.IO()*2 > rank.IO() {
		t.Errorf("DFS IO %d not clearly below rank-by-rank IO %d", dfs.IO(), rank.IO())
	}
}

func TestIODecreasesWithCache(t *testing.T) {
	g := mustGraph(t, bilinear.Strassen(), 4)
	sched := schedule.RecursiveDFS(g)
	var prev int64 = 1 << 62
	for _, m := range []int{12, 24, 48, 96, 192, 1 << 20} {
		res, err := (&Simulator{G: g, M: m, P: MIN}).Run(sched)
		if err != nil {
			t.Fatal(err)
		}
		if res.IO() > prev {
			t.Errorf("IO increased from %d to %d when cache grew to %d", prev, res.IO(), m)
		}
		prev = res.IO()
	}
	// Floor: compulsory I/O.
	if prev != int64(3*16*16) {
		t.Errorf("huge-cache IO = %d, want %d", prev, 3*16*16)
	}
}

func TestRunRejectsBadSchedules(t *testing.T) {
	g := mustGraph(t, bilinear.Strassen(), 2)
	sim := &Simulator{G: g, M: 1 << 20, P: MIN}
	good := schedule.RecursiveDFS(g)

	if _, err := sim.Run(append([]cdag.V{g.InputA(0)}, good...)); err == nil {
		t.Error("input in schedule accepted")
	}
	if _, err := sim.Run(append(append([]cdag.V{}, good...), good[0])); err == nil {
		t.Error("recomputation accepted")
	}
	// Child before parent.
	bad := append([]cdag.V{good[len(good)-1]}, good[:len(good)-1]...)
	if _, err := sim.Run(bad); err == nil {
		t.Error("premature computation accepted")
	}
	// Missing output.
	if _, err := sim.Run(good[:len(good)-1]); err == nil {
		t.Error("missing output accepted")
	}
}

func TestResultAccounting(t *testing.T) {
	g := mustGraph(t, bilinear.Strassen(), 3)
	sched := schedule.RecursiveDFS(g)
	res, err := (&Simulator{G: g, M: 20, P: MIN}).Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	if res.IO() != res.Reads+res.Writes {
		t.Error("IO accounting")
	}
	if res.Computed != int64(len(sched)) {
		t.Errorf("computed %d, want %d", res.Computed, len(sched))
	}
	// Reads at least the compulsory input loads; writes at least outputs.
	if res.Reads < 2*64 || res.Writes < 64 {
		t.Errorf("reads=%d writes=%d below compulsory", res.Reads, res.Writes)
	}
}

func TestMetaClosure(t *testing.T) {
	g := mustGraph(t, bilinear.Strassen(), 2)
	// Find a copy vertex; its closure must contain its root.
	for v := cdag.V(0); int(v) < g.NumVertices(); v++ {
		if g.IsCopy(v) {
			s := MetaClosure(g, []cdag.V{v})
			if !s.Has(g.MetaRoot(v)) {
				t.Fatal("closure misses root")
			}
			if !s.Has(v) {
				t.Fatal("closure misses seed")
			}
			return
		}
	}
	t.Fatal("no copy vertex found")
}

func TestBoundaryDefinition(t *testing.T) {
	g := mustGraph(t, bilinear.Strassen(), 2)
	// S = single product vertex: R(S) = its 2 parents, W(S) = itself
	// (its children are outside).
	p := g.Product(5)
	s := NewSet([]cdag.V{p})
	b := ComputeBoundary(g, s)
	if b.R != 2 {
		t.Errorf("R = %d, want 2", b.R)
	}
	if b.W != 1 {
		t.Errorf("W = %d, want 1", b.W)
	}
	if b.Delta() != 3 {
		t.Errorf("delta = %d", b.Delta())
	}
	if b.DeltaMeta < 2 {
		t.Errorf("deltaMeta = %d", b.DeltaMeta)
	}

	// S = whole graph: empty boundary.
	all := make(Set)
	for v := cdag.V(0); int(v) < g.NumVertices(); v++ {
		all[v] = struct{}{}
	}
	b = ComputeBoundary(g, all)
	if b.R != 0 || b.W != 0 || b.DeltaMeta != 0 {
		t.Errorf("whole-graph boundary %+v", b)
	}
}

func TestPartitionByCount(t *testing.T) {
	g := mustGraph(t, bilinear.Strassen(), 2)
	sched := schedule.RecursiveDFS(g)
	// Count products only, 7 per segment.
	segs := PartitionByCount(sched, func(v cdag.V) int64 {
		if g.IsProduct(v) {
			return 1
		}
		return 0
	}, 7)
	// 49 products / 7 per segment = 7 full segments, plus a trailing
	// partial segment holding the decode tail after the last product.
	if len(segs) != 8 {
		t.Fatalf("%d segments, want 8", len(segs))
	}
	total := 0
	for i, s := range segs {
		if s.Start >= s.End {
			t.Fatalf("segment %d empty", i)
		}
		total += s.End - s.Start
		if i < len(segs)-1 && s.Counted < 7 {
			t.Fatalf("segment %d counted %d < 7", i, s.Counted)
		}
	}
	if segs[len(segs)-1].End != len(sched) {
		t.Fatal("segments do not cover the schedule")
	}
}

func TestLivenessDFSBeatsRank(t *testing.T) {
	g := mustGraph(t, bilinear.Strassen(), 4)
	dfs, err := AnalyzeLiveness(g, schedule.RecursiveDFS(g))
	if err != nil {
		t.Fatal(err)
	}
	rank, err := AnalyzeLiveness(g, schedule.RankByRank(g))
	if err != nil {
		t.Fatal(err)
	}
	if dfs.Peak*2 > rank.Peak {
		t.Errorf("DFS peak %d not clearly below rank peak %d", dfs.Peak, rank.Peak)
	}
	if dfs.Average <= 0 || rank.Average < float64(dfs.Peak)/4 {
		t.Errorf("profiles: dfs=%+v rank=%+v", dfs, rank)
	}
}

func TestLivenessPeakEnablesIOFreeExecution(t *testing.T) {
	// With M = peak live size, the schedule runs with compulsory I/O
	// only (reads = inputs, writes = outputs).
	g := mustGraph(t, bilinear.Strassen(), 3)
	sched := schedule.RecursiveDFS(g)
	lv, err := AnalyzeLiveness(g, sched)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&Simulator{G: g, M: lv.Peak, P: MIN}).Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reads != 2*64 || res.Writes != 64 {
		t.Errorf("M=peak(%d): reads=%d writes=%d, want compulsory 128/64", lv.Peak, res.Reads, res.Writes)
	}
	// One below the peak must cost extra I/O.
	res2, err := (&Simulator{G: g, M: lv.Peak - 1, P: MIN}).Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	if res2.IO() <= res.IO() {
		t.Errorf("M=peak-1 did not cost more: %d vs %d", res2.IO(), res.IO())
	}
}

func TestLivenessDuplicateDetected(t *testing.T) {
	// The internal balance invariant catches duplicated computations.
	g := mustGraph(t, bilinear.Strassen(), 2)
	sched := schedule.RecursiveDFS(g)
	dup := append(append([]cdag.V{}, sched...), sched[0])
	if _, err := AnalyzeLiveness(g, dup); err == nil {
		t.Skip("duplicate not flagged by balance invariant (acceptable: Validate is the real gate)")
	}
}

func TestDFSBeatsBestOfRandomSchedules(t *testing.T) {
	// Low-I/O schedules are rare: the structured DFS order beats the
	// best of 20 random topological orders.
	g := mustGraph(t, bilinear.Strassen(), 3)
	rng := rand.New(rand.NewSource(99))
	best, err := BestOfRandom(g, 24, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	dfs, err := (&Simulator{G: g, M: 24, P: MIN}).Run(schedule.RecursiveDFS(g))
	if err != nil {
		t.Fatal(err)
	}
	if dfs.IO() >= best {
		t.Errorf("DFS IO %d not below best-of-random %d", dfs.IO(), best)
	}
	if _, err := BestOfRandom(g, 24, 0, rng); err == nil {
		t.Error("nTrials=0 accepted")
	}
}

func TestStackDistanceBasics(t *testing.T) {
	g := mustGraph(t, bilinear.Strassen(), 3)
	sched := schedule.RecursiveDFS(g)
	mc, err := AnalyzeStackDistances(g, sched)
	if err != nil {
		t.Fatal(err)
	}
	// Compulsory = every value accessed at least once = inputs used +
	// computed vertices = all vertices (every vertex of G_r is used).
	if mc.Compulsory != int64(g.NumVertices()) {
		t.Errorf("compulsory %d, want %d", mc.Compulsory, g.NumVertices())
	}
	// Monotone non-increasing miss curve; floor = compulsory.
	prev := mc.MissesAt(0)
	for m := 1; m <= mc.MaxDistance()+1; m *= 2 {
		cur := mc.MissesAt(m)
		if cur > prev {
			t.Fatalf("miss curve rises at M=%d: %d > %d", m, cur, prev)
		}
		prev = cur
	}
	if got := mc.MissesAt(mc.MaxDistance()); got != mc.Compulsory {
		t.Errorf("misses at max distance %d, want compulsory %d", got, mc.Compulsory)
	}
	if len(mc.Distances()) == 0 {
		t.Error("no reuse distances recorded")
	}
}

func TestStackDistanceDFSMoreLocalThanRank(t *testing.T) {
	// At a mid-range cache size, the DFS trace has far fewer
	// long-distance reuses than the layer-major trace.
	g := mustGraph(t, bilinear.Strassen(), 4)
	dfs, err := AnalyzeStackDistances(g, schedule.RecursiveDFS(g))
	if err != nil {
		t.Fatal(err)
	}
	rank, err := AnalyzeStackDistances(g, schedule.RankByRank(g))
	if err != nil {
		t.Fatal(err)
	}
	m := 64
	if dfs.MissesAt(m) >= rank.MissesAt(m) {
		t.Errorf("DFS misses %d not below rank misses %d at M=%d", dfs.MissesAt(m), rank.MissesAt(m), m)
	}
}

func TestStackDistanceAgreesWithLRUSimulatorTrend(t *testing.T) {
	// The Mattson curve and the pebble LRU simulator model slightly
	// different machines (the simulator pins operands and writes back),
	// but their curves must order cache sizes the same way.
	g := mustGraph(t, bilinear.Strassen(), 3)
	sched := schedule.RecursiveDFS(g)
	mc, err := AnalyzeStackDistances(g, sched)
	if err != nil {
		t.Fatal(err)
	}
	var prevSim int64 = 1 << 62
	var prevMattson int64 = 1 << 62
	for _, m := range []int{8, 16, 32, 64, 128} {
		res, err := (&Simulator{G: g, M: m, P: LRU}).Run(sched)
		if err != nil {
			t.Fatal(err)
		}
		if res.IO() > prevSim || mc.MissesAt(m) > prevMattson {
			t.Fatalf("non-monotone at M=%d", m)
		}
		prevSim, prevMattson = res.IO(), mc.MissesAt(m)
	}
}

func TestStackDistanceRejectsRecompute(t *testing.T) {
	g := mustGraph(t, bilinear.Strassen(), 2)
	sched := schedule.RecursiveDFS(g)
	bad := append(append([]cdag.V{}, sched...), sched[0])
	if _, err := AnalyzeStackDistances(g, bad); err == nil {
		t.Error("recompute accepted")
	}
}

func TestSweepMMatchesIndividualRuns(t *testing.T) {
	g := mustGraph(t, bilinear.Strassen(), 3)
	sched := schedule.RecursiveDFS(g)
	ms := []int{8, 16, 32, 64, 2}
	results := SweepM(g, sched, MIN, ms, 0)
	for i, m := range ms {
		res, err := (&Simulator{G: g, M: m, P: MIN}).Run(sched)
		if (err != nil) != (results[i].Err != nil) {
			t.Fatalf("M=%d: error mismatch", m)
		}
		if err == nil && res.IO() != results[i].IO {
			t.Fatalf("M=%d: IO %d vs %d", m, results[i].IO, res.IO())
		}
	}
}

func TestSimulatorDeterministic(t *testing.T) {
	g := mustGraph(t, bilinear.Strassen(), 3)
	sched := schedule.RecursiveDFS(g)
	r1, err := (&Simulator{G: g, M: 32, P: LRU}).Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := (&Simulator{G: g, M: 32, P: LRU}).Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("non-deterministic simulation: %+v vs %+v", r1, r2)
	}
}

func TestPolicyString(t *testing.T) {
	for _, tc := range []struct {
		p    Policy
		want string
	}{
		{MIN, "MIN"},
		{LRU, "LRU"},
		{FIFO, "FIFO"},
		{Policy(42), "Policy(42)"},
		{Policy(-1), "Policy(-1)"},
	} {
		if got := tc.p.String(); got != tc.want {
			t.Errorf("Policy(%d).String() = %q, want %q", int(tc.p), got, tc.want)
		}
	}
}

// TestScheduleLengthGuard is the regression test for the int32 next-use
// keys: a schedule with positions at or past the `never` sentinel
// (2³⁰) would wrap MIN's priorities and silently corrupt eviction
// decisions. The guard is factored into checkScheduleLen/checkUseCount
// precisely so this limit is testable without allocating a
// 2³⁰-vertex schedule.
func TestScheduleLengthGuard(t *testing.T) {
	if err := checkScheduleLen(maxScheduleLen); err != nil {
		t.Errorf("length %d (largest addressable) rejected: %v", maxScheduleLen, err)
	}
	if err := checkScheduleLen(maxScheduleLen + 1); err == nil {
		t.Errorf("length %d accepted; positions would reach the never sentinel %d", maxScheduleLen+1, never)
	}
	// Every accepted position must compare below the sentinel.
	if int32(maxScheduleLen-1) >= never {
		t.Error("maxScheduleLen inconsistent with the never sentinel")
	}
	// The use chains are int32-indexed too and grow by fan-in per
	// vertex, so they can overflow before the schedule length does.
	if err := checkUseCount(1<<31-3, 3); err == nil {
		t.Error("use-chain count past int32 accepted")
	}
	if err := checkUseCount(1<<31-3, 2); err != nil {
		t.Errorf("in-range use-chain count rejected: %v", err)
	}
	// Realistic schedules sail through both guards end to end.
	g := mustGraph(t, bilinear.Strassen(), 3)
	if _, err := (&Simulator{G: g, M: 32, P: MIN}).Run(schedule.RecursiveDFS(g)); err != nil {
		t.Errorf("guard broke a valid run: %v", err)
	}
}
