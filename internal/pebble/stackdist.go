package pebble

// Mattson stack-distance analysis: the classic one-pass computation
// (Mattson et al. 1970) of LRU reuse distances for a reference trace,
// yielding the number of LRU misses for *every* cache size
// simultaneously. The trace of a schedule is the sequence of value
// accesses it performs: each computation reads its parents and creates
// its result. The resulting miss curve is the locality fingerprint of
// the schedule — Theorem 1 lower-bounds it for every M at once, and the
// DFS schedule's curve hugs the bound while the rank-by-rank curve
// plateaus at the layer size.

import (
	"fmt"
	"sort"

	"pathrouting/internal/cdag"
)

// MissCurve holds the result of a stack-distance pass.
type MissCurve struct {
	// Accesses is the total number of value accesses in the trace.
	Accesses int64
	// Compulsory is the number of first accesses (cold misses),
	// incurred at every cache size.
	Compulsory int64
	// distHist[d] counts reuse accesses with stack distance exactly d
	// (1-based: d values were touched since the previous access).
	distHist []int64
}

// MissesAt returns the number of LRU misses for a fully-associative
// cache of m values: compulsory misses plus reuses with stack distance
// exceeding m.
func (mc *MissCurve) MissesAt(m int) int64 {
	if m < 0 {
		m = 0
	}
	misses := mc.Compulsory
	for d := m + 1; d < len(mc.distHist); d++ {
		misses += mc.distHist[d]
	}
	return misses
}

// MaxDistance returns the largest observed reuse distance (the cache
// size beyond which only compulsory misses remain).
func (mc *MissCurve) MaxDistance() int {
	for d := len(mc.distHist) - 1; d >= 1; d-- {
		if mc.distHist[d] > 0 {
			return d
		}
	}
	return 0
}

// Distances returns the sorted distinct reuse distances observed —
// the interesting cache sizes where the curve steps.
func (mc *MissCurve) Distances() []int {
	var out []int
	for d := 1; d < len(mc.distHist); d++ {
		if mc.distHist[d] > 0 {
			out = append(out, d)
		}
	}
	sort.Ints(out)
	return out
}

// AnalyzeStackDistances runs the Mattson pass over the access trace of
// the schedule on g. Accesses per scheduled vertex: one read per
// parent, then the creation of the vertex itself (a compulsory miss).
func AnalyzeStackDistances(g *cdag.Graph, sched []cdag.V) (*MissCurve, error) {
	n := g.NumVertices()
	// lastTime[v] = BIT position of v's most recent access, or 0.
	lastTime := make([]int64, n)
	// Total accesses bound: schedule length × (max fan-in + 1).
	var total int64
	var buf []cdag.Edge
	for _, v := range sched {
		buf = g.AppendParents(v, buf[:0])
		total += int64(len(buf)) + 1
	}
	bit := newBIT(int(total) + 2)
	mc := &MissCurve{distHist: make([]int64, 2)}

	clock := int64(0)
	access := func(v cdag.V) error {
		clock++
		if lastTime[v] == 0 {
			mc.Compulsory++
		} else {
			// Distinct values touched since last access of v = number
			// of marked positions after lastTime[v].
			d := int(bit.sumFrom(int(lastTime[v]) + 1))
			d++ // v itself re-enters at the top
			for d >= len(mc.distHist) {
				mc.distHist = append(mc.distHist, 0)
			}
			mc.distHist[d]++
			bit.add(int(lastTime[v]), -1)
		}
		bit.add(int(clock), 1)
		lastTime[v] = clock
		mc.Accesses++
		return nil
	}

	computed := make([]bool, n)
	for _, v := range sched {
		if computed[v] {
			return nil, fmt.Errorf("pebble: stack distance trace recomputes %s", g.Label(v))
		}
		buf = g.AppendParents(v, buf[:0])
		for _, e := range buf {
			if err := access(e.To); err != nil {
				return nil, err
			}
		}
		if err := access(v); err != nil {
			return nil, err
		}
		computed[v] = true
	}
	return mc, nil
}

// bitTree is a Fenwick tree over trace positions.
type bitTree struct {
	n    int
	tree []int64
}

func newBIT(n int) *bitTree { return &bitTree{n: n, tree: make([]int64, n+1)} }

func (b *bitTree) add(i int, delta int64) {
	for ; i <= b.n; i += i & (-i) {
		b.tree[i] += delta
	}
}

// prefix returns the sum of positions 1..i.
func (b *bitTree) prefix(i int) int64 {
	var s int64
	for ; i > 0; i -= i & (-i) {
		s += b.tree[i]
	}
	return s
}

// sumFrom returns the sum of positions i..n.
func (b *bitTree) sumFrom(i int) int64 {
	return b.prefix(b.n) - b.prefix(i-1)
}
