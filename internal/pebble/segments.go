package pebble

// This file implements Definition 1 of the paper: for a set S of
// consecutively-computed vertices, R(S) is the set of vertices outside S
// read during S's computation, W(S) the vertices of S that must survive
// S (written unless they stay cached), δ(S) their disjoint union, and
// δ'(S') the analogous boundary over meta-vertices after closing S under
// meta-vertex membership. These quantities drive the paper's segment
// argument: each segment's I/O is at least |δ'(S')| − 2M.

import "pathrouting/internal/cdag"

// Set is a vertex set with O(1) membership.
type Set map[cdag.V]struct{}

// NewSet builds a Set from a slice.
func NewSet(vs []cdag.V) Set {
	s := make(Set, len(vs))
	for _, v := range vs {
		s[v] = struct{}{}
	}
	return s
}

// Has reports membership.
func (s Set) Has(v cdag.V) bool {
	_, ok := s[v]
	return ok
}

// MetaClosure returns the closure of vs under meta-vertex membership:
// whenever any vertex of a meta-vertex is included, all of its members
// are (the paper's convention "when v ∈ S, every vertex in the same
// meta-vertex is also in S").
func MetaClosure(g *cdag.Graph, vs []cdag.V) Set {
	roots := make(map[cdag.V]struct{})
	for _, v := range vs {
		roots[g.MetaRoot(v)] = struct{}{}
	}
	s := make(Set, 2*len(vs))
	for root := range roots {
		for _, m := range g.MetaMembers(root) {
			s[m] = struct{}{}
		}
	}
	return s
}

// Boundary holds the Definition 1 quantities for one segment.
type Boundary struct {
	// R is |R(S)|: vertices outside S with an edge into S.
	R int64
	// W is |W(S)|: vertices of S with an edge leaving S.
	W int64
	// DeltaMeta is |δ'(S')|: meta-vertices outside S' adjacent to S'.
	DeltaMeta int64
}

// Delta returns |δ(S)| = |R(S)| + |W(S)| (the two sets are disjoint).
func (b Boundary) Delta() int64 { return b.R + b.W }

// ComputeBoundary evaluates Definition 1 for the (already meta-closed)
// set s.
func ComputeBoundary(g *cdag.Graph, s Set) Boundary {
	var b Boundary
	var buf []cdag.Edge
	rSeen := make(Set)
	sRoots := make(map[cdag.V]struct{})
	for v := range s {
		sRoots[g.MetaRoot(v)] = struct{}{}
	}
	deltaRoots := make(map[cdag.V]struct{})
	for v := range s {
		wrote := false
		buf = g.AppendParents(v, buf[:0])
		for _, e := range buf {
			if !s.Has(e.To) {
				if !rSeen.Has(e.To) {
					rSeen[e.To] = struct{}{}
					b.R++
				}
				if root := g.MetaRoot(e.To); !hasRoot(sRoots, root) {
					deltaRoots[root] = struct{}{}
				}
			}
		}
		buf = g.AppendChildren(v, buf[:0])
		for _, e := range buf {
			if !s.Has(e.To) {
				wrote = true
				if root := g.MetaRoot(e.To); !hasRoot(sRoots, root) {
					deltaRoots[root] = struct{}{}
				}
			}
		}
		if wrote {
			b.W++
		}
	}
	b.DeltaMeta = int64(len(deltaRoots))
	return b
}

func hasRoot(roots map[cdag.V]struct{}, r cdag.V) bool {
	_, ok := roots[r]
	return ok
}

// Segment is a half-open range [Start, End) of schedule positions.
type Segment struct {
	Start, End int
	// Counted is the number of counted meta-vertices the segment
	// contributes (the paper's |S̄|).
	Counted int64
}

// PartitionByCount cuts the schedule into the smallest segments such
// that each (except possibly the last) accumulates at least target
// counted units. countOf(v) gives the number of counted vertices whose
// meta-vertex becomes part of S when v is computed; pass the
// meta-aware weighting computed by the caller (e.g. internal/core's
// counted-rank weights) so that meta-closure never double-counts.
func PartitionByCount(schedule []cdag.V, countOf func(cdag.V) int64, target int64) []Segment {
	var segs []Segment
	start := 0
	var acc int64
	for pos, v := range schedule {
		acc += countOf(v)
		if acc >= target {
			segs = append(segs, Segment{Start: start, End: pos + 1, Counted: acc})
			start = pos + 1
			acc = 0
		}
	}
	if start < len(schedule) {
		segs = append(segs, Segment{Start: start, End: len(schedule), Counted: acc})
	}
	return segs
}
