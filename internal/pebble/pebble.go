// Package pebble simulates the paper's two-level memory model — the
// red-blue pebble game of Hong & Kung played on a CDAG — and measures
// the I/O of concrete schedules.
//
// Model (Section 1 of the paper): slow memory is unbounded; fast memory
// (cache) holds at most M values. Initially all inputs reside in slow
// memory and the cache is empty. Reading a value into cache or writing
// one back costs one I/O. A vertex may be computed only when all its
// parents are in cache, and the result is placed in cache. No vertex is
// computed twice. The run ends when every output has been written to
// slow memory. The I/O-complexity of the CDAG is the minimum total I/O
// over schedules and replacement decisions.
//
// The simulator takes the schedule (a topological order of the non-input
// vertices) as input and makes replacement decisions with a pluggable
// policy; the MIN (Belady) policy is optimal for a fixed schedule, so
// DFS-schedule + MIN gives the fair upper-bound measurement to compare
// against the paper's lower bound.
package pebble

import (
	"container/heap"
	"fmt"
	"math"

	"pathrouting/internal/cdag"
)

// Policy selects which cache-resident value to evict.
type Policy int

// Supported replacement policies.
const (
	// MIN is Belady's offline-optimal policy: evict the value whose
	// next use in the schedule is farthest in the future (preferring
	// values with no further use at all).
	MIN Policy = iota
	// LRU evicts the least recently used value.
	LRU
	// FIFO evicts the value that entered cache earliest.
	FIFO
)

func (p Policy) String() string {
	switch p {
	case MIN:
		return "MIN"
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Result reports the I/O measured for one simulation.
type Result struct {
	// Reads counts loads from slow memory into cache (including the
	// initial loads of inputs).
	Reads int64
	// Writes counts stores from cache to slow memory (including the
	// final stores of outputs).
	Writes int64
	// Computed is the number of vertices computed (sanity: equals the
	// schedule length).
	Computed int64
	// Evictions counts values dropped from cache (with or without a
	// write-back).
	Evictions int64
}

// IO returns the total I/O cost Reads + Writes.
func (r Result) IO() int64 { return r.Reads + r.Writes }

// Simulator runs schedules on a CDAG under the two-level model.
type Simulator struct {
	G *cdag.Graph
	M int
	P Policy
	// Obs, when non-nil, receives per-segment I/O observations and
	// read/write totals (see Instruments).
	Obs *Instruments
}

// state tracks one cache-resident value.
type state struct {
	inCache   bool
	inSlow    bool // a valid copy exists in slow memory
	heapIdx   int  // index in the eviction heap, -1 if absent
	nextUse   int32
	lastTouch int64 // LRU timestamp or FIFO entry sequence
}

// evictHeap orders cache-resident, currently-unpinned vertices by the
// policy's eviction priority (max-heap on priority).
type evictHeap struct {
	ids  []cdag.V
	st   []state
	less func(a, b cdag.V, st []state) bool
}

func (h *evictHeap) Len() int { return len(h.ids) }
func (h *evictHeap) Less(i, j int) bool {
	return h.less(h.ids[i], h.ids[j], h.st)
}
func (h *evictHeap) Swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.st[h.ids[i]].heapIdx = i
	h.st[h.ids[j]].heapIdx = j
}
func (h *evictHeap) Push(x any) {
	v := x.(cdag.V)
	h.st[v].heapIdx = len(h.ids)
	h.ids = append(h.ids, v)
}
func (h *evictHeap) Pop() any {
	v := h.ids[len(h.ids)-1]
	h.ids = h.ids[:len(h.ids)-1]
	h.st[v].heapIdx = -1
	return v
}

// never is the next-use key of a value with no further use. It must
// compare greater than every real schedule position, so schedules long
// enough for int32 positions to reach it are rejected up front (see
// checkScheduleLen) instead of silently corrupting MIN's priorities.
const never = int32(1 << 30)

// maxScheduleLen is the longest schedule the int32 next-use keys can
// address: positions must stay strictly below the `never` sentinel.
// Strassen k≥11 has more product vertices than this alone — such runs
// need the position type widened, not a wrapped comparison.
const maxScheduleLen = int(never) - 1

// checkScheduleLen rejects schedules whose positions would overflow the
// int32 next-use keys. Factored out of Run/AnalyzeLiveness so the guard
// is testable without allocating a 2³⁰-vertex schedule.
func checkScheduleLen(n int) error {
	if n > maxScheduleLen {
		return fmt.Errorf("pebble: schedule length %d exceeds the int32 position limit %d; widen the next-use keys before simulating at this scale", n, maxScheduleLen)
	}
	return nil
}

// checkUseCount rejects use-list growth past int32 indexing (the
// next-use chains store int32 links; with fan-in ≥ 2 they can overflow
// even when the schedule length alone does not).
func checkUseCount(have, add int) error {
	if have > math.MaxInt32-add {
		return fmt.Errorf("pebble: %d parent uses exceed the int32 chain limit; widen the next-use keys before simulating at this scale", have+add)
	}
	return nil
}

// Run simulates the schedule and returns the measured I/O. The schedule
// must be a topological order of every non-input vertex of the graph
// (use schedule-package generators); Run validates as it goes and
// returns an error on the first violation.
func (s *Simulator) Run(schedule []cdag.V) (Result, error) {
	g := s.G
	if s.M < 2 {
		return Result{}, fmt.Errorf("pebble: cache size M = %d < 2 cannot compute binary operations", s.M)
	}
	if err := checkScheduleLen(len(schedule)); err != nil {
		return Result{}, err
	}
	n := g.NumVertices()

	// Next-use lists: for every vertex, the schedule positions where it
	// is used as a parent, in increasing order; consumed front to back.
	useHead := make([]int32, n) // index into useNext chains
	for i := range useHead {
		useHead[i] = -1
	}
	type useEntry struct {
		pos  int32
		next int32
	}
	var uses []useEntry
	var parentBuf []cdag.Edge
	// Build in reverse so chains come out in increasing position order.
	for pos := len(schedule) - 1; pos >= 0; pos-- {
		v := schedule[pos]
		parentBuf = g.AppendParents(v, parentBuf[:0])
		if err := checkUseCount(len(uses), len(parentBuf)); err != nil {
			return Result{}, err
		}
		for _, e := range parentBuf {
			uses = append(uses, useEntry{pos: int32(pos), next: useHead[e.To]})
			useHead[e.To] = int32(len(uses) - 1)
		}
	}

	st := make([]state, n)
	for i := range st {
		st[i].heapIdx = -1
		st[i].nextUse = never
		if useHead[i] >= 0 {
			st[i].nextUse = uses[useHead[i]].pos
		}
	}
	// Inputs start valid in slow memory.
	for v := 0; v < n; v++ {
		if g.IsInput(cdag.V(v)) {
			st[v].inSlow = true
		}
	}

	var less func(a, b cdag.V, stt []state) bool
	switch s.P {
	case MIN:
		less = func(a, b cdag.V, stt []state) bool { return stt[a].nextUse > stt[b].nextUse }
	case LRU:
		less = func(a, b cdag.V, stt []state) bool { return stt[a].lastTouch < stt[b].lastTouch }
	default: // FIFO
		less = func(a, b cdag.V, stt []state) bool { return stt[a].lastTouch < stt[b].lastTouch }
	}
	h := &evictHeap{st: st, less: less}

	var res Result
	var clock int64
	cacheCount := 0
	pinned := make([]cdag.V, 0, 16)

	unpin := func(v cdag.V) {
		if st[v].inCache && st[v].heapIdx < 0 {
			heap.Push(h, v)
		}
	}
	pin := func(v cdag.V) {
		if st[v].heapIdx >= 0 {
			heap.Remove(h, st[v].heapIdx)
		}
	}
	evictOne := func() error {
		if h.Len() == 0 {
			return fmt.Errorf("pebble: cache overcommitted: M = %d too small for a single computation", s.M)
		}
		victim := heap.Pop(h).(cdag.V)
		st[victim].inCache = false
		cacheCount--
		res.Evictions++
		if !st[victim].inSlow && st[victim].nextUse != never {
			// Value still needed later but no slow-memory copy: write it
			// back (one I/O) so it can be reloaded.
			res.Writes++
			st[victim].inSlow = true
		}
		return nil
	}
	ensureRoom := func() error {
		for cacheCount >= s.M {
			if err := evictOne(); err != nil {
				return err
			}
		}
		return nil
	}
	load := func(v cdag.V) error {
		if st[v].inCache {
			return nil
		}
		if !st[v].inSlow {
			return fmt.Errorf("pebble: schedule uses %s before it is computed", g.Label(v))
		}
		if err := ensureRoom(); err != nil {
			return err
		}
		res.Reads++
		st[v].inCache = true
		cacheCount++
		return nil
	}

	segLen := 0
	if s.Obs != nil {
		if segLen = s.Obs.SegmentLen; segLen <= 0 {
			segLen = s.M
		}
	}
	var segStartIO int64
	computedInSeg := 0

	computed := make([]bool, n)
	for pos, v := range schedule {
		if g.IsInput(v) {
			return res, fmt.Errorf("pebble: schedule contains input %s", g.Label(v))
		}
		if computed[v] {
			return res, fmt.Errorf("pebble: schedule recomputes %s", g.Label(v))
		}
		parentBuf = g.AppendParents(v, parentBuf[:0])
		// Pin parents so they cannot evict each other while assembling
		// this computation.
		pinned = pinned[:0]
		for _, e := range parentBuf {
			if !computed[e.To] && !g.IsInput(e.To) {
				return res, fmt.Errorf("pebble: schedule computes %s before parent %s", g.Label(v), g.Label(e.To))
			}
			if err := load(e.To); err != nil {
				return res, err
			}
			pin(e.To)
			clock++
			st[e.To].lastTouch = clock
			pinned = append(pinned, e.To)
		}
		// Advance parents' next-use pointers past this position.
		for _, e := range parentBuf {
			for useHead[e.To] >= 0 && uses[useHead[e.To]].pos <= int32(pos) {
				useHead[e.To] = uses[useHead[e.To]].next
			}
			if useHead[e.To] >= 0 {
				st[e.To].nextUse = uses[useHead[e.To]].pos
			} else {
				st[e.To].nextUse = never
			}
		}
		// Make room for the result.
		if err := ensureRoom(); err != nil {
			return res, err
		}
		// Unpin parents (re-entering the evict heap with updated keys).
		for _, p := range pinned {
			unpin(p)
		}
		computed[v] = true
		st[v].inCache = true
		clock++
		st[v].lastTouch = clock
		cacheCount++
		res.Computed++
		if g.IsOutput(v) {
			// Outputs must end up in slow memory; write eagerly (the
			// optimal offline choice writes each output exactly once).
			res.Writes++
			st[v].inSlow = true
		}
		if segLen > 0 {
			if computedInSeg++; computedInSeg >= segLen {
				s.Obs.SegmentIO.Observe(float64(res.IO() - segStartIO))
				segStartIO = res.IO()
				computedInSeg = 0
			}
		}
		if st[v].nextUse == never && !g.IsOutput(v) {
			// Useless vertex (cannot happen in G_r, but keep the cache
			// tidy if it does): drop immediately.
			st[v].inCache = false
			cacheCount--
			continue
		}
		heap.Push(h, v)
	}
	// Completion check: every output computed (and therefore written).
	for v := 0; v < n; v++ {
		if g.IsOutput(cdag.V(v)) && !computed[v] {
			return res, fmt.Errorf("pebble: schedule never computes output %s", g.Label(cdag.V(v)))
		}
	}
	if in := s.Obs; in != nil {
		if computedInSeg > 0 {
			in.SegmentIO.Observe(float64(res.IO() - segStartIO))
		}
		in.Reads.Add(res.Reads)
		in.Writes.Add(res.Writes)
	}
	return res, nil
}
