package pebble

// Liveness analysis of schedules: how many values must be
// simultaneously resident for a schedule to run without any I/O beyond
// the compulsory reads and writes. The peak live-set size is exactly
// the smallest cache for which the schedule is I/O-free (modulo the
// compulsory traffic), so the profile explains *why* the DFS schedule
// is cache-friendly and the rank-by-rank schedule is not: the former's
// peak scales with the subproblem that fits, the latter's with whole
// layers.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"pathrouting/internal/cdag"
	"pathrouting/internal/schedule"
)

// Liveness reports the live-value profile of a schedule.
type Liveness struct {
	// Peak is the maximum number of simultaneously live values
	// (computed or input values still awaiting a later use, plus the
	// parents and result of the in-flight computation).
	Peak int
	// PeakPosition is the first schedule position achieving Peak.
	PeakPosition int
	// Average is the mean live-set size over schedule positions.
	Average float64
}

// AnalyzeLiveness computes the live-set profile of the schedule on g.
// A value is live from the moment it is computed (or first used, for
// inputs) until its last use as a parent; outputs are live until
// computed (they are then written out). The schedule must be valid
// (see schedule.Validate); behaviour on invalid schedules is undefined.
func AnalyzeLiveness(g *cdag.Graph, sched []cdag.V) (Liveness, error) {
	if err := checkScheduleLen(len(sched)); err != nil {
		return Liveness{}, err
	}
	n := g.NumVertices()
	lastUse := make([]int32, n)
	for i := range lastUse {
		lastUse[i] = -1
	}
	var buf []cdag.Edge
	for pos, v := range sched {
		buf = g.AppendParents(v, buf[:0])
		for _, e := range buf {
			lastUse[e.To] = int32(pos)
		}
	}
	// Sweep: maintain the live count.
	live := 0
	lv := Liveness{}
	var sum int64
	firstUse := make([]bool, n)
	for pos, v := range sched {
		// Parents become live at first use if they are inputs (loaded);
		// non-input parents are already live (computed earlier).
		buf = g.AppendParents(v, buf[:0])
		for _, e := range buf {
			if g.IsInput(e.To) && !firstUse[e.To] {
				firstUse[e.To] = true
				live++
			}
		}
		// The result becomes live.
		live++
		if live > lv.Peak {
			lv.Peak = live
			lv.PeakPosition = pos
		}
		sum += int64(live)
		// Values whose last use is this position die now; the computed
		// vertex itself dies immediately if never used again and not an
		// output awaiting write-out (we count the write as death).
		for _, e := range buf {
			if lastUse[e.To] == int32(pos) {
				live--
			}
		}
		if lastUse[v] < 0 {
			// Never used later: outputs are written and die; a
			// non-output would be useless (cannot happen in G_r).
			live--
		}
	}
	if live != 0 {
		return lv, fmt.Errorf("pebble: liveness sweep ended with %d live values; invalid schedule?", live)
	}
	if len(sched) > 0 {
		lv.Average = float64(sum) / float64(len(sched))
	}
	return lv, nil
}

// BestOfRandom measures the minimum I/O over nTrials random topological
// schedules under MIN replacement — an empirical baseline for the
// I/O-complexity of the graph. The structured DFS schedule beats it
// comfortably (see tests), illustrating that low-I/O schedules are rare
// in schedule space, which is why the paper's lower bound (holding for
// *all* schedules) is the interesting statement.
func BestOfRandom(g *cdag.Graph, m int, nTrials int, rng *rand.Rand) (int64, error) {
	if nTrials < 1 {
		return 0, fmt.Errorf("pebble: BestOfRandom nTrials = %d", nTrials)
	}
	best := int64(-1)
	for i := 0; i < nTrials; i++ {
		sched, err := schedule.RandomTopological(g, rng)
		if err != nil {
			return 0, err
		}
		res, err := (&Simulator{G: g, M: m, P: MIN}).Run(sched)
		if err != nil {
			return 0, err
		}
		if best < 0 || res.IO() < best {
			best = res.IO()
		}
	}
	return best, nil
}

// SweepResult pairs a cache size with its measured I/O.
type SweepResult struct {
	M  int
	IO int64
	// Err is non-nil when the cache was infeasible for the graph.
	Err error
}

// SweepM simulates the schedule at every cache size concurrently
// (each size is an independent simulation) and returns results in the
// input order. workers ≤ 0 uses GOMAXPROCS.
func SweepM(g *cdag.Graph, sched []cdag.V, policy Policy, ms []int, workers int) []SweepResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]SweepResult, len(ms))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, m := range ms {
		wg.Add(1)
		go func(i, m int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := (&Simulator{G: g, M: m, P: policy}).Run(sched)
			out[i] = SweepResult{M: m, IO: res.IO(), Err: err}
		}(i, m)
	}
	wg.Wait()
	return out
}
