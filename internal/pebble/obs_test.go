package pebble

import (
	"testing"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/obs"
	"pathrouting/internal/schedule"
)

func TestInstrumentsSegmentAccounting(t *testing.T) {
	g := mustGraph(t, bilinear.Strassen(), 2)
	reg := obs.NewRegistry()
	in := NewInstruments(reg)
	sim := &Simulator{G: g, M: 16, P: MIN, Obs: in}
	sched := schedule.RecursiveDFS(g)
	res, err := sim.Run(sched)
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap["pebble_reads_total"]; got != float64(res.Reads) {
		t.Errorf("pebble_reads_total = %v, want %d", got, res.Reads)
	}
	if got := snap["pebble_writes_total"]; got != float64(res.Writes) {
		t.Errorf("pebble_writes_total = %v, want %d", got, res.Writes)
	}
	// Segments of M=16 computations: ⌈len/16⌉ observations, and the
	// per-segment I/O sums back to the run's total I/O.
	wantSegs := float64((len(sched) + 15) / 16)
	if got := snap["pebble_segment_io_count"]; got != wantSegs {
		t.Errorf("pebble_segment_io_count = %v, want %v", got, wantSegs)
	}
	if got := snap["pebble_segment_io_sum"]; got != float64(res.IO()) {
		t.Errorf("pebble_segment_io_sum = %v, want total I/O %d", got, res.IO())
	}
}

func TestInstrumentsCustomSegmentLen(t *testing.T) {
	g := mustGraph(t, bilinear.Strassen(), 1)
	reg := obs.NewRegistry()
	in := NewInstruments(reg)
	in.SegmentLen = 7
	sim := &Simulator{G: g, M: 8, P: MIN, Obs: in}
	sched := schedule.RecursiveDFS(g)
	if _, err := sim.Run(sched); err != nil {
		t.Fatal(err)
	}
	wantSegs := float64((len(sched) + 6) / 7)
	if got := reg.Snapshot()["pebble_segment_io_count"]; got != wantSegs {
		t.Errorf("pebble_segment_io_count = %v, want %v", got, wantSegs)
	}
}

func TestNilInstrumentsRunsClean(t *testing.T) {
	// Result with and without Obs must be identical: instrumentation
	// only observes, never steers.
	g := mustGraph(t, bilinear.Strassen(), 2)
	sched := schedule.RecursiveDFS(g)
	plain := &Simulator{G: g, M: 24, P: MIN}
	want, err := plain.Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	obsSim := &Simulator{G: g, M: 24, P: MIN, Obs: NewInstruments(obs.NewRegistry())}
	got, err := obsSim.Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("instrumented result %+v != plain %+v", got, want)
	}
}
