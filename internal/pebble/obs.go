package pebble

// Observability for the pebble-game simulator: the paper's segment
// argument charges each schedule segment at least |δ'(S')| − 2M I/O,
// so the natural live metric is the I/O each segment actually pays.
// Attaching Instruments to a Simulator buckets per-segment I/O into a
// histogram (segments of SegmentLen computations; default M, the
// scale the paper's segments are sized by) and totals reads/writes.

import "pathrouting/internal/obs"

// Instruments is the optional metric bundle of a Simulator. Nil (the
// default) costs one pointer test per computed vertex.
type Instruments struct {
	// Reads and Writes accumulate the simulator's I/O totals across
	// runs sharing the bundle.
	Reads, Writes *obs.Counter
	// SegmentIO buckets the I/O paid by each SegmentLen-computation
	// schedule segment.
	SegmentIO *obs.Histogram
	// SegmentLen is the segment size in computed vertices; 0 means
	// the simulator's cache size M.
	SegmentLen int
}

// NewInstruments registers the simulator's metric families on reg.
func NewInstruments(reg *obs.Registry) *Instruments {
	return &Instruments{
		Reads:  reg.Counter("pebble_reads_total", "values loaded from slow memory"),
		Writes: reg.Counter("pebble_writes_total", "values written back to slow memory"),
		SegmentIO: reg.Histogram("pebble_segment_io",
			"I/O paid per schedule segment (SegmentLen computations, default M)",
			obs.ExponentialBuckets(1, 4, 12)),
	}
}
