package runlog

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// traceJournal is a hand-built schema-3 journal: one traced job with
// spans, shards, a heartbeat and a final; one untraced schema-2 run;
// and a torn tail.
const traceJournal = `{"schema":3,"event":"run_start","tool":"routed","alg":"strassen","k":4,"trace":"aaaa","job":"j00000001","time":"2026-01-01T00:00:00Z"}
{"schema":3,"event":"span","span":"shard_enumerate","trace":"aaaa","job":"j00000001","span_start":"2026-01-01T00:00:00Z","dur_sec":1.0,"attrs":{"shard":"0"},"time":"2026-01-01T00:00:01Z"}
{"schema":3,"event":"shard_done","trace":"aaaa","job":"j00000001","shard":0,"shards_done":1,"shards_total":2,"shard_paths":100,"time":"2026-01-01T00:00:01Z"}
{"schema":3,"event":"span","span":"shard_enumerate","trace":"aaaa","job":"j00000001","span_start":"2026-01-01T00:00:01Z","dur_sec":3.0,"attrs":{"shard":"1"},"time":"2026-01-01T00:00:04Z"}
{"schema":3,"event":"shard_done","trace":"aaaa","job":"j00000001","shard":1,"shards_done":2,"shards_total":2,"shard_paths":300,"time":"2026-01-01T00:00:04Z"}
{"schema":3,"event":"heartbeat","trace":"aaaa","job":"j00000001","metrics":{"x":1},"time":"2026-01-01T00:00:02Z"}
{"schema":3,"event":"final","trace":"aaaa","job":"j00000001","paths":400,"time":"2026-01-01T00:00:04Z"}
{"schema":2,"event":"span","tool":"routecheck","alg":"classical","k":2,"span":"checkpoint_persist","dur_sec":0.5,"time":"2026-01-01T01:00:00Z"}
{"schema":2,"event":"span","tool":"routec`

func TestCollectTracesGroupsAndTimes(t *testing.T) {
	ts, err := CollectTraces(strings.NewReader(traceJournal))
	if err != nil {
		t.Fatal(err)
	}
	if ts.Records != 8 || ts.Skipped != 1 {
		t.Fatalf("records=%d skipped=%d, want 8/1", ts.Records, ts.Skipped)
	}
	if len(ts.Traces) != 2 {
		t.Fatalf("traces = %d, want 2", len(ts.Traces))
	}

	tr := ts.Traces[0]
	if tr.ID != "aaaa" || !tr.Traced || tr.Job != "j00000001" || tr.Alg != "strassen" || tr.K != 4 {
		t.Fatalf("trace identity = %+v", tr)
	}
	if len(tr.Spans) != 2 || len(tr.Shards) != 2 || tr.Heartbeats != 1 {
		t.Fatalf("trace contents = %+v", tr)
	}
	if tr.Final == nil || tr.Final.Paths != 400 {
		t.Fatalf("final = %+v", tr.Final)
	}
	if got := tr.End.Sub(tr.Start); got != 4*time.Second {
		t.Fatalf("extent = %v, want 4s", got)
	}

	// The schema-2 span without trace or job groups by (tool, alg, k),
	// with its start reconstructed from time minus duration.
	un := ts.Traces[1]
	if un.Traced || !strings.Contains(un.ID, "untraced") || len(un.Spans) != 1 {
		t.Fatalf("untraced group = %+v", un)
	}
	if got := un.Spans[0].Start.Format(time.RFC3339); got != "2026-01-01T00:59:59Z" {
		t.Fatalf("reconstructed start = %s", got)
	}
}

func TestWaterfallRendering(t *testing.T) {
	ts, err := CollectTraces(strings.NewReader(traceJournal))
	if err != nil {
		t.Fatal(err)
	}
	tr := ts.Traces[0]
	out := tr.Waterfall(40, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // header + two spans
		t.Fatalf("waterfall:\n%s", out)
	}
	if !strings.Contains(lines[1], "shard_enumerate(shard=0)") ||
		!strings.Contains(lines[2], "shard_enumerate(shard=1)") {
		t.Fatalf("waterfall rows:\n%s", out)
	}
	// Span 0 covers [0s,1s] of a 4s extent -> 10 of 40 columns; span 1
	// covers [1s,4s] -> 30 columns, offset 10.
	if !strings.Contains(lines[1], strings.Repeat("#", 10)+strings.Repeat(" ", 30)) {
		t.Fatalf("span 0 bar misplaced:\n%s", out)
	}
	if !strings.Contains(lines[2], strings.Repeat(" ", 10)+strings.Repeat("#", 30)) {
		t.Fatalf("span 1 bar misplaced:\n%s", out)
	}

	// Row capping collapses the tail.
	capped := tr.Waterfall(40, 1)
	if !strings.Contains(capped, "… 1 more spans") {
		t.Fatalf("capped waterfall:\n%s", capped)
	}
	if (&Trace{}).Waterfall(40, 10) != "" {
		t.Fatal("empty trace must render an empty waterfall")
	}
}

func TestHeaderAndLatencies(t *testing.T) {
	ts, err := CollectTraces(strings.NewReader(traceJournal))
	if err != nil {
		t.Fatal(err)
	}
	head := ts.Traces[0].Header()
	for _, want := range []string{"trace aaaa", "routed strassen k=4", "job=j00000001",
		"2 spans", "2 shard events", "1 heartbeats", "final paths=400"} {
		if !strings.Contains(head, want) {
			t.Fatalf("header missing %q: %s", want, head)
		}
	}

	lats := ts.SpanLatencies()
	if len(lats) != 2 {
		t.Fatalf("latencies = %+v", lats)
	}
	// Sorted by name: checkpoint_persist then shard_enumerate.
	if lats[0].Name != "checkpoint_persist" || lats[0].Count != 1 || lats[0].P50 != 0.5 {
		t.Fatalf("latency[0] = %+v", lats[0])
	}
	if lats[1].Name != "shard_enumerate" || lats[1].Count != 2 ||
		lats[1].P50 != 1.0 || lats[1].P99 != 3.0 || lats[1].Max != 3.0 {
		t.Fatalf("latency[1] = %+v", lats[1])
	}
	tbl := FormatLatencies(lats)
	if !strings.Contains(tbl, "shard_enumerate") || !strings.Contains(tbl, "p95") {
		t.Fatalf("latency table:\n%s", tbl)
	}
}

func TestShardTimeline(t *testing.T) {
	ts, err := CollectTraces(strings.NewReader(traceJournal))
	if err != nil {
		t.Fatal(err)
	}
	out := ts.Traces[0].ShardTimeline(2, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("timeline:\n%s", out)
	}
	if !strings.Contains(lines[0], "1 shards") || !strings.Contains(lines[0], "100 paths") {
		t.Fatalf("bucket 0: %s", lines[0])
	}
	if !strings.Contains(lines[1], "1 shards") || !strings.Contains(lines[1], "300 paths") ||
		!strings.Contains(lines[1], strings.Repeat("#", 20)) {
		t.Fatalf("bucket 1: %s", lines[1])
	}
}

// TestShardTimelineRestored: the synthetic restored-work record of a
// resumed run reports separately and never skews throughput buckets.
func TestShardTimelineRestored(t *testing.T) {
	journal := `{"schema":3,"event":"shard_done","trace":"bbbb","shard":-1,"shards_done":3,"shards_total":8,"shard_paths":900,"time":"2026-01-01T00:00:00Z"}
{"schema":3,"event":"shard_done","trace":"bbbb","shard":3,"shards_done":4,"shards_total":8,"shard_paths":50,"time":"2026-01-01T00:00:01Z"}`
	ts, err := CollectTraces(strings.NewReader(journal))
	if err != nil {
		t.Fatal(err)
	}
	out := ts.Traces[0].ShardTimeline(4, 20)
	if !strings.Contains(out, "restored from checkpoint: 3/8 shards, 900 paths") {
		t.Fatalf("timeline:\n%s", out)
	}
	if !strings.Contains(out, "1 shards") || strings.Contains(out, "900 paths  #") {
		t.Fatalf("restored credit leaked into buckets:\n%s", out)
	}
}

// TestCollectTracesFilesMerges: one run journaled across two files
// (crash + resume) reconstructs as a single trace.
func TestCollectTracesFilesMerges(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	if err := os.WriteFile(a, []byte(`{"schema":3,"event":"span","span":"shard_enumerate","trace":"cccc","span_start":"2026-01-01T00:00:00Z","dur_sec":1,"time":"2026-01-01T00:00:01Z"}
`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, []byte(`{"schema":3,"event":"span","span":"job_run","trace":"cccc","span_start":"2026-01-01T00:00:02Z","dur_sec":1,"time":"2026-01-01T00:00:03Z"}
{"schema":3,"event":"final","trace":"cccc","paths":7,"time":"2026-01-01T00:00:03Z"}
`), 0o644); err != nil {
		t.Fatal(err)
	}
	ts, err := CollectTracesFiles(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Traces) != 1 || ts.Records != 3 {
		t.Fatalf("merged set = %+v", ts)
	}
	tr := ts.Traces[0]
	if len(tr.Spans) != 2 || tr.Final == nil || tr.Final.Paths != 7 {
		t.Fatalf("merged trace = %+v", tr)
	}
	if tr.End.Sub(tr.Start) != 3*time.Second {
		t.Fatalf("merged extent = %v", tr.End.Sub(tr.Start))
	}
	if _, err := CollectTracesFiles(filepath.Join(dir, "missing.jsonl")); err == nil {
		t.Fatal("missing file must error")
	}
}
