package runlog

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testWriter(t *testing.T) (*Writer, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.jsonl")
	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	w.now = func() time.Time { return time.Unix(1700000000, 0) }
	return w, path
}

// TestEmitAppendRoundTrip writes a full run's worth of events across
// two Writer sessions (simulating a restart) and checks the summary
// sees everything.
func TestEmitAppendRoundTrip(t *testing.T) {
	w, path := testWriter(t)
	base := Record{Tool: "routecheck", Alg: "strassen", K: 4, Workers: 2}
	start := base
	start.Event = EventRunStart
	if err := w.Emit(start); err != nil {
		t.Fatal(err)
	}
	shard := base
	shard.Event, shard.Shard, shard.ShardsDone, shard.ShardsTotal, shard.ShardPaths = EventShardDone, 0, 1, 4, 32768
	if err := w.Emit(shard); err != nil {
		t.Fatal(err)
	}
	paused := base
	paused.Event, paused.Paused, paused.Paths = EventFinal, true, 32768
	if err := w.Emit(paused); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Second session appends, never truncates.
	w2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	start.Resumed = true
	final := base
	final.Event, final.Paths, final.ElapsedSec, final.PathsPerSec = EventFinal, 131072, 2.0, 65536
	for _, rec := range []Record{start, final} {
		if err := w2.Emit(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := SummarizeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Records != 5 || s.Skipped != 0 || s.Runs != 2 || s.Finals != 2 || s.ShardsDone != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if len(s.ByRun) != 1 {
		t.Fatalf("expected one configuration, got %+v", s.ByRun)
	}
	r := s.ByRun[0]
	if r.Starts != 2 || r.Paused != 1 || r.Finals != 1 || r.LastPaths != 131072 || r.BestPPS != 65536 {
		t.Fatalf("run summary = %+v", r)
	}
	out := s.Format()
	if !strings.Contains(out, "strassen k=4") || !strings.Contains(out, "131072 paths") {
		t.Fatalf("format output:\n%s", out)
	}
}

// TestSchemaAndTimestampStamped checks Emit owns the envelope fields.
func TestSchemaAndTimestampStamped(t *testing.T) {
	w, path := testWriter(t)
	if err := w.Emit(Record{Event: EventRunStart, Schema: 99, Time: "bogus"}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	line := string(data)
	if !strings.Contains(line, `"schema":4`) || strings.Contains(line, "bogus") {
		t.Fatalf("envelope not stamped: %s", line)
	}
	if !strings.Contains(line, "2023-11-14T22:13:20Z") {
		t.Fatalf("timestamp not UTC RFC3339: %s", line)
	}
}

// TestNilWriterIsSink: a nil journal must be transparently usable.
func TestNilWriterIsSink(t *testing.T) {
	var w *Writer
	if err := w.Emit(Record{Event: EventFinal}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSummarizeTornAndForeignLines: a journal whose last line was torn
// by a kill, plus junk lines, still summarizes the intact records.
func TestSummarizeTornAndForeignLines(t *testing.T) {
	journal := `{"schema":1,"event":"run_start","tool":"routecheck","alg":"strassen","k":3}
not json at all
{"schema":1,"event":"violation","error":"vertex hit 999 > bound"}
{"plausible":"json","but":"no event"}

{"schema":1,"event":"final","alg":"strassen","k":3,"paths":8192,"paths_per_sec":1000}
{"schema":1,"event":"shard_done","sh`
	s, err := Summarize(strings.NewReader(journal))
	if err != nil {
		t.Fatal(err)
	}
	if s.Records != 3 || s.Skipped != 3 {
		t.Fatalf("records=%d skipped=%d, want 3/3", s.Records, s.Skipped)
	}
	if len(s.Violations) != 1 || !strings.Contains(s.Violations[0], "999") {
		t.Fatalf("violations = %v", s.Violations)
	}
	if !strings.Contains(s.Format(), "VIOLATION") {
		t.Fatalf("format dropped the violation:\n%s", s.Format())
	}
}

// TestSummarizeMixedSchemas: a journal accumulated across binary
// versions — schema-1 records, schema-2 spans and heartbeats, a record
// from a hypothetical future schema, and a torn tail — must summarize
// the run records exactly as if the foreign ones were absent.
func TestSummarizeMixedSchemas(t *testing.T) {
	journal := `{"schema":1,"event":"run_start","tool":"routecheck","alg":"strassen","k":4,"workers":2}
{"schema":1,"event":"shard_done","tool":"routecheck","alg":"strassen","k":4,"shard":0,"shards_done":1,"shards_total":8}
{"schema":2,"event":"span","tool":"routecheck","alg":"strassen","k":4,"span":"shard_enumerate","dur_sec":0.5,"attrs":{"shard":"1"}}
{"schema":2,"event":"heartbeat","tool":"routecheck","alg":"strassen","k":4,"metrics":{"routing_paths_verified_total":4096}}
{"schema":3,"event":"quantum_flux","tool":"routecheck","alg":"strassen","k":4}
{"schema":2,"event":"final","tool":"routecheck","alg":"strassen","k":4,"paths":9834496,"paths_per_sec":250000}
{"schema":2,"event":"span","tool":"routecheck","alg":"str`
	s, err := Summarize(strings.NewReader(journal))
	if err != nil {
		t.Fatal(err)
	}
	if s.Records != 6 || s.Skipped != 1 {
		t.Fatalf("records=%d skipped=%d, want 6/1", s.Records, s.Skipped)
	}
	if s.Spans != 1 || s.Heartbeats != 1 || s.Unknown != 1 {
		t.Fatalf("spans=%d heartbeats=%d unknown=%d, want 1/1/1", s.Spans, s.Heartbeats, s.Unknown)
	}
	if s.Runs != 1 || s.Finals != 1 || s.ShardsDone != 1 {
		t.Fatalf("run roll-up = %+v", s)
	}
	// Exactly one configuration: spans/heartbeats/unknown events must
	// not fabricate per-run entries.
	if len(s.ByRun) != 1 {
		t.Fatalf("ByRun = %+v", s.ByRun)
	}
	if r := s.ByRun[0]; r.Starts != 1 || r.Finals != 1 || r.LastPaths != 9834496 {
		t.Fatalf("run summary = %+v", r)
	}
	out := s.Format()
	if !strings.Contains(out, "1 spans, 1 heartbeats, 1 unknown-event records") {
		t.Fatalf("format missing observability line:\n%s", out)
	}
}

// TestSummarizeOrbitCounters: the summary lifts the orbit-reduction
// counters from heartbeat snapshots (high-water mark across them) and
// Format surfaces the orbits-per-family aggregation fan-in.
func TestSummarizeOrbitCounters(t *testing.T) {
	journal := `{"schema":4,"event":"heartbeat","metrics":{"routing_orbit_groups_total":1024,"routing_orbit_families_total":16}}
{"schema":4,"event":"heartbeat","metrics":{"routing_orbit_groups_total":6272,"routing_orbit_families_total":98}}
{"schema":4,"event":"heartbeat","metrics":{"routing_paths_verified_total":100}}`
	s, err := Summarize(strings.NewReader(journal))
	if err != nil {
		t.Fatal(err)
	}
	if s.OrbitGroups != 6272 || s.OrbitFamilies != 98 {
		t.Fatalf("orbit counters = %v/%v, want 6272/98", s.OrbitGroups, s.OrbitFamilies)
	}
	out := s.Format()
	if !strings.Contains(out, "6272 orbits collapsed into 98 shared-chain families (64.0 orbits/family)") {
		t.Fatalf("format missing orbit line:\n%s", out)
	}

	// Stage-1 journals report groups but no families: no fan-in ratio.
	s2, err := Summarize(strings.NewReader(
		`{"schema":4,"event":"heartbeat","metrics":{"routing_orbit_groups_total":512}}`))
	if err != nil {
		t.Fatal(err)
	}
	out2 := s2.Format()
	if !strings.Contains(out2, "512 orbits collapsed\n") || strings.Contains(out2, "family") {
		t.Fatalf("stage-1 orbit line wrong:\n%s", out2)
	}
}

// TestSpanHeartbeatRoundTrip: schema-2 fields survive Emit/Summarize.
func TestSpanHeartbeatRoundTrip(t *testing.T) {
	w, path := testWriter(t)
	if err := w.Emit(Record{Event: EventSpan, Span: "checkpoint_persist",
		SpanStart: "2023-11-14T22:13:19Z", DurSec: 0.25,
		Attrs: map[string]string{"shard": "3"}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Emit(Record{Event: EventHeartbeat,
		Metrics: map[string]float64{"routing_paths_per_second": 12345.5}}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"span":"checkpoint_persist"`, `"dur_sec":0.25`,
		`"attrs":{"shard":"3"}`, `"metrics":{"routing_paths_per_second":12345.5}`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("journal missing %q:\n%s", want, data)
		}
	}
	s, err := SummarizeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Spans != 1 || s.Heartbeats != 1 || s.Records != 2 {
		t.Fatalf("summary = %+v", s)
	}
}
