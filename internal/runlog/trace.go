package runlog

// Trace-grouped journal analysis: the engine behind cmd/routelog.
// Where Summarize rolls a journal up per (tool, alg, k) configuration,
// CollectTraces groups records by their schema-3 trace identity and
// keeps the per-record timing, so one journal reconstructs what a run
// actually did: a span waterfall (which shard enumerations overlapped,
// where checkpoint persists sat), per-span-name latency percentiles,
// and the shard-completion timeline. Records without a trace field
// (schema-1/2 journals, daemon-level events) group by job ID when
// present, else by (tool, alg, k), so pre-trace journals still render.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

// A TraceSpan is one completed span record with parsed timing.
type TraceSpan struct {
	Name  string
	Start time.Time
	Dur   time.Duration
	Attrs map[string]string
}

// A TraceShard is one shard_done record with parsed timing.
type TraceShard struct {
	Time        time.Time
	Shard       int64
	Done, Total int64
	Paths       int64
	Restored    bool // the synthetic restored-work credit of a resumed run
}

// A Trace is every record sharing one trace identity, in journal order.
type Trace struct {
	// ID is the trace ID, or a synthesized group key for untraced
	// records (job ID, else "tool alg k=K (untraced)").
	ID     string
	Traced bool // ID is a real schema-3 trace field
	Job    string
	Tool   string
	Alg    string
	K      int

	Spans      []TraceSpan
	Shards     []TraceShard
	Heartbeats int
	Violations []string
	Final      *Record // last final record, nil if the run never finished
	// Starts counts run_start records — for a service job, the number
	// of daemon generations (legs) that worked on it.
	Starts int
	// PeakHeapBytes is the largest heap snapshot any schema-4 heartbeat
	// of the trace carried (0 when no heartbeat carried resources).
	PeakHeapBytes int64

	Start, End time.Time // extent across every timed record
}

// A TraceSet is a journal parsed into traces, first-appearance order.
type TraceSet struct {
	Traces  []*Trace
	Records int
	Skipped int
}

// groupKey picks the trace identity of a record.
func groupKey(rec *Record) (id string, traced bool) {
	switch {
	case rec.Trace != "":
		return rec.Trace, true
	case rec.Job != "":
		return rec.Job, false
	default:
		return fmt.Sprintf("%s %s k=%d (untraced)", rec.Tool, rec.Alg, rec.K), false
	}
}

// observe widens the trace extent to cover [from, to].
func (t *Trace) observe(from, to time.Time) {
	if t.Start.IsZero() || from.Before(t.Start) {
		t.Start = from
	}
	if to.After(t.End) {
		t.End = to
	}
}

// CollectTraces parses a journal stream into traces. Like Summarize,
// unparsable lines (torn tails, other formats) count as Skipped and
// are never fatal; parsable records with an unparsable timestamp are
// kept but cannot widen the trace's time extent.
func CollectTraces(r io.Reader) (*TraceSet, error) {
	ts := &TraceSet{}
	byKey := make(map[string]*Trace)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil || rec.Event == "" {
			ts.Skipped++
			continue
		}
		ts.Records++
		key, traced := groupKey(&rec)
		t := byKey[key]
		if t == nil {
			t = &Trace{ID: key, Traced: traced}
			byKey[key] = t
			ts.Traces = append(ts.Traces, t)
		}
		// Identity fields: first non-empty value wins, so a trace whose
		// run_start lacks alg/k still picks them up from later records.
		if t.Job == "" {
			t.Job = rec.Job
		}
		if t.Tool == "" {
			t.Tool = rec.Tool
		}
		if t.Alg == "" {
			t.Alg = rec.Alg
		}
		if t.K == 0 {
			t.K = rec.K
		}
		at, hasTime := parseRecTime(rec.Time)
		if hasTime {
			t.observe(at, at)
		}
		switch rec.Event {
		case EventRunStart:
			t.Starts++
		case EventSpan:
			dur := time.Duration(rec.DurSec * float64(time.Second))
			start, ok := parseRecTime(rec.SpanStart)
			if !ok && hasTime {
				start = at.Add(-dur) // older spans: end time minus duration
				ok = true
			}
			if ok {
				t.Spans = append(t.Spans, TraceSpan{Name: rec.Span, Start: start, Dur: dur, Attrs: rec.Attrs})
				t.observe(start, start.Add(dur))
			}
		case EventShardDone:
			if hasTime {
				t.Shards = append(t.Shards, TraceShard{
					Time: at, Shard: rec.Shard, Done: rec.ShardsDone,
					Total: rec.ShardsTotal, Paths: rec.ShardPaths,
					Restored: rec.Shard < 0,
				})
			}
		case EventHeartbeat:
			t.Heartbeats++
			if rec.Resources != nil && rec.Resources.HeapBytes > t.PeakHeapBytes {
				t.PeakHeapBytes = rec.Resources.HeapBytes
			}
		case EventViolation:
			t.Violations = append(t.Violations, rec.Error)
		case EventFinal:
			final := rec
			t.Final = &final
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("runlog: %w", err)
	}
	for _, t := range ts.Traces {
		sort.SliceStable(t.Spans, func(i, j int) bool { return t.Spans[i].Start.Before(t.Spans[j].Start) })
	}
	return ts, nil
}

// CollectTracesFiles folds one or more journal files into a TraceSet;
// records from all files merge by trace identity, so a run journaled
// across rotated files still reconstructs.
func CollectTracesFiles(paths ...string) (*TraceSet, error) {
	ts := &TraceSet{}
	byKey := make(map[string]*Trace)
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("runlog: %w", err)
		}
		one, err := CollectTraces(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		ts.Records += one.Records
		ts.Skipped += one.Skipped
		for _, t := range one.Traces {
			if have := byKey[t.ID]; have != nil {
				have.merge(t)
			} else {
				byKey[t.ID] = t
				ts.Traces = append(ts.Traces, t)
			}
		}
	}
	return ts, nil
}

// merge folds another file's view of the same trace into t.
func (t *Trace) merge(o *Trace) {
	t.Spans = append(t.Spans, o.Spans...)
	sort.SliceStable(t.Spans, func(i, j int) bool { return t.Spans[i].Start.Before(t.Spans[j].Start) })
	t.Shards = append(t.Shards, o.Shards...)
	t.Heartbeats += o.Heartbeats
	t.Starts += o.Starts
	if o.PeakHeapBytes > t.PeakHeapBytes {
		t.PeakHeapBytes = o.PeakHeapBytes
	}
	t.Violations = append(t.Violations, o.Violations...)
	if o.Final != nil {
		t.Final = o.Final
	}
	if !o.Start.IsZero() {
		t.observe(o.Start, o.End)
	}
}

// Header renders the one-line trace summary.
func (t *Trace) Header() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s", t.ID)
	if t.Traced {
		ident := strings.TrimSpace(fmt.Sprintf("%s %s", t.Tool, t.Alg))
		if ident != "" {
			fmt.Fprintf(&b, "  %s", ident)
		}
		if t.K > 0 {
			fmt.Fprintf(&b, " k=%d", t.K)
		}
		if t.Job != "" {
			fmt.Fprintf(&b, " job=%s", t.Job)
		}
	}
	fmt.Fprintf(&b, ": %d spans, %d shard events, %d heartbeats", len(t.Spans), len(t.Shards), t.Heartbeats)
	if !t.Start.IsZero() {
		fmt.Fprintf(&b, ", %.3fs", t.End.Sub(t.Start).Seconds())
	}
	switch {
	case t.Final == nil:
		b.WriteString(" — no final record")
	case t.Final.Error != "":
		fmt.Fprintf(&b, " — FAILED: %s", t.Final.Error)
	case t.Final.Paused:
		fmt.Fprintf(&b, " — paused at %d paths", t.Final.Paths)
	default:
		fmt.Fprintf(&b, " — final paths=%d", t.Final.Paths)
	}
	for _, v := range t.Violations {
		fmt.Fprintf(&b, "\n  VIOLATION: %s", v)
	}
	return b.String()
}

// Waterfall renders the trace's spans as a text gantt: one row per
// span, positioned on a width-column timeline spanning the trace
// extent. Rows beyond maxRows collapse into a trailing count, so a
// 10⁴-shard run stays printable (the latency table still covers every
// span).
func (t *Trace) Waterfall(width, maxRows int) string {
	if len(t.Spans) == 0 {
		return ""
	}
	if width < 10 {
		width = 10
	}
	if maxRows <= 0 {
		maxRows = len(t.Spans)
	}
	total := t.End.Sub(t.Start).Seconds()
	if total <= 0 {
		total = 1e-9
	}
	var b strings.Builder
	fmt.Fprintf(&b, "  %9s %9s  %s\n", "start", "dur", strings.Repeat("-", width))
	rows := t.Spans
	dropped := 0
	if len(rows) > maxRows {
		dropped = len(rows) - maxRows
		rows = rows[:maxRows]
	}
	for _, sp := range rows {
		startSec := sp.Start.Sub(t.Start).Seconds()
		endSec := startSec + sp.Dur.Seconds()
		lo := int(startSec / total * float64(width))
		hi := int(endSec / total * float64(width))
		if lo >= width {
			lo = width - 1
		}
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		bar := strings.Repeat(" ", lo) + strings.Repeat("#", hi-lo) + strings.Repeat(" ", width-hi)
		fmt.Fprintf(&b, "  %8.3fs %8.3fs  %s  %s\n", startSec, sp.Dur.Seconds(), bar, spanLabel(sp))
	}
	if dropped > 0 {
		fmt.Fprintf(&b, "  … %d more spans (raise -spans, or see the latency table)\n", dropped)
	}
	return b.String()
}

// spanLabel renders a span's name plus its attributes, sorted for
// deterministic output.
func spanLabel(sp TraceSpan) string {
	if len(sp.Attrs) == 0 {
		return sp.Name
	}
	keys := make([]string, 0, len(sp.Attrs))
	for k := range sp.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+sp.Attrs[k])
	}
	return sp.Name + "(" + strings.Join(parts, ",") + ")"
}

// ShardTimeline renders the trace's shard completions bucketed over
// the shard window: per bucket, shards completed, paths enumerated,
// and a bar scaled to the busiest bucket — where a run sped up,
// stalled, or resumed. The synthetic restored-work credit of a resumed
// run is reported separately, not drawn as throughput.
func (t *Trace) ShardTimeline(buckets, width int) string {
	live := make([]TraceShard, 0, len(t.Shards))
	var restored *TraceShard
	for i := range t.Shards {
		if t.Shards[i].Restored {
			restored = &t.Shards[i]
		} else {
			live = append(live, t.Shards[i])
		}
	}
	var b strings.Builder
	if restored != nil {
		fmt.Fprintf(&b, "  restored from checkpoint: %d/%d shards, %d paths\n",
			restored.Done, restored.Total, restored.Paths)
	}
	if len(live) == 0 {
		return b.String()
	}
	if buckets < 1 {
		buckets = 1
	}
	if width < 1 {
		width = 20
	}
	lo, hi := live[0].Time, live[0].Time
	for _, s := range live[1:] {
		if s.Time.Before(lo) {
			lo = s.Time
		}
		if s.Time.After(hi) {
			hi = s.Time
		}
	}
	window := hi.Sub(lo).Seconds()
	if window <= 0 || len(live) == 1 {
		buckets = 1
	}
	type bucket struct {
		shards int
		paths  int64
	}
	bs := make([]bucket, buckets)
	for _, s := range live {
		i := 0
		if buckets > 1 {
			i = int(s.Time.Sub(lo).Seconds() / window * float64(buckets))
			if i >= buckets {
				i = buckets - 1
			}
		}
		bs[i].shards++
		bs[i].paths += s.Paths
	}
	var maxPaths int64 = 1
	for _, bk := range bs {
		if bk.paths > maxPaths {
			maxPaths = bk.paths
		}
	}
	per := window / float64(buckets)
	for i, bk := range bs {
		bar := strings.Repeat("#", int(float64(bk.paths)/float64(maxPaths)*float64(width)))
		fmt.Fprintf(&b, "  %8.3fs-%8.3fs  %3d shards %12d paths  %s\n",
			float64(i)*per, float64(i+1)*per, bk.shards, bk.paths, bar)
	}
	return b.String()
}

// A SpanLatency is the latency roll-up of one span name.
type SpanLatency struct {
	Name               string
	Count              int
	P50, P95, P99, Max float64 // seconds
}

// SpanLatencies aggregates every span in the set by name, with
// nearest-rank percentiles, sorted by name.
func (ts *TraceSet) SpanLatencies() []SpanLatency {
	byName := make(map[string][]float64)
	for _, t := range ts.Traces {
		for _, sp := range t.Spans {
			byName[sp.Name] = append(byName[sp.Name], sp.Dur.Seconds())
		}
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]SpanLatency, 0, len(names))
	for _, name := range names {
		durs := byName[name]
		sort.Float64s(durs)
		out = append(out, SpanLatency{
			Name:  name,
			Count: len(durs),
			P50:   percentile(durs, 0.50),
			P95:   percentile(durs, 0.95),
			P99:   percentile(durs, 0.99),
			Max:   durs[len(durs)-1],
		})
	}
	return out
}

// percentile is the nearest-rank percentile of a sorted sample.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted)) + 0.9999999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// FormatLatencies renders the latency table.
func FormatLatencies(rows []SpanLatency) string {
	if len(rows) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "  %-24s %7s %10s %10s %10s %10s\n", "span", "count", "p50", "p95", "p99", "max")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-24s %7d %9.3fs %9.3fs %9.3fs %9.3fs\n",
			r.Name, r.Count, r.P50, r.P95, r.P99, r.Max)
	}
	return b.String()
}

// parseRecTime parses a record timestamp (RFC 3339, as Emit writes).
func parseRecTime(s string) (time.Time, bool) {
	if s == "" {
		return time.Time{}, false
	}
	at, err := time.Parse(time.RFC3339Nano, s)
	if err != nil {
		return time.Time{}, false
	}
	return at, true
}
