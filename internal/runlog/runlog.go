// Package runlog is the structured run journal for long verification
// runs: an append-only JSONL file with one self-describing record per
// event (run start, shard completion, Routing Theorem violation, final
// stats). The format is crash-tolerant by construction — each record is
// a single line, written with a single Write call, so a torn final line
// from a killed process never corrupts the lines before it — and the
// reader (Summarize) skips unparsable lines instead of failing, so a
// journal that outlived several interrupted runs still summarizes.
package runlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

// SchemaVersion is stamped into every record so future readers can
// evolve the format without guessing. Schema 2 adds the span and
// heartbeat event types (see internal/obs); schema 3 adds the
// trace/job identity fields, so every record of a service job links
// back to its end-to-end trace; schema 4 adds the compact Resources
// block (process self-telemetry on heartbeats, accumulated per-job
// cost on final records). Schema-1 through schema-3 records remain
// valid, and readers skip event types and fields they do not know, so
// journals mixing schemas — or containing events from a future
// schema — summarize without error.
const SchemaVersion = 4

// Event names. A journal may contain any mix, across multiple runs.
const (
	EventRunStart  = "run_start"
	EventShardDone = "shard_done"
	EventViolation = "violation"
	EventFinal     = "final"
	// EventSpan (schema 2) is one completed trace span: a named,
	// timed section of a run (shard enumeration, checkpoint persist)
	// with optional attributes.
	EventSpan = "span"
	// EventHeartbeat (schema 2) is a periodic liveness record carrying
	// a snapshot of the run's metrics registry, so a journal alone
	// reconstructs the progress timeline of a crashed run.
	EventHeartbeat = "heartbeat"
)

// Record is one journal line. Fields are a union across event types;
// encoding omits the ones an event doesn't use.
type Record struct {
	Schema  int    `json:"schema"`
	Event   string `json:"event"`
	Time    string `json:"time"` // RFC 3339, UTC
	Tool    string `json:"tool,omitempty"`
	Alg     string `json:"alg,omitempty"`
	K       int    `json:"k,omitempty"`
	Workers int    `json:"workers,omitempty"`

	// trace propagation (schema 3): the end-to-end trace ID minted (or
	// accepted) at submission, and the executing service's job ID.
	// Every record a traced run emits carries both, so one journal
	// reconstructs per-job waterfalls (see Traces / cmd/routelog).
	Trace string `json:"trace,omitempty"`
	Job   string `json:"job,omitempty"`

	// shard_done
	Shard       int64 `json:"shard,omitempty"`
	ShardsDone  int64 `json:"shards_done,omitempty"`
	ShardsTotal int64 `json:"shards_total,omitempty"`
	ShardPaths  int64 `json:"shard_paths,omitempty"`

	// violation
	Error string `json:"error,omitempty"`

	// span (schema 2)
	Span      string            `json:"span,omitempty"`
	SpanStart string            `json:"span_start,omitempty"` // RFC 3339, UTC
	DurSec    float64           `json:"dur_sec,omitempty"`
	Attrs     map[string]string `json:"attrs,omitempty"`

	// heartbeat (schema 2)
	Metrics map[string]float64 `json:"metrics,omitempty"`

	// Resources (schema 4) is the compact resource block: on heartbeat
	// records a process self-telemetry snapshot, on final records the
	// job's accumulated cost across every crash/resume leg.
	Resources *Resources `json:"res,omitempty"`

	// final
	Paths         int64   `json:"paths,omitempty"`
	TotalHits     int64   `json:"total_hits,omitempty"`
	MaxVertexHits int64   `json:"max_vertex_hits,omitempty"`
	MaxMetaHits   int64   `json:"max_meta_hits,omitempty"`
	Bound         int64   `json:"bound,omitempty"`
	AdjChecked    int64   `json:"adj_checked,omitempty"`
	ElapsedSec    float64 `json:"elapsed_sec,omitempty"`
	PathsPerSec   float64 `json:"paths_per_sec,omitempty"`
	Resumed       bool    `json:"resumed,omitempty"`
	Paused        bool    `json:"paused,omitempty"`
}

// Resources is the schema-4 compact resource block. It is a union of
// two uses, with omitempty keeping each record small: heartbeat
// records carry the process fields (heap, goroutines, GC, cumulative
// CPU and allocation), final records carry the per-job accounting
// fields (wall, queue wait, CPU seconds, allocated bytes, paths/s,
// legs) accumulated across every crash/resume leg of the job.
type Resources struct {
	// process self-telemetry (heartbeats)
	HeapBytes  int64   `json:"heap_bytes,omitempty"`
	Goroutines int64   `json:"goroutines,omitempty"`
	GCCycles   int64   `json:"gc_cycles,omitempty"`
	GCPauseP99 float64 `json:"gc_pause_p99,omitempty"` // seconds
	Uptime     float64 `json:"uptime_sec,omitempty"`

	// per-job accounting (final records); CPUSeconds and AllocBytes
	// double as the process-cumulative values on heartbeats.
	WallSeconds      float64 `json:"wall_sec,omitempty"`
	QueueWaitSeconds float64 `json:"queue_wait_sec,omitempty"`
	CPUSeconds       float64 `json:"cpu_sec,omitempty"`
	AllocBytes       int64   `json:"alloc_bytes,omitempty"`
	PathsPerSec      float64 `json:"paths_per_sec,omitempty"`
	Legs             int     `json:"legs,omitempty"` // daemon generations that ran the job
}

// Writer appends records to a journal file. A nil *Writer is a valid
// no-op sink, so callers can thread an optional journal without
// branching at every emit site.
type Writer struct {
	f   *os.File
	now func() time.Time
}

// Open opens (creating if needed) a journal for appending.
func Open(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runlog: %w", err)
	}
	return &Writer{f: f, now: time.Now}, nil
}

// Close closes the underlying file. Safe on nil.
func (w *Writer) Close() error {
	if w == nil || w.f == nil {
		return nil
	}
	return w.f.Close()
}

// Emit stamps the schema version and timestamp onto rec and appends it
// as one JSON line. Safe on nil (drops the record). Each record is a
// single Write call, so concurrent emitters from one process interleave
// at line granularity and a crash tears at most the final line.
func (w *Writer) Emit(rec Record) error {
	if w == nil || w.f == nil {
		return nil
	}
	rec.Schema = SchemaVersion
	rec.Time = w.now().UTC().Format(time.RFC3339Nano)
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("runlog: %w", err)
	}
	_, err = w.f.Write(append(line, '\n'))
	return err
}

// Summary aggregates a journal across every run it records.
type Summary struct {
	Records    int // parsable lines
	Skipped    int // torn or foreign lines
	Runs       int // run_start events
	Finals     int
	Violations []string
	ShardsDone int64 // shard_done events (re-runs of a shard count once each)
	Spans      int   // span events (schema 2)
	Heartbeats int   // heartbeat events (schema 2)
	Traces     int   // distinct trace IDs (schema 3)
	Unknown    int   // parsable records of event types this reader does not know
	// OrbitGroups and OrbitFamilies are the high-water marks of the
	// orbit-reduction counters across heartbeat metric snapshots (the
	// counters are monotone within a process, so the maximum is the
	// last complete snapshot even when heartbeats interleave). Families
	// stay zero unless a run used the stage-2 orbit kernel; their ratio
	// is the kernel's shared-chain aggregation fan-in.
	OrbitGroups   float64
	OrbitFamilies float64
	// ByRun holds one entry per (tool, alg, k) configuration seen, in
	// first-appearance order.
	ByRun []RunSummary
}

// RunSummary is the per-configuration roll-up.
type RunSummary struct {
	Tool, Alg   string
	K           int
	Starts      int
	Paused      int
	Finals      int
	LastPaths   int64
	LastElapsed float64
	LastPPS     float64
	BestPPS     float64
}

func (s *Summary) runFor(rec Record) *RunSummary {
	for i := range s.ByRun {
		r := &s.ByRun[i]
		if r.Tool == rec.Tool && r.Alg == rec.Alg && r.K == rec.K {
			return r
		}
	}
	s.ByRun = append(s.ByRun, RunSummary{Tool: rec.Tool, Alg: rec.Alg, K: rec.K})
	return &s.ByRun[len(s.ByRun)-1]
}

// Summarize reads a journal stream. Unparsable lines (torn tails from
// killed runs, other formats) are counted in Skipped, never fatal.
func Summarize(r io.Reader) (*Summary, error) {
	s := &Summary{}
	traces := make(map[string]struct{})
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil || rec.Event == "" {
			s.Skipped++
			continue
		}
		s.Records++
		if rec.Trace != "" {
			traces[rec.Trace] = struct{}{}
		}
		switch rec.Event {
		case EventRunStart:
			s.Runs++
			s.runFor(rec).Starts++
		case EventShardDone:
			s.ShardsDone++
		case EventViolation:
			s.Violations = append(s.Violations, rec.Error)
		case EventFinal:
			run := s.runFor(rec)
			s.Finals++
			if rec.Paused {
				run.Paused++
			} else {
				run.Finals++
			}
			run.LastPaths = rec.Paths
			run.LastElapsed = rec.ElapsedSec
			run.LastPPS = rec.PathsPerSec
			run.BestPPS = max(run.BestPPS, rec.PathsPerSec)
		case EventSpan:
			s.Spans++
		case EventHeartbeat:
			s.Heartbeats++
			s.OrbitGroups = max(s.OrbitGroups, rec.Metrics["routing_orbit_groups_total"])
			s.OrbitFamilies = max(s.OrbitFamilies, rec.Metrics["routing_orbit_families_total"])
		default:
			// Event types from a future schema: counted, never fatal,
			// and kept out of the per-run roll-ups they might not
			// belong to.
			s.Unknown++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("runlog: %w", err)
	}
	s.Traces = len(traces)
	return s, nil
}

// SummarizeFile is Summarize over a journal path.
func SummarizeFile(path string) (*Summary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("runlog: %w", err)
	}
	defer f.Close()
	return Summarize(f)
}

// Format renders a Summary for terminal output.
func (s *Summary) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "journal: %d records (%d skipped), %d run starts, %d finals, %d shard completions\n",
		s.Records, s.Skipped, s.Runs, s.Finals, s.ShardsDone)
	if s.Spans > 0 || s.Heartbeats > 0 || s.Unknown > 0 {
		fmt.Fprintf(&b, "  observability: %d spans, %d heartbeats, %d unknown-event records\n",
			s.Spans, s.Heartbeats, s.Unknown)
	}
	if s.Traces > 0 {
		fmt.Fprintf(&b, "  traces: %d distinct trace IDs (inspect with routelog)\n", s.Traces)
	}
	if s.OrbitGroups > 0 {
		fmt.Fprintf(&b, "  orbit reduction: %.0f orbits collapsed", s.OrbitGroups)
		if s.OrbitFamilies > 0 {
			fmt.Fprintf(&b, " into %.0f shared-chain families (%.1f orbits/family)",
				s.OrbitFamilies, s.OrbitGroups/s.OrbitFamilies)
		}
		b.WriteString("\n")
	}
	runs := append([]RunSummary(nil), s.ByRun...)
	sort.SliceStable(runs, func(i, j int) bool {
		if runs[i].Alg != runs[j].Alg {
			return runs[i].Alg < runs[j].Alg
		}
		return runs[i].K < runs[j].K
	})
	for _, r := range runs {
		fmt.Fprintf(&b, "  %s %s k=%d: %d starts, %d paused, %d completed",
			r.Tool, r.Alg, r.K, r.Starts, r.Paused, r.Finals)
		if r.LastPaths > 0 {
			fmt.Fprintf(&b, "; last %d paths in %.2fs (%.0f paths/s, best %.0f)",
				r.LastPaths, r.LastElapsed, r.LastPPS, r.BestPPS)
		}
		b.WriteString("\n")
	}
	for _, v := range s.Violations {
		fmt.Fprintf(&b, "  VIOLATION: %s\n", v)
	}
	return b.String()
}
