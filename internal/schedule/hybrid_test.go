// External test package: pebble imports schedule, so a test that drives
// the pebble simulator over schedule output must live outside package
// schedule to avoid the import cycle.
package schedule_test

import (
	"testing"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/cdag"
	"pathrouting/internal/pebble"
	"pathrouting/internal/schedule"
)

// TestHybridDFSEdgeDepths pins the contract at the depth boundaries:
// negative depths clamp to 0, depth ≥ r degenerates to RecursiveDFS,
// and every clamped depth yields a schedule that both passes
// schedule.Validate and survives a full pebble-game simulation.
func TestHybridDFSEdgeDepths(t *testing.T) {
	alg := bilinear.Strassen()
	const r = 3
	g, err := cdag.New(alg, r)
	if err != nil {
		t.Fatal(err)
	}

	depths := []int{-5, -1, 0, 1, r - 1, r, r + 1, r + 100}
	scheds := make(map[int][]cdag.V, len(depths))
	for _, d := range depths {
		sched := schedule.HybridDFS(g, d)
		if err := schedule.Validate(g, sched); err != nil {
			t.Fatalf("depth %d: %v", d, err)
		}
		scheds[d] = sched
	}

	equal := func(a, b []cdag.V) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	// Negative depths clamp to 0.
	for _, d := range []int{-5, -1} {
		if !equal(scheds[d], scheds[0]) {
			t.Errorf("depth %d differs from depth 0", d)
		}
	}
	// depth ≥ r is exactly RecursiveDFS.
	full := schedule.RecursiveDFS(g)
	for _, d := range []int{r, r + 1, r + 100} {
		if !equal(scheds[d], full) {
			t.Errorf("depth %d differs from RecursiveDFS", d)
		}
	}
	// Interior depths are genuinely distinct orders, not silent clamps.
	if equal(scheds[0], full) {
		t.Error("depth 0 coincides with RecursiveDFS; interpolation is vacuous")
	}
	if equal(scheds[1], scheds[0]) || equal(scheds[1], full) {
		t.Error("depth 1 coincides with an extreme; interpolation is vacuous")
	}

	// Pebble run at every edge depth: the simulator must accept the
	// schedule, and the measured I/O must interpolate — deeper blocking
	// never costs more under MIN at a cache that fits a subproblem but
	// not a layer.
	const m = 64
	ios := make(map[int]int64, len(depths))
	for _, d := range depths {
		res, err := (&pebble.Simulator{G: g, M: m, P: pebble.MIN}).Run(scheds[d])
		if err != nil {
			t.Fatalf("depth %d: pebble run: %v", d, err)
		}
		if res.IO() <= 0 {
			t.Fatalf("depth %d: non-positive I/O %d", d, res.IO())
		}
		ios[d] = res.IO()
	}
	for d := 1; d <= r; d++ {
		if ios[d] > ios[d-1] {
			t.Errorf("I/O not monotone in depth: depth %d = %d > depth %d = %d",
				d, ios[d], d-1, ios[d-1])
		}
	}
	if ios[r] >= ios[0] {
		t.Errorf("depth r I/O %d does not beat depth 0 I/O %d", ios[r], ios[0])
	}
}
