// Package schedule generates computation orders (topological orders of
// the non-input vertices) for the CDAG G_r. Three generators span the
// spectrum the paper's bounds are about:
//
//   - RecursiveDFS: the depth-first blocked order used by the
//     communication-optimal algorithms of Ballard et al. [3]; with a
//     reasonable replacement policy its I/O matches the paper's lower
//     bound Θ((n/√M)^ω₀·M), making it the matching upper bound.
//   - RankByRank: the breadth-first order that computes each layer
//     completely before the next; its working set is a whole layer, so
//     its I/O degenerates to Θ(|V(G_r)|) once M is below the layer size.
//   - RandomTopological: a randomized baseline.
package schedule

import (
	"fmt"
	"math/rand"

	"pathrouting/internal/cdag"
)

// RankByRank returns the layer-major order: encoding ranks 1..r of A,
// then of B, then decoding ranks 0..r.
func RankByRank(g *cdag.Graph) []cdag.V {
	out := make([]cdag.V, 0, g.NumVertices())
	for _, kind := range []cdag.Kind{cdag.EncA, cdag.EncB} {
		for rank := 1; rank <= g.R; rank++ {
			n := int64(g.LayerSize(kind, rank))
			for i := int64(0); i < n; i++ {
				out = append(out, g.ID(kind, rank, i))
			}
		}
	}
	for rank := 0; rank <= g.R; rank++ {
		n := int64(g.LayerSize(cdag.Dec, rank))
		for i := int64(0); i < n; i++ {
			out = append(out, g.ID(cdag.Dec, rank, i))
		}
	}
	return out
}

// RecursiveDFS returns the depth-first blocked order: at recursion depth
// d with product prefix T, first compute the rank-d encodings of both
// operands for every entry suffix, then recurse into the b subproblems
// T·t in order, then combine their results into the decoding vertices of
// rank r-d with prefix T. The working set at depth d is O(a^(r-d) · b),
// which is what gives the schedule its Θ((n/√M)^ω₀·M) I/O under MIN/LRU.
func RecursiveDFS(g *cdag.Graph) []cdag.V {
	out := make([]cdag.V, 0, g.NumVertices())
	powA := make([]int64, g.R+1)
	powA[0] = 1
	for i := 1; i <= g.R; i++ {
		powA[i] = powA[i-1] * int64(g.A())
	}
	var rec func(d int, prefix int64)
	rec = func(d int, prefix int64) {
		nSuffix := powA[g.R-d]
		if d > 0 {
			for _, kind := range []cdag.Kind{cdag.EncA, cdag.EncB} {
				for s := int64(0); s < nSuffix; s++ {
					out = append(out, g.ID(kind, d, prefix*nSuffix+s))
				}
			}
		}
		if d == g.R {
			out = append(out, g.Product(prefix))
			return
		}
		for t := 0; t < g.B(); t++ {
			rec(d+1, prefix*int64(g.B())+int64(t))
		}
		// Combine children: decoding rank r-d has prefix length d.
		for s := int64(0); s < nSuffix; s++ {
			out = append(out, g.ID(cdag.Dec, g.R-d, prefix*nSuffix+s))
		}
	}
	rec(0, 0)
	return out
}

// RandomTopological returns a uniformly random-ish topological order of
// the non-input vertices (Kahn's algorithm with random tie-breaking).
// It errors when the ready queue drains before every non-input vertex
// is emitted — a cyclic or otherwise corrupt graph. The seed returned
// whatever partial order Kahn's produced, which downstream simulators
// then misreported as a cheap valid schedule.
func RandomTopological(g *cdag.Graph, rng *rand.Rand) ([]cdag.V, error) {
	n := g.NumVertices()
	indeg := make([]int32, n)
	var buf []cdag.Edge
	ready := make([]cdag.V, 0, 1024)
	nonInputs := 0
	for v := 0; v < n; v++ {
		vv := cdag.V(v)
		if g.IsInput(vv) {
			continue
		}
		nonInputs++
		buf = g.AppendParents(vv, buf[:0])
		deg := int32(0)
		for _, e := range buf {
			if !g.IsInput(e.To) {
				deg++
			}
		}
		indeg[v] = deg
		if deg == 0 {
			ready = append(ready, vv)
		}
	}
	out := make([]cdag.V, 0, n)
	for len(ready) > 0 {
		i := rng.Intn(len(ready))
		v := ready[i]
		ready[i] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		out = append(out, v)
		buf = g.AppendChildren(v, buf[:0])
		for _, e := range buf {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				ready = append(ready, e.To)
			}
		}
	}
	if len(out) != nonInputs {
		return nil, fmt.Errorf("schedule: Kahn's algorithm emitted %d of %d non-input vertices — graph has a cycle or unreachable in-degrees", len(out), nonInputs)
	}
	return out, nil
}

// Validate checks that sched is a complete topological order of the
// non-input vertices of g: every non-input vertex exactly once, parents
// before children. It returns the first violation.
func Validate(g *cdag.Graph, sched []cdag.V) error {
	n := g.NumVertices()
	pos := make([]int32, n)
	for i := range pos {
		pos[i] = -1
	}
	for i, v := range sched {
		if g.IsInput(v) {
			return errInput(g, v)
		}
		if pos[v] >= 0 {
			return errDup(g, v)
		}
		pos[v] = int32(i)
	}
	var buf []cdag.Edge
	for v := 0; v < n; v++ {
		vv := cdag.V(v)
		if g.IsInput(vv) {
			continue
		}
		if pos[v] < 0 {
			return errMissing(g, vv)
		}
		buf = g.AppendParents(vv, buf[:0])
		for _, e := range buf {
			if !g.IsInput(e.To) && pos[e.To] >= pos[v] {
				return errOrder(g, e.To, vv)
			}
		}
	}
	return nil
}

func errInput(g *cdag.Graph, v cdag.V) error {
	return fmt.Errorf("schedule: contains input %s", g.Label(v))
}

func errDup(g *cdag.Graph, v cdag.V) error {
	return fmt.Errorf("schedule: duplicates %s", g.Label(v))
}

func errMissing(g *cdag.Graph, v cdag.V) error {
	return fmt.Errorf("schedule: missing %s", g.Label(v))
}

func errOrder(g *cdag.Graph, parent, child cdag.V) error {
	return fmt.Errorf("schedule: %s scheduled at or after its child %s", g.Label(parent), g.Label(child))
}

// HybridDFS returns the blocked order that recurses depth-first only
// down to the given depth and computes each remaining subtree
// layer-by-layer (rank-major within the subtree). depth = 0 degenerates
// to RankByRank's locality (whole-graph layers per subtree = the whole
// graph), depth = r to RecursiveDFS. It is the schedule-structure
// ablation: the I/O of HybridDFS interpolates between the two extremes
// as depth varies.
func HybridDFS(g *cdag.Graph, depth int) []cdag.V {
	if depth < 0 {
		depth = 0
	}
	if depth >= g.R {
		return RecursiveDFS(g)
	}
	out := make([]cdag.V, 0, g.NumVertices())
	powA := make([]int64, g.R+1)
	powA[0] = 1
	for i := 1; i <= g.R; i++ {
		powA[i] = powA[i-1] * int64(g.A())
	}
	powB := make([]int64, g.R+1)
	powB[0] = 1
	for i := 1; i <= g.R; i++ {
		powB[i] = powB[i-1] * int64(g.B())
	}
	var rec func(d int, prefix int64)
	rec = func(d int, prefix int64) {
		nSuffix := powA[g.R-d]
		if d > 0 {
			for _, kind := range []cdag.Kind{cdag.EncA, cdag.EncB} {
				for s := int64(0); s < nSuffix; s++ {
					out = append(out, g.ID(kind, d, prefix*nSuffix+s))
				}
			}
		}
		if d == depth {
			// Rank-major over the subtree rooted at prefix: encoding
			// ranks d+1..r, then decoding ranks 0..r-d with prefix.
			for rank := d + 1; rank <= g.R; rank++ {
				span := powB[rank-d] * powA[g.R-rank]
				for _, kind := range []cdag.Kind{cdag.EncA, cdag.EncB} {
					for s := int64(0); s < span; s++ {
						out = append(out, g.ID(kind, rank, prefix*span+s))
					}
				}
			}
			for rank := 0; rank <= g.R-d; rank++ {
				span := powB[g.R-d-rank] * powA[rank]
				for s := int64(0); s < span; s++ {
					out = append(out, g.ID(cdag.Dec, rank, prefix*span+s))
				}
			}
			return
		}
		for t := 0; t < g.B(); t++ {
			rec(d+1, prefix*int64(g.B())+int64(t))
		}
		for s := int64(0); s < nSuffix; s++ {
			out = append(out, g.ID(cdag.Dec, g.R-d, prefix*nSuffix+s))
		}
	}
	rec(0, 0)
	return out
}
