package schedule

import (
	"math/rand"
	"testing"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/cdag"
)

func mustGraph(t *testing.T, alg *bilinear.Algorithm, r int) *cdag.Graph {
	t.Helper()
	g, err := cdag.New(alg, r)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGeneratorsAreValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, alg := range []*bilinear.Algorithm{bilinear.Strassen(), bilinear.Winograd(), bilinear.Classical(2), bilinear.DisconnectedFast()} {
		for r := 1; r <= 3; r++ {
			if alg.A() >= 16 && r > 2 {
				continue
			}
			g := mustGraph(t, alg, r)
			random, err := RandomTopological(g, rng)
			if err != nil {
				t.Fatalf("%s r=%d: %v", alg.Name, r, err)
			}
			for name, sched := range map[string][]cdag.V{
				"rank":   RankByRank(g),
				"dfs":    RecursiveDFS(g),
				"random": random,
			} {
				if err := Validate(g, sched); err != nil {
					t.Errorf("%s r=%d %s: %v", alg.Name, r, name, err)
				}
				wantLen := g.NumVertices() - 2*g.LayerSize(cdag.EncA, 0)
				if len(sched) != wantLen {
					t.Errorf("%s r=%d %s: schedule length %d, want %d", alg.Name, r, name, len(sched), wantLen)
				}
			}
		}
	}
}

func TestValidateDetectsViolations(t *testing.T) {
	g := mustGraph(t, bilinear.Strassen(), 2)
	good := RecursiveDFS(g)

	// Input included.
	bad := append([]cdag.V{g.InputA(0)}, good...)
	if Validate(g, bad) == nil {
		t.Error("input accepted")
	}
	// Duplicate.
	bad = append(append([]cdag.V{}, good...), good[0])
	if Validate(g, bad) == nil {
		t.Error("duplicate accepted")
	}
	// Missing vertex.
	if Validate(g, good[:len(good)-1]) == nil {
		t.Error("missing vertex accepted")
	}
	// Order violation: swap a product with one of its decoding children.
	bad = append([]cdag.V{}, good...)
	var pi, di int
	for i, v := range bad {
		if g.IsProduct(v) && pi == 0 {
			pi = i
		}
	}
	for i, v := range bad {
		kind, rank, _ := g.Locate(v)
		if kind == cdag.Dec && rank == g.R && i > pi {
			di = i
			break
		}
	}
	bad[pi], bad[di] = bad[di], bad[pi]
	if Validate(g, bad) == nil {
		t.Error("order violation accepted")
	}
}

func TestDFSOrderStructure(t *testing.T) {
	// The first computed vertices must be encoding rank-1 vertices of
	// subproblem prefix 0, and the last must be outputs.
	g := mustGraph(t, bilinear.Strassen(), 3)
	sched := RecursiveDFS(g)
	kind, rank, _ := g.Locate(sched[0])
	if kind != cdag.EncA || rank != 1 {
		t.Errorf("first scheduled vertex %s", g.Label(sched[0]))
	}
	last := sched[len(sched)-1]
	if !g.IsOutput(last) {
		t.Errorf("last scheduled vertex %s", g.Label(last))
	}
}

func TestRandomTopologicalDiffersAcrossSeeds(t *testing.T) {
	g := mustGraph(t, bilinear.Strassen(), 2)
	a, err := RandomTopological(g, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomTopological(g, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("random schedules identical across seeds")
	}
}

func TestHybridDFSValidAndInterpolates(t *testing.T) {
	g := mustGraph(t, bilinear.Strassen(), 4)
	for depth := 0; depth <= 4; depth++ {
		sched := HybridDFS(g, depth)
		if err := Validate(g, sched); err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
	}
	// depth = r coincides with RecursiveDFS.
	full := RecursiveDFS(g)
	hyb := HybridDFS(g, 4)
	for i := range full {
		if full[i] != hyb[i] {
			t.Fatal("depth=r hybrid differs from RecursiveDFS")
		}
	}
	if HybridDFS(g, -3) == nil {
		t.Fatal("negative depth mishandled")
	}
}
