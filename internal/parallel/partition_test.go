package parallel

import (
	"math"
	"math/rand"
	"testing"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/bounds"
	"pathrouting/internal/cdag"
)

func mustCDAG(t *testing.T, alg *bilinear.Algorithm, r int) *cdag.Graph {
	t.Helper()
	g, err := cdag.New(alg, r)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPartitionP1NoCommunication(t *testing.T) {
	g := mustCDAG(t, bilinear.Strassen(), 3)
	res, err := RankBalancedPartition(g, 1, Contiguous, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.CrossEdges != 0 || res.CriticalPath != 0 {
		t.Errorf("P=1 communicates: %+v", res)
	}
}

func TestPartitionBalanced(t *testing.T) {
	g := mustCDAG(t, bilinear.Strassen(), 4)
	rng := rand.New(rand.NewSource(4))
	for _, style := range []PartitionStyle{Contiguous, Shuffled} {
		res, err := RankBalancedPartition(g, 7, style, rng)
		if err != nil {
			t.Fatal(err)
		}
		// Per-rank balance within the rounding slack.
		if res.MaxLoadImbalance > 1.5 {
			t.Errorf("%v: imbalance %v", style, res.MaxLoadImbalance)
		}
		if res.CrossEdges <= 0 || res.CriticalPath <= 0 {
			t.Errorf("%v: no communication recorded: %+v", style, res)
		}
		if res.CriticalPath > 2*res.CrossEdges {
			t.Errorf("%v: critical path %d exceeds total volume bound %d", style, res.CriticalPath, 2*res.CrossEdges)
		}
	}
}

func TestPartitionRespectsMemoryIndependentBound(t *testing.T) {
	// Theorem 1's last clause: any per-rank load-balanced execution
	// moves Ω(n²/P^(2/ω₀)) words; concrete partitions are executions,
	// so their critical-path words must sit above the bound (up to the
	// theorem's constant, which the paper leaves implicit; we check
	// with constant 1/8).
	alg := bilinear.Strassen()
	g := mustCDAG(t, alg, 5)
	rng := rand.New(rand.NewSource(6))
	n := math.Pow(2, 5)
	for _, p := range []int{4, 16, 49} {
		for _, style := range []PartitionStyle{Contiguous, Shuffled} {
			res, err := RankBalancedPartition(g, p, style, rng)
			if err != nil {
				t.Fatal(err)
			}
			lb := bounds.MemoryIndependent(alg.Omega0(), n, p)
			if float64(res.CriticalPath) < lb/8 {
				t.Errorf("P=%d %v: critical path %d below bound %v/8", p, style, res.CriticalPath, lb)
			}
		}
	}
}

func TestShuffledCostsMoreThanContiguous(t *testing.T) {
	// Locality matters: the random assignment cuts far more edges than
	// the contiguous one.
	g := mustCDAG(t, bilinear.Strassen(), 5)
	rng := rand.New(rand.NewSource(7))
	cont, err := RankBalancedPartition(g, 8, Contiguous, nil)
	if err != nil {
		t.Fatal(err)
	}
	shuf, err := RankBalancedPartition(g, 8, Shuffled, rng)
	if err != nil {
		t.Fatal(err)
	}
	if shuf.CrossEdges <= cont.CrossEdges {
		t.Errorf("shuffled %d not above contiguous %d", shuf.CrossEdges, cont.CrossEdges)
	}
}

func TestPartitionErrors(t *testing.T) {
	g := mustCDAG(t, bilinear.Strassen(), 2)
	if _, err := RankBalancedPartition(g, 0, Contiguous, nil); err == nil {
		t.Error("P=0 accepted")
	}
	if _, err := RankBalancedPartition(g, 2, Shuffled, nil); err == nil {
		t.Error("shuffled without rng accepted")
	}
}
