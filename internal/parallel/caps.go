package parallel

import (
	"fmt"

	"pathrouting/internal/bilinear"
)

// CAPSResult reports a CAPS simulation.
type CAPSResult struct {
	// P is the processor count (a power of b).
	P int
	// Bandwidth is the critical-path word count.
	Bandwidth int64
	// Steps is the superstep count.
	Steps int64
	// BFSLevels and DFSLevels record the step pattern chosen.
	BFSLevels, DFSLevels int
	// PeakMemory is the maximum words resident per processor.
	PeakMemory int64
}

// CAPS simulates the communication of a CAPS-style parallel
// Strassen-like algorithm (Ballard–Demmel–Holtz–Lipshitz–Schwartz [3])
// for n×n matrices on P processors with local memories of M words.
//
// The recursion, at problem size m on p processors:
//
//   - BFS step (p > 1, enough memory): form the b sub-operand pairs and
//     redistribute them so each of b groups of p/b processors owns one
//     subproblem. Each processor exchanges Θ(b·(m/n₀)²/p) words — we
//     count the exact 3·b·(m/n₀)²/p (2 operand combinations out, 1
//     product contribution back). Memory per processor grows by the
//     factor b/a relative to the parent's share.
//   - DFS step (memory-tight): all p processors cooperate on the b
//     subproblems sequentially. With elementwise-cyclic block layout
//     the linear combinations are local, so a DFS step moves no words;
//     it costs a factor b in the number of lower-level steps instead.
//   - p = 1: the subproblem is solved locally (sequential I/O is
//     measured by the pebble simulator, not counted as bandwidth).
//
// The step chooser takes BFS whenever the resulting per-processor
// footprint fits in M, which is CAPS's optimal interleaving. It returns
// an error when even all-DFS cannot fit (M below 3n²/P).
func CAPS(alg *bilinear.Algorithm, n, p int, m int64) (CAPSResult, error) {
	if p < 1 {
		return CAPSResult{}, fmt.Errorf("parallel: CAPS p = %d", p)
	}
	b := alg.B()
	// p must be a power of b for the pure BFS tree; DFS levels relax
	// this, but we keep the canonical form.
	pp := p
	levelsP := 0
	for pp > 1 {
		if pp%b != 0 {
			return CAPSResult{}, fmt.Errorf("parallel: CAPS P = %d is not a power of b = %d", p, b)
		}
		pp /= b
		levelsP++
	}
	if int64(3*n)*int64(n)/int64(p) > m {
		return CAPSResult{}, fmt.Errorf("parallel: CAPS M = %d cannot hold 3n²/P = %d", m, int64(3*n)*int64(n)/int64(p))
	}

	mach := NewMachine(p)
	res := CAPSResult{P: p}
	n0 := int64(alg.N0)

	// rec simulates the subtree at problem size mdim on procs procs,
	// where footprint is the per-processor share of the current
	// subproblem (3·mdim²/procs words) times the BFS blowup so far.
	// reps counts how many times this subtree executes (DFS steps
	// sequentialize b-fold).
	var rec func(mdim int64, procs int, reps int64, footprint int64) error
	rec = func(mdim int64, procs int, reps int64, footprint int64) error {
		if footprint > res.PeakMemory {
			res.PeakMemory = footprint
		}
		if procs == 1 {
			return nil
		}
		if mdim%n0 != 0 {
			return fmt.Errorf("parallel: CAPS subproblem %d not divisible by n₀", mdim)
		}
		sub := mdim / n0
		// BFS footprint: the b subproblems live simultaneously,
		// 3·b·sub² words over procs processors.
		bfsFoot := 3 * int64(b) * sub * sub / int64(procs)
		if bfsFoot <= m {
			// BFS: redistribute combos and collect products.
			words := 3 * int64(b) * sub * sub / int64(procs)
			for i := int64(0); i < reps; i++ {
				mach.Uniform(words)
				mach.EndStep()
			}
			res.BFSLevels++
			return rec(sub, procs/b, reps, bfsFoot)
		}
		// DFS: no communication, b-fold sequentialization.
		res.DFSLevels++
		return rec(sub, procs, reps*int64(b), 3*sub*sub/int64(procs))
	}
	if err := rec(int64(n), p, 1, 3*int64(n)*int64(n)/int64(p)); err != nil {
		return res, err
	}
	res.Bandwidth = mach.Bandwidth()
	res.Steps = mach.Steps()
	return res, nil
}
