// Package parallel simulates the paper's distributed machine model — P
// processors, each with local memory of size M words — and measures the
// bandwidth cost (words communicated along the critical path) of
// classical and Strassen-like distributed matrix multiplication:
//
//   - Cannon's 2D algorithm (classical, message-level simulation with
//     block-position invariants checked),
//   - the 2.5D algorithm with c-fold replication (classical, superstep
//     accounting),
//   - CAPS-style parallel Strassen-like multiplication with BFS/DFS
//     steps chosen by the local-memory constraint (superstep
//     accounting), the algorithm of Ballard et al. [3] whose cost
//     matches the lower bounds of the paper's Theorem 1.
//
// Bandwidth is counted per superstep as the maximum over processors of
// words sent plus words received (the BSP h-relation), matching the
// paper's convention that words moved simultaneously by different
// processors count once.
package parallel

import "fmt"

// Machine accumulates the bandwidth cost of a bulk-synchronous
// execution on P processors.
type Machine struct {
	// P is the number of processors.
	P int

	cur       []int64 // words sent+received by each proc this superstep
	bandwidth int64
	steps     int64
	totalSent int64
}

// NewMachine returns a machine with P processors.
func NewMachine(p int) *Machine {
	if p < 1 {
		panic(fmt.Errorf("parallel: P = %d", p))
	}
	return &Machine{P: p, cur: make([]int64, p)}
}

// Send records a point-to-point message of the given word count within
// the current superstep. Self-sends are free (local copies).
func (m *Machine) Send(from, to int, words int64) {
	if from < 0 || from >= m.P || to < 0 || to >= m.P {
		panic(fmt.Errorf("parallel: Send %d->%d out of range P=%d", from, to, m.P))
	}
	if words < 0 {
		panic(fmt.Errorf("parallel: negative message %d", words))
	}
	if from == to {
		return
	}
	m.cur[from] += words
	m.cur[to] += words
	m.totalSent += words
}

// Uniform records that every processor sends and receives the given
// number of words this superstep (the common all-symmetric case; avoids
// P² explicit messages).
func (m *Machine) Uniform(words int64) {
	if words < 0 {
		panic(fmt.Errorf("parallel: negative uniform step %d", words))
	}
	for i := range m.cur {
		m.cur[i] += 2 * words
	}
	m.totalSent += int64(m.P) * words
}

// EndStep closes the current superstep, adding its h-relation (max over
// processors of words sent+received) to the critical-path bandwidth.
func (m *Machine) EndStep() {
	var h int64
	for i, w := range m.cur {
		if w > h {
			h = w
		}
		m.cur[i] = 0
	}
	m.bandwidth += h
	m.steps++
}

// Bandwidth returns the accumulated critical-path word count.
func (m *Machine) Bandwidth() int64 { return m.bandwidth }

// Steps returns the number of closed supersteps (the latency cost in
// messages along the critical path, up to constants).
func (m *Machine) Steps() int64 { return m.steps }

// TotalWords returns the total words sent by all processors (volume,
// not critical path).
func (m *Machine) TotalWords() int64 { return m.totalSent }
