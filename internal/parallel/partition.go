package parallel

// Per-rank load-balanced CDAG partitions: the setting of the paper's
// cache-independent bandwidth bound. Theorem 1's last clause says that
// as long as the computation is load balanced per rank of the
// computation graph, any P-processor execution communicates
// Ω(n²/P^(2/ω₀)) words. Here we assign each rank's vertices evenly to
// the P processors (contiguously by index or at random) and count the
// words forced across processor boundaries: every edge whose endpoints
// live on different processors moves one word. Measured counts are
// *upper-bound instances* — concrete executions whose cost must sit
// above the lower bound, and do (see tests and cmd/paperrepro).

import (
	"fmt"
	"math/rand"

	"pathrouting/internal/cdag"
)

// PartitionStyle selects the per-rank assignment rule.
type PartitionStyle int

// Available assignment rules.
const (
	// Contiguous assigns each rank's vertices to processors in equal
	// consecutive index blocks — the locality-friendly baseline (block
	// layouts correspond to contiguous tensor-index ranges).
	Contiguous PartitionStyle = iota
	// Shuffled assigns each rank's vertices to processors in equal
	// shares but at random — the locality-oblivious worst case.
	Shuffled
)

func (s PartitionStyle) String() string {
	if s == Contiguous {
		return "contiguous"
	}
	return "shuffled"
}

// PartitionResult reports one partition's communication.
type PartitionResult struct {
	P int
	// CrossEdges is the number of graph edges with endpoints on
	// different processors (each moves one word overall).
	CrossEdges int64
	// CriticalPath is the bandwidth cost in the paper's sense: per
	// global rank, the maximum over processors of words sent plus
	// received, summed over ranks (rank-synchronous execution).
	CriticalPath int64
	// MaxLoadImbalance is the max/mean vertex count ratio over
	// processors within any rank (must be ≈ 1 for the bound to apply).
	MaxLoadImbalance float64
}

// RankBalancedPartition assigns every vertex of g to one of p
// processors, rank by rank, with the chosen style, and counts the
// communication the assignment forces. rng is used only by Shuffled.
func RankBalancedPartition(g *cdag.Graph, p int, style PartitionStyle, rng *rand.Rand) (PartitionResult, error) {
	if p < 1 {
		return PartitionResult{}, fmt.Errorf("parallel: P = %d", p)
	}
	if style == Shuffled && rng == nil {
		return PartitionResult{}, fmt.Errorf("parallel: Shuffled partition needs a rand source")
	}
	n := g.NumVertices()
	owner := make([]int32, n)

	assignLayer := func(kind cdag.Kind, rank int) float64 {
		size := g.LayerSize(kind, rank)
		if size == 0 {
			return 1
		}
		perm := make([]int32, size)
		for i := range perm {
			perm[i] = int32(i)
		}
		if style == Shuffled {
			rng.Shuffle(size, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		}
		counts := make([]int64, p)
		for i := 0; i < size; i++ {
			proc := int(int64(i) * int64(p) / int64(size))
			owner[g.ID(kind, rank, int64(perm[i]))] = int32(proc)
			counts[proc]++
		}
		var maxC int64
		for _, c := range counts {
			if c > maxC {
				maxC = c
			}
		}
		mean := float64(size) / float64(p)
		if mean == 0 {
			return 1
		}
		return float64(maxC) / mean
	}

	res := PartitionResult{P: p, MaxLoadImbalance: 1}
	note := func(imb float64) {
		if imb > res.MaxLoadImbalance {
			res.MaxLoadImbalance = imb
		}
	}
	for rank := 0; rank <= g.R; rank++ {
		note(assignLayer(cdag.EncA, rank))
		note(assignLayer(cdag.EncB, rank))
	}
	for rank := 0; rank <= g.R; rank++ {
		note(assignLayer(cdag.Dec, rank))
	}

	// Count cross-processor edges; accumulate per-rank h-relations.
	// perRank[rank][proc] = words sent + received by proc while
	// computing the vertices of that global rank.
	nRanks := 2*g.R + 2
	perRank := make([][]int64, nRanks)
	for i := range perRank {
		perRank[i] = make([]int64, p)
	}
	var buf []cdag.Edge
	for v := 0; v < n; v++ {
		vv := cdag.V(v)
		rank := g.GlobalRank(vv)
		buf = g.AppendParents(vv, buf[:0])
		for _, e := range buf {
			if owner[e.To] != owner[v] {
				res.CrossEdges++
				perRank[rank][owner[v]]++
				perRank[rank][owner[e.To]]++
			}
		}
	}
	for _, procs := range perRank {
		var h int64
		for _, w := range procs {
			if w > h {
				h = w
			}
		}
		res.CriticalPath += h
	}
	return res, nil
}
