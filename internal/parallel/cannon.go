package parallel

import (
	"fmt"
	"math"
)

// CannonResult reports a simulated Cannon run.
type CannonResult struct {
	// P is the processor count (a perfect square).
	P int
	// Bandwidth is the critical-path word count.
	Bandwidth int64
	// Steps is the superstep count.
	Steps int64
	// MemoryPerProc is the peak words held by one processor.
	MemoryPerProc int64
}

// Cannon simulates Cannon's classical 2D algorithm for n×n matrices on
// P = p×p processors at the message level: the initial skew, then p
// shift-multiply rounds. Block positions are tracked explicitly and the
// multiplication invariant — processor (i,j) multiplies A(i, i+j+k) by
// B(i+j+k, j) in round k, covering each k-index exactly once — is
// checked, so the word counts are those of a verified execution.
// n must be divisible by p.
func Cannon(n, p int) (CannonResult, error) {
	if p < 1 {
		return CannonResult{}, fmt.Errorf("parallel: Cannon p = %d", p)
	}
	if n%p != 0 {
		return CannonResult{}, fmt.Errorf("parallel: Cannon n = %d not divisible by p = %d", n, p)
	}
	nb := n / p
	blk := int64(nb) * int64(nb)
	m := NewMachine(p * p)
	proc := func(i, j int) int { return ((i%p)+p)%p*p + ((j%p)+p)%p }

	// aAt[i][j] = column index of the A block held by processor (i,j);
	// bAt[i][j] = row index of the B block held there.
	aAt := make([][]int, p)
	bAt := make([][]int, p)
	for i := 0; i < p; i++ {
		aAt[i] = make([]int, p)
		bAt[i] = make([]int, p)
		for j := 0; j < p; j++ {
			aAt[i][j] = j
			bAt[i][j] = i
		}
	}

	// Skew: A(i,j) moves left by i, B(i,j) moves up by j.
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			if i != 0 {
				m.Send(proc(i, j), proc(i, j-i), blk)
			}
			if j != 0 {
				m.Send(proc(i, j), proc(i-j, j), blk)
			}
		}
	}
	m.EndStep()
	newA := make([][]int, p)
	newB := make([][]int, p)
	for i := range newA {
		newA[i] = make([]int, p)
		newB[i] = make([]int, p)
	}
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			newA[i][((j-i)%p+p)%p] = aAt[i][j]
			newB[((i-j)%p+p)%p][j] = bAt[i][j]
		}
	}
	aAt, bAt = newA, newB

	covered := make([][]map[int]bool, p)
	for i := range covered {
		covered[i] = make([]map[int]bool, p)
		for j := range covered[i] {
			covered[i][j] = map[int]bool{}
		}
	}
	for round := 0; round < p; round++ {
		// Local multiply: C(i,j) += A(i, aAt) · B(bAt, j); the inner
		// indices must agree.
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				if aAt[i][j] != bAt[i][j] {
					return CannonResult{}, fmt.Errorf(
						"parallel: Cannon invariant broken at (%d,%d) round %d: A col %d vs B row %d",
						i, j, round, aAt[i][j], bAt[i][j])
				}
				if covered[i][j][aAt[i][j]] {
					return CannonResult{}, fmt.Errorf(
						"parallel: Cannon repeats k = %d at (%d,%d)", aAt[i][j], i, j)
				}
				covered[i][j][aAt[i][j]] = true
			}
		}
		if round == p-1 {
			break
		}
		// Shift A left by one, B up by one.
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				m.Send(proc(i, j), proc(i, j-1), blk)
				m.Send(proc(i, j), proc(i-1, j), blk)
			}
		}
		m.EndStep()
		nA := make([][]int, p)
		nB := make([][]int, p)
		for i := range nA {
			nA[i] = make([]int, p)
			nB[i] = make([]int, p)
		}
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				nA[i][((j-1)%p+p)%p] = aAt[i][j]
				nB[((i-1)%p+p)%p][j] = bAt[i][j]
			}
		}
		aAt, bAt = nA, nB
	}
	// Completion: every processor covered all p inner indices.
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			if len(covered[i][j]) != p {
				return CannonResult{}, fmt.Errorf(
					"parallel: Cannon incomplete at (%d,%d): %d/%d inner blocks", i, j, len(covered[i][j]), p)
			}
		}
	}
	return CannonResult{
		P:             p * p,
		Bandwidth:     m.Bandwidth(),
		Steps:         m.Steps(),
		MemoryPerProc: 3 * blk,
	}, nil
}

// TwoPointFiveDResult reports a 2.5D accounting run.
type TwoPointFiveDResult struct {
	P             int
	C             int
	Bandwidth     int64
	Steps         int64
	MemoryPerProc int64
}

// TwoPointFiveD accounts the bandwidth of the 2.5D algorithm (Solomonik
// & Demmel) on a p×p×c grid, P = p²c: the input matrices are replicated
// across the c layers, each layer performs p/c of the Cannon-style
// shifts, and the C contributions are reduced across layers. Superstep
// accounting (all processors symmetric). Requires c ≤ p and c | p.
func TwoPointFiveD(n, p, c int) (TwoPointFiveDResult, error) {
	if c < 1 || p < 1 || c > p || p%c != 0 {
		return TwoPointFiveDResult{}, fmt.Errorf("parallel: 2.5D invalid grid p=%d c=%d", p, c)
	}
	if n%p != 0 {
		return TwoPointFiveDResult{}, fmt.Errorf("parallel: 2.5D n=%d not divisible by p=%d", n, p)
	}
	nb := int64(n / p)
	blk := nb * nb
	m := NewMachine(p * p * c)

	// Replication: layer 0 owns the inputs; each other layer receives a
	// copy of its A and B panels (2 blocks per processor).
	if c > 1 {
		m.Uniform(2 * blk)
		m.EndStep()
	}
	// Each layer performs p/c shift rounds (after its own skew).
	rounds := p / c
	m.Uniform(2 * blk) // skew
	m.EndStep()
	for k := 0; k < rounds-1; k++ {
		m.Uniform(2 * blk)
		m.EndStep()
	}
	// Reduce C over layers (log c stages of one block each).
	for s := 1; s < c; s *= 2 {
		m.Uniform(blk)
		m.EndStep()
	}
	return TwoPointFiveDResult{
		P:             p * p * c,
		C:             c,
		Bandwidth:     m.Bandwidth(),
		Steps:         m.Steps(),
		MemoryPerProc: 3 * int64(c) * blk,
	}, nil
}

// ClassicalLowerBound2D returns the classical bandwidth lower bound
// n²/√P (up to constants) for comparison plots.
func ClassicalLowerBound2D(n float64, p int) float64 {
	return n * n / math.Sqrt(float64(p))
}
