package parallel

import (
	"math"
	"testing"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/bounds"
)

func TestMachineHRelation(t *testing.T) {
	m := NewMachine(3)
	m.Send(0, 1, 10)
	m.Send(1, 2, 5)
	m.EndStep()
	// proc1 sent 5 and received 10: h = 15.
	if m.Bandwidth() != 15 {
		t.Errorf("bandwidth %d, want 15", m.Bandwidth())
	}
	if m.Steps() != 1 || m.TotalWords() != 15 {
		t.Errorf("steps=%d total=%d", m.Steps(), m.TotalWords())
	}
	// Self-sends are free.
	m.Send(2, 2, 100)
	m.EndStep()
	if m.Bandwidth() != 15 {
		t.Errorf("self-send counted: %d", m.Bandwidth())
	}
}

func TestMachineUniform(t *testing.T) {
	m := NewMachine(4)
	m.Uniform(7)
	m.EndStep()
	if m.Bandwidth() != 14 {
		t.Errorf("uniform h %d, want 14", m.Bandwidth())
	}
}

func TestMachinePanicsOnBadInput(t *testing.T) {
	m := NewMachine(2)
	for _, f := range []func(){
		func() { m.Send(0, 5, 1) },
		func() { m.Send(0, 1, -1) },
		func() { m.Uniform(-2) },
		func() { NewMachine(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}

func TestCannonInvariantAndBandwidth(t *testing.T) {
	res, err := Cannon(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Skew + (p-1) shift rounds, each an h-relation of 4 blocks.
	blk := int64(8 * 8)
	want := 4 * blk * 8
	if res.Bandwidth != want {
		t.Errorf("bandwidth %d, want %d", res.Bandwidth, want)
	}
	if res.Steps != 8 {
		t.Errorf("steps %d", res.Steps)
	}
	if res.MemoryPerProc != 3*blk {
		t.Errorf("memory %d", res.MemoryPerProc)
	}
}

func TestCannonScalesAsInverseSqrtP(t *testing.T) {
	n := 256
	r1, err := Cannon(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Cannon(n, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Quadrupling P (doubling p) should halve bandwidth (up to the skew
	// constant).
	ratio := float64(r1.Bandwidth) / float64(r2.Bandwidth)
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("P-scaling ratio %v, want ≈2", ratio)
	}
	// Within a small constant of the classical lower bound.
	lb := ClassicalLowerBound2D(float64(n), r2.P)
	if float64(r2.Bandwidth) < lb {
		t.Errorf("bandwidth %d below classical lower bound %v", r2.Bandwidth, lb)
	}
	if float64(r2.Bandwidth) > 8*lb {
		t.Errorf("bandwidth %d more than 8× classical lower bound %v", r2.Bandwidth, lb)
	}
}

func TestCannonRejectsBadShapes(t *testing.T) {
	if _, err := Cannon(10, 3); err == nil {
		t.Error("n not divisible by p accepted")
	}
	if _, err := Cannon(8, 0); err == nil {
		t.Error("p=0 accepted")
	}
}

func TestTwoPointFiveDBeatsCannonAtScale(t *testing.T) {
	// The classical replication tradeoff: at P = 1024, c = 4 moves fewer
	// words along the critical path than pure 2D.
	n := 1024
	cannon, err := Cannon(n, 32)
	if err != nil {
		t.Fatal(err)
	}
	tfd, err := TwoPointFiveD(n, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cannon.P != tfd.P {
		t.Fatalf("processor counts differ: %d vs %d", cannon.P, tfd.P)
	}
	if tfd.Bandwidth >= cannon.Bandwidth {
		t.Errorf("2.5D %d not below Cannon %d", tfd.Bandwidth, cannon.Bandwidth)
	}
	// And it pays with memory.
	if tfd.MemoryPerProc <= cannon.MemoryPerProc {
		t.Errorf("2.5D memory %d not above Cannon %d", tfd.MemoryPerProc, cannon.MemoryPerProc)
	}
}

func TestTwoPointFiveDWithC1IsCannonLike(t *testing.T) {
	n := 256
	tfd, err := TwoPointFiveD(n, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	cannon, err := Cannon(n, 16)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(tfd.Bandwidth) / float64(cannon.Bandwidth)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("c=1 2.5D %d vs Cannon %d", tfd.Bandwidth, cannon.Bandwidth)
	}
}

func TestTwoPointFiveDRejectsBadGrids(t *testing.T) {
	for _, c := range [][3]int{{64, 4, 8}, {64, 4, 3}, {63, 4, 2}, {64, 0, 1}} {
		if _, err := TwoPointFiveD(c[0], c[1], c[2]); err == nil {
			t.Errorf("grid %v accepted", c)
		}
	}
}

func TestCAPSAllBFSWithAmpleMemory(t *testing.T) {
	alg := bilinear.Strassen()
	res, err := CAPS(alg, 1024, 49, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if res.BFSLevels != 2 || res.DFSLevels != 0 {
		t.Errorf("levels BFS=%d DFS=%d, want 2/0", res.BFSLevels, res.DFSLevels)
	}
	if res.Bandwidth <= 0 {
		t.Error("no bandwidth recorded")
	}
}

func TestCAPSMemoryPressureForcesDFS(t *testing.T) {
	alg := bilinear.Strassen()
	n := 1024
	ample, err := CAPS(alg, n, 49, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	// Memory just above the floor 3n²/P forces DFS steps first.
	tight, err := CAPS(alg, n, 49, 3*int64(n)*int64(n)/49+1024)
	if err != nil {
		t.Fatal(err)
	}
	if tight.DFSLevels == 0 {
		t.Error("tight memory did not force DFS")
	}
	if tight.Bandwidth < ample.Bandwidth {
		t.Errorf("tight-memory bandwidth %d below ample %d", tight.Bandwidth, ample.Bandwidth)
	}
	if tight.PeakMemory > 3*int64(n)*int64(n)/49+1024 {
		t.Errorf("peak memory %d exceeds M", tight.PeakMemory)
	}
}

func TestCAPSRejectsBadParams(t *testing.T) {
	alg := bilinear.Strassen()
	if _, err := CAPS(alg, 64, 10, 1<<30); err == nil {
		t.Error("P not power of 7 accepted")
	}
	if _, err := CAPS(alg, 1<<12, 7, 10); err == nil {
		t.Error("M below 3n²/P accepted")
	}
}

func TestCAPSTracksMemoryIndependentBound(t *testing.T) {
	// With unlimited memory, CAPS bandwidth should sit within a constant
	// of the paper's memory-independent lower bound n²/P^(2/ω₀).
	alg := bilinear.Strassen()
	w := alg.Omega0()
	n := 4096
	for _, p := range []int{7, 49, 343} {
		res, err := CAPS(alg, n, p, 1<<44)
		if err != nil {
			t.Fatal(err)
		}
		lb := bounds.MemoryIndependent(w, float64(n), p)
		ratio := float64(res.Bandwidth) / lb
		if ratio < 0.5 || ratio > 64 {
			t.Errorf("P=%d: CAPS %d vs memory-independent bound %v (ratio %v)",
				p, res.Bandwidth, lb, ratio)
		}
	}
}

func TestCAPSBeatsClassicalAtScale(t *testing.T) {
	// The who-wins comparison of the paper's introduction, on achieved
	// costs: at several hundred processors with ample memory, the
	// CAPS-style fast algorithm should move no more than a small
	// constant times the words of the best classical 2D execution.
	alg := bilinear.Strassen()
	n := 4608 // divisible by 18 (Cannon grid) and by 2³ (3 BFS levels)
	caps343, err := CAPS(alg, n, 343, 1<<44)
	if err != nil {
		t.Fatal(err)
	}
	cannon324, err := Cannon(n, 18) // 324 procs — closest square
	if err != nil {
		t.Fatal(err)
	}
	// CAPS moves fewer words despite slightly more processors for
	// Cannon being unavailable; compare per the paper's qualitative
	// claim with a 2× tolerance.
	if float64(caps343.Bandwidth) > 2*float64(cannon324.Bandwidth) {
		t.Errorf("CAPS %d vs Cannon %d: fast algorithm not competitive",
			caps343.Bandwidth, cannon324.Bandwidth)
	}
}

func TestCAPSBandwidthDecreasesWithP(t *testing.T) {
	alg := bilinear.Strassen()
	n := 4096
	var prev int64 = math.MaxInt64
	for _, p := range []int{7, 49, 343} {
		res, err := CAPS(alg, n, p, 1<<44)
		if err != nil {
			t.Fatal(err)
		}
		if res.Bandwidth >= prev {
			t.Errorf("bandwidth %d did not decrease at P=%d (prev %d)", res.Bandwidth, p, prev)
		}
		prev = res.Bandwidth
	}
}
