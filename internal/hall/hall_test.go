package hall

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDinicSimple(t *testing.T) {
	// s -> a -> t with caps 3, 2: flow 2.
	d := NewDinic(3)
	d.AddEdge(0, 1, 3)
	d.AddEdge(1, 2, 2)
	if got := d.Flow(0, 2); got != 2 {
		t.Fatalf("flow = %d, want 2", got)
	}
}

func TestDinicParallelPaths(t *testing.T) {
	// Classic diamond with cross edge.
	d := NewDinic(4)
	d.AddEdge(0, 1, 10)
	d.AddEdge(0, 2, 10)
	d.AddEdge(1, 2, 1)
	d.AddEdge(1, 3, 8)
	d.AddEdge(2, 3, 10)
	if got := d.Flow(0, 3); got != 18 {
		t.Fatalf("flow = %d, want 18", got)
	}
}

func TestDinicDisconnected(t *testing.T) {
	d := NewDinic(4)
	d.AddEdge(0, 1, 5)
	d.AddEdge(2, 3, 5)
	if got := d.Flow(0, 3); got != 0 {
		t.Fatalf("flow = %d, want 0", got)
	}
}

func TestDinicRejectsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewDinic(2).AddEdge(0, 5, 1)
}

func TestFlowOnAndResidual(t *testing.T) {
	d := NewDinic(2)
	id := d.AddEdge(0, 1, 7)
	if got := d.Flow(0, 1); got != 7 {
		t.Fatalf("flow = %d", got)
	}
	if d.FlowOn(id) != 7 || d.Residual(id) != 0 {
		t.Fatalf("FlowOn=%d Residual=%d", d.FlowOn(id), d.Residual(id))
	}
}

func TestManyToOnePerfect(t *testing.T) {
	// X = 4, Y = 2, capacity 2 each, complete bipartite: must match all.
	adj := func(x int) []int { return []int{0, 1} }
	m := ManyToOne(4, 2, adj, func(int) int { return 2 })
	if !m.Ok {
		t.Fatal("matching should exist")
	}
	used := map[int]int{}
	for x, y := range m.Match {
		if y < 0 {
			t.Fatalf("x=%d unmatched", x)
		}
		used[y]++
	}
	for y, c := range used {
		if c > 2 {
			t.Fatalf("y=%d used %d times", y, c)
		}
	}
}

func TestManyToOneRespectesAdjacency(t *testing.T) {
	adjList := [][]int{{0}, {0, 1}, {1}}
	adj := func(x int) []int { return adjList[x] }
	m := ManyToOne(3, 2, adj, func(int) int { return 2 })
	if !m.Ok {
		t.Fatal("matching should exist")
	}
	for x, y := range m.Match {
		found := false
		for _, cand := range adjList[x] {
			if cand == y {
				found = true
			}
		}
		if !found {
			t.Fatalf("x=%d matched outside adjacency to %d", x, y)
		}
	}
}

func TestManyToOneInfeasibleGivesWitness(t *testing.T) {
	// 3 X-vertices all adjacent only to y=0 with capacity 2: infeasible.
	adj := func(x int) []int { return []int{0} }
	m := ManyToOne(3, 2, adj, func(y int) int { return 2 })
	if m.Ok {
		t.Fatal("matching should not exist")
	}
	if len(m.Violation) == 0 {
		t.Fatal("no violation witness")
	}
	// The witness D must violate: Σ cap(N(D)) < |D|.
	capSum := 2 * len(m.ViolationN)
	if capSum >= len(m.Violation) {
		t.Fatalf("witness not violating: |D|=%d capN=%d", len(m.Violation), capSum)
	}
}

func TestCheckHallAgreesWithMatching(t *testing.T) {
	// Randomized cross-check: the exhaustive Hall check succeeds exactly
	// when the flow-based matching exists.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		nX := 1 + rng.Intn(8)
		nY := 1 + rng.Intn(5)
		adjList := make([][]int, nX)
		for x := range adjList {
			for y := 0; y < nY; y++ {
				if rng.Intn(3) == 0 {
					adjList[x] = append(adjList[x], y)
				}
			}
		}
		capy := 1 + rng.Intn(2)
		adj := func(x int) []int { return adjList[x] }
		capf := func(int) int { return capy }
		viol := CheckHall(nX, nY, adj, capf)
		m := ManyToOne(nX, nY, adj, capf)
		if (viol == nil) != m.Ok {
			t.Fatalf("trial %d: CheckHall viol=%v but matching ok=%v (nX=%d nY=%d cap=%d adj=%v)",
				trial, viol, m.Ok, nX, nY, capy, adjList)
		}
		if viol != nil {
			// Verify the witness really violates.
			nSet := map[int]bool{}
			for _, x := range viol {
				for _, y := range adjList[x] {
					nSet[y] = true
				}
			}
			if capy*len(nSet) >= len(viol) {
				t.Fatalf("trial %d: CheckHall returned non-violating witness", trial)
			}
		}
	}
}

func TestCheckHallTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for huge nX")
		}
	}()
	CheckHall(30, 2, func(int) []int { return nil }, func(int) int { return 1 })
}

func TestManyToOneQuickConservation(t *testing.T) {
	// Property: whenever Ok, every x matched within adjacency and no y
	// over capacity.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nX := 1 + rng.Intn(10)
		nY := 1 + rng.Intn(6)
		adjList := make([][]int, nX)
		for x := range adjList {
			for y := 0; y < nY; y++ {
				if rng.Intn(2) == 0 {
					adjList[x] = append(adjList[x], y)
				}
			}
		}
		caps := make([]int, nY)
		for y := range caps {
			caps[y] = rng.Intn(3)
		}
		m := ManyToOne(nX, nY, func(x int) []int { return adjList[x] }, func(y int) int { return caps[y] })
		if !m.Ok {
			return len(m.Violation) > 0
		}
		used := make([]int, nY)
		for x, y := range m.Match {
			if y < 0 {
				return false
			}
			ok := false
			for _, c := range adjList[x] {
				if c == y {
					ok = true
				}
			}
			if !ok {
				return false
			}
			used[y]++
		}
		for y := range used {
			if used[y] > caps[y] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHopcroftKarpAgreesWithDinic(t *testing.T) {
	// Two independent matchers must agree on feasibility and matching
	// size for random capacitated instances.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 300; trial++ {
		nX := 1 + rng.Intn(10)
		nY := 1 + rng.Intn(6)
		adjList := make([][]int, nX)
		for x := range adjList {
			for y := 0; y < nY; y++ {
				if rng.Intn(3) == 0 {
					adjList[x] = append(adjList[x], y)
				}
			}
		}
		caps := make([]int, nY)
		for y := range caps {
			caps[y] = rng.Intn(3)
		}
		adj := func(x int) []int { return adjList[x] }
		capf := func(y int) int { return caps[y] }
		size, match := HopcroftKarp(nX, nY, adj, capf)
		m := ManyToOne(nX, nY, adj, capf)
		if (size == nX) != m.Ok {
			t.Fatalf("trial %d: HK size %d/%d but Dinic ok=%v", trial, size, nX, m.Ok)
		}
		// HK assignment must respect adjacency and capacities.
		use := make([]int, nY)
		for x, y := range match {
			if y < 0 {
				continue
			}
			ok := false
			for _, c := range adjList[x] {
				if c == y {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("trial %d: HK matched outside adjacency", trial)
			}
			use[y]++
		}
		for y := range use {
			if use[y] > caps[y] {
				t.Fatalf("trial %d: HK overloaded y=%d", trial, y)
			}
		}
	}
}

func TestHopcroftKarpSimple(t *testing.T) {
	size, match := HopcroftKarp(3, 2,
		func(x int) []int { return []int{0, 1} },
		func(int) int { return 2 })
	if size != 3 {
		t.Fatalf("size %d", size)
	}
	for x, y := range match {
		if y < 0 {
			t.Fatalf("x=%d unmatched", x)
		}
	}
	// Infeasible: three x's into one slot.
	size, _ = HopcroftKarp(3, 1,
		func(x int) []int { return []int{0} },
		func(int) int { return 1 })
	if size != 1 {
		t.Fatalf("infeasible size %d", size)
	}
}
