package hall

// A second, independent matcher: Hopcroft–Karp bipartite matching on
// the capacity-expanded graph (each y duplicated cap(y) times). It
// cross-validates the Dinic-based ManyToOne: the two implementations
// must agree on feasibility for every instance, and the tests hold them
// to that.

// HopcroftKarp computes a maximum matching from X (size nX) into Y
// (size nY) where each y may be used at most capY(y) times, returning
// the matching size and the per-x assignment (-1 when unmatched).
func HopcroftKarp(nX, nY int, adj func(x int) []int, capY func(y int) int) (int, []int) {
	// Expand Y into slots.
	slotOf := make([][]int, nY) // y -> expanded slot ids
	nSlots := 0
	for y := 0; y < nY; y++ {
		c := capY(y)
		for i := 0; i < c; i++ {
			slotOf[y] = append(slotOf[y], nSlots)
			nSlots++
		}
	}
	adjSlots := make([][]int, nX)
	for x := 0; x < nX; x++ {
		for _, y := range adj(x) {
			adjSlots[x] = append(adjSlots[x], slotOf[y]...)
		}
	}
	slotToY := make([]int, nSlots)
	for y, slots := range slotOf {
		for _, s := range slots {
			slotToY[s] = y
		}
	}

	const inf = int32(1 << 30)
	matchX := make([]int, nX)
	matchS := make([]int, nSlots)
	for i := range matchX {
		matchX[i] = -1
	}
	for i := range matchS {
		matchS[i] = -1
	}
	dist := make([]int32, nX)

	bfs := func() bool {
		queue := make([]int, 0, nX)
		for x := 0; x < nX; x++ {
			if matchX[x] < 0 {
				dist[x] = 0
				queue = append(queue, x)
			} else {
				dist[x] = inf
			}
		}
		found := false
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, s := range adjSlots[x] {
				nx := matchS[s]
				if nx < 0 {
					found = true
				} else if dist[nx] == inf {
					dist[nx] = dist[x] + 1
					queue = append(queue, nx)
				}
			}
		}
		return found
	}
	var dfs func(x int) bool
	dfs = func(x int) bool {
		for _, s := range adjSlots[x] {
			nx := matchS[s]
			if nx < 0 || (dist[nx] == dist[x]+1 && dfs(nx)) {
				matchX[x] = s
				matchS[s] = x
				return true
			}
		}
		dist[x] = inf
		return false
	}

	size := 0
	for bfs() {
		for x := 0; x < nX; x++ {
			if matchX[x] < 0 && dfs(x) {
				size++
			}
		}
	}
	out := make([]int, nX)
	for x := range out {
		if matchX[x] < 0 {
			out[x] = -1
		} else {
			out[x] = slotToY[matchX[x]]
		}
	}
	return size, out
}
