// Package hall provides a Dinic max-flow solver and, on top of it, the
// many-to-one capacitated bipartite matching of Theorem 3 (Hall's
// Matching Theorem, many-to-one version) in Scott–Holtz–Schwartz:
// given a bipartite graph (X, Y) in which every D ⊆ X satisfies
// |N(D)| ≥ |D|/p, there is a matching using every x ∈ X exactly once and
// every y ∈ Y at most p times. The package computes such matchings
// constructively and, when none exists, extracts a witness set D
// violating the Hall condition (the certificate the paper's Lemma 5
// argument turns into an impossible fast matrix-vector algorithm).
package hall

import "fmt"

// Dinic is a max-flow solver on a directed graph with integer
// capacities. Vertices are 0..n-1.
type Dinic struct {
	n     int
	to    []int
	cap   []int
	next  []int
	head  []int
	level []int
	iter  []int
}

// NewDinic returns a solver for n vertices.
func NewDinic(n int) *Dinic {
	h := make([]int, n)
	for i := range h {
		h[i] = -1
	}
	return &Dinic{n: n, head: h}
}

// AddEdge adds a directed edge u→v with the given capacity and returns
// its edge index (usable with Residual after a Flow call).
func (d *Dinic) AddEdge(u, v, capacity int) int {
	if u < 0 || u >= d.n || v < 0 || v >= d.n {
		panic(fmt.Errorf("hall: edge (%d,%d) out of range n=%d", u, v, d.n))
	}
	id := len(d.to)
	d.to = append(d.to, v)
	d.cap = append(d.cap, capacity)
	d.next = append(d.next, d.head[u])
	d.head[u] = id
	// Reverse edge.
	d.to = append(d.to, u)
	d.cap = append(d.cap, 0)
	d.next = append(d.next, d.head[v])
	d.head[v] = id + 1
	return id
}

// Residual returns the remaining capacity of edge id.
func (d *Dinic) Residual(id int) int { return d.cap[id] }

// FlowOn returns the flow pushed through edge id (its reverse residual).
func (d *Dinic) FlowOn(id int) int { return d.cap[id^1] }

func (d *Dinic) bfs(s, t int) bool {
	d.level = make([]int, d.n)
	for i := range d.level {
		d.level[i] = -1
	}
	queue := []int{s}
	d.level[s] = 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for e := d.head[u]; e != -1; e = d.next[e] {
			if d.cap[e] > 0 && d.level[d.to[e]] < 0 {
				d.level[d.to[e]] = d.level[u] + 1
				queue = append(queue, d.to[e])
			}
		}
	}
	return d.level[t] >= 0
}

func (d *Dinic) dfs(u, t, f int) int {
	if u == t {
		return f
	}
	for ; d.iter[u] != -1; d.iter[u] = d.next[d.iter[u]] {
		e := d.iter[u]
		v := d.to[e]
		if d.cap[e] > 0 && d.level[v] == d.level[u]+1 {
			got := d.dfs(v, t, min(f, d.cap[e]))
			if got > 0 {
				d.cap[e] -= got
				d.cap[e^1] += got
				return got
			}
		}
	}
	return 0
}

// Flow computes the maximum s→t flow. It may be called once per graph.
func (d *Dinic) Flow(s, t int) int {
	flow := 0
	for d.bfs(s, t) {
		d.iter = make([]int, d.n)
		copy(d.iter, d.head)
		for {
			f := d.dfs(s, t, 1<<30)
			if f == 0 {
				break
			}
			flow += f
		}
	}
	return flow
}

// ReachableInResidual returns the set of vertices reachable from s in
// the residual graph after Flow; it defines the source side of a minimum
// cut.
func (d *Dinic) ReachableInResidual(s int) []bool {
	seen := make([]bool, d.n)
	seen[s] = true
	stack := []int{s}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for e := d.head[u]; e != -1; e = d.next[e] {
			if d.cap[e] > 0 && !seen[d.to[e]] {
				seen[d.to[e]] = true
				stack = append(stack, d.to[e])
			}
		}
	}
	return seen
}

// Matching is the result of ManyToOne: Match[x] is the y assigned to x,
// and Ok reports whether every x was matched. When Ok is false,
// Violation is a nonempty D ⊆ X with |N(D)| < |D|/p, the Hall-condition
// witness; its neighborhood is in ViolationN.
type Matching struct {
	Match      []int
	Ok         bool
	Violation  []int
	ViolationN []int
}

// ManyToOne computes a many-to-one matching from X (size nX) into Y
// (size nY) where x may be matched to any y in adj(x) and each y is used
// at most capY(y) times. With capY ≡ p this is exactly the matching of
// the paper's Theorem 3.
func ManyToOne(nX, nY int, adj func(x int) []int, capY func(y int) int) Matching {
	// Nodes: 0 = source, 1..nX = X, nX+1..nX+nY = Y, nX+nY+1 = sink.
	s, t := 0, nX+nY+1
	d := NewDinic(nX + nY + 2)
	xEdge := make([]int, nX)
	type pair struct{ edge, y int }
	xOut := make([][]pair, nX)
	for x := 0; x < nX; x++ {
		xEdge[x] = d.AddEdge(s, 1+x, 1)
		for _, y := range adj(x) {
			if y < 0 || y >= nY {
				panic(fmt.Errorf("hall: adj(%d) returned y=%d out of range", x, y))
			}
			id := d.AddEdge(1+x, 1+nX+y, 1)
			xOut[x] = append(xOut[x], pair{id, y})
		}
	}
	for y := 0; y < nY; y++ {
		d.AddEdge(1+nX+y, t, capY(y))
	}
	flow := d.Flow(s, t)

	m := Matching{Match: make([]int, nX), Ok: flow == nX}
	for x := range m.Match {
		m.Match[x] = -1
		for _, p := range xOut[x] {
			if d.FlowOn(p.edge) > 0 {
				m.Match[x] = p.y
				break
			}
		}
	}
	if !m.Ok {
		// Min-cut witness: X-vertices reachable from the source in the
		// residual graph form a violating set (all their capacity to Y
		// is saturated into a too-small neighborhood).
		reach := d.ReachableInResidual(s)
		for x := 0; x < nX; x++ {
			if reach[1+x] {
				m.Violation = append(m.Violation, x)
			}
		}
		ySeen := map[int]bool{}
		for _, x := range m.Violation {
			for _, p := range xOut[x] {
				if !ySeen[p.y] {
					ySeen[p.y] = true
					m.ViolationN = append(m.ViolationN, p.y)
				}
			}
		}
	}
	return m
}

// CheckHall exhaustively verifies the capacitated Hall condition
// Σ_{y∈N(D)} cap(y) ≥ |D| for every nonempty D ⊆ X. It is exponential
// in nX and intended for base graphs (nX ≤ ~20). It returns nil when
// the condition holds and a violating subset otherwise.
func CheckHall(nX, nY int, adj func(x int) []int, capY func(y int) int) []int {
	if nX > 24 {
		panic(fmt.Errorf("hall: CheckHall is exhaustive; nX=%d too large", nX))
	}
	adjMask := make([]uint64, nX)
	for x := 0; x < nX; x++ {
		for _, y := range adj(x) {
			adjMask[x] |= 1 << uint(y)
		}
	}
	capOf := make([]int, nY)
	for y := 0; y < nY; y++ {
		capOf[y] = capY(y)
	}
	for mask := uint64(1); mask < 1<<uint(nX); mask++ {
		var nMask uint64
		size := 0
		for x := 0; x < nX; x++ {
			if mask&(1<<uint(x)) != 0 {
				size++
				nMask |= adjMask[x]
			}
		}
		capSum := 0
		for y := 0; y < nY; y++ {
			if nMask&(1<<uint(y)) != 0 {
				capSum += capOf[y]
			}
		}
		if capSum < size {
			var d []int
			for x := 0; x < nX; x++ {
				if mask&(1<<uint(x)) != 0 {
					d = append(d, x)
				}
			}
			return d
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
