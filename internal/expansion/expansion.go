// Package expansion computes edge expansion of small graphs — the
// quantity the prior lower-bound technique of Ballard–Demmel–Holtz–
// Schwartz (JACM 2012) is built on — in order to demonstrate the
// paper's motivation concretely: the decoding graph of Strassen's
// algorithm has positive edge expansion, but the decoding graphs of
// algorithms like classical⊗Strassen tensors are disconnected, their
// expansion is zero, and the edge-expansion argument collapses; the
// path-routing technique of this paper is what covers them.
//
// Edge expansion here is the small-set expansion used in that line of
// work: h(G) = min over subsets S with |S| ≤ |V|/2 of |E(S, V−S)| / |S|,
// computed exactly by subset enumeration (these are base graphs with at
// most ~25 vertices).
package expansion

import (
	"fmt"
	"math/bits"

	"pathrouting/internal/bilinear"
)

// Graph is a small undirected graph on vertices 0..N-1.
type Graph struct {
	N   int
	Adj [][]int
}

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph {
	if n < 1 {
		panic(fmt.Errorf("expansion: n = %d out of range", n))
	}
	return &Graph{N: n, Adj: make([][]int, n)}
}

// AddEdge inserts the undirected edge {u, v}.
func (g *Graph) AddEdge(u, v int) {
	if u < 0 || u >= g.N || v < 0 || v >= g.N || u == v {
		panic(fmt.Errorf("expansion: bad edge (%d,%d)", u, v))
	}
	g.Adj[u] = append(g.Adj[u], v)
	g.Adj[v] = append(g.Adj[v], u)
}

// CutSize returns |E(S, V−S)| for the subset encoded by mask (only the
// first 64 vertices can be encoded; use with N ≤ 64).
func (g *Graph) CutSize(mask uint64) int {
	cut := 0
	for v := 0; v < g.N && v < 64; v++ {
		if mask&(1<<uint(v)) == 0 {
			continue
		}
		for _, u := range g.Adj[v] {
			if u >= 64 || mask&(1<<uint(u)) == 0 {
				cut++
			}
		}
	}
	return cut
}

// EdgeExpansion returns h(G) and a minimizing subset. Exhaustive over
// all subsets with 1 ≤ |S| ≤ N/2; feasible for N ≤ ~25.
func (g *Graph) EdgeExpansion() (float64, uint64) {
	if g.N > 26 {
		panic(fmt.Errorf("expansion: exhaustive expansion on n = %d is too large", g.N))
	}
	best := -1.0
	var bestMask uint64
	for mask := uint64(1); mask < 1<<uint(g.N); mask++ {
		size := bits.OnesCount64(mask)
		if size > g.N/2 {
			continue
		}
		h := float64(g.CutSize(mask)) / float64(size)
		if best < 0 || h < best {
			best = h
			bestMask = mask
		}
	}
	return best, bestMask
}

// Connected reports whether the graph is connected.
func (g *Graph) Connected() bool {
	seen := make([]bool, g.N)
	seen[0] = true
	count := 1
	stack := []int{0}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.Adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == g.N
}

// DecodingGraph builds the base decoding graph D₁ of the algorithm as
// an undirected bipartite graph: vertices 0..b-1 are products, b..b+a-1
// are outputs, with an edge at every nonzero of W.
func DecodingGraph(alg *bilinear.Algorithm) *Graph {
	a, b := alg.A(), alg.B()
	g := NewGraph(a + b)
	for o := 0; o < a; o++ {
		for t := 0; t < b; t++ {
			if !alg.W[o][t].IsZero() {
				g.AddEdge(t, b+o)
			}
		}
	}
	return g
}

// EncodingGraph builds the base encoding graph of one operand:
// vertices 0..a-1 are inputs, a..a+b-1 products.
func EncodingGraph(alg *bilinear.Algorithm, side bilinear.Side) *Graph {
	a, b := alg.A(), alg.B()
	enc := alg.U
	if side == bilinear.SideB {
		enc = alg.V
	}
	g := NewGraph(a + b)
	for t := 0; t < b; t++ {
		for e := 0; e < a; e++ {
			if !enc[t][e].IsZero() {
				g.AddEdge(e, a+t)
			}
		}
	}
	return g
}

// Report summarizes the expansion picture of a base graph, i.e. whether
// the prior technique applies.
type Report struct {
	Name                string
	DecodingConnected   bool
	DecodingExpansion   float64
	EncodingAConnected  bool
	EncodingBConnected  bool
	EdgeExpansionUsable bool
}

// Analyze computes the Report for an algorithm (exhaustive; intended
// for base graphs with a+b ≤ 26, which covers Strassen-sized bases —
// larger bases report expansion -1 with connectivity only).
func Analyze(alg *bilinear.Algorithm) Report {
	dec := DecodingGraph(alg)
	rep := Report{
		Name:               alg.Name,
		DecodingConnected:  dec.Connected(),
		EncodingAConnected: EncodingGraph(alg, bilinear.SideA).Connected(),
		EncodingBConnected: EncodingGraph(alg, bilinear.SideB).Connected(),
		DecodingExpansion:  -1,
	}
	if dec.N <= 26 {
		rep.DecodingExpansion, _ = dec.EdgeExpansion()
	} else if !rep.DecodingConnected {
		rep.DecodingExpansion = 0
	}
	rep.EdgeExpansionUsable = rep.DecodingConnected && rep.EncodingAConnected && rep.EncodingBConnected
	return rep
}
