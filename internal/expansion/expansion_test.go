package expansion

import (
	"testing"

	"pathrouting/internal/bilinear"
)

func TestPathGraphExpansion(t *testing.T) {
	// Path on 4 vertices: worst cut is half the path, 1 edge / 2 vertices.
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	h, _ := g.EdgeExpansion()
	if h != 0.5 {
		t.Errorf("path expansion %v, want 0.5", h)
	}
	if !g.Connected() {
		t.Error("path not connected")
	}
}

func TestDisconnectedExpansionZero(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	h, mask := g.EdgeExpansion()
	if h != 0 {
		t.Errorf("expansion %v, want 0", h)
	}
	if g.CutSize(mask) != 0 {
		t.Error("witness mask not a zero cut")
	}
	if g.Connected() {
		t.Error("disconnected graph reported connected")
	}
}

func TestCompleteGraphExpansion(t *testing.T) {
	// K4: any S with |S| = 2 cuts 4 edges: h = 2.
	g := NewGraph(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(i, j)
		}
	}
	h, _ := g.EdgeExpansion()
	if h != 2 {
		t.Errorf("K4 expansion %v, want 2", h)
	}
}

func TestStrassenDecodingHasPositiveExpansion(t *testing.T) {
	rep := Analyze(bilinear.Strassen())
	if !rep.DecodingConnected || rep.DecodingExpansion <= 0 {
		t.Errorf("strassen decoding: connected=%v h=%v", rep.DecodingConnected, rep.DecodingExpansion)
	}
	if !rep.EdgeExpansionUsable {
		t.Error("edge-expansion technique must apply to Strassen")
	}
}

func TestClassicalDecodingExpansionZero(t *testing.T) {
	rep := Analyze(bilinear.Classical(2))
	if rep.DecodingConnected {
		t.Error("classical decoding must be disconnected")
	}
	if rep.DecodingExpansion != 0 {
		t.Errorf("classical decoding expansion %v, want 0", rep.DecodingExpansion)
	}
	if rep.EdgeExpansionUsable {
		t.Error("edge-expansion technique must fail for classical")
	}
}

func TestDisconnectedFastMotivation(t *testing.T) {
	// The paper's raison d'être: a fast algorithm on which the prior
	// technique fails (zero-expansion decoding) but the routing
	// machinery of this repository succeeds (see internal/routing).
	rep := Analyze(bilinear.DisconnectedFast())
	if rep.EdgeExpansionUsable {
		t.Error("edge-expansion technique must fail for disconnected56")
	}
	if rep.DecodingConnected {
		t.Error("disconnected56 decoding must be disconnected")
	}
	if rep.DecodingExpansion != 0 {
		t.Errorf("expansion %v, want 0 (reported via connectivity)", rep.DecodingExpansion)
	}
}

func TestWinogradUsable(t *testing.T) {
	rep := Analyze(bilinear.Winograd())
	if !rep.EdgeExpansionUsable {
		t.Error("edge expansion applies to Winograd's variant")
	}
}

func TestBadInputsPanic(t *testing.T) {
	for _, f := range []func(){
		func() { NewGraph(0) },
		func() { NewGraph(3).AddEdge(0, 3) },
		func() { NewGraph(3).AddEdge(1, 1) },
		func() { NewGraph(30).EdgeExpansion() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}
