package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s\n%s", url, resp.Status, body)
	}
	return string(body), resp.Header.Get("Content-Type")
}

// TestServerEndpoints starts a real server on :0 and exercises
// /metrics, /healthz, and /debug/pprof/.
func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("routing_paths_verified_total", "paths").Add(7)
	reg.Histogram("routing_shard_enumerate_seconds", "lat", LatencyBuckets).Observe(0.01)
	health := func() any {
		return map[string]any{"status": "verifying", "shards_done": 3, "shards_total": 8}
	}
	srv, err := StartServer("127.0.0.1:0", reg, health)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !strings.HasPrefix(srv.URL(), "http://127.0.0.1:") {
		t.Fatalf("URL = %q", srv.URL())
	}

	body, ctype := get(t, srv.URL()+"/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("metrics content type = %q", ctype)
	}
	for _, want := range []string{
		"# TYPE routing_paths_verified_total counter",
		"routing_paths_verified_total 7",
		"# TYPE routing_shard_enumerate_seconds histogram",
		"routing_shard_enumerate_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	body, ctype = get(t, srv.URL()+"/healthz")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("healthz content type = %q", ctype)
	}
	for _, want := range []string{`"status": "verifying"`, `"shards_done": 3`, `"shards_total": 8`} {
		if !strings.Contains(body, want) {
			t.Errorf("/healthz missing %q:\n%s", want, body)
		}
	}

	body, _ = get(t, srv.URL()+"/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index missing profiles:\n%s", body)
	}
}

// TestServerNilHealth: healthz must still answer without a provider.
func TestServerNilHealth(t *testing.T) {
	srv, err := StartServer("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	body, _ := get(t, srv.URL()+"/healthz")
	if !strings.Contains(body, `"status": "ok"`) {
		t.Fatalf("healthz = %s", body)
	}

	var nilSrv *Server
	if nilSrv.Addr() != "" || nilSrv.URL() != "" || nilSrv.Close() != nil {
		t.Fatal("nil server methods not safe")
	}
}
