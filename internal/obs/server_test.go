package obs

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s\n%s", url, resp.Status, body)
	}
	return string(body), resp.Header.Get("Content-Type")
}

// TestServerEndpoints starts a real server on :0 and exercises
// /metrics, /healthz, and /debug/pprof/.
func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("routing_paths_verified_total", "paths").Add(7)
	reg.Histogram("routing_shard_enumerate_seconds", "lat", LatencyBuckets).Observe(0.01)
	health := func() any {
		return map[string]any{"status": "verifying", "shards_done": 3, "shards_total": 8}
	}
	srv, err := StartServer("127.0.0.1:0", reg, health)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !strings.HasPrefix(srv.URL(), "http://127.0.0.1:") {
		t.Fatalf("URL = %q", srv.URL())
	}

	body, ctype := get(t, srv.URL()+"/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("metrics content type = %q", ctype)
	}
	for _, want := range []string{
		"# TYPE routing_paths_verified_total counter",
		"routing_paths_verified_total 7",
		"# TYPE routing_shard_enumerate_seconds histogram",
		"routing_shard_enumerate_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	body, ctype = get(t, srv.URL()+"/healthz")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("healthz content type = %q", ctype)
	}
	for _, want := range []string{`"status": "verifying"`, `"shards_done": 3`, `"shards_total": 8`} {
		if !strings.Contains(body, want) {
			t.Errorf("/healthz missing %q:\n%s", want, body)
		}
	}

	body, _ = get(t, srv.URL()+"/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index missing profiles:\n%s", body)
	}
}

// TestServerNilHealth: healthz must still answer without a provider.
func TestServerNilHealth(t *testing.T) {
	srv, err := StartServer("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	body, _ := get(t, srv.URL()+"/healthz")
	if !strings.Contains(body, `"status": "ok"`) {
		t.Fatalf("healthz = %s", body)
	}

	var nilSrv *Server
	if nilSrv.Addr() != "" || nilSrv.URL() != "" || nilSrv.Close() != nil {
		t.Fatal("nil server methods not safe")
	}
	if nilSrv.Shutdown(context.Background()) != nil {
		t.Fatal("nil server Shutdown not safe")
	}
}

// TestServerHealthzEncodeError: a health snapshot that cannot be
// marshaled must yield a clean 500 — not a 200 status with a partial
// body followed by a superfluous WriteHeader, which is what encoding
// straight to the ResponseWriter produced.
func TestServerHealthzEncodeError(t *testing.T) {
	srv, err := StartServer("127.0.0.1:0", NewRegistry(), func() any {
		// Channels have no JSON encoding; Marshal fails deterministically.
		return map[string]any{"status": "ok", "broken": make(chan int)}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get(srv.URL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500; body:\n%s", resp.StatusCode, body)
	}
	if strings.Contains(string(body), `"status"`) {
		t.Fatalf("error response leaked partial JSON:\n%s", body)
	}
	if ct := resp.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		t.Fatalf("error response still claims JSON content type %q", ct)
	}
	if !strings.Contains(string(body), "unsupported type") {
		t.Fatalf("error body does not carry the encode error:\n%s", body)
	}
}

// TestServerShutdownDrains: Shutdown must let an in-flight request
// finish its body (Close severed it mid-response) while refusing new
// connections.
func TestServerShutdownDrains(t *testing.T) {
	inFlight := make(chan struct{})
	release := make(chan struct{})
	srv, err := StartServerMux("127.0.0.1:0", NewRegistry(), nil, func(mux *http.ServeMux) {
		mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
			w.WriteHeader(http.StatusOK)
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			close(inFlight)
			<-release
			_, _ = io.WriteString(w, "complete")
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	type result struct {
		body string
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get(srv.URL() + "/slow")
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		got <- result{body: string(body), err: err}
	}()
	<-inFlight

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// The listener closes promptly even while the request drains.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := http.Get(srv.URL() + "/healthz"); err != nil {
			break // refused: no new connections during drain
		}
		if time.Now().After(deadline) {
			t.Fatal("server still accepting new connections during Shutdown")
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(release)
	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight request severed during Shutdown: %v", r.err)
	}
	if r.body != "complete" {
		t.Fatalf("in-flight body = %q, want %q", r.body, "complete")
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}
