// Package obs is the unified observability layer of the verification
// engine: a stdlib-only metrics registry with Prometheus text-format
// exposition, span tracing into the internal/runlog journal, a periodic
// heartbeat emitter, and an optional debug HTTP server serving
// /metrics, /healthz, and /debug/pprof.
//
// The paper's whole argument is segment-level cost accounting — each
// schedule segment pays at least |δ'(S')| − 2M I/O — and long Routing
// Theorem verifications deserve the same treatment: per-shard latency,
// per-segment I/O, and live counters, not just a final total. Every
// instrument here is optional and nil-safe, so the hot enumeration
// paths pay a single pointer test when observability is off.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// A Registry holds named metrics and renders them in the Prometheus
// text exposition format. All methods are safe for concurrent use; the
// individual metric types are lock-free atomics, so updating them from
// many verification workers costs one atomic op.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

// metric is the exposition interface every instrument implements.
type metric interface {
	metricName() string
	write(w io.Writer) error
	// snapshot appends the metric's scalar values (counters and gauges
	// as themselves; histograms as _count and _sum) for heartbeats.
	snapshot(into map[string]float64)
}

// register installs m, or returns the already-registered metric of the
// same name. Re-registering a name as a different kind is a programming
// error and panics, like a duplicate Prometheus collector would.
func (r *Registry) register(m metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if have, ok := r.metrics[m.metricName()]; ok {
		return have
	}
	r.metrics[m.metricName()] = m
	return m
}

// Counter returns the registered monotonically increasing counter of
// the given name, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(&Counter{name: mustMetricName(name), help: help})
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q re-registered as a counter", name))
	}
	return c
}

// Gauge returns the registered gauge of the given name, creating it on
// first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(&Gauge{name: mustMetricName(name), help: help})
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q re-registered as a gauge", name))
	}
	return g
}

// Histogram returns the registered fixed-bucket histogram of the given
// name, creating it with the given upper bounds on first use (a final
// +Inf bucket is implicit). Bounds must be sorted ascending.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := &Histogram{name: mustMetricName(name), help: help, bounds: append([]float64(nil), bounds...)}
	for i := 1; i < len(h.bounds); i++ {
		if h.bounds[i] <= h.bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not sorted ascending", name))
		}
	}
	h.buckets = make([]atomic.Int64, len(h.bounds)+1)
	m := r.register(h)
	have, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q re-registered as a histogram", name))
	}
	return have
}

// WriteTo renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), sorted by name so output is
// deterministic and diffable.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	ms := make([]metric, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		ms = append(ms, r.metrics[name])
	}
	r.mu.Unlock()

	cw := &countingWriter{w: w}
	for _, m := range ms {
		if err := m.write(cw); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

// Snapshot returns the current scalar values of every metric, keyed by
// metric name (histograms contribute name_count and name_sum). This is
// what heartbeat records carry into the journal.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	ms := make([]metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.Unlock()
	snap := make(map[string]float64, 2*len(ms))
	for _, m := range ms {
		m.snapshot(snap)
	}
	return snap
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// mustMetricName enforces the Prometheus metric-name charset
// [a-zA-Z_:][a-zA-Z0-9_:]* at registration, where a typo is loud,
// instead of producing an exposition no scraper will parse.
func mustMetricName(name string) string {
	if name == "" {
		panic("obs: empty metric name")
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9' && i > 0:
		default:
			panic(fmt.Sprintf("obs: invalid metric name %q", name))
		}
	}
	return name
}

func writeHeader(w io.Writer, name, help, kind string) error {
	if help != "" {
		// Escape newlines per the exposition format.
		help = strings.ReplaceAll(help, "\n", `\n`)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
	return err
}

// formatFloat renders metric values the way Prometheus expects:
// shortest round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// A Counter is a monotonically increasing int64 metric. The zero value
// must not be used directly; obtain counters from a Registry (or, for
// labeled children, from a CounterVec). All methods are nil-safe
// no-ops so call sites need no instrumentation branches.
type Counter struct {
	name, help string
	labels     string // rendered `key="val",…` label set; "" for plain counters
	v          atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d (which must be ≥ 0 to keep the counter monotonic).
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) metricName() string { return c.name }

// seriesName is the exposition/snapshot identity: the metric name,
// plus the label set for vec children.
func (c *Counter) seriesName() string {
	if c.labels == "" {
		return c.name
	}
	return c.name + "{" + c.labels + "}"
}

func (c *Counter) write(w io.Writer) error {
	if err := writeHeader(w, c.name, c.help, "counter"); err != nil {
		return err
	}
	return c.writeValue(w)
}

func (c *Counter) writeValue(w io.Writer) error {
	_, err := fmt.Fprintf(w, "%s %d\n", c.seriesName(), c.v.Load())
	return err
}

func (c *Counter) snapshot(into map[string]float64) { into[c.seriesName()] = float64(c.v.Load()) }

// A Gauge is a float64 metric that can go up and down. Obtain gauges
// from a Registry; methods are nil-safe no-ops.
type Gauge struct {
	name, help string
	bits       atomic.Uint64 // float64 bits
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Max raises the gauge to v if v exceeds the current value — the shape
// peak trackers (peak vertex hits, high-water marks) need, done with a
// CAS loop so concurrent workers cannot lose a larger peak.
func (g *Gauge) Max(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) metricName() string { return g.name }

func (g *Gauge) write(w io.Writer) error {
	if err := writeHeader(w, g.name, g.help, "gauge"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %s\n", g.name, formatFloat(g.Value()))
	return err
}

func (g *Gauge) snapshot(into map[string]float64) { into[g.name] = g.Value() }

// A Histogram is a fixed-bucket cumulative histogram. Observations are
// two atomic adds plus one atomic CAS loop for the sum — cheap enough
// for per-shard and per-segment latencies (not for per-path use; the
// engine batches those through counters instead). Methods are nil-safe.
type Histogram struct {
	name, help string
	labels     string    // rendered label set for vec children; "" otherwise
	bounds     []float64 // upper bounds; +Inf bucket implicit
	buckets    []atomic.Int64
	count      atomic.Int64
	sumBits    atomic.Uint64
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound ≥ v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveN records n observations of v in one shot — the bulk form
// the runtime sampler uses to republish runtime/metrics histogram
// bucket deltas (n new GC pauses near duration v) without n calls.
func (h *Histogram) ObserveN(v float64, n int64) {
	if h == nil || n <= 0 {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(n)
	h.count.Add(n)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v*float64(n))
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start — the common
// latency-timer idiom `defer h.ObserveSince(time.Now())`.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

func (h *Histogram) metricName() string { return h.name }

// series renders the labeled suffix forms: `name_sum{labels}` and the
// bucket prefix the `le` label is appended to.
func (h *Histogram) series(suffix string) string {
	if h.labels == "" {
		return h.name + suffix
	}
	return h.name + suffix + "{" + h.labels + "}"
}

func (h *Histogram) write(w io.Writer) error {
	if err := writeHeader(w, h.name, h.help, "histogram"); err != nil {
		return err
	}
	return h.writeValue(w)
}

func (h *Histogram) writeValue(w io.Writer) error {
	bucketPrefix := ""
	if h.labels != "" {
		bucketPrefix = h.labels + ","
	}
	var cum int64
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", h.name, bucketPrefix, formatFloat(bound), cum); err != nil {
			return err
		}
	}
	cum += h.buckets[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", h.name, bucketPrefix, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %s\n", h.series("_sum"), formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", h.series("_count"), h.count.Load())
	return err
}

func (h *Histogram) snapshot(into map[string]float64) {
	into[h.series("_count")] = float64(h.count.Load())
	into[h.series("_sum")] = h.Sum()
}

// LatencyBuckets is the default bound set for second-denominated
// latency histograms, spanning 100µs (one small shard) to ~2 minutes.
var LatencyBuckets = []float64{1e-4, 5e-4, 1e-3, 5e-3, 0.025, 0.1, 0.5, 1, 5, 15, 60, 120}

// ExponentialBuckets returns n bounds start, start·factor, ... — the
// usual shape for size-like quantities (I/O per segment, paths per
// shard).
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExponentialBuckets needs start > 0, factor > 1, n ≥ 1")
	}
	bounds := make([]float64, n)
	for i := range bounds {
		bounds[i] = start
		start *= factor
	}
	return bounds
}
