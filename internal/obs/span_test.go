package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pathrouting/internal/runlog"
)

func journalRecords(t *testing.T, path string) []runlog.Record {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var recs []runlog.Record
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec runlog.Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("unparsable journal line %q: %v", sc.Text(), err)
		}
		recs = append(recs, rec)
	}
	return recs
}

// TestSpanEmitsRunlogRecord: a span round-trips through the journal
// with its name, identity, duration, and attributes.
func TestSpanEmitsRunlogRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	w, err := runlog.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer(w, runlog.Record{Tool: "routecheck", Alg: "strassen", K: 4})

	ctx := WithTracer(context.Background(), tr)
	_, span := StartSpan(ctx, "shard_enumerate")
	span.SetAttr("shard", "7")
	time.Sleep(time.Millisecond)
	span.End()
	span.End() // idempotent
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	recs := journalRecords(t, path)
	if len(recs) != 1 {
		t.Fatalf("journal has %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Event != runlog.EventSpan || rec.Span != "shard_enumerate" ||
		rec.Tool != "routecheck" || rec.Alg != "strassen" || rec.K != 4 {
		t.Fatalf("span record = %+v", rec)
	}
	if rec.DurSec <= 0 || rec.SpanStart == "" || rec.Attrs["shard"] != "7" {
		t.Fatalf("span timing/attrs = %+v", rec)
	}
	if _, err := time.Parse(time.RFC3339Nano, rec.SpanStart); err != nil {
		t.Fatalf("span_start not RFC3339: %v", err)
	}

	// A journal of spans summarizes without error, counted as spans.
	s, err := runlog.SummarizeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Spans != 1 || s.Skipped != 0 {
		t.Fatalf("summary = %+v", s)
	}
}

// TestNilTracerSpans: no tracer in context (or a nil tracer) must cost
// nothing and crash nothing.
func TestNilTracerSpans(t *testing.T) {
	_, span := StartSpan(context.Background(), "noop")
	span.SetAttr("k", "v")
	span.End()

	var tr *Tracer
	span = tr.StartSpan("noop")
	span.End()
	if got := TracerFrom(context.Background()); got != nil {
		t.Fatalf("TracerFrom(empty ctx) = %v", got)
	}
}

// TestHeartbeat: the emitter writes heartbeat records carrying the
// metric snapshot, including a final one at stop.
func TestHeartbeat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	w, err := runlog.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	reg.Counter("paths_total", "").Add(99)

	stop := StartHeartbeat(w, runlog.Record{Tool: "routecheck"}, reg, 5*time.Millisecond)
	time.Sleep(25 * time.Millisecond)
	stop()
	stop() // idempotent
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	recs := journalRecords(t, path)
	if len(recs) < 2 {
		t.Fatalf("got %d heartbeats, want ≥ 2 (ticks plus final)", len(recs))
	}
	for _, rec := range recs {
		if rec.Event != runlog.EventHeartbeat || rec.Tool != "routecheck" {
			t.Fatalf("heartbeat record = %+v", rec)
		}
		if rec.Metrics["paths_total"] != 99 {
			t.Fatalf("heartbeat metrics = %v", rec.Metrics)
		}
	}

	// No-op configurations return usable stops.
	StartHeartbeat(nil, runlog.Record{}, reg, time.Second)()
	StartHeartbeat(w, runlog.Record{}, nil, time.Second)()
	StartHeartbeat(w, runlog.Record{}, reg, 0)()
}
