//go:build !unix

package obs

// processCPUSeconds is unavailable off unix; accounting fields that
// depend on it read as zero rather than failing the build.
func processCPUSeconds() float64 { return 0 }
