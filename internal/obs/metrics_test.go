package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestExpositionFormat checks the Prometheus text rendering of all
// three metric kinds, including sorting, HELP/TYPE headers, cumulative
// buckets, and the +Inf bucket.
func TestExpositionFormat(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("paths_total", "paths verified")
	c.Add(41)
	c.Inc()
	g := reg.Gauge("paths_per_second", "throughput")
	g.Set(2.5)
	h := reg.Histogram("shard_seconds", "shard latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(10)

	var b strings.Builder
	n, err := reg.WriteTo(&b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if n != int64(len(out)) {
		t.Fatalf("WriteTo returned %d, wrote %d bytes", n, len(out))
	}
	for _, want := range []string{
		"# HELP paths_total paths verified\n# TYPE paths_total counter\npaths_total 42\n",
		"# TYPE paths_per_second gauge\npaths_per_second 2.5\n",
		"# TYPE shard_seconds histogram\n",
		"shard_seconds_bucket{le=\"0.1\"} 2\n",
		"shard_seconds_bucket{le=\"1\"} 3\n",
		"shard_seconds_bucket{le=\"+Inf\"} 4\n",
		"shard_seconds_sum 10.6\n",
		"shard_seconds_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families are sorted by name: gauge < counter alphabetically here.
	if strings.Index(out, "paths_per_second") > strings.Index(out, "paths_total") {
		t.Errorf("families not sorted by name:\n%s", out)
	}
}

// TestRegistryIdempotentAndNilSafe: re-registration returns the same
// instrument; nil instruments absorb every call.
func TestRegistryIdempotentAndNilSafe(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("c", "x") != reg.Counter("c", "x") {
		t.Fatal("re-registered counter is a different instance")
	}
	if reg.Histogram("h", "x", []float64{1}) != reg.Histogram("h", "x", []float64{2}) {
		t.Fatal("re-registered histogram is a different instance")
	}

	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Max(2)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments reported nonzero values")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	reg.Gauge("c", "now a gauge")
}

func TestInvalidMetricNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid name did not panic")
		}
	}()
	NewRegistry().Counter("bad name!", "")
}

// TestGaugeMaxConcurrent: the peak tracker never loses the largest
// value under contention.
func TestGaugeMaxConcurrent(t *testing.T) {
	g := NewRegistry().Gauge("peak", "")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Max(float64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if g.Value() != 7999 {
		t.Fatalf("peak = %v, want 7999", g.Value())
	}
	g.Max(5) // lower value must not regress the peak
	if g.Value() != 7999 {
		t.Fatalf("Max regressed the peak to %v", g.Value())
	}
}

// TestHistogramConcurrent: counts and sum stay exact under concurrent
// observation.
func TestHistogramConcurrent(t *testing.T) {
	h := NewRegistry().Histogram("lat", "", LatencyBuckets)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 || math.Abs(h.Sum()-2000) > 1e-6 {
		t.Fatalf("count=%d sum=%v, want 8000/2000", h.Count(), h.Sum())
	}
}

func TestSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c", "").Add(3)
	reg.Gauge("g", "").Set(1.5)
	h := reg.Histogram("h", "", []float64{1})
	h.Observe(0.5)
	h.Observe(2)
	snap := reg.Snapshot()
	want := map[string]float64{"c": 3, "g": 1.5, "h_count": 2, "h_sum": 2.5}
	for k, v := range want {
		if snap[k] != v {
			t.Errorf("snapshot[%q] = %v, want %v", k, snap[k], v)
		}
	}
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(1, 4, 4)
	want := []float64{1, 4, 16, 64}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
}
