package obs

// Labeled metric families. A *Vec is one registered metric name whose
// time series split by a fixed set of label keys — the Prometheus
// `name{key="val"} value` exposition — so a family like
// serve_submissions_total can split by outcome (hit/miss/coalesced)
// without minting a metric name per outcome. Children are ordinary
// Counters/Histograms (lock-free atomics, nil-safe), created on first
// With() and cached, so the steady-state cost of a labeled update is
// identical to an unlabeled one when the caller holds the child.
//
// The label mechanism is deliberately small: fixed keys per family,
// values escaped per the exposition format, children rendered sorted
// by label signature under one HELP/TYPE header. No dynamic key sets,
// no removal — verification services have bounded, enumerable label
// values (job outcomes, kernels), not unbounded cardinality.

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// renderLabels builds the canonical `k1="v1",k2="v2"` signature.
func renderLabels(keys, values []string) string {
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the text exposition
// format: backslash, double-quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// mustLabelKeys validates a family's label keys at registration (same
// charset as metric names, minus the colon reserved for exposition
// conventions).
func mustLabelKeys(name string, keys []string) []string {
	if len(keys) == 0 {
		panic(fmt.Sprintf("obs: labeled family %q needs at least one label key", name))
	}
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		if k == "" || k == "le" || seen[k] {
			panic(fmt.Sprintf("obs: family %q: invalid or duplicate label key %q", name, k))
		}
		seen[k] = true
		for i, c := range k {
			switch {
			case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			case c >= '0' && c <= '9' && i > 0:
			default:
				panic(fmt.Sprintf("obs: family %q: invalid label key %q", name, k))
			}
		}
	}
	return append([]string(nil), keys...)
}

// A CounterVec is a family of counters sharing one name and HELP/TYPE
// header, split by a fixed label-key set.
type CounterVec struct {
	name, help string
	keys       []string
	mu         sync.Mutex
	children   map[string]*Counter
}

// CounterVec returns the registered counter family of the given name,
// creating it on first use. Re-registering the name as a different
// kind (or with different keys) panics.
func (r *Registry) CounterVec(name, help string, keys ...string) *CounterVec {
	v := &CounterVec{
		name: mustMetricName(name), help: help,
		keys:     mustLabelKeys(name, keys),
		children: make(map[string]*Counter),
	}
	m := r.register(v)
	have, ok := m.(*CounterVec)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q re-registered as a counter family", name))
	}
	if have != v && !equalKeys(have.keys, v.keys) {
		panic(fmt.Sprintf("obs: counter family %q re-registered with keys %v, want %v", name, v.keys, have.keys))
	}
	return have
}

// With returns the family's child for the given label values (one per
// key, in key order), creating it on first use. Nil-safe: a nil vec
// returns a nil (no-op) counter.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	if len(values) != len(v.keys) {
		panic(fmt.Sprintf("obs: family %q got %d label values for keys %v", v.name, len(values), v.keys))
	}
	sig := renderLabels(v.keys, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	c := v.children[sig]
	if c == nil {
		c = &Counter{name: v.name, labels: sig}
		v.children[sig] = c
	}
	return c
}

func (v *CounterVec) metricName() string { return v.name }

func (v *CounterVec) write(w io.Writer) error {
	if err := writeHeader(w, v.name, v.help, "counter"); err != nil {
		return err
	}
	for _, c := range v.sorted() {
		if err := c.writeValue(w); err != nil {
			return err
		}
	}
	return nil
}

func (v *CounterVec) snapshot(into map[string]float64) {
	for _, c := range v.sorted() {
		c.snapshot(into)
	}
}

// sorted returns the children ordered by label signature, so
// exposition and snapshots are deterministic and diffable.
func (v *CounterVec) sorted() []*Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	sigs := make([]string, 0, len(v.children))
	for sig := range v.children {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	out := make([]*Counter, 0, len(sigs))
	for _, sig := range sigs {
		out = append(out, v.children[sig])
	}
	return out
}

// A HistogramVec is a family of fixed-bucket histograms sharing one
// name, bucket bounds, and HELP/TYPE header, split by label values.
type HistogramVec struct {
	name, help string
	keys       []string
	bounds     []float64
	mu         sync.Mutex
	children   map[string]*Histogram
}

// HistogramVec returns the registered histogram family of the given
// name, creating it with the given bounds on first use.
func (r *Registry) HistogramVec(name, help string, bounds []float64, keys ...string) *HistogramVec {
	v := &HistogramVec{
		name: mustMetricName(name), help: help,
		keys:     mustLabelKeys(name, keys),
		bounds:   append([]float64(nil), bounds...),
		children: make(map[string]*Histogram),
	}
	for i := 1; i < len(v.bounds); i++ {
		if v.bounds[i] <= v.bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram family %q bounds not sorted ascending", name))
		}
	}
	m := r.register(v)
	have, ok := m.(*HistogramVec)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q re-registered as a histogram family", name))
	}
	if have != v && !equalKeys(have.keys, v.keys) {
		panic(fmt.Sprintf("obs: histogram family %q re-registered with keys %v, want %v", name, v.keys, have.keys))
	}
	return have
}

// With returns the family's child histogram for the given label
// values, creating it on first use. Nil-safe.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	if len(values) != len(v.keys) {
		panic(fmt.Sprintf("obs: family %q got %d label values for keys %v", v.name, len(values), v.keys))
	}
	sig := renderLabels(v.keys, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	h := v.children[sig]
	if h == nil {
		h = &Histogram{name: v.name, labels: sig, bounds: v.bounds}
		h.buckets = make([]atomic.Int64, len(v.bounds)+1)
		v.children[sig] = h
	}
	return h
}

func (v *HistogramVec) metricName() string { return v.name }

func (v *HistogramVec) write(w io.Writer) error {
	if err := writeHeader(w, v.name, v.help, "histogram"); err != nil {
		return err
	}
	for _, h := range v.sortedH() {
		if err := h.writeValue(w); err != nil {
			return err
		}
	}
	return nil
}

func (v *HistogramVec) snapshot(into map[string]float64) {
	for _, h := range v.sortedH() {
		h.snapshot(into)
	}
}

func (v *HistogramVec) sortedH() []*Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	sigs := make([]string, 0, len(v.children))
	for sig := range v.children {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	out := make([]*Histogram, 0, len(sigs))
	for _, sig := range sigs {
		out = append(out, v.children[sig])
	}
	return out
}

func equalKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
