package obs

// End-to-end trace identity. A verification job gets one trace ID at
// submission (minted here, or accepted from the client), and that ID
// rides a context.Context through the service into the engine, so
// every schema-3 runlog record a run emits — spans, heartbeats, shard
// completions, the final certificate — carries the same `trace` (and
// `job`) fields. A journal is then self-describing: cmd/routelog can
// reconstruct a run's full span waterfall from the journal alone,
// and a distributed coordinator can stamp the same trace across
// shard leases on many machines.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
)

// NewTraceID mints a random 128-bit trace ID as 32 lowercase hex
// characters (the W3C trace-context width).
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a broken
		// entropy source is not worth failing a verification over.
		panic(fmt.Sprintf("obs: trace id entropy: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// MaxTraceIDLen bounds accepted trace IDs: long enough for any
// hex/UUID convention, short enough that a hostile header cannot
// bloat every journal record.
const MaxTraceIDLen = 64

// ValidTraceID reports whether a client-supplied trace ID is
// acceptable: 1..MaxTraceIDLen characters of [0-9A-Za-z_-]. The
// charset keeps IDs safe to embed in JSON journals, Prometheus label
// values, URLs, and log lines without escaping.
func ValidTraceID(id string) bool {
	if id == "" || len(id) > MaxTraceIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// A TraceContext is the identity a job's run carries: the end-to-end
// trace ID and the executing service's job ID. Either field may be
// empty (a bare CLI run has a trace but no job).
type TraceContext struct {
	TraceID string
	JobID   string
}

// IsZero reports whether the context carries no identity at all.
func (tc TraceContext) IsZero() bool { return tc.TraceID == "" && tc.JobID == "" }

// traceCtxKey carries the ambient TraceContext in a context.Context.
type traceCtxKey struct{}

// WithTraceContext returns a context carrying tc, for RunJob-shaped
// entry points to recover with TraceContextFrom.
func WithTraceContext(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceContextFrom extracts the context's trace identity, or the zero
// TraceContext. Safe on nil.
func TraceContextFrom(ctx context.Context) TraceContext {
	if ctx == nil {
		return TraceContext{}
	}
	tc, _ := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc
}
