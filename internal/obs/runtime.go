package obs

// Runtime self-telemetry: a runtime/metrics-backed sampler that
// periodically publishes the process's own resource state — heap
// bytes, GC pause quantiles, goroutine count, scheduler latency,
// cumulative CPU and allocation — into the metrics registry as the
// proc_* families, and a one-shot ReadResources the job-accounting
// layer (internal/serve, routing.RunJob) uses to measure what one
// verification actually cost. The paper accounts I/O per schedule
// segment; this file accounts the verifier per job.

import (
	"os"
	"runtime"
	"runtime/debug"
	"runtime/metrics"
	"sync"
	"time"

	"pathrouting/internal/runlog"
)

// processStart anchors uptime reporting; set once at process init so
// every daemon generation reports a distinct start time.
var processStart = time.Now()

// ProcessStart returns the time this process initialized the obs
// package (for all practical purposes, process start).
func ProcessStart() time.Time { return processStart }

// ProcInfo identifies a process generation: scrapes and the
// crash/resume smoke legs use it to tell two daemon generations of
// the same service apart, and to pin results to a build.
type ProcInfo struct {
	PID           int     `json:"pid"`
	StartTime     string  `json:"start_time"` // RFC 3339, UTC
	UptimeSeconds float64 `json:"uptime_seconds"`
	GoVersion     string  `json:"go_version"`
	Module        string  `json:"module,omitempty"`
	ModuleVersion string  `json:"module_version,omitempty"`
	VCSRevision   string  `json:"vcs_revision,omitempty"`
	VCSTime       string  `json:"vcs_time,omitempty"`
	VCSModified   bool    `json:"vcs_modified,omitempty"`
}

// ProcessInfo returns the process identity block /healthz and the
// GET /jobs envelope embed, built from debug.ReadBuildInfo.
func ProcessInfo() ProcInfo {
	info := ProcInfo{
		PID:           os.Getpid(),
		StartTime:     processStart.UTC().Format(time.RFC3339Nano),
		UptimeSeconds: time.Since(processStart).Seconds(),
		GoVersion:     runtime.Version(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		info.Module = bi.Main.Path
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			info.ModuleVersion = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				info.VCSRevision = s.Value
			case "vcs.time":
				info.VCSTime = s.Value
			case "vcs.modified":
				info.VCSModified = s.Value == "true"
			}
		}
	}
	return info
}

// runtime/metrics sample names the snapshot reads. Unknown names (an
// older runtime) come back KindBad and read as zero, never fail.
const (
	mHeapBytes  = "/memory/classes/heap/objects:bytes"
	mAllocBytes = "/gc/heap/allocs:bytes"
	mGoroutines = "/sched/goroutines:goroutines"
	mGCCycles   = "/gc/cycles/total:gc-cycles"
	mGCPauses   = "/gc/pauses:seconds"
	mSchedLat   = "/sched/latencies:seconds"
)

// A ResourceSnapshot is one reading of the process's resource state.
// The cumulative fields (AllocBytes, CPUSeconds, GCCycles) are since
// process start, so per-job costs are deltas between two snapshots.
type ResourceSnapshot struct {
	Time        time.Time
	HeapBytes   int64 // live heap object bytes
	AllocBytes  int64 // cumulative allocated bytes
	Goroutines  int64
	GCCycles    int64   // cumulative completed GC cycles
	GCPauseP50  float64 // seconds, distribution since process start
	GCPauseP99  float64
	SchedLatP50 float64 // scheduler latency quantiles, seconds
	SchedLatP99 float64
	CPUSeconds  float64 // process user+system CPU, cumulative
	Uptime      float64 // seconds since process start
}

// Runlog renders the snapshot as the compact schema-4 heartbeat block.
func (s ResourceSnapshot) Runlog() *runlog.Resources {
	return &runlog.Resources{
		HeapBytes:  s.HeapBytes,
		Goroutines: s.Goroutines,
		GCCycles:   s.GCCycles,
		GCPauseP99: s.GCPauseP99,
		Uptime:     s.Uptime,
		CPUSeconds: s.CPUSeconds,
		AllocBytes: s.AllocBytes,
	}
}

// ReadResources takes a one-shot resource snapshot. Cheap enough for
// per-job (not per-path) use: one runtime/metrics batch read plus one
// getrusage call.
func ReadResources() ResourceSnapshot {
	samples := []metrics.Sample{
		{Name: mHeapBytes}, {Name: mAllocBytes}, {Name: mGoroutines},
		{Name: mGCCycles}, {Name: mGCPauses}, {Name: mSchedLat},
	}
	metrics.Read(samples)
	now := time.Now()
	snap := ResourceSnapshot{
		Time:       now,
		CPUSeconds: processCPUSeconds(),
		Uptime:     now.Sub(processStart).Seconds(),
	}
	for i := range samples {
		s := &samples[i]
		switch s.Name {
		case mHeapBytes:
			snap.HeapBytes = sampleInt(s)
		case mAllocBytes:
			snap.AllocBytes = sampleInt(s)
		case mGoroutines:
			snap.Goroutines = sampleInt(s)
		case mGCCycles:
			snap.GCCycles = sampleInt(s)
		case mGCPauses:
			if h := sampleHist(s); h != nil {
				snap.GCPauseP50 = histQuantile(h, 0.50)
				snap.GCPauseP99 = histQuantile(h, 0.99)
			}
		case mSchedLat:
			if h := sampleHist(s); h != nil {
				snap.SchedLatP50 = histQuantile(h, 0.50)
				snap.SchedLatP99 = histQuantile(h, 0.99)
			}
		}
	}
	return snap
}

func sampleInt(s *metrics.Sample) int64 {
	if s.Value.Kind() != metrics.KindUint64 {
		return 0
	}
	v := s.Value.Uint64()
	if v > 1<<62 {
		return 1 << 62 // clamp: never overflow int64 in a JSON field
	}
	return int64(v)
}

func sampleHist(s *metrics.Sample) *metrics.Float64Histogram {
	if s.Value.Kind() != metrics.KindFloat64Histogram {
		return nil
	}
	return s.Value.Float64Histogram()
}

// histQuantile is the nearest-rank quantile of a runtime/metrics
// histogram, using each bucket's finite edge as its value.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > rank {
			return bucketValue(h.Buckets, i)
		}
	}
	return bucketValue(h.Buckets, len(h.Counts)-1)
}

// bucketValue picks a representative finite value for bucket i of a
// runtime histogram (Buckets has len(Counts)+1 edges and may open
// with -Inf or close with +Inf).
func bucketValue(edges []float64, i int) float64 {
	lo, hi := edges[i], edges[i+1]
	switch {
	case !isInf(hi):
		return hi
	case !isInf(lo):
		return lo
	default:
		return 0
	}
}

func isInf(v float64) bool { return v > 1e300 || v < -1e300 }

// A RuntimeSampler periodically reads the runtime's own metrics and
// publishes them as the proc_* families, computes the heap growth
// rate between samples, republishes new GC pauses into a real
// histogram, and hands each snapshot to an optional hook (the anomaly
// profiler's trigger check). Nil-safe: a nil sampler ignores every
// call, so wiring is unconditional.
type RuntimeSampler struct {
	heap        *Gauge
	goroutines  *Gauge
	uptime      *Gauge
	cpuSeconds  *Gauge // monotonic; gauge because it is float-valued
	heapGrowth  *Gauge
	gcPauseP50  *Gauge
	gcPauseP99  *Gauge
	schedLatP50 *Gauge
	schedLatP99 *Gauge
	gcCycles    *Counter
	allocBytes  *Counter
	gcPauseHist *Histogram

	onSample func(ResourceSnapshot)

	mu        sync.Mutex
	last      ResourceSnapshot
	haveLast  bool
	rate      float64 // heap growth bytes/sec between the last two samples
	prevGC    *metrics.Float64Histogram
	done      chan struct{}
	wg        sync.WaitGroup
	stopOnce  sync.Once
	startOnce sync.Once
}

// NewRuntimeSampler registers the proc_* metric families on reg and
// returns an idle sampler; call Start to begin periodic sampling, or
// Sample for on-demand readings. onSample, when non-nil, receives
// every snapshot (periodic and on-demand) — the anomaly profiler
// hooks in here.
func NewRuntimeSampler(reg *Registry, onSample func(ResourceSnapshot)) *RuntimeSampler {
	return &RuntimeSampler{
		heap: reg.Gauge("proc_heap_bytes",
			"live heap object bytes at the last runtime sample"),
		goroutines: reg.Gauge("proc_goroutines",
			"goroutine count at the last runtime sample"),
		uptime: reg.Gauge("proc_uptime_seconds",
			"seconds since process start"),
		cpuSeconds: reg.Gauge("proc_cpu_seconds_total",
			"cumulative process CPU (user+system) seconds"),
		heapGrowth: reg.Gauge("proc_heap_growth_bytes_per_second",
			"heap growth rate between the last two runtime samples"),
		gcPauseP50: reg.Gauge("proc_gc_pause_p50_seconds",
			"GC pause p50 over the process lifetime distribution"),
		gcPauseP99: reg.Gauge("proc_gc_pause_p99_seconds",
			"GC pause p99 over the process lifetime distribution"),
		schedLatP50: reg.Gauge("proc_sched_latency_p50_seconds",
			"scheduler latency p50 over the process lifetime distribution"),
		schedLatP99: reg.Gauge("proc_sched_latency_p99_seconds",
			"scheduler latency p99 over the process lifetime distribution"),
		gcCycles: reg.Counter("proc_gc_cycles_total",
			"completed GC cycles"),
		allocBytes: reg.Counter("proc_alloc_bytes_total",
			"cumulative heap bytes allocated"),
		gcPauseHist: reg.Histogram("proc_gc_pause_seconds",
			"GC pause durations (republished from runtime/metrics per sample)",
			GCPauseBuckets),
		onSample: onSample,
	}
}

// GCPauseBuckets spans the plausible stop-the-world range: 10µs
// (healthy sub-ms pauses) to 1s (a badly overloaded heap).
var GCPauseBuckets = []float64{1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 0.025, 0.1, 0.5, 1}

// StartRuntimeSampler is the one-call wiring: register the proc_*
// families on reg and begin sampling every interval until the
// returned sampler's Stop. A nil registry or non-positive interval
// yields a nil (no-op) sampler.
func StartRuntimeSampler(reg *Registry, interval time.Duration, onSample func(ResourceSnapshot)) *RuntimeSampler {
	if reg == nil || interval <= 0 {
		return nil
	}
	s := NewRuntimeSampler(reg, onSample)
	s.Start(interval)
	return s
}

// Start launches the periodic sampling goroutine. Idempotent; safe on
// nil.
func (s *RuntimeSampler) Start(interval time.Duration) {
	if s == nil || interval <= 0 {
		return
	}
	s.startOnce.Do(func() {
		s.done = make(chan struct{})
		s.Sample() // baseline immediately, so growth rates have an anchor
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					s.Sample()
				case <-s.done:
					return
				}
			}
		}()
	})
}

// Stop halts periodic sampling (on-demand Sample keeps working).
// Idempotent; safe on nil.
func (s *RuntimeSampler) Stop() {
	if s == nil {
		return
	}
	s.stopOnce.Do(func() {
		if s.done != nil {
			close(s.done)
		}
		s.wg.Wait()
	})
}

// Sample takes a snapshot, publishes it into the proc_* families,
// updates the growth rate, and invokes the hook. Safe on nil (returns
// a plain ReadResources so callers always get a snapshot).
func (s *RuntimeSampler) Sample() ResourceSnapshot {
	if s == nil {
		return ReadResources()
	}
	// Re-read the GC pause histogram alongside the scalar snapshot so
	// bucket deltas and quantiles come from the same read.
	pauses := []metrics.Sample{{Name: mGCPauses}}
	metrics.Read(pauses)
	snap := ReadResources()

	s.mu.Lock()
	if s.haveLast {
		if dt := snap.Time.Sub(s.last.Time).Seconds(); dt > 0 {
			s.rate = float64(snap.HeapBytes-s.last.HeapBytes) / dt
		}
		s.gcCycles.Add(max(0, snap.GCCycles-s.last.GCCycles))
		s.allocBytes.Add(max(0, snap.AllocBytes-s.last.AllocBytes))
	} else {
		// First sample credits the pre-sampler history, so the counters
		// read as cumulative-since-start like their runtime sources.
		s.gcCycles.Add(snap.GCCycles)
		s.allocBytes.Add(snap.AllocBytes)
	}
	if cur := sampleHist(&pauses[0]); cur != nil {
		s.republishPausesLocked(cur)
	}
	s.last, s.haveLast = snap, true
	rate := s.rate
	s.mu.Unlock()

	s.heap.SetInt(snap.HeapBytes)
	s.goroutines.SetInt(snap.Goroutines)
	s.uptime.Set(snap.Uptime)
	s.cpuSeconds.Set(snap.CPUSeconds)
	s.heapGrowth.Set(rate)
	s.gcPauseP50.Set(snap.GCPauseP50)
	s.gcPauseP99.Set(snap.GCPauseP99)
	s.schedLatP50.Set(snap.SchedLatP50)
	s.schedLatP99.Set(snap.SchedLatP99)
	if s.onSample != nil {
		s.onSample(snap)
	}
	return snap
}

// republishPausesLocked folds the new GC pauses since the previous
// sample (bucket-count deltas of the cumulative runtime histogram)
// into the proc_gc_pause_seconds histogram. s.mu must be held.
func (s *RuntimeSampler) republishPausesLocked(cur *metrics.Float64Histogram) {
	if s.prevGC != nil && len(s.prevGC.Counts) == len(cur.Counts) {
		for i, c := range cur.Counts {
			if d := c - s.prevGC.Counts[i]; d > 0 && d < 1<<62 {
				s.gcPauseHist.ObserveN(bucketValue(cur.Buckets, i), int64(d))
			}
		}
	}
	// Deep-copy: the runtime may reuse the sample's backing arrays.
	prev := &metrics.Float64Histogram{
		Counts:  append([]uint64(nil), cur.Counts...),
		Buckets: append([]float64(nil), cur.Buckets...),
	}
	s.prevGC = prev
}

// Last returns the most recent snapshot (zero before the first
// Sample; safe on nil).
func (s *RuntimeSampler) Last() ResourceSnapshot {
	if s == nil {
		return ResourceSnapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// HeapGrowthRate returns the heap growth in bytes/second between the
// last two samples (0 before two samples exist; safe on nil).
func (s *RuntimeSampler) HeapGrowthRate() float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rate
}
