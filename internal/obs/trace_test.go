package obs

import (
	"context"
	"path/filepath"
	"testing"

	"pathrouting/internal/runlog"
)

func TestNewTraceIDShapeAndUniqueness(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 64; i++ {
		id := NewTraceID()
		if len(id) != 32 {
			t.Fatalf("trace ID %q: want 32 hex chars", id)
		}
		if !ValidTraceID(id) {
			t.Fatalf("minted trace ID %q fails ValidTraceID", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}

func TestValidTraceID(t *testing.T) {
	for _, ok := range []string{"a", "abc123", "A-b_c", NewTraceID()} {
		if !ValidTraceID(ok) {
			t.Errorf("ValidTraceID(%q) = false, want true", ok)
		}
	}
	long := make([]byte, MaxTraceIDLen+1)
	for i := range long {
		long[i] = 'a'
	}
	for _, bad := range []string{"", "has space", "semi;colon", "new\nline", `quo"te`, string(long)} {
		if ValidTraceID(bad) {
			t.Errorf("ValidTraceID(%q) = true, want false", bad)
		}
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: "deadbeef", JobID: "j00000001"}
	ctx := WithTraceContext(context.Background(), tc)
	if got := TraceContextFrom(ctx); got != tc {
		t.Fatalf("TraceContextFrom = %+v, want %+v", got, tc)
	}
	if got := TraceContextFrom(context.Background()); !got.IsZero() {
		t.Fatalf("empty context yielded %+v", got)
	}
	if got := TraceContextFrom(nil); !got.IsZero() { //nolint:staticcheck // nil-safety is the contract
		t.Fatalf("nil context yielded %+v", got)
	}
	if tc.IsZero() || (TraceContext{}).IsZero() != true {
		t.Fatal("IsZero misclassifies")
	}
}

// TestTracerWithJob: a derived tracer stamps the trace identity onto
// every span it emits, without mutating the parent tracer.
func TestTracerWithJob(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	w, err := runlog.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	parent := NewTracer(w, runlog.Record{Tool: "routed", Alg: "strassen", K: 4})
	child := parent.WithJob(TraceContext{TraceID: "cafef00d", JobID: "j00000042"})

	child.StartSpan("job_run").End()
	parent.StartSpan("untraced").End()
	// Empty fields leave an existing stamp in place.
	child.WithJob(TraceContext{}).StartSpan("inherited").End()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	recs := journalRecords(t, path)
	if len(recs) != 3 {
		t.Fatalf("journal has %d records, want 3", len(recs))
	}
	if recs[0].Trace != "cafef00d" || recs[0].Job != "j00000042" || recs[0].Alg != "strassen" {
		t.Fatalf("traced span = %+v", recs[0])
	}
	if recs[1].Trace != "" || recs[1].Job != "" {
		t.Fatalf("parent tracer was mutated: %+v", recs[1])
	}
	if recs[2].Trace != "cafef00d" || recs[2].Job != "j00000042" {
		t.Fatalf("derived-from-derived span = %+v", recs[2])
	}

	var nilTracer *Tracer
	if nilTracer.WithJob(TraceContext{TraceID: "x"}) != nil {
		t.Fatal("nil tracer must derive to nil")
	}
}
