package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// A Server is the optional debug HTTP server of a long verification
// run, serving:
//
//	/metrics        the registry in Prometheus text format
//	/healthz        the caller's live health snapshot as JSON
//	/debug/pprof/*  the standard Go profiling endpoints
//
// It binds eagerly (so ":0" callers can learn the chosen port) and
// serves in a background goroutine until Close.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// StartServer binds addr and serves reg and health. health may be nil
// (healthz then reports only liveness); its return value is marshaled
// as JSON per request, so it should return a cheap snapshot, not hold
// locks into the engine.
func StartServer(addr string, reg *Registry, health func() any) (*Server, error) {
	return StartServerMux(addr, reg, health, nil)
}

// StartServerMux is StartServer with extra routes: mount, when
// non-nil, receives the server's mux before serving starts, so a
// daemon (cmd/routed) can hang its own API off the same listener as
// /metrics, /healthz, and /debug/pprof instead of running a second
// HTTP server.
func StartServerMux(addr string, reg *Registry, health func() any, mount func(*http.ServeMux)) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = reg.WriteTo(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		snap := any(map[string]string{"status": "ok"})
		if health != nil {
			snap = health()
		}
		// Marshal to a buffer before touching the ResponseWriter: an
		// encoder writing straight to w commits the 200 status (and a
		// partial body) before a mid-encode failure can surface, so the
		// http.Error afterwards emitted a superfluous-WriteHeader log
		// and the client got corrupt JSON with a success status.
		body, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(append(body, '\n'))
	})
	// Explicit pprof routes: importing net/http/pprof for its side
	// effect would pollute http.DefaultServeMux, which this server
	// deliberately does not use.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if mount != nil {
		mount(mux)
	}

	// ReadHeaderTimeout evicts scrapers that connect and stall before
	// sending a request; IdleTimeout reclaims keep-alive connections a
	// crashed scraper abandoned. Both matter at drain time: Shutdown
	// waits for connections to go idle, so a stuck peer must not be
	// able to pin it. No WriteTimeout — it would sever long-lived SSE
	// streams (/jobs/{id}/events), which drain via the server's own
	// stop signal instead.
	s := &Server{ln: ln, srv: &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       120 * time.Second,
	}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns the http:// base URL of the server.
func (s *Server) URL() string {
	if s == nil {
		return ""
	}
	host, port, err := net.SplitHostPort(s.Addr())
	if err != nil {
		return "http://" + s.Addr()
	}
	if ip := net.ParseIP(host); ip != nil && ip.IsUnspecified() {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

// Close stops the server immediately, severing in-flight requests
// mid-body. Safe on nil. Long-running daemons should prefer Shutdown,
// which lets a /metrics scrape or a job poll finish cleanly.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// Shutdown gracefully stops the server: the listener closes
// immediately (no new connections), but in-flight requests drain
// until they finish or ctx expires, whichever comes first. Safe on
// nil. This is the path a daemon's SIGTERM handler should take so
// clients mid-scrape get complete bodies before the process exits.
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}
