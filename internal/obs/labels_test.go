package obs

import (
	"strings"
	"testing"
)

// TestCounterVecExposition: children render sorted under one
// HELP/TYPE header, and snapshots key by the labeled series name.
func TestCounterVecExposition(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec("serve_submissions_total", "Submissions by outcome.", "outcome")
	v.With("miss").Add(3)
	v.With("hit").Add(2)
	v.With("miss").Inc()

	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := "# HELP serve_submissions_total Submissions by outcome.\n" +
		"# TYPE serve_submissions_total counter\n" +
		`serve_submissions_total{outcome="hit"} 2` + "\n" +
		`serve_submissions_total{outcome="miss"} 4` + "\n"
	if !strings.Contains(out, want) {
		t.Fatalf("exposition:\n%s\nwant block:\n%s", out, want)
	}
	if strings.Count(out, "# TYPE serve_submissions_total") != 1 {
		t.Fatalf("family header repeated:\n%s", out)
	}

	snap := reg.Snapshot()
	if snap[`serve_submissions_total{outcome="hit"}`] != 2 ||
		snap[`serve_submissions_total{outcome="miss"}`] != 4 {
		t.Fatalf("snapshot = %v", snap)
	}

	// Same family handle on re-registration; same child on same values.
	if reg.CounterVec("serve_submissions_total", "", "outcome") != v {
		t.Fatal("re-registration returned a different family")
	}
	if v.With("hit") != v.With("hit") {
		t.Fatal("With is not cached")
	}
}

// TestLabelValueEscaping: quotes, backslashes, and newlines in label
// values must render escaped per the exposition format.
func TestLabelValueEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("weird_total", "", "msg").With("a\\b\"c\nd").Inc()
	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `weird_total{msg="a\\b\"c\nd"} 1`) {
		t.Fatalf("exposition:\n%s", b.String())
	}
}

// TestHistogramVecExposition: labeled histograms merge their label set
// with the le bucket label and keep per-child count/sum series.
func TestHistogramVecExposition(t *testing.T) {
	reg := NewRegistry()
	v := reg.HistogramVec("serve_job_seconds", "Job wall time.", []float64{1, 10}, "outcome")
	v.With("miss").Observe(0.5)
	v.With("miss").Observe(5)
	v.With("hit").Observe(0.1)

	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`serve_job_seconds_bucket{outcome="hit",le="1"} 1`,
		`serve_job_seconds_bucket{outcome="hit",le="+Inf"} 1`,
		`serve_job_seconds_bucket{outcome="miss",le="1"} 1`,
		`serve_job_seconds_bucket{outcome="miss",le="10"} 2`,
		`serve_job_seconds_bucket{outcome="miss",le="+Inf"} 2`,
		`serve_job_seconds_count{outcome="miss"} 2`,
		`serve_job_seconds_count{outcome="hit"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE serve_job_seconds") != 1 {
		t.Fatalf("family header repeated:\n%s", out)
	}
	snap := reg.Snapshot()
	if snap[`serve_job_seconds_count{outcome="miss"}`] != 2 {
		t.Fatalf("snapshot = %v", snap)
	}
	if snap[`serve_job_seconds_sum{outcome="miss"}`] != 5.5 {
		t.Fatalf("snapshot = %v", snap)
	}
}

// TestVecNilAndPanics: nil vecs no-op; misuse panics at registration
// or first use, never silently misrecords.
func TestVecNilAndPanics(t *testing.T) {
	var cv *CounterVec
	cv.With("x").Inc() // nil vec -> nil counter -> no-op
	var hv *HistogramVec
	hv.With("x").Observe(1)

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	reg := NewRegistry()
	mustPanic("no keys", func() { reg.CounterVec("a_total", "") })
	mustPanic("le key", func() { reg.CounterVec("b_total", "", "le") })
	mustPanic("dup key", func() { reg.CounterVec("c_total", "", "k", "k") })
	mustPanic("bad key charset", func() { reg.CounterVec("d_total", "", "bad-key") })
	v := reg.CounterVec("e_total", "", "outcome")
	mustPanic("arity", func() { v.With("a", "b") })
	mustPanic("kind clash", func() { reg.Counter("e_total", "") })
	mustPanic("key clash", func() { reg.CounterVec("e_total", "", "other") })
	h := reg.HistogramVec("f_seconds", "", []float64{1, 2}, "outcome")
	mustPanic("hist arity", func() { h.With() })
	mustPanic("hist bounds", func() { reg.HistogramVec("g_seconds", "", []float64{2, 1}, "k") })
}
