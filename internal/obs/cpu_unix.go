//go:build unix

package obs

import "syscall"

// processCPUSeconds returns the process's cumulative user+system CPU
// time. Getrusage is a single cheap syscall; Timeval.Nano keeps the
// arithmetic 64-bit even on 386, where Timeval fields are 32-bit.
func processCPUSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return float64(ru.Utime.Nano()+ru.Stime.Nano()) / 1e9
}
