package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// testProfiler builds a profiler with an effectively-zero cooldown and
// a very short CPU leg, so tests can fire captures back to back.
func testProfiler(t *testing.T, dir string, maxCaptures int) *Profiler {
	t.Helper()
	p, err := NewProfiler(ProfilerConfig{
		Dir:         dir,
		MaxCaptures: maxCaptures,
		CPUDuration: time.Millisecond,
		Cooldown:    time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// triggerWait fires a capture, retrying while the previous capture's
// CPU leg is still in flight (the single-flight guard).
func triggerWait(t *testing.T, p *Profiler, reason string) Capture {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, err := p.Trigger(reason)
		if err == nil {
			return c
		}
		if time.Now().After(deadline) {
			t.Fatalf("capture never cleared: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestProfilerRingEviction: the ring holds MaxCaptures captures; older
// ones are evicted and their files (meta + profiles) removed from disk.
func TestProfilerRingEviction(t *testing.T) {
	dir := t.TempDir()
	p := testProfiler(t, dir, 2)
	var ids []string
	for i := 0; i < 4; i++ {
		ids = append(ids, triggerWait(t, p, "manual").ID)
	}
	p.Close() // drain CPU legs before inspecting the disk
	ring := p.Captures()
	if len(ring) != 2 || ring[0].ID != ids[2] || ring[1].ID != ids[3] {
		t.Fatalf("ring = %+v, want the two newest of %v", ring, ids)
	}
	for i, id := range ids {
		_, err := os.Stat(filepath.Join(dir, id+".heap.pb.gz"))
		if evicted := i < 2; evicted != os.IsNotExist(err) {
			t.Fatalf("capture %s (evicted=%v): heap file stat err = %v", id, evicted, err)
		}
		_, err = os.Stat(filepath.Join(dir, id+".json"))
		if evicted := i < 2; evicted != os.IsNotExist(err) {
			t.Fatalf("capture %s (evicted=%v): meta file stat err = %v", id, evicted, err)
		}
	}
}

// TestProfilerReindexAcrossRestart: a new profiler over the same dir
// re-reads the ring and continues the ID sequence rather than
// overwriting earlier captures.
func TestProfilerReindexAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	p1 := testProfiler(t, dir, 8)
	first := triggerWait(t, p1, "manual")
	second := triggerWait(t, p1, "manual")
	p1.Close()

	p2 := testProfiler(t, dir, 8)
	ring := p2.Captures()
	if len(ring) != 2 || ring[0].ID != first.ID || ring[1].ID != second.ID {
		t.Fatalf("reindexed ring = %+v", ring)
	}
	third := triggerWait(t, p2, "manual")
	if third.ID <= second.ID {
		t.Fatalf("ID sequence did not resume: %s after %s", third.ID, second.ID)
	}
}

// TestProfilerConsiderQueueDepth: the serving-layer trigger fires a
// capture when the queue callback reports a depth at the limit, and
// records the reason.
func TestProfilerConsiderQueueDepth(t *testing.T) {
	reg := NewRegistry()
	depth := 0
	p, err := NewProfiler(ProfilerConfig{
		Dir:         t.TempDir(),
		CPUDuration: time.Millisecond,
		Cooldown:    time.Nanosecond,
		QueueDepth:  func() int { return depth },
		QueueLimit:  3,
		Registry:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Consider(ReadResources())
	if got := p.Captures(); len(got) != 0 {
		t.Fatalf("queue below limit triggered a capture: %+v", got)
	}
	depth = 5
	p.Consider(ReadResources())
	ring := p.Captures()
	if len(ring) != 1 || ring[0].Reason != "queue-depth" || ring[0].Queue != 5 {
		t.Fatalf("ring = %+v", ring)
	}
	var out strings.Builder
	reg.WriteTo(&out)
	if !strings.Contains(out.String(), `obs_profile_captures_total{reason="queue-depth"} 1`) {
		t.Fatalf("capture counter missing:\n%s", out.String())
	}
}

// TestProfilerCooldown: a second trigger inside the cooldown window is
// rejected, so a sustained anomaly cannot churn the ring.
func TestProfilerCooldown(t *testing.T) {
	p, err := NewProfiler(ProfilerConfig{
		Dir:         t.TempDir(),
		CPUDuration: time.Millisecond,
		Cooldown:    time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Trigger(""); err != nil {
		t.Fatal(err)
	}
	p.Close() // ensure the rejection below is cooldown, not single-flight
	if _, err := p.Trigger(""); err == nil || !strings.Contains(err.Error(), "cooldown") {
		t.Fatalf("second trigger inside cooldown: err = %v", err)
	}
}

// TestProfilerMount: the HTTP surface — listing, manual trigger,
// profile download, and the no-traversal guarantee.
func TestProfilerMount(t *testing.T) {
	dir := t.TempDir()
	p := testProfiler(t, dir, 8)
	mux := http.NewServeMux()
	p.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/debug/captures?reason=smoke", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var c Capture
	if err := json.NewDecoder(resp.Body).Decode(&c); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || c.Reason != "smoke" || c.ID == "" {
		t.Fatalf("POST: status %d, capture %+v", resp.StatusCode, c)
	}

	resp, err = http.Get(srv.URL + "/debug/captures")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Total    int       `json:"total"`
		Captures []Capture `json:"captures"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if listing.Total != 1 || len(listing.Captures) != 1 || listing.Captures[0].ID != c.ID {
		t.Fatalf("listing = %+v", listing)
	}

	resp, err = http.Get(srv.URL + "/debug/captures/" + c.HeapFile)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("heap download: status %d", resp.StatusCode)
	}

	// A file in the directory but not in the ring must 404 — the
	// handler serves the index, not the filesystem.
	os.WriteFile(filepath.Join(dir, "secret.txt"), []byte("x"), 0o644)
	for _, path := range []string{"secret.txt", "../profile.go", "..%2Fprofile.go"} {
		resp, err = http.Get(fmt.Sprintf("%s/debug/captures/%s", srv.URL, path))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestProfilerNilSafe: the nil profiler contract daemons rely on.
func TestProfilerNilSafe(t *testing.T) {
	var p *Profiler
	p.Consider(ResourceSnapshot{})
	if _, err := p.Trigger("x"); err == nil {
		t.Fatal("nil Trigger should error")
	}
	if p.Captures() != nil {
		t.Fatal("nil Captures should be nil")
	}
	p.Mount(http.NewServeMux())
	p.Close()
}
