package obs

import (
	"context"
	"sync"
	"time"

	"pathrouting/internal/runlog"
)

// A Tracer emits completed spans as schema-2 `span` records into a
// runlog journal. A nil *Tracer is a valid no-op, mirroring the nil
// *runlog.Writer convention, so the engine threads one unconditionally.
type Tracer struct {
	w    *runlog.Writer
	base runlog.Record // tool/alg/k identity stamped onto every span
	// OnError, when non-nil, receives journal write errors (spans are
	// observability: they must never fail a verification).
	OnError func(error)
}

// NewTracer returns a tracer writing spans to w with base's identity
// fields. A nil w yields a no-op tracer (returned non-nil so callers
// can set OnError uniformly); to get the cheapest possible disabled
// path, keep the *Tracer itself nil.
func NewTracer(w *runlog.Writer, base runlog.Record) *Tracer {
	return &Tracer{w: w, base: base}
}

// WithJob returns a derived tracer whose spans additionally carry the
// job's trace identity (schema-3 `trace`/`job` fields). Empty fields
// in tc leave the base record's values in place, so a tracer already
// stamped with a trace keeps it. Nil-safe: a nil tracer stays nil, so
// the disabled path stays free.
func (t *Tracer) WithJob(tc TraceContext) *Tracer {
	if t == nil {
		return nil
	}
	base := t.base
	if tc.TraceID != "" {
		base.Trace = tc.TraceID
	}
	if tc.JobID != "" {
		base.Job = tc.JobID
	}
	return &Tracer{w: t.w, base: base, OnError: t.OnError}
}

// A Span is one named, timed section of a run. End emits it; a nil
// span (from a nil tracer) ignores every call.
type Span struct {
	t     *Tracer
	name  string
	start time.Time

	mu    sync.Mutex
	attrs map[string]string
	ended bool
}

// StartSpan begins a span named name on the tracer carried by ctx (see
// WithTracer) and returns ctx unchanged plus the span. With no tracer
// in ctx the span is nil, which is safe to use.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, TracerFrom(ctx).StartSpan(name)
}

// StartSpan begins a span directly on the tracer. Nil-safe.
func (t *Tracer) StartSpan(name string) *Span {
	if t == nil || t.w == nil {
		return nil
	}
	return &Span{t: t, name: name, start: time.Now()}
}

// SetAttr attaches a key/value attribute to the span. Nil-safe and
// concurrency-safe; attributes set after End are dropped.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
}

// End emits the span record (start time, duration, attributes) into
// the journal. Safe on nil and idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()

	rec := s.t.base
	rec.Event = runlog.EventSpan
	rec.Span = s.name
	rec.SpanStart = s.start.UTC().Format(time.RFC3339Nano)
	rec.DurSec = time.Since(s.start).Seconds()
	rec.Attrs = attrs
	if err := s.t.w.Emit(rec); err != nil && s.t.OnError != nil {
		s.t.OnError(err)
	}
}

// tracerKey carries the ambient *Tracer in a context.
type tracerKey struct{}

// WithTracer returns a context carrying t for StartSpan.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom extracts the context's tracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// StartHeartbeat launches a goroutine emitting a schema-2 `heartbeat`
// record carrying reg's metric snapshot — and, since schema 4, a
// compact process resource snapshot (heap, goroutines, GC, CPU) — into
// w every interval, until the returned stop function is called (stop
// emits one final heartbeat, so the journal always records the end
// state). A nil writer, nil registry, or non-positive interval yields
// a no-op stop.
func StartHeartbeat(w *runlog.Writer, base runlog.Record, reg *Registry, interval time.Duration) (stop func()) {
	if w == nil || reg == nil || interval <= 0 {
		return func() {}
	}
	emit := func() {
		rec := base
		rec.Event = runlog.EventHeartbeat
		rec.Metrics = reg.Snapshot()
		rec.Resources = ReadResources().Runlog()
		_ = w.Emit(rec) // heartbeats are best-effort liveness
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				emit()
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
			emit()
		})
	}
}
