package obs

import (
	"math"
	"runtime/metrics"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestReadResourcesSane: a one-shot snapshot of a live Go process has
// the obviously-true properties — a heap, at least this goroutine,
// nonzero cumulative allocation, positive uptime.
func TestReadResourcesSane(t *testing.T) {
	snap := ReadResources()
	if snap.HeapBytes <= 0 {
		t.Fatalf("HeapBytes = %d", snap.HeapBytes)
	}
	if snap.Goroutines < 1 {
		t.Fatalf("Goroutines = %d", snap.Goroutines)
	}
	if snap.AllocBytes <= 0 {
		t.Fatalf("AllocBytes = %d", snap.AllocBytes)
	}
	if snap.Uptime <= 0 {
		t.Fatalf("Uptime = %f", snap.Uptime)
	}
	if snap.CPUSeconds < 0 {
		t.Fatalf("CPUSeconds = %f", snap.CPUSeconds)
	}
	rl := snap.Runlog()
	if rl.HeapBytes != snap.HeapBytes || rl.CPUSeconds != snap.CPUSeconds {
		t.Fatalf("Runlog conversion dropped fields: %+v vs %+v", rl, snap)
	}
}

// TestProcessInfo: the identity block has a PID, a parseable start
// time, and the toolchain version.
func TestProcessInfo(t *testing.T) {
	info := ProcessInfo()
	if info.PID <= 0 {
		t.Fatalf("PID = %d", info.PID)
	}
	if _, err := time.Parse(time.RFC3339Nano, info.StartTime); err != nil {
		t.Fatalf("StartTime %q: %v", info.StartTime, err)
	}
	if !strings.HasPrefix(info.GoVersion, "go") {
		t.Fatalf("GoVersion = %q", info.GoVersion)
	}
	if info.UptimeSeconds <= 0 {
		t.Fatalf("UptimeSeconds = %f", info.UptimeSeconds)
	}
}

// TestRuntimeSamplerPublishes: one Sample populates every proc_*
// family in the exposition, and the hook sees the snapshot.
func TestRuntimeSamplerPublishes(t *testing.T) {
	reg := NewRegistry()
	var hooked ResourceSnapshot
	s := NewRuntimeSampler(reg, func(snap ResourceSnapshot) { hooked = snap })
	snap := s.Sample()
	if hooked.HeapBytes != snap.HeapBytes {
		t.Fatalf("hook snapshot %+v != returned %+v", hooked, snap)
	}
	var out strings.Builder
	if _, err := reg.WriteTo(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, family := range []string{
		"proc_heap_bytes", "proc_goroutines", "proc_uptime_seconds",
		"proc_cpu_seconds_total", "proc_heap_growth_bytes_per_second",
		"proc_gc_pause_p99_seconds", "proc_sched_latency_p99_seconds",
		"proc_gc_cycles_total", "proc_alloc_bytes_total",
		"proc_gc_pause_seconds_bucket",
	} {
		if !strings.Contains(text, family) {
			t.Fatalf("exposition missing %s:\n%s", family, text)
		}
	}
	if s.Last().HeapBytes != snap.HeapBytes {
		t.Fatalf("Last() = %+v, want %+v", s.Last(), snap)
	}
}

// TestRuntimeSamplerRace: a running sampler, concurrent on-demand
// Sample calls, and concurrent registry scrapes must be clean under
// the race detector — the sampler publishes into the same registry
// the debug server scrapes.
func TestRuntimeSamplerRace(t *testing.T) {
	reg := NewRegistry()
	s := StartRuntimeSampler(reg, time.Millisecond, nil)
	if s == nil {
		t.Fatal("StartRuntimeSampler returned nil for a valid config")
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				s.Sample()
				s.HeapGrowthRate()
				s.Last()
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				var out strings.Builder
				reg.WriteTo(&out)
				reg.Snapshot()
			}
		}()
	}
	wg.Wait()
	s.Stop()
	s.Stop() // idempotent
}

// TestSamplerNilSafe: the nil sampler contract daemons rely on for
// unconditional wiring.
func TestSamplerNilSafe(t *testing.T) {
	var s *RuntimeSampler
	s.Start(time.Second)
	if snap := s.Sample(); snap.HeapBytes <= 0 {
		t.Fatalf("nil Sample should fall back to ReadResources, got %+v", snap)
	}
	if s.HeapGrowthRate() != 0 || s.Last().HeapBytes != 0 {
		t.Fatal("nil sampler leaked state")
	}
	s.Stop()
	if got := StartRuntimeSampler(nil, time.Second, nil); got != nil {
		t.Fatalf("nil registry should yield nil sampler, got %v", got)
	}
	if got := StartRuntimeSampler(NewRegistry(), 0, nil); got != nil {
		t.Fatalf("zero interval should yield nil sampler, got %v", got)
	}
}

// TestHistQuantile: nearest-rank quantiles on a synthetic
// runtime-style histogram with ±Inf edges.
func TestHistQuantile(t *testing.T) {
	h := &metrics.Float64Histogram{
		// buckets: (-Inf,1e-4], (1e-4,1e-3], (1e-3,1e-2], (1e-2,+Inf)
		Counts:  []uint64{90, 8, 1, 1},
		Buckets: []float64{math.Inf(-1), 1e-4, 1e-3, 1e-2, math.Inf(1)},
	}
	if got := histQuantile(h, 0.50); got != 1e-4 {
		t.Fatalf("p50 = %g, want 1e-4", got)
	}
	if got := histQuantile(h, 0.99); got != 1e-2 {
		t.Fatalf("p99 = %g, want 1e-2 (last finite edge of the +Inf bucket)", got)
	}
	empty := &metrics.Float64Histogram{Counts: []uint64{0}, Buckets: []float64{0, 1}}
	if got := histQuantile(empty, 0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %g", got)
	}
}
