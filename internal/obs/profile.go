package obs

// Anomaly-triggered continuous profiling: a bounded on-disk ring of
// pprof captures (heap snapshot + short CPU profile) fired when the
// runtime sampler's snapshots trip configured thresholds — heap
// growing too fast, GC pauses too long, the job queue too deep. The
// point is to catch the profile *of the incident*: by the time a
// human attaches a profiler to a wedged daemon, the interesting
// allocation pattern is hours gone. The ring is bounded and captures
// are rate-limited (cooldown + single-flight), so a sustained anomaly
// costs a handful of files, not a disk.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// ProfilerConfig configures an anomaly-triggered profiler. Thresholds
// left zero are disabled; a profiler with every threshold disabled
// still serves manual captures (POST /debug/captures).
type ProfilerConfig struct {
	// Dir is the capture ring directory (required).
	Dir string
	// MaxCaptures bounds the ring (default 8): when full, the oldest
	// capture's files are evicted.
	MaxCaptures int
	// CPUDuration is the length of the CPU profile attached to each
	// capture (default 5s; 0 < d ≤ 60s).
	CPUDuration time.Duration
	// Cooldown is the minimum gap between triggered captures (default
	// 1m), so a sustained anomaly yields a sequence of spaced captures
	// instead of a churning ring.
	Cooldown time.Duration

	// HeapGrowthBytesPerSec triggers when the heap grows faster than
	// this between consecutive Consider calls.
	HeapGrowthBytesPerSec float64
	// GCPauseP99Seconds triggers when the sampled GC pause p99 exceeds
	// this.
	GCPauseP99Seconds float64
	// QueueDepth (with QueueLimit > 0) triggers when the callback
	// reports a queue at or beyond QueueLimit — the serving-layer
	// signal the runtime cannot see.
	QueueDepth func() int
	QueueLimit int

	// Registry, when non-nil, receives the profiler's own metrics
	// (obs_profile_captures_total by reason).
	Registry *Registry
}

// A Capture is one profiling incident: its metadata record is
// persisted as <id>.json beside the profile files, so the ring
// survives restarts and /debug/captures can always explain why each
// capture exists.
type Capture struct {
	ID       string  `json:"id"`
	Time     string  `json:"time"` // RFC 3339, UTC
	Reason   string  `json:"reason"`
	Detail   string  `json:"detail,omitempty"`
	HeapFile string  `json:"heap_file"`
	CPUFile  string  `json:"cpu_file,omitempty"`
	CPUSecs  float64 `json:"cpu_profile_sec,omitempty"`

	// the snapshot that pulled the trigger, for triage without
	// opening the profiles
	HeapBytes  int64   `json:"heap_bytes,omitempty"`
	Goroutines int64   `json:"goroutines,omitempty"`
	GCPauseP99 float64 `json:"gc_pause_p99,omitempty"`
	Queue      int     `json:"queue_depth,omitempty"`
}

// A Profiler owns the capture ring. Nil-safe: a nil profiler ignores
// Consider/Trigger/Mount, so daemons wire it unconditionally.
type Profiler struct {
	cfg      ProfilerConfig
	captures *CounterVec

	mu       sync.Mutex
	ring     []Capture
	seq      int
	lastTrig time.Time
	busy     bool // a CPU profile is running; pprof allows one at a time
	prev     ResourceSnapshot
	havePrev bool

	wg sync.WaitGroup
}

// NewProfiler builds a profiler over cfg.Dir, creating it if needed
// and re-indexing any captures a previous process left there (the
// ring is a disk structure; restarts keep it).
func NewProfiler(cfg ProfilerConfig) (*Profiler, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("obs: ProfilerConfig.Dir is required")
	}
	if cfg.MaxCaptures <= 0 {
		cfg.MaxCaptures = 8
	}
	if cfg.CPUDuration <= 0 {
		cfg.CPUDuration = 5 * time.Second
	}
	if cfg.CPUDuration > time.Minute {
		cfg.CPUDuration = time.Minute
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = time.Minute
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	p := &Profiler{cfg: cfg}
	if cfg.Registry != nil {
		p.captures = cfg.Registry.CounterVec("obs_profile_captures_total",
			"anomaly-triggered pprof captures, by trigger reason", "reason")
	}
	if err := p.reindex(); err != nil {
		return nil, err
	}
	return p, nil
}

// reindex rebuilds the in-memory ring from the <id>.json records on
// disk, oldest first, and resumes the ID sequence past them.
func (p *Profiler) reindex() error {
	entries, err := os.ReadDir(p.cfg.Dir)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		var c Capture
		body, err := os.ReadFile(filepath.Join(p.cfg.Dir, name))
		if err != nil || json.Unmarshal(body, &c) != nil || c.ID == "" {
			continue // foreign or torn record: leave it alone
		}
		p.ring = append(p.ring, c)
		var n int
		if _, err := fmt.Sscanf(c.ID, "cap-%d", &n); err == nil && n > p.seq {
			p.seq = n
		}
	}
	sort.Slice(p.ring, func(i, j int) bool { return p.ring[i].ID < p.ring[j].ID })
	p.evictLocked()
	return nil
}

// Consider feeds one sampler snapshot through the trigger thresholds;
// wire it as the RuntimeSampler's onSample hook. Safe on nil.
func (p *Profiler) Consider(snap ResourceSnapshot) {
	if p == nil {
		return
	}
	p.mu.Lock()
	var rate float64
	if p.havePrev {
		if dt := snap.Time.Sub(p.prev.Time).Seconds(); dt > 0 {
			rate = float64(snap.HeapBytes-p.prev.HeapBytes) / dt
		}
	}
	p.prev, p.havePrev = snap, true
	p.mu.Unlock()

	var reason, detail string
	queue := 0
	switch {
	case p.cfg.HeapGrowthBytesPerSec > 0 && rate > p.cfg.HeapGrowthBytesPerSec:
		reason = "heap-growth"
		detail = fmt.Sprintf("heap growing %.0f B/s (threshold %.0f)", rate, p.cfg.HeapGrowthBytesPerSec)
	case p.cfg.GCPauseP99Seconds > 0 && snap.GCPauseP99 > p.cfg.GCPauseP99Seconds:
		reason = "gc-pause"
		detail = fmt.Sprintf("GC pause p99 %.4fs (threshold %.4fs)", snap.GCPauseP99, p.cfg.GCPauseP99Seconds)
	case p.cfg.QueueDepth != nil && p.cfg.QueueLimit > 0:
		if queue = p.cfg.QueueDepth(); queue >= p.cfg.QueueLimit {
			reason = "queue-depth"
			detail = fmt.Sprintf("queue depth %d (threshold %d)", queue, p.cfg.QueueLimit)
		}
	}
	if reason == "" {
		return
	}
	c := captureMeta(snap)
	c.Queue = queue
	p.trigger(reason, detail, c)
}

func captureMeta(snap ResourceSnapshot) Capture {
	return Capture{
		HeapBytes:  snap.HeapBytes,
		Goroutines: snap.Goroutines,
		GCPauseP99: snap.GCPauseP99,
	}
}

// Trigger fires a manual capture (the POST /debug/captures path, and
// what smoke tests use to make capture presence deterministic). Safe
// on nil. Returns the capture metadata, or an error if rate-limited
// or busy.
func (p *Profiler) Trigger(reason string) (Capture, error) {
	if p == nil {
		return Capture{}, fmt.Errorf("obs: profiler disabled")
	}
	if reason == "" {
		reason = "manual"
	}
	return p.trigger(reason, "", captureMeta(ReadResources()))
}

// trigger runs the capture if the cooldown has elapsed and no capture
// is in flight: heap profile synchronously (cheap, and the caller
// wants the anomaly's heap, not the recovered one), CPU profile in a
// background goroutine for cfg.CPUDuration.
func (p *Profiler) trigger(reason, detail string, c Capture) (Capture, error) {
	p.mu.Lock()
	now := time.Now()
	if p.busy {
		p.mu.Unlock()
		return Capture{}, fmt.Errorf("obs: capture already in flight")
	}
	if !p.lastTrig.IsZero() && now.Sub(p.lastTrig) < p.cfg.Cooldown {
		p.mu.Unlock()
		return Capture{}, fmt.Errorf("obs: capture cooldown (%s remaining)",
			(p.cfg.Cooldown - now.Sub(p.lastTrig)).Round(time.Millisecond))
	}
	p.busy = true
	p.lastTrig = now
	p.seq++
	c.ID = fmt.Sprintf("cap-%06d", p.seq)
	p.mu.Unlock()

	c.Time = now.UTC().Format(time.RFC3339Nano)
	c.Reason = reason
	c.Detail = detail
	c.HeapFile = c.ID + ".heap.pb.gz"
	c.CPUFile = c.ID + ".cpu.pb.gz"
	c.CPUSecs = p.cfg.CPUDuration.Seconds()

	if err := p.writeHeap(filepath.Join(p.cfg.Dir, c.HeapFile)); err != nil {
		p.mu.Lock()
		p.busy = false
		p.mu.Unlock()
		return Capture{}, err
	}
	p.captures.With(reason).Inc()

	// Index the capture now (with the CPU profile still in flight) so
	// /debug/captures reflects the incident immediately.
	p.mu.Lock()
	p.ring = append(p.ring, c)
	p.evictLocked()
	p.mu.Unlock()
	p.persistMeta(c)

	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		if err := p.writeCPU(filepath.Join(p.cfg.Dir, c.CPUFile), p.cfg.CPUDuration); err != nil {
			fmt.Fprintf(os.Stderr, "obs: cpu profile %s: %v\n", c.ID, err)
		}
		p.mu.Lock()
		p.busy = false
		p.mu.Unlock()
	}()
	return c, nil
}

func (p *Profiler) writeHeap(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	defer f.Close()
	// debug=0 writes the gzipped protobuf form `go tool pprof` reads.
	if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return nil
}

func (p *Profiler) writeCPU(path string, d time.Duration) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pprof.StartCPUProfile(f); err != nil {
		// Another CPU profile (e.g. net/http/pprof) is running; keep
		// the heap capture, drop the CPU leg.
		os.Remove(path)
		return err
	}
	time.Sleep(d)
	pprof.StopCPUProfile()
	return nil
}

// persistMeta writes the capture's <id>.json record (best-effort: an
// unwritable record only costs restart continuity).
func (p *Profiler) persistMeta(c Capture) {
	body, err := json.MarshalIndent(c, "", "  ")
	if err == nil {
		err = os.WriteFile(filepath.Join(p.cfg.Dir, c.ID+".json"), append(body, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "obs: capture meta %s: %v\n", c.ID, err)
	}
}

// evictLocked trims the ring to MaxCaptures, deleting the evicted
// captures' files. p.mu must be held.
func (p *Profiler) evictLocked() {
	for len(p.ring) > p.cfg.MaxCaptures {
		old := p.ring[0]
		p.ring = p.ring[1:]
		for _, name := range []string{old.ID + ".json", old.HeapFile, old.CPUFile} {
			if name != "" {
				os.Remove(filepath.Join(p.cfg.Dir, name))
			}
		}
	}
}

// Captures returns the ring's captures, oldest first. Safe on nil.
func (p *Profiler) Captures() []Capture {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Capture(nil), p.ring...)
}

// Close waits for any in-flight CPU profile to finish. Safe on nil.
func (p *Profiler) Close() {
	if p == nil {
		return
	}
	p.wg.Wait()
}

// Mount registers the capture endpoints on mux: GET /debug/captures
// (JSON listing, newest last), POST /debug/captures (manual trigger,
// optional ?reason=), GET /debug/captures/<file> (profile download).
// Safe on nil (mounts nothing).
func (p *Profiler) Mount(mux *http.ServeMux) {
	if p == nil {
		return
	}
	mux.HandleFunc("/debug/captures", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			list := p.Captures()
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(map[string]any{"total": len(list), "captures": list})
		case http.MethodPost:
			c, err := p.Trigger(r.URL.Query().Get("reason"))
			if err != nil {
				http.Error(w, err.Error(), http.StatusTooManyRequests)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(c)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/debug/captures/", func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, "/debug/captures/")
		// Serve only files the ring indexes: no traversal, no foreign
		// files, evicted captures 404.
		for _, c := range p.Captures() {
			if name == c.HeapFile || (c.CPUFile != "" && name == c.CPUFile) || name == c.ID+".json" {
				http.ServeFile(w, r, filepath.Join(p.cfg.Dir, name))
				return
			}
		}
		http.Error(w, "no such capture", http.StatusNotFound)
	})
}
