package routing

// Golden tests for the orbit-reduced scan: bit-identical Stats against
// full enumeration over the whole catalog (sequential, parallel, and
// checkpointed), checkpoint interoperability between the two modes,
// rejection of corrupted routings, deterministic failure reporting,
// constant allocation count, and the orbit-group metric.

import (
	"fmt"
	"math"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/obs"
)

// orbitRouter clones r's configuration into a router with orbit
// reduction enabled (stage-2 kernel by default, stage 1 when stage1 is
// set), sharing the graph and matching.
func orbitRouter(t *testing.T, r *Router, stage1 bool) *Router {
	t.Helper()
	ro, err := NewRouterWithMatching(r.G, r.BM)
	if err != nil {
		t.Fatal(err)
	}
	ro.AdjacencySampleStride = r.AdjacencySampleStride
	ro.OrbitReduction = true
	ro.OrbitStage1 = stage1
	return ro
}

// orbitStages names the two orbit kernels for subtest sweeps.
func orbitStages() []struct {
	name   string
	stage1 bool
} {
	return []struct {
		name   string
		stage1 bool
	}{
		{"stage1", true},
		{"stage2", false},
	}
}

// TestOrbitStatsBitIdentical is the golden equivalence of the orbit
// layer: for every catalog algorithm, depth, and orbit kernel stage,
// the orbit-reduced verifiers must produce Stats bit-identical (Elapsed
// aside) to full enumeration — sequentially, at every equivalence
// worker count, and through the checkpointed engine.
func TestOrbitStatsBitIdentical(t *testing.T) {
	for _, c := range kernelCatalog() {
		for k := 1; k <= c.maxK; k++ {
			r := mustRouter(t, c.alg, k)
			want, err := r.VerifyFullRouting()
			if err != nil {
				t.Fatalf("%s k=%d full: %v", c.alg.Name, k, err)
			}
			want.Elapsed = 0
			for _, stage := range orbitStages() {
				ro := orbitRouter(t, r, stage.stage1)
				got, err := ro.VerifyFullRouting()
				if err != nil {
					t.Fatalf("%s k=%d %s: %v", c.alg.Name, k, stage.name, err)
				}
				got.Elapsed = 0
				if got != want {
					t.Fatalf("%s k=%d %s sequential:\norbit %+v\nfull  %+v", c.alg.Name, k, stage.name, got, want)
				}
				for _, w := range equivalenceWorkers() {
					par, err := ro.VerifyFullRoutingParallel(w)
					if err != nil {
						t.Fatalf("%s k=%d %s workers=%d: %v", c.alg.Name, k, stage.name, w, err)
					}
					par.Elapsed = 0
					if par != want {
						t.Fatalf("%s k=%d %s workers=%d:\norbit %+v\nfull  %+v", c.alg.Name, k, stage.name, w, par, want)
					}
				}
				ckPath := filepath.Join(t.TempDir(), fmt.Sprintf("%s-k%d-%s.ckpt", c.alg.Name, k, stage.name))
				ck, err := ro.VerifyFullRoutingCheckpointed(2, CheckpointConfig{Path: ckPath})
				if err != nil {
					t.Fatalf("%s k=%d %s checkpointed: %v", c.alg.Name, k, stage.name, err)
				}
				ck.Elapsed = 0
				if ck != want {
					t.Fatalf("%s k=%d %s checkpointed:\norbit %+v\nfull  %+v", c.alg.Name, k, stage.name, ck, want)
				}
			}
		}
	}
}

// TestOrbitCheckpointInterop pins shard-level equivalence: because the
// orbit kernels produce bit-identical per-shard contributions, a run
// paused in any of the three modes (full, stage-1 orbit, stage-2
// orbit) must resume cleanly under any other and still match an
// uninterrupted run.
func TestOrbitCheckpointInterop(t *testing.T) {
	r := mustRouter(t, bilinear.Strassen(), 3) // 128 rows
	want, err := r.VerifyFullRouting()
	if err != nil {
		t.Fatal(err)
	}
	want.Elapsed = 0
	ro1 := orbitRouter(t, r, true)
	ro2 := orbitRouter(t, r, false)
	for _, legs := range []struct {
		name          string
		first, second *Router
	}{
		{"full-then-stage2", r, ro2},
		{"stage2-then-full", ro2, r},
		{"full-then-stage1", r, ro1},
		{"stage1-then-stage2", ro1, ro2},
		{"stage2-then-stage1", ro2, ro1},
	} {
		path := filepath.Join(t.TempDir(), "interop.ckpt")
		_, err := legs.first.VerifyFullRoutingCheckpointed(2, CheckpointConfig{
			Path: path, ShardRows: 16, MaxShards: 3,
		})
		if err == nil {
			t.Fatalf("%s: first leg completed instead of pausing", legs.name)
		}
		st, err := legs.second.VerifyFullRoutingCheckpointed(3, CheckpointConfig{
			Path: path, ShardRows: 16, Resume: true,
		})
		if err != nil {
			t.Fatalf("%s: resume: %v", legs.name, err)
		}
		st.Elapsed = 0
		if st != want {
			t.Fatalf("%s:\nmixed-mode   %+v\nuninterrupted %+v", legs.name, st, want)
		}
	}
}

// TestOrbitRejectsCorruptMatching is the negative test: both orbit
// kernels must still reject a corrupted routing, and — because the
// worker that owns the earliest erroneous row always reaches that
// row's first error in scan order — report the same error at every
// worker count.
func TestOrbitRejectsCorruptMatching(t *testing.T) {
	for _, stage := range orbitStages() {
		t.Run(stage.name, func(t *testing.T) {
			r := corruptRouter(t, 3)
			r.OrbitReduction = true
			r.OrbitStage1 = stage.stage1
			_, seqErr := r.VerifyFullRouting()
			if seqErr == nil {
				t.Fatal("orbit-reduced verifier accepted a corrupted matching")
			}
			for _, w := range equivalenceWorkers() {
				for trial := 0; trial < 3; trial++ {
					_, parErr := r.VerifyFullRoutingParallel(w)
					if parErr == nil {
						t.Fatalf("workers=%d: corrupted matching accepted", w)
					}
					if parErr.Error() != seqErr.Error() {
						t.Fatalf("workers=%d trial %d:\nparallel   %v\nsequential %v", w, trial, parErr, seqErr)
					}
				}
			}
		})
	}
}

// TestOrbitScanConstantAllocs pins the hot loop's allocation behavior:
// one scan over all 512 Strassen k=2 paths must cost only the fixed
// per-call buffers (accumulators, scratch, stamp vector) — far fewer
// allocations than paths, so the per-path and per-orbit loops are
// allocation-free.
func TestOrbitScanConstantAllocs(t *testing.T) {
	r := mustRouter(t, bilinear.Strassen(), 2)
	r.OrbitReduction = true
	r.G.EnsureAdjacencyIndex()
	r.G.EnsureMetaRootIndex()
	rows := r.numRows()
	kernels := []struct {
		name string
		scan func(w, workers int, rowLo, rowHi int64, earliestErr *atomic.Int64, out *workerState)
	}{
		{"stage1", r.scanRowsOrbit},
		{"stage2", r.scanRowsOrbit2},
	}
	for _, kern := range kernels {
		t.Run(kern.name, func(t *testing.T) {
			var earliestErr atomic.Int64
			allocs := testing.AllocsPerRun(5, func() {
				earliestErr.Store(math.MaxInt64)
				var ws workerState
				kern.scan(0, 1, 0, rows, &earliestErr, &ws)
				if ws.err != nil {
					t.Fatal(ws.err)
				}
				if ws.numPaths != 512 {
					t.Fatalf("scanned %d paths, want 512", ws.numPaths)
				}
			})
			if allocs > 24 {
				t.Fatalf("orbit scan of 512 paths: %v allocs/run, want the fixed per-call buffers only (≤ 24)", allocs)
			}
		})
	}
}

// TestOrbitGroupsMetric checks the orbit-group and shared-chain-family
// counters: an orbit run over G_k collapses 2aᵏn₀ᵏ orbits; the stage-2
// kernel additionally aggregates them into 2aᵏ families (one per
// (side, input) row), while stage 1 and full enumeration report no
// families.
func TestOrbitGroupsMetric(t *testing.T) {
	r := mustRouter(t, bilinear.Strassen(), 2)
	r.Obs = NewInstruments(obs.NewRegistry())
	if _, err := r.VerifyFullRouting(); err != nil {
		t.Fatal(err)
	}
	if got := r.Obs.OrbitGroups.Value(); got != 0 {
		t.Fatalf("full enumeration reported %d orbit groups, want 0", got)
	}
	if got := r.Obs.OrbitFamilies.Value(); got != 0 {
		t.Fatalf("full enumeration reported %d shared-chain families, want 0", got)
	}
	for _, stage := range orbitStages() {
		ro := orbitRouter(t, r, stage.stage1)
		ro.Obs = NewInstruments(obs.NewRegistry())
		if _, err := ro.VerifyFullRouting(); err != nil {
			t.Fatal(err)
		}
		wantGroups := 2 * ro.powA[ro.k] * ro.powN[ro.k] // 2·16·4 at Strassen k=2
		if got := ro.Obs.OrbitGroups.Value(); got != wantGroups {
			t.Fatalf("%s orbit run reported %d groups, want %d", stage.name, got, wantGroups)
		}
		wantFamilies := int64(0)
		if !stage.stage1 {
			wantFamilies = 2 * ro.powA[ro.k] // one per (side, input) row
		}
		if got := ro.Obs.OrbitFamilies.Value(); got != wantFamilies {
			t.Fatalf("%s orbit run reported %d families, want %d", stage.name, got, wantFamilies)
		}
		if got := ro.Obs.Paths.Value(); got != 2*ro.powA[ro.k]*ro.powA[ro.k] {
			t.Fatalf("%s orbit run reported %d paths, want %d", stage.name, got, 2*ro.powA[ro.k]*ro.powA[ro.k])
		}
	}
}

// TestOrbitProgressFinalSnapshots extends the final-snapshot contract
// of TestProgressReporting to the orbit scan: every worker emits a
// terminal snapshot even when it finishes far below the chunk cadence,
// and the finals sum to the run's path count.
func TestOrbitProgressFinalSnapshots(t *testing.T) {
	for _, stage := range orbitStages() {
		t.Run(stage.name, func(t *testing.T) {
			r := mustRouter(t, bilinear.Strassen(), 2)
			r.OrbitReduction = true
			r.OrbitStage1 = stage.stage1
			var mu sync.Mutex
			finals := make(map[int]Progress)
			r.Progress = func(p Progress) {
				mu.Lock()
				defer mu.Unlock()
				if p.Final {
					finals[p.Worker] = p
				}
			}
			st, err := r.VerifyFullRoutingParallel(4)
			if err != nil {
				t.Fatal(err)
			}
			r.Progress = nil
			if len(finals) != 4 {
				t.Fatalf("%d final snapshots, want 4", len(finals))
			}
			var done int64
			for w, p := range finals {
				if p.Done != p.Total {
					t.Errorf("worker %d: final Done %d != Total %d", w, p.Done, p.Total)
				}
				if p.PeakVertexHits <= 0 || p.PeakVertexHits > st.MaxVertexHits {
					t.Errorf("worker %d: peak %d outside (0, %d]", w, p.PeakVertexHits, st.MaxVertexHits)
				}
				done += p.Done
			}
			if done != st.NumPaths {
				t.Errorf("workers report %d paths, stats report %d", done, st.NumPaths)
			}
		})
	}
}
