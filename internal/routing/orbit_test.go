package routing

// Golden tests for the orbit-reduced scan: bit-identical Stats against
// full enumeration over the whole catalog (sequential, parallel, and
// checkpointed), checkpoint interoperability between the two modes,
// rejection of corrupted routings, deterministic failure reporting,
// constant allocation count, and the orbit-group metric.

import (
	"fmt"
	"math"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/obs"
)

// orbitRouter clones r's configuration into a router with orbit
// reduction enabled, sharing the graph and matching.
func orbitRouter(t *testing.T, r *Router) *Router {
	t.Helper()
	ro, err := NewRouterWithMatching(r.G, r.BM)
	if err != nil {
		t.Fatal(err)
	}
	ro.AdjacencySampleStride = r.AdjacencySampleStride
	ro.OrbitReduction = true
	return ro
}

// TestOrbitStatsBitIdentical is the golden equivalence of the orbit
// layer: for every catalog algorithm and depth, the orbit-reduced
// verifiers must produce Stats bit-identical (Elapsed aside) to full
// enumeration — sequentially, at every equivalence worker count, and
// through the checkpointed engine.
func TestOrbitStatsBitIdentical(t *testing.T) {
	for _, c := range kernelCatalog() {
		for k := 1; k <= c.maxK; k++ {
			r := mustRouter(t, c.alg, k)
			want, err := r.VerifyFullRouting()
			if err != nil {
				t.Fatalf("%s k=%d full: %v", c.alg.Name, k, err)
			}
			want.Elapsed = 0
			ro := orbitRouter(t, r)
			got, err := ro.VerifyFullRouting()
			if err != nil {
				t.Fatalf("%s k=%d orbit: %v", c.alg.Name, k, err)
			}
			got.Elapsed = 0
			if got != want {
				t.Fatalf("%s k=%d sequential:\norbit %+v\nfull  %+v", c.alg.Name, k, got, want)
			}
			for _, w := range equivalenceWorkers() {
				par, err := ro.VerifyFullRoutingParallel(w)
				if err != nil {
					t.Fatalf("%s k=%d workers=%d: %v", c.alg.Name, k, w, err)
				}
				par.Elapsed = 0
				if par != want {
					t.Fatalf("%s k=%d workers=%d:\norbit %+v\nfull  %+v", c.alg.Name, k, w, par, want)
				}
			}
			ckPath := filepath.Join(t.TempDir(), fmt.Sprintf("%s-k%d.ckpt", c.alg.Name, k))
			ck, err := ro.VerifyFullRoutingCheckpointed(2, CheckpointConfig{Path: ckPath})
			if err != nil {
				t.Fatalf("%s k=%d checkpointed: %v", c.alg.Name, k, err)
			}
			ck.Elapsed = 0
			if ck != want {
				t.Fatalf("%s k=%d checkpointed:\norbit %+v\nfull  %+v", c.alg.Name, k, ck, want)
			}
		}
	}
}

// TestOrbitCheckpointInterop pins shard-level equivalence: because the
// orbit scan produces bit-identical per-shard contributions, a run
// paused in one mode must resume cleanly under the other — in both
// directions — and still match an uninterrupted run.
func TestOrbitCheckpointInterop(t *testing.T) {
	r := mustRouter(t, bilinear.Strassen(), 3) // 128 rows
	want, err := r.VerifyFullRouting()
	if err != nil {
		t.Fatal(err)
	}
	want.Elapsed = 0
	ro := orbitRouter(t, r)
	for _, legs := range []struct {
		name          string
		first, second *Router
	}{
		{"full-then-orbit", r, ro},
		{"orbit-then-full", ro, r},
	} {
		path := filepath.Join(t.TempDir(), "interop.ckpt")
		_, err := legs.first.VerifyFullRoutingCheckpointed(2, CheckpointConfig{
			Path: path, ShardRows: 16, MaxShards: 3,
		})
		if err == nil {
			t.Fatalf("%s: first leg completed instead of pausing", legs.name)
		}
		st, err := legs.second.VerifyFullRoutingCheckpointed(3, CheckpointConfig{
			Path: path, ShardRows: 16, Resume: true,
		})
		if err != nil {
			t.Fatalf("%s: resume: %v", legs.name, err)
		}
		st.Elapsed = 0
		if st != want {
			t.Fatalf("%s:\nmixed-mode   %+v\nuninterrupted %+v", legs.name, st, want)
		}
	}
}

// TestOrbitRejectsCorruptMatching is the negative test: orbit reduction
// must still reject a corrupted routing, and — because the worker that
// owns the earliest erroneous row always reaches that row's first
// error in scan order — report the same error at every worker count.
func TestOrbitRejectsCorruptMatching(t *testing.T) {
	r := corruptRouter(t, 3)
	r.OrbitReduction = true
	_, seqErr := r.VerifyFullRouting()
	if seqErr == nil {
		t.Fatal("orbit-reduced verifier accepted a corrupted matching")
	}
	for _, w := range equivalenceWorkers() {
		for trial := 0; trial < 3; trial++ {
			_, parErr := r.VerifyFullRoutingParallel(w)
			if parErr == nil {
				t.Fatalf("workers=%d: corrupted matching accepted", w)
			}
			if parErr.Error() != seqErr.Error() {
				t.Fatalf("workers=%d trial %d:\nparallel   %v\nsequential %v", w, trial, parErr, seqErr)
			}
		}
	}
}

// TestOrbitScanConstantAllocs pins the hot loop's allocation behavior:
// one scan over all 512 Strassen k=2 paths must cost only the fixed
// per-call buffers (accumulators, scratch, stamp vector) — far fewer
// allocations than paths, so the per-path and per-orbit loops are
// allocation-free.
func TestOrbitScanConstantAllocs(t *testing.T) {
	r := mustRouter(t, bilinear.Strassen(), 2)
	r.OrbitReduction = true
	r.G.EnsureAdjacencyIndex()
	r.G.EnsureMetaRootIndex()
	rows := r.numRows()
	var earliestErr atomic.Int64
	allocs := testing.AllocsPerRun(5, func() {
		earliestErr.Store(math.MaxInt64)
		var ws workerState
		r.scanRowsOrbit(0, 1, 0, rows, &earliestErr, &ws)
		if ws.err != nil {
			t.Fatal(ws.err)
		}
		if ws.numPaths != 512 {
			t.Fatalf("scanned %d paths, want 512", ws.numPaths)
		}
	})
	if allocs > 24 {
		t.Fatalf("orbit scan of 512 paths: %v allocs/run, want the fixed per-call buffers only (≤ 24)", allocs)
	}
}

// TestOrbitGroupsMetric checks the orbit-group counter: an orbit run
// over G_k collapses 2aᵏn₀ᵏ orbits; a full run reports none.
func TestOrbitGroupsMetric(t *testing.T) {
	r := mustRouter(t, bilinear.Strassen(), 2)
	r.Obs = NewInstruments(obs.NewRegistry())
	if _, err := r.VerifyFullRouting(); err != nil {
		t.Fatal(err)
	}
	if got := r.Obs.OrbitGroups.Value(); got != 0 {
		t.Fatalf("full enumeration reported %d orbit groups, want 0", got)
	}
	ro := orbitRouter(t, r)
	ro.Obs = NewInstruments(obs.NewRegistry())
	if _, err := ro.VerifyFullRouting(); err != nil {
		t.Fatal(err)
	}
	wantGroups := 2 * ro.powA[ro.k] * ro.powN[ro.k] // 2·16·4 at Strassen k=2
	if got := ro.Obs.OrbitGroups.Value(); got != wantGroups {
		t.Fatalf("orbit run reported %d groups, want %d", got, wantGroups)
	}
	if got := ro.Obs.Paths.Value(); got != 2*ro.powA[ro.k]*ro.powA[ro.k] {
		t.Fatalf("orbit run reported %d paths, want %d", got, 2*ro.powA[ro.k]*ro.powA[ro.k])
	}
}

// TestOrbitProgressFinalSnapshots extends the final-snapshot contract
// of TestProgressReporting to the orbit scan: every worker emits a
// terminal snapshot even when it finishes far below the chunk cadence,
// and the finals sum to the run's path count.
func TestOrbitProgressFinalSnapshots(t *testing.T) {
	r := mustRouter(t, bilinear.Strassen(), 2)
	r.OrbitReduction = true
	var mu sync.Mutex
	finals := make(map[int]Progress)
	r.Progress = func(p Progress) {
		mu.Lock()
		defer mu.Unlock()
		if p.Final {
			finals[p.Worker] = p
		}
	}
	st, err := r.VerifyFullRoutingParallel(4)
	if err != nil {
		t.Fatal(err)
	}
	r.Progress = nil
	if len(finals) != 4 {
		t.Fatalf("%d final snapshots, want 4", len(finals))
	}
	var done int64
	for w, p := range finals {
		if p.Done != p.Total {
			t.Errorf("worker %d: final Done %d != Total %d", w, p.Done, p.Total)
		}
		if p.PeakVertexHits <= 0 || p.PeakVertexHits > st.MaxVertexHits {
			t.Errorf("worker %d: peak %d outside (0, %d]", w, p.PeakVertexHits, st.MaxVertexHits)
		}
		done += p.Done
	}
	if done != st.NumPaths {
		t.Errorf("workers report %d paths, stats report %d", done, st.NumPaths)
	}
}
