package routing

import (
	"testing"

	"pathrouting/internal/bilinear"
)

func TestGreedyMatchingLoadExceedsHall(t *testing.T) {
	// The greedy assignment ignores the n₀ capacity; on Strassen it
	// overloads popular products beyond n₀ (M1 and the identity-like
	// products attract many dependencies).
	alg := bilinear.Strassen()
	greedy, err := GreedyBaseMatching(alg)
	if err != nil {
		t.Fatal(err)
	}
	hall, err := NewBaseMatching(alg)
	if err != nil {
		t.Fatal(err)
	}
	if hall.MaxProductLoad() > alg.N0 {
		t.Errorf("Hall matching load %d > n₀", hall.MaxProductLoad())
	}
	if greedy.MaxProductLoad() <= alg.N0 {
		t.Skipf("greedy happened to respect capacity (load %d); ablation uninformative here", greedy.MaxProductLoad())
	}
	if greedy.MaxProductLoad() <= hall.MaxProductLoad() {
		t.Errorf("greedy load %d not above Hall load %d", greedy.MaxProductLoad(), hall.MaxProductLoad())
	}
}

func TestCompareMatchingsStrassen(t *testing.T) {
	cmp, err := CompareMatchings(bilinear.Strassen(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if int64(cmp.HallMaxHits) > cmp.Bound {
		t.Errorf("Hall routing exceeds bound: %+v", cmp)
	}
	if cmp.HallLoad > 2 {
		t.Errorf("Hall load %d > n₀", cmp.HallLoad)
	}
	// The greedy variant's hits must be at least the Hall variant's
	// (it concentrates chains); whether it breaks the 6aᵏ bound is
	// algorithm-dependent and reported, not asserted.
	if cmp.GreedyFailed == "" && cmp.GreedyHits < cmp.HallMaxHits {
		t.Errorf("greedy hits %d below Hall hits %d", cmp.GreedyHits, cmp.HallMaxHits)
	}
	t.Logf("ablation: %+v", cmp)
}

func TestCompareMatchingsAcrossCatalog(t *testing.T) {
	for _, alg := range []*bilinear.Algorithm{bilinear.Winograd(), bilinear.Classical(2)} {
		cmp, err := CompareMatchings(alg, 2)
		if err != nil {
			t.Errorf("%s: %v", alg.Name, err)
			continue
		}
		if int64(cmp.HallMaxHits) > cmp.Bound {
			t.Errorf("%s: Hall routing exceeds bound", alg.Name)
		}
	}
}
