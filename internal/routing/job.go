package routing

// Job-shaped entry point and content-addressed cache keys for the
// verification service (internal/serve, cmd/routed). A job is the
// whole pipeline a service request needs — build G_k, compute the
// base matching, run the checkpointed Routing Theorem verifier — in
// one call, parameterized exactly by the fields a client can submit.
// CacheKey hashes those parameters (with the algorithm identified by
// the content of its bilinear specification, not its name) so two
// requests asking for the same certificate collide on the same key
// regardless of how their algorithm objects were constructed.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"strconv"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/cdag"
	"pathrouting/internal/obs"
	"pathrouting/internal/rat"
)

// Kernel names accepted by JobConfig and CacheKey: the allocation-free
// scratch kernel (the default) and the seed kernel kept as the A9
// ablation baseline.
const (
	KernelScratch = "scratch"
	KernelSeed    = "seed"
)

// JobConfig is one full-routing verification job: everything a
// service request specifies, plus the run-local plumbing (checkpoint
// path, callbacks, stop channel) its executor wires in.
type JobConfig struct {
	// Alg is the algorithm whose G_k is verified (required).
	Alg *bilinear.Algorithm
	// K is the recursion depth (required, ≥ 1).
	K int
	// Workers is the verifier goroutine count — the job's worker
	// budget (0 = GOMAXPROCS).
	Workers int
	// AdjStride samples every Nth path for edge-by-edge adjacency
	// verification (0 = the engine default, 1 = every path).
	AdjStride int64
	// Kernel selects the enumeration kernel: KernelScratch (default,
	// also for "") or KernelSeed.
	Kernel string
	// Orbits enables the orbit-reduced scan (bit-identical Stats,
	// ~n₀ᵏ-fold less chain work). Ignored under KernelSeed, which
	// keeps the seed ablation a pure baseline.
	Orbits bool

	// CheckpointPath is the job's checkpoint file (required): jobs
	// always run checkpointed so a killed executor resumes them.
	CheckpointPath string
	// ShardRows, FlushEvery, Resume, Stop, and OnShard pass through to
	// CheckpointConfig (see there). Executors should pass Resume
	// unconditionally: a missing checkpoint starts fresh.
	ShardRows  int64
	FlushEvery int
	Resume     bool
	Stop       <-chan struct{}
	OnShard    func(ShardDone)
	// Progress and Obs pass through to the Router (see there).
	Progress func(Progress)
	Obs      *Instruments
}

// validKernel reports whether name selects a kernel ("" = scratch).
func validKernel(name string) bool {
	return name == "" || name == KernelScratch || name == KernelSeed
}

// RunJob executes one verification job end to end: it builds G_k,
// computes the base matching, and runs the checkpointed Routing
// Theorem verifier with cfg's options. The error surface is the union
// of construction errors, ErrPaused (stopped via cfg.Stop or an
// executor's shard budget), and the verifier's violation errors.
//
// ctx carries the job's trace identity (obs.WithTraceContext): when
// present, cfg.Obs is derived per job so every span, heartbeat, and
// metric flush the engine emits carries the trace and job IDs, and
// the whole run is wrapped in a `job_run` span. ctx is observability
// plumbing only — cancellation still flows through cfg.Stop, which
// drains to a durable checkpoint instead of aborting mid-shard.
func RunJob(ctx context.Context, cfg JobConfig) (Stats, error) {
	if cfg.Alg == nil {
		return Stats{}, fmt.Errorf("routing: job has no algorithm")
	}
	if !validKernel(cfg.Kernel) {
		return Stats{}, fmt.Errorf("routing: unknown kernel %q (want %q or %q)",
			cfg.Kernel, KernelScratch, KernelSeed)
	}
	in := cfg.Obs
	if tc := obs.TraceContextFrom(ctx); !tc.IsZero() {
		in = in.WithJob(tc)
	}
	span := in.startSpan("job_run")
	span.SetAttr("alg", cfg.Alg.Name)
	span.SetAttr("k", strconv.Itoa(cfg.K))
	kernel := cfg.Kernel
	if kernel == "" {
		kernel = KernelScratch
	}
	span.SetAttr("kernel", kernel)
	// Cost attribution: snapshot cumulative process CPU and allocation
	// before the run so the span (and the serving layer, via the same
	// deltas) can report what this leg of the job cost. Process-wide
	// deltas are exact when jobs run one at a time (the service's
	// Concurrency default) and an upper bound otherwise.
	before := obs.ReadResources()
	defer func() {
		after := obs.ReadResources()
		span.SetAttr("cpu_sec", strconv.FormatFloat(after.CPUSeconds-before.CPUSeconds, 'f', 3, 64))
		span.SetAttr("alloc_bytes", strconv.FormatInt(after.AllocBytes-before.AllocBytes, 10))
		span.End()
	}()

	g, err := cdag.New(cfg.Alg, cfg.K)
	if err != nil {
		return Stats{}, err
	}
	r, err := NewRouter(g)
	if err != nil {
		return Stats{}, err
	}
	r.AdjacencySampleStride = cfg.AdjStride
	r.SeedEnumeration = cfg.Kernel == KernelSeed
	r.OrbitReduction = cfg.Orbits
	r.Progress = cfg.Progress
	r.Obs = in
	stats, err := r.VerifyFullRoutingCheckpointed(cfg.Workers, CheckpointConfig{
		Path:       cfg.CheckpointPath,
		ShardRows:  cfg.ShardRows,
		FlushEvery: cfg.FlushEvery,
		Resume:     cfg.Resume,
		Stop:       cfg.Stop,
		OnShard:    cfg.OnShard,
	})
	switch {
	case err == nil:
		span.SetAttr("paths", strconv.FormatInt(stats.NumPaths, 10))
	case errors.Is(err, ErrPaused):
		span.SetAttr("paused", "true")
	default:
		span.SetAttr("error", err.Error())
	}
	return stats, err
}

// AlgorithmHash returns a stable hex digest of alg's complete
// bilinear specification: n₀, b, and every U/V/W coefficient in
// lowest terms. The Name is deliberately excluded — the hash is
// content-addressed, so two differently-named but coefficient-equal
// algorithms produce (and may share) the same certificates.
func AlgorithmHash(alg *bilinear.Algorithm) string {
	h := sha256.New()
	fmt.Fprintf(h, "bilinear n0=%d b=%d\n", alg.N0, alg.B())
	writeMat := func(name string, m [][]rat.Rat) {
		io.WriteString(h, name)
		for _, row := range m {
			for _, c := range row {
				io.WriteString(h, " ")
				io.WriteString(h, c.String())
			}
			io.WriteString(h, "\n")
		}
	}
	writeMat("U", alg.U)
	writeMat("V", alg.V)
	writeMat("W", alg.W)
	return hex.EncodeToString(h.Sum(nil))
}

// CacheKey returns the content-addressed result-cache key of a job:
// equal keys guarantee bit-identical Stats certificates, because the
// key covers everything the deterministic verifier's output depends
// on — the algorithm's coefficients, k, the kernel, the effective
// adjacency stride (0 normalizes to the engine default, so "default"
// and "explicit 257" collide as they should), and the orbit flag
// (normalized off under the seed kernel, which ignores it). Shard
// geometry, worker count, and resume history are excluded: they
// cannot change the certificate.
func CacheKey(alg *bilinear.Algorithm, k int, kernel string, adjStride int64, orbits bool) string {
	if adjStride <= 0 {
		adjStride = defaultAdjacencyStride
	}
	if kernel == "" {
		kernel = KernelScratch
	}
	if kernel == KernelSeed {
		orbits = false // SeedEnumeration takes precedence in the Router
	}
	sum := sha256.Sum256([]byte(fmt.Sprintf("job alg=%s k=%d kernel=%s adjstride=%d orbits=%t",
		AlgorithmHash(alg), k, kernel, adjStride, orbits)))
	return hex.EncodeToString(sum[:])
}

// CacheKey returns cfg's content-addressed result-cache key.
func (cfg JobConfig) CacheKey() string {
	return CacheKey(cfg.Alg, cfg.K, cfg.Kernel, cfg.AdjStride, cfg.Orbits)
}
