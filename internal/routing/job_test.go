package routing

// Tests for the job-shaped entry point and the content-addressed
// cache keys the verification service builds on: RunJob must match
// the underlying verifiers bit for bit, CacheKey must collide exactly
// when certificates are guaranteed identical, and the Stop channel
// must drain a run into a resumable checkpoint.

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"pathrouting/internal/bilinear"
)

// TestRunJobMatchesVerifier: the job pipeline (graph + matching +
// checkpointed verify in one call) reports Stats bit-identical to the
// directly-driven verifier.
func TestRunJobMatchesVerifier(t *testing.T) {
	r := mustRouter(t, bilinear.Strassen(), 2)
	want, err := r.VerifyFullRoutingParallel(2)
	if err != nil {
		t.Fatal(err)
	}
	want.Elapsed = 0

	var shards int
	st, err := RunJob(context.Background(), JobConfig{
		Alg: bilinear.Strassen(), K: 2, Workers: 2,
		CheckpointPath: filepath.Join(t.TempDir(), "job.ckpt"),
		Resume:         true,
		OnShard:        func(ShardDone) { shards++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	st.Elapsed = 0
	if st != want {
		t.Fatalf("RunJob stats %+v, verifier %+v", st, want)
	}
	if shards == 0 {
		t.Fatal("OnShard never called")
	}
}

// TestRunJobValidation: construction errors surface before any
// enumeration runs.
func TestRunJobValidation(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "job.ckpt")
	if _, err := RunJob(context.Background(), JobConfig{K: 2, CheckpointPath: ckpt}); err == nil {
		t.Fatal("nil algorithm accepted")
	}
	if _, err := RunJob(context.Background(), JobConfig{Alg: bilinear.Strassen(), K: 0, CheckpointPath: ckpt}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := RunJob(context.Background(), JobConfig{Alg: bilinear.Strassen(), K: 2, Kernel: "quantum", CheckpointPath: ckpt}); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	if _, err := RunJob(context.Background(), JobConfig{Alg: bilinear.Strassen(), K: 2}); err == nil {
		t.Fatal("missing checkpoint path accepted")
	}
}

// TestRunJobStopDrains: closing Stop pauses the run at shard
// granularity with a resumable checkpoint; resuming completes to
// Stats bit-identical to an uninterrupted run.
func TestRunJobStopDrains(t *testing.T) {
	want, err := RunJob(context.Background(), JobConfig{
		Alg: bilinear.Strassen(), K: 3, Workers: 2,
		CheckpointPath: filepath.Join(t.TempDir(), "fresh.ckpt"), Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	want.Elapsed = 0

	path := filepath.Join(t.TempDir(), "job.ckpt")
	stop := make(chan struct{})
	cfg := JobConfig{
		Alg: bilinear.Strassen(), K: 3, Workers: 2, ShardRows: 16, // 8 shards
		CheckpointPath: path, Resume: true, Stop: stop,
		OnShard: func(d ShardDone) {
			if d.Done == 2 {
				close(stop) // drain after the second shard completes
			}
		},
	}
	st, err := RunJob(context.Background(), cfg)
	if !errors.Is(err, ErrPaused) {
		t.Fatalf("drained run: err = %v, want ErrPaused", err)
	}
	if st.NumPaths >= want.NumPaths {
		t.Fatalf("drained run enumerated everything (%d paths)", st.NumPaths)
	}
	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp.DoneCount == 0 || cp.DoneCount == cp.NumShards {
		t.Fatalf("checkpoint has %d/%d shards — not a mid-job drain", cp.DoneCount, cp.NumShards)
	}

	cfg.Stop, cfg.OnShard = nil, nil
	st, err = RunJob(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	st.Elapsed = 0
	if st != want {
		t.Fatalf("resumed stats %+v, uninterrupted %+v", st, want)
	}
}

// TestCacheKeyContentAddressed: keys collide exactly when the
// certificate is guaranteed identical.
func TestCacheKeyContentAddressed(t *testing.T) {
	strassen := bilinear.Strassen()
	base := CacheKey(strassen, 3, "", 0, false)

	// Stable across calls, and across the name of the algorithm.
	renamed := bilinear.Strassen()
	renamed.Name = "strassen-by-any-other-name"
	if got := CacheKey(renamed, 3, "", 0, false); got != base {
		t.Fatalf("renamed algorithm changed the key: %s vs %s", got, base)
	}
	// Normalizations: "" = scratch kernel, 0 = default stride, orbit
	// flag irrelevant under the seed kernel.
	if got := CacheKey(strassen, 3, KernelScratch, defaultAdjacencyStride, false); got != base {
		t.Fatalf("normalized key %s differs from base %s", got, base)
	}
	if CacheKey(strassen, 3, KernelSeed, 0, true) != CacheKey(strassen, 3, KernelSeed, 0, false) {
		t.Fatal("orbit flag changed the seed-kernel key, but the seed kernel ignores it")
	}

	// Every certificate-relevant parameter must change the key.
	distinct := map[string]string{
		"base":    base,
		"k":       CacheKey(strassen, 4, "", 0, false),
		"kernel":  CacheKey(strassen, 3, KernelSeed, 0, false),
		"stride":  CacheKey(strassen, 3, "", 1, false),
		"orbits":  CacheKey(strassen, 3, "", 0, true),
		"alg":     CacheKey(bilinear.Winograd(), 3, "", 0, false),
		"nonfast": CacheKey(bilinear.Classical(2), 3, "", 0, false),
	}
	seen := map[string]string{}
	for which, key := range distinct {
		if prev, dup := seen[key]; dup {
			t.Fatalf("cache keys for %q and %q collide: %s", which, prev, key)
		}
		seen[key] = which
	}
}

// TestAlgorithmHashCoefficientSensitivity: the hash covers every
// coefficient, so a single-entry perturbation changes it.
func TestAlgorithmHashCoefficientSensitivity(t *testing.T) {
	a, b := bilinear.Strassen(), bilinear.Strassen()
	if AlgorithmHash(a) != AlgorithmHash(b) {
		t.Fatal("hash not deterministic")
	}
	b.W[0][0] = b.W[0][0].Neg()
	if AlgorithmHash(a) == AlgorithmHash(b) {
		t.Fatal("flipping a decoding coefficient did not change the hash")
	}
}
