package routing

// Ablation: what happens to the routing bounds when the Hall matching
// of Theorem 3 is replaced by a naive greedy assignment? The paper's
// proof of Lemma 3 depends on the capacity-n₀ matching to keep
// middle-layer loads at n₀ per product; a first-fit assignment ignores
// the capacity and can pile Θ(n₀²) dependencies onto popular products,
// breaking the 2n₀ᵏ bound at depth. This file builds the greedy variant
// so the effect can be measured (cmd/paperrepro, bench_test.go).

import (
	"fmt"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/cdag"
)

// seedPairPath is the original pair-path kernel, kept verbatim for the
// A9 enumeration-kernel ablation (Router.SeedEnumeration,
// BenchmarkA9EnumerationKernel) and as the golden reference the
// allocation-free appendPairPath is tested against. It heap-allocates
// four digit slices, a closure, and three chain slices per path — the
// cost the scratch kernel removes.
func (r *Router) seedPairPath(side bilinear.Side, in, out int64, buf []cdag.V) []cdag.V {
	// Decompose in/out into per-slot row and column digits.
	n0 := int64(r.n0)
	iD := make([]int64, r.k) // row digits of input
	jD := make([]int64, r.k) // col digits of input
	oiD := make([]int64, r.k)
	ojD := make([]int64, r.k)
	for l := 0; l < r.k; l++ {
		e := in / r.powA[r.k-1-l] % r.a
		o := out / r.powA[r.k-1-l] % r.a
		iD[l], jD[l] = e/n0, e%n0
		oiD[l], ojD[l] = o/n0, o%n0
	}
	pack := func(rows, cols []int64) int64 {
		var x int64
		for l := 0; l < r.k; l++ {
			x = x*r.a + rows[l]*n0 + cols[l]
		}
		return x
	}
	var c1, c2, c3 []cdag.V
	var ok bool
	switch side {
	case bilinear.SideA:
		// a_ij → c_ij′ → b_jj′ → c_i′j′.
		mid := pack(iD, ojD) // c_{i,j′}
		bIn := pack(jD, ojD) // b_{j,j′}
		c1, ok = r.AppendChain(bilinear.SideA, in, mid, nil)
		if !ok {
			panic("routing: chain a→c_ij′ must be guaranteed")
		}
		c2, ok = r.AppendChain(bilinear.SideB, bIn, mid, nil)
		if !ok {
			panic("routing: chain b→c_ij′ must be guaranteed")
		}
		c3, ok = r.AppendChain(bilinear.SideB, bIn, out, nil)
		if !ok {
			panic("routing: chain b→c_i′j′ must be guaranteed")
		}
	default:
		// b_ij → c_i′j → a_i′i → c_i′j′  (paper's B-side sequence).
		mid := pack(oiD, jD) // c_{i′,j}
		aIn := pack(oiD, iD) // a_{i′,i}
		c1, ok = r.AppendChain(bilinear.SideB, in, mid, nil)
		if !ok {
			panic("routing: chain b→c_i′j must be guaranteed")
		}
		c2, ok = r.AppendChain(bilinear.SideA, aIn, mid, nil)
		if !ok {
			panic("routing: chain a→c_i′j must be guaranteed")
		}
		c3, ok = r.AppendChain(bilinear.SideA, aIn, out, nil)
		if !ok {
			panic("routing: chain a→c_i′j′ must be guaranteed")
		}
	}
	buf = append(buf, c1...)
	for i := len(c2) - 2; i >= 0; i-- { // reversed, junction dropped
		buf = append(buf, c2[i])
	}
	buf = append(buf, c3[1:]...) // junction dropped
	return buf
}

// GreedyBaseMatching assigns every guaranteed base dependency to its
// first adjacent product, with no capacity constraint — the strawman
// the Hall matching is compared against.
func GreedyBaseMatching(alg *bilinear.Algorithm) (*BaseMatching, error) {
	bm := &BaseMatching{Alg: alg}
	a := alg.A()
	for _, side := range []bilinear.Side{bilinear.SideA, bilinear.SideB} {
		match := make([]int, a*a)
		for i := range match {
			match[i] = -1
		}
		for _, d := range GuaranteedBaseDeps(alg, side) {
			ts := DepProducts(alg, side, d[0], d[1])
			if len(ts) == 0 {
				return nil, fmt.Errorf("routing: %s: dependency %v has no admissible product", alg.Name, d)
			}
			match[d[0]*a+d[1]] = ts[0]
		}
		if side == bilinear.SideA {
			bm.matchA = match
		} else {
			bm.matchB = match
		}
	}
	return bm, nil
}

// MaxProductLoad returns the largest number of dependencies assigned to
// one product by either side matching (the quantity the Hall matching
// caps at n₀).
func (bm *BaseMatching) MaxProductLoad() int {
	maxUse := 0
	for _, match := range [][]int{bm.matchA, bm.matchB} {
		use := make(map[int]int)
		for _, t := range match {
			if t >= 0 {
				use[t]++
				if use[t] > maxUse {
					maxUse = use[t]
				}
			}
		}
	}
	return maxUse
}

// CompareMatchings builds both the Hall matching and the greedy
// matching for the algorithm and reports the max vertex hit counts of
// the resulting full routings on G_k, together with the Theorem 2
// bound. It quantifies how much the capacity constraint buys.
type MatchingComparison struct {
	Alg          string
	K            int
	Bound        int64
	HallMaxHits  int64
	HallLoad     int
	GreedyOK     bool // greedy stayed within the Theorem 2 bound
	GreedyHits   int64
	GreedyLoad   int
	GreedyFailed string // non-empty if the greedy routing itself errored
}

// CompareMatchings runs the ablation on G_k of the algorithm.
func CompareMatchings(alg *bilinear.Algorithm, k int) (MatchingComparison, error) {
	out := MatchingComparison{Alg: alg.Name, K: k}
	g, err := cdag.New(alg, k)
	if err != nil {
		return out, err
	}
	hallBM, err := NewBaseMatching(alg)
	if err != nil {
		return out, err
	}
	hallRouter, err := NewRouterWithMatching(g, hallBM)
	if err != nil {
		return out, err
	}
	hallStats, err := hallRouter.VerifyFullRouting()
	if err != nil {
		return out, err
	}
	out.Bound = hallStats.Bound
	out.HallMaxHits = hallStats.MaxVertexHits
	out.HallLoad = hallBM.MaxProductLoad()

	greedyBM, err := GreedyBaseMatching(alg)
	if err != nil {
		out.GreedyFailed = err.Error()
		return out, nil
	}
	out.GreedyLoad = greedyBM.MaxProductLoad()
	greedyRouter, err := NewRouterWithMatching(g, greedyBM)
	if err != nil {
		out.GreedyFailed = err.Error()
		return out, nil
	}
	greedyStats, err := greedyRouter.VerifyFullRouting()
	out.GreedyHits = greedyStats.MaxVertexHits
	out.GreedyOK = err == nil
	if err != nil {
		out.GreedyFailed = err.Error()
	}
	return out, nil
}
