package routing

import (
	"fmt"
	"math/rand"
	"testing"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/cdag"
	"pathrouting/internal/hall"
)

func mustRouter(t *testing.T, alg *bilinear.Algorithm, k int) *Router {
	t.Helper()
	g, err := cdag.New(alg, k)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(g)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestBaseMatchingStrassen(t *testing.T) {
	bm, err := NewBaseMatching(bilinear.Strassen())
	if err != nil {
		t.Fatal(err)
	}
	maxUse, err := bm.VerifyCapacities()
	if err != nil {
		t.Fatal(err)
	}
	if maxUse > 2 {
		t.Errorf("max product use %d > n0 = 2", maxUse)
	}
	// Every guaranteed dep matched to an adjacent product.
	alg := bilinear.Strassen()
	for _, side := range []bilinear.Side{bilinear.SideA, bilinear.SideB} {
		for _, d := range GuaranteedBaseDeps(alg, side) {
			m := bm.MatchA(d[0], d[1])
			if side == bilinear.SideB {
				m = bm.MatchB(d[0], d[1])
			}
			if m < 0 {
				t.Fatalf("side %v dep %v unmatched", side, d)
			}
			ok := false
			for _, tt := range DepProducts(alg, side, d[0], d[1]) {
				if tt == m {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("side %v dep %v matched to non-adjacent product %d", side, d, m)
			}
		}
	}
	// Non-guaranteed pairs are -1.
	if bm.MatchA(0, 2) != -1 { // a11 -> c21: rows differ
		t.Error("non-guaranteed A dep matched")
	}
}

func TestBaseMatchingAllCatalog(t *testing.T) {
	// Lemma 5 ⇒ the matching exists for every *correct* algorithm
	// (including, empirically, the catalog entries violating the
	// one-multiplication assumption).
	for _, alg := range bilinear.All() {
		bm, err := NewBaseMatching(alg)
		if err != nil {
			t.Errorf("%s: %v", alg.Name, err)
			continue
		}
		if _, err := bm.VerifyCapacities(); err != nil {
			t.Errorf("%s: %v", alg.Name, err)
		}
	}
}

func TestLemma5HallConditionExhaustive(t *testing.T) {
	// Exhaustive Hall check with capacity n₀ over all subsets of
	// guaranteed deps, for the n₀ = 2 algorithms (|X| = 8).
	for _, alg := range []*bilinear.Algorithm{bilinear.Strassen(), bilinear.Winograd(), bilinear.Classical(2)} {
		for _, side := range []bilinear.Side{bilinear.SideA, bilinear.SideB} {
			deps := GuaranteedBaseDeps(alg, side)
			viol := hall.CheckHall(len(deps), alg.B(),
				func(x int) []int { return DepProducts(alg, side, deps[x][0], deps[x][1]) },
				func(int) int { return alg.N0 })
			if viol != nil {
				t.Errorf("%s side %v: Hall condition violated at %v", alg.Name, side, viol)
			}
		}
	}
}

func TestLemma5ViolationDetectedOnBrokenGraph(t *testing.T) {
	// An (incorrect) base graph in which three guaranteed dependencies
	// can only route through one product must yield a Hall violation —
	// the computational content of Lemma 5's contradiction.
	alg := bilinear.Strassen()
	// Cripple the decoding: outputs 0 and 1 depend only on product 0.
	for tt := 1; tt < alg.B(); tt++ {
		alg.W[0][tt] = alg.W[0][0].Sub(alg.W[0][0]) // zero
		alg.W[1][tt] = alg.W[1][tt].Sub(alg.W[1][tt])
	}
	if _, err := NewBaseMatching(alg); err == nil {
		t.Fatal("crippled algorithm should fail the Hall matching")
	}
}

func TestChainShape(t *testing.T) {
	r := mustRouter(t, bilinear.Strassen(), 2)
	g := r.G
	chain, ok := r.AppendChain(bilinear.SideA, 0, 1, nil) // a(0,0)->c(0,1): guaranteed
	if !ok {
		t.Fatal("dep should be guaranteed")
	}
	if len(chain) != 2*2+2 {
		t.Fatalf("chain length %d", len(chain))
	}
	if chain[0] != g.InputA(0) || chain[len(chain)-1] != g.Output(1) {
		t.Fatal("chain endpoints wrong")
	}
	if _, ok := r.AppendChain(bilinear.SideA, 0, 2, nil); ok {
		// output c(1,0): its trailing row digit differs from a(0,0)'s
		t.Fatal("non-guaranteed dep routed")
	}
}

func TestGuaranteedPredicates(t *testing.T) {
	r := mustRouter(t, bilinear.Strassen(), 2)
	// a entry (row=0,col=0) multi-index packed 0; outputs with row 0.
	if !r.GuaranteedA(0, 0) || !r.GuaranteedA(0, 1) {
		t.Error("A deps with equal rows must be guaranteed")
	}
	if r.GuaranteedA(0, 2) { // c(1,0): row differs in slot 2
		t.Error("A dep with different row accepted")
	}
	if !r.GuaranteedB(0, 0) || !r.GuaranteedB(1, 1) {
		t.Error("B deps with equal cols must be guaranteed")
	}
	if r.GuaranteedB(0, 1) {
		t.Error("B dep with different col accepted")
	}
}

func TestLemma3RoutingBounds(t *testing.T) {
	cases := []struct {
		alg *bilinear.Algorithm
		k   int
	}{
		{bilinear.Strassen(), 1},
		{bilinear.Strassen(), 2},
		{bilinear.Strassen(), 3},
		{bilinear.Winograd(), 2},
		{bilinear.Classical(2), 2},
		{bilinear.StrassenSquared(), 1},
		{bilinear.DisconnectedFast(), 1},
	}
	lad, err := bilinear.Laderman()
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, struct {
		alg *bilinear.Algorithm
		k   int
	}{lad, 1})
	for _, c := range cases {
		r := mustRouter(t, c.alg, c.k)
		st, err := r.VerifyGuaranteedRouting()
		if err != nil {
			t.Errorf("%s k=%d: %v", c.alg.Name, c.k, err)
			continue
		}
		// Number of guaranteed deps per side: n0^(3k); two sides.
		n03k := int64(1)
		for i := 0; i < 3*c.k; i++ {
			n03k *= int64(c.alg.N0)
		}
		if st.NumPaths != 2*n03k {
			t.Errorf("%s k=%d: %d chains, want %d", c.alg.Name, c.k, st.NumPaths, 2*n03k)
		}
	}
}

func TestRoutingTheoremBounds(t *testing.T) {
	cases := []struct {
		alg *bilinear.Algorithm
		k   int
	}{
		{bilinear.Strassen(), 1},
		{bilinear.Strassen(), 2},
		{bilinear.Strassen(), 3},
		{bilinear.Winograd(), 2},
		{bilinear.Classical(2), 2},
		{bilinear.StrassenSquared(), 1},
		{bilinear.DisconnectedFast(), 1},
	}
	lad, err := bilinear.Laderman()
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, struct {
		alg *bilinear.Algorithm
		k   int
	}{lad, 1})
	for _, c := range cases {
		r := mustRouter(t, c.alg, c.k)
		st, err := r.VerifyFullRouting()
		if err != nil {
			t.Errorf("%s k=%d: %v", c.alg.Name, c.k, err)
			continue
		}
		aK := int64(1)
		for i := 0; i < c.k; i++ {
			aK *= int64(c.alg.A())
		}
		if st.NumPaths != 2*aK*aK {
			t.Errorf("%s k=%d: %d paths, want %d", c.alg.Name, c.k, st.NumPaths, 2*aK*aK)
		}
		if st.MaxVertexHits == 0 {
			t.Errorf("%s k=%d: no hits recorded", c.alg.Name, c.k)
		}
	}
}

func TestLemma4ChainUsageExact(t *testing.T) {
	for _, c := range []struct {
		alg *bilinear.Algorithm
		k   int
	}{
		{bilinear.Strassen(), 1},
		{bilinear.Strassen(), 2},
		{bilinear.Strassen(), 3},
		{bilinear.Classical(3), 1},
	} {
		r := mustRouter(t, c.alg, c.k)
		if err := r.VerifyChainUsage(); err != nil {
			t.Errorf("%s k=%d: %v", c.alg.Name, c.k, err)
		}
	}
}

func TestPairPathLengthAndEndpoints(t *testing.T) {
	r := mustRouter(t, bilinear.Winograd(), 2)
	g := r.G
	count := 0
	r.ForEachPairPath(func(side bilinear.Side, in, out int64, path []cdag.V) {
		count++
		if len(path) != 3*(2*2+2)-2 {
			t.Fatalf("path length %d", len(path))
		}
		want := g.InputA(in)
		if side == bilinear.SideB {
			want = g.InputB(in)
		}
		if path[0] != want || path[len(path)-1] != g.Output(out) {
			t.Fatalf("endpoints wrong for side %v in=%d out=%d", side, in, out)
		}
	})
	if count != 2*16*16 {
		t.Fatalf("pair path count %d", count)
	}
}

func TestClaim1StrassenDecodingRouting(t *testing.T) {
	for k := 1; k <= 3; k++ {
		g, err := cdag.New(bilinear.Strassen(), k)
		if err != nil {
			t.Fatal(err)
		}
		dr, err := NewDecodingRouter(g)
		if err != nil {
			t.Fatal(err)
		}
		st, err := dr.VerifyClaim1()
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		want7k := int64(1)
		for i := 0; i < k; i++ {
			want7k *= 7
		}
		if st.NumPaths != want7k*int64(1<<(2*k)) {
			t.Errorf("k=%d: %d paths", k, st.NumPaths)
		}
	}
}

func TestClaim1FailsOnDisconnectedDecoding(t *testing.T) {
	for _, alg := range []*bilinear.Algorithm{bilinear.Classical(2), bilinear.DisconnectedFast()} {
		g, err := cdag.New(alg, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := NewDecodingRouter(g); err == nil {
			t.Errorf("%s: decoding router must fail on disconnected D₁", alg.Name)
		}
	}
}

func TestCountBoundaryCrossing(t *testing.T) {
	r := mustRouter(t, bilinear.Strassen(), 1)
	// S = everything: no crossings. S = nothing: no crossings.
	if got := r.CountBoundaryCrossing(func(cdag.V) bool { return true }); got != 0 {
		t.Errorf("full S crossings = %d", got)
	}
	if got := r.CountBoundaryCrossing(func(cdag.V) bool { return false }); got != 0 {
		t.Errorf("empty S crossings = %d", got)
	}
	// S = one output: every path touching that output crosses; there are
	// 2a^k inputs routing to it, and paths to other outputs may pass
	// through it too.
	g := r.G
	target := g.Output(0)
	got := r.CountBoundaryCrossing(func(v cdag.V) bool { return v == target })
	if got < 2*4 {
		t.Errorf("single-output crossings = %d, want ≥ 8", got)
	}
}

func TestRouterWithMismatchedMatching(t *testing.T) {
	bm, err := NewBaseMatching(bilinear.Strassen())
	if err != nil {
		t.Fatal(err)
	}
	g, err := cdag.New(bilinear.Winograd(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRouterWithMatching(g, bm); err == nil {
		t.Fatal("mismatched algorithm accepted")
	}
}

func TestSection8ValueClassRouting(t *testing.T) {
	// The empirical test of the paper's Section 8 conjecture: with
	// vertices identified by value (the paper's one-vertex-per-value
	// model), the 6aᵏ bound still holds — including for disconnected56,
	// which violates the standing assumption.
	for _, c := range []struct {
		alg *bilinear.Algorithm
		k   int
	}{
		{bilinear.Strassen(), 2},
		{bilinear.Classical(2), 2},
		{bilinear.DisconnectedFast(), 1},
		{bilinear.DisconnectedFast(), 2},
	} {
		r := mustRouter(t, c.alg, c.k)
		st, err := r.VerifyValueClassRouting()
		if err != nil {
			t.Errorf("%s k=%d: %v", c.alg.Name, c.k, err)
			continue
		}
		if st.MaxMetaHits == 0 {
			t.Errorf("%s k=%d: no hits", c.alg.Name, c.k)
		}
	}
}

func TestPipelineOnRandomOrbitAlgorithms(t *testing.T) {
	// Property-based end-to-end check: draw verified algorithms from
	// the symmetry orbit of Strassen's (arbitrary coefficient
	// structure, fresh copying patterns) and run the full pipeline —
	// CDAG numeric validation, Hall matching, Lemma 3 chains, the
	// Routing Theorem, and Lemma 4 usage counts.
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 5; trial++ {
		alg, err := bilinear.RandomAlgorithm(rng, nil)
		if err != nil {
			t.Fatal(err)
		}
		alg.Name = fmt.Sprintf("%s#%d", alg.Name, trial)
		g, err := cdag.New(alg, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(rng); err != nil {
			t.Fatalf("%s: %v", alg.Name, err)
		}
		r, err := NewRouter(g)
		if err != nil {
			t.Fatalf("%s: matching: %v", alg.Name, err)
		}
		if _, err := r.VerifyGuaranteedRouting(); err != nil {
			t.Errorf("%s: Lemma 3: %v", alg.Name, err)
		}
		if _, err := r.VerifyFullRouting(); err != nil {
			t.Errorf("%s: Theorem 2: %v", alg.Name, err)
		}
		if err := r.VerifyChainUsage(); err != nil {
			t.Errorf("%s: Lemma 4: %v", alg.Name, err)
		}
		if _, err := r.VerifyValueClassRouting(); err != nil {
			t.Errorf("%s: Section 8: %v", alg.Name, err)
		}
	}
}

func TestParallelVerificationMatchesSequential(t *testing.T) {
	for _, c := range []struct {
		alg *bilinear.Algorithm
		k   int
	}{
		{bilinear.Strassen(), 3},
		{bilinear.Winograd(), 2},
		{bilinear.DisconnectedFast(), 1},
	} {
		r := mustRouter(t, c.alg, c.k)
		seq, err := r.VerifyFullRouting()
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 0} {
			par, err := r.VerifyFullRoutingParallel(workers)
			if err != nil {
				t.Fatalf("%s k=%d workers=%d: %v", c.alg.Name, c.k, workers, err)
			}
			if par.NumPaths != seq.NumPaths || par.MaxVertexHits != seq.MaxVertexHits ||
				par.MaxMetaHits != seq.MaxMetaHits || par.TotalHits != seq.TotalHits {
				t.Fatalf("%s k=%d workers=%d: parallel %+v != sequential %+v",
					c.alg.Name, c.k, workers, par, seq)
			}
		}
	}
}
