package routing

// Stage-2 orbit kernel: family aggregation of the shared chains plus
// blocked accumulation of the varying chain. Stage 1 (orbit.go) already
// collapses each n₀ᵏ-path orbit into one weighted credit of chains 1
// and 2 plus a per-member walk of chain 3; this kernel removes the two
// costs stage 1 left on the table.
//
// Family aggregation. Within one (side, input) row — a *family* of n₀ᵏ
// orbits — chain 1 depends only on (input, fixed output digits) and
// chain 2 only on (junction, fixed output digits), and the junction is
// itself a function of the input and the fixed digits. Both chains are
// therefore determined slot-wise by the very digits the fixed-digit
// odometer steps through, so instead of rebuilding them per orbit with
// AppendChain (6k divisions per chain), the kernel maintains their
// matched product digits, packed prefixes, and endpoint suffixes
// incrementally across the odometer — digit-local updates on carry,
// exactly how stage 1 already maintains chain 3 per member — and
// *synthesizes* each chain vertex as layerBase + prefix·aᵏ⁻ʲ + suffix.
// No divisions survive on the per-orbit path.
//
// Blocked accumulation. The varying chain's product digits depend on
// the free output digits; the last free digit only enters product
// digit k. Fixing the leading k−1 free digits (a *block* of n₀
// members) therefore freezes encoding ranks 1..k−1 and every decoding
// prefix t₁..t_{k−j} with j ≥ 1, so per block:
//
//   - encoding ranks 1..k−1 are block-constant vertices, credited once
//     with weight n₀;
//   - the rank-j decoding vertices of the block's members form an
//     arithmetic progression in vertex ID (consecutive members differ
//     only in the last output digit, stride 1 or n₀ depending on which
//     coordinate the side frees), accumulated by hitVec.addBlock /
//     bumpStride — bounds-check-free strided adds;
//   - only the rank-k encoding vertex and the product vertex remain
//     per-member scalar work: one match-table lookup and two bumps.
//
// Meta-vertex hits follow the same split. Decoding vertices are their
// own roots, so the progression's meta credit is the same strided add,
// corrected by subtracting the members whose rank-j vertex was already
// credited by this orbit's shared chains — those are exactly the
// stamped candidates d1[j] (and d2[j] below rank k), each a single
// membership test against the progression. The block-constant encoding
// roots use the stamp test once per block; the rank-k encoding root
// keeps stage 1's consecutive-root dedup against the rank-(k−1) root,
// and a product's root is stamped iff it is one of the two shared-chain
// products, a two-comparison test. The accumulated sums are therefore
// bit-identical to stage 1 — same vertices, same weights, same
// per-orbit stamped set — which TestOrbitStatsBitIdentical and
// FuzzOrbitStatsEquivalence pin against full enumeration.
//
// Adjacency sampling is unchanged in distribution and in kind: the
// same positions idx % stride == 0 of the sequential enumeration order
// are selected (tracked additively per member, no per-member modulo),
// and each sampled path is materialized through the same appendPairPath
// kernel and checked edge by edge. The shared-chain length/endpoint
// checks of stage 1 are not re-checked here: on synthesized chains they
// are tautologies (the synthesis *is* the definition AppendChain
// implements), and corruption of the matching is still caught by the
// sampled edge checks, as the corrupt-matching tests verify for both
// kernels.
//
// Stage 1 remains available behind Router.OrbitStage1 as the A11
// ablation baseline; checkpoints written by either kernel (or by full
// enumeration) resume under any other, because shard contributions are
// bit-identical.

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/cdag"
)

// scanRowsOrbit2 is scanRowsOrbit with family-aggregated shared chains
// and blocked member accumulation: same row ranges, same accumulators,
// same emit cadence, bit-identical statistics.
func (r *Router) scanRowsOrbit2(w, workers int, rowLo, rowHi int64, earliestErr *atomic.Int64, out *workerState) {
	g := r.G
	k := r.k
	aK := r.powA[k]
	n0 := int64(r.n0)
	n0K := r.powN[k]
	chainLen := 2*k + 2
	wantLen := 3*chainLen - 2
	stride := r.adjStride()
	out.hits = make(hitVec, g.NumVertices())
	out.metaHits = make(hitVec, g.NumVertices())
	out.errPos = math.MaxInt64
	total := (rowHi - rowLo) * aK
	observing := r.Progress != nil || r.Obs != nil
	nextEmit := int64(progressChunk)
	var lastEmit time.Time
	var flushedPaths, flushedAdj int64
	var orbits, flushedOrbits int64
	var families, flushedFamilies int64
	emit := func(final bool) {
		// Peak recomputed from the accumulator at snapshot cadence (see
		// the stage-1 emit for why this is exact).
		out.peak = out.hits.max()
		r.Obs.flushScan(out.numPaths-flushedPaths, out.adjChecked-flushedAdj, out.peak)
		r.Obs.flushOrbit(orbits-flushedOrbits, families-flushedFamilies)
		flushedPaths, flushedAdj = out.numPaths, out.adjChecked
		flushedOrbits, flushedFamilies = orbits, families
		nextEmit = out.numPaths + progressChunk
		lastEmit = time.Now()
		if r.Progress != nil {
			r.Progress(Progress{Worker: w, Workers: workers, Done: out.numPaths,
				Total: total, PeakVertexHits: out.peak, Final: final})
		}
	}
	if observing {
		lastEmit = time.Now()
		defer emit(true)
	}

	metaRoots := g.MetaRoots()
	ps := r.newPathScratch()
	full := make([]cdag.V, 0, wantLen) // sampled paths, materialized whole

	// All per-slot and per-rank synthesis state in one backing array.
	// Per slot l: the input digit, the fixed-digit-independent parts of
	// the mid/junction digits, the maintained mid/junction/output digits
	// and match rows, and the three chains' matched product digits.
	// Per rank j: packed product-digit prefixes, base-a endpoint
	// suffixes, the shared chains' decoding vertices (the stamped
	// candidates the blocked meta pass subtracts), and the layer bases.
	state := make([]int64, 10*k+12*(k+1))
	cut := func(n int) []int64 {
		s := state[:n:n]
		state = state[n:]
		return s
	}
	inDig, mBase, jcBase := cut(k), cut(k), cut(k)
	mDig, jcDig, eRow, oDig := cut(k), cut(k), cut(k), cut(k)
	t1Dig, t2Dig, t3Dig := cut(k), cut(k), cut(k)
	t1Pre, t2Pre, t3Pre := cut(k+1), cut(k+1), cut(k+1)
	inSuf, midSuf, jcSuf, outSuf := cut(k+1), cut(k+1), cut(k+1), cut(k+1)
	d1, d2 := cut(k+1), cut(k+1)
	enc1Base, enc3Base, decBase := cut(k+1), cut(k+1), cut(k+1)

	// stamp/serial: the stage-1 epoch-stamped "already counted for every
	// member of this orbit" membership test, unchanged.
	stamp := make([]int64, g.NumVertices())
	var serial int64
	credit := func(v cdag.V) {
		out.hits[v] += n0K
		if root := metaRoots[v]; stamp[root] != serial {
			stamp[root] = serial
			out.metaHits[root] += n0K
		}
	}

	for row := rowLo; row < rowHi; row++ {
		// Cooperative cancellation at row granularity, as in scanRows.
		if earliestErr.Load() < row*aK {
			return
		}
		side, in := r.rowOf(row)
		ps.setIn(r, in)
		families++
		// Orbit geometry as in stage 1: side A fixes the output column
		// digits (unit scale in the packed digit) and frees the row
		// digits (·n₀); side B the mirror image. Chain 1 lives in the
		// side's encoding graph, chains 2 and 3 in the other side's.
		fixedD, freeD := ps.ojD, ps.oiD
		fixedScale, freeScale := int64(1), n0
		kind1, match1 := cdag.EncA, r.BM.matchA
		kind3, match3 := cdag.EncB, r.BM.matchB
		if side == bilinear.SideB {
			fixedD, freeD = ps.oiD, ps.ojD
			fixedScale, freeScale = n0, 1
			kind1, match1 = cdag.EncB, r.BM.matchB
			kind3, match3 = cdag.EncA, r.BM.matchA
		}
		for j := 0; j <= k; j++ {
			enc1Base[j] = int64(g.LayerBase(kind1, j))
			enc3Base[j] = int64(g.LayerBase(kind3, j))
			decBase[j] = int64(g.LayerBase(cdag.Dec, j))
		}
		prodBase := decBase[0]
		encKBase := enc3Base[k]
		// Row constants: the input digits and the parts of the mid and
		// junction digits the fixed digit does not contribute — mid is
		// c_{i,j′} / c_{i′,j}, junction b_{j,j′} / a_{i′,i}, so per slot
		// mDig = mBase + fixed·scale and jcDig = jcBase + fixed·scale.
		for l := 0; l < k; l++ {
			fixedD[l] = 0
			freeD[l] = 0
			inDig[l] = ps.iD[l]*n0 + ps.jD[l]
			if side == bilinear.SideA {
				mBase[l] = ps.iD[l] * n0
				jcBase[l] = ps.jD[l] * n0
			} else {
				mBase[l] = ps.jD[l]
				jcBase[l] = ps.iD[l]
			}
		}
		for j := 1; j <= k; j++ {
			inSuf[j] = inDig[k-j]*r.powA[j-1] + inSuf[j-1]
		}
		fsMod := freeScale % stride

		for orbit := int64(0); orbit < n0K; orbit++ {
			// Fixed-digit odometer; slots l0..k-1 changed this step.
			l0 := 0
			if orbit != 0 {
				l := k - 1
				for ; l >= 0; l-- {
					if fixedD[l]++; fixedD[l] < n0 {
						break
					}
					fixedD[l] = 0
				}
				l0 = l
			}
			// Family aggregation: refresh only the changed slots' digit
			// state and matched product digits of all three chains, then
			// the downstream packed prefixes — amortized O(1) per orbit,
			// no AppendChain, no divisions.
			for l := l0; l < k; l++ {
				fd := fixedD[l] * fixedScale
				m := mBase[l] + fd
				jc := jcBase[l] + fd
				mDig[l] = m
				jcDig[l] = jc
				eRow[l] = jc * r.a
				oDig[l] = fd
				t1 := match1[int(inDig[l]*r.a+m)]
				t2 := match3[int(jc*r.a+m)]
				t3 := match3[int(jc*r.a+fd)]
				if t1 < 0 || t2 < 0 || t3 < 0 {
					panic("routing: orbit shared chains must be guaranteed")
				}
				t1Dig[l], t2Dig[l], t3Dig[l] = int64(t1), int64(t2), int64(t3)
			}
			for j := l0 + 1; j <= k; j++ {
				t1Pre[j] = t1Pre[j-1]*r.b + t1Dig[j-1]
				t2Pre[j] = t2Pre[j-1]*r.b + t2Dig[j-1]
			}
			// Endpoint suffixes (slot k-1 changes every orbit, so these
			// are O(k) regardless), and the block-0 packed output.
			var blockOut int64
			for j := 1; j <= k; j++ {
				midSuf[j] = mDig[k-j]*r.powA[j-1] + midSuf[j-1]
				jcSuf[j] = jcDig[k-j]*r.powA[j-1] + jcSuf[j-1]
				blockOut = blockOut*r.a + oDig[j-1]
			}
			serial++
			orbits++
			t1Full, t2Full := t1Pre[k], t2Pre[k]
			// Weighted shared-chain credits, synthesized in chain order:
			// chain 1 whole (enc 0..k, product, dec 1..k), chain 2 minus
			// its final junction vertex (enc 0..k, product, dec 1..k-1).
			for j := 0; j <= k; j++ {
				credit(cdag.V(enc1Base[j] + t1Pre[j]*r.powA[k-j] + inSuf[k-j]))
			}
			credit(cdag.V(prodBase + t1Full))
			for j := 1; j <= k; j++ {
				d1[j] = decBase[j] + t1Pre[k-j]*r.powA[j] + midSuf[j]
				credit(cdag.V(d1[j]))
			}
			for j := 0; j <= k; j++ {
				credit(cdag.V(enc3Base[j] + t2Pre[j]*r.powA[k-j] + jcSuf[k-j]))
			}
			credit(cdag.V(prodBase + t2Full))
			for j := 1; j < k; j++ {
				d2[j] = decBase[j] + t2Pre[k-j]*r.powA[j] + midSuf[j]
				credit(cdag.V(d2[j]))
			}
			for j := 1; j < k; j++ {
				t3Pre[j] = t3Pre[j-1]*r.b + t3Dig[j-1]
			}

			// Blocked member scan: the outer odometer walks the leading
			// k-1 free digits; each block is the n₀ members differing
			// only in the last free digit.
			span := n0 * freeScale
			base3Row := eRow[k-1]
			for {
				// Block-constant encoding ranks 1..k-1, weight n₀ each;
				// rPrev ends as the rank-(k-1) root for the per-member
				// consecutive-root dedup (V(-1) when k = 1, the stage-1
				// sentinel).
				rPrev := cdag.V(-1)
				for j := 1; j < k; j++ {
					v := cdag.V(enc3Base[j] + t3Pre[j]*r.powA[k-j] + jcSuf[k-j])
					out.hits.add(v, n0)
					root := metaRoots[v]
					if root != rPrev && stamp[root] != serial {
						out.metaHits[root] += n0
					}
					rPrev = root
				}
				// Output suffixes of the block's first member.
				for j := 1; j <= k; j++ {
					outSuf[j] = oDig[k-j]*r.powA[j-1] + outSuf[j-1]
				}
				// Decoding ranks 1..k: one arithmetic progression per
				// rank, accumulated blockwise on both vectors, with the
				// orbit-stamped candidates subtracted from the meta pass
				// by a progression-membership test.
				for j := 1; j <= k; j++ {
					start := decBase[j] + t3Pre[k-j]*r.powA[j] + outSuf[j]
					sv := cdag.V(start)
					if freeScale == 1 {
						out.hits.addBlock(sv, r.n0, 1)
						out.metaHits.addBlock(sv, r.n0, 1)
					} else {
						out.hits.bumpStride(sv, freeScale, r.n0)
						out.metaHits.bumpStride(sv, freeScale, r.n0)
					}
					if d := d1[j] - start; d >= 0 && d < span && d%freeScale == 0 {
						out.metaHits[d1[j]]--
					}
					if j < k && d2[j] != d1[j] {
						if d := d2[j] - start; d >= 0 && d < span && d%freeScale == 0 {
							out.metaHits[d2[j]]--
						}
					}
				}
				// Per-member scalar remainder: product digit k from the
				// match row, one rank-k encoding bump, one product bump,
				// and the additive sample-position tracker (idx % stride
				// == 0 over idx = row·aᵏ + out, no per-member modulo).
				base3 := base3Row + oDig[k-1]
				tHi := t3Pre[k-1] * r.b
				m := (row*aK + blockOut) % stride
				for i := int64(0); i < n0; i++ {
					t := tHi + int64(match3[int(base3+i*freeScale)])
					out.hits[encKBase+t]++
					out.hits[prodBase+t]++
					rk := metaRoots[encKBase+t]
					if rk != rPrev && stamp[rk] != serial {
						out.metaHits[rk]++
					}
					if t != t1Full && t != t2Full {
						out.metaHits[prodBase+t]++
					}
					if m == 0 {
						// Same sample as the full scan: sync the last
						// free digit, materialize through the composition
						// kernel, check edge by edge.
						out.adjChecked++
						outIdx := blockOut + i*freeScale
						freeD[k-1] = i
						full = r.appendPairPath(ps, side, in, outIdx, full[:0])
						freeD[k-1] = 0
						if len(full) != wantLen {
							out.fail(row*aK+outIdx, fmt.Errorf("routing: pair path (side %v, in %d, out %d): length %d, want %d",
								side, in, outIdx, len(full), wantLen), earliestErr)
							return
						}
						for x := 0; x+1 < len(full); x++ {
							if !r.adjacent(full[x], full[x+1]) {
								out.fail(row*aK+outIdx, fmt.Errorf("routing: pair path (side %v, in %d, out %d): not connected at %s -- %s",
									side, in, outIdx, g.Label(full[x]), g.Label(full[x+1])), earliestErr)
								return
							}
						}
					}
					if m += fsMod; m >= stride {
						m -= stride
					}
				}
				out.numPaths += n0
				out.totalHits += n0 * int64(wantLen)

				// Advance the block odometer; a full wrap (l < 0) also
				// restores freeD/oDig/t3Dig/blockOut to the orbit's base
				// state, which the next orbit's refresh builds on.
				l := k - 2
				for ; l >= 0; l-- {
					freeD[l]++
					blockOut += freeScale * r.powA[k-1-l]
					oDig[l] += freeScale
					if freeD[l] < n0 {
						t3Dig[l] = int64(match3[int(eRow[l]+oDig[l])])
						break
					}
					freeD[l] = 0
					blockOut -= n0 * freeScale * r.powA[k-1-l]
					oDig[l] -= n0 * freeScale
					t3Dig[l] = int64(match3[int(eRow[l]+oDig[l])])
				}
				if l < 0 {
					break
				}
				for j := l + 1; j < k; j++ {
					t3Pre[j] = t3Pre[j-1]*r.b + t3Dig[j-1]
				}
			}
			// Snapshot cadence at orbit granularity (see stage 1).
			if observing && (out.numPaths >= nextEmit ||
				(orbits&progressClockMask == 0 && time.Since(lastEmit) >= progressTimeFloor)) {
				emit(false)
			}
		}
	}
}
