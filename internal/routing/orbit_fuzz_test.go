package routing

// FuzzOrbitStatsEquivalence is the randomized arm of the orbit golden
// suite: where TestOrbitStatsBitIdentical sweeps the fixed catalog,
// this draws algorithms from the symmetry orbit of Strassen's (fresh
// coefficient structure and copying patterns every seed) and asserts
// that full enumeration, the stage-1 orbit kernel, and the stage-2
// orbit kernel produce bit-identical Stats across depths, worker
// counts, and adjacency sample strides. Under plain `go test` only the
// seed corpus runs; `go test -fuzz=FuzzOrbitStatsEquivalence` explores
// further.

import (
	"math/rand"
	"testing"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/cdag"
)

func FuzzOrbitStatsEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(1), uint8(0), uint8(0))
	f.Add(int64(2), uint8(2), uint8(1), uint8(1))
	f.Add(int64(42), uint8(2), uint8(3), uint8(2))
	f.Add(int64(2024), uint8(1), uint8(2), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, kSel, workerSel, strideSel uint8) {
		k := 1 + int(kSel%2)            // random base algorithms have a=7; k=2 is already 4802 paths
		workers := 1 + int(workerSel%4) // 1..4
		stride := []int64{0, 1, 3, 257}[strideSel%4]
		rng := rand.New(rand.NewSource(seed))
		alg, err := bilinear.RandomAlgorithm(rng, nil)
		if err != nil {
			t.Skipf("degenerate orbit sample: %v", err)
		}
		g, err := cdag.New(alg, k)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRouter(g)
		if err != nil {
			t.Fatalf("matching: %v", err)
		}
		r.AdjacencySampleStride = stride
		want, err := r.VerifyFullRouting()
		if err != nil {
			t.Fatalf("full: %v", err)
		}
		want.Elapsed = 0
		for _, stage := range orbitStages() {
			ro := orbitRouter(t, r, stage.stage1)
			got, err := ro.VerifyFullRouting()
			if err != nil {
				t.Fatalf("%s seq: %v", stage.name, err)
			}
			got.Elapsed = 0
			if got != want {
				t.Fatalf("%s sequential (k=%d stride=%d):\norbit %+v\nfull  %+v", stage.name, k, stride, got, want)
			}
			par, err := ro.VerifyFullRoutingParallel(workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", stage.name, workers, err)
			}
			par.Elapsed = 0
			if par != want {
				t.Fatalf("%s workers=%d (k=%d stride=%d):\norbit %+v\nfull  %+v", stage.name, workers, k, stride, par, want)
			}
		}
	})
}
