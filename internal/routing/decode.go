package routing

// This file implements the simpler routing of Section 5 (Claim 1): a
// routing between the inputs (products) and outputs of the decoding
// graph D_k alone, feasible whenever the base decoding graph D₁ is
// connected. Where the ideal chain would use an edge t→o that D₁ lacks,
// the path "zags" through D₁'s component — alternately stepping up to an
// output and back down to a product — exactly as depicted in the paper's
// Figures 3 and 4. Claim 1 bounds the resulting vertex hits by
// |V(D₁)|·bᵏ (11·7ᵏ for Strassen).

import (
	"fmt"
	"time"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/cdag"
)

// DecodingRouter routes paths inside the decoding graph of a standalone
// G_k built by cdag.New.
type DecodingRouter struct {
	// G is the graph whose decoding layers are routed.
	G *cdag.Graph

	k    int
	a, b int
	powA []int64
	powB []int64
	// zag[t*a+o] is the alternating base sequence t = x₀, o₁, x₁, …, o
	// (products at even positions, outputs at odd positions) realizing a
	// path from product t to output o within D₁.
	zag [][]int
}

// NewDecodingRouter precomputes base zag sequences by BFS in the
// bipartite base decoding graph. It returns an error when D₁ is
// disconnected — the case (e.g. the classical algorithm, or
// Strassen⊗classical) where the Section 5 argument fails and the full
// Section 6 machinery is required.
func NewDecodingRouter(g *cdag.Graph) (*DecodingRouter, error) {
	alg := g.Alg
	a, b := alg.A(), alg.B()
	dr := &DecodingRouter{G: g, k: g.R, a: a, b: b}
	dr.powA = make([]int64, g.R+1)
	dr.powB = make([]int64, g.R+1)
	dr.powA[0], dr.powB[0] = 1, 1
	for i := 1; i <= g.R; i++ {
		dr.powA[i] = dr.powA[i-1] * int64(a)
		dr.powB[i] = dr.powB[i-1] * int64(b)
	}

	// Bipartite BFS from every product. Nodes: products 0..b-1 and
	// outputs b..b+a-1.
	adjT := make([][]int, b) // product -> outputs
	adjO := make([][]int, a) // output -> products
	for o := 0; o < a; o++ {
		for t := 0; t < b; t++ {
			if !alg.W[o][t].IsZero() {
				adjT[t] = append(adjT[t], o)
				adjO[o] = append(adjO[o], t)
			}
		}
	}
	dr.zag = make([][]int, a*b)
	for t0 := 0; t0 < b; t0++ {
		parent := make([]int, a+b)
		for i := range parent {
			parent[i] = -2
		}
		parent[t0] = -1
		queue := []int{t0}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			if u < b {
				for _, o := range adjT[u] {
					if parent[b+o] == -2 {
						parent[b+o] = u
						queue = append(queue, b+o)
					}
				}
			} else {
				for _, t := range adjO[u-b] {
					if parent[t] == -2 {
						parent[t] = u
						queue = append(queue, t)
					}
				}
			}
		}
		for o := 0; o < a; o++ {
			if parent[b+o] == -2 {
				return nil, fmt.Errorf(
					"routing: %s: base decoding graph is disconnected (product %d cannot reach output %d); Section 5 routing inapplicable",
					alg.Name, t0, o)
			}
			// Reconstruct t0 … o.
			var rev []int
			u := b + o
			for u != -1 {
				if u >= b {
					rev = append(rev, u-b)
				} else {
					rev = append(rev, u)
				}
				u = parent[u]
			}
			seq := make([]int, len(rev))
			for i := range rev {
				seq[i] = rev[len(rev)-1-i]
			}
			dr.zag[t0*a+o] = seq
		}
	}
	return dr, nil
}

// AppendPath appends the zag path from product multi-index t to output
// multi-index o through the decoding layers of G_k and returns it. The
// path starts at the product vertex (decoding rank 0) and ends at the
// output (decoding rank k).
func (dr *DecodingRouter) AppendPath(t, o int64, buf []cdag.V) []cdag.V {
	g := dr.G
	buf = append(buf, g.Product(t))
	// Cross boundaries j = 1..k. At boundary j, slot k-j+1 (1-indexed)
	// flips from its product digit to its output digit via the base zag
	// sequence; T's leading digits stay, o's trailing digits accumulate.
	for j := 1; j <= dr.k; j++ {
		tPrefix := t / dr.powB[j] // first k-j product digits
		tDigit := int(t / dr.powB[j-1] % int64(dr.b))
		oDigit := int(o / dr.powA[j-1] % int64(dr.a))
		oSuffix := o % dr.powA[j-1] // already-decoded trailing digits
		seq := dr.zag[tDigit*dr.a+oDigit]
		// seq = x0, o1, x1, ..., oDigit. x's live at rank j-1, o's at
		// rank j. The path is already at (tPrefix, x0 | oSuffix).
		for i := 1; i < len(seq); i++ {
			if i%2 == 1 { // output digit: step up to rank j
				idx := tPrefix*dr.powA[j] + int64(seq[i])*dr.powA[j-1] + oSuffix
				buf = append(buf, g.ID(cdag.Dec, j, idx))
			} else { // product digit: step back down to rank j-1
				idx := (tPrefix*int64(dr.b)+int64(seq[i]))*dr.powA[j-1] + oSuffix
				buf = append(buf, g.ID(cdag.Dec, j-1, idx))
			}
		}
	}
	return buf
}

// VerifyClaim1 enumerates the routing between all bᵏ products and aᵏ
// outputs of D_k and verifies connectivity of every path and the
// Claim 1 hit bound |V(D₁)|·bᵏ per vertex.
func (dr *DecodingRouter) VerifyClaim1() (Stats, error) {
	start := time.Now()
	g := dr.G
	hits := make(hitVec, g.NumVertices())
	st := Stats{Bound: int64(dr.a+dr.b) * dr.powB[dr.k]}
	var buf []cdag.V
	for t := int64(0); t < dr.powB[dr.k]; t++ {
		for o := int64(0); o < dr.powA[dr.k]; o++ {
			buf = dr.AppendPath(t, o, buf[:0])
			st.NumPaths++
			st.TotalHits += int64(len(buf))
			if buf[0] != g.Product(t) || buf[len(buf)-1] != g.Output(o) {
				return st, fmt.Errorf("routing: decoding path endpoints %s..%s",
					g.Label(buf[0]), g.Label(buf[len(buf)-1]))
			}
			for _, v := range buf {
				hits[v]++
			}
		}
	}
	// Adjacency spot check.
	n := int64(0)
	for t := int64(0); t < dr.powB[dr.k]; t++ {
		for o := int64(0); o < dr.powA[dr.k]; o++ {
			n++
			if n%211 != 0 {
				continue
			}
			buf = dr.AppendPath(t, o, buf[:0])
			for i := 0; i+1 < len(buf); i++ {
				if !checkAdjacent(g, buf[i], buf[i+1]) {
					return st, fmt.Errorf("routing: decoding path disconnected at %s -- %s",
						g.Label(buf[i]), g.Label(buf[i+1]))
				}
			}
		}
	}
	st.MaxVertexHits = hits.max()
	st.MaxMetaHits = st.MaxVertexHits // no copying inside decoding (Lemma 2)
	st.Elapsed = time.Since(start)
	if st.MaxVertexHits > st.Bound {
		return st, fmt.Errorf("routing: %s D_%d: Claim 1 violated: vertex hit %d > %d",
			g.Alg.Name, dr.k, st.MaxVertexHits, st.Bound)
	}
	return st, nil
}

// CountBoundaryCrossing enumerates the full Routing Theorem routing of
// the Router's G_k and counts the paths that cross the boundary of the
// vertex set selected by inS (contain at least one vertex inside and one
// outside). This is the quantity the paper's segment argument lower
// bounds by ½aᵏ·|S̄_i|.
func (r *Router) CountBoundaryCrossing(inS func(cdag.V) bool) int64 {
	var crossing int64
	r.ForEachPairPath(func(side bilinear.Side, in, out int64, path []cdag.V) {
		any, all := false, true
		for _, v := range path {
			if inS(v) {
				any = true
			} else {
				all = false
			}
		}
		if any && !all {
			crossing++
		}
	})
	return crossing
}
