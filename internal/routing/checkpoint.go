package routing

// Crash-safe checkpointing for the full-routing verifiers. The
// pair-path enumeration space is split into deterministic fixed-size
// shards of whole rows (row = one (side, input) pair, see parallel.go),
// by sequential enumeration order, so the shard boundaries — and hence
// every per-shard contribution — are independent of the worker count.
// Workers pull shards from a queue; each completed shard's int64 hit
// vector, meta-vertex counts, and path/adjacency tallies are merged
// into a single accumulated Checkpoint, persisted with an atomic
// write-to-temp-then-rename so a crash can never leave a torn file.
// On resume, completed shards are skipped and their cached
// contributions reused; because every merged quantity is an exact
// int64 sum (or a max over exact sums), an interrupted-and-resumed run
// produces final Stats bit-identical to an uninterrupted one, at any
// worker count.

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pathrouting/internal/cdag"
)

// CheckpointVersion is the schema version written into checkpoint
// files; files with a different version are rejected on load.
const CheckpointVersion = 1

// defaultShardPaths sizes shards when CheckpointConfig.ShardRows is 0:
// roughly this many pair paths per shard, so checkpoint granularity
// stays useful as k grows (a shard is always a whole number of rows).
const defaultShardPaths = 1 << 20

// ErrPaused is wrapped by the error VerifyFullRoutingCheckpointed
// returns when it stops before completing every shard (MaxShards
// reached). The checkpoint file holds all completed work; rerun with
// Resume to continue.
var ErrPaused = errors.New("routing: checkpointed verification paused before completion")

// CheckpointConfig configures VerifyFullRoutingCheckpointed.
type CheckpointConfig struct {
	// Path is the checkpoint file (required). Saves write Path+".tmp"
	// and rename it over Path, so a crash mid-save is harmless.
	Path string
	// ShardRows is the number of enumeration rows per shard; 0 sizes
	// shards to ~defaultShardPaths pair paths, or — when resuming —
	// adopts the checkpoint's shard size. An explicit value must match
	// the checkpoint it resumes.
	ShardRows int64
	// FlushEvery persists the checkpoint after this many newly
	// completed shards (0 = after every shard). Larger values trade
	// re-verification work after a crash for less write amplification
	// on runs with large hit vectors.
	FlushEvery int
	// MaxShards, when positive, stops the run after completing this
	// many new shards and returns an ErrPaused-wrapped error — a
	// time-boxing knob (and the seam the interrupt/resume tests and
	// `make verify-resume` use to simulate a kill).
	MaxShards int64
	// Stop, when non-nil, makes workers stop claiming new shards once
	// it is closed: in-flight shards finish, merge, and persist, then
	// the run returns an ErrPaused-wrapped error exactly as MaxShards
	// would. This is the graceful-drain seam a daemon's SIGTERM
	// handler uses — a drained job's checkpoint resumes on restart.
	Stop <-chan struct{}
	// Resume loads an existing checkpoint at Path and skips its
	// completed shards. A missing file starts a fresh run, so retry
	// loops can pass Resume unconditionally; an incompatible file
	// (different algorithm, k, shard size, or adjacency stride) is an
	// error.
	Resume bool
	// OnShard, when non-nil, is called after each shard completes and
	// merges (serialized by the engine's lock; keep it fast).
	OnShard func(ShardDone)
}

// ShardDone is the per-shard completion notification delivered to
// CheckpointConfig.OnShard.
type ShardDone struct {
	// Shard is the completed shard's index in [0, Total), or -1 for the
	// synthetic restore notification (Restored below).
	Shard int64
	// Rows and Paths are the shard's size.
	Rows, Paths int64
	// Done is the cumulative number of completed shards (including
	// those restored from the checkpoint); Total the overall count.
	Done, Total int64
	// Restored marks the one synthetic notification a resumed run
	// delivers before re-running anything: it aggregates every shard
	// restored from the checkpoint (Shard is -1; Rows/Paths/Done cover
	// all of them), so coverage displays start from the restored state
	// instead of discovering it shard by shard — or never, when the
	// checkpoint was already complete.
	Restored bool
}

// Checkpoint is the persisted accumulated state of a checkpointed
// verification run: which shards are complete and the exact merged
// contribution of every completed shard.
type Checkpoint struct {
	Version     int
	Alg         string
	K           int
	NumVertices int
	ShardRows   int64
	NumShards   int64
	AdjStride   int64

	Done      []bool
	DoneCount int64

	NumPaths   int64
	TotalHits  int64
	AdjChecked int64
	Hits       []int64
	MetaHits   map[cdag.V]int64
}

// shardPlan is the deterministic shard geometry for one router.
type shardPlan struct {
	rows, shardRows, numShards int64
}

func (r *Router) shardPlan(shardRows int64) shardPlan {
	rows := r.numRows()
	aK := r.powA[r.k]
	if shardRows <= 0 {
		shardRows = defaultShardPaths / aK
		if shardRows < 1 {
			shardRows = 1
		}
	}
	if shardRows > rows {
		shardRows = rows
	}
	return shardPlan{rows: rows, shardRows: shardRows, numShards: (rows + shardRows - 1) / shardRows}
}

// newCheckpoint returns the empty accumulated state for a plan.
func (r *Router) newCheckpoint(plan shardPlan) *Checkpoint {
	return &Checkpoint{
		Version:     CheckpointVersion,
		Alg:         r.G.Alg.Name,
		K:           r.k,
		NumVertices: r.G.NumVertices(),
		ShardRows:   plan.shardRows,
		NumShards:   plan.numShards,
		AdjStride:   r.adjStride(),
		Done:        make([]bool, plan.numShards),
		Hits:        make([]int64, r.G.NumVertices()),
		MetaHits:    make(map[cdag.V]int64),
	}
}

// checkpointCompat rejects resuming a checkpoint whose run parameters
// differ from this router's: merged contributions would be silently
// wrong rather than loudly incompatible.
func (r *Router) checkpointCompat(c *Checkpoint, plan shardPlan) error {
	switch {
	case c.Version != CheckpointVersion:
		return fmt.Errorf("routing: checkpoint version %d, want %d", c.Version, CheckpointVersion)
	case c.Alg != r.G.Alg.Name || c.K != r.k:
		return fmt.Errorf("routing: checkpoint is for %s G_%d, router verifies %s G_%d",
			c.Alg, c.K, r.G.Alg.Name, r.k)
	case c.NumVertices != r.G.NumVertices():
		return fmt.Errorf("routing: checkpoint has %d vertices, graph has %d", c.NumVertices, r.G.NumVertices())
	case c.ShardRows != plan.shardRows || c.NumShards != plan.numShards:
		return fmt.Errorf("routing: checkpoint shards %d×%d rows, run wants %d×%d — resume with the original shard size",
			c.NumShards, c.ShardRows, plan.numShards, plan.shardRows)
	case c.AdjStride != r.adjStride():
		return fmt.Errorf("routing: checkpoint adjacency stride %d, router uses %d", c.AdjStride, r.adjStride())
	case int64(len(c.Done)) != c.NumShards || len(c.Hits) != c.NumVertices:
		return fmt.Errorf("routing: checkpoint internally inconsistent (%d done flags, %d hit counters)",
			len(c.Done), len(c.Hits))
	}
	return nil
}

// mergeShard folds one completed shard's accumulator into the
// checkpoint. Every field is an exact int64 sum, so merge order — and
// therefore worker count and interruption pattern — cannot change the
// final state. The worker's dense meta-hit vector folds into the
// checkpoint's sparse map — the persisted form stays a map keyed by
// meta-vertex root, so files written before the dense accumulator
// still load (the gob schema is unchanged; no version bump).
func (c *Checkpoint) mergeShard(shard int64, ws *workerState) {
	c.Done[shard] = true
	c.DoneCount++
	c.NumPaths += ws.numPaths
	c.TotalHits += ws.totalHits
	c.AdjChecked += ws.adjChecked
	hitVec(c.Hits).merge(ws.hits)
	for v, h := range ws.metaHits {
		if h != 0 {
			c.MetaHits[cdag.V(v)] += h
		}
	}
}

// stats derives the Stats of the accumulated state.
func (c *Checkpoint) stats(r *Router, start time.Time) Stats {
	st := Stats{
		Bound:            6 * r.powA[r.k],
		NumPaths:         c.NumPaths,
		TotalHits:        c.TotalHits,
		AdjacencyChecked: c.AdjChecked,
		MaxVertexHits:    hitVec(c.Hits).max(),
	}
	for _, h := range c.MetaHits {
		if h > st.MaxMetaHits {
			st.MaxMetaHits = h
		}
	}
	st.Elapsed = time.Since(start)
	return st
}

// syncDir fsyncs the directory containing path, making a just-renamed
// entry durable. fsync on the file alone persists its *contents*; the
// rename is a mutation of the parent directory, and until that
// directory is synced a power loss can roll the rename back — leaving
// an older (or no) checkpoint at Path even though save returned
// success, so a -resume would silently restart from stale state.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// save atomically persists the checkpoint: encode to Path+".tmp", fsync,
// rename over Path, then fsync the parent directory so the rename
// itself survives power loss. The durability halves land in separate
// latency histograms when instrumented: encode+fsync scales with the
// hit-vector size, rename+dirsync with filesystem metadata latency.
func (c *Checkpoint) save(path string, in *Instruments) error {
	tmp := path + ".tmp"
	start := time.Now()
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("routing: checkpoint: %w", err)
	}
	if err := gob.NewEncoder(f).Encode(c); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("routing: checkpoint encode: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("routing: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("routing: checkpoint close: %w", err)
	}
	if in != nil {
		in.CheckpointFsync.ObserveSince(start)
	}
	renameStart := time.Now()
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("routing: checkpoint rename: %w", err)
	}
	if err := syncDir(path); err != nil {
		return fmt.Errorf("routing: checkpoint dir sync: %w", err)
	}
	if in != nil {
		in.CheckpointRename.ObserveSince(renameStart)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint file (for resume and inspection).
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var c Checkpoint
	if err := gob.NewDecoder(f).Decode(&c); err != nil {
		return nil, fmt.Errorf("routing: checkpoint decode %s: %w", path, err)
	}
	if c.Version != CheckpointVersion {
		return nil, fmt.Errorf("routing: checkpoint %s: version %d, want %d", path, c.Version, CheckpointVersion)
	}
	return &c, nil
}

// VerifyFullRoutingCheckpointed is VerifyFullRoutingParallel with
// sharded crash-safe persistence: completed shards are merged into a
// checkpoint file as the run proceeds, and a resumed run skips them,
// producing final Stats bit-identical to an uninterrupted run at any
// worker count. On a routing violation it reports exactly the error
// VerifyFullRouting reports (earliest enumeration position); the
// checkpoint keeps every *successfully* verified shard either way.
// When MaxShards stops the run early, the returned error wraps
// ErrPaused and the Stats cover the completed shards only.
func (r *Router) VerifyFullRoutingCheckpointed(workers int, cfg CheckpointConfig) (Stats, error) {
	start := time.Now()
	r.Obs.noteStart(start)
	if cfg.Path == "" {
		return Stats{}, errors.New("routing: CheckpointConfig.Path is required")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	aK := r.powA[r.k]

	var cp *Checkpoint
	shardRows := cfg.ShardRows
	if cfg.Resume {
		loaded, err := LoadCheckpoint(cfg.Path)
		switch {
		case err == nil:
			if shardRows == 0 {
				shardRows = loaded.ShardRows // adopt the checkpoint's geometry
			}
			cp = loaded
		case errors.Is(err, fs.ErrNotExist):
			// Nothing to resume: fresh run.
		default:
			return Stats{}, err
		}
	}
	plan := r.shardPlan(shardRows)
	if cp == nil {
		cp = r.newCheckpoint(plan)
	} else if err := r.checkpointCompat(cp, plan); err != nil {
		return Stats{}, err
	}

	if cp.DoneCount > 0 {
		// Credit the restored shards' work to the run's counters and the
		// caller's shard callback before anything re-runs, so a resumed
		// run's paths/adjacency gauges and /healthz coverage reach 100%
		// instead of ending short by the restored fraction — including
		// the fully-restored case below, which re-runs nothing at all.
		var restoredRows int64
		for s := int64(0); s < plan.numShards; s++ {
			if cp.Done[s] {
				restoredRows += min((s+1)*plan.shardRows, plan.rows) - s*plan.shardRows
			}
		}
		r.Obs.noteRestored(cp.NumPaths, cp.AdjChecked, cp.DoneCount)
		if cfg.OnShard != nil {
			cfg.OnShard(ShardDone{Shard: -1, Restored: true, Rows: restoredRows,
				Paths: cp.NumPaths, Done: cp.DoneCount, Total: plan.numShards})
		}
	}
	pending := make([]int64, 0, plan.numShards-cp.DoneCount)
	for s := int64(0); s < plan.numShards; s++ {
		if !cp.Done[s] {
			pending = append(pending, s)
		}
	}
	if len(pending) == 0 {
		st := cp.stats(r, start)
		return st, r.checkFullRoutingBounds(st)
	}
	if !r.LinearAdjacency {
		r.G.EnsureAdjacencyIndex() // build once, before the fan-out
	}
	if !r.SeedEnumeration {
		r.G.EnsureMetaRootIndex() // likewise; seed kernel walks instead
	}

	flushEvery := cfg.FlushEvery
	if flushEvery <= 0 {
		flushEvery = 1
	}
	maxClaims := int64(len(pending))
	if cfg.MaxShards > 0 && cfg.MaxShards < maxClaims {
		maxClaims = cfg.MaxShards
	}
	workers = clampWorkers(workers, maxClaims)

	var (
		next        atomic.Int64
		earliestErr atomic.Int64
		mu          sync.Mutex // guards cp, sinceFlush, saveErr, firstErr
		sinceFlush  int
		saveErr     error
		firstErr    error
		firstPos    = int64(math.MaxInt64)
	)
	earliestErr.Store(math.MaxInt64)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if cfg.Stop != nil {
					select {
					case <-cfg.Stop:
						// Drain requested: finish nothing new. Shards
						// already merged are persisted by the final
						// flush below, so the run resumes from here.
						return
					default:
					}
				}
				i := next.Add(1) - 1
				if i >= maxClaims {
					return
				}
				shard := pending[i]
				rowLo := shard * plan.shardRows
				rowHi := min(rowLo+plan.shardRows, plan.rows)
				// Shards are claimed in ascending row order, so an error
				// published before this shard precedes every later one
				// too: this worker is done.
				if earliestErr.Load() < rowLo*aK {
					return
				}
				var ws workerState
				span := r.Obs.startSpan("shard_enumerate")
				span.SetAttr("shard", strconv.FormatInt(shard, 10))
				r.scanRange(w, workers, rowLo, rowHi, &earliestErr, &ws)
				span.SetAttr("paths", strconv.FormatInt(ws.numPaths, 10))
				span.End()
				mu.Lock()
				if ws.err != nil {
					// Failed shards stay pending; completed ones keep
					// checkpointing so a fixed run resumes from them.
					if ws.errPos < firstPos {
						firstPos, firstErr = ws.errPos, ws.err
					}
					mu.Unlock()
					continue
				}
				mergeSpan := r.Obs.startSpan("shard_merge")
				mergeSpan.SetAttr("shard", strconv.FormatInt(shard, 10))
				cp.mergeShard(shard, &ws)
				mergeSpan.End()
				if in := r.Obs; in != nil {
					in.ShardsDone.Inc()
				}
				if cfg.OnShard != nil {
					cfg.OnShard(ShardDone{Shard: shard, Rows: rowHi - rowLo,
						Paths: ws.numPaths, Done: cp.DoneCount, Total: plan.numShards})
				}
				sinceFlush++
				if sinceFlush >= flushEvery {
					persistSpan := r.Obs.startSpan("checkpoint_persist")
					persistSpan.SetAttr("shards_done", strconv.FormatInt(cp.DoneCount, 10))
					if err := cp.save(cfg.Path, r.Obs); err != nil && saveErr == nil {
						saveErr = err
					}
					persistSpan.End()
					sinceFlush = 0
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	if sinceFlush > 0 {
		persistSpan := r.Obs.startSpan("checkpoint_persist")
		persistSpan.SetAttr("shards_done", strconv.FormatInt(cp.DoneCount, 10))
		if err := cp.save(cfg.Path, r.Obs); err != nil && saveErr == nil {
			saveErr = err
		}
		persistSpan.End()
	}
	st := cp.stats(r, start)
	switch {
	case saveErr != nil:
		// A run that cannot persist is not crash-safe: fail loudly
		// rather than report progress that would be lost.
		return st, saveErr
	case firstErr != nil:
		return st, firstErr
	case cp.DoneCount < plan.numShards:
		return st, fmt.Errorf("%w: %d/%d shards done (checkpoint %s)",
			ErrPaused, cp.DoneCount, plan.numShards, cfg.Path)
	}
	return st, r.checkFullRoutingBounds(st)
}
