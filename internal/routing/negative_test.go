package routing

// Negative controls: each verifier must *fail* when the object it
// checks is corrupted. A checker that cannot reject a broken instance
// verifies nothing; these tests pin the rejection behaviour.

import (
	"testing"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/cdag"
)

// corruptMatching returns a Strassen base matching with one A-side
// dependency rerouted to a product that is NOT adjacent to it (no chain
// can exist through it).
func corruptMatching(t *testing.T) (*bilinear.Algorithm, *BaseMatching) {
	t.Helper()
	alg := bilinear.Strassen()
	bm, err := NewBaseMatching(alg)
	if err != nil {
		t.Fatal(err)
	}
	// Find a guaranteed dep and a non-adjacent product.
	deps := GuaranteedBaseDeps(alg, bilinear.SideA)
	for _, d := range deps {
		adj := map[int]bool{}
		for _, p := range DepProducts(alg, bilinear.SideA, d[0], d[1]) {
			adj[p] = true
		}
		for p := 0; p < alg.B(); p++ {
			if !adj[p] {
				bm.matchA[d[0]*alg.A()+d[1]] = p
				return alg, bm
			}
		}
	}
	t.Fatal("no corruptible dependency found")
	return nil, nil
}

func TestCorruptMatchingRejectedByChainCheck(t *testing.T) {
	alg, bm := corruptMatching(t)
	g, err := cdag.New(alg, 2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouterWithMatching(g, bm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.VerifyGuaranteedRouting(); err == nil {
		t.Fatal("chain verification accepted a non-adjacent matching")
	}
}

func TestOverloadedMatchingRejectedByCapacityCheck(t *testing.T) {
	alg := bilinear.Strassen()
	bm, err := NewBaseMatching(alg)
	if err != nil {
		t.Fatal(err)
	}
	// Funnel three A-side deps into whatever product dep 0 uses.
	deps := GuaranteedBaseDeps(alg, bilinear.SideA)
	target := bm.MatchA(deps[0][0], deps[0][1])
	moved := 0
	for _, d := range deps[1:] {
		for _, p := range DepProducts(alg, bilinear.SideA, d[0], d[1]) {
			if p == target && bm.MatchA(d[0], d[1]) != target {
				bm.matchA[d[0]*alg.A()+d[1]] = target
				moved++
			}
		}
		if moved >= 2 {
			break
		}
	}
	if moved < 2 {
		t.Skip("could not overload a product on this matching")
	}
	if _, err := bm.VerifyCapacities(); err == nil {
		t.Fatal("capacity check accepted an overloaded matching")
	}
}

func TestSection8CheckerRejectsImpossibleBound(t *testing.T) {
	// Sanity that the value-class checker is a real inequality, not a
	// tautology: with k = 1 the bound is 6a and some class must be hit
	// close to it; shrinking the graph cannot push a class past the
	// bound, but the classical algorithm's input meta-vertices absorb
	// many paths — verify the checker actually counts > 0 loads.
	g, err := cdag.New(bilinear.Classical(2), 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(g)
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.VerifyValueClassRouting()
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxMetaHits < 4 {
		t.Errorf("suspiciously low class load %d", st.MaxMetaHits)
	}
}
