package routing

// Golden tests for the allocation-free enumeration kernel: the scratch
// kernel (appendPairPath + dense meta-root table + array dedup) must
// produce exactly the seed kernel's paths and Stats, and steady-state
// enumeration must not allocate. The seed kernel itself stays callable
// through Router.SeedEnumeration, which is what these tests (and the
// A9 ablation benchmark) exercise.

import (
	"fmt"
	"path/filepath"
	"testing"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/cdag"
)

// kernelCatalog is the algorithm × depth table the golden tests sweep.
// DisconnectedFast has a=16, so k=3 alone would be 33M pair paths —
// capped at k=2 to keep the suite fast; the other algorithms run k=1..3.
func kernelCatalog() []struct {
	alg  *bilinear.Algorithm
	maxK int
} {
	return []struct {
		alg  *bilinear.Algorithm
		maxK int
	}{
		{bilinear.Strassen(), 3},
		{bilinear.Winograd(), 3},
		{bilinear.Classical(2), 3},
		{bilinear.DisconnectedFast(), 2},
	}
}

// TestPairPathEnumerationZeroAllocs pins the tentpole claim: with the
// scratch and path buffer warm, enumerating every pair path of G_k
// performs zero heap allocations.
func TestPairPathEnumerationZeroAllocs(t *testing.T) {
	r := mustRouter(t, bilinear.Strassen(), 2)
	ps := r.newPathScratch()
	var buf []cdag.V
	aK := r.powA[r.k]
	enumerate := func() {
		for _, side := range []bilinear.Side{bilinear.SideA, bilinear.SideB} {
			for in := int64(0); in < aK; in++ {
				ps.setIn(r, in)
				ps.setOut(r, 0)
				for out := int64(0); out < aK; out++ {
					if out != 0 {
						ps.advanceOut(r)
					}
					buf = r.appendPairPath(ps, side, in, out, buf[:0])
				}
			}
		}
	}
	enumerate() // warm the path buffer so growth is not billed below
	if allocs := testing.AllocsPerRun(5, enumerate); allocs != 0 {
		t.Fatalf("steady-state pair-path enumeration: %v allocs/run, want 0", allocs)
	}
}

// TestPairPathMatchesSeedKernel compares the scratch kernel's output
// vertex-by-vertex against the preserved seed kernel for every pair
// path of every catalog algorithm at every depth.
func TestPairPathMatchesSeedKernel(t *testing.T) {
	for _, c := range kernelCatalog() {
		for k := 1; k <= c.maxK; k++ {
			r := mustRouter(t, c.alg, k)
			var seed []cdag.V
			r.ForEachPairPath(func(side bilinear.Side, in, out int64, path []cdag.V) {
				seed = r.seedPairPath(side, in, out, seed[:0])
				if len(seed) != len(path) {
					t.Fatalf("%s k=%d (side %v, in %d, out %d): scratch len %d, seed len %d",
						c.alg.Name, k, side, in, out, len(path), len(seed))
				}
				for i := range seed {
					if seed[i] != path[i] {
						t.Fatalf("%s k=%d (side %v, in %d, out %d): vertex %d: scratch %s, seed %s",
							c.alg.Name, k, side, in, out, i,
							r.G.Label(path[i]), r.G.Label(seed[i]))
					}
				}
			})
		}
	}
}

// TestSeedEnumerationStatsBitIdentical runs the full-routing verifiers
// with the seed kernel and the scratch kernel and requires bit-identical
// Stats (Elapsed aside) from the sequential, parallel, and checkpointed
// engines — the golden equivalence of the kernel rewrite.
func TestSeedEnumerationStatsBitIdentical(t *testing.T) {
	for _, c := range kernelCatalog() {
		for k := 1; k <= c.maxK; k++ {
			r := mustRouter(t, c.alg, k)
			r.SeedEnumeration = true
			want, err := r.VerifyFullRouting()
			if err != nil {
				t.Fatalf("%s k=%d seed: %v", c.alg.Name, k, err)
			}
			want.Elapsed = 0
			r.SeedEnumeration = false
			got, err := r.VerifyFullRouting()
			if err != nil {
				t.Fatalf("%s k=%d scratch: %v", c.alg.Name, k, err)
			}
			got.Elapsed = 0
			if got != want {
				t.Fatalf("%s k=%d sequential:\nscratch %+v\nseed    %+v", c.alg.Name, k, got, want)
			}
			for _, w := range equivalenceWorkers() {
				par, err := r.VerifyFullRoutingParallel(w)
				if err != nil {
					t.Fatalf("%s k=%d workers=%d: %v", c.alg.Name, k, w, err)
				}
				par.Elapsed = 0
				if par != want {
					t.Fatalf("%s k=%d workers=%d:\nscratch %+v\nseed    %+v", c.alg.Name, k, w, par, want)
				}
			}
			ckPath := filepath.Join(t.TempDir(), fmt.Sprintf("%s-k%d.ckpt", c.alg.Name, k))
			ck, err := r.VerifyFullRoutingCheckpointed(2, CheckpointConfig{Path: ckPath})
			if err != nil {
				t.Fatalf("%s k=%d checkpointed: %v", c.alg.Name, k, err)
			}
			ck.Elapsed = 0
			if ck != want {
				t.Fatalf("%s k=%d checkpointed:\nscratch %+v\nseed    %+v", c.alg.Name, k, ck, want)
			}
		}
	}
}

// TestGuaranteedChainEnumerationMatchesSeed checks that the direct
// free-digit enumeration of ForEachGuaranteedChain visits exactly the
// chains the seed's filter loop visited — same (side, in, out)
// sequence, same chain vertices, same order.
func TestGuaranteedChainEnumerationMatchesSeed(t *testing.T) {
	type rec struct {
		side  bilinear.Side
		in    int64
		out   int64
		chain string
	}
	for _, c := range kernelCatalog() {
		for k := 1; k <= c.maxK; k++ {
			r := mustRouter(t, c.alg, k)
			// Seed enumeration: test all aᵏ×aᵏ pairs, keep guaranteed ones.
			var want []rec
			var buf []cdag.V
			for _, side := range []bilinear.Side{bilinear.SideA, bilinear.SideB} {
				for in := int64(0); in < r.powA[r.k]; in++ {
					for out := int64(0); out < r.powA[r.k]; out++ {
						var ok bool
						buf, ok = r.AppendChain(side, in, out, buf[:0])
						if ok {
							want = append(want, rec{side, in, out, fmt.Sprint(buf)})
						}
					}
				}
			}
			var got []rec
			r.ForEachGuaranteedChain(func(side bilinear.Side, in, out int64, chain []cdag.V) {
				got = append(got, rec{side, in, out, fmt.Sprint(chain)})
			})
			if len(got) != len(want) {
				t.Fatalf("%s k=%d: %d chains enumerated, want %d", c.alg.Name, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s k=%d chain %d:\ngot  %+v\nwant %+v", c.alg.Name, k, i, got[i], want[i])
				}
			}
		}
	}
}

// TestChainUsageDenseCounters exercises the dense-counter rewrite of
// VerifyChainUsage across the catalog (the seed used per-pair slice
// allocations and map counters) and checks chainOut round-trips the
// index encoding it reports errors through.
func TestChainUsageDenseCounters(t *testing.T) {
	for _, c := range kernelCatalog() {
		for k := 1; k <= min(c.maxK, 2); k++ {
			r := mustRouter(t, c.alg, k)
			if err := r.VerifyChainUsage(); err != nil {
				t.Fatalf("%s k=%d: %v", c.alg.Name, k, err)
			}
			// chainOut must invert the (in, free) index: the chain it
			// names must be guaranteed and have the free digits it was
			// derived from.
			for in := int64(0); in < r.powA[r.k]; in++ {
				for free := int64(0); free < r.powN[r.k]; free++ {
					outA := r.chainOut(bilinear.SideA, in, free)
					if _, ok := r.AppendChain(bilinear.SideA, in, outA, nil); !ok {
						t.Fatalf("%s k=%d: chainOut(A, %d, %d) = %d is not guaranteed", c.alg.Name, k, in, free, outA)
					}
					outB := r.chainOut(bilinear.SideB, in, free)
					if _, ok := r.AppendChain(bilinear.SideB, in, outB, nil); !ok {
						t.Fatalf("%s k=%d: chainOut(B, %d, %d) = %d is not guaranteed", c.alg.Name, k, in, free, outB)
					}
				}
			}
		}
	}
}
