package routing

import (
	"fmt"
	"time"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/cdag"
)

// Stats reports the verified properties of a routing.
type Stats struct {
	// NumPaths is the number of paths in the routing.
	NumPaths int64
	// TotalHits is the summed length of all paths.
	TotalHits int64
	// MaxVertexHits is the largest number of times any single vertex is
	// used collectively by the routing (the m of an m-routing).
	MaxVertexHits int64
	// MaxMetaHits is the analogue over meta-vertices (all vertices
	// carrying the same value).
	MaxMetaHits int64
	// Bound is the paper's claimed bound for this routing.
	Bound int64
	// AdjacencyChecked is the number of paths whose every consecutive
	// pair was verified adjacent in G (see Router.AdjacencySampleStride).
	AdjacencyChecked int64
	// Elapsed is the wall time of the verification pass. It is
	// observability, not part of the verified claim: two runs over the
	// same routing agree on every other field but not on Elapsed, so
	// equivalence comparisons must ignore (or zero) it.
	Elapsed time.Duration
}

func (s Stats) String() string {
	out := fmt.Sprintf("paths=%d maxVertexHits=%d maxMetaHits=%d bound=%d",
		s.NumPaths, s.MaxVertexHits, s.MaxMetaHits, s.Bound)
	if s.Elapsed > 0 {
		out += fmt.Sprintf(" (%.3gs, %.3g paths/s)", s.Elapsed.Seconds(), s.PathsPerSecond())
	}
	return out
}

// PathsPerSecond returns the verification throughput, or 0 when no
// timing was recorded.
func (s Stats) PathsPerSecond() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.NumPaths) / s.Elapsed.Seconds()
}

// Progress is a periodic observability snapshot from a running
// VerifyFullRouting / VerifyFullRoutingParallel, delivered to
// Router.Progress. Snapshots arrive concurrently from several workers;
// the callback must be safe for concurrent use.
type Progress struct {
	// Worker identifies the reporting worker in [0, Workers).
	Worker int
	// Workers is the total worker count of this verification.
	Workers int
	// Done is the number of pair paths this worker has enumerated.
	Done int64
	// Total is the number of pair paths assigned to this worker.
	Total int64
	// PeakVertexHits is the largest per-vertex hit count in this
	// worker's local accumulator so far (the global maximum is the
	// final Stats.MaxVertexHits, available only after the merge).
	PeakVertexHits int64
	// Final marks the worker's last snapshot.
	Final bool
}

// checkAdjacent verifies that consecutive path vertices are joined by
// an edge of G in either direction (routings ignore edge direction),
// through the graph's CSR adjacency index.
func checkAdjacent(g *cdag.Graph, u, v cdag.V) bool {
	return g.Adjacent(u, v)
}

// checkAdjacentScan is the seed implementation of checkAdjacent: a
// per-edge linear scan over freshly enumerated parent slices. Kept only
// as the baseline Router.LinearAdjacency selects, so benchmarks can
// measure what the CSR index buys.
func checkAdjacentScan(g *cdag.Graph, u, v cdag.V) bool {
	for _, e := range g.Parents(v) {
		if e.To == u {
			return true
		}
	}
	for _, e := range g.Parents(u) {
		if e.To == v {
			return true
		}
	}
	return false
}

// adjacent dispatches between the CSR index and the legacy scan.
func (r *Router) adjacent(u, v cdag.V) bool {
	if r.LinearAdjacency {
		return checkAdjacentScan(r.G, u, v)
	}
	return checkAdjacent(r.G, u, v)
}

// checkChain verifies that the path is a chain: each vertex the parent
// of the next (chains are directed, unlike the undirected pair-path
// adjacency above).
func checkChain(g *cdag.Graph, path []cdag.V) error {
	for i := 0; i+1 < len(path); i++ {
		if !g.HasEdge(path[i], path[i+1]) {
			return fmt.Errorf("routing: not a chain: no edge %s -> %s",
				g.Label(path[i]), g.Label(path[i+1]))
		}
	}
	return nil
}

// VerifyGuaranteedRouting enumerates the Lemma 3 routing (one chain per
// guaranteed dependency of G_k, both sides) and verifies that it
// consists of chains, that each chain connects its dependency's input to
// its output, and that no vertex is hit more than 2n₀ᵏ times.
func (r *Router) VerifyGuaranteedRouting() (Stats, error) {
	start := time.Now()
	g := r.G
	hits := make(hitVec, g.NumVertices())
	st := Stats{Bound: 2 * r.powN[r.k]}
	var firstErr error
	r.ForEachGuaranteedChain(func(side bilinear.Side, in, out int64, chain []cdag.V) {
		if firstErr != nil {
			return
		}
		st.NumPaths++
		st.TotalHits += int64(len(chain))
		if len(chain) != 2*r.k+2 {
			firstErr = fmt.Errorf("routing: chain length %d, want %d", len(chain), 2*r.k+2)
			return
		}
		wantIn := g.InputA(in)
		if side == bilinear.SideB {
			wantIn = g.InputB(in)
		}
		if chain[0] != wantIn || chain[len(chain)-1] != g.Output(out) {
			firstErr = fmt.Errorf("routing: chain endpoints %s..%s for dep (%d,%d)",
				g.Label(chain[0]), g.Label(chain[len(chain)-1]), in, out)
			return
		}
		if err := checkChain(g, chain); err != nil {
			firstErr = err
			return
		}
		for _, v := range chain {
			hits.bump(v)
		}
	})
	st.Elapsed = time.Since(start)
	if firstErr != nil {
		return st, firstErr
	}
	st.MaxVertexHits = hits.max()
	if st.MaxVertexHits > st.Bound {
		return st, fmt.Errorf("routing: %s G_%d: Lemma 3 violated: vertex hit %d > 2n₀ᵏ = %d",
			g.Alg.Name, r.k, st.MaxVertexHits, st.Bound)
	}
	return st, nil
}

// VerifyFullRouting enumerates the Routing Theorem routing (a path for
// every input–output pair of G_k) and verifies path validity, the
// per-vertex hit bound 6aᵏ, and the per-meta-vertex hit bound 6aᵏ.
// Every AdjacencySampleStride-th path is additionally verified edge by
// edge against G's adjacency. It is the one-worker instance of
// VerifyFullRoutingParallel and returns bit-identical Stats (Elapsed
// aside) and identical errors.
func (r *Router) VerifyFullRouting() (Stats, error) {
	return r.verifyFullRouting(1)
}

// VerifyChainUsage checks the exact counting claim inside Lemma 4's
// proof: composed over all input–output pairs of both sides, every
// guaranteed-dependency chain is used exactly 3n₀ᵏ times.
//
// A guaranteed chain is determined by its input plus the k free output
// digits (the columns for an A-chain, the rows for a B-chain), so the
// counters live in two dense []int64 of size aᵏ·n₀ᵏ indexed by
// in·n₀ᵏ + packN(free) — no per-pair slice, closure, or map-key
// allocations (the seed allocated four slices and a closure per pair,
// O(a²ᵏ) total). Because every index corresponds to exactly one
// guaranteed dependency, "all entries equal 3n₀ᵏ" also subsumes the
// seed's separate completeness check that every dependency appears.
func (r *Router) VerifyChainUsage() error {
	aK := r.powA[r.k]
	n0K := r.powN[r.k]
	useA := make([]int64, aK*n0K)
	useB := make([]int64, aK*n0K)
	ps := r.newPathScratch()
	for in := int64(0); in < aK; in++ {
		ps.setIn(r, in)
		ps.setOut(r, 0)
		fIn := ps.packN(r, ps.iD) // row digits of in, packed base n₀
		fJn := ps.packN(r, ps.jD) // col digits of in, packed base n₀
		for out := int64(0); out < aK; out++ {
			if out != 0 {
				ps.advanceOut(r)
			}
			fOi := ps.packN(r, ps.oiD)
			fOj := ps.packN(r, ps.ojD)
			// A-side source: a_ij → c_ij′ → b_jj′ → c_i′j′.
			bIn := ps.pack(r, ps.jD, ps.ojD)
			useA[in*n0K+fOj]++  // chain a_ij → c_{i,j′}
			useB[bIn*n0K+fIn]++ // chain b_jj′ → c_{i,j′}
			useB[bIn*n0K+fOi]++ // chain b_jj′ → c_{i′,j′}
			// B-side source: b_ij → c_i′j → a_i′i → c_i′j′.
			aIn := ps.pack(r, ps.oiD, ps.iD)
			useB[in*n0K+fOi]++  // chain b_ij → c_{i′,j}
			useA[aIn*n0K+fJn]++ // chain a_i′i → c_{i′,j}
			useA[aIn*n0K+fOj]++ // chain a_i′i → c_{i′,j′}
		}
	}
	want := 3 * n0K
	for idx, c := range useA {
		if c != want {
			in, free := int64(idx)/n0K, int64(idx)%n0K
			return fmt.Errorf("routing: A-chain (%d→%d) used %d times, want exactly %d",
				in, r.chainOut(bilinear.SideA, in, free), c, want)
		}
	}
	for idx, c := range useB {
		if c != want {
			in, free := int64(idx)/n0K, int64(idx)%n0K
			return fmt.Errorf("routing: B-chain (%d→%d) used %d times, want exactly %d",
				in, r.chainOut(bilinear.SideB, in, free), c, want)
		}
	}
	return nil
}

// chainOut reconstructs the packed output of the guaranteed chain of
// the given side from its input and its packed free digits (base n₀):
// an A-chain keeps the input's row digits and takes the free digits as
// columns, a B-chain the reverse.
func (r *Router) chainOut(side bilinear.Side, in, free int64) int64 {
	n0 := int64(r.n0)
	var out int64
	for l := 0; l < r.k; l++ {
		e := in / r.powA[r.k-1-l] % r.a
		f := free / r.powN[r.k-1-l] % n0
		if side == bilinear.SideA {
			out = out*r.a + (e/n0)*n0 + f
		} else {
			out = out*r.a + f*n0 + e%n0
		}
	}
	return out
}

// VerifyValueClassRouting re-verifies the Routing Theorem's 6aᵏ bound
// with vertices identified by *value class* (cdag.ValueRoot) instead of
// meta-vertex: vertices provably carrying the same value — including
// nontrivial linear combinations reused by several multiplications —
// count as one. This is the vertex identification of the paper's
// "one vertex per value" model, and therefore an empirical test of the
// Section 8 conjecture that the standing one-multiplication-per-
// combination assumption can be lifted: for algorithms violating the
// assumption (G.HasValueSharing()), a per-class load within 6aᵏ is
// exactly what the conjecture predicts. The error reports a violation;
// Stats.MaxMetaHits carries the per-class maximum (counted per path).
func (r *Router) VerifyValueClassRouting() (Stats, error) {
	start := time.Now()
	g := r.G
	st := Stats{Bound: 6 * r.powA[r.k]}
	// Dense per-class accumulator and fixed-size array dedup, as in
	// scanRows: a path has 3(2k+2)-2 vertices, so at most that many
	// distinct roots — a linear scan beats a map at that size, and the
	// enumeration loop stays allocation-free.
	classHits := make(hitVec, g.NumVertices())
	roots := make([]cdag.V, 0, 3*(2*r.k+2)-2)
	// Cache ValueRoot: it is pure per vertex.
	cache := make([]cdag.V, g.NumVertices())
	for i := range cache {
		cache[i] = -1
	}
	r.ForEachPairPath(func(side bilinear.Side, in, out int64, path []cdag.V) {
		st.NumPaths++
		st.TotalHits += int64(len(path))
		roots = roots[:0]
		for _, v := range path {
			root := cache[v]
			if root < 0 {
				root = g.ValueRoot(v)
				cache[v] = root
			}
			seen := false
			for _, s := range roots {
				if s == root {
					seen = true
					break
				}
			}
			if !seen {
				roots = append(roots, root)
			}
		}
		for _, root := range roots {
			classHits[root]++
		}
	})
	st.MaxMetaHits = classHits.max()
	st.MaxVertexHits = st.MaxMetaHits
	st.Elapsed = time.Since(start)
	if st.MaxMetaHits > st.Bound {
		return st, fmt.Errorf(
			"routing: %s G_%d: Section 8 check: value class hit by %d paths > 6aᵏ = %d",
			g.Alg.Name, r.k, st.MaxMetaHits, st.Bound)
	}
	return st, nil
}
