package routing

import (
	"fmt"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/cdag"
)

// Stats reports the verified properties of a routing.
type Stats struct {
	// NumPaths is the number of paths in the routing.
	NumPaths int64
	// TotalHits is the summed length of all paths.
	TotalHits int64
	// MaxVertexHits is the largest number of times any single vertex is
	// used collectively by the routing (the m of an m-routing).
	MaxVertexHits int
	// MaxMetaHits is the analogue over meta-vertices (all vertices
	// carrying the same value).
	MaxMetaHits int
	// Bound is the paper's claimed bound for this routing.
	Bound int64
}

func (s Stats) String() string {
	return fmt.Sprintf("paths=%d maxVertexHits=%d maxMetaHits=%d bound=%d",
		s.NumPaths, s.MaxVertexHits, s.MaxMetaHits, s.Bound)
}

// checkAdjacent verifies that consecutive path vertices are joined by an
// edge of G in either direction (routings ignore edge direction).
func checkAdjacent(g *cdag.Graph, u, v cdag.V) bool {
	for _, e := range g.Parents(v) {
		if e.To == u {
			return true
		}
	}
	for _, e := range g.Parents(u) {
		if e.To == v {
			return true
		}
	}
	return false
}

// checkChain verifies that the path is a chain: each vertex the parent
// of the next.
func checkChain(g *cdag.Graph, path []cdag.V) error {
	for i := 0; i+1 < len(path); i++ {
		found := false
		for _, e := range g.Parents(path[i+1]) {
			if e.To == path[i] {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("routing: not a chain: no edge %s -> %s",
				g.Label(path[i]), g.Label(path[i+1]))
		}
	}
	return nil
}

// VerifyGuaranteedRouting enumerates the Lemma 3 routing (one chain per
// guaranteed dependency of G_k, both sides) and verifies that it
// consists of chains, that each chain connects its dependency's input to
// its output, and that no vertex is hit more than 2n₀ᵏ times.
func (r *Router) VerifyGuaranteedRouting() (Stats, error) {
	g := r.G
	hits := make([]int32, g.NumVertices())
	st := Stats{Bound: 2 * r.powN[r.k]}
	var firstErr error
	r.ForEachGuaranteedChain(func(side bilinear.Side, in, out int64, chain []cdag.V) {
		if firstErr != nil {
			return
		}
		st.NumPaths++
		st.TotalHits += int64(len(chain))
		if len(chain) != 2*r.k+2 {
			firstErr = fmt.Errorf("routing: chain length %d, want %d", len(chain), 2*r.k+2)
			return
		}
		wantIn := g.InputA(in)
		if side == bilinear.SideB {
			wantIn = g.InputB(in)
		}
		if chain[0] != wantIn || chain[len(chain)-1] != g.Output(out) {
			firstErr = fmt.Errorf("routing: chain endpoints %s..%s for dep (%d,%d)",
				g.Label(chain[0]), g.Label(chain[len(chain)-1]), in, out)
			return
		}
		if err := checkChain(g, chain); err != nil {
			firstErr = err
			return
		}
		for _, v := range chain {
			hits[v]++
		}
	})
	if firstErr != nil {
		return st, firstErr
	}
	for _, h := range hits {
		if int(h) > st.MaxVertexHits {
			st.MaxVertexHits = int(h)
		}
	}
	if int64(st.MaxVertexHits) > st.Bound {
		return st, fmt.Errorf("routing: %s G_%d: Lemma 3 violated: vertex hit %d > 2n₀ᵏ = %d",
			g.Alg.Name, r.k, st.MaxVertexHits, st.Bound)
	}
	return st, nil
}

// VerifyFullRouting enumerates the Routing Theorem routing (a path for
// every input–output pair of G_k) and verifies path validity, the
// per-vertex hit bound 6aᵏ, and the per-meta-vertex hit bound 6aᵏ.
func (r *Router) VerifyFullRouting() (Stats, error) {
	g := r.G
	nV := g.NumVertices()
	hits := make([]int32, nV)
	st := Stats{Bound: 6 * r.powA[r.k]}
	var firstErr error
	wantLen := 3*(2*r.k+2) - 2
	r.ForEachPairPath(func(side bilinear.Side, in, out int64, path []cdag.V) {
		if firstErr != nil {
			return
		}
		st.NumPaths++
		st.TotalHits += int64(len(path))
		if len(path) != wantLen {
			firstErr = fmt.Errorf("routing: pair path length %d, want %d", len(path), wantLen)
			return
		}
		wantIn := g.InputA(in)
		if side == bilinear.SideB {
			wantIn = g.InputB(in)
		}
		if path[0] != wantIn || path[len(path)-1] != g.Output(out) {
			firstErr = fmt.Errorf("routing: pair path endpoints %s..%s",
				g.Label(path[0]), g.Label(path[len(path)-1]))
			return
		}
		for _, v := range path {
			hits[v]++
		}
	})
	if firstErr != nil {
		return st, firstErr
	}

	// Spot-check adjacency on a sample of paths (full adjacency of every
	// path is covered by chain checks in VerifyGuaranteedRouting plus
	// the junction structure; this guards the composition itself).
	sample := int64(0)
	r.ForEachPairPath(func(side bilinear.Side, in, out int64, path []cdag.V) {
		if firstErr != nil || sample%257 != 0 {
			sample++
			return
		}
		sample++
		for i := 0; i+1 < len(path); i++ {
			if !checkAdjacent(g, path[i], path[i+1]) {
				firstErr = fmt.Errorf("routing: pair path not connected at %s -- %s",
					g.Label(path[i]), g.Label(path[i+1]))
				return
			}
		}
	})
	if firstErr != nil {
		return st, firstErr
	}

	// Per-vertex bound.
	for _, h := range hits {
		if int(h) > st.MaxVertexHits {
			st.MaxVertexHits = int(h)
		}
	}
	// Per-meta-vertex bound. The theorem counts how many *paths* hit a
	// meta-vertex (each boundary-crossing path is charged once): within
	// one path, a meta-vertex hit several times in a row (a chain
	// climbing through its own copies) still counts once.
	metaHits := make(map[cdag.V]int64)
	roots := make(map[cdag.V]struct{}, 8)
	r.ForEachPairPath(func(side bilinear.Side, in, out int64, path []cdag.V) {
		clear(roots)
		for _, v := range path {
			roots[g.MetaRoot(v)] = struct{}{}
		}
		for root := range roots {
			metaHits[root]++
		}
	})
	for _, h := range metaHits {
		if int(h) > st.MaxMetaHits {
			st.MaxMetaHits = int(h)
		}
	}
	if int64(st.MaxVertexHits) > st.Bound {
		return st, fmt.Errorf("routing: %s G_%d: Routing Theorem violated: vertex hit %d > 6aᵏ = %d",
			g.Alg.Name, r.k, st.MaxVertexHits, st.Bound)
	}
	if int64(st.MaxMetaHits) > st.Bound {
		return st, fmt.Errorf("routing: %s G_%d: Routing Theorem violated: meta-vertex hit %d > 6aᵏ = %d",
			g.Alg.Name, r.k, st.MaxMetaHits, st.Bound)
	}
	return st, nil
}

// VerifyChainUsage checks the exact counting claim inside Lemma 4's
// proof: composed over all input–output pairs of both sides, every
// guaranteed-dependency chain is used exactly 3n₀ᵏ times.
func (r *Router) VerifyChainUsage() error {
	aK := r.powA[r.k]
	useA := make(map[[2]int64]int64)
	useB := make(map[[2]int64]int64)
	n0 := int64(r.n0)
	for in := int64(0); in < aK; in++ {
		for out := int64(0); out < aK; out++ {
			// Recompute the three chains symbolically (per PairPath).
			iD := make([]int64, r.k)
			jD := make([]int64, r.k)
			oiD := make([]int64, r.k)
			ojD := make([]int64, r.k)
			for l := 0; l < r.k; l++ {
				e := in / r.powA[r.k-1-l] % r.a
				o := out / r.powA[r.k-1-l] % r.a
				iD[l], jD[l] = e/n0, e%n0
				oiD[l], ojD[l] = o/n0, o%n0
			}
			pack := func(rows, cols []int64) int64 {
				var x int64
				for l := 0; l < r.k; l++ {
					x = x*r.a + rows[l]*n0 + cols[l]
				}
				return x
			}
			// A-side source.
			mid := pack(iD, ojD)
			bIn := pack(jD, ojD)
			useA[[2]int64{in, mid}]++
			useB[[2]int64{bIn, mid}]++
			useB[[2]int64{bIn, out}]++
			// B-side source.
			midB := pack(oiD, jD)
			aIn := pack(oiD, iD)
			useB[[2]int64{in, midB}]++
			useA[[2]int64{aIn, midB}]++
			useA[[2]int64{aIn, out}]++
		}
	}
	want := 3 * r.powN[r.k]
	for dep, c := range useA {
		if c != want {
			return fmt.Errorf("routing: A-chain (%d→%d) used %d times, want exactly %d", dep[0], dep[1], c, want)
		}
	}
	for dep, c := range useB {
		if c != want {
			return fmt.Errorf("routing: B-chain (%d→%d) used %d times, want exactly %d", dep[0], dep[1], c, want)
		}
	}
	// Every guaranteed dependency must actually appear.
	wantDeps := int64(0)
	for in := int64(0); in < aK; in++ {
		for out := int64(0); out < aK; out++ {
			if r.GuaranteedA(in, out) {
				wantDeps++
			}
		}
	}
	if int64(len(useA)) != wantDeps {
		return fmt.Errorf("routing: %d A-chains used, want %d", len(useA), wantDeps)
	}
	if int64(len(useB)) != wantDeps {
		return fmt.Errorf("routing: %d B-chains used, want %d", len(useB), wantDeps)
	}
	return nil
}

// VerifyValueClassRouting re-verifies the Routing Theorem's 6aᵏ bound
// with vertices identified by *value class* (cdag.ValueRoot) instead of
// meta-vertex: vertices provably carrying the same value — including
// nontrivial linear combinations reused by several multiplications —
// count as one. This is the vertex identification of the paper's
// "one vertex per value" model, and therefore an empirical test of the
// Section 8 conjecture that the standing one-multiplication-per-
// combination assumption can be lifted: for algorithms violating the
// assumption (G.HasValueSharing()), a per-class load within 6aᵏ is
// exactly what the conjecture predicts. The error reports a violation;
// Stats.MaxMetaHits carries the per-class maximum (counted per path).
func (r *Router) VerifyValueClassRouting() (Stats, error) {
	g := r.G
	st := Stats{Bound: 6 * r.powA[r.k]}
	classHits := make(map[cdag.V]int64)
	roots := make(map[cdag.V]struct{}, 16)
	// Cache ValueRoot: it is pure per vertex.
	cache := make([]cdag.V, g.NumVertices())
	for i := range cache {
		cache[i] = -1
	}
	r.ForEachPairPath(func(side bilinear.Side, in, out int64, path []cdag.V) {
		st.NumPaths++
		st.TotalHits += int64(len(path))
		clear(roots)
		for _, v := range path {
			root := cache[v]
			if root < 0 {
				root = g.ValueRoot(v)
				cache[v] = root
			}
			roots[root] = struct{}{}
		}
		for root := range roots {
			classHits[root]++
		}
	})
	for _, h := range classHits {
		if int(h) > st.MaxMetaHits {
			st.MaxMetaHits = int(h)
		}
	}
	st.MaxVertexHits = st.MaxMetaHits
	if int64(st.MaxMetaHits) > st.Bound {
		return st, fmt.Errorf(
			"routing: %s G_%d: Section 8 check: value class hit by %d paths > 6aᵏ = %d",
			g.Alg.Name, r.k, st.MaxMetaHits, st.Bound)
	}
	return st, nil
}
