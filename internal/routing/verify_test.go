package routing

// Tests for the hardened verification path: int64 hit counters, the
// parallel/sequential equivalence contract, deterministic first-error
// selection, cooperative cancellation, and progress reporting.

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/cdag"
)

// TestHitCountersSurviveInt32Overflow is the regression test for the
// int32 hit arrays the verifiers used to carry: counters crossing 2³¹
// must keep counting instead of wrapping negative. Real accumulation of
// 2³¹ hits is too slow for a test, so it drives the hitVec seam the
// verifiers now share.
func TestHitCountersSurviveInt32Overflow(t *testing.T) {
	h := make(hitVec, 4)
	h[1] = math.MaxInt32 - 1
	var peak int64
	for i := 0; i < 3; i++ {
		peak = max(peak, h.bump(1))
	}
	want := int64(math.MaxInt32) + 2
	if peak != want || h.max() != want {
		t.Fatalf("peak = %d, max = %d, want %d", peak, h.max(), want)
	}
	if h.max() <= math.MaxInt32 {
		t.Fatalf("counter failed to pass the int32 range")
	}
	// The seed's representation would have wrapped negative here and
	// reported a tiny "maximum", silently certifying a violated bound.
	if wrapped := int32(h[1]); wrapped >= 0 {
		t.Fatalf("test is vacuous: int32 image %d did not wrap", wrapped)
	}
	// merge must stay in int64 too.
	g := make(hitVec, 4)
	g[1] = math.MaxInt32
	g.merge(h)
	if g.max() != want+math.MaxInt32 {
		t.Fatalf("merge lost width: %d", g.max())
	}
}

// equivalenceWorkers is the worker-count table of the parallel ==
// sequential contract: one, even, odd-and-awkward, and whatever the
// machine has.
func equivalenceWorkers() []int {
	return []int{1, 2, 7, runtime.GOMAXPROCS(0)}
}

// TestParallelStatsBitIdentical verifies that VerifyFullRoutingParallel
// returns *bit-identical* Stats to VerifyFullRouting — not merely the
// same bounds — for every worker count in the table, on a healthy
// algorithm and on a catalog algorithm with a disconnected base
// decoding graph.
func TestParallelStatsBitIdentical(t *testing.T) {
	for _, c := range []struct {
		alg *bilinear.Algorithm
		k   int
	}{
		{bilinear.Strassen(), 3},
		{bilinear.DisconnectedFast(), 2},
	} {
		r := mustRouter(t, c.alg, c.k)
		seq, err := r.VerifyFullRouting()
		if err != nil {
			t.Fatalf("%s k=%d: %v", c.alg.Name, c.k, err)
		}
		seq.Elapsed = 0 // wall time is observability, not part of the contract
		for _, w := range equivalenceWorkers() {
			par, err := r.VerifyFullRoutingParallel(w)
			if err != nil {
				t.Fatalf("%s k=%d workers=%d: %v", c.alg.Name, c.k, w, err)
			}
			par.Elapsed = 0
			if par != seq {
				t.Fatalf("%s k=%d workers=%d:\nparallel   %+v\nsequential %+v",
					c.alg.Name, c.k, w, par, seq)
			}
		}
	}
}

// corruptRouter builds a Router over a corrupted Strassen matching with
// full (stride 1) adjacency checking, so the corruption is caught on
// the first path that uses the rerouted dependency.
func corruptRouter(t *testing.T, k int) *Router {
	t.Helper()
	alg, bm := corruptMatching(t)
	g, err := cdag.New(alg, k)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouterWithMatching(g, bm)
	if err != nil {
		t.Fatal(err)
	}
	r.AdjacencySampleStride = 1
	return r
}

// TestParallelReportsSequentialError pins the deterministic failure
// contract: for a corrupted routing, every worker count must report
// exactly the error the sequential verifier reports — the one at the
// earliest position in enumeration order — not whichever worker
// happened to fail first.
func TestParallelReportsSequentialError(t *testing.T) {
	r := corruptRouter(t, 3)
	_, seqErr := r.VerifyFullRouting()
	if seqErr == nil {
		t.Fatal("sequential verifier accepted a corrupted matching")
	}
	for _, w := range equivalenceWorkers() {
		for trial := 0; trial < 3; trial++ { // scheduling is nondeterministic; the error must not be
			_, parErr := r.VerifyFullRoutingParallel(w)
			if parErr == nil {
				t.Fatalf("workers=%d: corrupted matching accepted", w)
			}
			if parErr.Error() != seqErr.Error() {
				t.Fatalf("workers=%d trial %d:\nparallel   %v\nsequential %v",
					w, trial, parErr, seqErr)
			}
		}
	}
}

// TestWorkerCancelsOnPublishedError drives scanRows directly against a
// pre-published error position and checks the cancellation contract at
// both granularities: an error before the worker's row range stops it
// before any work, and an error inside the range stops it at the next
// row boundary — while an error after the range does not stop it at
// all (it might still own an earlier failure).
func TestWorkerCancelsOnPublishedError(t *testing.T) {
	r := mustRouter(t, bilinear.Strassen(), 2) // aK = 16, 32 rows
	aK := r.powA[r.k]

	run := func(published int64, rowLo, rowHi int64) workerState {
		var earliest atomic.Int64
		earliest.Store(published)
		var out workerState
		r.scanRows(1, 2, rowLo, rowHi, &earliest, &out)
		return out
	}

	if got := run(0, 5, 10); got.numPaths != 0 {
		t.Errorf("error before range: worker enumerated %d paths, want 0", got.numPaths)
	}
	// Error inside the range, at row 7 (side A, input 7): the worker
	// checks cancellation once per row, so it finishes rows 5..7 (the
	// row owning the error position must still be scanned — this worker
	// might find an even earlier failure inside it).
	if got := run(r.pairIndex(bilinear.SideA, 7, 3), 5, 10); got.numPaths != 3*aK {
		t.Errorf("error inside range: worker enumerated %d paths, want %d", got.numPaths, 3*aK)
	}
	// Error after the range: no cancellation, full scan of all 5 rows.
	if got := run(r.pairIndex(bilinear.SideB, 12, 0), 5, 10); got.numPaths != 5*aK {
		t.Errorf("error after range: worker enumerated %d paths, want %d", got.numPaths, 5*aK)
	}
	if got := run(math.MaxInt64, 5, 10); got.err != nil || got.numPaths != 5*aK {
		t.Errorf("healthy run: err=%v paths=%d", got.err, got.numPaths)
	}
	// A range spanning the side boundary (rows aK-1 and aK are the last
	// A-input and the first B-input) scans both sides' rows.
	if got := run(math.MaxInt64, aK-1, aK+1); got.err != nil || got.numPaths != 2*aK {
		t.Errorf("side-boundary range: err=%v paths=%d, want %d", got.err, got.numPaths, 2*aK)
	}
}

// TestParallelCancellationStopsEarly is the end-to-end companion: on a
// corrupted routing at k=4 (131072 paths) with full adjacency checking,
// the parallel verifier must stop well short of enumerating everything.
func TestParallelCancellationStopsEarly(t *testing.T) {
	r := corruptRouter(t, 4)
	total := 2 * r.powA[r.k] * r.powA[r.k]
	st, err := r.VerifyFullRoutingParallel(8)
	if err == nil {
		t.Fatal("corrupted matching accepted")
	}
	if st.NumPaths >= 3*total/4 {
		t.Fatalf("workers did not cancel: %d of %d paths enumerated", st.NumPaths, total)
	}
}

// TestProgressReporting checks the observability contract: every worker
// emits a final snapshot whose Done covers its whole slice, and the
// final snapshots sum to the verified path count.
func TestProgressReporting(t *testing.T) {
	r := mustRouter(t, bilinear.Strassen(), 2)
	var mu sync.Mutex
	finals := make(map[int]Progress)
	var snapshots int
	r.Progress = func(p Progress) {
		mu.Lock()
		defer mu.Unlock()
		snapshots++
		if p.Worker < 0 || p.Worker >= p.Workers {
			t.Errorf("worker %d out of range [0,%d)", p.Worker, p.Workers)
		}
		if p.Final {
			finals[p.Worker] = p
		}
	}
	st, err := r.VerifyFullRoutingParallel(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(finals) != 4 {
		t.Fatalf("%d final snapshots, want 4", len(finals))
	}
	var done int64
	for w, p := range finals {
		if p.Done != p.Total {
			t.Errorf("worker %d: final Done %d != Total %d", w, p.Done, p.Total)
		}
		if p.PeakVertexHits <= 0 || p.PeakVertexHits > st.MaxVertexHits {
			t.Errorf("worker %d: peak %d outside (0, %d]", w, p.PeakVertexHits, st.MaxVertexHits)
		}
		done += p.Done
	}
	if done != st.NumPaths {
		t.Errorf("workers report %d paths, stats report %d", done, st.NumPaths)
	}
	r.Progress = nil
}

// TestLinearAdjacencyAgreesWithCSR pins the two adjacency back ends to
// each other on every edge of sampled paths, so the benchmark knob can
// never drift from the indexed implementation.
func TestLinearAdjacencyAgreesWithCSR(t *testing.T) {
	r := mustRouter(t, bilinear.Winograd(), 2)
	g := r.G
	checked := 0
	r.ForEachPairPath(func(side bilinear.Side, in, out int64, path []cdag.V) {
		if (in+out)%17 != 0 {
			return
		}
		for i := 0; i+1 < len(path); i++ {
			csr := checkAdjacent(g, path[i], path[i+1])
			scan := checkAdjacentScan(g, path[i], path[i+1])
			if csr != scan {
				t.Fatalf("adjacency backends disagree on %s -- %s: csr=%v scan=%v",
					g.Label(path[i]), g.Label(path[i+1]), csr, scan)
			}
			checked++
		}
	})
	if checked == 0 {
		t.Fatal("no edges checked")
	}
	// And on the verifier level: LinearAdjacency must not change stats.
	st1, err1 := r.VerifyFullRouting()
	r.LinearAdjacency = true
	st2, err2 := r.VerifyFullRouting()
	r.LinearAdjacency = false
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v, %v", err1, err2)
	}
	st1.Elapsed, st2.Elapsed = 0, 0
	if st1 != st2 {
		t.Fatalf("LinearAdjacency changed stats: %+v vs %+v", st1, st2)
	}
}

// TestWorkerPartitionCoversRange checks the slice partition for worker
// counts around and above the input count: slices must tile [0, aK)
// exactly, differ in size by at most one, and clamp to aK workers.
func TestWorkerPartitionCoversRange(t *testing.T) {
	r := mustRouter(t, bilinear.Strassen(), 1) // aK = 4
	for _, w := range []int{1, 2, 3, 4, 5, 64} {
		st, err := r.VerifyFullRoutingParallel(w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if want := 2 * r.powA[r.k] * r.powA[r.k]; st.NumPaths != want {
			t.Fatalf("workers=%d: %d paths, want %d", w, st.NumPaths, want)
		}
	}
}
