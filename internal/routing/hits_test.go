package routing

// Unit tests for the hitVec block helpers the stage-2 orbit kernel
// accumulates member progressions through: addBlock must match count
// individual adds on consecutive counters, bumpStride count individual
// bumps spaced stride apart, and neither may touch a counter outside
// its progression.

import (
	"testing"

	"pathrouting/internal/cdag"
)

func TestHitVecAddBlock(t *testing.T) {
	got := make(hitVec, 16)
	want := make(hitVec, 16)
	for i := range got {
		got[i] = int64(i) // nonzero background to catch overwrites
		want[i] = int64(i)
	}
	got.addBlock(cdag.V(3), 5, 7)
	for i := 0; i < 5; i++ {
		want.add(cdag.V(3+i), 7)
	}
	got.addBlock(cdag.V(15), 1, 2) // single-element block at the tail
	want.add(cdag.V(15), 2)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("counter %d: got %d, want %d", v, got[v], want[v])
		}
	}
}

func TestHitVecBumpStride(t *testing.T) {
	got := make(hitVec, 32)
	want := make(hitVec, 32)
	got.bumpStride(cdag.V(2), 3, 5) // hits 2, 5, 8, 11, 14
	for i := 0; i < 5; i++ {
		want.bump(cdag.V(2 + 3*i))
	}
	got.bumpStride(cdag.V(31), 4, 1) // count 1: stride must not matter
	want.bump(cdag.V(31))
	got.bumpStride(cdag.V(20), 1, 3) // stride 1 degenerates to addBlock n=1
	want.addBlock(cdag.V(20), 3, 1)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("counter %d: got %d, want %d", v, got[v], want[v])
		}
	}
}
