package routing

// Tests for the sharded checkpoint/resume layer: interrupt-anywhere
// bit-identical resume, worker-count independence, compatibility
// rejection, pause semantics, and deterministic error reporting.

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/obs"
)

// TestCheckpointResumeBitIdentical is the round-trip property test:
// for every interruption point i, a run killed after shard i (via
// MaxShards) and resumed to completion — across *varying* worker
// counts — reports Stats bit-identical (Elapsed aside) to an
// uninterrupted parallel run and to the sequential verifier.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	r := mustRouter(t, bilinear.Strassen(), 3) // aK = 64, 128 rows
	want, err := r.VerifyFullRouting()
	if err != nil {
		t.Fatal(err)
	}
	want.Elapsed = 0

	const shardRows = 16 // 8 shards
	workersAt := []int{1, 2, 7, 3, 5, 4, 2, 1, 6}
	for interrupt := int64(1); interrupt <= 7; interrupt++ {
		path := filepath.Join(t.TempDir(), "run.ckpt")
		// First leg: complete exactly `interrupt` shards, then stop.
		st, err := r.VerifyFullRoutingCheckpointed(workersAt[interrupt%int64(len(workersAt))], CheckpointConfig{
			Path: path, ShardRows: shardRows, MaxShards: interrupt, Resume: true,
		})
		if !errors.Is(err, ErrPaused) {
			t.Fatalf("interrupt=%d: expected ErrPaused, got %v", interrupt, err)
		}
		if st.NumPaths >= want.NumPaths {
			t.Fatalf("interrupt=%d: paused run already enumerated %d of %d paths", interrupt, st.NumPaths, want.NumPaths)
		}
		cp, err := LoadCheckpoint(path)
		if err != nil {
			t.Fatalf("interrupt=%d: %v", interrupt, err)
		}
		if cp.DoneCount != interrupt {
			t.Fatalf("interrupt=%d: checkpoint has %d shards done", interrupt, cp.DoneCount)
		}
		// Second leg: resume with a different worker count.
		st, err = r.VerifyFullRoutingCheckpointed(workersAt[(interrupt+3)%int64(len(workersAt))], CheckpointConfig{
			Path: path, ShardRows: shardRows, Resume: true,
		})
		if err != nil {
			t.Fatalf("interrupt=%d resume: %v", interrupt, err)
		}
		st.Elapsed = 0
		if st != want {
			t.Fatalf("interrupt=%d:\nresumed      %+v\nuninterrupted %+v", interrupt, st, want)
		}
	}
}

// TestCheckpointedMatchesParallelWithoutInterrupt pins the zero-
// interruption case at several worker counts and shard sizes,
// including a shard size that does not divide the row count.
func TestCheckpointedMatchesParallelWithoutInterrupt(t *testing.T) {
	r := mustRouter(t, bilinear.DisconnectedFast(), 2) // a = 16, aK = 256
	want, err := r.VerifyFullRoutingParallel(4)
	if err != nil {
		t.Fatal(err)
	}
	want.Elapsed = 0
	for _, shardRows := range []int64{1, 7, 64, 512, 100000} {
		for _, w := range []int{1, 3, 8} {
			st, err := r.VerifyFullRoutingCheckpointed(w, CheckpointConfig{
				Path: filepath.Join(t.TempDir(), "run.ckpt"), ShardRows: shardRows,
			})
			if err != nil {
				t.Fatalf("shardRows=%d workers=%d: %v", shardRows, w, err)
			}
			st.Elapsed = 0
			if st != want {
				t.Fatalf("shardRows=%d workers=%d:\ncheckpointed %+v\nplain        %+v", shardRows, w, st, want)
			}
		}
	}
}

// TestCheckpointAlreadyCompleteResume verifies that resuming a finished
// checkpoint re-derives the final Stats from the cached state alone,
// without re-enumerating any path.
func TestCheckpointAlreadyCompleteResume(t *testing.T) {
	r := mustRouter(t, bilinear.Strassen(), 2)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	first, err := r.VerifyFullRoutingCheckpointed(2, CheckpointConfig{Path: path, ShardRows: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Any re-enumeration would call Progress; forbid it.
	r.Progress = func(Progress) { t.Error("resume of a complete checkpoint re-enumerated paths") }
	again, err := r.VerifyFullRoutingCheckpointed(2, CheckpointConfig{Path: path, ShardRows: 4, Resume: true})
	r.Progress = nil
	if err != nil {
		t.Fatal(err)
	}
	first.Elapsed, again.Elapsed = 0, 0
	if first != again {
		t.Fatalf("cached stats differ:\nfirst %+v\nagain %+v", first, again)
	}
}

// TestCheckpointCompatRejected pins the guard rails: a checkpoint from
// a different (alg, k) or shard geometry or adjacency stride must be
// rejected, not silently merged.
func TestCheckpointCompatRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	r2 := mustRouter(t, bilinear.Strassen(), 2)
	if _, err := r2.VerifyFullRoutingCheckpointed(2, CheckpointConfig{Path: path, ShardRows: 4}); err != nil {
		t.Fatal(err)
	}

	r3 := mustRouter(t, bilinear.Strassen(), 3)
	if _, err := r3.VerifyFullRoutingCheckpointed(2, CheckpointConfig{Path: path, ShardRows: 4, Resume: true}); err == nil {
		t.Fatal("k mismatch accepted")
	}
	if _, err := r2.VerifyFullRoutingCheckpointed(2, CheckpointConfig{Path: path, ShardRows: 8, Resume: true}); err == nil {
		t.Fatal("shard-size mismatch accepted")
	}
	r2b := mustRouter(t, bilinear.Strassen(), 2)
	r2b.AdjacencySampleStride = 1
	if _, err := r2b.VerifyFullRoutingCheckpointed(2, CheckpointConfig{Path: path, ShardRows: 4, Resume: true}); err == nil {
		t.Fatal("adjacency-stride mismatch accepted")
	}
	rw := mustRouter(t, bilinear.Winograd(), 2)
	if _, err := rw.VerifyFullRoutingCheckpointed(2, CheckpointConfig{Path: path, ShardRows: 4, Resume: true}); err == nil {
		t.Fatal("algorithm mismatch accepted")
	}
	// Without Resume, an existing incompatible file is simply replaced.
	if _, err := rw.VerifyFullRoutingCheckpointed(2, CheckpointConfig{Path: path, ShardRows: 4}); err != nil {
		t.Fatalf("fresh run over existing file: %v", err)
	}

	// A torn/garbage file must be a load error, not a fresh start.
	bad := filepath.Join(dir, "torn.ckpt")
	if err := os.WriteFile(bad, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.VerifyFullRoutingCheckpointed(2, CheckpointConfig{Path: bad, ShardRows: 4, Resume: true}); err == nil {
		t.Fatal("garbage checkpoint accepted")
	}
}

// TestCheckpointReportsSequentialError pins error determinism through
// the checkpoint engine: a corrupted routing reports exactly the
// sequential verifier's error at any worker count, and the checkpoint
// never marks the failing shard done.
func TestCheckpointReportsSequentialError(t *testing.T) {
	r := corruptRouter(t, 3)
	_, seqErr := r.VerifyFullRouting()
	if seqErr == nil {
		t.Fatal("sequential verifier accepted a corrupted matching")
	}
	for _, w := range []int{1, 2, 7} {
		path := filepath.Join(t.TempDir(), "run.ckpt")
		_, err := r.VerifyFullRoutingCheckpointed(w, CheckpointConfig{Path: path, ShardRows: 8})
		if err == nil {
			t.Fatalf("workers=%d: corrupted matching accepted", w)
		}
		if err.Error() != seqErr.Error() {
			t.Fatalf("workers=%d:\ncheckpointed %v\nsequential   %v", w, err, seqErr)
		}
		if cp, loadErr := LoadCheckpoint(path); loadErr == nil && cp.DoneCount >= cp.NumShards {
			t.Fatalf("workers=%d: checkpoint claims completion despite error", w)
		}
	}
}

// TestCheckpointOnShardAndPlan checks the shard geometry and the
// OnShard observability stream: every pending shard reported once,
// cumulative Done strictly increasing to NumShards.
func TestCheckpointOnShardAndPlan(t *testing.T) {
	r := mustRouter(t, bilinear.Strassen(), 2) // 32 rows
	plan := r.shardPlan(5)
	if plan.rows != 32 || plan.shardRows != 5 || plan.numShards != 7 {
		t.Fatalf("plan = %+v", plan)
	}
	if p := r.shardPlan(0); p.shardRows < 1 || p.numShards < 1 {
		t.Fatalf("default plan = %+v", p)
	}
	if p := r.shardPlan(1 << 40); p.shardRows != p.rows || p.numShards != 1 {
		t.Fatalf("oversized shard plan = %+v", p)
	}

	seen := make(map[int64]int)
	var last int64
	_, err := r.VerifyFullRoutingCheckpointed(1, CheckpointConfig{
		Path: filepath.Join(t.TempDir(), "run.ckpt"), ShardRows: 5,
		OnShard: func(d ShardDone) {
			seen[d.Shard]++
			if d.Done <= last || d.Total != 7 {
				t.Errorf("non-monotonic shard notification: %+v after done=%d", d, last)
			}
			last = d.Done
			wantRows := int64(5)
			if d.Shard == 6 {
				wantRows = 2 // 32 = 6*5 + 2
			}
			if d.Rows != wantRows || d.Paths != wantRows*16 {
				t.Errorf("shard %d: rows=%d paths=%d", d.Shard, d.Rows, d.Paths)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 7 || last != 7 {
		t.Fatalf("saw %d distinct shards, final done %d", len(seen), last)
	}
	for s, n := range seen {
		if n != 1 {
			t.Fatalf("shard %d reported %d times", s, n)
		}
	}
}

// TestResumeCreditsRestoredWork is the regression test for resumed-run
// observability: the Paths/AdjChecks counters and the OnShard stream
// must account for restored shards, so coverage reaches 100% on a
// resumed run — previously only ShardsSkipped moved, and a resume of a
// *complete* checkpoint emitted nothing at all.
func TestResumeCreditsRestoredWork(t *testing.T) {
	r := mustRouter(t, bilinear.Strassen(), 3) // 128 rows
	want, err := r.VerifyFullRouting()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.ckpt")
	_, err = r.VerifyFullRoutingCheckpointed(2, CheckpointConfig{
		Path: path, ShardRows: 16, MaxShards: 3, // pause at 3/8 shards
	})
	if !errors.Is(err, ErrPaused) {
		t.Fatalf("expected ErrPaused, got %v", err)
	}
	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}

	// Resume in a fresh "process": new instruments, empty counters. The
	// run must credit the restored 3 shards up front and end with the
	// full-run totals.
	r.Obs = NewInstruments(obs.NewRegistry())
	var restored []ShardDone
	var lastDone int64
	st, err := r.VerifyFullRoutingCheckpointed(2, CheckpointConfig{
		Path: path, ShardRows: 16, Resume: true,
		OnShard: func(d ShardDone) {
			if d.Restored {
				restored = append(restored, d)
			}
			lastDone = d.Done
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.NumPaths != want.NumPaths {
		t.Fatalf("resumed stats: %d paths, want %d", st.NumPaths, want.NumPaths)
	}
	if got := r.Obs.Paths.Value(); got != want.NumPaths {
		t.Errorf("Paths counter %d, want %d (restored work not credited)", got, want.NumPaths)
	}
	if got := r.Obs.AdjChecks.Value(); got != want.AdjacencyChecked {
		t.Errorf("AdjChecks counter %d, want %d", got, want.AdjacencyChecked)
	}
	if got := r.Obs.ShardsSkipped.Value(); got != 3 {
		t.Errorf("ShardsSkipped %d, want 3", got)
	}
	if len(restored) != 1 {
		t.Fatalf("%d restored notifications, want exactly 1", len(restored))
	}
	if d := restored[0]; d.Shard != -1 || d.Done != 3 || d.Total != 8 ||
		d.Rows != 48 || d.Paths != cp.NumPaths {
		t.Fatalf("restored notification %+v (checkpoint had %d paths)", d, cp.NumPaths)
	}
	if lastDone != 8 {
		t.Fatalf("final OnShard done %d, want 8", lastDone)
	}

	// Resuming the now-complete checkpoint re-runs nothing but must
	// still credit everything: counters at full totals, one restored
	// notification covering all shards.
	r.Obs = NewInstruments(obs.NewRegistry())
	restored = nil
	st, err = r.VerifyFullRoutingCheckpointed(2, CheckpointConfig{
		Path: path, ShardRows: 16, Resume: true,
		OnShard: func(d ShardDone) {
			if !d.Restored {
				t.Errorf("complete checkpoint re-ran shard %d", d.Shard)
			}
			restored = append(restored, d)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.NumPaths != want.NumPaths {
		t.Fatalf("fully-restored stats: %d paths, want %d", st.NumPaths, want.NumPaths)
	}
	if got := r.Obs.Paths.Value(); got != want.NumPaths {
		t.Errorf("fully-restored Paths counter %d, want %d", got, want.NumPaths)
	}
	if len(restored) != 1 || restored[0].Done != 8 || restored[0].Total != 8 || restored[0].Rows != 128 {
		t.Fatalf("fully-restored notifications %+v, want one covering all 8 shards", restored)
	}
	r.Obs = nil
}
