package routing

// Orbit-reduced full-routing verification: the symmetry layer that
// collapses the aᵏ-fold redundancy ROADMAP item 3 identifies, without
// giving up a single bit of the full enumeration's statistics.
//
// The symmetry. A Lemma 4 pair path for (side A, input a_ij, output
// c_i′j′) is the composition of three guaranteed-dependence chains
//
//	a_ij → c_ij′   (chain 1),   b_jj′ → c_ij′  (chain 2, reversed),
//	b_jj′ → c_i′j′ (chain 3),
//
// and chains 1 and 2 depend only on (i, j, j′) — the output's row
// multi-index i′ does not appear. The n₀ᵏ paths that share a (side,
// input) row and the output column multi-index j′, and differ only in
// i′, therefore share chains 1 and 2 *pointwise*; only chain 3 varies.
// The B-side mirror (b_ij → c_i′j, a_i′i → c_i′j, a_i′i → c_i′j′)
// fixes i′ and frees j′ symmetrically. These fibers are the orbits of
// the free output coordinate acting by translation on the pair space —
// 2aᵏn₀ᵏ orbits of n₀ᵏ paths each, a consequence of the k-fold tensor
// power: the chain construction is slot-wise, so a coordinate that
// appears in no slot of a chain's definition cannot change the chain.
//
// The reduction. scanRowsOrbit enumerates one orbit at a time: it
// builds chains 1 and 2 once, credits their hit contributions with
// weight n₀ᵏ (the orbit size), and then walks only chain 3 per member.
// Exactness, field by field, against scanRows:
//
//   - NumPaths, TotalHits: every member is still visited once, and a
//     valid path always has 3(2k+2)-2 vertices.
//   - Vertex hits: a path bumps c1 (all of it), c2 minus its final
//     junction vertex, and c3 minus its leading junction vertex (the
//     composition drops duplicated junctions). Hits are additive, so
//     crediting the constant part once with weight n₀ᵏ and the varying
//     part per member is the same sum — including degenerate members
//     whose chain 3 retraces chain 2 (mid = out), which the weighted
//     part and the per-member part then both touch, exactly as the
//     full scan bumps those vertices twice on that one path.
//   - Meta-vertex hits: a path credits each *distinct* meta root of
//     its vertex set once. The distinct roots split into roots of
//     c1 ∪ c2 (constant across the orbit, credited once with weight
//     n₀ᵏ) and roots of c3 not already in that set, credited per
//     member through an O(1) epoch-stamp membership test. Within
//     chain 3 itself, equal roots only ever appear consecutively — a
//     chain's rank-j encoding vertex roots to the vertex at its last
//     non-trivial rank ≤ j, which is monotone in j, and decoding
//     vertices are their own roots — so a single previous-root
//     comparison dedups the chain without a scan.
//   - AdjacencyChecked: the sampled paths are selected by sequential
//     enumeration position (idx % stride == 0), the same rule and
//     therefore the same sample as the full scan; each is materialized
//     through the same appendPairPath kernel and checked edge by edge.
//
// The merged Stats are consequently bit-identical to scanRows at any
// k and any worker count, and checkpoint shards (whole rows) receive
// bit-identical contributions, so checkpoints written by either mode
// resume under the other. One caveat: on a *corrupted* routing both
// modes reject, but the reported first error can differ — the orbit
// scan visits a row's paths grouped by orbit rather than in output
// order, and checks the shared chains once per orbit — so equivalence
// holds for the success statistics, not for failure positions.

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/cdag"
)

// scanRowsOrbit is scanRows with orbit reduction: same row ranges, same
// accumulators, same emit cadence, bit-identical statistics; per-path
// work drops from three chain constructions plus a quadratic root-dedup
// scan to one chain construction plus a linear stamped walk.
func (r *Router) scanRowsOrbit(w, workers int, rowLo, rowHi int64, earliestErr *atomic.Int64, out *workerState) {
	g := r.G
	aK := r.powA[r.k]
	n0 := int64(r.n0)
	n0K := r.powN[r.k]
	chainLen := 2*r.k + 2
	wantLen := 3*chainLen - 2
	stride := r.adjStride()
	out.hits = make(hitVec, g.NumVertices())
	out.metaHits = make(hitVec, g.NumVertices())
	out.errPos = math.MaxInt64
	total := (rowHi - rowLo) * aK
	observing := r.Progress != nil || r.Obs != nil
	nextEmit := int64(progressChunk)
	var lastEmit time.Time
	var flushedPaths, flushedAdj int64
	var orbits, flushedOrbits int64
	emit := func(final bool) {
		// The running peak is recomputed from the accumulator here, at
		// snapshot cadence, instead of being tracked per bump on the hot
		// path: hit counts only grow, so the scan's maximum at emit time
		// is exact, and nothing outside Progress/metrics reads out.peak
		// (the final Stats maximum comes from the merged vectors).
		out.peak = out.hits.max()
		r.Obs.flushScan(out.numPaths-flushedPaths, out.adjChecked-flushedAdj, out.peak)
		r.Obs.flushOrbit(orbits-flushedOrbits, 0)
		flushedPaths, flushedAdj, flushedOrbits = out.numPaths, out.adjChecked, orbits
		nextEmit = out.numPaths + progressChunk
		lastEmit = time.Now()
		if r.Progress != nil {
			r.Progress(Progress{Worker: w, Workers: workers, Done: out.numPaths,
				Total: total, PeakVertexHits: out.peak, Final: final})
		}
	}
	if observing {
		lastEmit = time.Now()
		defer emit(true)
	}

	metaRoots := g.MetaRoots()
	ps := r.newPathScratch()
	c1 := make([]cdag.V, 0, chainLen)
	c2 := make([]cdag.V, 0, chainLen)
	c3 := make([]cdag.V, 0, chainLen)
	full := make([]cdag.V, 0, wantLen) // sampled paths, materialized whole
	// Division-free chain-3 synthesis state (see the member loop): the
	// varying chain's matched product digits, maintained alongside the
	// odometer, and the per-member product prefixes derived from them.
	eRow := make([]int64, r.k)      // match-table row base per slot (junction digit · a)
	oDig := make([]int64, r.k)      // packed output digit per slot
	tDig := make([]int64, r.k)      // matched product digit per slot
	tPre := make([]int64, r.k+1)    // tPre[j] = first j product digits, packed
	juncSuf := make([]int64, r.k+1) // juncSuf[j] = junc mod aʲ
	// stamp[root] holds the serial of the last orbit whose shared chains
	// credited root; comparing against the current serial is the O(1)
	// "already counted for every member of this orbit" test. Serial 0 is
	// never used, so the zero-initialized vector starts clean.
	stamp := make([]int64, g.NumVertices())
	var serial int64

	for row := rowLo; row < rowHi; row++ {
		// Cooperative cancellation, as in scanRows: an error published
		// before everything left in this worker's scan makes the rest
		// irrelevant to the first-error selection.
		if earliestErr.Load() < row*aK {
			return
		}
		side, in := r.rowOf(row)
		ps.setIn(r, in)
		wantIn := g.InputA(in)
		other := bilinear.SideB
		if side == bilinear.SideB {
			wantIn = g.InputB(in)
			other = bilinear.SideA
		}
		// Orbit geometry (see file comment): the fixed output coordinate
		// selects the orbit, the free one enumerates its members. An
		// output digit is oiD[l]·n₀ + ojD[l]; side A fixes the column
		// digits ojD (unit scale) and frees the row digits oiD (·n₀),
		// side B the mirror image.
		fixedD, freeD := ps.ojD, ps.oiD
		fixedScale, freeScale := int64(1), n0
		if side == bilinear.SideB {
			fixedD, freeD = ps.oiD, ps.ojD
			fixedScale, freeScale = n0, 1
		}
		for l := 0; l < r.k; l++ {
			fixedD[l] = 0
		}
		for orbit := int64(0); orbit < n0K; orbit++ {
			if orbit != 0 {
				for l := r.k - 1; l >= 0; l-- { // odometer over the fixed digits
					if fixedD[l]++; fixedD[l] < n0 {
						break
					}
					fixedD[l] = 0
				}
			}
			serial++
			orbits++
			// Packed output of the orbit's first member (free digits all
			// zero); shared-chain failures are attributed to it.
			var baseOut int64
			for l := 0; l < r.k; l++ {
				baseOut = baseOut*r.a + fixedD[l]*fixedScale
			}
			// Shared chains: in → mid and junc → mid, constant across the
			// orbit because mid and junc pack only fixed digit slices.
			var mid, junc int64
			if side == bilinear.SideA {
				mid = ps.pack(r, ps.iD, ps.ojD)  // c_{i,j′}
				junc = ps.pack(r, ps.jD, ps.ojD) // b_{j,j′}
			} else {
				mid = ps.pack(r, ps.oiD, ps.jD)  // c_{i′,j}
				junc = ps.pack(r, ps.oiD, ps.iD) // a_{i′,i}
			}
			var ok bool
			c1, ok = r.AppendChain(side, in, mid, c1[:0])
			if !ok {
				panic("routing: orbit chain in→mid must be guaranteed")
			}
			c2, ok = r.AppendChain(other, junc, mid, c2[:0])
			if !ok {
				panic("routing: orbit chain junc→mid must be guaranteed")
			}
			idx0 := row*aK + baseOut
			if len(c1) != chainLen || len(c2) != chainLen {
				out.fail(idx0, fmt.Errorf("routing: pair path (side %v, in %d, out %d): chain lengths %d, %d, want %d",
					side, in, baseOut, len(c1), len(c2), chainLen), earliestErr)
				return
			}
			if c1[0] != wantIn || c1[chainLen-1] != c2[chainLen-1] {
				out.fail(idx0, fmt.Errorf("routing: pair path (side %v, in %d, out %d): endpoints %s..%s",
					side, in, baseOut, g.Label(c1[0]), g.Label(c2[chainLen-1])), earliestErr)
				return
			}
			// Weighted shared-chain contributions: c1 in full, c2 minus
			// its final vertex (the junction the composed path drops; it
			// equals c1's final vertex, already credited). Every meta root
			// touched here gets this orbit's serial, marking it counted
			// for all n₀ᵏ member paths at once.
			for _, v := range c1 {
				out.hits.add(v, n0K)
				if root := metaRoots[v]; stamp[root] != serial {
					stamp[root] = serial
					out.metaHits[root] += n0K
				}
			}
			for _, v := range c2[:chainLen-1] {
				out.hits.add(v, n0K)
				if root := metaRoots[v]; stamp[root] != serial {
					stamp[root] = serial
					out.metaHits[root] += n0K
				}
			}
			// Members: walk the free-digit odometer, maintaining the
			// packed output, its digits, and the matched product digits
			// of chain 3 incrementally (the ForEachGuaranteedChain
			// pattern, extended to the match table), then *synthesize*
			// chain 3 from that state — no per-member digit extraction,
			// no divisions; AppendChain's division-heavy reconstruction
			// is what full enumeration pays three times per path.
			kind3, match3 := cdag.EncB, r.BM.matchB
			if other == bilinear.SideA {
				kind3, match3 = cdag.EncA, r.BM.matchA
			}
			for j := 0; j <= r.k; j++ {
				juncSuf[j] = junc % r.powA[j]
			}
			for l := 0; l < r.k; l++ {
				freeD[l] = 0
				if side == bilinear.SideA {
					// chain 3 routes b_{j,j′} → c_{i′,j′}
					eRow[l] = (ps.jD[l]*n0 + ps.ojD[l]) * r.a
					oDig[l] = fixedD[l] // = ojD[l]; free row digit is 0
				} else {
					// chain 3 routes a_{i′,i} → c_{i′,j′}
					eRow[l] = (ps.oiD[l]*n0 + ps.iD[l]) * r.a
					oDig[l] = fixedD[l] * n0 // = oiD[l]·n₀; free col digit is 0
				}
				t := match3[int(eRow[l]+oDig[l])]
				if t < 0 {
					panic("routing: orbit chain junc→out must be guaranteed")
				}
				tDig[l] = int64(t)
			}
			outIdx := baseOut
			for member := int64(0); member < n0K; member++ {
				if member != 0 {
					for l := r.k - 1; l >= 0; l-- {
						freeD[l]++
						outIdx += freeScale * r.powA[r.k-1-l]
						oDig[l] += freeScale
						if freeD[l] < n0 {
							tDig[l] = int64(match3[int(eRow[l]+oDig[l])])
							break
						}
						freeD[l] = 0
						outIdx -= n0 * freeScale * r.powA[r.k-1-l]
						oDig[l] -= n0 * freeScale
						tDig[l] = int64(match3[int(eRow[l]+oDig[l])])
					}
				}
				idx := row*aK + outIdx
				out.numPaths++
				out.totalHits += int64(wantLen)
				// Chain 3, synthesized: encoding rank j is the packed
				// (first j product digits, junction suffix) pair; the
				// product vertex is the full packed product; decoding
				// rank j is the (first k−j product digits, output
				// suffix) pair, with the output suffix re-accumulated
				// from the maintained digits — so the final vertex
				// doubles as an end-to-end consistency check against
				// the independently maintained outIdx.
				c3 = c3[:0]
				var pre int64
				c3 = append(c3, g.ID(kind3, 0, junc))
				for j := 1; j <= r.k; j++ {
					pre = pre*r.b + tDig[j-1]
					tPre[j] = pre
					c3 = append(c3, g.ID(kind3, j, pre*r.powA[r.k-j]+juncSuf[r.k-j]))
				}
				c3 = append(c3, g.ID(cdag.Dec, 0, pre))
				var outSuf int64
				for j := 1; j <= r.k; j++ {
					outSuf += oDig[r.k-j] * r.powA[j-1]
					c3 = append(c3, g.ID(cdag.Dec, j, tPre[r.k-j]*r.powA[j]+outSuf))
				}
				if c3[chainLen-1] != g.Output(outIdx) {
					out.fail(idx, fmt.Errorf("routing: pair path (side %v, in %d, out %d): endpoints %s..%s",
						side, in, outIdx, g.Label(c1[0]), g.Label(c3[chainLen-1])), earliestErr)
					return
				}
				if idx%stride == 0 {
					// Same sample as the full scan: materialize the whole
					// path through the composition kernel (the pathScratch
					// digit slices are in sync — freeD aliases them) and
					// check it edge by edge.
					out.adjChecked++
					full = r.appendPairPath(ps, side, in, outIdx, full[:0])
					if len(full) != wantLen {
						out.fail(idx, fmt.Errorf("routing: pair path (side %v, in %d, out %d): length %d, want %d",
							side, in, outIdx, len(full), wantLen), earliestErr)
						return
					}
					for i := 0; i+1 < len(full); i++ {
						if !r.adjacent(full[i], full[i+1]) {
							out.fail(idx, fmt.Errorf("routing: pair path (side %v, in %d, out %d): not connected at %s -- %s",
								side, in, outIdx, g.Label(full[i]), g.Label(full[i+1])), earliestErr)
							return
						}
					}
				}
				// Varying-chain contribution: c3 minus its leading vertex
				// (the junction the composition drops; it equals c2[0],
				// already credited). A root carrying this orbit's serial
				// was counted for this path by the weighted pass; within
				// c3, equal roots are consecutive, so one comparison
				// dedups repeats without touching the stamp.
				prevRoot := cdag.V(-1)
				for _, v := range c3[1:] {
					out.hits.bump(v)
					root := metaRoots[v]
					if root == prevRoot {
						continue
					}
					prevRoot = root
					if stamp[root] != serial {
						out.metaHits[root]++
					}
				}
			}
			// Snapshot cadence at orbit granularity: an orbit is n₀ᵏ
			// paths, far below progressChunk, so hoisting the check (and
			// the rate-limited clock read behind the time floor) out of
			// the member loop changes the cadence by at most one orbit.
			if observing && (out.numPaths >= nextEmit ||
				(orbits&progressClockMask == 0 && time.Since(lastEmit) >= progressTimeFloor)) {
				emit(false)
			}
		}
	}
}
