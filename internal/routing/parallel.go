package routing

// The Routing Theorem verification engine. The check is embarrassingly
// parallel over *rows* of the pair-path enumeration space: row
// s·aᵏ + in covers the aᵏ paths from input `in` of side s to every
// output, and rows inherit the sequential enumeration order of
// ForEachPairPath. Each worker scans a contiguous row range into
// worker-local int64 hit accumulators, merged at the end, so the heavy
// Theorem 2 verification scales with cores. VerifyFullRouting is
// literally the one-worker instance of the same code path, which makes
// the parallel and sequential results bit-identical by construction.
// The same row ranges are the unit of the checkpoint shards (see
// checkpoint.go), so checkpointed runs are bit-identical too.
//
// Failure semantics: workers publish the sequential position of the
// first error they hit through a shared atomic minimum. A worker whose
// entire remaining scan lies after the published position stops —
// cooperative cancellation — while the worker that owns the globally
// earliest error always reaches it (nothing published can precede it,
// by minimality). The merge then selects the error at the earliest
// position, so VerifyFullRoutingParallel reports exactly the error
// VerifyFullRouting reports, at any worker count.

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/cdag"
)

const (
	// defaultAdjacencyStride is the default sampling rate for full
	// edge-by-edge path adjacency verification: every 257th path, the
	// seed's spot-check rate (full adjacency of every chain is covered
	// by VerifyGuaranteedRouting plus the junction structure; the
	// sample guards the composition itself).
	defaultAdjacencyStride = 257
	// progressChunk is how many paths a worker enumerates between
	// Progress snapshots (and batched metric flushes).
	progressChunk = 1 << 15
	// progressTimeFloor caps the wall time between snapshots: a worker
	// far below progressChunk paths/s (deep k, slow disk, contended
	// box) still reports at least this often.
	progressTimeFloor = time.Second
	// progressClockMask rate-limits the wall-clock reads backing the
	// time floor to every (mask+1) paths, keeping time.Now off the
	// per-path fast path.
	progressClockMask = 1<<10 - 1
)

// VerifyFullRoutingParallel is VerifyFullRouting distributed over
// workers goroutines (0 → GOMAXPROCS, clamped to one row per worker).
// It verifies the same properties and returns the same statistics and,
// for corrupted routings, the same error.
func (r *Router) VerifyFullRoutingParallel(workers int) (Stats, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return r.verifyFullRouting(workers)
}

// workerState is one worker's private accumulator. Both hit
// accumulators are dense vectors indexed by vertex ID — metaHits only
// has nonzero entries at meta-vertex roots, but a dense vector keeps
// the per-path accumulation a bounds-checked array add instead of a
// map operation (the checkpoint file format still stores the sparse
// map form; see mergeShard).
type workerState struct {
	hits       hitVec
	metaHits   hitVec
	numPaths   int64
	totalHits  int64
	adjChecked int64
	peak       int64 // running max of hits (for Progress)
	err        error
	errPos     int64
}

// fail records the worker's first error and publishes its sequential
// position so workers scanning strictly later positions can stop.
func (s *workerState) fail(pos int64, err error, earliestErr *atomic.Int64) {
	s.err, s.errPos = err, pos
	for {
		cur := earliestErr.Load()
		if pos >= cur || earliestErr.CompareAndSwap(cur, pos) {
			return
		}
	}
}

// pairIndex is the position of (side, in, out) in sequential
// enumeration order (ForEachPairPath): side-major, then input, then
// output. With aK < 2³¹ (guaranteed by the int32 vertex-ID limit) the
// product fits int64.
func (r *Router) pairIndex(side bilinear.Side, in, out int64) int64 {
	s := int64(0)
	if side == bilinear.SideB {
		s = 1
	}
	aK := r.powA[r.k]
	return (s*aK+in)*aK + out
}

// numRows is the size of the row space: one row per (side, input), in
// sequential enumeration order, so the pair path at position p lives in
// row p / aᵏ.
func (r *Router) numRows() int64 { return 2 * r.powA[r.k] }

// rowOf decomposes a row index into its (side, input).
func (r *Router) rowOf(row int64) (bilinear.Side, int64) {
	if aK := r.powA[r.k]; row >= aK {
		return bilinear.SideB, row - aK
	}
	return bilinear.SideA, row
}

// clampWorkers bounds a worker count by an int64 work-item count
// without truncation: the narrowing cast runs only when the limit is
// already known to be below the current count (which fits int), so the
// result is exact on 32-bit platforms where int(limit) alone could
// truncate a large limit to a wrong — even negative — worker count.
func clampWorkers(workers int, limit int64) int {
	if int64(workers) > limit {
		return int(limit)
	}
	return workers
}

func (r *Router) adjStride() int64 {
	if r.AdjacencySampleStride > 0 {
		return r.AdjacencySampleStride
	}
	return defaultAdjacencyStride
}

// scanRows verifies the pair paths of rows [rowLo, rowHi): length,
// endpoints, sampled edge-by-edge adjacency, and hit accumulation per
// vertex and per meta-vertex. It is the shared core of the plain
// workers and of the checkpoint shards.
//
// The loop is allocation-free in steady state: one pathScratch per
// call carries the digit odometer and chain buffer, meta roots come
// from the dense precomputed table, and per-path root dedup is a
// linear scan of a fixed-size array (a path has 3(2k+2)-2 vertices, so
// at most that many distinct roots). Router.SeedEnumeration restores
// the original kernel — per-path slice/closure allocations, MetaRoot
// copy-edge walks, and map-based dedup — for the A9 ablation.
func (r *Router) scanRows(w, workers int, rowLo, rowHi int64, earliestErr *atomic.Int64, out *workerState) {
	g := r.G
	aK := r.powA[r.k]
	wantLen := 3*(2*r.k+2) - 2
	stride := r.adjStride()
	out.hits = make(hitVec, g.NumVertices())
	out.metaHits = make(hitVec, g.NumVertices())
	out.errPos = math.MaxInt64
	total := (rowHi - rowLo) * aK
	observing := r.Progress != nil || r.Obs != nil
	// Snapshot cadence: a monotonic per-worker "next threshold" (immune
	// to counts stepping past a modulo boundary) with a wall-time floor
	// so slow shards still report.
	nextEmit := int64(progressChunk)
	var lastEmit time.Time
	var flushedPaths, flushedAdj int64
	emit := func(final bool) {
		r.Obs.flushScan(out.numPaths-flushedPaths, out.adjChecked-flushedAdj, out.peak)
		flushedPaths, flushedAdj = out.numPaths, out.adjChecked
		nextEmit = out.numPaths + progressChunk
		lastEmit = time.Now()
		if r.Progress != nil {
			r.Progress(Progress{Worker: w, Workers: workers, Done: out.numPaths,
				Total: total, PeakVertexHits: out.peak, Final: final})
		}
	}
	if observing {
		lastEmit = time.Now()
		defer emit(true)
	}

	var buf []cdag.V
	ps := r.newPathScratch()
	var metaRoots []cdag.V            // dense table (scratch kernel)
	var seedRoots map[cdag.V]struct{} // per-path map dedup (seed kernel)
	if r.SeedEnumeration {
		seedRoots = make(map[cdag.V]struct{}, 16)
	} else {
		metaRoots = g.MetaRoots()
	}
	for row := rowLo; row < rowHi; row++ {
		// Cooperative cancellation: an error published at a position
		// before everything left in this worker's scan makes the
		// rest of the scan irrelevant to the first-error selection.
		if earliestErr.Load() < row*aK {
			return
		}
		side, in := r.rowOf(row)
		ps.setIn(r, in)
		ps.setOut(r, 0)
		for outIdx := int64(0); outIdx < aK; outIdx++ {
			if outIdx != 0 {
				ps.advanceOut(r)
			}
			if r.SeedEnumeration {
				buf = r.seedPairPath(side, in, outIdx, buf[:0])
			} else {
				buf = r.appendPairPath(ps, side, in, outIdx, buf[:0])
			}
			idx := row*aK + outIdx
			out.numPaths++
			out.totalHits += int64(len(buf))
			if len(buf) != wantLen {
				out.fail(idx, fmt.Errorf("routing: pair path (side %v, in %d, out %d): length %d, want %d",
					side, in, outIdx, len(buf), wantLen), earliestErr)
				return
			}
			wantIn := g.InputA(in)
			if side == bilinear.SideB {
				wantIn = g.InputB(in)
			}
			if buf[0] != wantIn || buf[len(buf)-1] != g.Output(outIdx) {
				out.fail(idx, fmt.Errorf("routing: pair path (side %v, in %d, out %d): endpoints %s..%s",
					side, in, outIdx, g.Label(buf[0]), g.Label(buf[len(buf)-1])), earliestErr)
				return
			}
			if idx%stride == 0 {
				out.adjChecked++
				for i := 0; i+1 < len(buf); i++ {
					if !r.adjacent(buf[i], buf[i+1]) {
						out.fail(idx, fmt.Errorf("routing: pair path (side %v, in %d, out %d): not connected at %s -- %s",
							side, in, outIdx, g.Label(buf[i]), g.Label(buf[i+1])), earliestErr)
						return
					}
				}
			}
			if r.SeedEnumeration {
				clear(seedRoots)
				for _, v := range buf {
					out.peak = max(out.peak, out.hits.bump(v))
					seedRoots[g.MetaRoot(v)] = struct{}{}
				}
				for root := range seedRoots {
					out.metaHits[root]++
				}
			} else {
				roots := ps.roots[:0]
				for _, v := range buf {
					out.peak = max(out.peak, out.hits.bump(v))
					root := metaRoots[v]
					seen := false
					for _, s := range roots {
						if s == root {
							seen = true
							break
						}
					}
					if !seen {
						roots = append(roots, root)
					}
				}
				for _, root := range roots {
					out.metaHits[root]++
				}
			}
			if observing && (out.numPaths >= nextEmit ||
				(out.numPaths&progressClockMask == 0 && time.Since(lastEmit) >= progressTimeFloor)) {
				emit(false)
			}
		}
	}
}

// scanRange is scanRows plus per-range observability: the enumeration
// latency lands in the shard-enumerate histogram (a plain worker's row
// range is the unit checkpoint shards are made of, so one histogram
// serves both engines), and the scan runs under a pprof worker label
// so CPU profiles attribute samples per worker (`go tool pprof
// -tagfocus worker=3`).
func (r *Router) scanRange(w, workers int, rowLo, rowHi int64, earliestErr *atomic.Int64, out *workerState) {
	if in := r.Obs; in != nil {
		defer in.ShardEnumerate.ObserveSince(time.Now())
	}
	pprof.Do(context.Background(), pprof.Labels("worker", strconv.Itoa(w)), func(context.Context) {
		if r.OrbitReduction && !r.SeedEnumeration {
			if r.OrbitStage1 {
				r.scanRowsOrbit(w, workers, rowLo, rowHi, earliestErr, out)
			} else {
				r.scanRowsOrbit2(w, workers, rowLo, rowHi, earliestErr, out)
			}
		} else {
			r.scanRows(w, workers, rowLo, rowHi, earliestErr, out)
		}
	})
}

// verifyFullRouting is the engine behind VerifyFullRouting (workers=1)
// and VerifyFullRoutingParallel.
func (r *Router) verifyFullRouting(workers int) (Stats, error) {
	start := time.Now()
	r.Obs.noteStart(start)
	rows := r.numRows()
	workers = clampWorkers(workers, rows) // at most one row per worker
	if workers < 1 {
		workers = 1
	}
	if !r.LinearAdjacency {
		r.G.EnsureAdjacencyIndex() // build once, before the fan-out
	}
	if !r.SeedEnumeration {
		r.G.EnsureMetaRootIndex() // likewise; seed kernel walks instead
	}
	outs := make([]workerState, workers)
	var earliestErr atomic.Int64
	earliestErr.Store(math.MaxInt64)
	if workers == 1 {
		r.scanRange(0, 1, 0, rows, &earliestErr, &outs[0])
	} else {
		// Overflow-safe row partition: |slice| ∈ {⌊rows/W⌋, ⌈rows/W⌉},
		// never forming the product rows·w.
		q, rem := rows/int64(workers), rows%int64(workers)
		var wg sync.WaitGroup
		lo := int64(0)
		for w := 0; w < workers; w++ {
			hi := lo + q
			if int64(w) < rem {
				hi++
			}
			wg.Add(1)
			go func(w int, lo, hi int64) {
				defer wg.Done()
				r.scanRange(w, workers, lo, hi, &earliestErr, &outs[w])
			}(w, lo, hi)
			lo = hi
		}
		wg.Wait()
	}
	return r.finalizeFullRouting(start, outs)
}

// finalizeFullRouting merges the worker accumulators, selects the
// deterministic first error, and checks the 6aᵏ bounds.
func (r *Router) finalizeFullRouting(start time.Time, outs []workerState) (Stats, error) {
	st := Stats{Bound: 6 * r.powA[r.k]}
	var firstErr error
	firstPos := int64(math.MaxInt64)
	for i := range outs {
		o := &outs[i]
		st.NumPaths += o.numPaths
		st.TotalHits += o.totalHits
		st.AdjacencyChecked += o.adjChecked
		// Deterministic first-error selection: the earliest sequential
		// position wins, so parallel and sequential runs agree.
		if o.err != nil && o.errPos < firstPos {
			firstPos, firstErr = o.errPos, o.err
		}
	}
	if firstErr != nil {
		st.Elapsed = time.Since(start)
		return st, firstErr
	}
	span := r.Obs.startSpan("merge")
	defer span.End()
	hits := outs[0].hits
	metaHits := outs[0].metaHits
	for i := 1; i < len(outs); i++ {
		hits.merge(outs[i].hits)
		metaHits.merge(outs[i].metaHits)
	}
	st.MaxVertexHits = hits.max()
	st.MaxMetaHits = metaHits.max()
	st.Elapsed = time.Since(start)
	return st, r.checkFullRoutingBounds(st)
}

// checkFullRoutingBounds verifies the Routing Theorem's 6aᵏ bounds on
// fully merged stats; shared by the plain and checkpointed finalizers
// so both report identical violations.
func (r *Router) checkFullRoutingBounds(st Stats) error {
	if st.MaxVertexHits > st.Bound {
		return fmt.Errorf("routing: %s G_%d: Routing Theorem violated: vertex hit %d > 6aᵏ = %d",
			r.G.Alg.Name, r.k, st.MaxVertexHits, st.Bound)
	}
	if st.MaxMetaHits > st.Bound {
		return fmt.Errorf("routing: %s G_%d: Routing Theorem violated: meta-vertex hit %d > 6aᵏ = %d",
			r.G.Alg.Name, r.k, st.MaxMetaHits, st.Bound)
	}
	return nil
}
