package routing

// Concurrent verification: the routing checks are embarrassingly
// parallel over the input index (each worker enumerates the paths of a
// contiguous slice of inputs into worker-local hit arrays, merged at
// the end), so the heavy Theorem 2 verification scales with cores.
// Results are bit-identical to the sequential VerifyFullRouting.

import (
	"fmt"
	"runtime"
	"sync"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/cdag"
)

// VerifyFullRoutingParallel is VerifyFullRouting distributed over
// workers goroutines (0 → GOMAXPROCS). It verifies the same properties
// and returns the same statistics.
func (r *Router) VerifyFullRoutingParallel(workers int) (Stats, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	g := r.G
	nV := g.NumVertices()
	aK := r.powA[r.k]
	wantLen := 3*(2*r.k+2) - 2

	type workerOut struct {
		hits     []int32
		metaHits map[cdag.V]int64
		numPaths int64
		total    int64
		err      error
	}
	outs := make([]workerOut, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := &outs[w]
			out.hits = make([]int32, nV)
			out.metaHits = make(map[cdag.V]int64)
			lo := aK * int64(w) / int64(workers)
			hi := aK * int64(w+1) / int64(workers)
			var buf []cdag.V
			roots := make(map[cdag.V]struct{}, 16)
			for _, side := range []bilinear.Side{bilinear.SideA, bilinear.SideB} {
				for in := lo; in < hi; in++ {
					for outIdx := int64(0); outIdx < aK; outIdx++ {
						buf = r.PairPath(side, in, outIdx, buf[:0])
						out.numPaths++
						out.total += int64(len(buf))
						if len(buf) != wantLen {
							out.err = fmt.Errorf("routing: pair path length %d, want %d", len(buf), wantLen)
							return
						}
						wantIn := g.InputA(in)
						if side == bilinear.SideB {
							wantIn = g.InputB(in)
						}
						if buf[0] != wantIn || buf[len(buf)-1] != g.Output(outIdx) {
							out.err = fmt.Errorf("routing: pair path endpoints wrong (side %v in %d out %d)", side, in, outIdx)
							return
						}
						clear(roots)
						for _, v := range buf {
							out.hits[v]++
							roots[g.MetaRoot(v)] = struct{}{}
						}
						for root := range roots {
							out.metaHits[root]++
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()

	st := Stats{Bound: 6 * aK}
	hits := make([]int64, nV)
	metaHits := make(map[cdag.V]int64)
	for w := range outs {
		if outs[w].err != nil {
			return st, outs[w].err
		}
		st.NumPaths += outs[w].numPaths
		st.TotalHits += outs[w].total
		for v, h := range outs[w].hits {
			hits[v] += int64(h)
		}
		for root, h := range outs[w].metaHits {
			metaHits[root] += h
		}
	}
	for _, h := range hits {
		if int(h) > st.MaxVertexHits {
			st.MaxVertexHits = int(h)
		}
	}
	for _, h := range metaHits {
		if int(h) > st.MaxMetaHits {
			st.MaxMetaHits = int(h)
		}
	}
	if int64(st.MaxVertexHits) > st.Bound {
		return st, fmt.Errorf("routing: %s G_%d: Routing Theorem violated: vertex hit %d > 6aᵏ = %d",
			g.Alg.Name, r.k, st.MaxVertexHits, st.Bound)
	}
	if int64(st.MaxMetaHits) > st.Bound {
		return st, fmt.Errorf("routing: %s G_%d: Routing Theorem violated: meta-vertex hit %d > 6aᵏ = %d",
			g.Alg.Name, r.k, st.MaxMetaHits, st.Bound)
	}
	return st, nil
}
