package routing

// hitVec accumulates per-vertex hit counts for a routing in int64.
//
// Width matters here: the quantities a verifier accumulates explode
// exponentially in k — the full routing has 2a²ᵏ paths of length
// 6k + 4, and a *broken* routing (exactly what verification must
// catch) can concentrate an arbitrary share of those hits on a single
// vertex. A 32-bit counter silently wraps past 2³¹ ≈ 2.1·10⁹,
// reporting a small or negative "maximum" and certifying a bound that
// is violated astronomically. Every verifier hit array therefore uses
// this type; TotalHits alone passes 10⁹ already at Strassen k = 6.

import "pathrouting/internal/cdag"

type hitVec []int64

// bump increments v's counter and returns the new value, so callers
// can track a running peak with `peak = max(peak, h.bump(v))`.
func (h hitVec) bump(v cdag.V) int64 {
	h[v]++
	return h[v]
}

// add increases v's counter by n and returns the new value — the
// weighted form of bump the orbit-reduced scan uses to credit a whole
// orbit's worth of hits to a shared-chain vertex at once.
func (h hitVec) add(v cdag.V, n int64) int64 {
	h[v] += n
	return h[v]
}

// addBlock adds n to count consecutive counters starting at v — the
// contiguous-progression form the stage-2 orbit kernel uses to credit
// the rank-j chain vertices of a whole member block at once (the
// members' vertex IDs form an arithmetic progression; stride 1 on the
// side whose free output digit is the units part). The reslice hoists
// the bounds check out of the loop, so the body is a plain
// autovectorizable add.
func (h hitVec) addBlock(v cdag.V, count int, n int64) {
	s := h[v : int64(v)+int64(count)]
	for i := range s {
		s[i] += n
	}
}

// bumpStride increments count counters spaced stride apart starting at
// v — the strided form of addBlock for the mirror side, whose free
// output digit carries weight n₀ in the packed index.
func (h hitVec) bumpStride(v cdag.V, stride int64, count int) {
	s := h[int64(v) : int64(v)+stride*int64(count-1)+1]
	for i, x := 0, int64(0); i < count; i, x = i+1, x+stride {
		s[x]++
	}
}

// max returns the largest counter (0 for an empty vector).
func (h hitVec) max() int64 {
	var m int64
	for _, c := range h {
		if c > m {
			m = c
		}
	}
	return m
}

// merge adds other into h element-wise.
func (h hitVec) merge(other hitVec) {
	for v, c := range other {
		h[v] += c
	}
}
