package routing

// Observability wiring for the verification engine. Instruments is the
// bundle of metrics and the span tracer the verifiers update; a nil
// *Instruments (the default) keeps the hot enumeration path at a single
// pointer test, and the metric updates themselves are batched at
// progress-snapshot granularity — never per path — so an instrumented
// run stays within noise of an uninstrumented one (the acceptance bar
// is ≤ 2% on BenchmarkA7ParallelVerification).

import (
	"sync/atomic"
	"time"

	"pathrouting/internal/obs"
)

// Instruments holds the verification engine's metrics and tracer.
// Obtain one with NewInstruments and attach it to Router.Obs; all
// fields are individually nil-safe, so partially populated bundles
// work too.
type Instruments struct {
	// Paths counts pair paths fully verified across all workers.
	Paths *obs.Counter
	// AdjChecks counts paths verified edge-by-edge against adjacency.
	AdjChecks *obs.Counter
	// PathsPerSec is the run-global verification throughput.
	PathsPerSec *obs.Gauge
	// PeakVertexHits is the high-water mark of per-worker local hit
	// accumulators (the global maximum appears in final Stats after
	// the merge; this gauge tracks the live lower bound on it).
	PeakVertexHits *obs.Gauge
	// ShardEnumerate is the latency of one shard (or, in plain
	// parallel runs, one worker row-range) enumeration pass.
	ShardEnumerate *obs.Histogram
	// ShardsDone counts completed shards; ShardsSkipped counts shards
	// a resumed run restored from the checkpoint instead of re-running.
	ShardsDone    *obs.Counter
	ShardsSkipped *obs.Counter
	// OrbitGroups counts pair-path orbits collapsed by the orbit-reduced
	// scan (zero for full enumeration). A complete orbit-reduced run over
	// G_k collapses 2aᵏn₀ᵏ orbits of n₀ᵏ paths each.
	OrbitGroups *obs.Counter
	// OrbitFamilies counts the shared-chain families the stage-2 orbit
	// kernel aggregates over — one per (side, input) row, each covering
	// the row's n₀ᵏ orbits through incremental chain maintenance (zero
	// for full enumeration and for the stage-1 orbit kernel). The
	// groups-to-families ratio is the aggregation fan-in.
	OrbitFamilies *obs.Counter
	// CheckpointFsync and CheckpointRename split checkpoint-persist
	// latency into its durability halves (encode+fsync vs rename).
	CheckpointFsync  *obs.Histogram
	CheckpointRename *obs.Histogram
	// Tracer, when non-nil, emits spans around shard enumerate, merge,
	// and checkpoint persist into the run journal.
	Tracer *obs.Tracer

	// startNanos is the engine start time (set by the verifiers) the
	// throughput gauge is computed against.
	startNanos atomic.Int64
	// restoredPaths counts paths credited from a resumed checkpoint
	// rather than verified this run; the throughput gauge subtracts it
	// so paths/s reflects work actually performed.
	restoredPaths atomic.Int64
}

// NewInstruments registers the engine's metric families on reg and
// returns the bundle. Calling it twice with the same registry returns
// instruments sharing the same underlying metrics.
func NewInstruments(reg *obs.Registry) *Instruments {
	return &Instruments{
		Paths: reg.Counter("routing_paths_verified_total",
			"pair paths fully verified (length, endpoints, hit accumulation)"),
		AdjChecks: reg.Counter("routing_adjacency_checked_total",
			"pair paths verified edge-by-edge against the graph adjacency"),
		PathsPerSec: reg.Gauge("routing_paths_per_second",
			"run-global verification throughput"),
		PeakVertexHits: reg.Gauge("routing_peak_vertex_hits",
			"largest per-worker local vertex hit count observed so far"),
		ShardEnumerate: reg.Histogram("routing_shard_enumerate_seconds",
			"latency of one shard (or worker row-range) enumeration pass", obs.LatencyBuckets),
		ShardsDone: reg.Counter("routing_shards_done_total",
			"checkpoint shards completed this run"),
		ShardsSkipped: reg.Counter("routing_shards_resume_skipped_total",
			"checkpoint shards restored from a resumed checkpoint instead of re-run"),
		OrbitGroups: reg.Counter("routing_orbit_groups_total",
			"pair-path orbits collapsed by the orbit-reduced scan"),
		OrbitFamilies: reg.Counter("routing_orbit_families_total",
			"shared-chain families aggregated by the stage-2 orbit kernel"),
		CheckpointFsync: reg.Histogram("routing_checkpoint_fsync_seconds",
			"checkpoint encode+fsync latency", obs.LatencyBuckets),
		CheckpointRename: reg.Histogram("routing_checkpoint_rename_seconds",
			"checkpoint atomic-rename latency", obs.LatencyBuckets),
	}
}

// WithJob returns a derived bundle sharing this one's metrics (the
// counters and histograms are the same registered instruments) but
// whose tracer stamps the job's trace identity onto every span, and
// whose run-local state (start time, restored-path credit) is fresh.
// The struct is rebuilt field by field — Instruments embeds atomics
// and must never be copied wholesale. Nil-safe.
func (in *Instruments) WithJob(tc obs.TraceContext) *Instruments {
	if in == nil {
		return nil
	}
	return &Instruments{
		Paths:            in.Paths,
		AdjChecks:        in.AdjChecks,
		PathsPerSec:      in.PathsPerSec,
		PeakVertexHits:   in.PeakVertexHits,
		ShardEnumerate:   in.ShardEnumerate,
		ShardsDone:       in.ShardsDone,
		ShardsSkipped:    in.ShardsSkipped,
		OrbitGroups:      in.OrbitGroups,
		OrbitFamilies:    in.OrbitFamilies,
		CheckpointFsync:  in.CheckpointFsync,
		CheckpointRename: in.CheckpointRename,
		Tracer:           in.Tracer.WithJob(tc),
	}
}

// noteStart records the engine start the throughput gauge divides by.
// Keeps the earliest start across E3-style back-to-back runs sharing
// one bundle simple: each verification resets it.
func (in *Instruments) noteStart(t time.Time) {
	if in == nil {
		return
	}
	in.startNanos.Store(t.UnixNano())
	in.restoredPaths.Store(0)
}

// noteRestored credits the work a resumed run restored from its
// checkpoint instead of re-verifying, so the Paths/AdjChecks counters
// reach their run totals (and /healthz coverage reaches 100%) on
// resumed and fully-restored runs. The restored paths are remembered
// separately so the throughput gauge excludes them.
func (in *Instruments) noteRestored(paths, adjChecked, shards int64) {
	if in == nil {
		return
	}
	in.Paths.Add(paths)
	in.AdjChecks.Add(adjChecked)
	in.ShardsSkipped.Add(shards)
	in.restoredPaths.Add(paths)
}

// flushScan folds a worker's since-last-flush deltas into the metrics.
// Called at progress-snapshot cadence, so its atomics are off the
// per-path fast path.
func (in *Instruments) flushScan(pathsDelta, adjDelta, peak int64) {
	if in == nil {
		return
	}
	in.Paths.Add(pathsDelta)
	in.AdjChecks.Add(adjDelta)
	in.PeakVertexHits.Max(float64(peak))
	if start := in.startNanos.Load(); start > 0 {
		if el := time.Since(time.Unix(0, start)).Seconds(); el > 0 {
			in.PathsPerSec.Set(float64(in.Paths.Value()-in.restoredPaths.Load()) / el)
		}
	}
}

// flushOrbit folds a worker's since-last-flush orbit-group and
// shared-chain-family deltas into the metrics; called at the same
// snapshot cadence as flushScan. The stage-1 kernel always passes a
// zero family delta — it rebuilds the shared chains per orbit rather
// than aggregating them per row.
func (in *Instruments) flushOrbit(groupsDelta, familiesDelta int64) {
	if in == nil {
		return
	}
	in.OrbitGroups.Add(groupsDelta)
	in.OrbitFamilies.Add(familiesDelta)
}

// startSpan opens a span on the bundle's tracer (nil-safe all the way
// down).
func (in *Instruments) startSpan(name string) *obs.Span {
	if in == nil {
		return nil
	}
	return in.Tracer.StartSpan(name)
}
