// Package routing implements the path-routing constructions at the core
// of Scott–Holtz–Schwartz, "Matrix Multiplication I/O-Complexity by Path
// Routing" (SPAA 2015), and verifies their claimed hit-count bounds
// exactly on explicit CDAGs:
//
//   - Lemma 3: a 2n₀ᵏ-routing of all guaranteed dependencies of G_k
//     consisting only of chains, built from a base-level many-to-one Hall
//     matching (Theorem 3) between guaranteed dependencies and products,
//     lifted through the recursion exactly as in Claim 2.
//   - Lemma 4: the composition a_ij → c_ij′ → b_jj′ → c_i′j′ (and its
//     B-side mirror) routing *every* input–output pair through three
//     guaranteed-dependence chains, each chain reused exactly 3n₀ᵏ times.
//   - Theorem 2 (Routing Theorem): the resulting 6aᵏ-routing between all
//     inputs and all outputs of G_k, with per-vertex and per-meta-vertex
//     hit counts verified against the bound.
//   - Claim 1 (Section 5): the simpler (11·7ᵏ)-style routing inside the
//     decoding graph D_k alone, with "zag" detours through connected base
//     decoding components, applicable whenever D₁ is connected.
//
// Routings are never stored; paths are enumerated arithmetically from
// the tensor structure, so verification over hundreds of thousands of
// paths runs in milliseconds with O(|V|) memory.
package routing

import (
	"fmt"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/cdag"
	"pathrouting/internal/hall"
)

// BaseMatching assigns every guaranteed base-level dependency to a
// product of the base graph through which its chain will be routed,
// using each product at most n₀ times per side (the many-to-one Hall
// matching of Theorem 3, computed by max-flow).
type BaseMatching struct {
	Alg *bilinear.Algorithm
	// matchA[e*a+o] is the product routing the A-side dependency
	// (a_e → c_o), or -1 when the dependency is not guaranteed
	// (row(e) ≠ row(o)). matchB mirrors it with columns.
	matchA, matchB []int
}

// NewBaseMatching computes the two side matchings. It returns an error
// carrying a Hall-condition violation witness if no matching exists;
// by Lemma 5 that cannot happen for a correct algorithm in which every
// nontrivial combination is used in one multiplication (a violation
// would yield a matrix-vector algorithm with fewer than n₀²
// multiplications, contradicting Winograd's bound).
func NewBaseMatching(alg *bilinear.Algorithm) (*BaseMatching, error) {
	bm := &BaseMatching{Alg: alg}
	var err error
	bm.matchA, err = sideMatching(alg, bilinear.SideA)
	if err != nil {
		return nil, err
	}
	bm.matchB, err = sideMatching(alg, bilinear.SideB)
	if err != nil {
		return nil, err
	}
	return bm, nil
}

// GuaranteedBaseDeps lists the guaranteed base dependencies of one side
// as (entry, output) pairs: row(e) == row(o) for side A (a_ij
// influences every c_ij′), col(e) == col(o) for side B.
func GuaranteedBaseDeps(alg *bilinear.Algorithm, side bilinear.Side) [][2]int {
	n0, a := alg.N0, alg.A()
	var deps [][2]int
	for e := 0; e < a; e++ {
		for o := 0; o < a; o++ {
			if side == bilinear.SideA && e/n0 == o/n0 {
				deps = append(deps, [2]int{e, o})
			}
			if side == bilinear.SideB && e%n0 == o%n0 {
				deps = append(deps, [2]int{e, o})
			}
		}
	}
	return deps
}

// DepProducts returns the products adjacent to the base dependency
// (e → o) on the given side: products t with a nonzero encoding
// coefficient at e and a nonzero decoding coefficient at o. These are
// the products a chain for the dependency can pass through (the
// adjacency of the paper's matching graph H, with middle-rank vertices
// identified with their unique product).
func DepProducts(alg *bilinear.Algorithm, side bilinear.Side, e, o int) []int {
	enc := alg.U
	if side == bilinear.SideB {
		enc = alg.V
	}
	var ts []int
	for t := 0; t < alg.B(); t++ {
		if !enc[t][e].IsZero() && !alg.W[o][t].IsZero() {
			ts = append(ts, t)
		}
	}
	return ts
}

func sideMatching(alg *bilinear.Algorithm, side bilinear.Side) ([]int, error) {
	a := alg.A()
	deps := GuaranteedBaseDeps(alg, side)
	adj := make([][]int, len(deps))
	for x, d := range deps {
		adj[x] = DepProducts(alg, side, d[0], d[1])
	}
	m := hall.ManyToOne(len(deps), alg.B(),
		func(x int) []int { return adj[x] },
		func(int) int { return alg.N0 })
	if !m.Ok {
		return nil, fmt.Errorf(
			"routing: %s side %v: Hall condition fails (Lemma 5 witness: %d dependencies %v share only %d products)",
			alg.Name, side, len(m.Violation), violatingDeps(deps, m.Violation), len(m.ViolationN))
	}
	match := make([]int, a*a)
	for i := range match {
		match[i] = -1
	}
	for x, d := range deps {
		match[d[0]*a+d[1]] = m.Match[x]
	}
	return match, nil
}

func violatingDeps(deps [][2]int, idx []int) [][2]int {
	out := make([][2]int, 0, len(idx))
	for _, x := range idx {
		out = append(out, deps[x])
	}
	return out
}

// MatchA returns the product assigned to the A-side base dependency
// (a_e → c_o), or -1 if the dependency is not guaranteed.
func (bm *BaseMatching) MatchA(e, o int) int { return bm.matchA[e*bm.Alg.A()+o] }

// MatchB is MatchA for the B side.
func (bm *BaseMatching) MatchB(e, o int) int { return bm.matchB[e*bm.Alg.A()+o] }

// VerifyCapacities recounts how often each product is used by each side
// matching and checks the n₀ capacity; it returns the maximum usage.
func (bm *BaseMatching) VerifyCapacities() (int, error) {
	a, b, n0 := bm.Alg.A(), bm.Alg.B(), bm.Alg.N0
	maxUse := 0
	for _, match := range [][]int{bm.matchA, bm.matchB} {
		use := make([]int, b)
		for i := 0; i < a*a; i++ {
			if t := match[i]; t >= 0 {
				use[t]++
				if use[t] > maxUse {
					maxUse = use[t]
				}
			}
		}
		for t, u := range use {
			if u > n0 {
				return maxUse, fmt.Errorf("routing: %s: product %d used %d > n₀ = %d times", bm.Alg.Name, t, u, n0)
			}
		}
	}
	return maxUse, nil
}

// Router enumerates the routings of the paper inside a standalone
// graph G_k.
type Router struct {
	// G is the graph G_k the routing lives in.
	G *cdag.Graph
	// BM is the base matching the chains are lifted from.
	BM *BaseMatching

	// AdjacencySampleStride selects which pair paths the full-routing
	// verifiers check edge by edge against G's adjacency: every
	// stride-th path in sequential enumeration order, so sequential and
	// parallel runs check the same sample. 0 means the default stride
	// (257); 1 verifies the adjacency of every path.
	AdjacencySampleStride int64
	// LinearAdjacency disables the CSR adjacency index and answers
	// adjacency checks with the legacy per-edge linear scan. It exists
	// so benchmarks can measure the index against the baseline.
	LinearAdjacency bool
	// Progress, when non-nil, receives periodic Progress snapshots from
	// VerifyFullRouting and VerifyFullRoutingParallel. It is called
	// concurrently from all workers and must be safe for concurrent use.
	Progress func(Progress)
	// Obs, when non-nil, receives batched metric updates and trace
	// spans from the full-routing verifiers (see NewInstruments).
	// Updates happen at progress-snapshot and shard granularity, so
	// instrumentation cost stays off the per-path hot path.
	Obs *Instruments

	k    int
	n0   int
	a, b int64
	powA []int64 // a^i
	powN []int64 // n0^i
}

// NewRouter builds a Router for g, computing the base matching.
func NewRouter(g *cdag.Graph) (*Router, error) {
	bm, err := NewBaseMatching(g.Alg)
	if err != nil {
		return nil, err
	}
	return NewRouterWithMatching(g, bm)
}

// NewRouterWithMatching builds a Router reusing an existing matching.
func NewRouterWithMatching(g *cdag.Graph, bm *BaseMatching) (*Router, error) {
	if bm.Alg.Name != g.Alg.Name {
		return nil, fmt.Errorf("routing: matching for %s used with graph for %s", bm.Alg.Name, g.Alg.Name)
	}
	r := &Router{G: g, BM: bm, k: g.R, n0: g.Alg.N0, a: int64(g.A()), b: int64(g.B())}
	r.powA = make([]int64, r.k+1)
	r.powN = make([]int64, r.k+1)
	r.powA[0], r.powN[0] = 1, 1
	for i := 1; i <= r.k; i++ {
		r.powA[i] = r.powA[i-1] * r.a
		r.powN[i] = r.powN[i-1] * int64(r.n0)
	}
	return r, nil
}

// K returns the recursion depth of the routed graph.
func (r *Router) K() int { return r.k }

// GuaranteedA reports whether input multi-index in (of A) and output
// multi-index out form a guaranteed dependency: equal row digits in
// every slot.
func (r *Router) GuaranteedA(in, out int64) bool {
	n0 := int64(r.n0)
	for l := 0; l < r.k; l++ {
		e := in / r.powA[r.k-1-l] % r.a
		o := out / r.powA[r.k-1-l] % r.a
		if e/n0 != o/n0 {
			return false
		}
	}
	return true
}

// GuaranteedB is GuaranteedA with column digits.
func (r *Router) GuaranteedB(in, out int64) bool {
	n0 := int64(r.n0)
	for l := 0; l < r.k; l++ {
		e := in / r.powA[r.k-1-l] % r.a
		o := out / r.powA[r.k-1-l] % r.a
		if e%n0 != o%n0 {
			return false
		}
	}
	return true
}

// AppendChain appends the chain routing the guaranteed dependency
// (input in → output out) on the given side to buf and returns it, or
// returns buf unchanged with ok=false when the dependency is not
// guaranteed. The chain is the Claim 2 lift of the base matching: it
// visits encoding ranks 0..k of the side's encoding graph, the product
// vertex of the slot-wise matched product multi-index, and decoding
// ranks 1..k — a directed path of 2k+2 vertices.
func (r *Router) AppendChain(side bilinear.Side, in, out int64, buf []cdag.V) ([]cdag.V, bool) {
	match := r.BM.matchA
	kind := cdag.EncA
	if side == bilinear.SideB {
		match = r.BM.matchB
		kind = cdag.EncB
	}
	aInt := int(r.a)
	// Slot-wise matched product coordinates.
	var t64 int64
	for l := 0; l < r.k; l++ {
		e := int(in / r.powA[r.k-1-l] % r.a)
		o := int(out / r.powA[r.k-1-l] % r.a)
		t := match[e*aInt+o]
		if t < 0 {
			return buf, false
		}
		t64 = t64*r.b + int64(t)
	}
	// Encoding ranks 0..k: prefix of T, suffix of in.
	for j := r.k; j >= 0; j-- {
		// T's first j digits: t64 / b^(k-j).
		tPrefix := t64 / powBk(r.b, r.k-j)
		idx := tPrefix*r.powA[r.k-j] + in%r.powA[r.k-j]
		buf = append(buf, r.G.ID(kind, j, idx))
	}
	// The loop above appended ranks k..0 in reverse; flip them in place.
	start := len(buf) - (r.k + 1)
	for i, j := start, len(buf)-1; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	// Product = decoding rank 0.
	buf = append(buf, r.G.ID(cdag.Dec, 0, t64))
	// Decoding ranks 1..k: keep T's first k-j digits, out's last j.
	for j := 1; j <= r.k; j++ {
		idx := (t64/powBk(r.b, j))*r.powA[j] + out%r.powA[j]
		buf = append(buf, r.G.ID(cdag.Dec, j, idx))
	}
	return buf, true
}

func powBk(b int64, k int) int64 {
	p := int64(1)
	for i := 0; i < k; i++ {
		p *= b
	}
	return p
}

// PairPath computes the Lemma 4 path between input in of the given side
// and output out, as the composition of three guaranteed-dependency
// chains (the middle one reversed). Junction vertices are not
// duplicated; the path has 3(2k+2) - 2 vertices.
func (r *Router) PairPath(side bilinear.Side, in, out int64, buf []cdag.V) []cdag.V {
	// Decompose in/out into per-slot row and column digits.
	n0 := int64(r.n0)
	iD := make([]int64, r.k) // row digits of input
	jD := make([]int64, r.k) // col digits of input
	oiD := make([]int64, r.k)
	ojD := make([]int64, r.k)
	for l := 0; l < r.k; l++ {
		e := in / r.powA[r.k-1-l] % r.a
		o := out / r.powA[r.k-1-l] % r.a
		iD[l], jD[l] = e/n0, e%n0
		oiD[l], ojD[l] = o/n0, o%n0
	}
	pack := func(rows, cols []int64) int64 {
		var x int64
		for l := 0; l < r.k; l++ {
			x = x*r.a + rows[l]*n0 + cols[l]
		}
		return x
	}
	var c1, c2, c3 []cdag.V
	var ok bool
	switch side {
	case bilinear.SideA:
		// a_ij → c_ij′ → b_jj′ → c_i′j′.
		mid := pack(iD, ojD) // c_{i,j′}
		bIn := pack(jD, ojD) // b_{j,j′}
		c1, ok = r.AppendChain(bilinear.SideA, in, mid, nil)
		if !ok {
			panic("routing: chain a→c_ij′ must be guaranteed")
		}
		c2, ok = r.AppendChain(bilinear.SideB, bIn, mid, nil)
		if !ok {
			panic("routing: chain b→c_ij′ must be guaranteed")
		}
		c3, ok = r.AppendChain(bilinear.SideB, bIn, out, nil)
		if !ok {
			panic("routing: chain b→c_i′j′ must be guaranteed")
		}
	default:
		// b_ij → c_i′j → a_i′i → c_i′j′  (paper's B-side sequence).
		mid := pack(oiD, jD) // c_{i′,j}
		aIn := pack(oiD, iD) // a_{i′,i}
		c1, ok = r.AppendChain(bilinear.SideB, in, mid, nil)
		if !ok {
			panic("routing: chain b→c_i′j must be guaranteed")
		}
		c2, ok = r.AppendChain(bilinear.SideA, aIn, mid, nil)
		if !ok {
			panic("routing: chain a→c_i′j must be guaranteed")
		}
		c3, ok = r.AppendChain(bilinear.SideA, aIn, out, nil)
		if !ok {
			panic("routing: chain a→c_i′j′ must be guaranteed")
		}
	}
	buf = append(buf, c1...)
	for i := len(c2) - 2; i >= 0; i-- { // reversed, junction dropped
		buf = append(buf, c2[i])
	}
	buf = append(buf, c3[1:]...) // junction dropped
	return buf
}

// ForEachPairPath enumerates the full input–output routing of the
// Routing Theorem: for every input of A and of B (2aᵏ inputs) and every
// output (aᵏ), the Lemma 4 path. fn receives a reused buffer.
func (r *Router) ForEachPairPath(fn func(side bilinear.Side, in, out int64, path []cdag.V)) {
	var buf []cdag.V
	for _, side := range []bilinear.Side{bilinear.SideA, bilinear.SideB} {
		for in := int64(0); in < r.powA[r.k]; in++ {
			for out := int64(0); out < r.powA[r.k]; out++ {
				buf = r.PairPath(side, in, out, buf[:0])
				fn(side, in, out, buf)
			}
		}
	}
}

// ForEachGuaranteedChain enumerates the Lemma 3 routing: one chain per
// guaranteed dependency of either side.
func (r *Router) ForEachGuaranteedChain(fn func(side bilinear.Side, in, out int64, chain []cdag.V)) {
	var buf []cdag.V
	for _, side := range []bilinear.Side{bilinear.SideA, bilinear.SideB} {
		for in := int64(0); in < r.powA[r.k]; in++ {
			for out := int64(0); out < r.powA[r.k]; out++ {
				var ok bool
				buf, ok = r.AppendChain(side, in, out, buf[:0])
				if ok {
					fn(side, in, out, buf)
				}
			}
		}
	}
}
