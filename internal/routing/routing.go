// Package routing implements the path-routing constructions at the core
// of Scott–Holtz–Schwartz, "Matrix Multiplication I/O-Complexity by Path
// Routing" (SPAA 2015), and verifies their claimed hit-count bounds
// exactly on explicit CDAGs:
//
//   - Lemma 3: a 2n₀ᵏ-routing of all guaranteed dependencies of G_k
//     consisting only of chains, built from a base-level many-to-one Hall
//     matching (Theorem 3) between guaranteed dependencies and products,
//     lifted through the recursion exactly as in Claim 2.
//   - Lemma 4: the composition a_ij → c_ij′ → b_jj′ → c_i′j′ (and its
//     B-side mirror) routing *every* input–output pair through three
//     guaranteed-dependence chains, each chain reused exactly 3n₀ᵏ times.
//   - Theorem 2 (Routing Theorem): the resulting 6aᵏ-routing between all
//     inputs and all outputs of G_k, with per-vertex and per-meta-vertex
//     hit counts verified against the bound.
//   - Claim 1 (Section 5): the simpler (11·7ᵏ)-style routing inside the
//     decoding graph D_k alone, with "zag" detours through connected base
//     decoding components, applicable whenever D₁ is connected.
//
// Routings are never stored; paths are enumerated arithmetically from
// the tensor structure, so verification over hundreds of thousands of
// paths runs in milliseconds with O(|V|) memory.
package routing

import (
	"fmt"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/cdag"
	"pathrouting/internal/hall"
)

// BaseMatching assigns every guaranteed base-level dependency to a
// product of the base graph through which its chain will be routed,
// using each product at most n₀ times per side (the many-to-one Hall
// matching of Theorem 3, computed by max-flow).
type BaseMatching struct {
	Alg *bilinear.Algorithm
	// matchA[e*a+o] is the product routing the A-side dependency
	// (a_e → c_o), or -1 when the dependency is not guaranteed
	// (row(e) ≠ row(o)). matchB mirrors it with columns.
	matchA, matchB []int
}

// NewBaseMatching computes the two side matchings. It returns an error
// carrying a Hall-condition violation witness if no matching exists;
// by Lemma 5 that cannot happen for a correct algorithm in which every
// nontrivial combination is used in one multiplication (a violation
// would yield a matrix-vector algorithm with fewer than n₀²
// multiplications, contradicting Winograd's bound).
func NewBaseMatching(alg *bilinear.Algorithm) (*BaseMatching, error) {
	bm := &BaseMatching{Alg: alg}
	var err error
	bm.matchA, err = sideMatching(alg, bilinear.SideA)
	if err != nil {
		return nil, err
	}
	bm.matchB, err = sideMatching(alg, bilinear.SideB)
	if err != nil {
		return nil, err
	}
	return bm, nil
}

// GuaranteedBaseDeps lists the guaranteed base dependencies of one side
// as (entry, output) pairs: row(e) == row(o) for side A (a_ij
// influences every c_ij′), col(e) == col(o) for side B.
func GuaranteedBaseDeps(alg *bilinear.Algorithm, side bilinear.Side) [][2]int {
	n0, a := alg.N0, alg.A()
	var deps [][2]int
	for e := 0; e < a; e++ {
		for o := 0; o < a; o++ {
			if side == bilinear.SideA && e/n0 == o/n0 {
				deps = append(deps, [2]int{e, o})
			}
			if side == bilinear.SideB && e%n0 == o%n0 {
				deps = append(deps, [2]int{e, o})
			}
		}
	}
	return deps
}

// DepProducts returns the products adjacent to the base dependency
// (e → o) on the given side: products t with a nonzero encoding
// coefficient at e and a nonzero decoding coefficient at o. These are
// the products a chain for the dependency can pass through (the
// adjacency of the paper's matching graph H, with middle-rank vertices
// identified with their unique product).
func DepProducts(alg *bilinear.Algorithm, side bilinear.Side, e, o int) []int {
	enc := alg.U
	if side == bilinear.SideB {
		enc = alg.V
	}
	var ts []int
	for t := 0; t < alg.B(); t++ {
		if !enc[t][e].IsZero() && !alg.W[o][t].IsZero() {
			ts = append(ts, t)
		}
	}
	return ts
}

func sideMatching(alg *bilinear.Algorithm, side bilinear.Side) ([]int, error) {
	a := alg.A()
	deps := GuaranteedBaseDeps(alg, side)
	adj := make([][]int, len(deps))
	for x, d := range deps {
		adj[x] = DepProducts(alg, side, d[0], d[1])
	}
	m := hall.ManyToOne(len(deps), alg.B(),
		func(x int) []int { return adj[x] },
		func(int) int { return alg.N0 })
	if !m.Ok {
		return nil, fmt.Errorf(
			"routing: %s side %v: Hall condition fails (Lemma 5 witness: %d dependencies %v share only %d products)",
			alg.Name, side, len(m.Violation), violatingDeps(deps, m.Violation), len(m.ViolationN))
	}
	match := make([]int, a*a)
	for i := range match {
		match[i] = -1
	}
	for x, d := range deps {
		match[d[0]*a+d[1]] = m.Match[x]
	}
	return match, nil
}

func violatingDeps(deps [][2]int, idx []int) [][2]int {
	out := make([][2]int, 0, len(idx))
	for _, x := range idx {
		out = append(out, deps[x])
	}
	return out
}

// MatchA returns the product assigned to the A-side base dependency
// (a_e → c_o), or -1 if the dependency is not guaranteed.
func (bm *BaseMatching) MatchA(e, o int) int { return bm.matchA[e*bm.Alg.A()+o] }

// MatchB is MatchA for the B side.
func (bm *BaseMatching) MatchB(e, o int) int { return bm.matchB[e*bm.Alg.A()+o] }

// VerifyCapacities recounts how often each product is used by each side
// matching and checks the n₀ capacity; it returns the maximum usage.
func (bm *BaseMatching) VerifyCapacities() (int, error) {
	a, b, n0 := bm.Alg.A(), bm.Alg.B(), bm.Alg.N0
	maxUse := 0
	for _, match := range [][]int{bm.matchA, bm.matchB} {
		use := make([]int, b)
		for i := 0; i < a*a; i++ {
			if t := match[i]; t >= 0 {
				use[t]++
				if use[t] > maxUse {
					maxUse = use[t]
				}
			}
		}
		for t, u := range use {
			if u > n0 {
				return maxUse, fmt.Errorf("routing: %s: product %d used %d > n₀ = %d times", bm.Alg.Name, t, u, n0)
			}
		}
	}
	return maxUse, nil
}

// Router enumerates the routings of the paper inside a standalone
// graph G_k.
type Router struct {
	// G is the graph G_k the routing lives in.
	G *cdag.Graph
	// BM is the base matching the chains are lifted from.
	BM *BaseMatching

	// AdjacencySampleStride selects which pair paths the full-routing
	// verifiers check edge by edge against G's adjacency: every
	// stride-th path in sequential enumeration order, so sequential and
	// parallel runs check the same sample. 0 means the default stride
	// (257); 1 verifies the adjacency of every path.
	AdjacencySampleStride int64
	// LinearAdjacency disables the CSR adjacency index and answers
	// adjacency checks with the legacy per-edge linear scan. It exists
	// so benchmarks can measure the index against the baseline.
	LinearAdjacency bool
	// SeedEnumeration makes the full-routing verifiers enumerate pair
	// paths with the seed kernel (seedPairPath: fresh digit slices and
	// chain buffers per path) instead of the allocation-free scratch
	// kernel. It exists so the A9 ablation and the golden equivalence
	// tests can measure the scratch kernel against the baseline.
	SeedEnumeration bool
	// OrbitReduction makes the full-routing verifiers collapse each
	// pair-path orbit — the n₀ᵏ paths sharing a (side, input) row and the
	// fixed output coordinate, on which two of the three Lemma 4 chains
	// are pointwise constant — into one weighted accumulation of the
	// shared chains plus a per-path scan of the varying chain only. The
	// resulting Stats are bit-identical to full enumeration at any k (see
	// orbit.go for the exactness argument); only wall-clock time changes.
	// SeedEnumeration takes precedence when both are set, keeping the
	// seed ablation a pure baseline.
	OrbitReduction bool
	// OrbitStage1 restores the stage-1 orbit kernel — shared chains
	// rebuilt per orbit through the division-heavy AppendChain and the
	// varying chain accumulated one vertex at a time — instead of the
	// stage-2 kernel (family-aggregated incremental chain maintenance
	// with blocked rank-by-rank hit accumulation; see orbit2.go). It
	// exists so the A11 ablation and the equivalence tests can measure
	// stage 2 against the stage-1 baseline. Ignored unless
	// OrbitReduction is set; Stats are bit-identical either way, so —
	// like the worker count — the flag is excluded from job cache
	// identity (see CacheKey).
	OrbitStage1 bool
	// Progress, when non-nil, receives periodic Progress snapshots from
	// VerifyFullRouting and VerifyFullRoutingParallel. It is called
	// concurrently from all workers and must be safe for concurrent use.
	Progress func(Progress)
	// Obs, when non-nil, receives batched metric updates and trace
	// spans from the full-routing verifiers (see NewInstruments).
	// Updates happen at progress-snapshot and shard granularity, so
	// instrumentation cost stays off the per-path hot path.
	Obs *Instruments

	k    int
	n0   int
	a, b int64
	powA []int64 // a^i
	powB []int64 // b^i
	powN []int64 // n0^i
}

// NewRouter builds a Router for g, computing the base matching.
func NewRouter(g *cdag.Graph) (*Router, error) {
	bm, err := NewBaseMatching(g.Alg)
	if err != nil {
		return nil, err
	}
	return NewRouterWithMatching(g, bm)
}

// NewRouterWithMatching builds a Router reusing an existing matching.
func NewRouterWithMatching(g *cdag.Graph, bm *BaseMatching) (*Router, error) {
	if bm.Alg.Name != g.Alg.Name {
		return nil, fmt.Errorf("routing: matching for %s used with graph for %s", bm.Alg.Name, g.Alg.Name)
	}
	r := &Router{G: g, BM: bm, k: g.R, n0: g.Alg.N0, a: int64(g.A()), b: int64(g.B())}
	r.powA = make([]int64, r.k+1)
	r.powB = make([]int64, r.k+1)
	r.powN = make([]int64, r.k+1)
	r.powA[0], r.powB[0], r.powN[0] = 1, 1, 1
	for i := 1; i <= r.k; i++ {
		r.powA[i] = r.powA[i-1] * r.a
		r.powB[i] = r.powB[i-1] * r.b
		r.powN[i] = r.powN[i-1] * int64(r.n0)
	}
	return r, nil
}

// K returns the recursion depth of the routed graph.
func (r *Router) K() int { return r.k }

// GuaranteedA reports whether input multi-index in (of A) and output
// multi-index out form a guaranteed dependency: equal row digits in
// every slot.
func (r *Router) GuaranteedA(in, out int64) bool {
	n0 := int64(r.n0)
	for l := 0; l < r.k; l++ {
		e := in / r.powA[r.k-1-l] % r.a
		o := out / r.powA[r.k-1-l] % r.a
		if e/n0 != o/n0 {
			return false
		}
	}
	return true
}

// GuaranteedB is GuaranteedA with column digits.
func (r *Router) GuaranteedB(in, out int64) bool {
	n0 := int64(r.n0)
	for l := 0; l < r.k; l++ {
		e := in / r.powA[r.k-1-l] % r.a
		o := out / r.powA[r.k-1-l] % r.a
		if e%n0 != o%n0 {
			return false
		}
	}
	return true
}

// AppendChain appends the chain routing the guaranteed dependency
// (input in → output out) on the given side to buf and returns it, or
// returns buf unchanged with ok=false when the dependency is not
// guaranteed. The chain is the Claim 2 lift of the base matching: it
// visits encoding ranks 0..k of the side's encoding graph, the product
// vertex of the slot-wise matched product multi-index, and decoding
// ranks 1..k — a directed path of 2k+2 vertices.
func (r *Router) AppendChain(side bilinear.Side, in, out int64, buf []cdag.V) ([]cdag.V, bool) {
	match := r.BM.matchA
	kind := cdag.EncA
	if side == bilinear.SideB {
		match = r.BM.matchB
		kind = cdag.EncB
	}
	aInt := int(r.a)
	// Slot-wise matched product coordinates.
	var t64 int64
	for l := 0; l < r.k; l++ {
		e := int(in / r.powA[r.k-1-l] % r.a)
		o := int(out / r.powA[r.k-1-l] % r.a)
		t := match[e*aInt+o]
		if t < 0 {
			return buf, false
		}
		t64 = t64*r.b + int64(t)
	}
	// Encoding ranks 0..k: prefix of T, suffix of in.
	for j := r.k; j >= 0; j-- {
		// T's first j digits: t64 / b^(k-j).
		tPrefix := t64 / r.powB[r.k-j]
		idx := tPrefix*r.powA[r.k-j] + in%r.powA[r.k-j]
		buf = append(buf, r.G.ID(kind, j, idx))
	}
	// The loop above appended ranks k..0 in reverse; flip them in place.
	start := len(buf) - (r.k + 1)
	for i, j := start, len(buf)-1; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	// Product = decoding rank 0.
	buf = append(buf, r.G.ID(cdag.Dec, 0, t64))
	// Decoding ranks 1..k: keep T's first k-j digits, out's last j.
	for j := 1; j <= r.k; j++ {
		idx := (t64/r.powB[j])*r.powA[j] + out%r.powA[j]
		buf = append(buf, r.G.ID(cdag.Dec, j, idx))
	}
	return buf, true
}

// pathScratch is the reusable per-worker state of pair-path
// enumeration. The seed kernel heap-allocated four digit slices, a
// closure, and three chain slices for every path — millions of paths
// of GC pressure and allocator contention serializing the parallel
// workers — so everything per-path now lives here, allocated once per
// worker: steady-state enumeration performs zero allocations per path
// (pinned by TestPairPathEnumerationZeroAllocs).
//
// A scratch is single-goroutine state: each worker makes its own with
// newPathScratch and keeps the digit fields in sync with the pair it
// enumerates via setIn/setOut/advanceOut before calling appendPairPath.
type pathScratch struct {
	iD, jD   []int64  // per-slot row/col digits of the current input
	oiD, ojD []int64  // per-slot row/col digits of the current output
	chain    []cdag.V // chain composition buffer (reversed/truncated copies)
	roots    []cdag.V // per-path meta/value-root dedup (≤ 3(2k+2)-2 entries)
}

// newPathScratch returns a scratch sized for r's recursion depth, with
// every buffer pre-grown so first use does not allocate.
func (r *Router) newPathScratch() *pathScratch {
	digits := make([]int64, 4*r.k) // one backing array for all four digit slices
	pathLen := 3*(2*r.k+2) - 2
	return &pathScratch{
		iD:    digits[0*r.k : 1*r.k],
		jD:    digits[1*r.k : 2*r.k],
		oiD:   digits[2*r.k : 3*r.k],
		ojD:   digits[3*r.k : 4*r.k],
		chain: make([]cdag.V, 0, 2*r.k+2),
		roots: make([]cdag.V, 0, pathLen),
	}
}

// setIn decomposes input multi-index in into per-slot row/col digits.
func (ps *pathScratch) setIn(r *Router, in int64) {
	n0 := int64(r.n0)
	for l := 0; l < r.k; l++ {
		e := in / r.powA[r.k-1-l] % r.a
		ps.iD[l], ps.jD[l] = e/n0, e%n0
	}
}

// setOut decomposes output multi-index out into per-slot row/col
// digits.
func (ps *pathScratch) setOut(r *Router, out int64) {
	n0 := int64(r.n0)
	for l := 0; l < r.k; l++ {
		o := out / r.powA[r.k-1-l] % r.a
		ps.oiD[l], ps.ojD[l] = o/n0, o%n0
	}
}

// advanceOut steps the output digits to the next multi-index in
// enumeration order — the odometer the row-major scan loops turn
// instead of redoing k divisions per path. Incrementing the packed
// index by one bumps the last slot's digit and carries leftward, so
// only the changed slots are touched; past the last index it wraps to
// all zeros, like the packed value modulo aᵏ.
func (ps *pathScratch) advanceOut(r *Router) {
	n0 := int64(r.n0)
	for l := r.k - 1; l >= 0; l-- {
		d := ps.oiD[l]*n0 + ps.ojD[l] + 1
		if d < r.a {
			ps.oiD[l], ps.ojD[l] = d/n0, d%n0
			return
		}
		ps.oiD[l], ps.ojD[l] = 0, 0
	}
}

// pack recombines per-slot row and column digits into a packed
// multi-index (the inverse of setIn/setOut).
func (ps *pathScratch) pack(r *Router, rows, cols []int64) int64 {
	n0 := int64(r.n0)
	var x int64
	for l := 0; l < r.k; l++ {
		x = x*r.a + rows[l]*n0 + cols[l]
	}
	return x
}

// packN packs k base-n₀ digits (one row or column coordinate per slot).
func (ps *pathScratch) packN(r *Router, digits []int64) int64 {
	n0 := int64(r.n0)
	var x int64
	for l := 0; l < r.k; l++ {
		x = x*n0 + digits[l]
	}
	return x
}

// appendPairPath is the allocation-free pair-path kernel: it appends
// the Lemma 4 path for (side, in, out) to buf and returns it, taking
// all per-path state from ps, whose digit fields the caller must have
// synchronized to (in, out) via setIn/setOut/advanceOut. The first and
// third chains compose directly into buf; only the middle chain passes
// through the scratch buffer, because it enters the path reversed.
func (r *Router) appendPairPath(ps *pathScratch, side bilinear.Side, in, out int64, buf []cdag.V) []cdag.V {
	var ok bool
	switch side {
	case bilinear.SideA:
		// a_ij → c_ij′ → b_jj′ → c_i′j′.
		mid := ps.pack(r, ps.iD, ps.ojD) // c_{i,j′}
		bIn := ps.pack(r, ps.jD, ps.ojD) // b_{j,j′}
		buf, ok = r.AppendChain(bilinear.SideA, in, mid, buf)
		if !ok {
			panic("routing: chain a→c_ij′ must be guaranteed")
		}
		ps.chain, ok = r.AppendChain(bilinear.SideB, bIn, mid, ps.chain[:0])
		if !ok {
			panic("routing: chain b→c_ij′ must be guaranteed")
		}
		for i := len(ps.chain) - 2; i >= 0; i-- { // reversed, junction dropped
			buf = append(buf, ps.chain[i])
		}
		start := len(buf)
		buf, ok = r.AppendChain(bilinear.SideB, bIn, out, buf)
		if !ok {
			panic("routing: chain b→c_i′j′ must be guaranteed")
		}
		// Drop the third chain's leading junction vertex in place.
		buf = append(buf[:start], buf[start+1:]...)
	default:
		// b_ij → c_i′j → a_i′i → c_i′j′  (paper's B-side sequence).
		mid := ps.pack(r, ps.oiD, ps.jD) // c_{i′,j}
		aIn := ps.pack(r, ps.oiD, ps.iD) // a_{i′,i}
		buf, ok = r.AppendChain(bilinear.SideB, in, mid, buf)
		if !ok {
			panic("routing: chain b→c_i′j must be guaranteed")
		}
		ps.chain, ok = r.AppendChain(bilinear.SideA, aIn, mid, ps.chain[:0])
		if !ok {
			panic("routing: chain a→c_i′j must be guaranteed")
		}
		for i := len(ps.chain) - 2; i >= 0; i-- { // reversed, junction dropped
			buf = append(buf, ps.chain[i])
		}
		start := len(buf)
		buf, ok = r.AppendChain(bilinear.SideA, aIn, out, buf)
		if !ok {
			panic("routing: chain a→c_i′j′ must be guaranteed")
		}
		buf = append(buf[:start], buf[start+1:]...)
	}
	return buf
}

// PairPath computes the Lemma 4 path between input in of the given side
// and output out, as the composition of three guaranteed-dependency
// chains (the middle one reversed). Junction vertices are not
// duplicated; the path has 3(2k+2) - 2 vertices.
//
// This is the one-shot convenience form: it allocates a fresh scratch
// per call. Enumeration loops (ForEachPairPath, the verifier workers)
// reuse one pathScratch per worker and stay allocation-free.
func (r *Router) PairPath(side bilinear.Side, in, out int64, buf []cdag.V) []cdag.V {
	ps := r.newPathScratch()
	ps.setIn(r, in)
	ps.setOut(r, out)
	return r.appendPairPath(ps, side, in, out, buf)
}

// ForEachPairPath enumerates the full input–output routing of the
// Routing Theorem: for every input of A and of B (2aᵏ inputs) and every
// output (aᵏ), the Lemma 4 path. fn receives a reused buffer.
func (r *Router) ForEachPairPath(fn func(side bilinear.Side, in, out int64, path []cdag.V)) {
	var buf []cdag.V
	ps := r.newPathScratch()
	aK := r.powA[r.k]
	for _, side := range []bilinear.Side{bilinear.SideA, bilinear.SideB} {
		for in := int64(0); in < aK; in++ {
			ps.setIn(r, in)
			ps.setOut(r, 0)
			for out := int64(0); out < aK; out++ {
				if out != 0 {
					ps.advanceOut(r)
				}
				buf = r.appendPairPath(ps, side, in, out, buf[:0])
				fn(side, in, out, buf)
			}
		}
	}
}

// ForEachGuaranteedChain enumerates the Lemma 3 routing: one chain per
// guaranteed dependency of either side, in the sequential (side, in,
// out) order. Guaranteed outputs are enumerated directly — for each
// input only its n₀ᵏ dependent outputs are visited (free column digits
// for side A, free row digits for side B), n₀ᵏ·aᵏ chains per side —
// instead of testing all aᵏ×aᵏ pairs and discarding the non-guaranteed
// ones inside AppendChain.
func (r *Router) ForEachGuaranteedChain(fn func(side bilinear.Side, in, out int64, chain []cdag.V)) {
	var buf []cdag.V
	ps := r.newPathScratch()
	n0 := int64(r.n0)
	aK := r.powA[r.k]
	free := make([]int64, r.k) // odometer over the k free base-n₀ digits
	for _, side := range []bilinear.Side{bilinear.SideA, bilinear.SideB} {
		for in := int64(0); in < aK; in++ {
			ps.setIn(r, in)
			// Packed output with all free digits zero, and the packed
			// step a unit of free digit l contributes: side A fixes the
			// row digits (out digit l is iD[l]·n₀ + free[l]), side B the
			// column digits (out digit l is free[l]·n₀ + jD[l]).
			var base int64
			for l := 0; l < r.k; l++ {
				if side == bilinear.SideA {
					base = base*r.a + ps.iD[l]*n0
				} else {
					base = base*r.a + ps.jD[l]
				}
			}
			// A unit of free digit l moves out by stepScale·a^(k-1-l):
			// the free digit is the column (units) part of out digit l
			// for side A and the row (·n₀) part for side B.
			stepScale := int64(1)
			if side == bilinear.SideB {
				stepScale = n0
			}
			for l := range free {
				free[l] = 0
			}
			out := base
			for {
				var ok bool
				buf, ok = r.AppendChain(side, in, out, buf[:0])
				if !ok {
					panic("routing: directly enumerated dependency must be guaranteed")
				}
				fn(side, in, out, buf)
				// Advance the free-digit odometer, updating out in place.
				l := r.k - 1
				for ; l >= 0; l-- {
					free[l]++
					out += stepScale * r.powA[r.k-1-l]
					if free[l] < n0 {
						break
					}
					free[l] = 0
					out -= n0 * stepScale * r.powA[r.k-1-l]
				}
				if l < 0 {
					break
				}
			}
		}
	}
}
