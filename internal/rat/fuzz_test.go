package rat

import "testing"

// FuzzParseRoundTrip checks that any parseable string round-trips
// through String (after normalization) and never panics.
func FuzzParseRoundTrip(f *testing.F) {
	for _, seed := range []string{"0", "1/2", "-3/7", "22/7", "9223372036854775807", "1/0", "x", ""} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		r, err := Parse(s)
		if err != nil {
			return
		}
		back, err := Parse(r.String())
		if err != nil {
			t.Fatalf("String() of parsed %q unparseable: %v", s, err)
		}
		if !back.Equal(r) {
			t.Fatalf("round trip %q -> %v -> %v", s, r, back)
		}
	})
}

// FuzzArithmeticConsistency checks field identities on fuzzer-chosen
// small rationals: (x+y)-y == x and (x*y)/y == x when y != 0.
func FuzzArithmeticConsistency(f *testing.F) {
	f.Add(int16(1), uint8(2), int16(-3), uint8(4))
	f.Add(int16(0), uint8(1), int16(7), uint8(9))
	f.Fuzz(func(t *testing.T, xn int16, xd uint8, yn int16, yd uint8) {
		x := New(int64(xn), int64(xd%100)+1)
		y := New(int64(yn), int64(yd%100)+1)
		if got := x.Add(y).Sub(y); !got.Equal(x) {
			t.Fatalf("(%v+%v)-%v = %v", x, y, y, got)
		}
		if !y.IsZero() {
			if got := x.Mul(y).Div(y); !got.Equal(x) {
				t.Fatalf("(%v*%v)/%v = %v", x, y, y, got)
			}
		}
		// Modular homomorphism.
		if got, want := x.Add(y).Mod(), ModAdd(x.Mod(), y.Mod()); got != want {
			t.Fatalf("mod additivity: %d vs %d", got, want)
		}
	})
}
