package rat

import "fmt"

// ModP is the prime modulus used by modular evaluation of CDAGs and
// bilinear identities. Working mod a large prime keeps evaluation O(1)
// per operation regardless of recursion depth (exact rational values in a
// depth-r CDAG can grow exponentially in r) while still detecting any
// wiring or coefficient error with overwhelming probability: a nonzero
// polynomial identity over Q vanishes mod p at random points with
// probability at most deg/p (DeMillo–Lipton–Schwartz–Zippel).
const ModP uint64 = 2147483647 // 2^31 - 1, Mersenne prime

// Mod is a residue modulo ModP.
type Mod uint64

// ModAdd returns a + b mod p.
func ModAdd(a, b Mod) Mod {
	s := uint64(a) + uint64(b)
	if s >= ModP {
		s -= ModP
	}
	return Mod(s)
}

// ModSub returns a - b mod p.
func ModSub(a, b Mod) Mod {
	if a >= b {
		return a - b
	}
	return a + Mod(ModP) - b
}

// ModMul returns a * b mod p.
func ModMul(a, b Mod) Mod {
	return Mod(uint64(a) * uint64(b) % ModP) // fits: (p-1)^2 < 2^62
}

// ModPow returns a^e mod p.
func ModPow(a Mod, e uint64) Mod {
	r := Mod(1)
	base := a
	for e > 0 {
		if e&1 == 1 {
			r = ModMul(r, base)
		}
		base = ModMul(base, base)
		e >>= 1
	}
	return r
}

// ModInv returns the multiplicative inverse of a mod p.
// It panics if a == 0.
func ModInv(a Mod) Mod {
	if a == 0 {
		panic(fmt.Errorf("rat: modular inverse of zero"))
	}
	return ModPow(a, ModP-2) // Fermat: p prime
}

// ModOf converts an int64 to its residue mod p.
func ModOf(x int64) Mod {
	m := x % int64(ModP)
	if m < 0 {
		m += int64(ModP)
	}
	return Mod(m)
}

// Mod returns the residue of the rational r modulo p, i.e.
// num * den^(-1) mod p. It panics if den ≡ 0 mod p, which cannot occur
// for catalog-scale denominators (all far below p).
func (r Rat) Mod() Mod {
	n := ModOf(r.Num())
	d := ModOf(r.Den())
	if d == 0 {
		panic(fmt.Errorf("rat: denominator %d divisible by modulus", r.Den()))
	}
	if d == 1 {
		return n
	}
	return ModMul(n, ModInv(d))
}
