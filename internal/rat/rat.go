// Package rat implements exact rational arithmetic on checked int64
// numerators and denominators.
//
// All coefficient arithmetic in this repository — Brent-equation
// verification of bilinear algorithms, symbolic CDAG evaluation, decoder
// solving by Gaussian elimination — is done in this package so that
// correctness checks are exact rather than floating-point approximate.
// The coefficients arising from the algorithm catalog are tiny integers
// (almost always -1, 0, 1), so int64 is ample; every operation still
// checks for overflow and reports it via ErrOverflow so a silent wrap can
// never corrupt a verification result.
package rat

import (
	"errors"
	"fmt"
	"strconv"
)

// ErrOverflow is the panic value used when an arithmetic operation would
// exceed the int64 range. The catalog coefficients make this unreachable
// in practice; the check exists so that it cannot happen silently.
var ErrOverflow = errors.New("rat: int64 overflow")

// Rat is an exact rational number num/den in lowest terms with den > 0.
// The zero value is the rational number 0.
type Rat struct {
	num int64
	den int64 // invariant: den >= 1 and gcd(|num|, den) == 1; zero value den==0 means 0/1
}

// New returns the rational num/den in lowest terms. It panics with
// ErrOverflow if den == 0.
func New(num, den int64) Rat {
	if den == 0 {
		panic(fmt.Errorf("rat: zero denominator %d/%d", num, den))
	}
	if den < 0 {
		num, den = -num, -den
	}
	g := gcd64(abs64(num), den)
	if g > 1 {
		num /= g
		den /= g
	}
	return Rat{num, den}
}

// Int returns the rational n/1.
func Int(n int64) Rat { return Rat{n, 1} }

// Common small constants.
var (
	Zero   = Rat{0, 1}
	One    = Rat{1, 1}
	NegOne = Rat{-1, 1}
)

// Num returns the numerator of r (in lowest terms, sign carried here).
func (r Rat) Num() int64 {
	if r.den == 0 {
		return 0
	}
	return r.num
}

// Den returns the positive denominator of r in lowest terms.
func (r Rat) Den() int64 {
	if r.den == 0 {
		return 1
	}
	return r.den
}

// norm returns r with the zero value normalized to 0/1.
func (r Rat) norm() Rat {
	if r.den == 0 {
		return Rat{0, 1}
	}
	return r
}

// IsZero reports whether r == 0.
func (r Rat) IsZero() bool { return r.Num() == 0 }

// IsOne reports whether r == 1.
func (r Rat) IsOne() bool { return r.Num() == 1 && r.Den() == 1 }

// IsInt reports whether r is an integer.
func (r Rat) IsInt() bool { return r.Den() == 1 }

// Sign returns -1, 0, or +1 according to the sign of r.
func (r Rat) Sign() int {
	switch {
	case r.Num() > 0:
		return 1
	case r.Num() < 0:
		return -1
	default:
		return 0
	}
}

// Equal reports whether r == s.
func (r Rat) Equal(s Rat) bool { return r.Num() == s.Num() && r.Den() == s.Den() }

// Cmp compares r and s, returning -1, 0, or +1.
func (r Rat) Cmp(s Rat) int {
	// r - s sign without overflow risk for catalog-scale values: use checked arithmetic.
	d := r.Sub(s)
	return d.Sign()
}

// Neg returns -r.
func (r Rat) Neg() Rat {
	r = r.norm()
	return Rat{checkNeg(r.num), r.den}
}

// Add returns r + s.
func (r Rat) Add(s Rat) Rat {
	r, s = r.norm(), s.norm()
	// r.num/r.den + s.num/s.den = (r.num*(s.den/g) + s.num*(r.den/g)) / lcm
	g := gcd64(r.den, s.den)
	sd := s.den / g
	rd := r.den / g
	num := checkAdd(checkMul(r.num, sd), checkMul(s.num, rd))
	den := checkMul(r.den, sd)
	return New(num, den)
}

// Sub returns r - s.
func (r Rat) Sub(s Rat) Rat { return r.Add(s.Neg()) }

// Mul returns r * s.
func (r Rat) Mul(s Rat) Rat {
	r, s = r.norm(), s.norm()
	// Cross-reduce before multiplying to keep magnitudes small.
	g1 := gcd64(abs64(r.num), s.den)
	g2 := gcd64(abs64(s.num), r.den)
	num := checkMul(r.num/g1, s.num/g2)
	den := checkMul(r.den/g2, s.den/g1)
	return New(num, den)
}

// Inv returns 1/r. It panics if r == 0.
func (r Rat) Inv() Rat {
	if r.IsZero() {
		panic(errors.New("rat: division by zero"))
	}
	r = r.norm()
	return New(r.den, r.num)
}

// Div returns r / s. It panics if s == 0.
func (r Rat) Div(s Rat) Rat { return r.Mul(s.Inv()) }

// Float64 returns the nearest float64 to r.
func (r Rat) Float64() float64 { return float64(r.Num()) / float64(r.Den()) }

// String returns "n" for integers and "n/d" otherwise.
func (r Rat) String() string {
	if r.Den() == 1 {
		return strconv.FormatInt(r.Num(), 10)
	}
	return strconv.FormatInt(r.Num(), 10) + "/" + strconv.FormatInt(r.Den(), 10)
}

// Parse parses "n" or "n/d" into a Rat.
func Parse(s string) (Rat, error) {
	for i := 0; i < len(s); i++ {
		if s[i] == '/' {
			num, err := strconv.ParseInt(s[:i], 10, 64)
			if err != nil {
				return Rat{}, fmt.Errorf("rat: parse %q: %w", s, err)
			}
			den, err := strconv.ParseInt(s[i+1:], 10, 64)
			if err != nil {
				return Rat{}, fmt.Errorf("rat: parse %q: %w", s, err)
			}
			if den == 0 {
				return Rat{}, fmt.Errorf("rat: parse %q: zero denominator", s)
			}
			return New(num, den), nil
		}
	}
	num, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return Rat{}, fmt.Errorf("rat: parse %q: %w", s, err)
	}
	return Int(num), nil
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

func checkAdd(a, b int64) int64 {
	s := a + b
	if (a > 0 && b > 0 && s <= 0) || (a < 0 && b < 0 && s >= 0) {
		panic(ErrOverflow)
	}
	return s
}

func checkNeg(a int64) int64 {
	if a == -a && a != 0 { // only math.MinInt64
		panic(ErrOverflow)
	}
	return -a
}

func checkMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if p/b != a {
		panic(ErrOverflow)
	}
	return p
}

// Sum returns the sum of xs, or 0 for an empty slice.
func Sum(xs ...Rat) Rat {
	s := Zero
	for _, x := range xs {
		s = s.Add(x)
	}
	return s
}

// Dot returns the inner product of equal-length coefficient vectors.
// It panics if the lengths differ.
func Dot(a, b []Rat) Rat {
	if len(a) != len(b) {
		panic(fmt.Errorf("rat: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := Zero
	for i := range a {
		if a[i].IsZero() || b[i].IsZero() {
			continue
		}
		s = s.Add(a[i].Mul(b[i]))
	}
	return s
}
