package rat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewNormalizes(t *testing.T) {
	cases := []struct {
		num, den         int64
		wantNum, wantDen int64
	}{
		{1, 2, 1, 2},
		{2, 4, 1, 2},
		{-2, 4, -1, 2},
		{2, -4, -1, 2},
		{-2, -4, 1, 2},
		{0, 5, 0, 1},
		{0, -5, 0, 1},
		{6, 3, 2, 1},
		{-9, 3, -3, 1},
	}
	for _, c := range cases {
		r := New(c.num, c.den)
		if r.Num() != c.wantNum || r.Den() != c.wantDen {
			t.Errorf("New(%d,%d) = %d/%d, want %d/%d", c.num, c.den, r.Num(), r.Den(), c.wantNum, c.wantDen)
		}
	}
}

func TestNewPanicsOnZeroDen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(1,0) did not panic")
		}
	}()
	New(1, 0)
}

func TestZeroValueIsZero(t *testing.T) {
	var r Rat
	if !r.IsZero() {
		t.Errorf("zero value not zero: %v", r)
	}
	if got := r.Add(Int(3)); !got.Equal(Int(3)) {
		t.Errorf("0 + 3 = %v", got)
	}
	if got := r.Mul(Int(3)); !got.IsZero() {
		t.Errorf("0 * 3 = %v", got)
	}
	if r.String() != "0" {
		t.Errorf("zero String = %q", r.String())
	}
}

func TestArithmetic(t *testing.T) {
	half := New(1, 2)
	third := New(1, 3)
	if got := half.Add(third); !got.Equal(New(5, 6)) {
		t.Errorf("1/2 + 1/3 = %v", got)
	}
	if got := half.Sub(third); !got.Equal(New(1, 6)) {
		t.Errorf("1/2 - 1/3 = %v", got)
	}
	if got := half.Mul(third); !got.Equal(New(1, 6)) {
		t.Errorf("1/2 * 1/3 = %v", got)
	}
	if got := half.Div(third); !got.Equal(New(3, 2)) {
		t.Errorf("1/2 / 1/3 = %v", got)
	}
	if got := half.Neg(); !got.Equal(New(-1, 2)) {
		t.Errorf("-(1/2) = %v", got)
	}
	if got := New(-3, 7).Inv(); !got.Equal(New(-7, 3)) {
		t.Errorf("inv(-3/7) = %v", got)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	One.Div(Zero)
}

func TestSignCmp(t *testing.T) {
	if New(-1, 2).Sign() != -1 || New(1, 2).Sign() != 1 || Zero.Sign() != 0 {
		t.Error("Sign wrong")
	}
	if New(1, 3).Cmp(New(1, 2)) != -1 {
		t.Error("1/3 < 1/2 expected")
	}
	if New(2, 3).Cmp(New(2, 3)) != 0 {
		t.Error("2/3 == 2/3 expected")
	}
	if New(3, 4).Cmp(New(1, 2)) != 1 {
		t.Error("3/4 > 1/2 expected")
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	for _, s := range []string{"0", "5", "-5", "1/2", "-3/7", "22/7"} {
		r, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if r.String() != s {
			t.Errorf("Parse(%q).String() = %q", s, r.String())
		}
	}
	if _, err := Parse("1/0"); err == nil {
		t.Error("Parse(1/0) should fail")
	}
	if _, err := Parse("x"); err == nil {
		t.Error("Parse(x) should fail")
	}
	if _, err := Parse("1/x"); err == nil {
		t.Error("Parse(1/x) should fail")
	}
}

func TestFloat64(t *testing.T) {
	if got := New(1, 2).Float64(); got != 0.5 {
		t.Errorf("Float64(1/2) = %v", got)
	}
	if got := New(-22, 7).Float64(); math.Abs(got+22.0/7.0) > 1e-15 {
		t.Errorf("Float64(-22/7) = %v", got)
	}
}

// small builds a Rat from bounded quick-check inputs so intermediate
// values stay far from overflow.
func small(n int16, d uint8) Rat {
	den := int64(d%100) + 1
	return New(int64(n), den)
}

func TestQuickFieldAxioms(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}

	commAdd := func(an int16, ad uint8, bn int16, bd uint8) bool {
		a, b := small(an, ad), small(bn, bd)
		return a.Add(b).Equal(b.Add(a))
	}
	if err := quick.Check(commAdd, cfg); err != nil {
		t.Errorf("addition not commutative: %v", err)
	}

	assocAdd := func(an int16, ad uint8, bn int16, bd uint8, cn int16, cd uint8) bool {
		a, b, c := small(an, ad), small(bn, bd), small(cn, cd)
		return a.Add(b).Add(c).Equal(a.Add(b.Add(c)))
	}
	if err := quick.Check(assocAdd, cfg); err != nil {
		t.Errorf("addition not associative: %v", err)
	}

	distrib := func(an int16, ad uint8, bn int16, bd uint8, cn int16, cd uint8) bool {
		a, b, c := small(an, ad), small(bn, bd), small(cn, cd)
		return a.Mul(b.Add(c)).Equal(a.Mul(b).Add(a.Mul(c)))
	}
	if err := quick.Check(distrib, cfg); err != nil {
		t.Errorf("distributivity fails: %v", err)
	}

	subInverse := func(an int16, ad uint8, bn int16, bd uint8) bool {
		a, b := small(an, ad), small(bn, bd)
		return a.Add(b).Sub(b).Equal(a)
	}
	if err := quick.Check(subInverse, cfg); err != nil {
		t.Errorf("a+b-b != a: %v", err)
	}

	mulInverse := func(an int16, ad uint8) bool {
		a := small(an, ad)
		if a.IsZero() {
			return true
		}
		return a.Mul(a.Inv()).IsOne()
	}
	if err := quick.Check(mulInverse, cfg); err != nil {
		t.Errorf("a * 1/a != 1: %v", err)
	}

	normalized := func(an int16, ad uint8, bn int16, bd uint8) bool {
		r := small(an, ad).Mul(small(bn, bd))
		if r.Den() < 1 {
			return false
		}
		return gcd64(abs64(r.Num()), r.Den()) == 1
	}
	if err := quick.Check(normalized, cfg); err != nil {
		t.Errorf("result not in lowest terms: %v", err)
	}
}

func TestOverflowDetected(t *testing.T) {
	big := Int(int64(1) << 62)
	defer func() {
		if recover() != ErrOverflow {
			t.Fatal("expected ErrOverflow panic")
		}
	}()
	big.Mul(big)
}

func TestSumDot(t *testing.T) {
	if got := Sum(Int(1), Int(2), Int(3)); !got.Equal(Int(6)) {
		t.Errorf("Sum = %v", got)
	}
	if got := Sum(); !got.IsZero() {
		t.Errorf("empty Sum = %v", got)
	}
	a := []Rat{Int(1), Int(2), Int(3)}
	b := []Rat{Int(4), Int(-5), Int(6)}
	if got := Dot(a, b); !got.Equal(Int(12)) {
		t.Errorf("Dot = %v", got)
	}
}

func TestDotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot length mismatch did not panic")
		}
	}()
	Dot([]Rat{One}, []Rat{One, One})
}

func TestModArithmetic(t *testing.T) {
	a, b := Mod(ModP-1), Mod(5)
	if got := ModAdd(a, b); got != 4 {
		t.Errorf("(p-1)+5 mod p = %d, want 4", got)
	}
	if got := ModSub(b, a); got != 6 {
		t.Errorf("5-(p-1) mod p = %d, want 6", got)
	}
	if got := ModMul(Mod(1<<20), Mod(1<<20)); got != Mod((uint64(1)<<40)%ModP) {
		t.Errorf("ModMul = %d", got)
	}
	if got := ModPow(2, 31); got != Mod((uint64(1)<<31)%ModP) {
		t.Errorf("ModPow(2,31) = %d", got)
	}
}

func TestModInv(t *testing.T) {
	for _, a := range []Mod{1, 2, 3, 7, 1000003, Mod(ModP - 1)} {
		inv := ModInv(a)
		if got := ModMul(a, inv); got != 1 {
			t.Errorf("a * a^-1 = %d for a=%d", got, a)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ModInv(0) did not panic")
		}
	}()
	ModInv(0)
}

func TestRatMod(t *testing.T) {
	// 1/2 mod p must satisfy 2 * x == 1 mod p.
	x := New(1, 2).Mod()
	if got := ModMul(2, x); got != 1 {
		t.Errorf("2 * (1/2 mod p) = %d", got)
	}
	if got := Int(-1).Mod(); got != Mod(ModP-1) {
		t.Errorf("-1 mod p = %d", got)
	}
	// Homomorphism: (a+b) mod p == a mod p + b mod p.
	a, b := New(3, 7), New(-5, 9)
	if got, want := a.Add(b).Mod(), ModAdd(a.Mod(), b.Mod()); got != want {
		t.Errorf("mod not additive: %d vs %d", got, want)
	}
	if got, want := a.Mul(b).Mod(), ModMul(a.Mod(), b.Mod()); got != want {
		t.Errorf("mod not multiplicative: %d vs %d", got, want)
	}
}

func TestModOf(t *testing.T) {
	if ModOf(-1) != Mod(ModP-1) {
		t.Error("ModOf(-1) wrong")
	}
	if ModOf(int64(ModP)) != 0 {
		t.Error("ModOf(p) wrong")
	}
	if ModOf(42) != 42 {
		t.Error("ModOf(42) wrong")
	}
}
