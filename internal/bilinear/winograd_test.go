package bilinear

import (
	"math/rand"
	"testing"
)

func TestG1CircleFullGraphIsCorrect(t *testing.T) {
	// Keeping every product, every coefficient must be correct
	// (n_f = n₀²) for every row of every catalog algorithm — the base
	// graph does compute matrix multiplication.
	for _, alg := range All() {
		all := make([]int, alg.B())
		for t := range all {
			all[t] = t
		}
		for row := 0; row < alg.N0; row++ {
			gc, err := NewG1Circle(alg, row, all)
			if err != nil {
				t.Fatal(err)
			}
			if nf := gc.CorrectCoefficients(); nf != alg.A() {
				t.Errorf("%s row %d: full graph has %d/%d correct coefficients", alg.Name, row, nf, alg.A())
			}
		}
	}
}

func TestG1CircleEmptyGraph(t *testing.T) {
	gc, err := NewG1Circle(Strassen(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nf := gc.CorrectCoefficients(); nf != 0 {
		t.Errorf("empty G₁° has %d correct coefficients", nf)
	}
	if err := gc.CheckLemma6(); err != nil {
		t.Error(err)
	}
}

func TestLemma6ExhaustiveStrassenWinograd(t *testing.T) {
	// The computational content of Lemma 6 over all 2⁷ product subsets
	// and both rows: n_f ≤ |keep| always.
	for _, alg := range []*Algorithm{Strassen(), Winograd(), Classical(2)} {
		if err := VerifyLemma6Exhaustive(alg); err != nil {
			t.Errorf("%s: %v", alg.Name, err)
		}
	}
}

func TestLemma6RandomLargeBases(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	lad, err := Laderman()
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []*Algorithm{lad, StrassenSquared(), DisconnectedFast(), Classical(3)} {
		if err := VerifyLemma6Random(alg, rng, 200); err != nil {
			t.Errorf("%s: %v", alg.Name, err)
		}
	}
}

func TestRepairCountNeverBeatsWinograd(t *testing.T) {
	// The repaired matrix-vector algorithm always uses ≥ n₀²
	// multiplications (Winograd 1967); exhaustive over Strassen subsets.
	alg := Strassen()
	for mask := 0; mask < 1<<7; mask++ {
		var keep []int
		for t := 0; t < 7; t++ {
			if mask&(1<<uint(t)) != 0 {
				keep = append(keep, t)
			}
		}
		gc, err := NewG1Circle(alg, 1, keep)
		if err != nil {
			t.Fatal(err)
		}
		if rc := gc.RepairCount(); rc < alg.A() {
			t.Fatalf("keep=%v: repaired algorithm with %d < n₀² = %d multiplications", keep, rc, alg.A())
		}
	}
}

func TestG1CircleRejectsBadInput(t *testing.T) {
	if _, err := NewG1Circle(Strassen(), 5, nil); err == nil {
		t.Error("bad row accepted")
	}
	if _, err := NewG1Circle(Strassen(), 0, []int{9}); err == nil {
		t.Error("bad product accepted")
	}
	if _, err := NewG1Circle(Strassen(), 0, []int{1, 1}); err == nil {
		t.Error("duplicate product accepted")
	}
}

func TestBVectorIsEntry(t *testing.T) {
	v := make(BVector, 4)
	if v.IsEntry(2) {
		t.Error("zero vector is not an entry")
	}
	v[2] = intOne()
	if !v.IsEntry(2) {
		t.Error("e2 not recognized")
	}
	if v.IsEntry(1) {
		t.Error("wrong entry accepted")
	}
	v[0] = intOne()
	if v.IsEntry(2) {
		t.Error("two-term vector accepted")
	}
}

func TestVerifyLemma6ExhaustiveRejectsLargeB(t *testing.T) {
	lad, err := Laderman()
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyLemma6Exhaustive(lad); err == nil {
		t.Error("b=23 exhaustive check should refuse")
	}
}
