package bilinear

// Dual algorithms via the symmetries of the matrix-multiplication
// tensor. ⟨n,n,n⟩ is invariant under cyclically rotating the roles of
// A, B, C combined with transposition, so every algorithm ⟨U,V,W⟩
// spawns a family of siblings (its S₃-orbit). The constructions are
// assembled candidate-by-candidate and filtered through the exact Brent
// verifier, so only genuinely valid duals are returned — no symmetry
// bookkeeping can silently go wrong. Duals enrich the catalog for
// testing: they share b and ω₀ but permute the encoding/decoding
// structure (a connected decoding graph can become an encoding graph of
// a dual, etc.).

import "pathrouting/internal/rat"

// transposeEntries returns the row with entry indices transposed:
// out[(i,j)] = row[(j,i)].
func transposeEntries(n0 int, row []rat.Rat) []rat.Rat {
	out := make([]rat.Rat, len(row))
	for i := 0; i < n0; i++ {
		for j := 0; j < n0; j++ {
			out[i*n0+j] = row[j*n0+i]
		}
	}
	return out
}

// wAsRows returns W reshaped to b rows of length a (like U and V):
// out[t][o] = W[o][t].
func wAsRows(alg *Algorithm) [][]rat.Rat {
	out := make([][]rat.Rat, alg.B())
	for t := range out {
		out[t] = make([]rat.Rat, alg.A())
		for o := 0; o < alg.A(); o++ {
			out[t][o] = alg.W[o][t]
		}
	}
	return out
}

// rowsAsW is the inverse reshape.
func rowsAsW(a int, rows [][]rat.Rat) [][]rat.Rat {
	w := make([][]rat.Rat, a)
	for o := 0; o < a; o++ {
		w[o] = make([]rat.Rat, len(rows))
		for t := range rows {
			w[o][t] = rows[t][o]
		}
	}
	return w
}

// Duals returns the valid members of the algorithm's symmetry family:
// all assignments of the three coefficient families {U, V, W} (each
// optionally entry-transposed) to the three roles that pass the exact
// Brent verification, excluding the identity assignment. Typical
// algorithms yield several distinct duals (the cyclic rotations with
// transposes).
func Duals(alg *Algorithm) []*Algorithm {
	n0, a := alg.N0, alg.A()
	sources := [][][]rat.Rat{alg.U, alg.V, wAsRows(alg)}
	names := []string{"U", "V", "Wt"}

	maybeT := func(rows [][]rat.Rat, flag bool) [][]rat.Rat {
		if !flag {
			return rows
		}
		out := make([][]rat.Rat, len(rows))
		for i, row := range rows {
			out[i] = transposeEntries(n0, row)
		}
		return out
	}

	var out []*Algorithm
	perms := [][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, p := range perms {
		for mask := 0; mask < 8; mask++ {
			if p == [3]int{0, 1, 2} && mask == 0 {
				continue // identity
			}
			cand := &Algorithm{
				Name: alg.Name + "-dual-" + names[p[0]] + names[p[1]] + names[p[2]],
				N0:   n0,
				U:    maybeT(sources[p[0]], mask&1 != 0),
				V:    maybeT(sources[p[1]], mask&2 != 0),
				W:    rowsAsW(a, maybeT(sources[p[2]], mask&4 != 0)),
			}
			if cand.Validate() == nil {
				out = append(out, cand)
			}
		}
	}
	return dedupeAlgorithms(out)
}

// dedupeAlgorithms removes coefficient-identical algorithms.
func dedupeAlgorithms(algs []*Algorithm) []*Algorithm {
	seen := map[string]bool{}
	var out []*Algorithm
	for _, alg := range algs {
		key := ""
		for t := 0; t < alg.B(); t++ {
			key += rowKey(alg.U[t]) + "|" + rowKey(alg.V[t]) + ";"
		}
		for o := 0; o < alg.A(); o++ {
			key += rowKey(alg.W[o]) + ";"
		}
		if !seen[key] {
			seen[key] = true
			out = append(out, alg)
		}
	}
	return out
}
