package bilinear

// JSON serialization of algorithms, so catalogs can be exported,
// external algorithms imported, and reproduction artifacts exchanged.
// Coefficients serialize as exact strings ("1", "-1/2") — no float
// round-trip can corrupt an algorithm, and UnmarshalAlgorithm verifies
// the Brent equations before returning, so a deserialized Algorithm is
// always a proven-correct one.

import (
	"encoding/json"
	"fmt"

	"pathrouting/internal/rat"
)

// algorithmJSON is the wire form.
type algorithmJSON struct {
	Name string     `json:"name"`
	N0   int        `json:"n0"`
	U    [][]string `json:"u"`
	V    [][]string `json:"v"`
	W    [][]string `json:"w"`
}

func rowsToStrings(rows [][]rat.Rat) [][]string {
	out := make([][]string, len(rows))
	for i, row := range rows {
		out[i] = make([]string, len(row))
		for j, c := range row {
			out[i][j] = c.String()
		}
	}
	return out
}

func rowsFromStrings(rows [][]string) ([][]rat.Rat, error) {
	out := make([][]rat.Rat, len(rows))
	for i, row := range rows {
		out[i] = make([]rat.Rat, len(row))
		for j, s := range row {
			c, err := rat.Parse(s)
			if err != nil {
				return nil, fmt.Errorf("bilinear: row %d entry %d: %w", i, j, err)
			}
			out[i][j] = c
		}
	}
	return out, nil
}

// MarshalAlgorithm serializes the algorithm to JSON.
func MarshalAlgorithm(alg *Algorithm) ([]byte, error) {
	return json.MarshalIndent(algorithmJSON{
		Name: alg.Name,
		N0:   alg.N0,
		U:    rowsToStrings(alg.U),
		V:    rowsToStrings(alg.V),
		W:    rowsToStrings(alg.W),
	}, "", "  ")
}

// UnmarshalAlgorithm parses and *verifies* an algorithm from JSON: the
// returned algorithm has passed the exact Brent-equation check.
func UnmarshalAlgorithm(data []byte) (*Algorithm, error) {
	var aj algorithmJSON
	if err := json.Unmarshal(data, &aj); err != nil {
		return nil, fmt.Errorf("bilinear: %w", err)
	}
	u, err := rowsFromStrings(aj.U)
	if err != nil {
		return nil, err
	}
	v, err := rowsFromStrings(aj.V)
	if err != nil {
		return nil, err
	}
	w, err := rowsFromStrings(aj.W)
	if err != nil {
		return nil, err
	}
	alg := &Algorithm{Name: aj.Name, N0: aj.N0, U: u, V: v, W: w}
	if err := alg.Validate(); err != nil {
		return nil, fmt.Errorf("bilinear: deserialized algorithm invalid: %w", err)
	}
	return alg, nil
}
