package bilinear

import (
	"fmt"

	"pathrouting/internal/rat"
)

// LinearSolve returns an X with A·X = B, where A is m×n and B is m×k,
// using exact Gaussian elimination over the rationals. Free variables
// are set to zero. It returns an error if the system is inconsistent.
func LinearSolve(a [][]rat.Rat, b [][]rat.Rat) ([][]rat.Rat, error) {
	m := len(a)
	if m == 0 {
		return nil, fmt.Errorf("bilinear: LinearSolve: empty system")
	}
	n := len(a[0])
	if len(b) != m {
		return nil, fmt.Errorf("bilinear: LinearSolve: %d rows in A but %d in B", m, len(b))
	}
	k := len(b[0])

	// Build augmented working copy [A | B].
	w := make([][]rat.Rat, m)
	for i := range w {
		if len(a[i]) != n || len(b[i]) != k {
			return nil, fmt.Errorf("bilinear: LinearSolve: ragged input at row %d", i)
		}
		w[i] = make([]rat.Rat, n+k)
		copy(w[i], a[i])
		copy(w[i][n:], b[i])
	}

	// Forward elimination with partial pivoting (by nonzero; magnitude
	// is irrelevant in exact arithmetic).
	pivotCol := make([]int, 0, min(m, n))
	row := 0
	for col := 0; col < n && row < m; col++ {
		pr := -1
		for r := row; r < m; r++ {
			if !w[r][col].IsZero() {
				pr = r
				break
			}
		}
		if pr < 0 {
			continue
		}
		w[row], w[pr] = w[pr], w[row]
		inv := w[row][col].Inv()
		for c := col; c < n+k; c++ {
			w[row][c] = w[row][c].Mul(inv)
		}
		for r := 0; r < m; r++ {
			if r == row || w[r][col].IsZero() {
				continue
			}
			f := w[r][col]
			for c := col; c < n+k; c++ {
				w[r][c] = w[r][c].Sub(f.Mul(w[row][c]))
			}
		}
		pivotCol = append(pivotCol, col)
		row++
	}

	// Consistency: rows of zeros in A-part must have zero B-part.
	for r := row; r < m; r++ {
		for c := n; c < n+k; c++ {
			if !w[r][c].IsZero() {
				return nil, fmt.Errorf("bilinear: LinearSolve: inconsistent system (row %d)", r)
			}
		}
	}

	// Read off the solution: pivot variables take the reduced RHS, free
	// variables are zero.
	x := make([][]rat.Rat, n)
	for i := range x {
		x[i] = make([]rat.Rat, k)
	}
	for r, col := range pivotCol {
		for c := 0; c < k; c++ {
			x[col][c] = w[r][n+c]
		}
	}
	return x, nil
}

// SolveDecoder computes decoding coefficients W for the given encodings
// (U, V) of an n₀×n₀ matrix multiplication algorithm, i.e. a W such that
// the Brent equations hold, or an error if the b products do not span the
// required bilinear forms. This turns any valid set of products into a
// complete verified algorithm, and is also the computational content of
// the paper's Lemma 6 discussion: correctness of output c_o pins down
// a full set of product coefficients.
func SolveDecoder(n0 int, u, v [][]rat.Rat) ([][]rat.Rat, error) {
	aDim := n0 * n0
	b := len(u)
	if len(v) != b {
		return nil, fmt.Errorf("bilinear: SolveDecoder: len(U) = %d, len(V) = %d", b, len(v))
	}
	// System rows: one per (e, f) pair of A-entry × B-entry.
	// M[(e,f)][t] = U[t][e]·V[t][f];  RHS column per output o.
	rows := aDim * aDim
	m := make([][]rat.Rat, rows)
	rhs := make([][]rat.Rat, rows)
	for e := 0; e < aDim; e++ {
		re, ce := e/n0, e%n0
		for f := 0; f < aDim; f++ {
			rf, cf := f/n0, f%n0
			ri := e*aDim + f
			m[ri] = make([]rat.Rat, b)
			for t := 0; t < b; t++ {
				if !u[t][e].IsZero() && !v[t][f].IsZero() {
					m[ri][t] = u[t][e].Mul(v[t][f])
				}
			}
			rhs[ri] = make([]rat.Rat, aDim)
			if ce == rf {
				// a_{re,ce}·b_{rf,cf} contributes to c_{re,cf}.
				rhs[ri][re*n0+cf] = rat.One
			}
		}
	}
	xt, err := LinearSolve(m, rhs)
	if err != nil {
		return nil, fmt.Errorf("bilinear: SolveDecoder: products do not span matrix multiplication: %w", err)
	}
	// xt is b × a (solution per output in columns); W wants a × b.
	w := make([][]rat.Rat, aDim)
	for o := 0; o < aDim; o++ {
		w[o] = make([]rat.Rat, b)
		for t := 0; t < b; t++ {
			w[o][t] = xt[t][o]
		}
	}
	return w, nil
}
