package bilinear

// This file makes Lemma 6 of the paper executable: the construction of
// the reduced computation graph G₁° (Figure 9) and the verification of
// Winograd's bound on it.
//
// For a fixed input row i, remove from the base graph all products
// outside a chosen set `keep`, restrict attention to the inputs a_ij′
// and outputs c_ij of row i, and treat the entries of B as coefficients
// (elements of F[b₁₁, …, b_{n₀n₀}]). G₁° then computes, for every pair
// (j, j′), some coefficient x_{j′j} ∈ F[b…] of a_{ij′} in c_{ij}; the
// coefficient is *correct* for matrix multiplication when x_{j′j} =
// b_{j′j}. Lemma 6 states that if d coefficients are correct then G₁°
// uses at least d multiplications: n_f ≤ |keep|. Winograd's theorem
// (matrix-vector multiplication needs n₀² multiplications) makes the
// bound unconditional, and the paper's Lemma 5 follows from it.

import (
	"fmt"
	"math/rand"

	"pathrouting/internal/rat"
)

// BVector is an element of the coefficient module F[b₁₁..b_{n₀n₀}]
// restricted to linear forms: Coeffs[f] multiplies entry b_f.
type BVector []rat.Rat

// IsEntry reports whether the vector is exactly the single entry b_f
// with coefficient 1.
func (v BVector) IsEntry(f int) bool {
	for g, c := range v {
		if g == f {
			if !c.IsOne() {
				return false
			}
		} else if !c.IsZero() {
			return false
		}
	}
	return true
}

// G1Circle is the reduced computation graph of Lemma 5/6 for one row.
type G1Circle struct {
	// Alg is the base algorithm the reduction started from.
	Alg *Algorithm
	// Row is the fixed row index i of A and C.
	Row int
	// Keep lists the products retained in G₁°.
	Keep []int
	// X[j′·n₀+j] is the computed coefficient x_{j′j} of a_{ij′} in
	// c_{ij}, a linear form in the entries of B.
	X []BVector
}

// NewG1Circle builds G₁° for the given row keeping only the listed
// products. The coefficient of a_{ij′} in c_{ij} computed by the
// reduced graph is Σ_{t∈keep} W[c_ij][t] · U[t][a_ij′] · (V[t]·b),
// exactly as in the paper's proof of Lemma 5.
func NewG1Circle(alg *Algorithm, row int, keep []int) (*G1Circle, error) {
	n0, a := alg.N0, alg.A()
	if row < 0 || row >= n0 {
		return nil, fmt.Errorf("bilinear: G1Circle row %d out of range [0,%d)", row, n0)
	}
	seen := map[int]bool{}
	for _, t := range keep {
		if t < 0 || t >= alg.B() {
			return nil, fmt.Errorf("bilinear: G1Circle product %d out of range", t)
		}
		if seen[t] {
			return nil, fmt.Errorf("bilinear: G1Circle duplicate product %d", t)
		}
		seen[t] = true
	}
	gc := &G1Circle{Alg: alg, Row: row, Keep: append([]int(nil), keep...)}
	gc.X = make([]BVector, n0*n0)
	for jp := 0; jp < n0; jp++ {
		e := alg.Index(row, jp) // a_{i,j′}
		for j := 0; j < n0; j++ {
			o := alg.Index(row, j) // c_{i,j}
			x := make(BVector, a)
			for _, t := range keep {
				w := alg.W[o][t]
				u := alg.U[t][e]
				if w.IsZero() || u.IsZero() {
					continue
				}
				wu := w.Mul(u)
				for f := 0; f < a; f++ {
					if !alg.V[t][f].IsZero() {
						x[f] = x[f].Add(wu.Mul(alg.V[t][f]))
					}
				}
			}
			gc.X[jp*n0+j] = x
		}
	}
	return gc, nil
}

// CorrectCoefficients returns n_f: the number of pairs (j, j′) whose
// computed coefficient equals the matrix-multiplication value b_{j′j}.
func (gc *G1Circle) CorrectCoefficients() int {
	n0 := gc.Alg.N0
	nf := 0
	for jp := 0; jp < n0; jp++ {
		for j := 0; j < n0; j++ {
			if gc.X[jp*n0+j].IsEntry(gc.Alg.Index(jp, j)) {
				nf++
			}
		}
	}
	return nf
}

// CheckLemma6 verifies Winograd's bound on this instance: the number of
// correct coefficients cannot exceed the number of retained products
// (otherwise completing the remaining n₀²−n_f coefficients with one
// multiplication each would yield a matrix-vector algorithm with fewer
// than n₀² multiplications). Returns an error if the bound fails.
func (gc *G1Circle) CheckLemma6() error {
	nf := gc.CorrectCoefficients()
	if nf > len(gc.Keep) {
		return fmt.Errorf(
			"bilinear: Lemma 6 violated on %s row %d: %d correct coefficients with only %d products (Winograd's bound broken)",
			gc.Alg.Name, gc.Row, nf, len(gc.Keep))
	}
	return nil
}

// VerifyLemma6Exhaustive checks Lemma 6 over every subset of products
// of the base graph and every row. Exponential in b; intended for
// b ≤ ~12 (use VerifyLemma6Random for larger bases).
func VerifyLemma6Exhaustive(alg *Algorithm) error {
	if alg.B() > 14 {
		return fmt.Errorf("bilinear: exhaustive Lemma 6 check infeasible for b = %d", alg.B())
	}
	for row := 0; row < alg.N0; row++ {
		for mask := 0; mask < 1<<uint(alg.B()); mask++ {
			var keep []int
			for t := 0; t < alg.B(); t++ {
				if mask&(1<<uint(t)) != 0 {
					keep = append(keep, t)
				}
			}
			gc, err := NewG1Circle(alg, row, keep)
			if err != nil {
				return err
			}
			if err := gc.CheckLemma6(); err != nil {
				return err
			}
		}
	}
	return nil
}

// VerifyLemma6Random checks Lemma 6 on nTrials random product subsets
// per row.
func VerifyLemma6Random(alg *Algorithm, rng *rand.Rand, nTrials int) error {
	for row := 0; row < alg.N0; row++ {
		for trial := 0; trial < nTrials; trial++ {
			var keep []int
			for t := 0; t < alg.B(); t++ {
				if rng.Intn(2) == 0 {
					keep = append(keep, t)
				}
			}
			gc, err := NewG1Circle(alg, row, keep)
			if err != nil {
				return err
			}
			if err := gc.CheckLemma6(); err != nil {
				return err
			}
		}
	}
	return nil
}

// RepairCount returns the number of multiplications of the repaired
// full matrix-vector algorithm of the Lemma 5 proof: |keep| products of
// G₁° plus one fixing multiplication per incorrect coefficient. By
// Winograd's theorem this is always ≥ n₀².
func (gc *G1Circle) RepairCount() int {
	return len(gc.Keep) + gc.Alg.A() - gc.CorrectCoefficients()
}

// intOne is a tiny helper for tests.
func intOne() rat.Rat { return rat.One }
