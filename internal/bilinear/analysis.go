package bilinear

// This file analyzes the structure of a base graph G₁ in the terms the
// paper's hypotheses use: connectivity of the encoding/decoding graphs,
// copying and multiple copying, and reuse of nontrivial linear
// combinations across multiplications.

import (
	"sort"

	"pathrouting/internal/rat"
)

// Side selects one of the two operand encodings.
type Side int

// The two operand sides.
const (
	SideA Side = iota
	SideB
)

func (s Side) String() string {
	if s == SideA {
		return "A"
	}
	return "B"
}

// Structure summarizes the base-graph properties the paper's lemmas
// depend on.
type Structure struct {
	// EncComponents[side] is the number of connected components of the
	// bipartite encoding graph (inputs ∪ products, edges at nonzeros).
	EncComponents [2]int
	// DecComponents is the number of connected components of the
	// bipartite decoding graph (products ∪ outputs).
	DecComponents int
	// TrivialCombo[side][t] is the input entry e when product t's
	// combination on that side is the bare entry e with coefficient 1
	// (a *copy* in the paper's sense), or -1 otherwise.
	TrivialCombo [2][]int
	// CopyFanout[side][e] counts the products whose combination on
	// that side is a bare copy of entry e. A value ≥ 2 is *multiple
	// copying*.
	CopyFanout [2][]int
	// ReusedNontrivial[side] counts nontrivial combinations used by
	// more than one product (violations of the paper's standing
	// assumption "every nontrivial linear combination is used in only
	// one multiplication").
	ReusedNontrivial [2]int
	// NontrivialCombos[side] counts products whose combination on that
	// side is nontrivial. Lemma 1's hypothesis is that not *every*
	// vertex of an encoding graph is a duplicated (copy) vertex, i.e.
	// NontrivialCombos > 0 for each side in any fast algorithm.
	NontrivialCombos [2]int
	// DecodingHasCopy reports whether some output is a bare copy of a
	// product (coefficient-1 singleton row of W). Lemma 2 proves this
	// cannot happen in a correct algorithm.
	DecodingHasCopy bool
}

// MultipleCopying reports whether some input entry on the side is copied
// bare into two or more products.
func (st *Structure) MultipleCopying(s Side) bool {
	for _, c := range st.CopyFanout[s] {
		if c >= 2 {
			return true
		}
	}
	return false
}

// SatisfiesOneMultiplicationPerCombination reports whether every
// nontrivial linear combination feeds exactly one multiplication — the
// standing assumption of the paper's main theorem.
func (st *Structure) SatisfiesOneMultiplicationPerCombination() bool {
	return st.ReusedNontrivial[SideA] == 0 && st.ReusedNontrivial[SideB] == 0
}

// Analyze computes the Structure of the algorithm's base graph.
func Analyze(alg *Algorithm) *Structure {
	st := &Structure{}
	a, b := alg.A(), alg.B()

	for _, s := range []Side{SideA, SideB} {
		m := alg.U
		if s == SideB {
			m = alg.V
		}
		st.TrivialCombo[s] = make([]int, b)
		st.CopyFanout[s] = make([]int, a)
		for t := 0; t < b; t++ {
			st.TrivialCombo[s][t] = -1
			nnz, last := 0, -1
			for e := 0; e < a; e++ {
				if !m[t][e].IsZero() {
					nnz++
					last = e
				}
			}
			if nnz == 1 && m[t][last].IsOne() {
				st.TrivialCombo[s][t] = last
				st.CopyFanout[s][last]++
			} else if nnz > 0 {
				st.NontrivialCombos[s]++
			}
		}
		st.ReusedNontrivial[s] = countReusedNontrivial(m, st.TrivialCombo[s])
		st.EncComponents[s] = bipartiteComponents(a, b, func(e, t int) bool { return !m[t][e].IsZero() })
	}

	st.DecComponents = bipartiteComponents(b, a, func(t, o int) bool { return !alg.W[o][t].IsZero() })

	for o := 0; o < a; o++ {
		nnz, last := 0, -1
		for t := 0; t < b; t++ {
			if !alg.W[o][t].IsZero() {
				nnz++
				last = t
			}
		}
		if nnz == 1 && alg.W[o][last].IsOne() {
			st.DecodingHasCopy = true
		}
	}
	return st
}

// countReusedNontrivial counts distinct nontrivial rows of m that occur
// in more than one product (each such row is one linear-combination
// value used by several multiplications).
func countReusedNontrivial(m [][]rat.Rat, trivial []int) int {
	seen := map[string]int{}
	for t := range m {
		if trivial[t] >= 0 {
			continue
		}
		seen[rowKey(m[t])]++
	}
	reused := 0
	for _, c := range seen {
		if c >= 2 {
			reused++
		}
	}
	return reused
}

func rowKey(row []rat.Rat) string {
	buf := make([]byte, 0, 4*len(row))
	for _, c := range row {
		buf = append(buf, c.String()...)
		buf = append(buf, ',')
	}
	return string(buf)
}

// bipartiteComponents returns the number of connected components of the
// bipartite graph with nLeft + nRight vertices and an edge (l, r)
// whenever adj(l, r) is true. Isolated vertices each count as one
// component.
func bipartiteComponents(nLeft, nRight int, adj func(l, r int) bool) int {
	parent := make([]int, nLeft+nRight)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(x, y int) {
		rx, ry := find(x), find(y)
		if rx != ry {
			parent[rx] = ry
		}
	}
	for l := 0; l < nLeft; l++ {
		for r := 0; r < nRight; r++ {
			if adj(l, r) {
				union(l, nLeft+r)
			}
		}
	}
	roots := map[int]bool{}
	for i := range parent {
		roots[find(i)] = true
	}
	return len(roots)
}

// ProductsUsingEntry returns, for each input entry of the side, the
// sorted list of products whose combination involves that entry.
func (alg *Algorithm) ProductsUsingEntry(s Side) [][]int {
	m := alg.U
	if s == SideB {
		m = alg.V
	}
	out := make([][]int, alg.A())
	for t := range m {
		for e, c := range m[t] {
			if !c.IsZero() {
				out[e] = append(out[e], t)
			}
		}
	}
	for e := range out {
		sort.Ints(out[e])
	}
	return out
}
