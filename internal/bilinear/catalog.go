package bilinear

import "pathrouting/internal/rat"

// Classical returns the classical (definition-based) algorithm for
// n₀×n₀ multiplication: b = n₀³ products a_ik·b_kj. Its exponent is
// ω₀ = 3, so it is *not* fast and serves as the baseline excluded by the
// hypotheses of the paper's Theorem 1. Its base graph is also the
// canonical example of disconnected encoding/decoding graphs and of
// multiple copying: every left operand is a bare entry a_ik copied into
// n₀ different products.
func Classical(n0 int) *Algorithm {
	a := n0 * n0
	b := n0 * n0 * n0
	alg := &Algorithm{
		Name: "classical" + string(rune('0'+n0)),
		N0:   n0,
		U:    make([][]rat.Rat, b),
		V:    make([][]rat.Rat, b),
		W:    make([][]rat.Rat, a),
	}
	for o := 0; o < a; o++ {
		alg.W[o] = make([]rat.Rat, b)
	}
	t := 0
	for i := 0; i < n0; i++ {
		for j := 0; j < n0; j++ {
			for k := 0; k < n0; k++ {
				u := make([]rat.Rat, a)
				v := make([]rat.Rat, a)
				u[i*n0+k] = rat.One
				v[k*n0+j] = rat.One
				alg.U[t] = u
				alg.V[t] = v
				alg.W[i*n0+j][t] = rat.One
				t++
			}
		}
	}
	return alg
}

// Strassen returns Strassen's original 7-multiplication algorithm for
// 2×2 matrices (ω₀ = log₂7 ≈ 2.807), the paper's running example.
//
// Entry order: e = 0..3 ↦ a11, a12, a21, a22 (row-major).
func Strassen() *Algorithm {
	return &Algorithm{
		Name: "strassen",
		N0:   2,
		U: [][]rat.Rat{
			ints(1, 0, 0, 1),   // M1: A11+A22
			ints(0, 0, 1, 1),   // M2: A21+A22
			ints(1, 0, 0, 0),   // M3: A11
			ints(0, 0, 0, 1),   // M4: A22
			ints(1, 1, 0, 0),   // M5: A11+A12
			ints(-1, 0, 1, 0),  // M6: A21-A11
			ints(0, 1, 0, -1)}, // M7: A12-A22
		V: [][]rat.Rat{
			ints(1, 0, 0, 1),  // M1: B11+B22
			ints(1, 0, 0, 0),  // M2: B11
			ints(0, 1, 0, -1), // M3: B12-B22
			ints(-1, 0, 1, 0), // M4: B21-B11
			ints(0, 0, 0, 1),  // M5: B22
			ints(1, 1, 0, 0),  // M6: B11+B12
			ints(0, 0, 1, 1)}, // M7: B21+B22
		W: [][]rat.Rat{
			ints(1, 0, 0, 1, -1, 0, 1), // C11 = M1+M4-M5+M7
			ints(0, 0, 1, 0, 1, 0, 0),  // C12 = M3+M5
			ints(0, 1, 0, 1, 0, 0, 0),  // C21 = M2+M4
			ints(1, -1, 1, 0, 0, 1, 0), // C22 = M1-M2+M3+M6
		},
	}
}

// Winograd returns Winograd's 7-multiplication, 15-addition variant of
// Strassen's algorithm. Same exponent as Strassen but a structurally
// different base graph (different encoding/decoding nonzero patterns),
// useful for checking that the routing machinery does not silently
// depend on Strassen's particular wiring.
func Winograd() *Algorithm {
	return &Algorithm{
		Name: "winograd",
		N0:   2,
		U: [][]rat.Rat{
			ints(1, 0, 0, 0),   // P1: A11
			ints(0, 1, 0, 0),   // P2: A12
			ints(1, 1, -1, -1), // P3: A11+A12-A21-A22
			ints(0, 0, 0, 1),   // P4: A22
			ints(0, 0, 1, 1),   // P5: A21+A22
			ints(-1, 0, 1, 1),  // P6: A21+A22-A11
			ints(1, 0, -1, 0)}, // P7: A11-A21
		V: [][]rat.Rat{
			ints(1, 0, 0, 0),   // P1: B11
			ints(0, 0, 1, 0),   // P2: B21
			ints(0, 0, 0, 1),   // P3: B22
			ints(1, -1, -1, 1), // P4: B11-B12-B21+B22
			ints(-1, 1, 0, 0),  // P5: B12-B11
			ints(1, -1, 0, 1),  // P6: B11-B12+B22
			ints(0, -1, 0, 1)}, // P7: B22-B12
		W: [][]rat.Rat{
			ints(1, 1, 0, 0, 0, 0, 0),  // C11 = P1+P2
			ints(1, 0, 1, 0, 1, 1, 0),  // C12 = P1+P3+P5+P6
			ints(1, 0, 0, -1, 0, 1, 1), // C21 = P1-P4+P6+P7
			ints(1, 0, 0, 0, 1, 1, 1),  // C22 = P1+P5+P6+P7
		},
	}
}

// LadermanProducts returns the 23 product encodings (U, V) of a
// Laderman-style 23-multiplication 3×3 algorithm (after Laderman 1976;
// the right-operand rows of m3 and m11 were recovered by exact linear
// solving so that the 23 rank-one tensors provably span 3×3 matrix
// multiplication — see cmd/ladsearch). The decoding coefficients are
// derived by SolveDecoder, which both recovers W and proves correctness.
//
// Entry order: e = 3i+j ↦ a_{i+1,j+1}, row-major (a11 a12 a13 a21 ...).
func LadermanProducts() (u, v [][]rat.Rat) {
	u = [][]rat.Rat{
		ints(1, 1, 1, -1, -1, 0, 0, -1, -1), // m1:  a11+a12+a13-a21-a22-a32-a33
		ints(1, 0, 0, -1, 0, 0, 0, 0, 0),    // m2:  a11-a21
		ints(0, 0, 0, 0, 1, 0, 0, 0, 0),     // m3:  a22
		ints(-1, 0, 0, 1, 1, 0, 0, 0, 0),    // m4:  -a11+a21+a22
		ints(0, 0, 0, 1, 1, 0, 0, 0, 0),     // m5:  a21+a22
		ints(1, 0, 0, 0, 0, 0, 0, 0, 0),     // m6:  a11
		ints(-1, 0, 0, 0, 0, 0, 1, 1, 0),    // m7:  -a11+a31+a32
		ints(-1, 0, 0, 0, 0, 0, 1, 0, 0),    // m8:  -a11+a31
		ints(0, 0, 0, 0, 0, 0, 1, 1, 0),     // m9:  a31+a32
		ints(1, 1, 1, 0, -1, -1, -1, -1, 0), // m10: a11+a12+a13-a22-a23-a31-a32
		ints(0, 0, 0, 0, 0, 0, 0, 1, 0),     // m11: a32
		ints(0, 0, -1, 0, 0, 0, 0, 1, 1),    // m12: -a13+a32+a33
		ints(0, 0, 1, 0, 0, 0, 0, 0, -1),    // m13: a13-a33
		ints(0, 0, 1, 0, 0, 0, 0, 0, 0),     // m14: a13
		ints(0, 0, 0, 0, 0, 0, 0, 1, 1),     // m15: a32+a33
		ints(0, 0, -1, 0, 1, 1, 0, 0, 0),    // m16: -a13+a22+a23
		ints(0, 0, 1, 0, 0, -1, 0, 0, 0),    // m17: a13-a23
		ints(0, 0, 0, 0, 1, 1, 0, 0, 0),     // m18: a22+a23
		ints(0, 1, 0, 0, 0, 0, 0, 0, 0),     // m19: a12
		ints(0, 0, 0, 0, 0, 1, 0, 0, 0),     // m20: a23
		ints(0, 0, 0, 1, 0, 0, 0, 0, 0),     // m21: a21
		ints(0, 0, 0, 0, 0, 0, 1, 0, 0),     // m22: a31
		ints(0, 0, 0, 0, 0, 0, 0, 0, 1),     // m23: a33
	}
	v = [][]rat.Rat{
		ints(0, 0, 0, 0, 1, 0, 0, 0, 0),    // m1:  b22
		ints(0, -1, 0, 0, 1, 0, 0, 0, 0),   // m2:  -b12+b22
		ints(1, -1, 0, -1, 1, 1, 1, 0, -1), // m3:  b11-b12-b21+b22+b23+b31-b33
		ints(1, -1, 0, 0, 1, 0, 0, 0, 0),   // m4:  b11-b12+b22
		ints(-1, 1, 0, 0, 0, 0, 0, 0, 0),   // m5:  -b11+b12
		ints(1, 0, 0, 0, 0, 0, 0, 0, 0),    // m6:  b11
		ints(1, 0, -1, 0, 0, 1, 0, 0, 0),   // m7:  b11-b13+b23
		ints(0, 0, 1, 0, 0, -1, 0, 0, 0),   // m8:  b13-b23
		ints(-1, 0, 1, 0, 0, 0, 0, 0, 0),   // m9:  -b11+b13
		ints(0, 0, 0, 0, 0, 1, 0, 0, 0),    // m10: b23
		ints(1, 0, -1, -1, 1, 1, 1, -1, 0), // m11: b11-b13-b21+b22+b23+b31-b32
		ints(0, 0, 0, 0, 1, 0, 1, -1, 0),   // m12: b22+b31-b32
		ints(0, 0, 0, 0, 1, 0, 0, -1, 0),   // m13: b22-b32
		ints(0, 0, 0, 0, 0, 0, 1, 0, 0),    // m14: b31
		ints(0, 0, 0, 0, 0, 0, -1, 1, 0),   // m15: -b31+b32
		ints(0, 0, 0, 0, 0, 1, 1, 0, -1),   // m16: b23+b31-b33
		ints(0, 0, 0, 0, 0, 1, 0, 0, -1),   // m17: b23-b33
		ints(0, 0, 0, 0, 0, 0, -1, 0, 1),   // m18: -b31+b33
		ints(0, 0, 0, 1, 0, 0, 0, 0, 0),    // m19: b21
		ints(0, 0, 0, 0, 0, 0, 0, 1, 0),    // m20: b32
		ints(0, 0, 1, 0, 0, 0, 0, 0, 0),    // m21: b13
		ints(0, 1, 0, 0, 0, 0, 0, 0, 0),    // m22: b12
		ints(0, 0, 0, 0, 0, 0, 0, 0, 1),    // m23: b33
	}
	return u, v
}

// Laderman returns Laderman's 23-multiplication algorithm for 3×3
// matrices (ω₀ = log₃23 ≈ 2.854), the classical fast square algorithm
// with n₀ ≠ 2. The decoding matrix W is derived (and thereby proved
// correct) by exact linear solving from the published products.
func Laderman() (*Algorithm, error) {
	u, v := LadermanProducts()
	w, err := SolveDecoder(3, u, v)
	if err != nil {
		return nil, err
	}
	alg := &Algorithm{Name: "laderman", N0: 3, U: u, V: v, W: w}
	if err := alg.Validate(); err != nil {
		return nil, err
	}
	return alg, nil
}

// StrassenSquared returns Strassen⊗Strassen: a 4×4 base algorithm with
// 49 products and the same exponent log₂7. Used to check that routing
// bounds hold for larger uniform base graphs.
func StrassenSquared() *Algorithm {
	alg := Tensor(Strassen(), Strassen())
	alg.Name = "strassen2"
	return alg
}

// DisconnectedFast returns Strassen⊗Classical(2): a fast (b = 56 < 64,
// ω₀ = log₄56 ≈ 2.904) 4×4 base algorithm whose decoding base graph is
// disconnected and whose encoding graphs contain multiple copying.
// This is exactly the class of Strassen-like algorithms for which the
// edge-expansion technique of Ballard–Demmel–Holtz–Schwartz fails and
// the paper's path-routing technique was introduced.
func DisconnectedFast() *Algorithm {
	alg := Tensor(Strassen(), Classical(2))
	alg.Name = "disconnected56"
	return alg
}

// All returns every catalog algorithm, constructing Laderman on the fly.
// Algorithms that fail construction are skipped (Laderman cannot fail:
// its construction is covered by tests).
func All() []*Algorithm {
	algs := []*Algorithm{
		Classical(2),
		Classical(3),
		Strassen(),
		Winograd(),
		StrassenSquared(),
		DisconnectedFast(),
	}
	if lad, err := Laderman(); err == nil {
		algs = append(algs, lad)
	}
	return algs
}

// Fast returns the catalog algorithms with ω₀ < 3 (those covered by the
// paper's Theorem 1).
func Fast() []*Algorithm {
	var out []*Algorithm
	for _, alg := range All() {
		if alg.IsFast() {
			out = append(out, alg)
		}
	}
	return out
}
