package bilinear

// Random verified algorithms, for property-based testing of the entire
// pipeline. Uniformly random rank-one tensors essentially never span
// the matrix-multiplication tensor, so the generator instead samples
// from the tensor's symmetry group: writing A = X·Â·Y⁻¹, B = Y·B̂·Z⁻¹
// gives C = X·(Â·B̂)·Z⁻¹, so conjugating a known algorithm by random
// invertible X, Y, Z (plus a random product permutation and random
// per-product scalings λ_t·u_t, μ_t·v_t, w_t/(λ_tμ_t)) yields fresh
// *verified* Strassen-like algorithms with the same b but arbitrary
// coefficient structure — the de Groote equivalence class. Every claim
// the repository verifies for the catalog can then be re-checked on
// machine-generated instances.

import (
	"fmt"
	"math/rand"

	"pathrouting/internal/rat"
)

// RandomAlgorithm returns a verified algorithm sampled from the
// symmetry orbit of base (pass nil for Strassen's algorithm). Entries
// of the conjugating matrices are small integers, so coefficients stay
// exact rationals of modest height.
func RandomAlgorithm(rng *rand.Rand, base *Algorithm) (*Algorithm, error) {
	if base == nil {
		base = Strassen()
	}
	n0 := base.N0
	x, xi, err := randomInvertible(rng, n0)
	if err != nil {
		return nil, err
	}
	y, yi, err := randomInvertible(rng, n0)
	if err != nil {
		return nil, err
	}
	z, zi, err := randomInvertible(rng, n0)
	if err != nil {
		return nil, err
	}
	a := base.A()
	b := base.B()

	// Entry-space maps. Row-major entry e = i·n₀ + j.
	// Â = X⁻¹AY:  coefficient of A_{kl} in Â_{ij} is X⁻¹[i][k]·Y[l][j].
	phiA := entryMap(n0, xi, y)
	// B̂ = Y⁻¹BZ.
	phiB := entryMap(n0, yi, z)
	// C = X·Ĉ·Z⁻¹: coefficient of Ĉ_{kl} in C_{ij} is X[i][k]·Z⁻¹[l][j].
	psiC := entryMap(n0, x, zi)

	perm := rng.Perm(b)
	alg := &Algorithm{
		Name: fmt.Sprintf("orbit-of-%s", base.Name),
		N0:   n0,
		U:    make([][]rat.Rat, b),
		V:    make([][]rat.Rat, b),
		W:    make([][]rat.Rat, a),
	}
	lambda := make([]rat.Rat, b)
	mu := make([]rat.Rat, b)
	for t := 0; t < b; t++ {
		lambda[t] = rat.Int(int64(rng.Intn(3)) + 1)
		mu[t] = rat.Int(int64(rng.Intn(3)) + 1)
		if rng.Intn(2) == 0 {
			lambda[t] = lambda[t].Neg()
		}
	}
	for t := 0; t < b; t++ {
		src := perm[t]
		alg.U[t] = scaleRow(rowTimes(base.U[src], phiA), lambda[src])
		alg.V[t] = scaleRow(rowTimes(base.V[src], phiB), mu[src])
	}
	for o := 0; o < a; o++ {
		// W'[o] = Σ_{o'} psiC[o][o'] · W[o'], then permute and unscale.
		row := make([]rat.Rat, b)
		for op := 0; op < a; op++ {
			c := psiC[o][op]
			if c.IsZero() {
				continue
			}
			for t := 0; t < b; t++ {
				if !base.W[op][t].IsZero() {
					row[t] = row[t].Add(c.Mul(base.W[op][t]))
				}
			}
		}
		out := make([]rat.Rat, b)
		for t := 0; t < b; t++ {
			src := perm[t]
			out[t] = row[src].Div(lambda[src].Mul(mu[src]))
		}
		alg.W[o] = out
	}
	if err := alg.Validate(); err != nil {
		return nil, fmt.Errorf("bilinear: RandomAlgorithm produced invalid orbit element: %w", err)
	}
	return alg, nil
}

// entryMap builds the a×a matrix E with E[(i,j)][(k,l)] = P[i][k]·Q[l][j].
func entryMap(n0 int, p, q [][]rat.Rat) [][]rat.Rat {
	a := n0 * n0
	e := make([][]rat.Rat, a)
	for i := 0; i < n0; i++ {
		for j := 0; j < n0; j++ {
			row := make([]rat.Rat, a)
			for k := 0; k < n0; k++ {
				for l := 0; l < n0; l++ {
					row[k*n0+l] = p[i][k].Mul(q[l][j])
				}
			}
			e[i*n0+j] = row
		}
	}
	return e
}

// rowTimes returns row·m (vector-matrix product over Q).
func rowTimes(row []rat.Rat, m [][]rat.Rat) []rat.Rat {
	out := make([]rat.Rat, len(m[0]))
	for e, c := range row {
		if c.IsZero() {
			continue
		}
		for f, mc := range m[e] {
			if !mc.IsZero() {
				out[f] = out[f].Add(c.Mul(mc))
			}
		}
	}
	return out
}

func scaleRow(row []rat.Rat, s rat.Rat) []rat.Rat {
	out := make([]rat.Rat, len(row))
	for i, c := range row {
		if !c.IsZero() {
			out[i] = c.Mul(s)
		}
	}
	return out
}

// randomInvertible draws a random n₀×n₀ integer matrix with entries in
// [-2, 2] until it is invertible, returning the matrix and its exact
// inverse.
func randomInvertible(rng *rand.Rand, n0 int) (m, inv [][]rat.Rat, err error) {
	for try := 0; try < 200; try++ {
		m = make([][]rat.Rat, n0)
		for i := range m {
			m[i] = make([]rat.Rat, n0)
			for j := range m[i] {
				m[i][j] = rat.Int(int64(rng.Intn(5)) - 2)
			}
		}
		ident := make([][]rat.Rat, n0)
		for i := range ident {
			ident[i] = make([]rat.Rat, n0)
			ident[i][i] = rat.One
		}
		inv, err = LinearSolve(m, ident)
		if err != nil {
			continue
		}
		// LinearSolve zero-fills free variables on rank-deficient
		// systems; confirm the inverse by multiplication.
		if isIdentity(matMulRat(m, inv)) {
			return m, inv, nil
		}
	}
	return nil, nil, fmt.Errorf("bilinear: no invertible %d×%d draw in 200 tries", n0, n0)
}

func matMulRat(a, b [][]rat.Rat) [][]rat.Rat {
	n := len(a)
	c := make([][]rat.Rat, n)
	for i := range c {
		c[i] = make([]rat.Rat, n)
		for k := 0; k < n; k++ {
			if a[i][k].IsZero() {
				continue
			}
			for j := 0; j < n; j++ {
				if !b[k][j].IsZero() {
					c[i][j] = c[i][j].Add(a[i][k].Mul(b[k][j]))
				}
			}
		}
	}
	return c
}

func isIdentity(m [][]rat.Rat) bool {
	for i := range m {
		for j := range m[i] {
			if i == j && !m[i][j].IsOne() {
				return false
			}
			if i != j && !m[i][j].IsZero() {
				return false
			}
		}
	}
	return true
}
