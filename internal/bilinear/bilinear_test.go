package bilinear

import (
	"math/rand"
	"strings"
	"testing"

	"pathrouting/internal/rat"
)

func TestStrassenValidates(t *testing.T) {
	if err := Strassen().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWinogradValidates(t *testing.T) {
	if err := Winograd().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestClassicalValidates(t *testing.T) {
	for n0 := 1; n0 <= 4; n0++ {
		if err := Classical(n0).Validate(); err != nil {
			t.Errorf("classical n0=%d: %v", n0, err)
		}
	}
}

func TestLadermanConstructs(t *testing.T) {
	alg, err := Laderman()
	if err != nil {
		t.Fatal(err)
	}
	if alg.B() != 23 || alg.N0 != 3 {
		t.Fatalf("laderman shape: n0=%d b=%d", alg.N0, alg.B())
	}
	if err := alg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTensorValidates(t *testing.T) {
	if err := StrassenSquared().Validate(); err != nil {
		t.Errorf("strassen⊗strassen: %v", err)
	}
	if err := DisconnectedFast().Validate(); err != nil {
		t.Errorf("strassen⊗classical: %v", err)
	}
}

func TestTensorShape(t *testing.T) {
	alg := DisconnectedFast()
	if alg.N0 != 4 {
		t.Errorf("N0 = %d, want 4", alg.N0)
	}
	if alg.B() != 7*8 {
		t.Errorf("B = %d, want 56", alg.B())
	}
	if !alg.IsFast() {
		t.Error("56 < 64 so disconnected56 must be fast")
	}
}

func TestOmega0(t *testing.T) {
	cases := []struct {
		alg  *Algorithm
		want float64
	}{
		{Strassen(), 2.807354922057604}, // log2 7
		{Classical(2), 3},
		{Classical(3), 3},
		{StrassenSquared(), 2.807354922057604}, // log4 49 = log2 7
	}
	for _, c := range cases {
		if got := c.alg.Omega0(); got < c.want-1e-12 || got > c.want+1e-12 {
			t.Errorf("%s: omega0 = %v, want %v", c.alg.Name, got, c.want)
		}
	}
	lad, err := Laderman()
	if err != nil {
		t.Fatal(err)
	}
	if w := lad.Omega0(); w < 2.85 || w > 2.86 {
		t.Errorf("laderman omega0 = %v, want ~2.854", w)
	}
}

func TestIsFast(t *testing.T) {
	if Classical(2).IsFast() || Classical(3).IsFast() {
		t.Error("classical must not be fast")
	}
	for _, alg := range []*Algorithm{Strassen(), Winograd(), StrassenSquared(), DisconnectedFast()} {
		if !alg.IsFast() {
			t.Errorf("%s must be fast", alg.Name)
		}
	}
}

func TestRandomCheckAgreesWithValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, alg := range All() {
		if err := alg.RandomCheck(rng, 20); err != nil {
			t.Errorf("%s: %v", alg.Name, err)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	alg := Strassen()
	alg.W[0][0] = rat.Int(2) // corrupt one decoding coefficient
	if err := alg.Validate(); err == nil {
		t.Fatal("Validate accepted a corrupted Strassen")
	}
	alg = Strassen()
	alg.U[3][1] = rat.One // corrupt one encoding coefficient
	if err := alg.Validate(); err == nil {
		t.Fatal("Validate accepted a corrupted encoding")
	}
}

func TestValidateCatchesShapeErrors(t *testing.T) {
	alg := Strassen()
	alg.W = alg.W[:3]
	if err := alg.Validate(); err == nil {
		t.Fatal("short W accepted")
	}
	alg = Strassen()
	alg.V = alg.V[:6]
	if err := alg.Validate(); err == nil {
		t.Fatal("short V accepted")
	}
	alg = Strassen()
	alg.U[2] = alg.U[2][:2]
	if err := alg.Validate(); err == nil {
		t.Fatal("ragged U accepted")
	}
}

func TestIndexRowCol(t *testing.T) {
	alg := Classical(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			e := alg.Index(i, j)
			ri, rj := alg.RowCol(e)
			if ri != i || rj != j {
				t.Errorf("RowCol(Index(%d,%d)) = (%d,%d)", i, j, ri, rj)
			}
		}
	}
}

func TestSolveDecoderRecoversStrassenW(t *testing.T) {
	s := Strassen()
	w, err := SolveDecoder(2, s.U, s.V)
	if err != nil {
		t.Fatal(err)
	}
	alg := &Algorithm{Name: "strassen-solved", N0: 2, U: s.U, V: s.V, W: w}
	if err := alg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSolveDecoderRejectsNonSpanning(t *testing.T) {
	// 6 products cannot compute 2×2 matmul (rank of the tensor is 7).
	s := Strassen()
	if _, err := SolveDecoder(2, s.U[:6], s.V[:6]); err == nil {
		t.Fatal("SolveDecoder accepted 6 Strassen products")
	}
}

func TestLinearSolve(t *testing.T) {
	// Solve [[1,2],[3,4]] x = [[5],[11]] -> x = [[1],[2]].
	a := [][]rat.Rat{{rat.Int(1), rat.Int(2)}, {rat.Int(3), rat.Int(4)}}
	b := [][]rat.Rat{{rat.Int(5)}, {rat.Int(11)}}
	x, err := LinearSolve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !x[0][0].Equal(rat.Int(1)) || !x[1][0].Equal(rat.Int(2)) {
		t.Fatalf("x = %v", x)
	}
}

func TestLinearSolveInconsistent(t *testing.T) {
	a := [][]rat.Rat{{rat.Int(1), rat.Int(1)}, {rat.Int(2), rat.Int(2)}}
	b := [][]rat.Rat{{rat.Int(1)}, {rat.Int(3)}}
	if _, err := LinearSolve(a, b); err == nil {
		t.Fatal("inconsistent system accepted")
	}
}

func TestLinearSolveUnderdetermined(t *testing.T) {
	// x + y = 2 has solutions; free variable goes to zero -> x=2, y=0.
	a := [][]rat.Rat{{rat.Int(1), rat.Int(1)}}
	b := [][]rat.Rat{{rat.Int(2)}}
	x, err := LinearSolve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !x[0][0].Equal(rat.Int(2)) || !x[1][0].IsZero() {
		t.Fatalf("x = %v", x)
	}
}

func TestAnalyzeStrassen(t *testing.T) {
	st := Analyze(Strassen())
	if st.EncComponents[SideA] != 1 || st.EncComponents[SideB] != 1 {
		t.Errorf("strassen encodings must be connected: %v", st.EncComponents)
	}
	if st.DecComponents != 1 {
		t.Errorf("strassen decoding must be connected: %d", st.DecComponents)
	}
	// A11 (M3) and A22 (M4) are bare copies; so are B11 (M2), B22 (M5).
	if st.CopyFanout[SideA][0] != 1 || st.CopyFanout[SideA][3] != 1 {
		t.Errorf("A copy fanout: %v", st.CopyFanout[SideA])
	}
	if st.MultipleCopying(SideA) || st.MultipleCopying(SideB) {
		t.Error("strassen has no multiple copying")
	}
	if !st.SatisfiesOneMultiplicationPerCombination() {
		t.Error("strassen satisfies the one-multiplication assumption")
	}
	if st.DecodingHasCopy {
		t.Error("strassen decoding has no copies (Lemma 2)")
	}
}

func TestAnalyzeClassical(t *testing.T) {
	st := Analyze(Classical(2))
	// Decoding graph: each output is fed by its own 2 products -> 4 components.
	if st.DecComponents != 4 {
		t.Errorf("classical2 decoding components = %d, want 4", st.DecComponents)
	}
	// Every combination is a bare copy used in 2 products: multiple copying.
	if !st.MultipleCopying(SideA) || !st.MultipleCopying(SideB) {
		t.Error("classical2 must exhibit multiple copying")
	}
	if st.NontrivialCombos[SideA] != 0 {
		t.Errorf("classical has no nontrivial combos, got %d", st.NontrivialCombos[SideA])
	}
}

func TestAnalyzeDisconnectedFast(t *testing.T) {
	st := Analyze(DisconnectedFast())
	if st.DecComponents < 2 {
		t.Errorf("disconnected56 decoding components = %d, want ≥ 2", st.DecComponents)
	}
	if !st.MultipleCopying(SideA) {
		t.Error("disconnected56 must exhibit multiple copying on side A")
	}
	// Tensoring with the classical algorithm reuses each nontrivial
	// Strassen combination across the classical products that share an
	// operand block, so disconnected56 genuinely violates the paper's
	// standing assumption — it lives in the Section 8 (conjecture)
	// regime, which is exactly why it is in the catalog.
	if st.SatisfiesOneMultiplicationPerCombination() {
		t.Error("disconnected56 must violate the one-multiplication assumption")
	}
	if st.DecodingHasCopy {
		t.Error("no correct algorithm has decoding copies (Lemma 2)")
	}
}

func TestLemma2NoDecodingCopyInCatalog(t *testing.T) {
	// Lemma 2: the decoding graph of a correct algorithm cannot contain
	// copying (otherwise two outputs would be identically equal).
	for _, alg := range All() {
		if Analyze(alg).DecodingHasCopy {
			t.Errorf("%s: decoding graph contains a copy vertex", alg.Name)
		}
	}
}

func TestProductsUsingEntry(t *testing.T) {
	s := Strassen()
	use := s.ProductsUsingEntry(SideA)
	// A11 (entry 0) appears in M1, M3, M5, M6 (indices 0, 2, 4, 5).
	want := []int{0, 2, 4, 5}
	if len(use[0]) != len(want) {
		t.Fatalf("A11 used by %v, want %v", use[0], want)
	}
	for i := range want {
		if use[0][i] != want[i] {
			t.Fatalf("A11 used by %v, want %v", use[0], want)
		}
	}
}

func TestApplyMatchesClassicalDefinition(t *testing.T) {
	alg := Strassen()
	a := []rat.Mod{1, 2, 3, 4}
	b := []rat.Mod{5, 6, 7, 8}
	got := alg.Apply(a, b)
	want := []rat.Mod{19, 22, 43, 50}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Apply = %v, want %v", got, want)
		}
	}
}

func TestAllContainsLaderman(t *testing.T) {
	found := false
	for _, alg := range All() {
		if alg.Name == "laderman" {
			found = true
		}
	}
	if !found {
		t.Fatal("catalog must include laderman")
	}
}

func TestFastExcludesClassical(t *testing.T) {
	for _, alg := range Fast() {
		if !alg.IsFast() {
			t.Errorf("Fast() returned non-fast %s", alg.Name)
		}
	}
	if len(Fast()) < 4 {
		t.Errorf("Fast() too small: %d", len(Fast()))
	}
}

func TestDualsOfStrassen(t *testing.T) {
	duals := Duals(Strassen())
	if len(duals) < 3 {
		t.Fatalf("only %d duals found", len(duals))
	}
	for _, d := range duals {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
		if d.B() != 7 || d.N0 != 2 {
			t.Errorf("%s: shape changed", d.Name)
		}
	}
}

func TestDualsOfWinogradAndClassical(t *testing.T) {
	if len(Duals(Winograd())) < 3 {
		t.Error("winograd duals missing")
	}
	// Classical is fully symmetric: its duals coincide with itself
	// under relabeling, but the candidates that validate must still be
	// valid algorithms.
	for _, d := range Duals(Classical(2)) {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

func TestDualsAreDistinct(t *testing.T) {
	duals := Duals(Strassen())
	for i := 0; i < len(duals); i++ {
		for j := i + 1; j < len(duals); j++ {
			same := true
		outer:
			for tt := 0; tt < 7; tt++ {
				for e := 0; e < 4; e++ {
					if !duals[i].U[tt][e].Equal(duals[j].U[tt][e]) ||
						!duals[i].V[tt][e].Equal(duals[j].V[tt][e]) {
						same = false
						break outer
					}
				}
			}
			if same {
				wSame := true
				for o := 0; o < 4 && wSame; o++ {
					for tt := 0; tt < 7; tt++ {
						if !duals[i].W[o][tt].Equal(duals[j].W[o][tt]) {
							wSame = false
							break
						}
					}
				}
				if wSame {
					t.Fatalf("duals %d and %d identical", i, j)
				}
			}
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for _, alg := range All() {
		data, err := MarshalAlgorithm(alg)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name, err)
		}
		back, err := UnmarshalAlgorithm(data)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name, err)
		}
		if back.Name != alg.Name || back.N0 != alg.N0 || back.B() != alg.B() {
			t.Fatalf("%s: shape changed in round trip", alg.Name)
		}
		for tt := 0; tt < alg.B(); tt++ {
			for e := 0; e < alg.A(); e++ {
				if !back.U[tt][e].Equal(alg.U[tt][e]) || !back.V[tt][e].Equal(alg.V[tt][e]) {
					t.Fatalf("%s: coefficients changed", alg.Name)
				}
			}
		}
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	alg := Strassen()
	data, err := MarshalAlgorithm(alg)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a coefficient: "1" -> "2" in U's first nonzero slot.
	corrupt := []byte(strings.Replace(string(data), `"1"`, `"2"`, 1))
	if _, err := UnmarshalAlgorithm(corrupt); err == nil {
		t.Fatal("corrupted algorithm accepted")
	}
	if _, err := UnmarshalAlgorithm([]byte("{not json")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := UnmarshalAlgorithm([]byte(`{"name":"x","n0":2,"u":[["z"]],"v":[["1"]],"w":[["1"]]}`)); err == nil {
		t.Fatal("unparseable coefficient accepted")
	}
}
