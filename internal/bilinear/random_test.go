package bilinear

import (
	"math/rand"
	"testing"
)

func TestRandomAlgorithmValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		alg, err := RandomAlgorithm(rng, nil)
		if err != nil {
			t.Fatal(err)
		}
		if alg.N0 != 2 || alg.B() != 7 {
			t.Fatalf("orbit element shape n0=%d b=%d", alg.N0, alg.B())
		}
		// Validate is called inside RandomAlgorithm; re-check the
		// exponent invariance: symmetry transformations preserve b.
		if alg.Omega0() != Strassen().Omega0() {
			t.Fatalf("omega changed: %v", alg.Omega0())
		}
	}
}

func TestRandomAlgorithmOrbitOfLaderman(t *testing.T) {
	lad, err := Laderman()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	alg, err := RandomAlgorithm(rng, lad)
	if err != nil {
		t.Fatal(err)
	}
	if alg.N0 != 3 || alg.B() != 23 {
		t.Fatalf("shape n0=%d b=%d", alg.N0, alg.B())
	}
}

func TestRandomAlgorithmsDiffer(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a1, err := RandomAlgorithm(rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := RandomAlgorithm(rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for t0 := 0; t0 < a1.B() && same; t0++ {
		for e := 0; e < a1.A(); e++ {
			if !a1.U[t0][e].Equal(a2.U[t0][e]) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("two orbit draws identical")
	}
}

func TestRandomInvertible(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for n0 := 2; n0 <= 4; n0++ {
		m, inv, err := randomInvertible(rng, n0)
		if err != nil {
			t.Fatal(err)
		}
		if !isIdentity(matMulRat(m, inv)) || !isIdentity(matMulRat(inv, m)) {
			t.Fatalf("n0=%d: inverse wrong", n0)
		}
	}
}
