// Package bilinear represents Strassen-like square matrix multiplication
// algorithms as bilinear algorithms ⟨U, V, W⟩ and provides the catalog of
// algorithms studied in the reproduction, exact verification via the
// Brent equations, tensor composition, and structural analysis of the
// base computation graph (connectivity, copying, combination reuse) that
// the paper's hypotheses refer to.
//
// A bilinear algorithm for n₀×n₀ matrix multiplication C = A·B with b
// products computes, for t = 0..b-1,
//
//	p_t = ( Σ_e U[t][e]·a_e ) · ( Σ_e V[t][e]·b_e )
//
// and then
//
//	c_o = Σ_t W[o][t]·p_t,
//
// where e and o index matrix entries in row-major order (e = i·n₀ + j).
// In the paper's terminology the base graph G₁ has 2a inputs (a = n₀²)
// and b multiplication vertices; the encoding graphs are given by the
// nonzero patterns of U and V and the decoding graph by that of W.
package bilinear

import (
	"fmt"
	"math"
	"math/rand"

	"pathrouting/internal/rat"
)

// Algorithm is an immutable description of a Strassen-like base algorithm.
type Algorithm struct {
	// Name identifies the algorithm in output and error messages.
	Name string
	// N0 is the base matrix dimension n₀ (the algorithm multiplies
	// n₀×n₀ matrices; recursion handles n₀^r×n₀^r).
	N0 int
	// U holds the encoding coefficients for A: U[t][e] is the
	// coefficient of entry a_e in the left operand of product t.
	// Dimensions: b × a.
	U [][]rat.Rat
	// V holds the encoding coefficients for B (b × a).
	V [][]rat.Rat
	// W holds the decoding coefficients: W[o][t] is the coefficient of
	// product p_t in output c_o. Dimensions: a × b.
	W [][]rat.Rat
}

// A returns a = n₀², the number of inputs per operand matrix.
func (alg *Algorithm) A() int { return alg.N0 * alg.N0 }

// B returns b, the number of multiplications in the base algorithm.
func (alg *Algorithm) B() int { return len(alg.U) }

// Omega0 returns ω₀ = log_{n₀} b = 2·log_a b, the exponent of the
// algorithm's arithmetic complexity Θ(n^{ω₀}).
func (alg *Algorithm) Omega0() float64 {
	return math.Log(float64(alg.B())) / math.Log(float64(alg.N0))
}

// IsFast reports whether the algorithm is a fast (ω₀ < 3) algorithm,
// i.e. b < n₀³, the hypothesis of the paper's Theorem 1.
func (alg *Algorithm) IsFast() bool {
	return alg.B() < alg.N0*alg.N0*alg.N0
}

// Index returns the row-major entry index i·n₀ + j.
func (alg *Algorithm) Index(i, j int) int { return i*alg.N0 + j }

// RowCol returns the (row, column) of entry index e.
func (alg *Algorithm) RowCol(e int) (int, int) { return e / alg.N0, e % alg.N0 }

// shapeError describes a dimension inconsistency in U/V/W.
func (alg *Algorithm) shapeError() error {
	a, b := alg.A(), alg.B()
	if alg.N0 < 1 {
		return fmt.Errorf("bilinear: %s: N0 = %d < 1", alg.Name, alg.N0)
	}
	if b == 0 {
		return fmt.Errorf("bilinear: %s: no products", alg.Name)
	}
	if len(alg.V) != b {
		return fmt.Errorf("bilinear: %s: len(V) = %d, want b = %d", alg.Name, len(alg.V), b)
	}
	for t := 0; t < b; t++ {
		if len(alg.U[t]) != a || len(alg.V[t]) != a {
			return fmt.Errorf("bilinear: %s: product %d has U/V row lengths %d/%d, want a = %d",
				alg.Name, t, len(alg.U[t]), len(alg.V[t]), a)
		}
	}
	if len(alg.W) != a {
		return fmt.Errorf("bilinear: %s: len(W) = %d, want a = %d", alg.Name, len(alg.W), a)
	}
	for o := 0; o < a; o++ {
		if len(alg.W[o]) != b {
			return fmt.Errorf("bilinear: %s: output %d has W row length %d, want b = %d",
				alg.Name, o, len(alg.W[o]), b)
		}
	}
	return nil
}

// Validate checks the Brent equations exactly: for all entries
// (i,j), (k,l), (m,n) of A, B, C respectively,
//
//	Σ_t U[t][ij]·V[t][kl]·W[mn][t]  =  [j==k]·[i==m]·[l==n].
//
// This is a complete, exact correctness proof of the bilinear algorithm
// (not a randomized check). It returns nil iff the algorithm multiplies
// matrices correctly.
func (alg *Algorithm) Validate() error {
	if err := alg.shapeError(); err != nil {
		return err
	}
	n0, b := alg.N0, alg.B()
	for i := 0; i < n0; i++ {
		for j := 0; j < n0; j++ {
			e := alg.Index(i, j)
			for k := 0; k < n0; k++ {
				for l := 0; l < n0; l++ {
					f := alg.Index(k, l)
					for m := 0; m < n0; m++ {
						for n := 0; n < n0; n++ {
							o := alg.Index(m, n)
							sum := rat.Zero
							for t := 0; t < b; t++ {
								if alg.U[t][e].IsZero() || alg.V[t][f].IsZero() || alg.W[o][t].IsZero() {
									continue
								}
								sum = sum.Add(alg.U[t][e].Mul(alg.V[t][f]).Mul(alg.W[o][t]))
							}
							want := rat.Zero
							if j == k && i == m && l == n {
								want = rat.One
							}
							if !sum.Equal(want) {
								return fmt.Errorf(
									"bilinear: %s: Brent equation fails: coefficient of a[%d,%d]·b[%d,%d] in c[%d,%d] is %v, want %v",
									alg.Name, i, j, k, l, m, n, sum, want)
							}
						}
					}
				}
			}
		}
	}
	return nil
}

// Apply multiplies two n₀×n₀ matrices of residues mod p using the base
// algorithm directly (one level, no recursion). Inputs and output are
// row-major slices of length a. It is the numeric ground truth used to
// cross-check CDAG evaluation.
func (alg *Algorithm) Apply(a, b []rat.Mod) []rat.Mod {
	n := alg.A()
	if len(a) != n || len(b) != n {
		panic(fmt.Errorf("bilinear: Apply: operand lengths %d, %d; want %d", len(a), len(b), n))
	}
	products := make([]rat.Mod, alg.B())
	for t := range products {
		var la, lb rat.Mod
		for e := 0; e < n; e++ {
			if !alg.U[t][e].IsZero() {
				la = rat.ModAdd(la, rat.ModMul(alg.U[t][e].Mod(), a[e]))
			}
			if !alg.V[t][e].IsZero() {
				lb = rat.ModAdd(lb, rat.ModMul(alg.V[t][e].Mod(), b[e]))
			}
		}
		products[t] = rat.ModMul(la, lb)
	}
	c := make([]rat.Mod, n)
	for o := 0; o < n; o++ {
		var s rat.Mod
		for t := range products {
			if !alg.W[o][t].IsZero() {
				s = rat.ModAdd(s, rat.ModMul(alg.W[o][t].Mod(), products[t]))
			}
		}
		c[o] = s
	}
	return c
}

// RandomCheck multiplies nTrials random matrices with Apply and compares
// against direct classical multiplication mod p. It is a fast smoke test
// complementing the exhaustive Validate.
func (alg *Algorithm) RandomCheck(rng *rand.Rand, nTrials int) error {
	n0 := alg.N0
	a := make([]rat.Mod, alg.A())
	b := make([]rat.Mod, alg.A())
	for trial := 0; trial < nTrials; trial++ {
		for e := range a {
			a[e] = rat.Mod(rng.Int63n(int64(rat.ModP)))
			b[e] = rat.Mod(rng.Int63n(int64(rat.ModP)))
		}
		got := alg.Apply(a, b)
		for i := 0; i < n0; i++ {
			for j := 0; j < n0; j++ {
				var want rat.Mod
				for k := 0; k < n0; k++ {
					want = rat.ModAdd(want, rat.ModMul(a[alg.Index(i, k)], b[alg.Index(k, j)]))
				}
				if got[alg.Index(i, j)] != want {
					return fmt.Errorf("bilinear: %s: random check trial %d: c[%d,%d] = %d, want %d",
						alg.Name, trial, i, j, got[alg.Index(i, j)], want)
				}
			}
		}
	}
	return nil
}

// Tensor returns the tensor (Kronecker) product of two algorithms: an
// algorithm for (x.N0·y.N0)×(x.N0·y.N0) matrices using x.B()·y.B()
// products. Tensoring verified algorithms yields a verified algorithm;
// the catalog uses this to build fast algorithms whose base graphs have
// disconnected decoding components and multiple copying (the cases the
// paper's technique newly covers).
//
// Index convention: the x factor is the outer block structure. Entry
// (i,j) of the product algorithm, with i = i₁·y.N0 + i₂, corresponds to
// entry (i₂,j₂) within block (i₁,j₁). Product (t₁,t₂) is t₁·y.B() + t₂.
func Tensor(x, y *Algorithm) *Algorithm {
	n0 := x.N0 * y.N0
	b := x.B() * y.B()
	a := n0 * n0
	entry := func(e1, e2 int) int {
		r1, c1 := x.RowCol(e1)
		r2, c2 := y.RowCol(e2)
		return (r1*y.N0+r2)*n0 + (c1*y.N0 + c2)
	}
	mulRows := func(m1, m2 [][]rat.Rat, t1, t2 int) []rat.Rat {
		row := make([]rat.Rat, a)
		for e1, c1 := range m1[t1] {
			if c1.IsZero() {
				continue
			}
			for e2, c2 := range m2[t2] {
				if c2.IsZero() {
					continue
				}
				row[entry(e1, e2)] = c1.Mul(c2)
			}
		}
		return row
	}
	alg := &Algorithm{
		Name: x.Name + "⊗" + y.Name,
		N0:   n0,
		U:    make([][]rat.Rat, b),
		V:    make([][]rat.Rat, b),
		W:    make([][]rat.Rat, a),
	}
	for t1 := 0; t1 < x.B(); t1++ {
		for t2 := 0; t2 < y.B(); t2++ {
			t := t1*y.B() + t2
			alg.U[t] = mulRows(x.U, y.U, t1, t2)
			alg.V[t] = mulRows(x.V, y.V, t1, t2)
		}
	}
	for o1 := 0; o1 < x.A(); o1++ {
		for o2 := 0; o2 < y.A(); o2++ {
			o := entry(o1, o2)
			row := make([]rat.Rat, b)
			for t1, c1 := range x.W[o1] {
				if c1.IsZero() {
					continue
				}
				for t2, c2 := range y.W[o2] {
					if c2.IsZero() {
						continue
					}
					row[t1*y.B()+t2] = c1.Mul(c2)
				}
			}
			alg.W[o] = row
		}
	}
	return alg
}

// ints converts an int slice to a coefficient row.
func ints(xs ...int64) []rat.Rat {
	row := make([]rat.Rat, len(xs))
	for i, x := range xs {
		row[i] = rat.Int(x)
	}
	return row
}
