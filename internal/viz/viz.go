// Package viz renders the objects of the paper as Graphviz DOT and
// ASCII art, reproducing its illustrative figures:
//
//	Figure 1 — the base graph G₁ (BaseGraphDOT)
//	Figure 2 — a meta-vertex of copies (MetaVertexDOT)
//	Figures 3, 4 — routing paths with zags (PathDOT)
//	Figure 5 — a computation segment S inside G_r (SegmentDOT)
//	Figure 6 — the Lemma 4 walk across A, B, C (Lemma4ASCII)
//	Figure 8 — the matching graph H adjacency of one dependency (HGraphDOT)
//	Figure 9 — the reduced graph G₁° of Lemma 5 (G1CircleDOT)
//
// Outputs are deterministic strings; pipe them to `dot -Tpng`.
package viz

import (
	"fmt"
	"sort"
	"strings"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/cdag"
	"pathrouting/internal/routing"
)

// entryName formats a matrix entry like "a11" (1-indexed).
func entryName(prefix string, n0, e int) string {
	return fmt.Sprintf("%s%d%d", prefix, e/n0+1, e%n0+1)
}

// BaseGraphDOT renders the base graph G₁ of the algorithm (Figure 1):
// inputs at the bottom, the b multiplication vertices in the middle,
// outputs at the top.
func BaseGraphDOT(alg *bilinear.Algorithm) string {
	var b strings.Builder
	n0, a := alg.N0, alg.A()
	fmt.Fprintf(&b, "digraph G1 {\n  rankdir=BT;\n  label=\"G_1 of %s (a=%d, b=%d)\";\n", alg.Name, a, alg.B())
	b.WriteString("  { rank=same; ")
	for e := 0; e < a; e++ {
		fmt.Fprintf(&b, "%s; %s; ", entryName("a", n0, e), entryName("b", n0, e))
	}
	b.WriteString("}\n  { rank=same; ")
	for t := 0; t < alg.B(); t++ {
		fmt.Fprintf(&b, "m%d; ", t+1)
	}
	b.WriteString("}\n  { rank=same; ")
	for o := 0; o < a; o++ {
		fmt.Fprintf(&b, "%s; ", entryName("c", n0, o))
	}
	b.WriteString("}\n")
	for t := 0; t < alg.B(); t++ {
		fmt.Fprintf(&b, "  m%d [shape=circle,style=filled,fillcolor=lightgray];\n", t+1)
		for e := 0; e < a; e++ {
			if !alg.U[t][e].IsZero() {
				fmt.Fprintf(&b, "  %s -> m%d [label=\"%s\"];\n", entryName("a", n0, e), t+1, alg.U[t][e])
			}
			if !alg.V[t][e].IsZero() {
				fmt.Fprintf(&b, "  %s -> m%d [label=\"%s\",style=dashed];\n", entryName("b", n0, e), t+1, alg.V[t][e])
			}
		}
	}
	for o := 0; o < a; o++ {
		for t := 0; t < alg.B(); t++ {
			if !alg.W[o][t].IsZero() {
				fmt.Fprintf(&b, "  m%d -> %s [label=\"%s\"];\n", t+1, entryName("c", n0, o), alg.W[o][t])
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// MetaVertexDOT renders the meta-vertex rooted at root inside g
// (Figure 2): the root and its upward subtree of copies, plus their
// immediate non-copy neighbors in gray.
func MetaVertexDOT(g *cdag.Graph, root cdag.V) string {
	members := g.MetaMembers(root)
	inMeta := map[cdag.V]bool{}
	for _, m := range members {
		inMeta[m] = true
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph meta {\n  rankdir=BT;\n  label=\"meta-vertex of %s\";\n", g.Label(root))
	for _, m := range members {
		shape := "ellipse"
		if m == root {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  v%d [label=\"%s\",shape=%s,style=filled,fillcolor=lightblue];\n", m, g.Label(m), shape)
		for _, e := range g.Children(m) {
			if inMeta[e.To] {
				fmt.Fprintf(&b, "  v%d -> v%d;\n", m, e.To)
			} else {
				fmt.Fprintf(&b, "  x%d [label=\"%s\",color=gray,fontcolor=gray];\n  v%d -> x%d [color=gray];\n",
					e.To, g.Label(e.To), m, e.To)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// PathDOT renders a routing path (Figures 3 and 4): the path vertices in
// order with red edges, each labeled by its layer and rank.
func PathDOT(g *cdag.Graph, path []cdag.V, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph path {\n  rankdir=BT;\n  label=%q;\n", title)
	seen := map[cdag.V]bool{}
	for _, v := range path {
		if !seen[v] {
			seen[v] = true
			fmt.Fprintf(&b, "  v%d [label=\"%s\"];\n", v, g.Label(v))
		}
	}
	for i := 0; i+1 < len(path); i++ {
		fmt.Fprintf(&b, "  v%d -> v%d [color=red,label=\"%d\"];\n", path[i], path[i+1], i+1)
	}
	b.WriteString("}\n")
	return b.String()
}

// SegmentDOT renders a small G_r with the vertex set s highlighted in
// blue (Figure 5). Intended for graphs of at most a few thousand
// vertices.
func SegmentDOT(g *cdag.Graph, s map[cdag.V]struct{}) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph segment {\n  rankdir=BT;\n  label=\"segment S in G_%d of %s\";\n", g.R, g.Alg.Name)
	n := g.NumVertices()
	for v := cdag.V(0); int(v) < n; v++ {
		if _, in := s[v]; in {
			fmt.Fprintf(&b, "  v%d [label=\"%s\",style=filled,fillcolor=lightblue];\n", v, g.Label(v))
		} else {
			fmt.Fprintf(&b, "  v%d [label=\"%s\"];\n", v, g.Label(v))
		}
	}
	var buf []cdag.Edge
	for v := cdag.V(0); int(v) < n; v++ {
		buf = g.AppendChildren(v, buf[:0])
		for _, e := range buf {
			fmt.Fprintf(&b, "  v%d -> v%d;\n", v, e.To)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Lemma4ASCII renders the Figure 6 walk for the A-side composition
// a_ij → c_ij′ → b_jj′ → c_i′j′ on n×n index grids: '1' marks the first
// chain's endpoints, '2' the reversed middle chain, '3' the last.
func Lemma4ASCII(n, i, j, iP, jP int) string {
	if i >= n || j >= n || iP >= n || jP >= n || i < 0 || j < 0 || iP < 0 || jP < 0 {
		panic(fmt.Errorf("viz: Lemma4ASCII indices out of range n=%d", n))
	}
	grid := func(name string, marks map[[2]int]byte) string {
		var b strings.Builder
		fmt.Fprintf(&b, "%s:\n", name)
		for r := 0; r < n; r++ {
			b.WriteString("  ")
			for c := 0; c < n; c++ {
				if m, ok := marks[[2]int{r, c}]; ok {
					b.WriteByte(m)
				} else {
					b.WriteByte('.')
				}
				b.WriteByte(' ')
			}
			b.WriteByte('\n')
		}
		return b.String()
	}
	a := map[[2]int]byte{{i, j}: '1'}
	bm := map[[2]int]byte{{j, jP}: '2'}
	c := map[[2]int]byte{{i, jP}: '1', {iP, jP}: '3'}
	if i == iP {
		c[[2]int{i, jP}] = '*'
	}
	return grid("A", a) + grid("B", bm) + grid("C", c) +
		fmt.Sprintf("walk: a[%d,%d] -> c[%d,%d] -> b[%d,%d] -> c[%d,%d]\n",
			i+1, j+1, i+1, jP+1, j+1, jP+1, iP+1, jP+1)
}

// HGraphDOT renders the matching-graph adjacency of one guaranteed base
// dependency (Figure 8): the products through which a chain from input
// e to output o may pass, highlighted in red on the base graph.
func HGraphDOT(alg *bilinear.Algorithm, side bilinear.Side, e, o int) string {
	adj := routing.DepProducts(alg, side, e, o)
	hot := map[int]bool{}
	for _, t := range adj {
		hot[t] = true
	}
	n0 := alg.N0
	pre := "a"
	if side == bilinear.SideB {
		pre = "b"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph H {\n  rankdir=BT;\n  label=\"products admitting a chain %s -> %s\";\n",
		entryName(pre, n0, e), entryName("c", n0, o))
	for t := 0; t < alg.B(); t++ {
		color := "black"
		if hot[t] {
			color = "red"
		}
		fmt.Fprintf(&b, "  m%d [color=%s];\n", t+1, color)
	}
	fmt.Fprintf(&b, "  %s [style=filled,fillcolor=lightblue];\n  %s [style=filled,fillcolor=lightblue];\n",
		entryName(pre, n0, e), entryName("c", n0, o))
	enc := alg.U
	if side == bilinear.SideB {
		enc = alg.V
	}
	for t := 0; t < alg.B(); t++ {
		if !enc[t][e].IsZero() {
			fmt.Fprintf(&b, "  %s -> m%d;\n", entryName(pre, n0, e), t+1)
		}
		if !alg.W[o][t].IsZero() {
			fmt.Fprintf(&b, "  m%d -> %s;\n", t+1, entryName("c", n0, o))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// G1CircleDOT renders G₁° of Lemma 5 (Figure 9): the base graph
// restricted to row i of A and C with only the products in keep
// retained; removed products are crossed out (drawn gray, dashed).
func G1CircleDOT(alg *bilinear.Algorithm, row int, keep []int) string {
	kept := map[int]bool{}
	for _, t := range keep {
		kept[t] = true
	}
	n0 := alg.N0
	var b strings.Builder
	fmt.Fprintf(&b, "digraph G1circle {\n  rankdir=BT;\n  label=\"G_1° for row %d of %s\";\n", row+1, alg.Name)
	for t := 0; t < alg.B(); t++ {
		if kept[t] {
			fmt.Fprintf(&b, "  m%d;\n", t+1)
		} else {
			fmt.Fprintf(&b, "  m%d [style=dashed,color=gray,label=\"m%d ✗\"];\n", t+1, t+1)
		}
	}
	for jj := 0; jj < n0; jj++ {
		e := row*n0 + jj
		for t := 0; t < alg.B(); t++ {
			if alg.U[t][e].IsZero() {
				continue
			}
			style := ""
			if !kept[t] {
				style = " [style=dashed,color=gray]"
			}
			fmt.Fprintf(&b, "  %s -> m%d%s;\n", entryName("a", n0, e), t+1, style)
		}
	}
	for jj := 0; jj < n0; jj++ {
		o := row*n0 + jj
		for t := 0; t < alg.B(); t++ {
			if alg.W[o][t].IsZero() {
				continue
			}
			style := ""
			if !kept[t] {
				style = " [style=dashed,color=gray]"
			}
			fmt.Fprintf(&b, "  m%d -> %s%s;\n", t+1, entryName("c", n0, o), style)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// SortedKeys is a helper for deterministic iteration in renderers and
// tests.
func SortedKeys[K ~int32 | ~int, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// RecursionDOT renders the Claim 2 picture (Figure 7): how G'_k is
// assembled from b copies of G'_{k-1} by replacing adjacent middle-rank
// pairs with guaranteed dependencies. It draws the base graph's A-side
// encoding and decoding with the middle layer shown as collapsed
// sub-boxes.
func RecursionDOT(alg *bilinear.Algorithm) string {
	n0, a := alg.N0, alg.A()
	var b strings.Builder
	fmt.Fprintf(&b, "digraph Gprime {\n  rankdir=BT;\n  label=\"G'_k from %d copies of G'_(k-1) (%s)\";\n",
		alg.B(), alg.Name)
	for t := 0; t < alg.B(); t++ {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=\"G'_(k-1) #%d\";\n    sub%d [shape=box3d];\n  }\n",
			t, t+1, t)
	}
	for e := 0; e < a; e++ {
		name := entryName("a", n0, e)
		fmt.Fprintf(&b, "  %s;\n", name)
		for t := 0; t < alg.B(); t++ {
			if !alg.U[t][e].IsZero() {
				fmt.Fprintf(&b, "  %s -> sub%d;\n", name, t)
			}
		}
	}
	for o := 0; o < a; o++ {
		name := entryName("c", n0, o)
		fmt.Fprintf(&b, "  %s;\n", name)
		for t := 0; t < alg.B(); t++ {
			if !alg.W[o][t].IsZero() {
				fmt.Fprintf(&b, "  sub%d -> %s;\n", t, name)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
