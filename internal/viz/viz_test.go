package viz

import (
	"strings"
	"testing"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/cdag"
	"pathrouting/internal/pebble"
	"pathrouting/internal/routing"
	"pathrouting/internal/schedule"
)

func TestBaseGraphDOTStrassen(t *testing.T) {
	dot := BaseGraphDOT(bilinear.Strassen())
	for _, want := range []string{"digraph G1", "m7", "a11 -> m1", "b22", "c11", "rankdir=BT"} {
		if !strings.Contains(dot, want) {
			t.Errorf("missing %q", want)
		}
	}
	if strings.Contains(dot, "m8") {
		t.Error("Strassen has only 7 products")
	}
}

func TestMetaVertexDOT(t *testing.T) {
	g, err := cdag.New(bilinear.Strassen(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a root with copies above it.
	for v := cdag.V(0); int(v) < g.NumVertices(); v++ {
		if g.IsCopy(v) {
			root := g.MetaRoot(v)
			dot := MetaVertexDOT(g, root)
			if !strings.Contains(dot, "doublecircle") || !strings.Contains(dot, "lightblue") {
				t.Error("meta-vertex rendering incomplete")
			}
			return
		}
	}
	t.Fatal("no copy found")
}

func TestPathDOT(t *testing.T) {
	g, err := cdag.New(bilinear.Strassen(), 2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := routing.NewRouter(g)
	if err != nil {
		t.Fatal(err)
	}
	chain, ok := r.AppendChain(bilinear.SideA, 0, 0, nil)
	if !ok {
		t.Fatal("chain missing")
	}
	dot := PathDOT(g, chain, "Figure 4 style chain")
	if !strings.Contains(dot, "color=red") {
		t.Error("path edges not highlighted")
	}
	if strings.Count(dot, "->") != len(chain)-1 {
		t.Errorf("edge count %d, want %d", strings.Count(dot, "->"), len(chain)-1)
	}
}

func TestSegmentDOT(t *testing.T) {
	g, err := cdag.New(bilinear.Strassen(), 1)
	if err != nil {
		t.Fatal(err)
	}
	sched := schedule.RecursiveDFS(g)
	s := pebble.MetaClosure(g, sched[:5])
	dot := SegmentDOT(g, s)
	if strings.Count(dot, "lightblue") < 5 {
		t.Error("segment vertices not highlighted")
	}
}

func TestLemma4ASCII(t *testing.T) {
	art := Lemma4ASCII(3, 0, 1, 2, 2)
	for _, want := range []string{"A:", "B:", "C:", "1", "2", "3", "walk:"} {
		if !strings.Contains(art, want) {
			t.Errorf("missing %q in\n%s", want, art)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range indices accepted")
		}
	}()
	Lemma4ASCII(2, 0, 0, 5, 0)
}

func TestHGraphDOT(t *testing.T) {
	dot := HGraphDOT(bilinear.Strassen(), bilinear.SideA, 1, 0) // a12 -> c11 (Figure 8's example)
	if !strings.Contains(dot, "color=red") {
		t.Error("no products highlighted")
	}
	if !strings.Contains(dot, "a12") || !strings.Contains(dot, "c11") {
		t.Error("endpoints missing")
	}
}

func TestG1CircleDOT(t *testing.T) {
	dot := G1CircleDOT(bilinear.Strassen(), 1, []int{0, 1, 2})
	if !strings.Contains(dot, "✗") {
		t.Error("removed products not crossed out")
	}
	if !strings.Contains(dot, "a21") {
		t.Error("row restriction missing")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[int]string{3: "c", 1: "a", 2: "b"}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != 1 || keys[2] != 3 {
		t.Errorf("keys %v", keys)
	}
}

func TestRecursionDOT(t *testing.T) {
	dot := RecursionDOT(bilinear.Strassen())
	if strings.Count(dot, "cluster_") != 7 {
		t.Errorf("expected 7 sub-boxes, got %d", strings.Count(dot, "cluster_"))
	}
	if !strings.Contains(dot, "a11 -> sub0") {
		t.Error("input wiring missing")
	}
}
