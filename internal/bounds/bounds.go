// Package bounds evaluates the closed-form communication bounds of
// Scott–Holtz–Schwartz (Theorem 1) and the classical comparators, both
// as Θ-forms (constant 1, for shape comparisons) and with the explicit
// constants the paper's proof yields (for certified counting).
//
// All quantities are in words (values moved), matching the machine model
// of the paper: a two-level memory with fast memory of size M, or P
// processors each with local memory M.
package bounds

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/rat"
)

// ErrOverflow is returned by the Checked bound evaluators when the
// exact value does not fit int64. The unchecked variants saturate to
// math.MaxInt64 instead (a sentinel, never a silently wrapped value).
var ErrOverflow = errors.New("bounds: value overflows int64")

// mulChecked multiplies nonnegative int64s, reporting overflow instead
// of wrapping.
func mulChecked(a, b int64) (int64, bool) {
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	if hi != 0 || lo > math.MaxInt64 {
		return 0, false
	}
	return int64(lo), true
}

// addChecked adds nonnegative int64s, reporting overflow.
func addChecked(a, b int64) (int64, bool) {
	s := a + b
	return s, s >= 0
}

// powChecked returns base^e exactly, or ErrOverflow.
func powChecked(base, e int64) (int64, error) {
	p := int64(1)
	for i := int64(0); i < e; i++ {
		var ok bool
		if p, ok = mulChecked(p, base); !ok {
			return 0, fmt.Errorf("%w: %d^%d", ErrOverflow, base, e)
		}
	}
	return p, nil
}

// Theorem1Sequential returns the Θ-form sequential I/O lower bound of
// Theorem 1, (n/√M)^ω₀·M, for an algorithm of exponent ω₀ applied to
// n×n matrices with cache size M. Valid in the regime M = o(n²); for
// M ≥ n² the compulsory bound 3n² dominates and is returned instead.
func Theorem1Sequential(omega0 float64, n, m float64) float64 {
	if m <= 0 || n <= 0 {
		return 0
	}
	compulsory := 3 * n * n
	if m >= n*n {
		return compulsory
	}
	return math.Max(math.Pow(n/math.Sqrt(m), omega0)*m, compulsory)
}

// Theorem1Parallel returns the Θ-form parallel bandwidth lower bound
// (n/√M)^ω₀·M/P of Theorem 1.
func Theorem1Parallel(omega0 float64, n, m float64, p int) float64 {
	if p < 1 {
		return 0
	}
	return Theorem1Sequential(omega0, n, m) / float64(p)
}

// MemoryIndependent returns the cache-independent bandwidth lower bound
// of Theorem 1, n²/P^(2/ω₀), which holds regardless of M as long as the
// computation is load balanced per rank of the CDAG.
func MemoryIndependent(omega0 float64, n float64, p int) float64 {
	if p < 1 {
		return 0
	}
	return n * n / math.Pow(float64(p), 2/omega0)
}

// HongKungClassical returns the Θ-form classical lower bound n³/√M
// (Hong & Kung 1981), the comparator excluded by the paper's ω₀ < 3
// hypothesis. The refined constant 1/(2√2) of later work is applied so
// the curve is usable for crossover estimates.
func HongKungClassical(n, m float64) float64 {
	if m <= 0 || n <= 0 {
		return 0
	}
	return math.Max(n*n*n/(2*math.Sqrt2*math.Sqrt(m))-m, 3*n*n)
}

// ProofSequential returns the exact lower bound produced by the paper's
// Section 6 argument with its unoptimized constants:
//
//	⌊ (3·aᵏ·b^(r−k) / b²) / 36M ⌋ · M,   k = ⌈log_a 72M⌉,
//
// or 0 when the regime condition k ≤ r−2 fails (M too large relative to
// n — the bound is vacuous there, exactly as in the paper).
// It saturates to math.MaxInt64 when the exact value overflows int64
// (the Checked variant reports the overflow as an error instead); the
// seed computed the product with wrapping multiplication and silently
// reported garbage at large r.
func ProofSequential(alg *bilinear.Algorithm, r int, m int64) int64 {
	v, err := ProofSequentialChecked(alg, r, m)
	if err != nil {
		return math.MaxInt64
	}
	return v
}

// ProofSequentialChecked is ProofSequential with overflow-checked
// arithmetic: it returns ErrOverflow (wrapped) when the exact bound
// does not fit int64.
func ProofSequentialChecked(alg *bilinear.Algorithm, r int, m int64) (int64, error) {
	a, b := int64(alg.A()), int64(alg.B())
	lim, ok := mulChecked(72, m)
	if !ok {
		return 0, fmt.Errorf("%w: 72·M with M=%d", ErrOverflow, m)
	}
	k := ceilLog(a, lim)
	if k > int64(r)-2 {
		return 0, nil
	}
	// 3·aᵏ·b^(r−k)/b² = 3·aᵏ·b^(r−k−2) exactly, since k ≤ r−2 here;
	// folding the division in first keeps the intermediate as small as
	// the result.
	aK, err := powChecked(a, k)
	if err != nil {
		return 0, err
	}
	bRK, err := powChecked(b, int64(r)-k-2)
	if err != nil {
		return 0, err
	}
	counted, ok := mulChecked(aK, bRK)
	if ok {
		counted, ok = mulChecked(3, counted)
	}
	if !ok {
		return 0, fmt.Errorf("%w: 3·%d^%d·%d^%d", ErrOverflow, a, k, b, int64(r)-k-2)
	}
	return counted / (36 * m) * m, nil // 36·m ≤ 72·m, already checked
}

// ProofSection5Strassen returns the exact Section 5 bound for
// Strassen's algorithm: ⌊4ᵏ·7^(r−k)/66M⌋·M with k = ⌈log₄ 132M⌉, or 0
// out of regime.
// It saturates to math.MaxInt64 on overflow; see
// ProofSection5StrassenChecked for the error-reporting variant.
func ProofSection5Strassen(r int, m int64) int64 {
	v, err := ProofSection5StrassenChecked(r, m)
	if err != nil {
		return math.MaxInt64
	}
	return v
}

// ProofSection5StrassenChecked is ProofSection5Strassen with
// overflow-checked arithmetic, returning ErrOverflow (wrapped) when the
// exact bound does not fit int64.
func ProofSection5StrassenChecked(r int, m int64) (int64, error) {
	lim, ok := mulChecked(132, m)
	if !ok {
		return 0, fmt.Errorf("%w: 132·M with M=%d", ErrOverflow, m)
	}
	k := ceilLog(4, lim)
	if k > int64(r) {
		return 0, nil
	}
	fourK, err := powChecked(4, k)
	if err != nil {
		return 0, err
	}
	sevenRK, err := powChecked(7, int64(r)-k)
	if err != nil {
		return 0, err
	}
	counted, ok := mulChecked(fourK, sevenRK)
	if !ok {
		return 0, fmt.Errorf("%w: 4^%d·7^%d", ErrOverflow, k, int64(r)-k)
	}
	return counted / (66 * m) * m, nil // 66·m ≤ 132·m, already checked
}

// DFSUpperBound estimates the I/O of the recursive depth-first blocked
// schedule: recurse until a subproblem of dimension m̂ satisfies
// 3m̂² ≤ M, then each base subproblem costs at most 3m̂² I/O (read two
// operands, write the result):
//
//	IO(n) ≤ b^d · 3·(n/n₀^d)²,  d minimal with 3(n/n₀^d)² ≤ M,
//
// which is O((n/√M)^ω₀·M). This is the matching upper bound the paper
// cites from Ballard et al. [3].
func DFSUpperBound(alg *bilinear.Algorithm, n float64, m float64) float64 {
	if 3*n*n <= m {
		return 3 * n * n
	}
	n0 := float64(alg.N0)
	b := float64(alg.B())
	d := math.Ceil(math.Log(n/math.Sqrt(m/3)) / math.Log(n0))
	if d < 0 {
		d = 0
	}
	sub := n / math.Pow(n0, d)
	return math.Pow(b, d) * 3 * sub * sub
}

// CrossoverN returns the matrix dimension n at which the fast
// algorithm's Θ-form I/O bound drops below the classical bound for a
// given cache size M (both evaluated with constant 1); below it the
// classical algorithm moves fewer words, above it the fast algorithm
// wins. Returns 0 when the fast bound is never smaller in [1, 2^40].
func CrossoverN(omega0 float64, m float64) float64 {
	if omega0 >= 3 {
		return 0
	}
	// (n/√M)^ω₀·M < n³/√M  ⇔  n^(3-ω₀) > M^((3-ω₀)/2) · ... — solve
	// directly: equality at n = M^((ω₀-1)/(2(ω₀-3)) ... easier to solve
	// numerically by bisection on the ratio.
	lo, hi := 1.0, math.Pow(2, 40)
	f := func(n float64) bool {
		return math.Pow(n/math.Sqrt(m), omega0)*m < n*n*n/math.Sqrt(m)
	}
	if !f(hi) {
		return 0
	}
	if f(lo) {
		return lo
	}
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi)
		if f(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// RegimeOK reports whether (n, M) is inside Theorem 1's regime
// M ≤ o(n²), approximated as the exact condition the proof needs:
// k = ⌈log_a 72M⌉ ≤ r − 2. An M so large that 72M overflows int64 is
// out of regime for every representable r.
func RegimeOK(alg *bilinear.Algorithm, r int, m int64) bool {
	lim, ok := mulChecked(72, m)
	if !ok {
		return false
	}
	return ceilLog(int64(alg.A()), lim) <= int64(r)-2
}

// KForM returns the paper's segment parameter k = ⌈log_a 72M⌉, the
// smallest k with aᵏ ≥ 72M (i.e. aᵏ ≥ 2·36M). When 72M overflows int64
// the exact k is not representable through this path; the returned
// value is ⌈log_a MaxInt64⌉, a lower bound on the true k (such M is out
// of regime for every reachable r anyway, see RegimeOK).
func KForM(alg *bilinear.Algorithm, m int64) int {
	lim, ok := mulChecked(72, m)
	if !ok {
		lim = math.MaxInt64
	}
	return int(ceilLog(int64(alg.A()), lim))
}

// ceilLog returns ⌈log_base(x)⌉ computed in integers. The running
// power is guarded against wrapping: its predecessor in the seed
// (`v *= base` unchecked) wrapped through zero near 2⁶³ and looped
// forever on large x.
func ceilLog(base, x int64) int64 {
	if base < 2 {
		panic(fmt.Errorf("bounds: ceilLog base %d", base))
	}
	if x <= 1 {
		return 0
	}
	var k int64
	v := int64(1)
	for v < x {
		if v > math.MaxInt64/base {
			// v·base would exceed MaxInt64 ≥ x, so one more step
			// reaches x: done without forming the product.
			return k + 1
		}
		v *= base
		k++
	}
	return k
}

// ArithmeticOps returns the exact number of arithmetic operations
// (scalar multiplications plus additions) the recursive algorithm
// performs on n₀^r × n₀^r matrices, computed from the nonzero counts of
// U, V, W: each recursion level performs one scalar operation per
// nonzero per suffix, and the b^r base products one multiplication
// each. Useful for Θ(n^ω₀) sanity checks and flop/word intensity.
// It saturates to math.MaxInt64 when the exact count overflows int64;
// ArithmeticOpsChecked reports the overflow as an error instead.
func ArithmeticOps(alg *bilinear.Algorithm, r int) int64 {
	v, err := ArithmeticOpsChecked(alg, r)
	if err != nil {
		return math.MaxInt64
	}
	return v
}

// ArithmeticOpsChecked is ArithmeticOps with overflow-checked
// arithmetic, returning ErrOverflow (wrapped) when the exact operation
// count does not fit int64.
func ArithmeticOpsChecked(alg *bilinear.Algorithm, r int) (int64, error) {
	a, b := int64(alg.A()), int64(alg.B())
	nnz := func(m [][]rat.Rat) int64 {
		var c int64
		for _, row := range m {
			for _, x := range row {
				if !x.IsZero() {
					c++
				}
			}
		}
		return c
	}
	levelOps := nnz(alg.U) + nnz(alg.V) + nnz(alg.W)
	overflow := func() (int64, error) {
		return 0, fmt.Errorf("%w: arithmetic ops of %s at r=%d", ErrOverflow, alg.Name, r)
	}
	total, err := powChecked(b, int64(r)) // the multiplications
	if err != nil {
		return overflow()
	}
	powA, err := powChecked(a, int64(r))
	if err != nil {
		return overflow()
	}
	powB := int64(1) // b^j
	for j := 1; j <= r; j++ {
		var ok bool
		if powB, ok = mulChecked(powB, b); !ok {
			return overflow()
		}
		powA /= a
		// Rank j: for each of b^(j-1) prefixes and a^(r-j) suffixes,
		// one operation per nonzero of the applied row (encoding and
		// decoding alike).
		term, ok := mulChecked(powB/b, powA)
		if ok {
			term, ok = mulChecked(term, levelOps)
		}
		if ok {
			total, ok = addChecked(total, term)
		}
		if !ok {
			return overflow()
		}
	}
	return total, nil
}

// MinFeasibleM returns the smallest cache size at which the pebble
// machine can execute any schedule of the algorithm's CDAG: the largest
// fan-in plus one (all parents and the result must be resident).
func MinFeasibleM(alg *bilinear.Algorithm) int {
	maxIn := 2 // product vertices have 2 parents
	count := func(m [][]rat.Rat) {
		for _, row := range m {
			nnz := 0
			for _, x := range row {
				if !x.IsZero() {
					nnz++
				}
			}
			if nnz > maxIn {
				maxIn = nnz
			}
		}
	}
	count(alg.U)
	count(alg.V)
	count(alg.W)
	return maxIn + 1
}
