package bounds

import (
	"errors"
	"math"
	"testing"

	"pathrouting/internal/bilinear"
)

func TestTheorem1SequentialShape(t *testing.T) {
	w := bilinear.Strassen().Omega0()
	// Doubling n multiplies the bound by 2^ω₀ in the asymptotic regime.
	m := 1024.0
	b1 := Theorem1Sequential(w, 1<<12, m)
	b2 := Theorem1Sequential(w, 1<<13, m)
	ratio := b2 / b1
	if math.Abs(ratio-math.Pow(2, w)) > 1e-9 {
		t.Errorf("n-doubling ratio %v, want %v", ratio, math.Pow(2, w))
	}
	// Growing M lowers the bound (ω₀ > 2).
	if Theorem1Sequential(w, 1<<12, 4*m) >= b1 {
		t.Error("bound must decrease in M")
	}
	// Huge cache: compulsory floor.
	n := 64.0
	if got := Theorem1Sequential(w, n, n*n*10); got != 3*n*n {
		t.Errorf("compulsory floor = %v", got)
	}
	if Theorem1Sequential(w, 0, m) != 0 || Theorem1Sequential(w, 64, 0) != 0 {
		t.Error("degenerate inputs must be 0")
	}
}

func TestParallelDividesByP(t *testing.T) {
	w := bilinear.Strassen().Omega0()
	seq := Theorem1Sequential(w, 1<<12, 1024)
	if got := Theorem1Parallel(w, 1<<12, 1024, 16); math.Abs(got-seq/16) > 1e-9 {
		t.Errorf("parallel bound %v", got)
	}
	if Theorem1Parallel(w, 1<<12, 1024, 0) != 0 {
		t.Error("p=0 must be 0")
	}
}

func TestMemoryIndependentScaling(t *testing.T) {
	w := bilinear.Strassen().Omega0()
	n := 4096.0
	b1 := MemoryIndependent(w, n, 1)
	if b1 != n*n {
		t.Errorf("P=1 bound %v, want n²", b1)
	}
	// P-scaling exponent is 2/ω₀.
	b4 := MemoryIndependent(w, n, 4)
	want := n * n / math.Pow(4, 2/w)
	if math.Abs(b4-want) > 1e-6 {
		t.Errorf("P=4 bound %v, want %v", b4, want)
	}
}

func TestHongKungDominatesFastBoundAtSmallN(t *testing.T) {
	// Classical moves more words asymptotically: for fixed M, at large n
	// the classical bound exceeds the Strassen bound.
	w := bilinear.Strassen().Omega0()
	m := 4096.0
	n := math.Pow(2, 20)
	if HongKungClassical(n, m) <= Theorem1Sequential(w, n, m) {
		t.Error("classical bound must dominate at large n")
	}
}

func TestProofSequentialRegime(t *testing.T) {
	alg := bilinear.Strassen()
	// In regime: r large relative to M.
	if got := ProofSequential(alg, 20, 64); got <= 0 {
		t.Errorf("in-regime proof bound %d", got)
	}
	// Out of regime: M huge.
	if got := ProofSequential(alg, 4, 1<<40); got != 0 {
		t.Errorf("out-of-regime proof bound %d", got)
	}
	// Bound is a multiple of M.
	if got := ProofSequential(alg, 20, 64); got%64 != 0 {
		t.Errorf("proof bound %d not a multiple of M", got)
	}
}

func TestProofSection5Strassen(t *testing.T) {
	if got := ProofSection5Strassen(20, 64); got <= 0 {
		t.Errorf("section 5 bound %d", got)
	}
	// The general Section 6 constants are weaker (larger k, 1/b² loss):
	// Section 5's Strassen-specific bound must be at least as strong.
	if s5, s6 := ProofSection5Strassen(20, 64), ProofSequential(bilinear.Strassen(), 20, 64); s5 < s6 {
		t.Errorf("section5 %d < section6 %d", s5, s6)
	}
}

func TestDFSUpperBoundWithinConstantOfLowerBound(t *testing.T) {
	// Upper and lower bounds must be within a constant factor — the
	// optimality statement of the paper (via [3]). Check the ratio stays
	// bounded as n grows.
	alg := bilinear.Strassen()
	w := alg.Omega0()
	m := 4096.0
	var prevRatio float64
	for e := 10; e <= 24; e += 2 {
		n := math.Pow(2, float64(e))
		ub := DFSUpperBound(alg, n, m)
		lb := Theorem1Sequential(w, n, m)
		ratio := ub / lb
		if ratio < 1 {
			t.Errorf("n=2^%d: upper bound %v below lower bound %v", e, ub, lb)
		}
		if ratio > 200 {
			t.Errorf("n=2^%d: ratio %v unbounded", e, ratio)
		}
		prevRatio = ratio
	}
	_ = prevRatio
	// Tiny problem: fits in cache.
	if got := DFSUpperBound(alg, 8, 1024); got != 3*64 {
		t.Errorf("in-cache upper bound %v", got)
	}
}

func TestCrossoverN(t *testing.T) {
	w := bilinear.Strassen().Omega0()
	m := 4096.0
	n := CrossoverN(w, m)
	if n <= 1 {
		t.Fatalf("crossover %v", n)
	}
	// Just below: classical wins; just above: fast wins.
	below, above := n/2, n*2
	fast := func(x float64) float64 { return math.Pow(x/math.Sqrt(m), w) * m }
	classical := func(x float64) float64 { return x * x * x / math.Sqrt(m) }
	if fast(below) < classical(below) {
		t.Errorf("below crossover fast already wins")
	}
	if fast(above) > classical(above) {
		t.Errorf("above crossover fast still loses")
	}
	// Crossover grows with M.
	if CrossoverN(w, 4*m) <= n {
		t.Error("crossover must grow with M")
	}
	// Classical never crosses itself.
	if CrossoverN(3.0, m) != 0 {
		t.Error("ω₀=3 has no crossover")
	}
}

func TestKForMMatchesDefinition(t *testing.T) {
	alg := bilinear.Strassen() // a = 4
	for _, m := range []int64{1, 2, 64, 1000, 4096} {
		k := KForM(alg, m)
		// Smallest k with 4^k ≥ 72M.
		p := int64(1)
		for i := 0; i < k; i++ {
			p *= 4
		}
		if p < 72*m {
			t.Errorf("M=%d: 4^%d = %d < 72M", m, k, p)
		}
		if k > 0 {
			if p/4 >= 72*m {
				t.Errorf("M=%d: k=%d not minimal", m, k)
			}
		}
	}
}

func TestRegimeOK(t *testing.T) {
	alg := bilinear.Strassen()
	if !RegimeOK(alg, 20, 64) {
		t.Error("r=20 M=64 must be in regime")
	}
	if RegimeOK(alg, 4, 1<<30) {
		t.Error("tiny r huge M must be out of regime")
	}
}

func TestCeilLogAndPow(t *testing.T) {
	if ceilLog(4, 1) != 0 || ceilLog(4, 4) != 1 || ceilLog(4, 5) != 2 || ceilLog(2, 1024) != 10 {
		t.Error("ceilLog wrong")
	}
	if p, err := powChecked(7, 3); err != nil || p != 343 {
		t.Errorf("powChecked(7,3) = %d, %v", p, err)
	}
	if p, err := powChecked(5, 0); err != nil || p != 1 {
		t.Errorf("powChecked(5,0) = %d, %v", p, err)
	}
	if _, err := powChecked(7, 23); !errors.Is(err, ErrOverflow) { // 7²³ ≈ 2.7e19 > 2⁶³
		t.Errorf("powChecked(7,23) err = %v, want ErrOverflow", err)
	}
	if p, err := powChecked(7, 22); err != nil || p != 3909821048582988049 {
		t.Errorf("powChecked(7,22) = %d, %v", p, err) // largest power of 7 in int64
	}
}

// TestCeilLogNearMaxInt64 is the regression test for the unguarded
// `v *= base` loop: with x beyond the largest representable power of
// the base, the running power wrapped through zero (for base 4,
// exactly to 0 at 4³² = 2⁶⁴) and the pre-fix loop never terminated.
func TestCeilLogNearMaxInt64(t *testing.T) {
	if got := ceilLog(4, math.MaxInt64); got != 32 { // 4³¹ < 2⁶³−1 ≤ 4³²
		t.Errorf("ceilLog(4, MaxInt64) = %d, want 32", got)
	}
	if got := ceilLog(2, math.MaxInt64); got != 63 {
		t.Errorf("ceilLog(2, MaxInt64) = %d, want 63", got)
	}
	if got := ceilLog(7, math.MaxInt64); got != 23 {
		t.Errorf("ceilLog(7, MaxInt64) = %d, want 23", got)
	}
	// One below the boundary still takes the untruncated path.
	if got := ceilLog(2, 1<<62); got != 62 {
		t.Errorf("ceilLog(2, 2⁶²) = %d, want 62", got)
	}
}

// TestProofBoundsOverflow pins the first overflowing (r, M) points of
// the closed-form proof bounds. The pre-fix code formed the products
// with wrapping multiplication and returned garbage there; now the
// Checked variants report ErrOverflow and the plain ones saturate to
// the MaxInt64 sentinel.
func TestProofBoundsOverflow(t *testing.T) {
	// Section 5, M=1: k = ⌈log₄ 132⌉ = 4, counted = 256·7^(r−4);
	// r=23 is the last fit (256·7¹⁹ ≈ 2.9e18), r=24 overflows.
	if v, err := ProofSection5StrassenChecked(23, 1); err != nil || v <= 0 || v == math.MaxInt64 {
		t.Errorf("r=23 (last in-range): %d, %v", v, err)
	}
	if _, err := ProofSection5StrassenChecked(24, 1); !errors.Is(err, ErrOverflow) {
		t.Errorf("r=24 err = %v, want ErrOverflow", err)
	}
	if got := ProofSection5Strassen(24, 1); got != math.MaxInt64 {
		t.Errorf("r=24 sentinel = %d, want MaxInt64", got)
	}

	// Section 6 (Strassen a=4, b=7), M=1: k = ⌈log₄ 72⌉ = 4,
	// counted = 3·256·7^(r−6); r=25 fits (768·7¹⁹ ≈ 8.8e18), r=26 overflows.
	alg := bilinear.Strassen()
	if v, err := ProofSequentialChecked(alg, 25, 1); err != nil || v <= 0 || v == math.MaxInt64 {
		t.Errorf("sequential r=25 (last in-range): %d, %v", v, err)
	}
	if _, err := ProofSequentialChecked(alg, 26, 1); !errors.Is(err, ErrOverflow) {
		t.Errorf("sequential r=26 err = %v, want ErrOverflow", err)
	}
	if got := ProofSequential(alg, 26, 1); got != math.MaxInt64 {
		t.Errorf("sequential r=26 sentinel = %d, want MaxInt64", got)
	}

	// M itself too large to form 72M / 132M.
	hugeM := int64(math.MaxInt64/72 + 1)
	if _, err := ProofSequentialChecked(alg, 30, hugeM); !errors.Is(err, ErrOverflow) {
		t.Errorf("72M-overflow err = %v, want ErrOverflow", err)
	}
}

// TestRegimeAndKForMOverflow: the regime test and segment parameter
// formed 72·M unchecked; an M near MaxInt64 wrapped it negative,
// making ceilLog return 0 and RegimeOK report huge caches as in-regime.
func TestRegimeAndKForMOverflow(t *testing.T) {
	alg := bilinear.Strassen()
	hugeM := int64(math.MaxInt64/72 + 1)
	if RegimeOK(alg, 1000, hugeM) {
		t.Error("RegimeOK accepted an M with 72M overflowing int64")
	}
	if got := KForM(alg, hugeM); got != 32 { // ⌈log₄ MaxInt64⌉ fallback
		t.Errorf("KForM(hugeM) = %d, want 32", got)
	}
	// Well below overflow the definition still holds exactly.
	if got := KForM(alg, math.MaxInt64/72); got != 32 {
		t.Errorf("KForM(MaxInt64/72) = %d, want 32", got)
	}
}

// TestArithmeticOpsOverflow finds the first overflowing r dynamically
// and pins the saturation sentinel there; pre-fix the count wrapped.
func TestArithmeticOpsOverflow(t *testing.T) {
	alg := bilinear.Strassen()
	firstBad := 0
	for r := 1; r <= 40; r++ {
		if _, err := ArithmeticOpsChecked(alg, r); err != nil {
			if !errors.Is(err, ErrOverflow) {
				t.Fatalf("r=%d: unexpected error %v", r, err)
			}
			firstBad = r
			break
		}
	}
	if firstBad == 0 {
		t.Fatal("no overflowing r found up to 40 — test is vacuous")
	}
	// 7^r alone passes int64 at r=23, so overflow must hit by then.
	if firstBad > 23 {
		t.Errorf("first overflow at r=%d, expected ≤ 23", firstBad)
	}
	last, err := ArithmeticOpsChecked(alg, firstBad-1)
	if err != nil || last <= 0 || last == math.MaxInt64 {
		t.Errorf("r=%d (last in-range): %d, %v", firstBad-1, last, err)
	}
	if got := ArithmeticOps(alg, firstBad); got != math.MaxInt64 {
		t.Errorf("r=%d sentinel = %d, want MaxInt64", firstBad, got)
	}
	if got := ArithmeticOps(alg, firstBad-1); got != last {
		t.Errorf("unchecked/checked disagree in range: %d vs %d", got, last)
	}
}

func TestArithmeticOpsStrassen(t *testing.T) {
	alg := bilinear.Strassen()
	// r=1: encoding nonzeros U=12, V=12; decoding W=12; products 7:
	// total = 12+12+12+7 = 43.
	if got := ArithmeticOps(alg, 1); got != 43 {
		t.Errorf("r=1 ops = %d, want 43", got)
	}
	// Growth ratio approaches b = 7.
	r5, r6 := ArithmeticOps(alg, 5), ArithmeticOps(alg, 6)
	ratio := float64(r6) / float64(r5)
	if ratio < 7 || ratio > 7.6 {
		t.Errorf("ops growth %v, want ≈7", ratio)
	}
}

func TestArithmeticOpsClassical(t *testing.T) {
	alg := bilinear.Classical(2)
	// Θ(n³) growth: the per-level ratio converges to b = 8 (from above,
	// since the lower-order addition terms shrink relative to b^r).
	r4, r5 := ArithmeticOps(alg, 4), ArithmeticOps(alg, 5)
	ratio := float64(r5) / float64(r4)
	if ratio < 7.8 || ratio > 8.4 {
		t.Errorf("classical ops growth %v, want ≈8", ratio)
	}
}

func TestMinFeasibleM(t *testing.T) {
	// Strassen: widest row is C11 or the 4-term rows: 4 nonzeros → 5.
	if got := MinFeasibleM(bilinear.Strassen()); got != 5 {
		t.Errorf("strassen MinFeasibleM = %d, want 5", got)
	}
	// Classical: rows have 1 (enc) or n0 (dec) nonzeros → n0+1 = 3.
	if got := MinFeasibleM(bilinear.Classical(2)); got != 3 {
		t.Errorf("classical MinFeasibleM = %d, want 3", got)
	}
}
