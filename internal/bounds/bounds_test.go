package bounds

import (
	"math"
	"testing"

	"pathrouting/internal/bilinear"
)

func TestTheorem1SequentialShape(t *testing.T) {
	w := bilinear.Strassen().Omega0()
	// Doubling n multiplies the bound by 2^ω₀ in the asymptotic regime.
	m := 1024.0
	b1 := Theorem1Sequential(w, 1<<12, m)
	b2 := Theorem1Sequential(w, 1<<13, m)
	ratio := b2 / b1
	if math.Abs(ratio-math.Pow(2, w)) > 1e-9 {
		t.Errorf("n-doubling ratio %v, want %v", ratio, math.Pow(2, w))
	}
	// Growing M lowers the bound (ω₀ > 2).
	if Theorem1Sequential(w, 1<<12, 4*m) >= b1 {
		t.Error("bound must decrease in M")
	}
	// Huge cache: compulsory floor.
	n := 64.0
	if got := Theorem1Sequential(w, n, n*n*10); got != 3*n*n {
		t.Errorf("compulsory floor = %v", got)
	}
	if Theorem1Sequential(w, 0, m) != 0 || Theorem1Sequential(w, 64, 0) != 0 {
		t.Error("degenerate inputs must be 0")
	}
}

func TestParallelDividesByP(t *testing.T) {
	w := bilinear.Strassen().Omega0()
	seq := Theorem1Sequential(w, 1<<12, 1024)
	if got := Theorem1Parallel(w, 1<<12, 1024, 16); math.Abs(got-seq/16) > 1e-9 {
		t.Errorf("parallel bound %v", got)
	}
	if Theorem1Parallel(w, 1<<12, 1024, 0) != 0 {
		t.Error("p=0 must be 0")
	}
}

func TestMemoryIndependentScaling(t *testing.T) {
	w := bilinear.Strassen().Omega0()
	n := 4096.0
	b1 := MemoryIndependent(w, n, 1)
	if b1 != n*n {
		t.Errorf("P=1 bound %v, want n²", b1)
	}
	// P-scaling exponent is 2/ω₀.
	b4 := MemoryIndependent(w, n, 4)
	want := n * n / math.Pow(4, 2/w)
	if math.Abs(b4-want) > 1e-6 {
		t.Errorf("P=4 bound %v, want %v", b4, want)
	}
}

func TestHongKungDominatesFastBoundAtSmallN(t *testing.T) {
	// Classical moves more words asymptotically: for fixed M, at large n
	// the classical bound exceeds the Strassen bound.
	w := bilinear.Strassen().Omega0()
	m := 4096.0
	n := math.Pow(2, 20)
	if HongKungClassical(n, m) <= Theorem1Sequential(w, n, m) {
		t.Error("classical bound must dominate at large n")
	}
}

func TestProofSequentialRegime(t *testing.T) {
	alg := bilinear.Strassen()
	// In regime: r large relative to M.
	if got := ProofSequential(alg, 20, 64); got <= 0 {
		t.Errorf("in-regime proof bound %d", got)
	}
	// Out of regime: M huge.
	if got := ProofSequential(alg, 4, 1<<40); got != 0 {
		t.Errorf("out-of-regime proof bound %d", got)
	}
	// Bound is a multiple of M.
	if got := ProofSequential(alg, 20, 64); got%64 != 0 {
		t.Errorf("proof bound %d not a multiple of M", got)
	}
}

func TestProofSection5Strassen(t *testing.T) {
	if got := ProofSection5Strassen(20, 64); got <= 0 {
		t.Errorf("section 5 bound %d", got)
	}
	// The general Section 6 constants are weaker (larger k, 1/b² loss):
	// Section 5's Strassen-specific bound must be at least as strong.
	if s5, s6 := ProofSection5Strassen(20, 64), ProofSequential(bilinear.Strassen(), 20, 64); s5 < s6 {
		t.Errorf("section5 %d < section6 %d", s5, s6)
	}
}

func TestDFSUpperBoundWithinConstantOfLowerBound(t *testing.T) {
	// Upper and lower bounds must be within a constant factor — the
	// optimality statement of the paper (via [3]). Check the ratio stays
	// bounded as n grows.
	alg := bilinear.Strassen()
	w := alg.Omega0()
	m := 4096.0
	var prevRatio float64
	for e := 10; e <= 24; e += 2 {
		n := math.Pow(2, float64(e))
		ub := DFSUpperBound(alg, n, m)
		lb := Theorem1Sequential(w, n, m)
		ratio := ub / lb
		if ratio < 1 {
			t.Errorf("n=2^%d: upper bound %v below lower bound %v", e, ub, lb)
		}
		if ratio > 200 {
			t.Errorf("n=2^%d: ratio %v unbounded", e, ratio)
		}
		prevRatio = ratio
	}
	_ = prevRatio
	// Tiny problem: fits in cache.
	if got := DFSUpperBound(alg, 8, 1024); got != 3*64 {
		t.Errorf("in-cache upper bound %v", got)
	}
}

func TestCrossoverN(t *testing.T) {
	w := bilinear.Strassen().Omega0()
	m := 4096.0
	n := CrossoverN(w, m)
	if n <= 1 {
		t.Fatalf("crossover %v", n)
	}
	// Just below: classical wins; just above: fast wins.
	below, above := n/2, n*2
	fast := func(x float64) float64 { return math.Pow(x/math.Sqrt(m), w) * m }
	classical := func(x float64) float64 { return x * x * x / math.Sqrt(m) }
	if fast(below) < classical(below) {
		t.Errorf("below crossover fast already wins")
	}
	if fast(above) > classical(above) {
		t.Errorf("above crossover fast still loses")
	}
	// Crossover grows with M.
	if CrossoverN(w, 4*m) <= n {
		t.Error("crossover must grow with M")
	}
	// Classical never crosses itself.
	if CrossoverN(3.0, m) != 0 {
		t.Error("ω₀=3 has no crossover")
	}
}

func TestKForMMatchesDefinition(t *testing.T) {
	alg := bilinear.Strassen() // a = 4
	for _, m := range []int64{1, 2, 64, 1000, 4096} {
		k := KForM(alg, m)
		// Smallest k with 4^k ≥ 72M.
		p := int64(1)
		for i := 0; i < k; i++ {
			p *= 4
		}
		if p < 72*m {
			t.Errorf("M=%d: 4^%d = %d < 72M", m, k, p)
		}
		if k > 0 {
			if p/4 >= 72*m {
				t.Errorf("M=%d: k=%d not minimal", m, k)
			}
		}
	}
}

func TestRegimeOK(t *testing.T) {
	alg := bilinear.Strassen()
	if !RegimeOK(alg, 20, 64) {
		t.Error("r=20 M=64 must be in regime")
	}
	if RegimeOK(alg, 4, 1<<30) {
		t.Error("tiny r huge M must be out of regime")
	}
}

func TestCeilLogAndPow(t *testing.T) {
	if ceilLog(4, 1) != 0 || ceilLog(4, 4) != 1 || ceilLog(4, 5) != 2 || ceilLog(2, 1024) != 10 {
		t.Error("ceilLog wrong")
	}
	if pow(7, 3) != 343 || pow(5, 0) != 1 {
		t.Error("pow wrong")
	}
}

func TestArithmeticOpsStrassen(t *testing.T) {
	alg := bilinear.Strassen()
	// r=1: encoding nonzeros U=12, V=12; decoding W=12; products 7:
	// total = 12+12+12+7 = 43.
	if got := ArithmeticOps(alg, 1); got != 43 {
		t.Errorf("r=1 ops = %d, want 43", got)
	}
	// Growth ratio approaches b = 7.
	r5, r6 := ArithmeticOps(alg, 5), ArithmeticOps(alg, 6)
	ratio := float64(r6) / float64(r5)
	if ratio < 7 || ratio > 7.6 {
		t.Errorf("ops growth %v, want ≈7", ratio)
	}
}

func TestArithmeticOpsClassical(t *testing.T) {
	alg := bilinear.Classical(2)
	// Θ(n³) growth: the per-level ratio converges to b = 8 (from above,
	// since the lower-order addition terms shrink relative to b^r).
	r4, r5 := ArithmeticOps(alg, 4), ArithmeticOps(alg, 5)
	ratio := float64(r5) / float64(r4)
	if ratio < 7.8 || ratio > 8.4 {
		t.Errorf("classical ops growth %v, want ≈8", ratio)
	}
}

func TestMinFeasibleM(t *testing.T) {
	// Strassen: widest row is C11 or the 4-term rows: 4 nonzeros → 5.
	if got := MinFeasibleM(bilinear.Strassen()); got != 5 {
		t.Errorf("strassen MinFeasibleM = %d, want 5", got)
	}
	// Classical: rows have 1 (enc) or n0 (dec) nonzeros → n0+1 = 3.
	if got := MinFeasibleM(bilinear.Classical(2)); got != 3 {
		t.Errorf("classical MinFeasibleM = %d, want 3", got)
	}
}
