package matrix

import (
	"math/rand"
	"testing"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/rat"
)

func TestMulExactSmall(t *testing.T) {
	a := NewExact(2, 2)
	a.Set(0, 0, rat.New(1, 2))
	a.Set(0, 1, rat.Int(2))
	a.Set(1, 0, rat.Int(3))
	a.Set(1, 1, rat.New(-1, 3))
	b := NewExact(2, 2)
	b.Set(0, 0, rat.Int(4))
	b.Set(1, 1, rat.Int(6))
	c := MulExact(a, b)
	if !c.At(0, 0).Equal(rat.Int(2)) || !c.At(0, 1).Equal(rat.Int(12)) ||
		!c.At(1, 0).Equal(rat.Int(12)) || !c.At(1, 1).Equal(rat.Int(-2)) {
		t.Fatalf("c = %v", c.Data)
	}
}

func TestFastExactEqualsClassicalExactly(t *testing.T) {
	// The point of the exact demo: Strassen-like recombination over Q
	// is *exactly* equal to classical multiplication, entry for entry,
	// with zero tolerance.
	rng := rand.New(rand.NewSource(8))
	for _, alg := range []*bilinear.Algorithm{bilinear.Strassen(), bilinear.Winograd()} {
		for _, n := range []int{4, 8, 16} {
			a, b := RandomExact(n, n, rng), RandomExact(n, n, rng)
			want := MulExact(a, b)
			got := FastExact(alg, a, b, 2)
			if !got.Equal(want) {
				t.Fatalf("%s n=%d: exact mismatch", alg.Name, n)
			}
		}
	}
}

func TestFastExactLaderman(t *testing.T) {
	lad, err := bilinear.Laderman()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	a, b := RandomExact(9, 9, rng), RandomExact(9, 9, rng)
	if !FastExact(lad, a, b, 3).Equal(MulExact(a, b)) {
		t.Fatal("laderman exact mismatch")
	}
}

func TestExactEqualShapeMismatch(t *testing.T) {
	if NewExact(2, 2).Equal(NewExact(2, 3)) {
		t.Fatal("shape mismatch equal")
	}
}

func TestExactPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewExact(-1, 2) },
		func() { MulExact(NewExact(2, 3), NewExact(2, 3)) },
		func() { FastExact(bilinear.Strassen(), NewExact(2, 3), NewExact(3, 2), 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}
