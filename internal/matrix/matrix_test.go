package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pathrouting/internal/bilinear"
)

func TestMulSmall(t *testing.T) {
	a := &Dense{Rows: 2, Cols: 2, Data: []float64{1, 2, 3, 4}}
	b := &Dense{Rows: 2, Cols: 2, Data: []float64{5, 6, 7, 8}}
	c := Mul(a, b)
	want := []float64{19, 22, 43, 50}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("c = %v", c.Data)
		}
	}
}

func TestMulRectangular(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := Random(3, 5, rng)
	b := Random(5, 7, rng)
	c := Mul(a, b)
	if c.Rows != 3 || c.Cols != 7 {
		t.Fatalf("shape %d×%d", c.Rows, c.Cols)
	}
	// Entry check against direct definition.
	for i := 0; i < 3; i++ {
		for j := 0; j < 7; j++ {
			var want float64
			for k := 0; k < 5; k++ {
				want += a.At(i, k) * b.At(k, j)
			}
			if d := c.At(i, j) - want; d > 1e-12 || d < -1e-12 {
				t.Fatalf("c[%d,%d] off by %v", i, j, d)
			}
		}
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Mul(NewDense(2, 3), NewDense(2, 3))
}

func TestBlockedMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 7, 16, 33, 64} {
		a, b := Random(n, n, rng), Random(n, n, rng)
		want := Mul(a, b)
		for _, bs := range []int{1, 4, 8, 100} {
			got := MulBlocked(a, b, bs)
			if !got.Equalish(want, 1e-9) {
				t.Errorf("n=%d bs=%d: mismatch %v", n, bs, got.MaxAbsDiff(want))
			}
		}
	}
}

func TestFastMatchesMulForAllAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	algs := bilinear.All()
	for _, alg := range algs {
		n := alg.N0 * alg.N0 * 2 // two recursion levels plus a ragged cutoff
		a, b := Random(n, n, rng), Random(n, n, rng)
		want := Mul(a, b)
		got := Fast(alg, a, b, 2)
		if !got.Equalish(want, 1e-6) {
			t.Errorf("%s: max diff %v", alg.Name, got.MaxAbsDiff(want))
		}
	}
}

func TestFastWithPadding(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	// 13 is not a power of 2 multiple of the cutoff: forces padding.
	a, b := Random(13, 13, rng), Random(13, 13, rng)
	want := Mul(a, b)
	got := Fast(bilinear.Strassen(), a, b, 2)
	if !got.Equalish(want, 1e-9) {
		t.Fatalf("padding path wrong by %v", got.MaxAbsDiff(want))
	}
}

func TestFastDeepRecursion(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a, b := Random(64, 64, rng), Random(64, 64, rng)
	want := Mul(a, b)
	got := Fast(bilinear.Strassen(), a, b, 1)
	if !got.Equalish(want, 1e-7) {
		t.Fatalf("deep recursion wrong by %v", got.MaxAbsDiff(want))
	}
	got = Fast(bilinear.Winograd(), a, b, 4)
	if !got.Equalish(want, 1e-7) {
		t.Fatalf("winograd wrong by %v", got.MaxAbsDiff(want))
	}
}

func TestFastQuickAgainstClassical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(24)
		a, b := Random(n, n, rng), Random(n, n, rng)
		return Fast(bilinear.Strassen(), a, b, 3).Equalish(Mul(a, b), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := NewDense(2, 2)
	c := a.Clone()
	c.Set(0, 0, 5)
	if a.At(0, 0) != 0 {
		t.Fatal("clone aliases original")
	}
}

func TestEqualishShapeMismatch(t *testing.T) {
	if NewDense(2, 2).Equalish(NewDense(2, 3), 1) {
		t.Fatal("shape mismatch equal")
	}
}

func TestFastParallelMatchesFast(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for _, n := range []int{16, 33, 64} {
		a, b := Random(n, n, rng), Random(n, n, rng)
		want := Mul(a, b)
		for _, workers := range []int{1, 4, 0} {
			got := FastParallel(bilinear.Strassen(), a, b, 8, workers)
			if !got.Equalish(want, 1e-8) {
				t.Fatalf("n=%d workers=%d: max diff %v", n, workers, got.MaxAbsDiff(want))
			}
		}
	}
}

func TestFastParallelSmallFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	a, b := Random(4, 4, rng), Random(4, 4, rng)
	if !FastParallel(bilinear.Strassen(), a, b, 8, 2).Equalish(Mul(a, b), 1e-10) {
		t.Fatal("small-case fallback wrong")
	}
}
