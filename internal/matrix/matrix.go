// Package matrix provides the dense numeric substrate of the
// reproduction: float64 matrices with classical, cache-blocked, and
// recursive fast multiplication, the latter driven by any bilinear
// algorithm from the catalog. It grounds the combinatorial results in
// executable arithmetic (every CDAG and routing statement is about the
// dependencies of exactly these computations) and powers the crossover
// benchmarks of classical versus Strassen-like multiplication.
package matrix

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/rat"
)

// Dense is a row-major n×m matrix of float64.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense returns a zero matrix of the given shape.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Errorf("matrix: negative shape %d×%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Random returns a matrix with entries uniform in [-1, 1).
func Random(rows, cols int, rng *rand.Rand) *Dense {
	m := NewDense(rows, cols)
	for i := range m.Data {
		m.Data[i] = 2*rng.Float64() - 1
	}
	return m
}

// At returns the (i, j) entry.
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the (i, j) entry.
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Equalish reports whether m and o agree entrywise within tol.
func (m *Dense) Equalish(o *Dense, tol float64) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i := range m.Data {
		if math.Abs(m.Data[i]-o.Data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest entrywise absolute difference.
func (m *Dense) MaxAbsDiff(o *Dense) float64 {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return math.Inf(1)
	}
	var d float64
	for i := range m.Data {
		if v := math.Abs(m.Data[i] - o.Data[i]); v > d {
			d = v
		}
	}
	return d
}

// Mul returns a·b by the classical triple loop (ikj order for locality).
// It panics on shape mismatch.
func Mul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Errorf("matrix: Mul shapes %d×%d · %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		ci := c.Data[i*c.Cols : (i+1)*c.Cols]
		for k := 0; k < a.Cols; k++ {
			aik := a.Data[i*a.Cols+k]
			if aik == 0 {
				continue
			}
			bk := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j := range ci {
				ci[j] += aik * bk[j]
			}
		}
	}
	return c
}

// MulBlocked returns a·b with square blocking of size bs — the cache
// layout corresponding to the classical Hong–Kung-optimal schedule
// (block size ≈ √(M/3)).
func MulBlocked(a, b *Dense, bs int) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Errorf("matrix: MulBlocked shapes %d×%d · %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if bs < 1 {
		panic(fmt.Errorf("matrix: block size %d", bs))
	}
	c := NewDense(a.Rows, b.Cols)
	for ii := 0; ii < a.Rows; ii += bs {
		iMax := min(ii+bs, a.Rows)
		for kk := 0; kk < a.Cols; kk += bs {
			kMax := min(kk+bs, a.Cols)
			for jj := 0; jj < b.Cols; jj += bs {
				jMax := min(jj+bs, b.Cols)
				for i := ii; i < iMax; i++ {
					for k := kk; k < kMax; k++ {
						aik := a.Data[i*a.Cols+k]
						if aik == 0 {
							continue
						}
						ci := c.Data[i*c.Cols+jj : i*c.Cols+jMax]
						bk := b.Data[k*b.Cols+jj : k*b.Cols+jMax]
						for j := range ci {
							ci[j] += aik * bk[j]
						}
					}
				}
			}
		}
	}
	return c
}

// Fast multiplies two square matrices with the recursive Strassen-like
// algorithm alg, recursing while the dimension exceeds cutoff and is
// divisible by n₀, and falling back to classical multiplication below.
// Matrices whose dimension is not a power-of-n₀ multiple of the cutoff
// are padded internally. This is the arithmetic realization of the
// schedule whose I/O the paper bounds.
func Fast(alg *bilinear.Algorithm, a, b *Dense, cutoff int) *Dense {
	if a.Rows != a.Cols || b.Rows != b.Cols || a.Rows != b.Rows {
		panic(fmt.Errorf("matrix: Fast wants equal square matrices, got %d×%d · %d×%d",
			a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if cutoff < 1 {
		cutoff = 1
	}
	n := a.Rows
	padded := padSize(n, alg.N0, cutoff)
	if padded != n {
		ap, bp := pad(a, padded), pad(b, padded)
		cp := fastRec(alg, ap, bp, cutoff)
		return crop(cp, n)
	}
	return fastRec(alg, a, b, cutoff)
}

// padSize returns the smallest s ≥ n of the form cutoff·n₀^e (or n when
// it already has that form with the quotient a power of n₀).
func padSize(n, n0, cutoff int) int {
	s := cutoff
	for s < n {
		s *= n0
	}
	return s
}

func pad(m *Dense, n int) *Dense {
	if m.Rows == n {
		return m
	}
	p := NewDense(n, n)
	for i := 0; i < m.Rows; i++ {
		copy(p.Data[i*n:i*n+m.Cols], m.Data[i*m.Cols:(i+1)*m.Cols])
	}
	return p
}

func crop(m *Dense, n int) *Dense {
	c := NewDense(n, n)
	for i := 0; i < n; i++ {
		copy(c.Data[i*n:(i+1)*n], m.Data[i*m.Rows:i*m.Rows+n])
	}
	return c
}

func fastRec(alg *bilinear.Algorithm, a, b *Dense, cutoff int) *Dense {
	n := a.Rows
	if n <= cutoff || n%alg.N0 != 0 {
		return Mul(a, b)
	}
	n0 := alg.N0
	sub := n / n0
	// Extract blocks.
	blockA := make([]*Dense, n0*n0)
	blockB := make([]*Dense, n0*n0)
	for i := 0; i < n0; i++ {
		for j := 0; j < n0; j++ {
			blockA[i*n0+j] = block(a, i, j, sub)
			blockB[i*n0+j] = block(b, i, j, sub)
		}
	}
	// Products of encoded combinations.
	products := make([]*Dense, alg.B())
	for t := 0; t < alg.B(); t++ {
		la := combine(alg.U[t], blockA, sub)
		lb := combine(alg.V[t], blockB, sub)
		products[t] = fastRec(alg, la, lb, cutoff)
	}
	// Decode.
	c := NewDense(n, n)
	for o := 0; o < n0*n0; o++ {
		co := combineProducts(alg.W[o], products, sub)
		placeBlock(c, co, o/n0, o%n0, sub)
	}
	return c
}

func block(m *Dense, bi, bj, sub int) *Dense {
	out := NewDense(sub, sub)
	for i := 0; i < sub; i++ {
		src := (bi*sub+i)*m.Cols + bj*sub
		copy(out.Data[i*sub:(i+1)*sub], m.Data[src:src+sub])
	}
	return out
}

func placeBlock(m *Dense, blk *Dense, bi, bj, sub int) {
	for i := 0; i < sub; i++ {
		dst := (bi*sub+i)*m.Cols + bj*sub
		copy(m.Data[dst:dst+sub], blk.Data[i*sub:(i+1)*sub])
	}
}

// combine returns Σ coeff[e]·blocks[e] for the nonzero coefficients.
func combine(coeffs []rat.Rat, blocks []*Dense, sub int) *Dense {
	out := NewDense(sub, sub)
	for e, c := range coeffs {
		if c.IsZero() {
			continue
		}
		f := c.Float64()
		blk := blocks[e]
		for i := range out.Data {
			out.Data[i] += f * blk.Data[i]
		}
	}
	return out
}

func combineProducts(coeffs []rat.Rat, products []*Dense, sub int) *Dense {
	out := NewDense(sub, sub)
	for t, c := range coeffs {
		if c.IsZero() {
			continue
		}
		f := c.Float64()
		blk := products[t]
		for i := range out.Data {
			out.Data[i] += f * blk.Data[i]
		}
	}
	return out
}

// FastParallel is Fast with the top-level subproducts computed
// concurrently by a bounded worker pool (workers ≤ 0 uses GOMAXPROCS).
// Deeper recursion levels stay sequential per branch — the b-way
// top-level fan-out already saturates typical core counts.
func FastParallel(alg *bilinear.Algorithm, a, b *Dense, cutoff, workers int) *Dense {
	if a.Rows != a.Cols || b.Rows != b.Cols || a.Rows != b.Rows {
		panic(fmt.Errorf("matrix: FastParallel wants equal square matrices"))
	}
	if cutoff < 1 {
		cutoff = 1
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := a.Rows
	padded := padSize(n, alg.N0, cutoff)
	ap, bp := pad(a, padded), pad(b, padded)
	if padded <= cutoff || padded%alg.N0 != 0 {
		return crop(Mul(ap, bp), n)
	}
	n0 := alg.N0
	sub := padded / n0
	blockA := make([]*Dense, n0*n0)
	blockB := make([]*Dense, n0*n0)
	for i := 0; i < n0; i++ {
		for j := 0; j < n0; j++ {
			blockA[i*n0+j] = block(ap, i, j, sub)
			blockB[i*n0+j] = block(bp, i, j, sub)
		}
	}
	products := make([]*Dense, alg.B())
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for t := 0; t < alg.B(); t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			la := combine(alg.U[t], blockA, sub)
			lb := combine(alg.V[t], blockB, sub)
			products[t] = fastRec(alg, la, lb, cutoff)
		}(t)
	}
	wg.Wait()
	c := NewDense(padded, padded)
	for o := 0; o < n0*n0; o++ {
		co := combineProducts(alg.W[o], products, sub)
		placeBlock(c, co, o/n0, o%n0, sub)
	}
	if padded != n {
		return crop(c, n)
	}
	return c
}
