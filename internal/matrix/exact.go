package matrix

// Exact rational matrices: the same classical/fast multiplication over
// the field Q instead of float64. Used to demonstrate that the
// recombination arithmetic of Strassen-like algorithms is exact (no
// stability caveats enter any claim of the paper) and as a reference
// oracle in tests.

import (
	"fmt"
	"math/rand"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/rat"
)

// Exact is a row-major matrix over the rationals.
type Exact struct {
	Rows, Cols int
	Data       []rat.Rat
}

// NewExact returns a zero rational matrix.
func NewExact(rows, cols int) *Exact {
	if rows < 0 || cols < 0 {
		panic(fmt.Errorf("matrix: negative shape %d×%d", rows, cols))
	}
	return &Exact{Rows: rows, Cols: cols, Data: make([]rat.Rat, rows*cols)}
}

// RandomExact returns a matrix of small random rationals (numerators in
// [-9, 9], denominators in [1, 4]).
func RandomExact(rows, cols int, rng *rand.Rand) *Exact {
	m := NewExact(rows, cols)
	for i := range m.Data {
		m.Data[i] = rat.New(rng.Int63n(19)-9, rng.Int63n(4)+1)
	}
	return m
}

// At returns the (i, j) entry.
func (m *Exact) At(i, j int) rat.Rat { return m.Data[i*m.Cols+j] }

// Set assigns the (i, j) entry.
func (m *Exact) Set(i, j int, v rat.Rat) { m.Data[i*m.Cols+j] = v }

// Equal reports exact entrywise equality.
func (m *Exact) Equal(o *Exact) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i := range m.Data {
		if !m.Data[i].Equal(o.Data[i]) {
			return false
		}
	}
	return true
}

// MulExact multiplies classically over Q.
func MulExact(a, b *Exact) *Exact {
	if a.Cols != b.Rows {
		panic(fmt.Errorf("matrix: MulExact shapes %d×%d · %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewExact(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			aik := a.At(i, k)
			if aik.IsZero() {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				if bv := b.At(k, j); !bv.IsZero() {
					c.Set(i, j, c.At(i, j).Add(aik.Mul(bv)))
				}
			}
		}
	}
	return c
}

// FastExact multiplies two square rational matrices with the recursive
// Strassen-like algorithm, exactly. The dimension must be a power of n₀
// times the cutoff reachability (no padding: exactness demos use exact
// shapes).
func FastExact(alg *bilinear.Algorithm, a, b *Exact, cutoff int) *Exact {
	if a.Rows != a.Cols || b.Rows != b.Cols || a.Rows != b.Rows {
		panic(fmt.Errorf("matrix: FastExact wants equal square matrices"))
	}
	if cutoff < 1 {
		cutoff = 1
	}
	return fastExactRec(alg, a, b, cutoff)
}

func fastExactRec(alg *bilinear.Algorithm, a, b *Exact, cutoff int) *Exact {
	n := a.Rows
	if n <= cutoff || n%alg.N0 != 0 {
		return MulExact(a, b)
	}
	n0 := alg.N0
	sub := n / n0
	blockA := make([]*Exact, n0*n0)
	blockB := make([]*Exact, n0*n0)
	for i := 0; i < n0; i++ {
		for j := 0; j < n0; j++ {
			blockA[i*n0+j] = exactBlock(a, i, j, sub)
			blockB[i*n0+j] = exactBlock(b, i, j, sub)
		}
	}
	products := make([]*Exact, alg.B())
	for t := 0; t < alg.B(); t++ {
		la := exactCombine(alg.U[t], blockA, sub)
		lb := exactCombine(alg.V[t], blockB, sub)
		products[t] = fastExactRec(alg, la, lb, cutoff)
	}
	c := NewExact(n, n)
	for o := 0; o < n0*n0; o++ {
		co := exactCombine(alg.W[o], products, sub)
		for i := 0; i < sub; i++ {
			for j := 0; j < sub; j++ {
				c.Set((o/n0)*sub+i, (o%n0)*sub+j, co.At(i, j))
			}
		}
	}
	return c
}

func exactBlock(m *Exact, bi, bj, sub int) *Exact {
	out := NewExact(sub, sub)
	for i := 0; i < sub; i++ {
		for j := 0; j < sub; j++ {
			out.Set(i, j, m.At(bi*sub+i, bj*sub+j))
		}
	}
	return out
}

func exactCombine(coeffs []rat.Rat, blocks []*Exact, sub int) *Exact {
	out := NewExact(sub, sub)
	for idx, c := range coeffs {
		if c.IsZero() {
			continue
		}
		blk := blocks[idx]
		for i := range out.Data {
			out.Data[i] = out.Data[i].Add(c.Mul(blk.Data[i]))
		}
	}
	return out
}
