package serve

// The content-addressed result cache: certificates keyed by
// routing.CacheKey, held in memory and spilled to one JSON file per
// key so a restarted daemon serves warm results without
// re-enumeration. Entries are immutable once written (equal keys
// guarantee bit-identical Stats), so there is no invalidation — only
// lookup, fill, and the disk round-trip.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"pathrouting/internal/routing"
)

// statsDoc is routing.Stats rendered for clients and cache entries:
// every deterministic certificate field plus the (informational,
// non-deterministic) elapsed seconds.
type statsDoc struct {
	Paths         int64   `json:"paths"`
	TotalHits     int64   `json:"total_hits"`
	MaxVertexHits int64   `json:"max_vertex_hits"`
	MaxMetaHits   int64   `json:"max_meta_hits"`
	Bound         int64   `json:"bound"`
	AdjChecked    int64   `json:"adj_checked"`
	ElapsedSec    float64 `json:"elapsed_sec,omitempty"`
}

func statsOf(st routing.Stats) statsDoc {
	return statsDoc{
		Paths:         st.NumPaths,
		TotalHits:     st.TotalHits,
		MaxVertexHits: st.MaxVertexHits,
		MaxMetaHits:   st.MaxMetaHits,
		Bound:         st.Bound,
		AdjChecked:    st.AdjacencyChecked,
		ElapsedSec:    st.Elapsed.Seconds(),
	}
}

// certificate renders the deterministic certificate line — the same
// field set and format as routecheck's `stats:` line (minus the
// prefix), so an interrupted-and-resumed daemon run can be compared
// byte-for-byte against an uninterrupted one.
func certificate(st routing.Stats) string {
	return fmt.Sprintf("paths=%d totalHits=%d maxVertexHits=%d maxMetaHits=%d bound=%d adjChecked=%d",
		st.NumPaths, st.TotalHits, st.MaxVertexHits, st.MaxMetaHits, st.Bound, st.AdjacencyChecked)
}

// cacheEntry is one cached certificate.
type cacheEntry struct {
	Key         string   `json:"key"`
	Spec        JobSpec  `json:"spec"`
	Stats       statsDoc `json:"stats"`
	Certificate string   `json:"certificate"`
}

type resultCache struct {
	dir string
	mu  sync.Mutex
	mem map[string]*cacheEntry
}

func newResultCache(dir string) *resultCache {
	return &resultCache{dir: dir, mem: make(map[string]*cacheEntry)}
}

// path maps a key to its spill file. Keys are hex sha256 digests, but
// defend anyway: anything outside [0-9a-f] cannot become a path
// component.
func (c *resultCache) path(key string) (string, bool) {
	if key == "" || strings.IndexFunc(key, func(r rune) bool {
		return !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f')
	}) >= 0 {
		return "", false
	}
	return filepath.Join(c.dir, key+".json"), true
}

// get returns the entry for key from memory, falling back to the disk
// spill (and promoting a disk hit into memory).
func (c *resultCache) get(key string) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.mem[key]; e != nil {
		return e
	}
	path, ok := c.path(key)
	if !ok {
		return nil
	}
	var e cacheEntry
	if err := readJSON(path, &e); err != nil || e.Key != key {
		return nil
	}
	c.mem[key] = &e
	return &e
}

// put stores the entry in memory and spills it to disk.
func (c *resultCache) put(e *cacheEntry) error {
	c.mu.Lock()
	c.mem[e.Key] = e
	c.mu.Unlock()
	path, ok := c.path(e.Key)
	if !ok {
		return fmt.Errorf("serve: invalid cache key %q", e.Key)
	}
	return writeJSON(path, e)
}

// size reports how many certificates the cache holds (union of memory
// and disk; disk-only entries not yet promoted are counted from the
// spill directory).
func (c *resultCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return len(c.mem)
	}
	onDisk := 0
	for _, ent := range entries {
		if strings.HasSuffix(ent.Name(), ".json") {
			onDisk++
		}
	}
	return max(onDisk, len(c.mem))
}
