package serve

// The HTTP/JSON surface of the daemon. Mounted onto the obs debug
// server's mux (obs.StartServerMux), so one listener serves the job
// API next to /metrics, /healthz, and /debug/pprof.
//
//	POST /jobs        submit a JobSpec; 202 + job doc (200 if served
//	                  from cache or coalesced onto an in-flight run)
//	GET  /jobs        list all jobs, submission order
//	GET  /jobs/{id}   one job: state, progress, final certificate

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
)

// Mount registers the job API on mux.
func (s *Server) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
}

// maxSpecBytes bounds a submitted spec body; real specs are tiny.
const maxSpecBytes = 1 << 16

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	if err := json.Unmarshal(body, &spec); err != nil {
		writeError(w, http.StatusBadRequest, "decode spec: "+err.Error())
		return
	}
	j, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	doc := j.Snapshot()
	status := http.StatusAccepted
	if doc.State == StateDone || doc.State == StateFailed {
		status = http.StatusOK // cache hit: the certificate is already here
	}
	writeDoc(w, status, doc)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.Jobs()
	docs := make([]JobDoc, 0, len(jobs))
	for _, j := range jobs {
		docs = append(docs, j.Snapshot())
	}
	writeDoc(w, http.StatusOK, struct {
		Jobs []JobDoc `json:"jobs"`
	}{docs})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeDoc(w, http.StatusOK, j.Snapshot())
}

// writeDoc marshals to a buffer before writing — the same discipline
// as the /healthz fix: never commit a status code a failed encode
// would contradict.
func writeDoc(w http.ResponseWriter, status int, v any) {
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(body, '\n'))
}

func writeError(w http.ResponseWriter, status int, msg string) {
	body, _ := json.MarshalIndent(struct {
		Error string `json:"error"`
	}{msg}, "", "  ")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(body, '\n'))
}
