package serve

// The HTTP/JSON surface of the daemon. Mounted onto the obs debug
// server's mux (obs.StartServerMux), so one listener serves the job
// API next to /metrics, /healthz, and /debug/pprof.
//
//	POST /jobs               submit a JobSpec; 202 + job doc (200 if
//	                         served from cache or coalesced onto an
//	                         in-flight run)
//	GET  /jobs               list jobs, newest first, bounded by
//	                         ?limit= (default 100)
//	GET  /jobs/{id}          one job: state, progress, certificate
//	GET  /jobs/{id}/events   live SSE stream of the job (stream.go)
//
// Trace propagation: POST /jobs accepts an X-Trace-Id header (minting
// a trace ID when absent), and every job response — submit, get,
// stream — echoes the job's trace in X-Trace-Id and in the doc body.

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"

	"pathrouting/internal/obs"
)

// Mount registers the job API on mux.
func (s *Server) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
}

// traceHeader is the request/response header carrying the trace ID.
const traceHeader = "X-Trace-Id"

// maxSpecBytes bounds a submitted spec body; real specs are tiny.
const maxSpecBytes = 1 << 16

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	if err := json.Unmarshal(body, &spec); err != nil {
		writeError(w, http.StatusBadRequest, "decode spec: "+err.Error())
		return
	}
	j, err := s.SubmitTrace(spec, r.Header.Get(traceHeader))
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	doc := j.Snapshot()
	status := http.StatusAccepted
	if doc.State == StateDone || doc.State == StateFailed {
		status = http.StatusOK // cache hit: the certificate is already here
	}
	w.Header().Set(traceHeader, j.Trace())
	writeDoc(w, status, doc)
}

// defaultListLimit bounds GET /jobs when no ?limit= is given: a
// long-lived daemon accumulates unboundedly many job records, and a
// listing is a dashboard page, not a dump.
const defaultListLimit = 100

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	limit := defaultListLimit
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "limit must be a positive integer")
			return
		}
		limit = n
	}
	jobs := s.Jobs()
	total := len(jobs)
	// Newest first: the jobs a dashboard cares about are the recent ones.
	docs := make([]JobDoc, 0, min(limit, total))
	for i := total - 1; i >= 0 && len(docs) < limit; i-- {
		docs = append(docs, jobs[i].Snapshot())
	}
	// The envelope carries the process identity (uptime, build info) so
	// a poller watching the listing across a crash/resume can tell
	// which daemon generation answered.
	writeDoc(w, http.StatusOK, struct {
		Total   int          `json:"total"`
		Process obs.ProcInfo `json:"process"`
		Jobs    []JobDoc     `json:"jobs"`
	}{total, obs.ProcessInfo(), docs})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	w.Header().Set(traceHeader, j.Trace())
	writeDoc(w, http.StatusOK, j.Snapshot())
}

// writeDoc marshals to a buffer before writing — the same discipline
// as the /healthz fix: never commit a status code a failed encode
// would contradict.
func writeDoc(w http.ResponseWriter, status int, v any) {
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(body, '\n'))
}

func writeError(w http.ResponseWriter, status int, msg string) {
	body, _ := json.MarshalIndent(struct {
		Error string `json:"error"`
	}{msg}, "", "  ")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(body, '\n'))
}
