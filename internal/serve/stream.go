package serve

// Live job event streams: GET /jobs/{id}/events serves Server-Sent
// Events so a client watches a verification run instead of polling.
// Each job owns a broadcaster; every lifecycle transition publishes a
// typed event carrying the job's full JobDoc snapshot, so any single
// event is a complete, self-describing view of the job (the terminal
// `final` event carries exactly the stats and certificate a poll of
// GET /jobs/{id} would return).
//
// Subscribers get an initial snapshot event on attach — a job already
// done (cache hit, or a stream opened after the fact) yields its
// `final` immediately; a resumed job replays its restored progress
// before following live — then live events as they happen. Slow
// consumers never block the runners: each subscriber has its own
// queue, and consecutive `shard`/`heartbeat` events coalesce (each is
// a full snapshot, so only the newest matters), while state
// transitions and the terminal event are always preserved.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// SSE event types.
const (
	eventQueued    = "queued"
	eventStarted   = "started"
	eventShard     = "shard"
	eventHeartbeat = "heartbeat"
	eventFinal     = "final"
)

// An Event is one SSE frame: a typed JobDoc snapshot.
type Event struct {
	ID   int64
	Type string
	Doc  JobDoc
}

// coalescable reports whether consecutive events of this type may
// collapse to the newest one in a subscriber queue.
func coalescable(typ string) bool { return typ == eventShard || typ == eventHeartbeat }

// A subscriber is one attached SSE stream: an unbounded-in-principle
// but coalescing event queue plus a level-triggered notify channel.
type subscriber struct {
	mu     sync.Mutex
	events []Event
	notify chan struct{} // cap 1: "queue non-empty" signal
}

func newSubscriber() *subscriber {
	return &subscriber{notify: make(chan struct{}, 1)}
}

// push appends an event, coalescing progress-type runs.
func (sub *subscriber) push(e Event) {
	sub.mu.Lock()
	if n := len(sub.events); n > 0 && coalescable(e.Type) && sub.events[n-1].Type == e.Type {
		sub.events[n-1] = e
	} else {
		sub.events = append(sub.events, e)
	}
	sub.mu.Unlock()
	select {
	case sub.notify <- struct{}{}:
	default:
	}
}

// drain takes the queued events.
func (sub *subscriber) drain() []Event {
	sub.mu.Lock()
	events := sub.events
	sub.events = nil
	sub.mu.Unlock()
	return events
}

// A broadcaster fans a job's events out to its subscribers. The zero
// value is ready to use (jobs embed one).
type broadcaster struct {
	mu   sync.Mutex
	seq  int64
	subs map[*subscriber]struct{}
}

// publish sends a typed snapshot to every subscriber. Callers must not
// hold j.mu (the snapshot was already taken).
func (b *broadcaster) publish(typ string, doc JobDoc) {
	b.mu.Lock()
	b.seq++
	e := Event{ID: b.seq, Type: typ, Doc: doc}
	for sub := range b.subs {
		sub.push(e)
	}
	b.mu.Unlock()
}

func (b *broadcaster) add(sub *subscriber) {
	b.mu.Lock()
	if b.subs == nil {
		b.subs = make(map[*subscriber]struct{})
	}
	b.subs[sub] = struct{}{}
	b.mu.Unlock()
}

func (b *broadcaster) remove(sub *subscriber) {
	b.mu.Lock()
	delete(b.subs, sub)
	b.mu.Unlock()
}

// Subscribe attaches a new event stream to the job: the subscriber is
// registered first (no live event can slip past), then primed with a
// snapshot event for the job's current state, so terminal jobs yield
// their final immediately and queued/running jobs replay where they
// are before following.
func (j *Job) Subscribe() *subscriber {
	sub := newSubscriber()
	j.events.add(sub)
	doc := j.Snapshot()
	typ := eventQueued
	switch doc.State {
	case StateRunning:
		typ = eventStarted
		if doc.Progress != nil && doc.Progress.ShardsDone > 0 {
			typ = eventShard
		}
	case StateDone, StateFailed:
		typ = eventFinal
	}
	sub.push(Event{Type: typ, Doc: doc})
	return sub
}

// Unsubscribe detaches sub.
func (j *Job) Unsubscribe(sub *subscriber) { j.events.remove(sub) }

// sseKeepalive is the comment-frame cadence that keeps idle streams
// alive through proxies and surfaces dead client connections.
const sseKeepalive = 15 * time.Second

// handleEvents is GET /jobs/{id}/events: the SSE stream. The stream
// ends after the terminal event, when the client disconnects, or when
// the server starts draining (a `: draining` comment is the goodbye;
// ending the stream promptly is what lets http.Server.Shutdown finish
// instead of hanging on open streams until the drain deadline).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Trace-Id", j.Trace())
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	sub := j.Subscribe()
	defer j.Unsubscribe(sub)
	keepalive := time.NewTicker(sseKeepalive)
	defer keepalive.Stop()
	for {
		for _, e := range sub.drain() {
			if err := writeSSE(w, e); err != nil {
				return // client went away mid-write
			}
			fl.Flush()
			if e.Type == eventFinal {
				return
			}
		}
		select {
		case <-sub.notify:
		case <-r.Context().Done():
			return
		case <-s.stop:
			fmt.Fprintf(w, ": draining\n\n")
			fl.Flush()
			return
		case <-keepalive.C:
			if _, err := fmt.Fprintf(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// writeSSE renders one event as an SSE frame. The data payload is the
// compact one-line JSON of the JobDoc (SSE frames are line-delimited).
func writeSSE(w http.ResponseWriter, e Event) error {
	body, err := json.Marshal(e.Doc)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.ID, e.Type, body)
	return err
}
