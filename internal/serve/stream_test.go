package serve

// Tests for the live-streaming and trace-propagation surface: the SSE
// event stream (lifecycle ordering, immediate finals on cache hits,
// clean teardown on client disconnect and on drain), the end-to-end
// trace identity (header in, header out, every journal record
// stamped), and the service journal moving into serve.

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pathrouting/internal/runlog"
)

// sseFrame is one parsed SSE event.
type sseFrame struct {
	ID      string
	Type    string
	Doc     JobDoc
	Comment string // ": draining" etc., Type empty
}

// readFrames consumes an SSE stream until it ends (server close or
// ctx cancel via the request), returning every frame in order.
func readFrames(t *testing.T, body io.Reader) []sseFrame {
	t.Helper()
	var frames []sseFrame
	var cur sseFrame
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	flush := func() {
		if cur.Type != "" || cur.Comment != "" {
			frames = append(frames, cur)
		}
		cur = sseFrame{}
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			flush()
		case strings.HasPrefix(line, ": "):
			cur.Comment = strings.TrimPrefix(line, ": ")
		case strings.HasPrefix(line, "id: "):
			cur.ID = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.Type = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.Doc); err != nil {
				t.Fatalf("bad SSE data line %q: %v", line, err)
			}
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	flush()
	return frames
}

func streamServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	s.Mount(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestSSEJobLifecycle: a streamed job yields started/shard events and
// a terminal final whose stats and certificate are exactly what a
// poll returns.
func TestSSEJobLifecycle(t *testing.T) {
	s := newTestServer(t, Options{})
	s.Start()
	ts := streamServer(t, s)

	j, err := s.Submit(JobSpec{Alg: "strassen", K: 3, ShardRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/jobs/" + j.ID() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != j.Trace() {
		t.Fatalf("stream trace header = %q, want %q", got, j.Trace())
	}

	frames := readFrames(t, resp.Body) // server closes the stream after final
	if len(frames) < 2 {
		t.Fatalf("frames: %+v", frames)
	}
	last := frames[len(frames)-1]
	if last.Type != eventFinal || last.Doc.State != StateDone {
		t.Fatalf("terminal frame = %+v", last)
	}
	sawShard := false
	for _, f := range frames {
		if f.Type == eventShard {
			sawShard = true
			if f.Doc.Progress == nil && f.Doc.State == StateRunning {
				t.Fatalf("shard frame without progress: %+v", f)
			}
		}
		if f.Doc.ID != j.ID() || f.Doc.Trace != j.Trace() {
			t.Fatalf("frame with wrong identity: %+v", f)
		}
	}
	if !sawShard {
		t.Fatalf("no shard frames in %+v", frames)
	}

	// The streamed terminal doc is byte-identical (as JSON) to a poll.
	polled := j.Snapshot()
	want, _ := json.Marshal(polled)
	got, _ := json.Marshal(last.Doc)
	if string(got) != string(want) {
		t.Fatalf("streamed final differs from polled doc:\n%s\n%s", got, want)
	}
	if last.Doc.Certificate == "" || last.Doc.Certificate != polled.Certificate {
		t.Fatalf("certificate mismatch: %q vs %q", last.Doc.Certificate, polled.Certificate)
	}
}

// TestSSECacheHitImmediateFinal: streaming a cache-hit job yields the
// final event immediately and the stream closes.
func TestSSECacheHitImmediateFinal(t *testing.T) {
	s := newTestServer(t, Options{})
	s.Start()
	ts := streamServer(t, s)

	j1, err := s.Submit(JobSpec{Alg: "strassen", K: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, j1.ID())
	j2, err := s.Submit(JobSpec{Alg: "strassen", K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !j2.Snapshot().Cached {
		t.Fatalf("second submission not a cache hit")
	}

	start := time.Now()
	resp, err := http.Get(ts.URL + "/jobs/" + j2.ID() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	frames := readFrames(t, resp.Body)
	if time.Since(start) > 5*time.Second {
		t.Fatal("cache-hit stream did not close promptly")
	}
	if len(frames) != 1 || frames[0].Type != eventFinal || !frames[0].Doc.Cached {
		t.Fatalf("cache-hit frames = %+v", frames)
	}
	if frames[0].Doc.Certificate == "" {
		t.Fatal("cache-hit final missing certificate")
	}
}

// TestSSEMidStreamDisconnect: a client dropping mid-run must not
// disturb the job or the server (run under -race, this also proves
// the subscriber teardown is clean).
func TestSSEMidStreamDisconnect(t *testing.T) {
	s := newTestServer(t, Options{})
	s.Start()
	ts := streamServer(t, s)

	j, err := s.Submit(JobSpec{Alg: "strassen", K: 3, ShardRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/jobs/"+j.ID()+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one frame, then hang up mid-stream.
	buf := make([]byte, 256)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatal(err)
	}
	cancel()
	resp.Body.Close()

	doc := waitTerminal(t, s, j.ID())
	if doc.State != StateDone {
		t.Fatalf("job after disconnect: %+v", doc)
	}
	// The broadcaster must have dropped the dead subscriber.
	deadline := time.Now().Add(5 * time.Second)
	for {
		j.events.mu.Lock()
		n := len(j.events.subs)
		j.events.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d subscribers still attached after disconnect", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSSEDrainEndsStream: draining the server ends open streams with
// a goodbye comment instead of pinning the listener.
func TestSSEDrainEndsStream(t *testing.T) {
	s := newTestServer(t, Options{})
	// Not started: the job stays queued, so the stream would otherwise
	// sit open forever.
	ts := streamServer(t, s)
	j, err := s.Submit(JobSpec{Alg: "strassen", K: 2})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/jobs/" + j.ID() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	done := make(chan []sseFrame, 1)
	go func() { done <- readFrames(t, resp.Body) }()
	time.Sleep(50 * time.Millisecond) // let the stream attach
	s.BeginDrain()
	select {
	case frames := <-done:
		if len(frames) == 0 || frames[0].Type != eventQueued {
			t.Fatalf("frames = %+v", frames)
		}
		last := frames[len(frames)-1]
		if last.Comment != "draining" {
			t.Fatalf("stream did not say goodbye: %+v", frames)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not end on drain")
	}
}

// TestTracePropagation: a client-supplied X-Trace-Id is adopted,
// echoed on every response, stamped into every journal record the job
// emits (run_start, spans, shard_done, heartbeat, final), and an
// invalid one is rejected.
func TestTracePropagation(t *testing.T) {
	journalPath := filepath.Join(t.TempDir(), "run.jsonl")
	jw, err := runlog.Open(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	defer jw.Close()
	s := newTestServer(t, Options{Journal: jw, Heartbeat: 10 * time.Millisecond})
	s.Start()
	ts := streamServer(t, s)

	const trace = "trace-propagation-test-0001"
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/jobs",
		strings.NewReader(`{"alg":"strassen","k":3,"shardrows":16}`))
	req.Header.Set(traceHeader, trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(traceHeader); got != trace {
		t.Fatalf("submit trace header = %q, want %q", got, trace)
	}
	var doc JobDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Trace != trace {
		t.Fatalf("doc trace = %q, want %q", doc.Trace, trace)
	}
	final := waitTerminal(t, s, doc.ID)
	if final.State != StateDone || final.Trace != trace {
		t.Fatalf("final doc = %+v", final)
	}

	// GET echoes the trace too.
	getResp, err := http.Get(ts.URL + "/jobs/" + doc.ID)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, getResp.Body)
	getResp.Body.Close()
	if got := getResp.Header.Get(traceHeader); got != trace {
		t.Fatalf("get trace header = %q, want %q", got, trace)
	}

	// Every record the job journaled carries the trace and job ID.
	data, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	events := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var rec runlog.Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad journal line %q: %v", line, err)
		}
		if rec.Trace != trace || rec.Job != doc.ID {
			t.Fatalf("journal record without trace identity: %s", line)
		}
		events[rec.Event]++
	}
	for _, want := range []string{runlog.EventRunStart, runlog.EventShardDone,
		runlog.EventSpan, runlog.EventHeartbeat, runlog.EventFinal} {
		if events[want] == 0 {
			t.Fatalf("journal missing %s records: %v", want, events)
		}
	}
	// The engine's spans made it through the context: a job_run span
	// plus per-shard spans.
	sum, err := runlog.SummarizeFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Traces != 1 {
		t.Fatalf("journal traces = %d, want 1", sum.Traces)
	}
	ttt, err := runlog.CollectTracesFiles(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(ttt.Traces) != 1 || ttt.Traces[0].ID != trace {
		t.Fatalf("collected traces = %+v", ttt.Traces)
	}
	names := map[string]bool{}
	for _, sp := range ttt.Traces[0].Spans {
		names[sp.Name] = true
	}
	if !names["job_run"] || !names["shard_enumerate"] {
		t.Fatalf("span names = %v", names)
	}

	// Invalid trace IDs are rejected before anything runs.
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/jobs",
		strings.NewReader(`{"alg":"strassen","k":2}`))
	req.Header.Set(traceHeader, "bad trace id with spaces")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid trace: %d", resp.StatusCode)
	}
}

// TestListNewestFirstBounded: GET /jobs returns newest first, bounded
// by ?limit=, with the total count alongside.
func TestListNewestFirstBounded(t *testing.T) {
	s := newTestServer(t, Options{QueueDepth: 8})
	// Not started: jobs stay queued in submission order.
	var ids []string
	for _, k := range []int{1, 2, 3} {
		j, err := s.Submit(JobSpec{Alg: "strassen", K: k})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID())
	}
	ts := streamServer(t, s)

	var listing struct {
		Total int      `json:"total"`
		Jobs  []JobDoc `json:"jobs"`
	}
	getList := func(query string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("list: %d", resp.StatusCode)
		}
		listing = struct {
			Total int      `json:"total"`
			Jobs  []JobDoc `json:"jobs"`
		}{}
		if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
			t.Fatal(err)
		}
	}

	getList("")
	if listing.Total != 3 || len(listing.Jobs) != 3 {
		t.Fatalf("listing = %+v", listing)
	}
	for i, doc := range listing.Jobs { // newest first
		if doc.ID != ids[len(ids)-1-i] {
			t.Fatalf("listing order: %+v", listing.Jobs)
		}
	}
	getList("?limit=2")
	if listing.Total != 3 || len(listing.Jobs) != 2 || listing.Jobs[0].ID != ids[2] {
		t.Fatalf("bounded listing = %+v", listing)
	}
	resp, err := http.Get(ts.URL + "/jobs?limit=zero")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit: %d", resp.StatusCode)
	}
}

// TestHealthDraining: /healthz flips to "draining" after BeginDrain.
func TestHealthDraining(t *testing.T) {
	s := newTestServer(t, Options{})
	body, _ := json.Marshal(s.Health())
	if !strings.Contains(string(body), `"status":"ok"`) {
		t.Fatalf("health before drain: %s", body)
	}
	s.BeginDrain()
	body, _ = json.Marshal(s.Health())
	if !strings.Contains(string(body), `"status":"draining"`) {
		t.Fatalf("health during drain: %s", body)
	}
	if _, err := s.Submit(JobSpec{Alg: "strassen", K: 1}); err != ErrDraining {
		t.Fatalf("submit while draining: %v", err)
	}
}

// TestLabeledServeMetrics: the outcome-labeled families track hits,
// misses, coalesced submissions, and finished runs.
func TestLabeledServeMetrics(t *testing.T) {
	s := newTestServer(t, Options{})
	s.Start()
	j, err := s.Submit(JobSpec{Alg: "strassen", K: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, j.ID())
	if _, err := s.Submit(JobSpec{Alg: "strassen", K: 2}); err != nil { // cache hit
		t.Fatal(err)
	}
	snap := s.reg.Snapshot()
	for series, want := range map[string]float64{
		`serve_submissions_total{outcome="miss"}`:          1,
		`serve_submissions_total{outcome="hit"}`:           1,
		`serve_jobs_finished_total{outcome="done"}`:        1,
		`serve_job_duration_seconds_count{outcome="done"}`: 1,
	} {
		if snap[series] != want {
			t.Fatalf("%s = %v, want %v (snapshot %v)", series, snap[series], want, snap)
		}
	}
	// One derived TraceContext per job must not have leaked labels into
	// the unlabeled scripting surface.
	if snap["serve_jobs_completed_total"] != 1 || snap["serve_result_cache_hits_total"] != 1 {
		t.Fatalf("unlabeled counters drifted: %v", snap)
	}
}

// TestTraceSurvivesRestart: a job recovered from disk keeps the trace
// it was submitted with, and a submitted trace context derives fresh
// instruments without breaking the engine metrics.
func TestTraceSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Options{DataDir: dir, QueueDepth: 4})
	// Not started: job stays queued on disk.
	j1, err := s1.SubmitTrace(JobSpec{Alg: "strassen", K: 2}, "restart-trace-01")
	if err != nil {
		t.Fatal(err)
	}
	if j1.Trace() != "restart-trace-01" {
		t.Fatalf("trace = %q", j1.Trace())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t, Options{DataDir: dir, QueueDepth: 4})
	j2, ok := s2.Get(j1.ID())
	if !ok {
		t.Fatalf("job %s not recovered", j1.ID())
	}
	if j2.Trace() != "restart-trace-01" {
		t.Fatalf("recovered trace = %q, want restart-trace-01", j2.Trace())
	}
	s2.Start()
	doc := waitTerminal(t, s2, j2.ID())
	if doc.State != StateDone || doc.Trace != "restart-trace-01" {
		t.Fatalf("resumed job: %+v", doc)
	}
}
