package serve

// Tests for the verification service core: result-cache hits served
// without re-enumeration, single-flight coalescing of identical
// in-flight submissions, bounded-queue rejection, crash durability
// (a daemon aborted mid-job resumes on restart to a bit-identical
// certificate), and the HTTP surface.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pathrouting/internal/routing"
)

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.DataDir == "" {
		opts.DataDir = t.TempDir()
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

// waitTerminal polls a job until it reaches done/failed.
func waitTerminal(t *testing.T, s *Server, id string) JobDoc {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		j, ok := s.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		doc := j.Snapshot()
		if doc.State == StateDone || doc.State == StateFailed {
			return doc
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, doc.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func pathsVerified(s *Server) float64 {
	return s.reg.Snapshot()["routing_paths_verified_total"]
}

// TestCacheHitSkipsEnumeration: a resubmitted identical job must be
// served from the result cache — same certificate, no paths verified
// (the acceptance criterion routed-smoke checks over HTTP).
func TestCacheHitSkipsEnumeration(t *testing.T) {
	s := newTestServer(t, Options{})
	s.Start()

	spec := JobSpec{Alg: "strassen", K: 2}
	j1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	doc1 := waitTerminal(t, s, j1.ID())
	if doc1.State != StateDone || doc1.Certificate == "" {
		t.Fatalf("first run: %+v", doc1)
	}
	if doc1.Cached {
		t.Fatal("first run claims cached")
	}

	before := pathsVerified(s)
	if before == 0 {
		t.Fatal("first run verified no paths")
	}
	j2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if j2.ID() == j1.ID() {
		t.Fatal("resubmission returned the completed job instead of a cache-hit job")
	}
	doc2 := j2.Snapshot()
	if doc2.State != StateDone || !doc2.Cached {
		t.Fatalf("resubmission not served from cache: %+v", doc2)
	}
	if doc2.Certificate != doc1.Certificate {
		t.Fatalf("cached certificate differs:\n%s\n%s", doc2.Certificate, doc1.Certificate)
	}
	if after := pathsVerified(s); after != before {
		t.Fatalf("cache hit advanced routing_paths_verified_total: %v -> %v", before, after)
	}

	// Normalized variants of the same job land on the same key.
	j3, err := s.Submit(JobSpec{Alg: "strassen", K: 2, Kernel: routing.KernelScratch, AdjStride: 257})
	if err != nil {
		t.Fatal(err)
	}
	if doc3 := j3.Snapshot(); !doc3.Cached {
		t.Fatalf("normalized-spec resubmission missed the cache: %+v", doc3)
	}
}

// TestCacheSurvivesRestart: a second server over the same data dir
// serves the first server's certificates from the disk spill.
func TestCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Options{DataDir: dir})
	s1.Start()
	j1, err := s1.Submit(JobSpec{Alg: "strassen", K: 2})
	if err != nil {
		t.Fatal(err)
	}
	doc1 := waitTerminal(t, s1, j1.ID())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t, Options{DataDir: dir})
	// No Start: a warm cache needs no runners.
	j2, err := s2.Submit(JobSpec{Alg: "strassen", K: 2})
	if err != nil {
		t.Fatal(err)
	}
	doc2 := j2.Snapshot()
	if !doc2.Cached || doc2.Certificate != doc1.Certificate {
		t.Fatalf("restart lost the warm result: %+v", doc2)
	}
	if got := pathsVerified(s2); got != 0 {
		t.Fatalf("restarted server enumerated %v paths for a warm result", got)
	}
	// The completed job record also survived for polling.
	if _, ok := s2.Get(j1.ID()); !ok {
		t.Fatalf("job %s not recovered", j1.ID())
	}
}

// TestSingleFlightCoalescing: identical submissions join the one
// in-flight job; distinct specs don't.
func TestSingleFlightCoalescing(t *testing.T) {
	s := newTestServer(t, Options{QueueDepth: 8})
	// Deliberately not started: everything stays queued.
	a1, err := s.Submit(JobSpec{Alg: "strassen", K: 2})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := s.Submit(JobSpec{Alg: "strassen", K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatalf("identical submissions got distinct jobs %s, %s", a1.ID(), a2.ID())
	}
	if doc := a1.Snapshot(); doc.Coalesced != 1 {
		t.Fatalf("coalesced = %d, want 1", doc.Coalesced)
	}
	b, err := s.Submit(JobSpec{Alg: "strassen", K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if b == a1 {
		t.Fatal("distinct specs coalesced")
	}
	if got := s.reg.Snapshot()["serve_jobs_coalesced_total"]; got != 1 {
		t.Fatalf("serve_jobs_coalesced_total = %v, want 1", got)
	}

	// Late joiners still get the certificate once the run completes.
	s.Start()
	doc := waitTerminal(t, s, a2.ID())
	if doc.State != StateDone || doc.Certificate == "" {
		t.Fatalf("coalesced job never completed: %+v", doc)
	}
}

// TestQueueBounded: submissions beyond QueueDepth fail loudly instead
// of queueing unboundedly; identical specs coalesce instead of
// consuming a slot.
func TestQueueBounded(t *testing.T) {
	s := newTestServer(t, Options{QueueDepth: 1})
	// Not started, so the queue never drains.
	if _, err := s.Submit(JobSpec{Alg: "strassen", K: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(JobSpec{Alg: "strassen", K: 2}); err != ErrQueueFull {
		t.Fatalf("overflow submission: err = %v, want ErrQueueFull", err)
	}
	if _, err := s.Submit(JobSpec{Alg: "strassen", K: 1}); err != nil {
		t.Fatalf("coalescing submission rejected by full queue: %v", err)
	}
	// The rejected job must leave no orphan state.
	for _, j := range s.Jobs() {
		if j.Spec().K == 2 {
			t.Fatal("rejected job still registered")
		}
	}
}

// TestSubmitValidation: bad specs are rejected before touching the
// queue.
func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, Options{MaxK: 3})
	for _, spec := range []JobSpec{
		{Alg: "nope", K: 2},
		{Alg: "strassen", K: 0},
		{Alg: "strassen", K: 4}, // beyond MaxK
		{Alg: "strassen", K: 2, Kernel: "quantum"},
		{Alg: "strassen", K: 2, AdjStride: -1},
	} {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("spec %+v accepted", spec)
		}
	}
	if n := len(s.Jobs()); n != 0 {
		t.Fatalf("%d jobs registered by invalid submissions", n)
	}
}

// TestCrashResumeBitIdentical is the durability acceptance test: a
// server hard-aborted mid-job (stop closed between shards, process
// state discarded — the in-process analogue of kill -9, since every
// completed shard is already fsynced to the checkpoint) must, on
// restart over the same data dir, resume the job from its checkpoint
// and finish with a certificate bit-identical to an uninterrupted
// run's.
func TestCrashResumeBitIdentical(t *testing.T) {
	// Uninterrupted reference.
	ref := newTestServer(t, Options{})
	ref.Start()
	spec := JobSpec{Alg: "strassen", K: 3, ShardRows: 16} // 8 shards
	jr, err := ref.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := waitTerminal(t, ref, jr.ID())
	if want.State != StateDone {
		t.Fatalf("reference run: %+v", want)
	}

	// First daemon: abort after the second shard completes.
	dir := t.TempDir()
	var (
		s1      *Server
		once    sync.Once
		aborted = make(chan struct{})
	)
	opts := Options{DataDir: dir, JobWorkers: 2, OnShard: func(_ *Job, d routing.ShardDone) {
		if !d.Restored && d.Done >= 2 {
			once.Do(func() {
				s1.mu.Lock()
				if !s1.draining {
					s1.draining = true
					close(s1.stop) // hard abort: no final flush beyond per-shard saves
				}
				s1.mu.Unlock()
				close(aborted)
			})
		}
	}}
	s1 = newTestServer(t, opts)
	s1.Start()
	j1, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-aborted:
	case <-time.After(30 * time.Second):
		t.Fatal("failpoint never fired")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	doc1 := j1.Snapshot()
	if doc1.State != StateQueued {
		t.Fatalf("aborted job state = %s, want queued (got %+v)", doc1.State, doc1)
	}
	cp, err := routing.LoadCheckpoint(filepath.Join(dir, "jobs", j1.ID(), "run.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if cp.DoneCount == 0 || cp.DoneCount == cp.NumShards {
		t.Fatalf("abort left %d/%d shards — not mid-job", cp.DoneCount, cp.NumShards)
	}

	// Second daemon over the same dir: recovery re-enqueues, the run
	// resumes from the checkpoint, and the certificate matches.
	s2 := newTestServer(t, Options{DataDir: dir, JobWorkers: 3})
	j2, ok := s2.Get(j1.ID())
	if !ok {
		t.Fatalf("job %s not recovered", j1.ID())
	}
	if !j2.Snapshot().Resumed {
		t.Fatal("recovered job not marked resumed")
	}
	s2.Start()
	doc2 := waitTerminal(t, s2, j2.ID())
	if doc2.State != StateDone {
		t.Fatalf("resumed job: %+v", doc2)
	}
	if doc2.Certificate != want.Certificate {
		t.Fatalf("resumed certificate differs from uninterrupted run:\nresumed %s\nfresh   %s",
			doc2.Certificate, want.Certificate)
	}
	if withoutElapsed(*doc2.Stats) != withoutElapsed(*want.Stats) {
		t.Fatalf("resumed stats differ:\nresumed %+v\nfresh   %+v", *doc2.Stats, *want.Stats)
	}
}

func withoutElapsed(d statsDoc) statsDoc { d.ElapsedSec = 0; return d }

// TestJobResourcesAccounted: a completed job's doc carries a populated
// Resources block — timeline stamps, wall/CPU/allocation costs, and a
// throughput figure — and the per-job cost metrics record the outcome.
func TestJobResourcesAccounted(t *testing.T) {
	s := newTestServer(t, Options{})
	s.Start()
	j, err := s.Submit(JobSpec{Alg: "strassen", K: 2})
	if err != nil {
		t.Fatal(err)
	}
	doc := waitTerminal(t, s, j.ID())
	if doc.State != StateDone {
		t.Fatalf("job: %+v", doc)
	}
	res := doc.Resources
	if res == nil {
		t.Fatal("done job has no Resources block")
	}
	if res.Legs != 1 {
		t.Fatalf("Legs = %d, want 1", res.Legs)
	}
	if res.QueuedAt == "" || res.StartedAt == "" || res.FinishedAt == "" {
		t.Fatalf("timeline incomplete: %+v", res)
	}
	if res.WallSeconds <= 0 || res.QueueWaitSeconds < 0 || res.AllocBytes <= 0 {
		t.Fatalf("costs not accounted: %+v", res)
	}
	if res.PathsPerSec <= 0 {
		t.Fatalf("PathsPerSec = %f", res.PathsPerSec)
	}
	snap := s.reg.Snapshot()
	if snap[`serve_job_cpu_seconds_count{outcome="done"}`] != 1 ||
		snap[`serve_job_queue_wait_seconds_count{outcome="done"}`] != 1 {
		t.Fatalf("cost metrics not observed: %+v", snap)
	}
}

// TestAccountingSurvivesRestart: the cost accounting of a job aborted
// mid-run is persisted per shard (the same durability contract as the
// checkpoint), and the resumed leg accumulates onto the crashed leg's
// totals instead of resetting them.
func TestAccountingSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	var (
		s1      *Server
		once    sync.Once
		aborted = make(chan struct{})
	)
	opts := Options{DataDir: dir, JobWorkers: 2, OnShard: func(_ *Job, d routing.ShardDone) {
		if !d.Restored && d.Done >= 2 {
			once.Do(func() {
				s1.mu.Lock()
				if !s1.draining {
					s1.draining = true
					close(s1.stop)
				}
				s1.mu.Unlock()
				close(aborted)
			})
		}
	}}
	s1 = newTestServer(t, opts)
	s1.Start()
	j1, err := s1.Submit(JobSpec{Alg: "strassen", K: 3, ShardRows: 16}) // 8 shards
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-aborted:
	case <-time.After(30 * time.Second):
		t.Fatal("failpoint never fired")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// The crashed leg's accounting must already be on disk: the shard
	// boundary persisted spec.json before announcing the shard, so a
	// kill -9 at any point loses at most one shard of cost.
	var specRec struct {
		Resources *ResourcesDoc `json:"resources"`
	}
	body, err := os.ReadFile(filepath.Join(dir, "jobs", j1.ID(), "spec.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body, &specRec); err != nil {
		t.Fatal(err)
	}
	leg1 := specRec.Resources
	if leg1 == nil || leg1.Legs != 1 {
		t.Fatalf("crashed leg not persisted in spec.json: %+v", leg1)
	}
	if leg1.WallSeconds <= 0 || leg1.StartedAt == "" {
		t.Fatalf("crashed leg costs empty: %+v", leg1)
	}
	if leg1.FinishedAt != "" {
		t.Fatalf("aborted job claims a finish time: %+v", leg1)
	}

	// Restart: the resumed leg folds onto the persisted totals.
	s2 := newTestServer(t, Options{DataDir: dir, JobWorkers: 3})
	s2.Start()
	doc := waitTerminal(t, s2, j1.ID())
	if doc.State != StateDone {
		t.Fatalf("resumed job: %+v", doc)
	}
	res := doc.Resources
	if res == nil {
		t.Fatal("resumed job has no Resources block")
	}
	if res.Legs != 2 {
		t.Fatalf("Legs = %d, want 2 (crashed + resumed)", res.Legs)
	}
	if res.WallSeconds < leg1.WallSeconds {
		t.Fatalf("wall time went backwards across restart: %f -> %f", leg1.WallSeconds, res.WallSeconds)
	}
	if res.AllocBytes < leg1.AllocBytes {
		t.Fatalf("alloc bytes went backwards across restart: %d -> %d", leg1.AllocBytes, res.AllocBytes)
	}
	if res.QueuedAt != leg1.QueuedAt || res.StartedAt != leg1.StartedAt {
		t.Fatalf("resumed leg rewrote the job's origin stamps: %+v vs %+v", res, leg1)
	}
	if res.FinishedAt == "" || res.PathsPerSec <= 0 {
		t.Fatalf("resumed leg not finalized: %+v", res)
	}
}

// TestHTTPEndpoints drives the mounted mux end to end with httptest.
func TestHTTPEndpoints(t *testing.T) {
	s := newTestServer(t, Options{})
	s.Start()
	mux := http.NewServeMux()
	s.Mount(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	post := func(body string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, string(b)
	}
	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, string(b)
	}

	// Bad specs: 400 with a JSON error.
	for _, bad := range []string{"{", `{"alg":"nope","k":2}`, `{"alg":"strassen","k":0}`} {
		resp, body := post(bad)
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(body, `"error"`) {
			t.Fatalf("POST %q: %d %s", bad, resp.StatusCode, body)
		}
	}

	// Submit: 202 with a job ID.
	resp, body := post(`{"alg":"strassen","k":2}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var doc JobDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("submit response not JSON: %v\n%s", err, body)
	}
	if doc.ID == "" || doc.Key == "" {
		t.Fatalf("submit doc incomplete: %s", body)
	}

	// Poll to completion.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, body = get("/jobs/" + doc.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll: %d %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatal(err)
		}
		if doc.State == StateDone {
			break
		}
		if doc.State == StateFailed || time.Now().After(deadline) {
			t.Fatalf("job did not complete: %s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if doc.Certificate == "" || doc.Stats == nil || doc.Stats.MaxVertexHits > doc.Stats.Bound {
		t.Fatalf("completed doc incomplete: %s", body)
	}

	// Resubmission over HTTP: 200 + cached.
	resp, body = post(`{"alg":"strassen","k":2}`)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"cached": true`) {
		t.Fatalf("cached resubmit: %d %s", resp.StatusCode, body)
	}

	// Listing and 404.
	resp, body = get("/jobs")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, doc.ID) {
		t.Fatalf("list: %d %s", resp.StatusCode, body)
	}
	if resp, _ = get("/jobs/j99999999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: %d", resp.StatusCode)
	}
}

// TestHealthSnapshot: the daemon /healthz document carries queue and
// cache state and survives json marshaling.
func TestHealthSnapshot(t *testing.T) {
	s := newTestServer(t, Options{QueueDepth: 4, Concurrency: 2})
	s.Start()
	j, err := s.Submit(JobSpec{Alg: "strassen", K: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, j.ID())
	body, err := json.Marshal(s.Health())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"queue_cap":4`, `"concurrency":2`, `"status":"ok"`, `"cache_entries":1`} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("health missing %s:\n%s", want, body)
		}
	}
}
