// Package serve is the verification-as-a-service core behind cmd/routed:
// clients submit (algorithm, k, kernel, adjstride, orbits) jobs, get a
// job ID, poll progress, and fetch the final Stats certificate.
//
// The paper's product is a certificate — "this routing of G_k satisfies
// the 6aᵏ congestion bound" — and under repeated traffic the common
// case is a certificate someone already computed. The service is built
// around that: a content-addressed result cache (routing.CacheKey; in
// memory plus JSON spill to disk, so restarts keep warm results),
// single-flight coalescing so identical in-flight requests join one
// enumeration run, and a bounded FIFO queue with a per-job worker
// budget so concurrent tenants share the machine instead of
// oversubscribing it. Jobs run through the checkpointed verifier with
// a per-job checkpoint directory, so a killed daemon resumes every
// incomplete job on restart and an interrupted certificate still comes
// out bit-identical to an uninterrupted one.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/obs"
	"pathrouting/internal/routing"
	"pathrouting/internal/runlog"
)

// toolName stamps the service's journal records.
const toolName = "routed"

// Submission errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull rejects a submission when the bounded FIFO queue is
	// at capacity (HTTP 503: retry later).
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining rejects submissions during shutdown (HTTP 503).
	ErrDraining = errors.New("serve: server is draining")
)

// JobSpec is what a client submits: the certificate-determining
// parameters (algorithm, k, kernel, adjstride, orbits — exactly the
// routing.CacheKey inputs) plus shardrows, a checkpoint-granularity
// knob that cannot change the certificate and is excluded from the key.
type JobSpec struct {
	Alg       string `json:"alg"`
	K         int    `json:"k"`
	Kernel    string `json:"kernel,omitempty"`
	AdjStride int64  `json:"adjstride,omitempty"`
	Orbits    bool   `json:"orbits,omitempty"`
	ShardRows int64  `json:"shardrows,omitempty"`
}

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// A Job is one submitted verification request and its lifecycle state.
// All mutable state is behind the mutex; readers use Snapshot.
type Job struct {
	id    string
	spec  JobSpec
	key   string
	alg   *bilinear.Algorithm
	dir   string
	trace string // end-to-end trace ID, immutable after creation

	events broadcaster // live SSE fan-out (see stream.go)

	mu        sync.Mutex
	state     string
	cached    bool  // result served from the cache, nothing enumerated
	resumed   bool  // recovered from a previous daemon's job directory
	coalesced int64 // submissions that joined this in-flight job
	workers   map[int]routing.Progress
	shards    *routing.ShardDone
	stats     *statsDoc
	cert      string
	errMsg    string

	// Cost accounting. acc is the job's accumulated Resources block —
	// across every crash/resume leg, not just the current process.
	// queuedAt anchors the next leg's queue wait (set at submission,
	// reset at requeue); the leg* fields are the current leg's
	// baselines, captured at leg start so shard-time and terminal
	// accounting can fold the leg's deltas onto legBase.
	acc       ResourcesDoc
	queuedAt  time.Time
	legBase   ResourcesDoc
	legStart  time.Time
	legCPU0   float64
	legAlloc0 int64
}

// ResourcesDoc is the per-job cost block clients see in the JobDoc:
// what this job actually consumed, accumulated across every
// crash/resume leg (a resumed job's totals grow, never reset). CPU
// and allocation are process-wide deltas over the job's running legs —
// exact at Concurrency 1 (the default), an upper bound when jobs
// share the process.
type ResourcesDoc struct {
	QueuedAt   string `json:"queued_at,omitempty"`   // RFC 3339, UTC
	StartedAt  string `json:"started_at,omitempty"`  // first leg start
	FinishedAt string `json:"finished_at,omitempty"` // terminal state

	WallSeconds      float64 `json:"wall_sec"`       // sum of running-leg wall time
	QueueWaitSeconds float64 `json:"queue_wait_sec"` // sum of queued-state waits
	CPUSeconds       float64 `json:"cpu_sec"`
	AllocBytes       int64   `json:"alloc_bytes"`
	PathsPerSec      float64 `json:"paths_per_sec,omitempty"` // total paths / total wall
	Legs             int     `json:"legs"`                    // daemon generations that ran the job
}

// runlog renders the block as the schema-4 journal Resources record.
func (r ResourcesDoc) runlog() *runlog.Resources {
	return &runlog.Resources{
		WallSeconds:      r.WallSeconds,
		QueueWaitSeconds: r.QueueWaitSeconds,
		CPUSeconds:       r.CPUSeconds,
		AllocBytes:       r.AllocBytes,
		PathsPerSec:      r.PathsPerSec,
		Legs:             r.Legs,
	}
}

// beginLeg opens a running leg: it charges the wait since queuedAt to
// the queue-wait total, counts the leg, and captures the leg's wall /
// CPU / allocation baselines.
func (j *Job) beginLeg(snap obs.ResourceSnapshot) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.queuedAt.IsZero() {
		j.acc.QueueWaitSeconds += snap.Time.Sub(j.queuedAt).Seconds()
		j.queuedAt = time.Time{}
	}
	j.acc.Legs++
	if j.acc.StartedAt == "" {
		j.acc.StartedAt = snap.Time.UTC().Format(time.RFC3339Nano)
	}
	j.legBase = j.acc
	j.legStart = snap.Time
	j.legCPU0 = snap.CPUSeconds
	j.legAlloc0 = snap.AllocBytes
}

// accountLeg folds the current leg's cost so far onto the leg-start
// base and returns the updated totals. Called on every shard boundary
// (so a crash loses at most one shard of accounting, mirroring the
// checkpoint guarantee) and at leg end.
func (j *Job) accountLeg(snap obs.ResourceSnapshot) ResourcesDoc {
	j.mu.Lock()
	defer j.mu.Unlock()
	cur := j.legBase
	cur.WallSeconds += snap.Time.Sub(j.legStart).Seconds()
	cur.CPUSeconds += snap.CPUSeconds - j.legCPU0
	cur.AllocBytes += snap.AllocBytes - j.legAlloc0
	j.acc = cur
	return cur
}

// finishAccounting stamps the terminal fields (finish time, overall
// paths/s across every leg's wall time) onto the accumulated block
// and returns it.
func (j *Job) finishAccounting(paths int64) ResourcesDoc {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.acc.FinishedAt = time.Now().UTC().Format(time.RFC3339Nano)
	if paths > 0 && j.acc.WallSeconds > 0 {
		j.acc.PathsPerSec = float64(paths) / j.acc.WallSeconds
	}
	return j.acc
}

// Resources returns the job's accumulated cost block, or nil if no
// leg has run (cache hits enumerate nothing and cost nothing).
func (j *Job) Resources() *ResourcesDoc {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.acc.Legs == 0 {
		return nil
	}
	r := j.acc
	return &r
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Spec returns the job's (normalized) submitted spec.
func (j *Job) Spec() JobSpec { return j.spec }

// Key returns the job's content-addressed cache key.
func (j *Job) Key() string { return j.key }

// Trace returns the job's end-to-end trace ID (minted at submission,
// or the one the client supplied).
func (j *Job) Trace() string { return j.trace }

// JobDoc is a job rendered for clients (HTTP responses, result.json).
type JobDoc struct {
	ID          string        `json:"id"`
	State       string        `json:"state"`
	Spec        JobSpec       `json:"spec"`
	Key         string        `json:"key"`
	Trace       string        `json:"trace,omitempty"`
	Cached      bool          `json:"cached"`
	Resumed     bool          `json:"resumed,omitempty"`
	Coalesced   int64         `json:"coalesced,omitempty"`
	Progress    *ProgressDoc  `json:"progress,omitempty"`
	Resources   *ResourcesDoc `json:"resources,omitempty"`
	Stats       *statsDoc     `json:"stats,omitempty"`
	Certificate string        `json:"certificate,omitempty"`
	Error       string        `json:"error,omitempty"`
}

// ProgressDoc is the live progress block of a running job.
type ProgressDoc struct {
	PathsDone   int64 `json:"paths_done"`
	PathsTotal  int64 `json:"paths_total"`
	ShardsDone  int64 `json:"shards_done"`
	ShardsTotal int64 `json:"shards_total"`
}

// Snapshot renders the job's current state.
func (j *Job) Snapshot() JobDoc {
	j.mu.Lock()
	defer j.mu.Unlock()
	doc := JobDoc{
		ID: j.id, State: j.state, Spec: j.spec, Key: j.key, Trace: j.trace,
		Cached: j.cached, Resumed: j.resumed, Coalesced: j.coalesced,
		Stats: j.stats, Certificate: j.cert, Error: j.errMsg,
	}
	if j.acc.Legs > 0 {
		res := j.acc
		doc.Resources = &res
	}
	if j.state == StateRunning && (len(j.workers) > 0 || j.shards != nil) {
		p := &ProgressDoc{}
		for _, w := range j.workers {
			p.PathsDone += w.Done
			p.PathsTotal += w.Total
		}
		if j.shards != nil {
			p.ShardsDone, p.ShardsTotal = j.shards.Done, j.shards.Total
		}
		doc.Progress = p
	}
	return doc
}

func (j *Job) onProgress(p routing.Progress) {
	j.mu.Lock()
	j.workers[p.Worker] = p
	j.mu.Unlock()
}

func (j *Job) onShard(d routing.ShardDone) {
	j.mu.Lock()
	j.shards = &d
	j.mu.Unlock()
}

// Options configures a Server.
type Options struct {
	// DataDir is the service's state root (required): job directories
	// (spec + checkpoint + result) under jobs/, the result-cache spill
	// under cache/.
	DataDir string
	// QueueDepth bounds the FIFO job queue (default 64). Submissions
	// beyond it fail with ErrQueueFull rather than queueing unboundedly.
	QueueDepth int
	// Concurrency is the number of jobs running at once (default 1).
	Concurrency int
	// JobWorkers is the verifier goroutine budget per running job
	// (default: GOMAXPROCS / Concurrency, at least 1), so Concurrency
	// tenants share the machine instead of each grabbing every core.
	JobWorkers int
	// MaxK rejects submissions beyond this recursion depth (default 6:
	// k=7 enumeration is the distributed roadmap item, not one box).
	MaxK int
	// Registry receives the service and engine metrics (one is created
	// if nil; reuse the daemon's so /metrics shows everything).
	Registry *obs.Registry
	// OnShard, when non-nil, observes every shard completion of every
	// job (tests use it as a failpoint for crash/resume drills).
	OnShard func(job *Job, d routing.ShardDone)
	// OnJobDone, when non-nil, observes every job reaching a terminal
	// state (done or failed).
	OnJobDone func(job *Job)
	// Journal, when non-nil, receives the service's runlog records:
	// per-job run_start, shard_done, heartbeat, and final events, plus
	// the engine's spans, every one stamped with the job's trace and ID
	// (schema 3) so cmd/routelog reconstructs per-job waterfalls.
	Journal *runlog.Writer
	// Heartbeat is the per-job heartbeat cadence — a journal record and
	// an SSE event carrying the live metric snapshot — while the job
	// runs (0 disables heartbeats).
	Heartbeat time.Duration
}

// A Server owns the job queue, the runners, and the result cache.
type Server struct {
	opts  Options
	reg   *obs.Registry
	ins   *routing.Instruments
	cache *resultCache
	met   metrics

	queue   chan *Job
	stop    chan struct{}
	wg      sync.WaitGroup
	running atomic.Int64 // live enumeration count behind the gauge

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []*Job
	inflight map[string]*Job // cache key -> queued/running job
	seq      int
	draining bool
	started  bool
}

type metrics struct {
	submitted, completed, failed *obs.Counter
	cacheHits, cacheMisses       *obs.Counter
	coalesced                    *obs.Counter
	queueDepth, running          *obs.Gauge
	jobSeconds                   *obs.Histogram
	// Labeled families: the same service events, split by outcome so
	// one dashboard query distinguishes hit/miss/coalesced submissions
	// and done/resumed/failed/paused runs. The unlabeled counters above
	// remain the stable scripting surface.
	submissions *obs.CounterVec   // outcome: hit | miss | coalesced
	finished    *obs.CounterVec   // outcome: done | resumed | failed | paused
	jobDuration *obs.HistogramVec // outcome: done | resumed | failed
	// Cost attribution (observed once per job at its terminal state,
	// with the totals accumulated across every crash/resume leg).
	queueWait  *obs.HistogramVec // outcome: done | resumed | failed
	cpuSeconds *obs.HistogramVec // outcome: done | resumed | failed
}

// New builds a Server over opts.DataDir and recovers every incomplete
// job it finds there into the queue (they resume from their
// checkpoints once Start runs). Completed jobs are reloaded too, so
// GET /jobs/{id} keeps answering across restarts.
func New(opts Options) (*Server, error) {
	if opts.DataDir == "" {
		return nil, errors.New("serve: Options.DataDir is required")
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 1
	}
	if opts.JobWorkers <= 0 {
		opts.JobWorkers = max(1, runtime.GOMAXPROCS(0)/opts.Concurrency)
	}
	if opts.MaxK <= 0 {
		opts.MaxK = 6
	}
	if opts.Registry == nil {
		opts.Registry = obs.NewRegistry()
	}
	for _, sub := range []string{"jobs", "cache"} {
		if err := os.MkdirAll(filepath.Join(opts.DataDir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
	}
	reg := opts.Registry
	s := &Server{
		opts:     opts,
		reg:      reg,
		ins:      routing.NewInstruments(reg),
		cache:    newResultCache(filepath.Join(opts.DataDir, "cache")),
		queue:    make(chan *Job, opts.QueueDepth),
		stop:     make(chan struct{}),
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
		met: metrics{
			submitted: reg.Counter("serve_jobs_submitted_total",
				"verification jobs submitted (including cache hits and coalesced submissions)"),
			completed: reg.Counter("serve_jobs_completed_total",
				"verification jobs completed with a certificate"),
			failed: reg.Counter("serve_jobs_failed_total",
				"verification jobs that ended in an error"),
			cacheHits: reg.Counter("serve_result_cache_hits_total",
				"submissions served from the content-addressed result cache"),
			cacheMisses: reg.Counter("serve_result_cache_misses_total",
				"submissions that required an enumeration run"),
			coalesced: reg.Counter("serve_jobs_coalesced_total",
				"submissions coalesced onto an identical in-flight job"),
			queueDepth: reg.Gauge("serve_queue_depth",
				"jobs waiting in the FIFO queue"),
			running: reg.Gauge("serve_jobs_running",
				"jobs currently enumerating"),
			jobSeconds: reg.Histogram("serve_job_seconds",
				"wall time of one enumeration run (cache hits excluded)", obs.LatencyBuckets),
			submissions: reg.CounterVec("serve_submissions_total",
				"job submissions by outcome (hit = result cache, miss = enumeration run, coalesced = joined an in-flight run)",
				"outcome"),
			finished: reg.CounterVec("serve_jobs_finished_total",
				"enumeration runs reaching a terminal or drained state, by outcome",
				"outcome"),
			jobDuration: reg.HistogramVec("serve_job_duration_seconds",
				"wall time of one enumeration run, by outcome", obs.LatencyBuckets,
				"outcome"),
			queueWait: reg.HistogramVec("serve_job_queue_wait_seconds",
				"total time a job spent queued before its legs ran, by outcome",
				obs.LatencyBuckets, "outcome"),
			cpuSeconds: reg.HistogramVec("serve_job_cpu_seconds",
				"process CPU seconds attributed to a job across its legs, by outcome",
				obs.LatencyBuckets, "outcome"),
		},
	}
	if opts.Journal != nil {
		s.ins.Tracer = obs.NewTracer(opts.Journal, runlog.Record{Tool: toolName})
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// Start launches the runner pool. Idempotent.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	for i := 0; i < s.opts.Concurrency; i++ {
		s.wg.Add(1)
		go s.runner()
	}
}

// BeginDrain flips the service into its draining state: submissions
// start failing with ErrDraining, running jobs stop claiming shards,
// open SSE streams end, and /healthz reports "draining". Idempotent.
// Daemons call it before shutting their HTTP listener down, so
// in-flight streams release the listener instead of pinning it until
// the drain deadline.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.draining {
		s.draining = true
		close(s.stop)
	}
}

// Shutdown drains the service: BeginDrain, then wait for the running
// jobs to park (their checkpoints persist, so a restart resumes them)
// until ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain incomplete: %w", ctx.Err())
	}
}

// normalize validates and canonicalizes a submitted spec, resolving
// its algorithm from the catalog.
func (s *Server) normalize(spec JobSpec) (JobSpec, *bilinear.Algorithm, error) {
	spec.Alg = strings.TrimSpace(spec.Alg)
	var alg *bilinear.Algorithm
	for _, a := range bilinear.All() {
		if a.Name == spec.Alg {
			alg = a
			break
		}
	}
	if alg == nil {
		names := make([]string, 0, 8)
		for _, a := range bilinear.All() {
			names = append(names, a.Name)
		}
		return spec, nil, fmt.Errorf("unknown algorithm %q (catalog: %s)", spec.Alg, strings.Join(names, ", "))
	}
	if spec.K < 1 || spec.K > s.opts.MaxK {
		return spec, nil, fmt.Errorf("k = %d out of range [1, %d]", spec.K, s.opts.MaxK)
	}
	switch spec.Kernel {
	case "":
		spec.Kernel = routing.KernelScratch
	case routing.KernelScratch, routing.KernelSeed:
	default:
		return spec, nil, fmt.Errorf("unknown kernel %q (want %q or %q)",
			spec.Kernel, routing.KernelScratch, routing.KernelSeed)
	}
	if spec.AdjStride < 0 || spec.ShardRows < 0 {
		return spec, nil, fmt.Errorf("adjstride and shardrows must be ≥ 0")
	}
	return spec, alg, nil
}

// Submit enqueues a job for spec with a freshly minted trace ID. See
// SubmitTrace.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	return s.SubmitTrace(spec, "")
}

// SubmitTrace enqueues a job for spec, or returns the identical
// in-flight job (single-flight coalescing), or an immediately-done job
// served from the result cache. The returned Job may therefore be in
// any state; clients poll or stream it by ID either way.
//
// trace is the end-to-end trace ID the job's every journal record and
// response will carry: "" mints one, a client-supplied value is
// validated (obs.ValidTraceID) and adopted. A coalesced submission
// joins the in-flight job's existing trace — one enumeration, one
// trace.
func (s *Server) SubmitTrace(spec JobSpec, trace string) (*Job, error) {
	spec, alg, err := s.normalize(spec)
	if err != nil {
		return nil, err
	}
	switch {
	case trace == "":
		trace = obs.NewTraceID()
	case !obs.ValidTraceID(trace):
		return nil, fmt.Errorf("invalid trace ID %q (want 1-%d chars of [0-9A-Za-z_-])",
			trace, obs.MaxTraceIDLen)
	}
	key := routing.CacheKey(alg, spec.K, spec.Kernel, spec.AdjStride, spec.Orbits)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	s.met.submitted.Inc()

	// Single-flight: an identical queued or running job absorbs this
	// submission — one enumeration, many waiters.
	if j := s.inflight[key]; j != nil {
		j.mu.Lock()
		j.coalesced++
		j.mu.Unlock()
		s.met.coalesced.Inc()
		s.met.submissions.With("coalesced").Inc()
		return j, nil
	}
	// Content-addressed cache: certificates computed by any earlier
	// run (this process or a previous one — the spill survives
	// restarts) come back without enumerating anything.
	if e := s.cache.get(key); e != nil {
		s.met.cacheHits.Inc()
		s.met.submissions.With("hit").Inc()
		j := s.newJobLocked(spec, alg, key, trace)
		j.state, j.cached = StateDone, true
		stats := e.Stats
		j.stats, j.cert = &stats, e.Certificate
		if err := s.persistSpec(j); err != nil {
			fmt.Fprintf(os.Stderr, "serve: persist %s: %v\n", j.id, err)
		}
		s.persistJob(j)
		return j, nil
	}
	s.met.cacheMisses.Inc()
	s.met.submissions.With("miss").Inc()

	j := s.newJobLocked(spec, alg, key, trace)
	if err := s.persistSpec(j); err != nil {
		delete(s.jobs, j.id)
		s.order = s.order[:len(s.order)-1]
		return nil, err
	}
	select {
	case s.queue <- j:
	default:
		delete(s.jobs, j.id)
		s.order = s.order[:len(s.order)-1]
		os.RemoveAll(j.dir)
		return nil, ErrQueueFull
	}
	s.inflight[key] = j
	s.met.queueDepth.SetInt(int64(len(s.queue)))
	j.events.publish(eventQueued, j.Snapshot())
	return j, nil
}

// newJobLocked allocates and registers a job; s.mu must be held.
func (s *Server) newJobLocked(spec JobSpec, alg *bilinear.Algorithm, key, trace string) *Job {
	s.seq++
	id := fmt.Sprintf("j%08d", s.seq)
	now := time.Now()
	j := &Job{
		id: id, spec: spec, key: key, alg: alg, trace: trace,
		dir:      filepath.Join(s.opts.DataDir, "jobs", id),
		state:    StateQueued,
		workers:  make(map[int]routing.Progress),
		queuedAt: now,
	}
	j.acc.QueuedAt = now.UTC().Format(time.RFC3339Nano)
	s.jobs[id] = j
	s.order = append(s.order, j)
	return j
}

// Get returns a job by ID.
func (s *Server) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// QueueLen returns the number of jobs waiting in the FIFO queue (the
// anomaly profiler's queue-depth trigger reads it).
func (s *Server) QueueLen() int { return len(s.queue) }

// Jobs returns every known job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Job(nil), s.order...)
}

// runner pulls jobs off the FIFO queue until Shutdown.
func (s *Server) runner() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case j := <-s.queue:
			s.met.queueDepth.SetInt(int64(len(s.queue)))
			select {
			case <-s.stop:
				// Drain won the race: leave the job queued on disk for
				// the next start.
				return
			default:
			}
			s.runJob(j)
		}
	}
}

// journalEmit appends a record to the service journal (nil-safe;
// journal failures are reported, never fatal — observability must not
// fail a verification).
func (s *Server) journalEmit(rec runlog.Record) {
	if err := s.opts.Journal.Emit(rec); err != nil {
		fmt.Fprintf(os.Stderr, "serve: journal: %v\n", err)
	}
}

// startJobHeartbeat launches the per-job heartbeat loop: every
// Options.Heartbeat it journals a heartbeat record (stamped with the
// job's trace identity, carrying the live metric snapshot) and
// publishes an SSE heartbeat event. The returned stop is idempotent
// and emits one final heartbeat, so the journal records the end state.
func (s *Server) startJobHeartbeat(j *Job, base runlog.Record) (stop func()) {
	if s.opts.Heartbeat <= 0 {
		return func() {}
	}
	emit := func() {
		rec := base
		rec.Event = runlog.EventHeartbeat
		rec.Metrics = s.reg.Snapshot()
		s.journalEmit(rec)
		j.events.publish(eventHeartbeat, j.Snapshot())
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(s.opts.Heartbeat)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				emit()
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
			emit()
		})
	}
}

// runJob executes one job through the checkpointed verifier, with the
// job's trace identity threaded through the context so every span the
// engine emits — and every record runJob journals — carries it.
func (s *Server) runJob(j *Job) {
	j.mu.Lock()
	j.state = StateRunning
	resumed := j.resumed
	j.mu.Unlock()
	s.met.running.SetInt(s.running.Add(1))

	ctx := obs.WithTraceContext(context.Background(),
		obs.TraceContext{TraceID: j.trace, JobID: j.id})
	base := runlog.Record{
		Tool: toolName, Alg: j.spec.Alg, K: j.spec.K,
		Workers: s.opts.JobWorkers, Trace: j.trace, Job: j.id,
	}
	startRec := base
	startRec.Event = runlog.EventRunStart
	startRec.Resumed = resumed
	s.journalEmit(startRec)
	j.events.publish(eventStarted, j.Snapshot())
	stopHeartbeat := s.startJobHeartbeat(j, base)

	j.beginLeg(obs.ReadResources())
	start := time.Now()
	st, err := routing.RunJob(ctx, routing.JobConfig{
		Alg:            j.alg,
		K:              j.spec.K,
		Workers:        s.opts.JobWorkers,
		AdjStride:      j.spec.AdjStride,
		Kernel:         j.spec.Kernel,
		Orbits:         j.spec.Orbits,
		CheckpointPath: filepath.Join(j.dir, "run.ckpt"),
		ShardRows:      j.spec.ShardRows,
		Resume:         true, // missing checkpoint = fresh run
		Stop:           s.stop,
		OnShard: func(d routing.ShardDone) {
			j.onShard(d)
			// Fold the leg's cost so far into the accumulated block and
			// persist it before the external failpoint can fire: a crash
			// loses at most one shard of accounting, mirroring the
			// checkpoint's durability guarantee.
			j.accountLeg(obs.ReadResources())
			if err := s.persistSpec(j); err != nil {
				fmt.Fprintf(os.Stderr, "serve: persist %s: %v\n", j.id, err)
			}
			rec := base
			rec.Event = runlog.EventShardDone
			rec.Shard, rec.ShardsDone, rec.ShardsTotal, rec.ShardPaths = d.Shard, d.Done, d.Total, d.Paths
			s.journalEmit(rec)
			j.events.publish(eventShard, j.Snapshot())
			if s.opts.OnShard != nil {
				s.opts.OnShard(j, d)
			}
		},
		Progress: j.onProgress,
		Obs:      s.ins,
	})
	s.met.running.SetInt(s.running.Add(-1))
	stopHeartbeat()
	elapsed := time.Since(start)
	cur := j.accountLeg(obs.ReadResources())

	finalRec := base
	finalRec.Event = runlog.EventFinal
	finalRec.Resumed = resumed
	finalRec.ElapsedSec = elapsed.Seconds()

	switch {
	case err == nil:
		s.met.jobSeconds.Observe(elapsed.Seconds())
		outcome := "done"
		if resumed {
			outcome = "resumed"
		}
		s.met.finished.With(outcome).Inc()
		s.met.jobDuration.With(outcome).Observe(elapsed.Seconds())
		cur = j.finishAccounting(st.NumPaths)
		s.met.queueWait.With(outcome).Observe(cur.QueueWaitSeconds)
		s.met.cpuSeconds.With(outcome).Observe(cur.CPUSeconds)
		finalRec.Resources = cur.runlog()
		doc := statsOf(st)
		cert := certificate(st)
		j.mu.Lock()
		j.state, j.stats, j.cert = StateDone, &doc, cert
		j.mu.Unlock()
		finalRec.Paths = st.NumPaths
		finalRec.TotalHits = st.TotalHits
		finalRec.MaxVertexHits = st.MaxVertexHits
		finalRec.MaxMetaHits = st.MaxMetaHits
		finalRec.Bound = st.Bound
		finalRec.AdjChecked = st.AdjacencyChecked
		if elapsed.Seconds() > 0 {
			finalRec.PathsPerSec = float64(st.NumPaths) / elapsed.Seconds()
		}
		s.journalEmit(finalRec)
		// Fill the cache before releasing the single-flight slot, so a
		// submission racing the handoff finds one of the two.
		if err := s.cache.put(&cacheEntry{Key: j.key, Spec: j.spec, Stats: doc, Certificate: cert}); err != nil {
			// The certificate stands; only reuse is lost.
			fmt.Fprintf(os.Stderr, "serve: cache spill: %v\n", err)
		}
		s.finishJob(j)
		s.met.completed.Inc()
		j.events.publish(eventFinal, j.Snapshot())
	case errors.Is(err, routing.ErrPaused):
		// Drained by Shutdown: back to queued. The checkpoint holds
		// every completed shard; recovery re-enqueues it on restart.
		// The paused final record still carries the accumulated
		// Resources so far, so journals merged across generations show
		// the cost trajectory leg by leg.
		s.met.finished.With("paused").Inc()
		j.mu.Lock()
		j.state = StateQueued
		j.queuedAt = time.Now() // the next leg's wait starts now
		j.mu.Unlock()
		finalRec.Paused = true
		finalRec.Resources = cur.runlog()
		s.journalEmit(finalRec)
		if err := s.persistSpec(j); err != nil {
			fmt.Fprintf(os.Stderr, "serve: persist %s: %v\n", j.id, err)
		}
	default:
		s.met.finished.With("failed").Inc()
		s.met.jobDuration.With("failed").Observe(elapsed.Seconds())
		cur = j.finishAccounting(0)
		s.met.queueWait.With("failed").Observe(cur.QueueWaitSeconds)
		s.met.cpuSeconds.With("failed").Observe(cur.CPUSeconds)
		finalRec.Resources = cur.runlog()
		j.mu.Lock()
		j.state, j.errMsg = StateFailed, err.Error()
		j.mu.Unlock()
		finalRec.Error = err.Error()
		s.journalEmit(finalRec)
		s.finishJob(j)
		s.met.failed.Inc()
		j.events.publish(eventFinal, j.Snapshot())
	}
}

// finishJob persists a terminal job and releases its single-flight slot.
func (s *Server) finishJob(j *Job) {
	s.mu.Lock()
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	s.mu.Unlock()
	s.persistJob(j)
	if s.opts.OnJobDone != nil {
		s.opts.OnJobDone(j)
	}
}

// persistSpec writes the job's spec.json, the record recovery needs
// to resume it. It carries the accumulated Resources block (rewritten
// on every shard boundary), so a crash/resume leg starts from the
// previous legs' totals instead of resetting them.
func (s *Server) persistSpec(j *Job) error {
	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	return writeJSON(filepath.Join(j.dir, "spec.json"), specRecord{
		ID: j.id, Key: j.key, Trace: j.trace, Spec: j.spec,
		Resources: j.Resources(),
	})
}

// specRecord is the on-disk spec.json schema. Trace is persisted so a
// resumed job keeps its end-to-end trace across daemon restarts;
// Resources is the job's accumulated cost, so resume legs add to the
// totals instead of starting from zero.
type specRecord struct {
	ID        string        `json:"id"`
	Key       string        `json:"key"`
	Trace     string        `json:"trace,omitempty"`
	Spec      JobSpec       `json:"spec"`
	Resources *ResourcesDoc `json:"resources,omitempty"`
}

// persistJob writes the job's terminal result.json (best-effort: an
// unwritable result only costs restart continuity, not the response).
func (s *Server) persistJob(j *Job) {
	if err := os.MkdirAll(j.dir, 0o755); err == nil {
		if err := writeJSON(filepath.Join(j.dir, "result.json"), j.Snapshot()); err != nil {
			fmt.Fprintf(os.Stderr, "serve: persist %s: %v\n", j.id, err)
		}
	}
}

// recover scans the jobs directory: jobs with a result.json reload as
// terminal records; jobs without one re-enqueue (their checkpoints
// resume where the killed daemon stopped), in original submission
// order so FIFO fairness survives the restart.
func (s *Server) recover() error {
	dir := filepath.Join(s.opts.DataDir, "jobs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // jNNNNNNNN sorts by submission order
	for _, name := range names {
		jdir := filepath.Join(dir, name)
		var specRec specRecord
		if err := readJSON(filepath.Join(jdir, "spec.json"), &specRec); err != nil {
			fmt.Fprintf(os.Stderr, "serve: skipping job dir %s: %v\n", name, err)
			continue
		}
		spec, alg, err := s.normalize(specRec.Spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: skipping job %s: %v\n", name, err)
			continue
		}
		var n int
		if _, err := fmt.Sscanf(name, "j%d", &n); err == nil && n > s.seq {
			s.seq = n
		}
		if specRec.Trace == "" {
			// Pre-trace job directory: mint one so the resumed run is
			// still traceable end to end.
			specRec.Trace = obs.NewTraceID()
		}
		j := &Job{
			id: name, spec: spec, key: specRec.Key, alg: alg, dir: jdir,
			trace:   specRec.Trace,
			workers: make(map[int]routing.Progress),
		}
		if specRec.Resources != nil {
			// The previous generations' accumulated cost: the next leg
			// adds to these totals rather than resetting them.
			j.acc = *specRec.Resources
		}
		var doc JobDoc
		if err := readJSON(filepath.Join(jdir, "result.json"), &doc); err == nil {
			// Terminal job: reload the record clients may still poll.
			j.state, j.cached = doc.State, doc.Cached
			j.stats, j.cert, j.errMsg = doc.Stats, doc.Certificate, doc.Error
			j.coalesced = doc.Coalesced
			if doc.Resources != nil {
				j.acc = *doc.Resources // final totals beat spec.json's running copy
			}
		} else {
			// Incomplete: resume it. The wait this generation's queue
			// charges the job starts at recovery, not at the original
			// submission — downtime is not queue wait.
			j.state, j.resumed = StateQueued, true
			j.queuedAt = time.Now()
			select {
			case s.queue <- j:
				if s.inflight[j.key] == nil {
					s.inflight[j.key] = j
				}
			default:
				return fmt.Errorf("serve: %d recovered jobs exceed queue depth %d", len(names), s.opts.QueueDepth)
			}
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j)
	}
	s.met.queueDepth.SetInt(int64(len(s.queue)))
	return nil
}

// Health is the /healthz snapshot provider for the daemon. While the
// server drains (BeginDrain/Shutdown) the status is "draining", so
// load balancers and orchestrators distinguish "about to go away"
// from healthy — and from down.
func (s *Server) Health() any {
	s.mu.Lock()
	defer s.mu.Unlock()
	counts := map[string]int{}
	for _, j := range s.order {
		j.mu.Lock()
		counts[j.state]++
		j.mu.Unlock()
	}
	status := "ok"
	if s.draining {
		status = "draining"
	}
	return map[string]any{
		"status":        status,
		"draining":      s.draining,
		"queue_depth":   len(s.queue),
		"queue_cap":     s.opts.QueueDepth,
		"concurrency":   s.opts.Concurrency,
		"job_workers":   s.opts.JobWorkers,
		"jobs":          counts,
		"cache_entries": s.cache.size(),
		// Process identity (uptime, build info): scrapes and the
		// crash/resume smoke use it to tell daemon generations apart.
		"process": obs.ProcessInfo(),
	}
}

// writeJSON atomically persists v as indented JSON (write tmp, rename).
func writeJSON(path string, v any) error {
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: encode %s: %w", path, err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(body, '\n'), 0o644); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: %w", err)
	}
	return nil
}

// readJSON loads a JSON file into v.
func readJSON(path string, v any) error {
	body, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("serve: decode %s: %w", path, err)
	}
	return nil
}
