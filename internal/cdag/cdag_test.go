package cdag

import (
	"math/rand"
	"testing"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/rat"
)

func mustGraph(t *testing.T, alg *bilinear.Algorithm, r int) *Graph {
	t.Helper()
	g, err := New(alg, r)
	if err != nil {
		t.Fatalf("New(%s, %d): %v", alg.Name, r, err)
	}
	return g
}

func TestNewRejectsBadR(t *testing.T) {
	if _, err := New(bilinear.Strassen(), 0); err == nil {
		t.Fatal("r=0 accepted")
	}
	if _, err := New(bilinear.Strassen(), 40); err == nil {
		t.Fatal("astronomically large graph accepted")
	}
}

func TestLayerSizes(t *testing.T) {
	g := mustGraph(t, bilinear.Strassen(), 3)
	// Encoding rank j has 7^j·4^(3-j) vertices.
	want := []int{64, 112, 196, 343}
	for j, w := range want {
		if got := g.LayerSize(EncA, j); got != w {
			t.Errorf("encA rank %d size = %d, want %d", j, got, w)
		}
		if got := g.LayerSize(EncB, j); got != w {
			t.Errorf("encB rank %d size = %d, want %d", j, got, w)
		}
	}
	// Decoding rank j has 7^(3-j)·4^j vertices.
	wantDec := []int{343, 196, 112, 64}
	for j, w := range wantDec {
		if got := g.LayerSize(Dec, j); got != w {
			t.Errorf("dec rank %d size = %d, want %d", j, got, w)
		}
	}
	total := 2*(64+112+196+343) + (343 + 196 + 112 + 64)
	if g.NumVertices() != total {
		t.Errorf("NumVertices = %d, want %d", g.NumVertices(), total)
	}
}

func TestLocateIDRoundTrip(t *testing.T) {
	g := mustGraph(t, bilinear.Strassen(), 3)
	for v := V(0); int(v) < g.NumVertices(); v++ {
		kind, rank, idx := g.Locate(v)
		if got := g.ID(kind, rank, idx); got != v {
			t.Fatalf("ID(Locate(%d)) = %d", v, got)
		}
	}
}

func TestLayerBase(t *testing.T) {
	// LayerBase is the hoisted half of ID: adding a within-layer index
	// must land on exactly ID(kind, rank, idx) for every layer.
	g := mustGraph(t, bilinear.Winograd(), 3)
	for _, kind := range []Kind{EncA, EncB, Dec} {
		for rank := 0; rank <= g.R; rank++ {
			base := g.LayerBase(kind, rank)
			for _, idx := range []int64{0, 1, int64(g.LayerSize(kind, rank)) - 1} {
				if got, want := base+V(idx), g.ID(kind, rank, idx); got != want {
					t.Fatalf("LayerBase(%v,%d)+%d = %d, want ID = %d", kind, rank, idx, got, want)
				}
			}
		}
	}
	for _, bad := range []int{-1, g.R + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LayerBase(EncA, %d) did not panic", bad)
				}
			}()
			g.LayerBase(EncA, bad)
		}()
	}
}

func TestParentsChildrenInverse(t *testing.T) {
	for _, alg := range []*bilinear.Algorithm{bilinear.Strassen(), bilinear.Winograd(), bilinear.DisconnectedFast()} {
		r := 2
		g := mustGraph(t, alg, r)
		// child lists must be the exact transpose of parent lists.
		childCount := make(map[[2]V]rat.Rat)
		for v := V(0); int(v) < g.NumVertices(); v++ {
			for _, e := range g.Parents(v) {
				childCount[[2]V{e.To, v}] = e.Coeff
			}
		}
		seen := 0
		for v := V(0); int(v) < g.NumVertices(); v++ {
			for _, e := range g.Children(v) {
				c, ok := childCount[[2]V{v, e.To}]
				if !ok {
					t.Fatalf("%s: child edge %d->%d has no parent edge", alg.Name, v, e.To)
				}
				if !c.Equal(e.Coeff) {
					t.Fatalf("%s: edge %d->%d coeff mismatch %v vs %v", alg.Name, v, e.To, c, e.Coeff)
				}
				seen++
			}
		}
		if seen != len(childCount) {
			t.Fatalf("%s: %d child edges vs %d parent edges", alg.Name, seen, len(childCount))
		}
	}
}

func TestRankMonotone(t *testing.T) {
	g := mustGraph(t, bilinear.Winograd(), 3)
	for v := V(0); int(v) < g.NumVertices(); v++ {
		rv := g.GlobalRank(v)
		for _, e := range g.Parents(v) {
			if g.GlobalRank(e.To) != rv-1 {
				t.Fatalf("parent rank %d, vertex rank %d", g.GlobalRank(e.To), rv)
			}
		}
	}
	// Outputs at rank 2r+1, inputs at 0.
	if got := g.GlobalRank(g.Output(0)); got != 2*g.R+1 {
		t.Errorf("output global rank = %d", got)
	}
	if got := g.GlobalRank(g.InputA(0)); got != 0 {
		t.Errorf("input global rank = %d", got)
	}
	if got := g.GlobalRank(g.Product(0)); got != g.R+1 {
		t.Errorf("product global rank = %d", got)
	}
}

func TestInputOutputPredicates(t *testing.T) {
	g := mustGraph(t, bilinear.Strassen(), 2)
	if !g.IsInput(g.InputA(3)) || !g.IsInput(g.InputB(0)) {
		t.Error("IsInput false on inputs")
	}
	if !g.IsOutput(g.Output(5)) {
		t.Error("IsOutput false on output")
	}
	if !g.IsProduct(g.Product(11)) {
		t.Error("IsProduct false on product")
	}
	if g.IsInput(g.Product(0)) || g.IsOutput(g.Product(0)) {
		t.Error("product misclassified")
	}
	if len(g.Parents(g.InputA(0))) != 0 {
		t.Error("input has parents")
	}
	if len(g.Children(g.Output(0))) != 0 {
		t.Error("output has children")
	}
	if got := g.Parents(g.Product(5)); len(got) != 2 {
		t.Errorf("product parents = %d, want 2", len(got))
	}
}

func TestEvaluateMatchesClassical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		alg *bilinear.Algorithm
		r   int
	}{
		{bilinear.Strassen(), 1},
		{bilinear.Strassen(), 2},
		{bilinear.Strassen(), 3},
		{bilinear.Strassen(), 4},
		{bilinear.Winograd(), 3},
		{bilinear.Classical(2), 3},
		{bilinear.Classical(3), 2},
		{bilinear.StrassenSquared(), 2},
		{bilinear.DisconnectedFast(), 2},
	}
	lad, err := bilinear.Laderman()
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, struct {
		alg *bilinear.Algorithm
		r   int
	}{lad, 2})
	for _, c := range cases {
		g := mustGraph(t, c.alg, c.r)
		if err := g.Validate(rng); err != nil {
			t.Errorf("%s r=%d: %v", c.alg.Name, c.r, err)
		}
	}
}

func TestCopiesCarrySameValue(t *testing.T) {
	// The defining property of a meta-vertex: every member has the value
	// of its root. Checked against a full numeric evaluation.
	rng := rand.New(rand.NewSource(99))
	for _, alg := range []*bilinear.Algorithm{bilinear.Strassen(), bilinear.Classical(2), bilinear.DisconnectedFast()} {
		g := mustGraph(t, alg, 2)
		n := g.N()
		inA := make([]rat.Mod, n*n)
		inB := make([]rat.Mod, n*n)
		for i := range inA {
			inA[i] = rat.Mod(rng.Int63n(int64(rat.ModP)))
			inB[i] = rat.Mod(rng.Int63n(int64(rat.ModP)))
		}
		val := g.Evaluate(inA, inB)
		copies := 0
		for v := V(0); int(v) < g.NumVertices(); v++ {
			root := g.MetaRoot(v)
			if val[v] != val[root] {
				t.Fatalf("%s: vertex %s value %d differs from root %s value %d",
					alg.Name, g.Label(v), val[v], g.Label(root), val[root])
			}
			if g.IsCopy(v) {
				copies++
				if root == v {
					t.Fatalf("%s: copy vertex %d is its own root", alg.Name, v)
				}
			} else if root != v {
				t.Fatalf("%s: non-copy vertex %d has root %d", alg.Name, v, root)
			}
		}
		if alg.Name != "classical2" && copies == 0 {
			t.Errorf("%s: expected some copy vertices", alg.Name)
		}
	}
}

func TestMetaRootIdempotent(t *testing.T) {
	g := mustGraph(t, bilinear.DisconnectedFast(), 2)
	for v := V(0); int(v) < g.NumVertices(); v++ {
		r := g.MetaRoot(v)
		if g.MetaRoot(r) != r {
			t.Fatalf("MetaRoot not idempotent at %d", v)
		}
	}
}

func TestCopyIsSingleParentCoeffOne(t *testing.T) {
	g := mustGraph(t, bilinear.Strassen(), 3)
	for v := V(0); int(v) < g.NumVertices(); v++ {
		if !g.IsCopy(v) {
			continue
		}
		ps := g.Parents(v)
		if len(ps) != 1 || !ps[0].Coeff.IsOne() {
			t.Fatalf("copy %s has parents %v", g.Label(v), ps)
		}
	}
}

func TestSubcomputationPartition(t *testing.T) {
	g := mustGraph(t, bilinear.Strassen(), 3)
	for _, k := range []int{1, 2} {
		gk := mustGraph(t, bilinear.Strassen(), k)
		sizes := map[int64]int{}
		for v := V(0); int(v) < g.NumVertices(); v++ {
			i := g.Subcomputation(v, k)
			if i < 0 {
				continue
			}
			sizes[i]++
			prefix, local := g.Project(gk, v)
			if prefix != i {
				t.Fatalf("Project prefix %d vs Subcomputation %d", prefix, i)
			}
			if back := g.Embed(gk, local, prefix); back != v {
				t.Fatalf("Embed(Project(%d)) = %d", v, back)
			}
		}
		// Fact 1: b^(r-k) copies, each of the size of G_k's middle
		// 2(k+1) levels (its full vertex set).
		nCopies := 1
		for i := 0; i < g.R-k; i++ {
			nCopies *= 7
		}
		if len(sizes) != nCopies {
			t.Fatalf("k=%d: %d subcomputations, want %d", k, len(sizes), nCopies)
		}
		for i, s := range sizes {
			if s != gk.NumVertices() {
				t.Fatalf("k=%d: copy %d has %d vertices, want %d", k, i, s, gk.NumVertices())
			}
		}
	}
}

func TestSubcomputationEdgesStayInside(t *testing.T) {
	// Vertex-disjoint copies: an edge between two middle-level vertices
	// stays within one copy.
	g := mustGraph(t, bilinear.Winograd(), 3)
	k := 1
	for v := V(0); int(v) < g.NumVertices(); v++ {
		i := g.Subcomputation(v, k)
		if i < 0 {
			continue
		}
		for _, e := range g.Parents(v) {
			j := g.Subcomputation(e.To, k)
			if j >= 0 && j != i {
				t.Fatalf("edge %d->%d crosses subcomputations %d->%d", e.To, v, j, i)
			}
		}
	}
}

func TestSubInputsOutputs(t *testing.T) {
	g := mustGraph(t, bilinear.Strassen(), 3)
	gk := mustGraph(t, bilinear.Strassen(), 2)
	ins := g.SubInputs(3, 2)
	if len(ins) != 2*16 {
		t.Fatalf("SubInputs size %d, want 32", len(ins))
	}
	for _, v := range ins {
		if g.Subcomputation(v, 2) != 3 {
			t.Fatalf("SubInput not in subcomputation 3")
		}
		_, local := g.Project(gk, v)
		if !gk.IsInput(local) {
			t.Fatalf("SubInput does not project to an input of G_k")
		}
	}
	outs := g.SubOutputs(3, 2)
	if len(outs) != 16 {
		t.Fatalf("SubOutputs size %d, want 16", len(outs))
	}
	for _, v := range outs {
		_, local := g.Project(gk, v)
		if !gk.IsOutput(local) {
			t.Fatalf("SubOutput does not project to an output of G_k")
		}
	}
}

func TestLemma1InputDisjointDensity(t *testing.T) {
	// Lemma 1: at least a 1/b² fraction of the b^(r-k) subcomputations
	// can be chosen mutually input-disjoint (hypothesis: some vertex of
	// each encoding graph is non-duplicated, true for all fast catalog
	// algorithms).
	cases := []struct {
		alg *bilinear.Algorithm
		r   int
		k   int
	}{
		{bilinear.Strassen(), 3, 1},
		{bilinear.Strassen(), 4, 1},
		{bilinear.Strassen(), 4, 2},
		{bilinear.Winograd(), 3, 1},
	}
	for _, c := range cases {
		g := mustGraph(t, c.alg, c.r)
		picked := g.InputDisjointCollection(c.k)
		nSub := 1
		for i := 0; i < c.r-c.k; i++ {
			nSub *= c.alg.B()
		}
		bound := nSub / (c.alg.B() * c.alg.B())
		if len(picked) < bound {
			t.Errorf("%s r=%d k=%d: greedy picked %d < Lemma 1 bound %d",
				c.alg.Name, c.r, c.k, len(picked), bound)
		}
		// Verify actual disjointness.
		seen := map[V]struct{}{}
		for _, p := range picked {
			for _, root := range g.InputMetaRoots(p, c.k) {
				if _, dup := seen[root]; dup {
					t.Fatalf("%s: collection not input-disjoint", c.alg.Name)
				}
				seen[root] = struct{}{}
			}
		}
	}
}

func TestInputMetaRootsDedup(t *testing.T) {
	// In classical2, both products touching an input are bare copies, so
	// sub-inputs of different subcomputations can share meta-roots and
	// the per-subcomputation root set must be deduplicated.
	g := mustGraph(t, bilinear.Classical(2), 3)
	roots := g.InputMetaRoots(0, 1)
	for i := 1; i < len(roots); i++ {
		if roots[i] == roots[i-1] {
			t.Fatal("InputMetaRoots not deduplicated")
		}
	}
}

func TestCountedRanks(t *testing.T) {
	g := mustGraph(t, bilinear.Strassen(), 3)
	k := 1
	if !g.CountedRanks(g.ID(Dec, k, 0), k) {
		t.Error("decoding rank k must be counted")
	}
	if !g.CountedRanks(g.ID(EncA, g.R-k, 0), k) {
		t.Error("encoding rank r-k must be counted")
	}
	if g.CountedRanks(g.Product(0), k) {
		t.Error("products are not on counted ranks for k=1")
	}
}

func TestDigitsPack(t *testing.T) {
	for _, x := range []int64{0, 1, 5, 48, 342} {
		d := Digits(x, 7, 3)
		if got := Pack(d, 7); got != x {
			t.Errorf("Pack(Digits(%d)) = %d", x, got)
		}
	}
}

func TestEntryIndexBijective(t *testing.T) {
	g := mustGraph(t, bilinear.Strassen(), 3)
	n := g.N()
	if n != 8 {
		t.Fatalf("N = %d", n)
	}
	seen := map[int64]bool{}
	for row := 0; row < n; row++ {
		for col := 0; col < n; col++ {
			idx := g.EntryIndex(row, col)
			if seen[idx] {
				t.Fatalf("EntryIndex collision at (%d,%d)", row, col)
			}
			seen[idx] = true
		}
	}
}

func TestComputeStats(t *testing.T) {
	g := mustGraph(t, bilinear.Strassen(), 2)
	st := g.ComputeStats()
	if st.Vertices != g.NumVertices() {
		t.Error("stats vertex count")
	}
	if st.Inputs != 32 || st.Outputs != 16 || st.Products != 49 {
		t.Errorf("stats: %+v", st)
	}
	if st.CopyVerts == 0 {
		t.Error("Strassen G_2 has copy vertices")
	}
	if st.MetaVerts != st.Vertices-st.CopyVerts {
		t.Errorf("meta-vertices %d != vertices %d - copies %d", st.MetaVerts, st.Vertices, st.CopyVerts)
	}
	if st.MaxInDeg < 2 || st.Edges == 0 {
		t.Errorf("stats degrees: %+v", st)
	}
}

func TestLabelIsInformative(t *testing.T) {
	g := mustGraph(t, bilinear.Strassen(), 2)
	l := g.Label(g.ID(EncA, 1, 5))
	if l == "" {
		t.Fatal("empty label")
	}
}

func TestValueRootSharing(t *testing.T) {
	// Strassen has no reused combination rows; the tensor with the
	// classical algorithm does.
	gs := mustGraph(t, bilinear.Strassen(), 2)
	if gs.HasValueSharing() {
		t.Error("strassen must not share values beyond copies")
	}
	gd := mustGraph(t, bilinear.DisconnectedFast(), 2)
	if !gd.HasValueSharing() {
		t.Error("disconnected56 must share combination values")
	}
}

func TestValueRootCarriesSameValue(t *testing.T) {
	// The defining property: every vertex evaluates to the value of its
	// value-class representative, even across distinct products reusing
	// a combination.
	rng := rand.New(rand.NewSource(123))
	for _, alg := range []*bilinear.Algorithm{bilinear.Strassen(), bilinear.Classical(2), bilinear.DisconnectedFast()} {
		g := mustGraph(t, alg, 2)
		n := g.N()
		inA := make([]rat.Mod, n*n)
		inB := make([]rat.Mod, n*n)
		for i := range inA {
			inA[i] = rat.Mod(rng.Int63n(int64(rat.ModP)))
			inB[i] = rat.Mod(rng.Int63n(int64(rat.ModP)))
		}
		val := g.Evaluate(inA, inB)
		merged := 0
		for v := V(0); int(v) < g.NumVertices(); v++ {
			root := g.ValueRoot(v)
			if val[v] != val[root] {
				t.Fatalf("%s: %s value %d != value-root %s value %d",
					alg.Name, g.Label(v), val[v], g.Label(root), val[root])
			}
			if root != g.MetaRoot(v) {
				merged++
			}
		}
		if alg.Name == "disconnected56" && merged == 0 {
			t.Error("disconnected56: value classes never merged beyond meta-vertices")
		}
		if alg.Name == "strassen" && merged != 0 {
			t.Error("strassen: unexpected value merging")
		}
	}
}

func TestValueRootIdempotent(t *testing.T) {
	g := mustGraph(t, bilinear.DisconnectedFast(), 2)
	for v := V(0); int(v) < g.NumVertices(); v += 7 {
		root := g.ValueRoot(v)
		if g.ValueRoot(root) != root {
			t.Fatalf("ValueRoot not idempotent at %s", g.Label(v))
		}
	}
}

func TestEvaluateParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for _, alg := range []*bilinear.Algorithm{bilinear.Strassen(), bilinear.DisconnectedFast()} {
		r := 3
		if alg.A() >= 16 {
			r = 2
		}
		g := mustGraph(t, alg, r)
		n := g.N()
		inA := make([]rat.Mod, n*n)
		inB := make([]rat.Mod, n*n)
		for i := range inA {
			inA[i] = rat.Mod(rng.Int63n(int64(rat.ModP)))
			inB[i] = rat.Mod(rng.Int63n(int64(rat.ModP)))
		}
		want := g.Evaluate(inA, inB)
		for _, workers := range []int{1, 3, 0} {
			got := g.EvaluateParallel(inA, inB, workers)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("%s workers=%d: vertex %d differs", alg.Name, workers, v)
				}
			}
		}
	}
}

func TestValidateCatchesWiringCorruption(t *testing.T) {
	// Building a CDAG from an algebraically wrong algorithm must fail
	// numeric validation: the graph faithfully computes whatever the
	// coefficients say, and the check compares against true matmul.
	alg := bilinear.Strassen()
	alg.W[2][1] = alg.W[2][1].Add(rat.One) // corrupt one decoding coefficient
	g := mustGraph(t, alg, 2)
	if err := g.Validate(rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("corrupted algorithm passed CDAG validation")
	}
}

func TestDeterministicEvaluation(t *testing.T) {
	g := mustGraph(t, bilinear.Winograd(), 2)
	n := g.N()
	inA := make([]rat.Mod, n*n)
	inB := make([]rat.Mod, n*n)
	for i := range inA {
		inA[i] = rat.Mod(i + 1)
		inB[i] = rat.Mod(2*i + 3)
	}
	v1 := g.Evaluate(inA, inB)
	v2 := g.Evaluate(inA, inB)
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("evaluation not deterministic")
		}
	}
}
