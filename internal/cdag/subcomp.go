package cdag

// This file implements Fact 1 of the paper: the middle 2(k+1) levels of
// G_r (encoding ranks r-k..r and decoding ranks 0..k) consist of b^(r-k)
// vertex-disjoint copies of G_k, one per length-(r-k) product prefix.
// It provides the prefix partition, an isomorphism embedding a standalone
// G_k into the i-th copy inside G_r, and the constructive content of
// Lemma 1: selecting a large collection of mutually input-disjoint
// subcomputations.

import (
	"fmt"
	"sort"
)

// Subcomputation returns the index i ∈ [0, b^(r-k)) of the copy of G_k
// containing v in the middle 2(k+1) levels of G_r, or -1 when v lies
// outside those levels (encoding rank < r-k or decoding rank > k).
func (g *Graph) Subcomputation(v V, k int) int64 {
	if k < 0 || k > g.R {
		panic(fmt.Errorf("cdag: Subcomputation k = %d out of range [0,%d]", k, g.R))
	}
	kind, rank, idx := g.Locate(v)
	switch kind {
	case EncA, EncB:
		if rank < g.R-k {
			return -1
		}
		// T has length rank; the copy index is its first r-k digits.
		// idx = T·a^(r-rank) + I, so strip the suffix then the last
		// rank-(r-k) product digits.
		t := idx / g.powA[g.R-rank]
		return t / g.powB[rank-(g.R-k)]
	default:
		if rank > k {
			return -1
		}
		// T has length r-rank ≥ r-k; first r-k digits are the index.
		t := idx / g.powA[rank]
		return t / g.powB[k-rank]
	}
}

// Embed maps a vertex of the standalone graph gk (which must be built
// from the same algorithm with gk.R = k ≤ g.R) to the corresponding
// vertex of the copy G_k^prefix inside g. The inverse is Project.
func (g *Graph) Embed(gk *Graph, v V, prefix int64) V {
	k := gk.R
	if gk.Alg != g.Alg && gk.Alg.Name != g.Alg.Name {
		panic(fmt.Errorf("cdag: Embed across algorithms %s vs %s", gk.Alg.Name, g.Alg.Name))
	}
	if k > g.R {
		panic(fmt.Errorf("cdag: Embed k = %d > r = %d", k, g.R))
	}
	if prefix < 0 || prefix >= g.powB[g.R-k] {
		panic(fmt.Errorf("cdag: Embed prefix %d out of range [0,%d)", prefix, g.powB[g.R-k]))
	}
	kind, rank, idx := gk.Locate(v)
	switch kind {
	case EncA, EncB:
		// Local label (T' len rank | I' len k-rank) maps to global
		// (prefix·T' | I') at rank rank + (r-k).
		tLocal := idx / gk.powA[k-rank]
		suffix := idx % gk.powA[k-rank]
		t := prefix*g.powB[rank] + tLocal
		return g.ID(kind, rank+(g.R-k), t*g.powA[k-rank]+suffix)
	default:
		// Local label (T' len k-rank | O' len rank) maps to global
		// (prefix·T' | O') at the same decoding rank.
		tLocal := idx / gk.powA[rank]
		suffix := idx % gk.powA[rank]
		t := prefix*g.powB[k-rank] + tLocal
		return g.ID(Dec, rank, t*g.powA[rank]+suffix)
	}
}

// Project maps a vertex of g lying in the middle 2(k+1) levels to the
// pair (prefix, local vertex in a standalone G_k). It panics if v lies
// outside those levels.
func (g *Graph) Project(gk *Graph, v V) (int64, V) {
	k := gk.R
	prefix := g.Subcomputation(v, k)
	if prefix < 0 {
		panic(fmt.Errorf("cdag: Project: vertex %d outside middle levels for k=%d", v, k))
	}
	kind, rank, idx := g.Locate(v)
	switch kind {
	case EncA, EncB:
		localRank := rank - (g.R - k)
		t := idx / g.powA[g.R-rank]
		suffix := idx % g.powA[g.R-rank]
		tLocal := t % g.powB[localRank]
		return prefix, gk.ID(kind, localRank, tLocal*gk.powA[k-localRank]+suffix)
	default:
		t := idx / g.powA[rank]
		suffix := idx % g.powA[rank]
		tLocal := t % g.powB[k-rank]
		return prefix, gk.ID(Dec, rank, tLocal*gk.powA[rank]+suffix)
	}
}

// SubInputs returns the input vertices of the copy G_k^prefix inside g:
// the encoding vertices of both operands at rank r-k with the given
// product prefix, in index order (first all of A's, then all of B's).
func (g *Graph) SubInputs(prefix int64, k int) []V {
	out := make([]V, 0, 2*g.powA[k])
	for _, kind := range []Kind{EncA, EncB} {
		for s := int64(0); s < g.powA[k]; s++ {
			out = append(out, g.ID(kind, g.R-k, prefix*g.powA[k]+s))
		}
	}
	return out
}

// SubOutputs returns the output vertices of the copy G_k^prefix inside
// g: the decoding vertices at rank k with the given product prefix.
func (g *Graph) SubOutputs(prefix int64, k int) []V {
	out := make([]V, 0, g.powA[k])
	for s := int64(0); s < g.powA[k]; s++ {
		out = append(out, g.ID(Dec, k, prefix*g.powA[k]+s))
	}
	return out
}

// InputMetaRoots returns the sorted, deduplicated meta-vertex roots of
// the inputs of G_k^prefix. Two subcomputations are input-disjoint
// (Definition in Section 6 of the paper) iff these sets are disjoint.
func (g *Graph) InputMetaRoots(prefix int64, k int) []V {
	ins := g.SubInputs(prefix, k)
	roots := make([]V, len(ins))
	for i, v := range ins {
		roots[i] = g.MetaRoot(v)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	out := roots[:0]
	var last V = -1
	for _, r := range roots {
		if r != last {
			out = append(out, r)
			last = r
		}
	}
	return out
}

// InputDisjointCollection greedily selects mutually input-disjoint
// subcomputations G_k^i (the constructive content of Lemma 1) and
// returns their prefix indices in increasing order. Lemma 1 guarantees
// that at least a 1/b² fraction can be selected whenever neither
// encoding graph consists entirely of duplicated vertices; the greedy
// selection typically does much better.
func (g *Graph) InputDisjointCollection(k int) []int64 {
	nSub := g.powB[g.R-k]
	taken := make(map[V]struct{})
	var picked []int64
	for p := int64(0); p < nSub; p++ {
		roots := g.InputMetaRoots(p, k)
		ok := true
		for _, r := range roots {
			if _, clash := taken[r]; clash {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, r := range roots {
			taken[r] = struct{}{}
		}
		picked = append(picked, p)
	}
	return picked
}

// CountedRanks reports whether v lies on one of the ranks counted by the
// paper's segment argument for parameter k: rank k of the decoding graph
// or rank r-k of either encoding graph.
func (g *Graph) CountedRanks(v V, k int) bool {
	kind, rank, _ := g.Locate(v)
	if kind == Dec {
		return rank == k
	}
	return rank == g.R-k
}
