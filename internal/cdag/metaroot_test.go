package cdag

import (
	"sync"
	"testing"

	"pathrouting/internal/bilinear"
)

// TestMetaRootsTableMatchesWalk cross-checks the dense meta-root table
// against the copy-edge walk it memoizes, for every vertex of several
// catalog graphs: the table is the routing verifiers' hot-path
// replacement for MetaRoot, so any disagreement silently corrupts the
// meta-vertex hit bound.
func TestMetaRootsTableMatchesWalk(t *testing.T) {
	for _, tc := range []struct {
		alg *bilinear.Algorithm
		r   int
	}{
		{bilinear.Strassen(), 1},
		{bilinear.Strassen(), 3},
		{bilinear.Winograd(), 2},
		{bilinear.Classical(2), 2},
		{bilinear.DisconnectedFast(), 2},
	} {
		g, err := New(tc.alg, tc.r)
		if err != nil {
			t.Fatal(err)
		}
		tbl := g.MetaRoots()
		if len(tbl) != g.NumVertices() {
			t.Fatalf("%s r=%d: table has %d entries, graph %d vertices",
				tc.alg.Name, tc.r, len(tbl), g.NumVertices())
		}
		for v := V(0); int(v) < g.NumVertices(); v++ {
			if want := g.MetaRoot(v); tbl[v] != want {
				t.Fatalf("%s r=%d: MetaRoots()[%s] = %s, walk says %s",
					tc.alg.Name, tc.r, g.Label(v), g.Label(tbl[v]), g.Label(want))
			}
		}
		// Roots must be fixed points, as with the walk.
		for v := V(0); int(v) < g.NumVertices(); v++ {
			if tbl[tbl[v]] != tbl[v] {
				t.Fatalf("%s r=%d: root %s of %s is not a fixed point",
					tc.alg.Name, tc.r, g.Label(tbl[v]), g.Label(v))
			}
		}
	}
}

// TestEnsureMetaRootIndexConcurrent hammers the lazy constructor from
// many goroutines; the sync.Once must hand every caller the same table.
func TestEnsureMetaRootIndexConcurrent(t *testing.T) {
	g, err := New(bilinear.Strassen(), 2)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	tables := make([][]V, 8)
	for i := range tables {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tables[i] = g.MetaRoots()
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(tables); i++ {
		if &tables[i][0] != &tables[0][0] {
			t.Fatal("concurrent MetaRoots calls returned distinct tables")
		}
	}
}
