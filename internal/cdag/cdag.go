// Package cdag builds the computation directed acyclic graph G_r of a
// Strassen-like matrix multiplication algorithm applied recursively r
// times, exactly as defined in Section 3 of Scott–Holtz–Schwartz,
// "Matrix Multiplication I/O-Complexity by Path Routing" (SPAA 2015).
//
// # Structure
//
// G_r is a ranked DAG. For a base algorithm with a = n₀² inputs per
// operand and b products:
//
//   - Encoding layers for A and for B at ranks j = 0..r. Rank 0 holds the
//     a^r input entries; a vertex at rank j is labeled (t₁..t_j ;
//     ι_{j+1}..ι_r) with t ∈ [b], ι ∈ [a] and computes the partial linear
//     combination obtained by applying the encoding matrix to index slots
//     1..j. Rank j has b^j·a^(r-j) vertices.
//   - A multiplication layer of b^r product vertices (t₁..t_r), each the
//     product of the two rank-r combinations with the same label.
//   - Decoding layers at ranks j = 0..r, where rank 0 *is* the product
//     layer and a vertex at rank j is labeled (t₁..t_{r-j} ;
//     o_{r-j+1}..o_r): decoding is applied to index slots from the inside
//     (slot r) out, which is what makes Fact 1 hold literally — the
//     vertices of encoding ranks ≥ r-k and decoding ranks ≤ k partition
//     by their first r-k product coordinates into b^(r-k) vertex-disjoint
//     copies of G_k.
//
// Vertices are identified by dense integer IDs; parents and children are
// computed arithmetically from the label structure in O(degree), so the
// graph never materializes adjacency lists and G_r for hundreds of
// thousands of vertices is cheap to traverse.
//
// # Copies and meta-vertices
//
// An encoding vertex whose last product coordinate t_j has a trivial
// combination row (a single coefficient-1 entry) has exactly one parent
// and the same value as it: a *copy*. Meta-vertices (the paper's grouping
// of all vertices carrying one value) are represented by their root,
// computed by MetaRoot; by Lemma 2 decoding vertices are never copies,
// so every meta-vertex is a root plus a subtree of encoding copies.
package cdag

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/rat"
)

// Kind identifies the layer family a vertex belongs to.
type Kind uint8

// The three layer families of G_r.
const (
	// EncA is the encoding graph of operand A.
	EncA Kind = iota
	// EncB is the encoding graph of operand B.
	EncB
	// Dec is the decoding graph; its rank 0 is the multiplication layer.
	Dec
)

func (k Kind) String() string {
	switch k {
	case EncA:
		return "encA"
	case EncB:
		return "encB"
	default:
		return "dec"
	}
}

// V is a vertex identifier in a particular Graph. IDs are dense in
// [0, NumVertices()).
type V int32

// Edge is an incoming or outgoing edge with the linear coefficient
// carried along it (coefficients on product-vertex edges are One; the
// product vertex multiplies rather than sums).
type Edge struct {
	To    V
	Coeff rat.Rat
}

// nz is a nonzero of a coefficient matrix, with the residue of the
// coefficient cached for fast modular evaluation.
type nz struct {
	idx int
	c   rat.Rat
	cm  rat.Mod
}

// Graph is the CDAG G_r for Alg applied recursively R times.
type Graph struct {
	// Alg is the base algorithm the graph recurses on.
	Alg *bilinear.Algorithm
	// R is the number of recursion levels (R ≥ 1).
	R int

	a, b int
	powA []int64 // powA[i] = a^i
	powB []int64 // powB[i] = b^i

	offEncA []int64 // offEncA[j] = first ID of EncA rank j
	offEncB []int64
	offDec  []int64
	total   int64

	// Sparse views of U, V, W.
	uRows, vRows []([]nz) // per product t: entries e with nonzero coeff
	wRows        []([]nz) // per output entry o: products t with nonzero coeff
	uCols, vCols []([]nz) // per entry e: products t using it
	wCols        []([]nz) // per product t: outputs o using it

	// trivial[side][t] = entry e if product t's side combination is a
	// bare coefficient-1 copy of e, else -1. Drives copy detection.
	trivial [2][]int

	// Lazily computed product-equivalence tables for value classes
	// (see valueclass.go); repOnce makes initialization safe under
	// concurrent use.
	repOnce          sync.Once
	repA, repB, repP []int32

	// Lazily built CSR adjacency index over parent edges (see csr.go);
	// adjOnce makes initialization safe under concurrent use.
	adjOnce   sync.Once
	parentPtr []int64
	parentNbr []V

	// Lazily built dense meta-root table (see metaroot.go); metaOnce
	// makes initialization safe under concurrent use.
	metaOnce sync.Once
	metaRoot []V
}

// New builds G_r for the algorithm. It returns an error when r < 1 or
// the graph would exceed the supported size (vertex IDs are int32).
func New(alg *bilinear.Algorithm, r int) (*Graph, error) {
	if r < 1 {
		return nil, fmt.Errorf("cdag: r = %d < 1", r)
	}
	a, b := alg.A(), alg.B()
	// Size check: total vertices must fit comfortably in int32.
	size := 0.0
	for j := 0; j <= r; j++ {
		size += 2 * math.Pow(float64(b), float64(j)) * math.Pow(float64(a), float64(r-j))
		size += math.Pow(float64(a), float64(j)) * math.Pow(float64(b), float64(r-j))
	}
	if size > float64(math.MaxInt32)/2 {
		return nil, fmt.Errorf("cdag: G_%d for %s has ~%.3g vertices; exceeds supported size", r, alg.Name, size)
	}

	g := &Graph{Alg: alg, R: r, a: a, b: b}
	g.powA = powers(int64(a), r)
	g.powB = powers(int64(b), r)

	g.offEncA = make([]int64, r+2)
	g.offEncB = make([]int64, r+2)
	g.offDec = make([]int64, r+2)
	var off int64
	for j := 0; j <= r; j++ {
		g.offEncA[j] = off
		off += g.powB[j] * g.powA[r-j]
	}
	g.offEncA[r+1] = off
	for j := 0; j <= r; j++ {
		g.offEncB[j] = off
		off += g.powB[j] * g.powA[r-j]
	}
	g.offEncB[r+1] = off
	for j := 0; j <= r; j++ {
		g.offDec[j] = off
		off += g.powB[r-j] * g.powA[j]
	}
	g.offDec[r+1] = off
	g.total = off

	g.uRows = sparseRows(alg.U)
	g.vRows = sparseRows(alg.V)
	g.wRows = sparseRows(alg.W)
	g.uCols = sparseCols(alg.U)
	g.vCols = sparseCols(alg.V)
	g.wCols = sparseCols(alg.W)

	st := bilinear.Analyze(alg)
	g.trivial[0] = st.TrivialCombo[bilinear.SideA]
	g.trivial[1] = st.TrivialCombo[bilinear.SideB]
	return g, nil
}

func powers(base int64, r int) []int64 {
	p := make([]int64, r+1)
	p[0] = 1
	for i := 1; i <= r; i++ {
		p[i] = p[i-1] * base
	}
	return p
}

func sparseRows(m [][]rat.Rat) [][]nz {
	out := make([][]nz, len(m))
	for i, row := range m {
		for j, c := range row {
			if !c.IsZero() {
				out[i] = append(out[i], nz{idx: j, c: c, cm: c.Mod()})
			}
		}
	}
	return out
}

func sparseCols(m [][]rat.Rat) [][]nz {
	if len(m) == 0 {
		return nil
	}
	out := make([][]nz, len(m[0]))
	for i, row := range m {
		for j, c := range row {
			if !c.IsZero() {
				out[j] = append(out[j], nz{idx: i, c: c, cm: c.Mod()})
			}
		}
	}
	return out
}

// NumVertices returns the number of vertices of G_r.
func (g *Graph) NumVertices() int { return int(g.total) }

// A returns a = n₀².
func (g *Graph) A() int { return g.a }

// B returns the number of base products b.
func (g *Graph) B() int { return g.b }

// LayerSize returns the number of vertices in the given layer.
func (g *Graph) LayerSize(kind Kind, rank int) int {
	switch kind {
	case EncA, EncB:
		return int(g.powB[rank] * g.powA[g.R-rank])
	default:
		return int(g.powB[g.R-rank] * g.powA[rank])
	}
}

// LayerBase returns the ID of the first vertex of a layer, so that
// ID(kind, rank, idx) == LayerBase(kind, rank) + V(idx) for every valid
// idx. Rank-structured kernels use it to synthesize the IDs of a whole
// block of same-rank vertices arithmetically, without paying ID's
// per-vertex range checks inside their inner loops.
func (g *Graph) LayerBase(kind Kind, rank int) V {
	if rank < 0 || rank > g.R {
		panic(fmt.Errorf("cdag: rank %d out of range [0,%d]", rank, g.R))
	}
	switch kind {
	case EncA:
		return V(g.offEncA[rank])
	case EncB:
		return V(g.offEncB[rank])
	default:
		return V(g.offDec[rank])
	}
}

// ID returns the vertex ID for (kind, rank, index). Index is the mixed
// radix label: for encoding ranks, T·a^(r-j) + I with T the base-b
// product prefix (t₁ most significant) and I the base-a entry suffix;
// for decoding ranks, T·a^j + O with T the base-b prefix of length r-j
// and O the base-a output suffix.
func (g *Graph) ID(kind Kind, rank int, index int64) V {
	if rank < 0 || rank > g.R {
		panic(fmt.Errorf("cdag: rank %d out of range [0,%d]", rank, g.R))
	}
	var off int64
	switch kind {
	case EncA:
		off = g.offEncA[rank]
	case EncB:
		off = g.offEncB[rank]
	default:
		off = g.offDec[rank]
	}
	n := int64(g.LayerSize(kind, rank))
	if index < 0 || index >= n {
		panic(fmt.Errorf("cdag: index %d out of range [0,%d) in %v rank %d", index, n, kind, rank))
	}
	return V(off + index)
}

// Locate returns the (kind, rank, index) of a vertex ID.
func (g *Graph) Locate(v V) (Kind, int, int64) {
	id := int64(v)
	if id < 0 || id >= g.total {
		panic(fmt.Errorf("cdag: vertex %d out of range [0,%d)", id, g.total))
	}
	locate := func(off []int64) (int, int64) {
		// Linear scan over ≤ r+1 ranks; r is tiny.
		for j := 0; ; j++ {
			if id < off[j+1] {
				return j, id - off[j]
			}
		}
	}
	switch {
	case id < g.offEncA[g.R+1]:
		rank, idx := locate(g.offEncA)
		return EncA, rank, idx
	case id < g.offEncB[g.R+1]:
		rank, idx := locate(g.offEncB)
		return EncB, rank, idx
	default:
		rank, idx := locate(g.offDec)
		return Dec, rank, idx
	}
}

// GlobalRank returns the vertex's rank in G_r's global ranking: encoding
// ranks are 0..r, the multiplication layer (decoding rank 0) is r+1, and
// decoding rank j is r+1+j; outputs sit at 2r+1.
func (g *Graph) GlobalRank(v V) int {
	kind, rank, _ := g.Locate(v)
	if kind == Dec {
		return g.R + 1 + rank
	}
	return rank
}

// IsInput reports whether v is an input entry of A or B.
func (g *Graph) IsInput(v V) bool {
	kind, rank, _ := g.Locate(v)
	return (kind == EncA || kind == EncB) && rank == 0
}

// IsOutput reports whether v is an output entry of C.
func (g *Graph) IsOutput(v V) bool {
	kind, rank, _ := g.Locate(v)
	return kind == Dec && rank == g.R
}

// IsProduct reports whether v is a multiplication vertex.
func (g *Graph) IsProduct(v V) bool {
	kind, rank, _ := g.Locate(v)
	return kind == Dec && rank == 0
}

// InputA returns the input vertex for entry multi-index I (base-a digits
// ι₁..ι_r packed most-significant-first).
func (g *Graph) InputA(i int64) V { return g.ID(EncA, 0, i) }

// InputB is InputA for operand B.
func (g *Graph) InputB(i int64) V { return g.ID(EncB, 0, i) }

// Output returns the output vertex for output multi-index O.
func (g *Graph) Output(o int64) V { return g.ID(Dec, g.R, o) }

// Product returns the multiplication vertex for product multi-index T.
func (g *Graph) Product(t int64) V { return g.ID(Dec, 0, t) }

// AppendParents appends v's incoming edges to buf and returns it.
// Inputs have none; a product vertex has exactly its two rank-r
// combinations; an encoding vertex at rank j sums over the nonzeros of
// the base row of its last product coordinate; a decoding vertex at rank
// j sums over the base decoding row of its last output coordinate.
func (g *Graph) AppendParents(v V, buf []Edge) []Edge {
	kind, rank, idx := g.Locate(v)
	switch kind {
	case EncA, EncB:
		if rank == 0 {
			return buf
		}
		rows := g.uRows
		if kind == EncB {
			rows = g.vRows
		}
		aPow := g.powA[g.R-rank]
		t := idx / aPow % int64(g.b) // last product coordinate t_rank
		tPrefix := idx / aPow / int64(g.b)
		suffix := idx % aPow
		childAPow := g.powA[g.R-rank+1]
		for _, e := range rows[t] {
			pIdx := tPrefix*childAPow + int64(e.idx)*aPow + suffix
			buf = append(buf, Edge{To: g.ID(kind, rank-1, pIdx), Coeff: e.c})
		}
		return buf
	default:
		if rank == 0 {
			// Multiplication vertex: parents are the two combinations.
			buf = append(buf, Edge{To: g.ID(EncA, g.R, idx), Coeff: rat.One})
			buf = append(buf, Edge{To: g.ID(EncB, g.R, idx), Coeff: rat.One})
			return buf
		}
		oPow := g.powA[rank-1]
		o := idx / oPow % int64(g.a) // last-decoded output coordinate o_{r-rank+1}
		tPrefix := idx / oPow / int64(g.a)
		suffix := idx % oPow
		for _, e := range g.wRows[o] {
			pIdx := (tPrefix*int64(g.b)+int64(e.idx))*oPow + suffix
			buf = append(buf, Edge{To: g.ID(Dec, rank-1, pIdx), Coeff: e.c})
		}
		return buf
	}
}

// Parents returns v's incoming edges in a fresh slice.
func (g *Graph) Parents(v V) []Edge { return g.AppendParents(v, nil) }

// AppendChildren appends v's outgoing edges to buf and returns it.
func (g *Graph) AppendChildren(v V, buf []Edge) []Edge {
	kind, rank, idx := g.Locate(v)
	switch kind {
	case EncA, EncB:
		if rank == g.R {
			// Rank-r combination feeds exactly its product vertex.
			return append(buf, Edge{To: g.Product(idx), Coeff: rat.One})
		}
		cols := g.uCols
		if kind == EncB {
			cols = g.vCols
		}
		aPow := g.powA[g.R-rank]        // size of suffix at this rank
		childAPow := g.powA[g.R-rank-1] // suffix size at rank+1
		e := idx / childAPow % int64(g.a)
		tPrefix := idx / aPow
		suffix := idx % childAPow
		for _, p := range cols[e] {
			cIdx := (tPrefix*int64(g.b)+int64(p.idx))*childAPow + suffix
			buf = append(buf, Edge{To: g.ID(kind, rank+1, cIdx), Coeff: p.c})
		}
		return buf
	default:
		if rank == g.R {
			return buf
		}
		oPow := g.powA[rank]
		t := idx / oPow % int64(g.b)
		tPrefix := idx / oPow / int64(g.b)
		suffix := idx % oPow
		for _, p := range g.wCols[t] {
			cIdx := tPrefix*oPow*int64(g.a) + int64(p.idx)*oPow + suffix
			buf = append(buf, Edge{To: g.ID(Dec, rank+1, cIdx), Coeff: p.c})
		}
		return buf
	}
}

// Children returns v's outgoing edges in a fresh slice.
func (g *Graph) Children(v V) []Edge { return g.AppendChildren(v, nil) }

// IsCopy reports whether v is a copy vertex: a single-parent vertex whose
// edge coefficient is 1, carrying the same value as its parent. Only
// encoding vertices can be copies (Lemma 2 rules decoding out), and
// whether one is depends only on its last product coordinate.
func (g *Graph) IsCopy(v V) bool {
	kind, rank, idx := g.Locate(v)
	if kind == Dec || rank == 0 {
		return false
	}
	side := 0
	if kind == EncB {
		side = 1
	}
	t := idx / g.powA[g.R-rank] % int64(g.b)
	return g.trivial[side][t] >= 0
}

// MetaRoot returns the root vertex of v's meta-vertex: v itself unless v
// is a copy, in which case the walk follows copy edges downward to the
// first non-copy vertex. All vertices carrying the same value share a
// root; comparing MetaRoots implements the paper's meta-vertex
// identification.
func (g *Graph) MetaRoot(v V) V {
	kind, rank, idx := g.Locate(v)
	if kind == Dec {
		return v
	}
	side := 0
	if kind == EncB {
		side = 1
	}
	for rank > 0 {
		aPow := g.powA[g.R-rank]
		t := idx / aPow % int64(g.b)
		e := g.trivial[side][t]
		if e < 0 {
			break
		}
		tPrefix := idx / aPow / int64(g.b)
		suffix := idx % aPow
		idx = tPrefix*g.powA[g.R-rank+1] + int64(e)*aPow + suffix
		rank--
	}
	return g.ID(kind, rank, idx)
}

// Label renders a human-readable label for a vertex, used in DOT output
// and error messages, e.g. "encA r2 (t=3,5 | i=0)".
func (g *Graph) Label(v V) string {
	kind, rank, idx := g.Locate(v)
	var tLen, iLen int
	var iBase int64
	switch kind {
	case EncA, EncB:
		tLen, iLen, iBase = rank, g.R-rank, int64(g.a)
	default:
		tLen, iLen, iBase = g.R-rank, rank, int64(g.a)
	}
	iPart := make([]int64, iLen)
	rest := idx
	for k := iLen - 1; k >= 0; k-- {
		iPart[k] = rest % iBase
		rest /= iBase
	}
	tPart := make([]int64, tLen)
	for k := tLen - 1; k >= 0; k-- {
		tPart[k] = rest % int64(g.b)
		rest /= int64(g.b)
	}
	return fmt.Sprintf("%v r%d (t=%v | i=%v)", kind, rank, tPart, iPart)
}

// Digits unpacks a packed mixed-radix number into n base-base digits,
// most significant first.
func Digits(x int64, base int64, n int) []int {
	d := make([]int, n)
	for k := n - 1; k >= 0; k-- {
		d[k] = int(x % base)
		x /= base
	}
	return d
}

// Pack packs base-base digits (most significant first) into an int64.
func Pack(digits []int, base int64) int64 {
	var x int64
	for _, d := range digits {
		x = x*base + int64(d)
	}
	return x
}

// Evaluate computes every vertex value of G_r over GF(p), given the a^r
// input residues of each operand (packed row-major by multi-index), and
// returns the full value table indexed by vertex ID. Layer-by-layer
// evaluation is a valid topological order.
func (g *Graph) Evaluate(inA, inB []rat.Mod) []rat.Mod {
	n := int(g.powA[g.R])
	if len(inA) != n || len(inB) != n {
		panic(fmt.Errorf("cdag: Evaluate wants %d inputs per operand, got %d/%d", n, len(inA), len(inB)))
	}
	val := make([]rat.Mod, g.total)
	copy(val[g.offEncA[0]:], inA)
	copy(val[g.offEncB[0]:], inB)

	// Encoding ranks.
	for _, kind := range []Kind{EncA, EncB} {
		rows := g.uRows
		off := g.offEncA
		if kind == EncB {
			rows = g.vRows
			off = g.offEncB
		}
		for rank := 1; rank <= g.R; rank++ {
			aPow := g.powA[g.R-rank]
			childAPow := g.powA[g.R-rank+1]
			layer := int64(g.LayerSize(kind, rank))
			for idx := int64(0); idx < layer; idx++ {
				t := idx / aPow % int64(g.b)
				tPrefix := idx / aPow / int64(g.b)
				suffix := idx % aPow
				var s rat.Mod
				for _, e := range rows[t] {
					pv := val[off[rank-1]+tPrefix*childAPow+int64(e.idx)*aPow+suffix]
					s = rat.ModAdd(s, rat.ModMul(e.cm, pv))
				}
				val[off[rank]+idx] = s
			}
		}
	}
	// Products.
	for idx := int64(0); idx < g.powB[g.R]; idx++ {
		val[g.offDec[0]+idx] = rat.ModMul(val[g.offEncA[g.R]+idx], val[g.offEncB[g.R]+idx])
	}
	// Decoding ranks.
	for rank := 1; rank <= g.R; rank++ {
		oPow := g.powA[rank-1]
		layer := int64(g.LayerSize(Dec, rank))
		for idx := int64(0); idx < layer; idx++ {
			o := idx / oPow % int64(g.a)
			tPrefix := idx / oPow / int64(g.a)
			suffix := idx % oPow
			var s rat.Mod
			for _, e := range g.wRows[o] {
				pv := val[g.offDec[rank-1]+(tPrefix*int64(g.b)+int64(e.idx))*oPow+suffix]
				s = rat.ModAdd(s, rat.ModMul(e.cm, pv))
			}
			val[g.offDec[rank]+idx] = s
		}
	}
	return val
}

// EntryIndex converts a (row, col) pair of the full n₀^r × n₀^r matrix
// into the packed multi-index used by InputA/InputB/Output: slot l's
// digit is row_l·n₀ + col_l where row_l, col_l are the base-n₀ digits of
// row and col.
func (g *Graph) EntryIndex(row, col int) int64 {
	n0 := g.Alg.N0
	rd := Digits(int64(row), int64(n0), g.R)
	cd := Digits(int64(col), int64(n0), g.R)
	var x int64
	for l := 0; l < g.R; l++ {
		x = x*int64(g.a) + int64(rd[l]*n0+cd[l])
	}
	return x
}

// N returns the full matrix dimension n₀^r.
func (g *Graph) N() int {
	n := 1
	for i := 0; i < g.R; i++ {
		n *= g.Alg.N0
	}
	return n
}

// Validate evaluates the CDAG on random inputs and compares every output
// entry against direct classical multiplication over GF(p). It is the
// end-to-end wiring check for the whole graph construction.
func (g *Graph) Validate(rng *rand.Rand) error {
	n := g.N()
	matA := make([]rat.Mod, n*n)
	matB := make([]rat.Mod, n*n)
	for i := range matA {
		matA[i] = rat.Mod(rng.Int63n(int64(rat.ModP)))
		matB[i] = rat.Mod(rng.Int63n(int64(rat.ModP)))
	}
	inA := make([]rat.Mod, n*n)
	inB := make([]rat.Mod, n*n)
	for row := 0; row < n; row++ {
		for col := 0; col < n; col++ {
			idx := g.EntryIndex(row, col)
			inA[idx] = matA[row*n+col]
			inB[idx] = matB[row*n+col]
		}
	}
	val := g.Evaluate(inA, inB)
	for row := 0; row < n; row++ {
		for col := 0; col < n; col++ {
			var want rat.Mod
			for k := 0; k < n; k++ {
				want = rat.ModAdd(want, rat.ModMul(matA[row*n+k], matB[k*n+col]))
			}
			got := val[g.Output(g.EntryIndex(row, col))]
			if got != want {
				return fmt.Errorf("cdag: %s G_%d: output c[%d,%d] = %d, want %d",
					g.Alg.Name, g.R, row, col, got, want)
			}
		}
	}
	return nil
}

// Stats summarizes the size of the graph.
type Stats struct {
	Vertices   int
	Edges      int64
	Inputs     int
	Outputs    int
	Products   int
	CopyVerts  int
	MetaVerts  int
	MaxInDeg   int
	MaxOutDeg  int
	GlobalRank int // number of global ranks (2r+2)
}

// ComputeStats walks the whole graph once.
func (g *Graph) ComputeStats() Stats {
	st := Stats{
		Vertices:   g.NumVertices(),
		Inputs:     2 * int(g.powA[g.R]),
		Outputs:    int(g.powA[g.R]),
		Products:   int(g.powB[g.R]),
		GlobalRank: 2*g.R + 2,
	}
	roots := make(map[V]struct{})
	var buf []Edge
	for v := V(0); int64(v) < g.total; v++ {
		buf = g.AppendParents(v, buf[:0])
		st.Edges += int64(len(buf))
		if len(buf) > st.MaxInDeg {
			st.MaxInDeg = len(buf)
		}
		buf = g.AppendChildren(v, buf[:0])
		if len(buf) > st.MaxOutDeg {
			st.MaxOutDeg = len(buf)
		}
		if g.IsCopy(v) {
			st.CopyVerts++
		}
		roots[g.MetaRoot(v)] = struct{}{}
	}
	st.MetaVerts = len(roots)
	return st
}

// MetaMembers returns every vertex of the meta-vertex rooted at root
// (including root): the upward-facing subtree of copy vertices reached
// from it. It panics if root is itself a copy (not a meta-vertex root).
func (g *Graph) MetaMembers(root V) []V {
	if g.IsCopy(root) {
		panic(fmt.Errorf("cdag: MetaMembers of non-root %s", g.Label(root)))
	}
	members := []V{root}
	var buf []Edge
	for i := 0; i < len(members); i++ {
		buf = g.AppendChildren(members[i], buf[:0])
		for _, e := range buf {
			if g.IsCopy(e.To) {
				members = append(members, e.To)
			}
		}
	}
	return members
}

// EvaluateParallel is Evaluate with each layer computed by a pool of
// workers (layers are the natural synchronization barriers: every
// vertex of rank j depends only on rank j-1). workers ≤ 0 uses
// GOMAXPROCS. Results are identical to Evaluate.
func (g *Graph) EvaluateParallel(inA, inB []rat.Mod, workers int) []rat.Mod {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := int(g.powA[g.R])
	if len(inA) != n || len(inB) != n {
		panic(fmt.Errorf("cdag: EvaluateParallel wants %d inputs per operand, got %d/%d", n, len(inA), len(inB)))
	}
	val := make([]rat.Mod, g.total)
	copy(val[g.offEncA[0]:], inA)
	copy(val[g.offEncB[0]:], inB)

	parallelFor := func(total int64, body func(lo, hi int64)) {
		if total < int64(workers)*4 {
			body(0, total)
			return
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := total * int64(w) / int64(workers)
			hi := total * int64(w+1) / int64(workers)
			if lo == hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int64) {
				defer wg.Done()
				body(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}

	for _, kind := range []Kind{EncA, EncB} {
		rows := g.uRows
		off := g.offEncA
		if kind == EncB {
			rows = g.vRows
			off = g.offEncB
		}
		for rank := 1; rank <= g.R; rank++ {
			aPow := g.powA[g.R-rank]
			childAPow := g.powA[g.R-rank+1]
			layer := int64(g.LayerSize(kind, rank))
			parallelFor(layer, func(lo, hi int64) {
				for idx := lo; idx < hi; idx++ {
					t := idx / aPow % int64(g.b)
					tPrefix := idx / aPow / int64(g.b)
					suffix := idx % aPow
					var s rat.Mod
					for _, e := range rows[t] {
						pv := val[off[rank-1]+tPrefix*childAPow+int64(e.idx)*aPow+suffix]
						s = rat.ModAdd(s, rat.ModMul(e.cm, pv))
					}
					val[off[rank]+idx] = s
				}
			})
		}
	}
	parallelFor(g.powB[g.R], func(lo, hi int64) {
		for idx := lo; idx < hi; idx++ {
			val[g.offDec[0]+idx] = rat.ModMul(val[g.offEncA[g.R]+idx], val[g.offEncB[g.R]+idx])
		}
	})
	for rank := 1; rank <= g.R; rank++ {
		oPow := g.powA[rank-1]
		layer := int64(g.LayerSize(Dec, rank))
		rr := rank
		parallelFor(layer, func(lo, hi int64) {
			for idx := lo; idx < hi; idx++ {
				o := idx / oPow % int64(g.a)
				tPrefix := idx / oPow / int64(g.a)
				suffix := idx % oPow
				var s rat.Mod
				for _, e := range g.wRows[o] {
					pv := val[g.offDec[rr-1]+(tPrefix*int64(g.b)+int64(e.idx))*oPow+suffix]
					s = rat.ModAdd(s, rat.ModMul(e.cm, pv))
				}
				val[g.offDec[rr]+idx] = s
			}
		})
	}
	return val
}
