package cdag

import (
	"math/rand"
	"sync"
	"testing"

	"pathrouting/internal/bilinear"
)

// TestAdjacencyIndexMatchesArithmetic cross-checks the CSR index
// against the arithmetic edge enumeration it is built from: every
// enumerated parent/child edge must be visible through HasEdge and
// Adjacent, and random non-edges must stay invisible.
func TestAdjacencyIndexMatchesArithmetic(t *testing.T) {
	for _, tc := range []struct {
		alg *bilinear.Algorithm
		r   int
	}{
		{bilinear.Strassen(), 2},
		{bilinear.Classical(2), 2},
		{bilinear.DisconnectedFast(), 1},
	} {
		g, err := New(tc.alg, tc.r)
		if err != nil {
			t.Fatal(err)
		}
		edges := make(map[[2]V]bool)
		var buf []Edge
		for v := V(0); int(v) < g.NumVertices(); v++ {
			buf = g.AppendParents(v, buf[:0])
			for _, e := range buf {
				edges[[2]V{e.To, v}] = true
				if !g.HasEdge(e.To, v) {
					t.Fatalf("%s r=%d: HasEdge(%s, %s) = false for an enumerated edge",
						tc.alg.Name, tc.r, g.Label(e.To), g.Label(v))
				}
				if !g.Adjacent(e.To, v) || !g.Adjacent(v, e.To) {
					t.Fatalf("%s r=%d: Adjacent misses edge %s -- %s",
						tc.alg.Name, tc.r, g.Label(e.To), g.Label(v))
				}
			}
		}
		// Children must agree with the same index.
		for v := V(0); int(v) < g.NumVertices(); v++ {
			buf = g.AppendChildren(v, buf[:0])
			for _, e := range buf {
				if !g.HasEdge(v, e.To) {
					t.Fatalf("%s r=%d: HasEdge misses child edge %s -> %s",
						tc.alg.Name, tc.r, g.Label(v), g.Label(e.To))
				}
			}
		}
		// Random non-edges.
		rng := rand.New(rand.NewSource(7))
		n := V(g.NumVertices())
		for trial := 0; trial < 200; trial++ {
			u, v := V(rng.Intn(int(n))), V(rng.Intn(int(n)))
			if edges[[2]V{u, v}] {
				continue
			}
			if g.HasEdge(u, v) {
				t.Fatalf("%s r=%d: HasEdge(%s, %s) = true for a non-edge",
					tc.alg.Name, tc.r, g.Label(u), g.Label(v))
			}
			if !edges[[2]V{v, u}] && g.Adjacent(u, v) {
				t.Fatalf("%s r=%d: Adjacent(%s, %s) = true for a non-edge",
					tc.alg.Name, tc.r, g.Label(u), g.Label(v))
			}
		}
	}
}

// TestAdjacencyIndexConcurrentInit exercises the lazy construction from
// several goroutines at once (run with -race).
func TestAdjacencyIndexConcurrentInit(t *testing.T) {
	g, err := New(bilinear.Strassen(), 2)
	if err != nil {
		t.Fatal(err)
	}
	prod := g.Product(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if !g.HasEdge(g.ID(EncA, g.R, 0), prod) {
				t.Error("product must have its rank-r combination as parent")
			}
		}()
	}
	wg.Wait()
}
