package cdag

// CSR adjacency index. Parents and children of a vertex are computed
// arithmetically in O(degree) (see AppendParents), which is ideal for
// one-shot traversals but makes membership queries — "is u a parent of
// v?" — allocate and scan a fresh edge slice per call. The routing
// verifiers ask that question for every edge of every sampled path, so
// the index materializes all parent edges once, in compressed sparse
// row form, and answers membership by scanning a short sorted row.
//
// The index is built lazily on first use and shared by every caller;
// building walks the graph once (O(|E|)) and stores one int32 per edge
// plus one int64 per vertex, which for every graph New admits (IDs fit
// int32) is a few hundred MB at the extreme and typically far less.

import "sort"

// buildAdjacency materializes the parent adjacency of every vertex in
// CSR form with each row sorted ascending.
func (g *Graph) buildAdjacency() {
	ptr := make([]int64, g.total+1)
	var buf []Edge
	for v := V(0); int64(v) < g.total; v++ {
		buf = g.AppendParents(v, buf[:0])
		ptr[v+1] = ptr[v] + int64(len(buf))
	}
	nbr := make([]V, ptr[g.total])
	for v := V(0); int64(v) < g.total; v++ {
		buf = g.AppendParents(v, buf[:0])
		row := nbr[ptr[v]:ptr[v+1]]
		for i, e := range buf {
			row[i] = e.To
		}
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
	}
	g.parentPtr, g.parentNbr = ptr, nbr
}

// EnsureAdjacencyIndex builds the CSR adjacency index now instead of on
// the first HasEdge/Adjacent call. Call it before timing or before
// spawning workers so the one-time construction cost is paid up front
// (construction is safe under concurrent use either way).
func (g *Graph) EnsureAdjacencyIndex() { g.adjOnce.Do(g.buildAdjacency) }

// parentRowContains reports whether parent appears in v's CSR parent
// row. Rows are sorted and short (max in-degree is a base-graph
// constant), so a linear scan with early exit beats binary search.
func (g *Graph) parentRowContains(v, parent V) bool {
	row := g.parentNbr[g.parentPtr[v]:g.parentPtr[v+1]]
	for _, p := range row {
		if p >= parent {
			return p == parent
		}
	}
	return false
}

// HasEdge reports whether G has the directed edge parent → child, using
// the CSR index (built on first call).
func (g *Graph) HasEdge(parent, child V) bool {
	g.adjOnce.Do(g.buildAdjacency)
	return g.parentRowContains(child, parent)
}

// Adjacent reports whether u and v are joined by an edge in either
// direction — the undirected adjacency the routings care about (paths
// may traverse edges against their orientation).
func (g *Graph) Adjacent(u, v V) bool {
	g.adjOnce.Do(g.buildAdjacency)
	return g.parentRowContains(v, u) || g.parentRowContains(u, v)
}
