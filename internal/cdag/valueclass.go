package cdag

// Value classes: the generalization of meta-vertices needed for the
// paper's Section 8 conjecture. The standing assumption of Theorem 1 is
// that every *nontrivial* linear combination feeds one multiplication;
// when it is violated (e.g. Strassen⊗classical), distinct products
// share identical combination rows and this package's G_r represents
// the shared value at several vertices. In the paper's "one vertex per
// value" model those vertices are one vertex. A *value class* groups
// vertices that provably carry the same value because their defining
// coefficient structures are identical:
//
//   - encoding vertices whose product coordinates have slot-wise equal
//     encoding rows (and equal entry suffixes);
//   - product vertices whose coordinates have slot-wise equal (U, V)
//     row pairs;
//   - decoding vertices whose product-prefix coordinates are
//     product-equivalent (and equal output suffixes).
//
// ValueRoot returns a canonical representative per class (coordinates
// canonicalized, then copy chains followed downward as in MetaRoot).
// For algorithms satisfying the standing assumption, ValueRoot and
// MetaRoot coincide; the difference is exactly the Section 8 gap, and
// internal/routing measures routing loads per value class to test the
// conjecture empirically.

import "strconv"

// rowClasses returns, for each product, the smallest product with an
// identical row in m.
func rowClasses(m [][]nz) []int32 {
	rep := make([]int32, len(m))
	seen := map[string]int32{}
	for t, row := range m {
		key := nzKey(row)
		if r, ok := seen[key]; ok {
			rep[t] = r
		} else {
			seen[key] = int32(t)
			rep[t] = int32(t)
		}
	}
	return rep
}

// nzKey encodes a sparse row injectively: distinct rows always produce
// distinct keys. The index is rendered in decimal — an earlier byte(idx)
// encoding truncated it mod 256, so two entries whose indices agree mod
// 256 and share a coefficient collided, silently merging distinct value
// classes (and every routing statistic computed per class with them).
// The ':' and ',' delimiters cannot appear inside a decimal integer or
// a rat.Rat rendering ("-3/7"), so the field boundaries are unambiguous.
func nzKey(row []nz) string {
	buf := make([]byte, 0, 12*len(row))
	for _, e := range row {
		buf = strconv.AppendInt(buf, int64(e.idx), 10)
		buf = append(buf, ':')
		buf = append(buf, e.c.String()...)
		buf = append(buf, ',')
	}
	return string(buf)
}

// valueReps lazily computes the three product-equivalence tables
// (thread-safe: verification code calls ValueRoot from worker pools).
func (g *Graph) valueReps() (repA, repB, repP []int32) {
	g.repOnce.Do(func() {
		g.repA = rowClasses(g.uRows)
		g.repB = rowClasses(g.vRows)
		g.repP = make([]int32, g.b)
		type pair struct{ a, b int32 }
		seen := map[pair]int32{}
		for t := 0; t < g.b; t++ {
			p := pair{g.repA[t], g.repB[t]}
			if r, ok := seen[p]; ok {
				g.repP[t] = r
			} else {
				seen[p] = int32(t)
				g.repP[t] = int32(t)
			}
		}
	})
	return g.repA, g.repB, g.repP
}

// ValueRoot returns the canonical representative of v's value class.
func (g *Graph) ValueRoot(v V) V {
	repA, repB, repP := g.valueReps()
	kind, rank, idx := g.Locate(v)
	var rep []int32
	switch kind {
	case EncA:
		rep = repA
	case EncB:
		rep = repB
	default:
		rep = repP
	}
	// Canonicalize the product coordinates of the label.
	var tLen int
	var suffixPow int64
	if kind == Dec {
		tLen = g.R - rank
		suffixPow = g.powA[rank]
	} else {
		tLen = rank
		suffixPow = g.powA[g.R-rank]
	}
	tPart := idx / suffixPow
	suffix := idx % suffixPow
	var canon int64
	digits := make([]int64, tLen)
	for l := tLen - 1; l >= 0; l-- {
		digits[l] = tPart % int64(g.b)
		tPart /= int64(g.b)
	}
	for l := 0; l < tLen; l++ {
		canon = canon*int64(g.b) + int64(rep[digits[l]])
	}
	cv := g.ID(kind, rank, canon*suffixPow+suffix)
	// Copies still collapse downward within the canonical labels.
	return g.MetaRoot(cv)
}

// HasValueSharing reports whether the algorithm has distinct products
// with identical encoding rows on some side — i.e. whether ValueRoot
// differs from MetaRoot anywhere (the Section 8 regime).
func (g *Graph) HasValueSharing() bool {
	repA, repB, _ := g.valueReps()
	for t := 0; t < g.b; t++ {
		if int(repA[t]) != t || int(repB[t]) != t {
			return true
		}
	}
	return false
}
