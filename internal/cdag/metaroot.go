package cdag

// Dense meta-root table. MetaRoot computes a vertex's meta-vertex root
// by walking copy edges downward, which costs a Locate plus O(rank)
// divisions per call. The routing verifiers ask for the root of every
// vertex of every enumerated path — millions of calls over the same
// small vertex set — so the table materializes the answer once, in a
// dense []V indexed by vertex ID, exactly as the CSR index does for
// adjacency (see csr.go). Built lazily, shared by every caller.

// buildMetaRoots fills g.metaRoot rank by rank: a copy vertex inherits
// its unique parent's root, and the parent (same kind, rank-1) has a
// smaller ID, so one ascending pass per kind memoizes the whole walk in
// O(1) per vertex.
func (g *Graph) buildMetaRoots() {
	tbl := make([]V, g.total)
	for v := g.offDec[0]; v < g.total; v++ {
		tbl[v] = V(v) // decoding vertices are never copies (Lemma 2)
	}
	for side, kind := range []Kind{EncA, EncB} {
		off := g.offEncA
		if kind == EncB {
			off = g.offEncB
		}
		for idx := int64(0); idx < g.powA[g.R]; idx++ {
			tbl[off[0]+idx] = V(off[0] + idx) // inputs are roots
		}
		for rank := 1; rank <= g.R; rank++ {
			aPow := g.powA[g.R-rank]
			layer := int64(g.LayerSize(kind, rank))
			for idx := int64(0); idx < layer; idx++ {
				v := off[rank] + idx
				t := idx / aPow % int64(g.b)
				e := g.trivial[side][t]
				if e < 0 {
					tbl[v] = V(v)
					continue
				}
				tPrefix := idx / aPow / int64(g.b)
				parent := off[rank-1] + tPrefix*g.powA[g.R-rank+1] + int64(e)*aPow + idx%aPow
				tbl[v] = tbl[parent]
			}
		}
	}
	g.metaRoot = tbl
}

// EnsureMetaRootIndex builds the dense meta-root table now instead of
// on the first MetaRoots call. Call it before spawning workers so the
// one-time construction cost is paid up front (construction is safe
// under concurrent use either way).
func (g *Graph) EnsureMetaRootIndex() { g.metaOnce.Do(g.buildMetaRoots) }

// MetaRoots returns the dense meta-root table: MetaRoots()[v] ==
// MetaRoot(v) for every vertex. The table is built on first call and
// must not be mutated.
func (g *Graph) MetaRoots() []V {
	g.EnsureMetaRootIndex()
	return g.metaRoot
}
