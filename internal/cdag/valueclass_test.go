package cdag

// Tests for the value-class equivalence layer. The key encoder is the
// foundation everything class-shaped rests on (rowClasses, ValueRoot,
// and through them the Section 8 routing checks), so its injectivity is
// pinned both by a targeted regression and by a fuzz target in the
// style of internal/rat's.

import (
	"testing"

	"pathrouting/internal/rat"
)

// TestNzKeyDistinguishesIndicesModulo256 is the regression test for the
// byte(idx) truncation bug: indices 1 and 257 agree mod 256, so with a
// one-byte index encoding two rows sharing a coefficient produced the
// same key and rowClasses silently merged distinct products into one
// value class.
func TestNzKeyDistinguishesIndicesModulo256(t *testing.T) {
	one := rat.New(1, 1)
	rowLo := []nz{{idx: 1, c: one}}
	rowHi := []nz{{idx: 257, c: one}}
	if nzKey(rowLo) == nzKey(rowHi) {
		t.Fatalf("nzKey collides on indices 1 and 257: %q", nzKey(rowLo))
	}
	// The merge the collision caused, end to end: rowClasses must keep
	// the two rows in separate classes.
	rep := rowClasses([][]nz{rowLo, rowHi})
	if rep[0] == rep[1] {
		t.Fatalf("rowClasses merged rows with indices 1 and 257 (rep=%v)", rep)
	}
	// Sanity: genuinely identical rows still share a class.
	rep = rowClasses([][]nz{rowLo, {{idx: 1, c: one}}})
	if rep[0] != rep[1] {
		t.Fatalf("rowClasses split identical rows (rep=%v)", rep)
	}
}

// fuzzRow builds a normalized sparse row from fuzzer-chosen raw fields:
// strictly increasing indices (as sparseRows produces) and nonzero
// denominators.
func fuzzRow(idx0, idx1 uint16, n0, n1 int16, d0, d1 uint8, two bool) []nz {
	row := []nz{{idx: int(idx0), c: rat.New(int64(n0), int64(d0%100)+1)}}
	if two && int(idx1) > int(idx0) {
		row = append(row, nz{idx: int(idx1), c: rat.New(int64(n1), int64(d1%100)+1)})
	}
	return row
}

func rowsEqual(x, y []nz) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i].idx != y[i].idx || !x[i].c.Equal(y[i].c) {
			return false
		}
	}
	return true
}

// FuzzNzKeyInjectivity checks the invariant rowClasses depends on:
// nzKey(x) == nzKey(y) exactly when the rows are equal. The seed corpus
// includes the mod-256 collision pair the regression test pins.
func FuzzNzKeyInjectivity(f *testing.F) {
	f.Add(uint16(1), uint16(0), int16(1), int16(0), uint8(0), uint8(0), false,
		uint16(257), uint16(0), int16(1), int16(0), uint8(0), uint8(0), false)
	f.Add(uint16(3), uint16(300), int16(-2), int16(5), uint8(6), uint8(7), true,
		uint16(3), uint16(300), int16(-2), int16(5), uint8(6), uint8(7), true)
	f.Add(uint16(12), uint16(268), int16(1), int16(1), uint8(0), uint8(0), true,
		uint16(268), uint16(0), int16(1), int16(0), uint8(0), uint8(0), false)
	f.Fuzz(func(t *testing.T,
		xi0, xi1 uint16, xn0, xn1 int16, xd0, xd1 uint8, xTwo bool,
		yi0, yi1 uint16, yn0, yn1 int16, yd0, yd1 uint8, yTwo bool) {
		x := fuzzRow(xi0, xi1, xn0, xn1, xd0, xd1, xTwo)
		y := fuzzRow(yi0, yi1, yn0, yn1, yd0, yd1, yTwo)
		same, keysSame := rowsEqual(x, y), nzKey(x) == nzKey(y)
		if same != keysSame {
			t.Fatalf("rows equal=%v but keys equal=%v\nx=%v key %q\ny=%v key %q",
				same, keysSame, x, nzKey(x), y, nzKey(y))
		}
	})
}
