package core

import (
	"math/rand"
	"testing"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/bounds"
	"pathrouting/internal/cdag"
	"pathrouting/internal/pebble"
	"pathrouting/internal/schedule"
)

func mustGraph(t *testing.T, alg *bilinear.Algorithm, r int) *cdag.Graph {
	t.Helper()
	g, err := cdag.New(alg, r)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCertifyParamValidation(t *testing.T) {
	g := mustGraph(t, bilinear.Strassen(), 3)
	sched := schedule.RecursiveDFS(g)
	if _, err := Certify(g, sched, Options{K: 0, M: 1}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Certify(g, sched, Options{K: 4, M: 1}); err == nil {
		t.Error("K>r accepted")
	}
	if _, err := Certify(g, sched, Options{K: 2, M: 100}); err == nil {
		t.Error("aᴷ < 72M accepted")
	}
	if _, err := Certify(g, sched, Options{K: 2, M: 0}); err == nil {
		t.Error("M=0 accepted")
	}
	if _, err := Certify(g, sched, Options{K: 2, RelaxedTarget: 1000}); err == nil {
		t.Error("relaxed target > aᴷ/2 accepted")
	}
}

func TestEquation2HoldsOnSmallGraphAllSchedules(t *testing.T) {
	// The combinatorial core (Equation (2)) must hold for *every*
	// segment of *every* schedule. Exercise DFS, rank-by-rank, and
	// random schedules on Strassen G_4 with the relaxed quota.
	g := mustGraph(t, bilinear.Strassen(), 4)
	rng := rand.New(rand.NewSource(11))
	random, err := schedule.RandomTopological(g, rng)
	if err != nil {
		t.Fatal(err)
	}
	scheds := map[string][]cdag.V{
		"dfs":    schedule.RecursiveDFS(g),
		"rank":   schedule.RankByRank(g),
		"random": random,
	}
	for name, sched := range scheds {
		cert, err := Certify(g, sched, Options{K: 2, RelaxedTarget: 8})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if cert.CompleteSegments == 0 {
			t.Errorf("%s: no complete segments", name)
		}
		if cert.MinDeltaRatio < 1.0/12 {
			t.Errorf("%s: min δ′/S̄ ratio %v < 1/12", name, cert.MinDeltaRatio)
		}
	}
}

func TestDeepRoutingDerivation(t *testing.T) {
	// Re-derive Equation (2) from the Routing Theorem on a couple of
	// segments: boundary-crossing path counts must straddle the claimed
	// inequalities.
	g := mustGraph(t, bilinear.Strassen(), 4)
	cert, err := Certify(g, schedule.RecursiveDFS(g), Options{K: 2, RelaxedTarget: 8, DeepSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	deep := 0
	for _, s := range cert.Segments {
		if s.CrossingPaths > 0 {
			deep++
			if 2*s.CrossingPaths < 16*s.Counted {
				t.Errorf("segment [%d,%d): crossings %d below ½aᵏ|S̄|", s.Start, s.End, s.CrossingPaths)
			}
		}
	}
	if deep == 0 {
		t.Fatal("no segments deep-verified")
	}
}

func TestEquation2OnCopyHeavyAlgorithm(t *testing.T) {
	// classical2 has multiple copying: the meta-vertex machinery (weights
	// > 1, closure-based counting) is actually exercised. The paper's
	// Theorem 1 does not cover ω₀ = 3, but Equation (2) is a purely
	// combinatorial statement about segments that we can still test; the
	// overshoot guard may legitimately reject, in which case the rejection
	// message is the expected outcome.
	g := mustGraph(t, bilinear.Classical(2), 4)
	cert, err := Certify(g, schedule.RecursiveDFS(g), Options{K: 2, RelaxedTarget: 4})
	if err != nil {
		t.Logf("classical2 rejected (acceptable): %v", err)
		return
	}
	if cert.MinDeltaRatio < 1.0/12 {
		t.Errorf("min ratio %v < 1/12", cert.MinDeltaRatio)
	}
}

func TestFullCertificationStrassenR7(t *testing.T) {
	if testing.Short() {
		t.Skip("G_7 certification is expensive")
	}
	// The complete paper argument with the paper's constants:
	// r = 7, k = 5, M = 14 (a⁵ = 1024 ≥ 72·14 = 1008), quota 504.
	// M = 14 is also large enough for the pebble machine to execute
	// Strassen's base graph (max fan-in 4), so the certificate can be
	// cross-checked against a real simulated execution.
	alg := bilinear.Strassen()
	g := mustGraph(t, alg, 7)
	sched := schedule.RecursiveDFS(g)
	cert, err := Certify(g, sched, Options{K: 5, M: 14})
	if err != nil {
		t.Fatal(err)
	}
	if cert.CompleteSegments == 0 {
		t.Fatal("no complete segments")
	}
	if cert.MinDeltaRatio < 1.0/12 {
		t.Errorf("min ratio %v", cert.MinDeltaRatio)
	}
	if cert.CertifiedIO != int64(cert.CompleteSegments)*14 {
		t.Errorf("certified IO %d", cert.CertifiedIO)
	}
	// Lemma 1: the collection must meet the 1/b² density bound.
	if cert.CollectionSize < 49/49 {
		t.Errorf("collection %d below Lemma 1 bound", cert.CollectionSize)
	}

	// Cross-check: the measured I/O of this schedule can not beat the
	// certificate (lower bound ≤ any real execution).
	res, err := (&pebble.Simulator{G: g, M: 14, P: pebble.MIN}).Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	if res.IO() < cert.CertifiedIO {
		t.Errorf("measured IO %d below certified lower bound %d — the proof would be false",
			res.IO(), cert.CertifiedIO)
	}

	// And the closed-form proof constant agrees with the driver.
	formula := bounds.ProofSequential(alg, 7, 14)
	if formula <= 0 {
		t.Error("closed-form proof bound vacuous in-regime")
	}
	t.Logf("certified=%d measured=%d closed-form=%d segments=%d collection=%d minRatio=%.3f",
		cert.CertifiedIO, res.IO(), formula, cert.CompleteSegments, cert.CollectionSize, cert.MinDeltaRatio)
}

func TestCountedTotalMatchesFormula(t *testing.T) {
	// Counted vertices = collection × 3aᵏ (2aᵏ sub-inputs + aᵏ
	// sub-outputs per subcomputation) for a single-copying algorithm.
	g := mustGraph(t, bilinear.Strassen(), 4)
	cert, err := Certify(g, schedule.RecursiveDFS(g), Options{K: 2, RelaxedTarget: 8})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(cert.CollectionSize) * 3 * 16
	if cert.CountedTotal != want {
		t.Errorf("counted %d, want %d", cert.CountedTotal, want)
	}
}

func TestSection5CertifyStrassen(t *testing.T) {
	g := mustGraph(t, bilinear.Strassen(), 5)
	for _, kind := range []string{"dfs", "rank"} {
		var sched []cdag.V
		if kind == "dfs" {
			sched = schedule.RecursiveDFS(g)
		} else {
			sched = schedule.RankByRank(g)
		}
		cert, err := CertifySection5(g, sched, 4, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if cert.CompleteSegments == 0 {
			t.Errorf("%s: no complete segments", kind)
		}
		if cert.MinDeltaRatio < 1.0/22 {
			t.Errorf("%s: Equation (1) ratio %v < 1/22", kind, cert.MinDeltaRatio)
		}
		if cert.CertifiedIO != int64(cert.CompleteSegments) {
			t.Errorf("%s: certified IO %d", kind, cert.CertifiedIO)
		}
	}
}

func TestSection5RefusesDisconnectedDecoding(t *testing.T) {
	g := mustGraph(t, bilinear.Classical(2), 5)
	if _, err := CertifySection5(g, schedule.RecursiveDFS(g), 4, 1); err == nil {
		t.Fatal("section 5 must refuse a disconnected base decoding graph")
	}
}

func TestSection5ParamValidation(t *testing.T) {
	g := mustGraph(t, bilinear.Strassen(), 4)
	sched := schedule.RecursiveDFS(g)
	if _, err := CertifySection5(g, sched, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := CertifySection5(g, sched, 2, 1); err == nil {
		t.Error("aᵏ < 132M accepted")
	}
	if _, err := CertifySection5(g, sched, 4, 0); err == nil {
		t.Error("M=0 accepted")
	}
	if _, err := CertifySection5(g, sched, 4, 1); err == nil {
		// r=4, k=4: decoding rank 4 has 4^4 = 256 ≥ 66 vertices, so
		// this actually succeeds; keep as a regression anchor.
		t.Log("r=k certification succeeded (layer large enough)")
	}
}

func TestSection5AgreesWithSection6Direction(t *testing.T) {
	// Both certifiers must produce bounds below the measured I/O of the
	// same schedule (at a simulatable M).
	g := mustGraph(t, bilinear.Strassen(), 6)
	sched := schedule.RecursiveDFS(g)
	cert5, err := CertifySection5(g, sched, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&pebble.Simulator{G: g, M: 7, P: pebble.MIN}).Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	if res.IO() < cert5.CertifiedIO {
		t.Errorf("measured %d below section-5 certificate %d", res.IO(), cert5.CertifiedIO)
	}
}

func TestCertifyParallelRelaxed(t *testing.T) {
	// Rank-balanced owners on Strassen G_4, relaxed quota: the busiest
	// processor's segments must satisfy Equation (2).
	g := mustGraph(t, bilinear.Strassen(), 4)
	sched := schedule.RecursiveDFS(g)
	owner := make([]int32, g.NumVertices())
	p := 4
	for v := range owner {
		owner[v] = int32(v % p)
	}
	cert, err := CertifyParallel(g, sched, owner, p, 2, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cert.CompleteSegments == 0 {
		t.Error("no segments")
	}
	if cert.MinDeltaRatio < 1.0/12 {
		t.Errorf("ratio %v", cert.MinDeltaRatio)
	}
	if cert.BusiestCounted*int64(p) < cert.BusiestCounted {
		t.Error("accounting")
	}
}

func TestCertifyParallelValidation(t *testing.T) {
	g := mustGraph(t, bilinear.Strassen(), 3)
	sched := schedule.RecursiveDFS(g)
	owner := make([]int32, g.NumVertices())
	if _, err := CertifyParallel(g, sched, owner, 0, 2, 1, 8); err == nil {
		t.Error("P=0 accepted")
	}
	if _, err := CertifyParallel(g, sched, owner[:5], 2, 2, 1, 8); err == nil {
		t.Error("short owner table accepted")
	}
	if _, err := CertifyParallel(g, sched, owner, 2, 9, 1, 8); err == nil {
		t.Error("K out of range accepted")
	}
	if _, err := CertifyParallel(g, sched, owner, 2, 2, 0, 1000); err == nil {
		t.Error("huge relaxed target accepted")
	}
}

func TestCertifyParallelSingleProcMatchesSequentialSpirit(t *testing.T) {
	// With P = 1, the busiest processor is the whole machine: the
	// parallel certificate degenerates to the sequential one's segment
	// count (same quota, same counting).
	g := mustGraph(t, bilinear.Strassen(), 4)
	sched := schedule.RecursiveDFS(g)
	owner := make([]int32, g.NumVertices())
	par, err := CertifyParallel(g, sched, owner, 1, 2, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Certify(g, sched, Options{K: 2, RelaxedTarget: 8})
	if err != nil {
		t.Fatal(err)
	}
	if par.CompleteSegments != seq.CompleteSegments {
		t.Errorf("P=1 parallel segments %d != sequential %d", par.CompleteSegments, seq.CompleteSegments)
	}
}
