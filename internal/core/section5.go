package core

// The Section 5 argument — the paper's simpler rederivation of the
// Strassen bound — as a second, independent certifier. Differences from
// the general Section 6 argument implemented in Certify:
//
//   - only vertices on decoding rank k are counted (|S̄| = 66M), with no
//     input-disjointness selection (decoding has no copying, Lemma 2);
//   - the routing lives in the decoding graph D_k alone (Claim 1's
//     zag routing), so the base decoding graph must be connected;
//   - the boundary is the plain vertex boundary δ(S) of Definition 1
//     and Equation (1) asserts |δ(S)| ≥ |S̄|/22, giving ≥ 3M and hence
//     M I/Os per segment.
//
// CertifySection5 machine-checks Equation (1) on every complete segment
// of a schedule and returns the certified bound. It applies to any
// algorithm with a connected base decoding graph (Strassen, Winograd,
// Laderman, …) and correctly refuses the disconnected cases, which is
// the precise gap Section 6 was written to close.

import (
	"fmt"

	"pathrouting/internal/cdag"
	"pathrouting/internal/pebble"
	"pathrouting/internal/routing"
)

// Section5Certificate is the outcome of the Section 5 argument.
type Section5Certificate struct {
	// K and M echo the parameters; Target = 66M.
	K      int
	M      int64
	Target int64
	// CompleteSegments met the quota.
	CompleteSegments int
	// MinDeltaRatio is the minimum |δ(S)| / |S̄| over complete segments
	// (Equation (1) asserts ≥ 1/22).
	MinDeltaRatio float64
	// CertifiedIO = CompleteSegments · M.
	CertifiedIO int64
}

// CertifySection5 runs the Section 5 argument on the schedule. The
// quota is 66M and requires aᴷ ≥ 132M (the paper's k = ⌈log_a 132M⌉ is
// the smallest admissible K). It returns an error for out-of-range
// parameters, disconnected base decoding graphs, or — which would
// falsify the paper — an Equation (1) violation.
func CertifySection5(g *cdag.Graph, sched []cdag.V, k int, m int64) (*Section5Certificate, error) {
	if k < 1 || k > g.R {
		return nil, fmt.Errorf("core: section 5: K = %d out of range [1,%d]", k, g.R)
	}
	if m < 1 {
		return nil, fmt.Errorf("core: section 5: M = %d < 1", m)
	}
	aK := int64(1)
	for i := 0; i < k; i++ {
		aK *= int64(g.A())
	}
	if aK < 132*m {
		return nil, fmt.Errorf("core: section 5: aᴷ = %d < 132M = %d", aK, 132*m)
	}
	// Claim 1 requires a connected base decoding graph; constructing
	// the router performs exactly that check.
	gk, err := cdag.New(g.Alg, k)
	if err != nil {
		return nil, err
	}
	if _, err := routing.NewDecodingRouter(gk); err != nil {
		return nil, fmt.Errorf("core: section 5 inapplicable: %w", err)
	}

	cert := &Section5Certificate{K: k, M: m, Target: 66 * m, MinDeltaRatio: 1e18}
	counted := func(v cdag.V) bool {
		kind, rank, _ := g.Locate(v)
		return kind == cdag.Dec && rank == k
	}
	// Total counted vertices: aᵏ·b^(r−k); must cover at least one
	// segment.
	layer := int64(g.LayerSize(cdag.Dec, k))
	if layer < cert.Target {
		return nil, fmt.Errorf("core: section 5: only %d counted vertices for quota %d", layer, cert.Target)
	}

	// Cut segments: decoding vertices are never copies (Lemma 2), so
	// counting is one per vertex — no meta-weighting needed.
	start, acc := 0, int64(0)
	type seg struct {
		start, end int
		counted    int64
	}
	var segs []seg
	for pos, v := range sched {
		if counted(v) {
			acc++
		}
		if acc >= cert.Target {
			segs = append(segs, seg{start, pos + 1, acc})
			start, acc = pos+1, 0
		}
	}

	for _, sg := range segs {
		// S is still meta-closed (the paper's convention), but S̄ only
		// counts decoding-rank-k vertices.
		s := pebble.MetaClosure(g, sched[sg.start:sg.end])
		b := pebble.ComputeBoundary(g, s)
		ratio := float64(b.Delta()) / float64(sg.counted)
		if ratio < cert.MinDeltaRatio {
			cert.MinDeltaRatio = ratio
		}
		if 22*b.Delta() < sg.counted {
			return cert, fmt.Errorf(
				"core: Equation (1) fails on segment [%d,%d): |δ(S)| = %d < |S̄|/22 = %d/22",
				sg.start, sg.end, b.Delta(), sg.counted)
		}
		if b.Delta() < 3*m {
			return cert, fmt.Errorf(
				"core: section 5 segment [%d,%d): |δ(S)| = %d < 3M", sg.start, sg.end, b.Delta())
		}
		cert.CompleteSegments++
	}
	cert.CertifiedIO = int64(cert.CompleteSegments) * m
	return cert, nil
}
