// Package core assembles the paper's primary contribution — the
// path-routing lower-bound argument of Sections 5–6 of
// Scott–Holtz–Schwartz (SPAA 2015) — into an executable, machine-checked
// proof over explicit computation graphs.
//
// Given a CDAG G_r, a concrete schedule, and the paper's segment
// parameters (k, M), Certify:
//
//  1. selects a collection C of mutually input-disjoint subcomputations
//     G_k^i (Lemma 1, constructive greedy form),
//  2. cuts the schedule into minimal segments S each containing at
//     least 36M counted vertices — vertices on decoding rank k or
//     encoding rank r−k lying in C, counted through meta-vertex closure
//     exactly as the paper prescribes,
//  3. computes δ′(S′) for every complete segment and checks
//     Equation (2): |δ′(S′)| ≥ |S̄|/12, hence ≥ 3M, hence the segment
//     performs at least M I/Os,
//  4. optionally re-derives step 3 for sampled segments from first
//     principles — embedding the Routing Theorem's 6aᵏ-routing into
//     each subcomputation, counting boundary-crossing paths, and
//     checking the chain |P| ≥ ½aᵏ|S̄| and |δ′(S′)| ≥ |P|/6aᵏ,
//  5. reports the certified lower bound (#complete segments)·M, which
//     any execution of the schedule must pay; callers cross-check it
//     against pebble-simulator measurements.
package core

import (
	"fmt"

	"pathrouting/internal/cdag"
	"pathrouting/internal/pebble"
	"pathrouting/internal/routing"
)

// Options configures Certify.
type Options struct {
	// K is the paper's subcomputation size parameter; it must satisfy
	// 1 ≤ K ≤ r. The regime condition of the theorem additionally wants
	// K ≤ r−2 (so Lemma 1 applies); Certify enforces only K ≤ r and
	// reports the collection size it achieved.
	K int
	// M is the cache size being certified against. The paper's segment
	// constants require aᴷ ≥ 72M; Certify rejects parameters violating
	// it (the inequality |S̄| ≤ ½aᴷ underlying Equation (2) would not be
	// guaranteed).
	M int64
	// DeepSegments, when positive, re-derives Equation (2) for up to
	// this many segments via explicit routing-path counting (step 4).
	DeepSegments int
	// RelaxedTarget, when positive, replaces the paper's 36M quota with
	// this value (which must satisfy RelaxedTarget ≤ aᴷ/2) and verifies
	// Equation (2) only, without certifying an I/O bound. This lets the
	// combinatorial core of the proof be exercised on graphs too small
	// for the paper's unoptimized constants. M is ignored.
	RelaxedTarget int64
}

// SegmentReport records the verification of one complete segment.
type SegmentReport struct {
	// Start and End delimit the schedule positions of the segment.
	Start, End int
	// Counted is |S̄|, the number of counted vertices.
	Counted int64
	// DeltaMeta is |δ′(S′)|.
	DeltaMeta int64
	// CrossingPaths is the routing-path count of the deep verification,
	// 0 when the segment was not deep-checked.
	CrossingPaths int64
}

// Certificate is the outcome of the executable lower-bound argument.
type Certificate struct {
	// K and M echo the options.
	K int
	M int64
	// Target is the per-segment counted quota, 36M.
	Target int64
	// CollectionSize is the number of mutually input-disjoint
	// subcomputations selected (Lemma 1 guarantees ≥ b^(r−k)/b² exist
	// when k ≤ r−2).
	CollectionSize int
	// CountedTotal is the total number of counted vertices available.
	CountedTotal int64
	// CompleteSegments is the number of segments meeting the quota.
	CompleteSegments int
	// MinDeltaRatio is the minimum over complete segments of
	// |δ′(S′)| / |S̄| (Equation (2) asserts ≥ 1/12).
	MinDeltaRatio float64
	// CertifiedIO is the proven lower bound: CompleteSegments · M.
	CertifiedIO int64
	// Segments holds the per-segment reports.
	Segments []SegmentReport
}

// Certify runs the argument on the given schedule. It returns an error
// if the parameters are out of range or if any machine-checked
// inequality of the proof fails (which would falsify the paper's claim
// on this instance).
func Certify(g *cdag.Graph, sched []cdag.V, opts Options) (*Certificate, error) {
	r := g.R
	if opts.K < 1 || opts.K > r {
		return nil, fmt.Errorf("core: K = %d out of range [1,%d]", opts.K, r)
	}
	aK := int64(1)
	for i := 0; i < opts.K; i++ {
		aK *= int64(g.A())
	}
	relaxed := opts.RelaxedTarget > 0
	var target int64
	if relaxed {
		target = opts.RelaxedTarget
		if target > aK/2 {
			return nil, fmt.Errorf("core: relaxed target %d > aᴷ/2 = %d", target, aK/2)
		}
		opts.M = 0
	} else {
		if opts.M < 1 {
			return nil, fmt.Errorf("core: M = %d < 1", opts.M)
		}
		if aK < 72*opts.M {
			return nil, fmt.Errorf("core: aᴷ = %d < 72M = %d: segment constants need a larger K", aK, 72*opts.M)
		}
		target = 36 * opts.M
	}
	cert := &Certificate{K: opts.K, M: opts.M, Target: target, MinDeltaRatio: 1e18}

	// Step 1: Lemma 1 — input-disjoint collection.
	collection := g.InputDisjointCollection(opts.K)
	cert.CollectionSize = len(collection)
	if len(collection) == 0 {
		return nil, fmt.Errorf("core: no input-disjoint subcomputations at K = %d", opts.K)
	}
	inC := make(map[int64]struct{}, len(collection))
	for _, p := range collection {
		inC[p] = struct{}{}
	}

	// Counted weight per meta-vertex root: the number of counted
	// vertices (decoding rank k or encoding rank r−k, inside C) in the
	// root's meta-vertex. Adding any member of the meta-vertex to S
	// contributes the root's full weight to |S̄| exactly once.
	weight := make(map[cdag.V]int64)
	addCounted := func(v cdag.V) {
		if sub := g.Subcomputation(v, opts.K); sub >= 0 {
			if _, ok := inC[sub]; ok {
				weight[g.MetaRoot(v)]++
				cert.CountedTotal++
			}
		}
	}
	for _, kind := range []cdag.Kind{cdag.EncA, cdag.EncB} {
		n := int64(g.LayerSize(kind, r-opts.K))
		for i := int64(0); i < n; i++ {
			addCounted(g.ID(kind, r-opts.K, i))
		}
	}
	nDec := int64(g.LayerSize(cdag.Dec, opts.K))
	for i := int64(0); i < nDec; i++ {
		addCounted(g.ID(cdag.Dec, opts.K, i))
	}
	if cert.CountedTotal < cert.Target {
		return nil, fmt.Errorf("core: only %d counted vertices for target %d; shrink M or grow r",
			cert.CountedTotal, cert.Target)
	}
	maxWeight := int64(0)
	for _, w := range weight {
		if w > maxWeight {
			maxWeight = w
		}
	}
	if cert.Target+maxWeight-1 > aK/2 {
		return nil, fmt.Errorf(
			"core: quota %d plus worst meta-vertex weight %d can exceed aᴷ/2 = %d; |S̄| ≤ ½aᴷ would be unguaranteed",
			cert.Target, maxWeight, aK/2)
	}

	// Step 2: minimal segments with |S̄| ≥ 36M, counting each
	// meta-vertex once per segment.
	type seg struct {
		start, end int
		counted    int64
	}
	var segs []seg
	seen := make(map[cdag.V]struct{})
	start, acc := 0, int64(0)
	for pos, v := range sched {
		root := g.MetaRoot(v)
		if _, dup := seen[root]; !dup {
			seen[root] = struct{}{}
			if w, ok := weight[root]; ok {
				acc += w
			}
		}
		if acc >= cert.Target {
			segs = append(segs, seg{start, pos + 1, acc})
			start, acc = pos+1, 0
			clear(seen)
		}
	}
	// (The trailing partial segment is not certified — as in the paper.)

	// Step 3: Equation (2) for every complete segment.
	var gk *cdag.Graph
	var router *routing.Router
	if opts.DeepSegments > 0 {
		var err error
		gk, err = cdag.New(g.Alg, opts.K)
		if err != nil {
			return nil, fmt.Errorf("core: deep verification graph: %w", err)
		}
		router, err = routing.NewRouter(gk)
		if err != nil {
			return nil, fmt.Errorf("core: deep verification router: %w", err)
		}
	}
	deepBudget := opts.DeepSegments
	for _, sg := range segs {
		s := pebble.MetaClosure(g, sched[sg.start:sg.end])
		b := pebble.ComputeBoundary(g, s)
		rep := SegmentReport{Start: sg.start, End: sg.end, Counted: sg.counted, DeltaMeta: b.DeltaMeta}
		ratio := float64(b.DeltaMeta) / float64(sg.counted)
		if ratio < cert.MinDeltaRatio {
			cert.MinDeltaRatio = ratio
		}
		if 12*b.DeltaMeta < sg.counted {
			return cert, fmt.Errorf(
				"core: Equation (2) fails on segment [%d,%d): |δ′(S′)| = %d < |S̄|/12 = %d/12",
				sg.start, sg.end, b.DeltaMeta, sg.counted)
		}
		if !relaxed && b.DeltaMeta < 3*opts.M {
			return cert, fmt.Errorf(
				"core: segment [%d,%d): |δ′(S′)| = %d < 3M = %d", sg.start, sg.end, b.DeltaMeta, 3*opts.M)
		}
		// Step 4: deep routing-based derivation on a budget.
		if deepBudget > 0 {
			deepBudget--
			crossings, err := deepVerify(g, gk, router, collection, s, sg.counted, b.DeltaMeta, opts.K)
			if err != nil {
				return cert, err
			}
			rep.CrossingPaths = crossings
		}
		cert.Segments = append(cert.Segments, rep)
		cert.CompleteSegments++
	}
	cert.CertifiedIO = int64(cert.CompleteSegments) * opts.M
	return cert, nil
}

// deepVerify re-derives Equation (2) for one segment from the Routing
// Theorem: embeds the 6aᵏ-routing in every collection subcomputation,
// counts boundary-crossing paths |P|, and checks |P| ≥ ½aᵏ·|S̄| and
// 6aᵏ·|δ′(S′)| ≥ |P|.
func deepVerify(g *cdag.Graph, gk *cdag.Graph, router *routing.Router,
	collection []int64, s pebble.Set, counted int64, deltaMeta int64, k int) (int64, error) {
	aK := int64(1)
	for i := 0; i < k; i++ {
		aK *= int64(g.A())
	}
	var total int64
	for _, prefix := range collection {
		p := prefix
		crossings := router.CountBoundaryCrossing(func(v cdag.V) bool {
			return s.Has(g.Embed(gk, v, p))
		})
		total += crossings
	}
	if 2*total < aK*counted {
		return total, fmt.Errorf(
			"core: routing argument fails: %d boundary-crossing paths < ½aᵏ|S̄| = %d",
			total, aK*counted/2)
	}
	if 6*aK*deltaMeta < total {
		return total, fmt.Errorf(
			"core: meta-hit bound fails: 6aᵏ·|δ′| = %d < |P| = %d", 6*aK*deltaMeta, total)
	}
	return total, nil
}
