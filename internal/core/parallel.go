package core

// The parallel step of Theorem 1: "we apply the above argument to a
// processor that computes an above-average number of vertices of S̄,
// yielding a factor of 1/P". Given an assignment of the computation to
// P processors, the busiest processor (by counted vertices) owns at
// least CountedTotal/P of them; cutting *its* computation sequence into
// segments and bounding each segment's meta-boundary exactly as in the
// sequential argument certifies the words that processor must move —
// a lower bound on the execution's critical-path bandwidth.

import (
	"fmt"

	"pathrouting/internal/cdag"
	"pathrouting/internal/pebble"
)

// ParallelCertificate reports the executable parallel argument.
type ParallelCertificate struct {
	// P is the processor count of the assignment.
	P int
	// BusiestProc is the processor the argument was applied to.
	BusiestProc int
	// BusiestCounted is its number of counted vertices (≥ total/P).
	BusiestCounted int64
	// CompleteSegments and MinDeltaRatio are as in the sequential
	// certificate, over the busiest processor's own sequence.
	CompleteSegments int
	MinDeltaRatio    float64
	// CertifiedWords = CompleteSegments · M: words the processor must
	// move, hence a critical-path bandwidth lower bound.
	CertifiedWords int64
}

// CertifyParallel runs the parallel argument. owner[v] gives each
// vertex's processor (inputs may be owned arbitrarily); sched is the
// global topological order (each processor computes its vertices in
// this induced order, which any legal parallel execution refines). The
// segment parameters follow Certify: quota 36M over counted vertices of
// the busiest processor, with the relaxed-target variant available via
// relaxedTarget > 0.
func CertifyParallel(g *cdag.Graph, sched []cdag.V, owner []int32, p int, k int, m int64, relaxedTarget int64) (*ParallelCertificate, error) {
	if p < 1 {
		return nil, fmt.Errorf("core: parallel: P = %d", p)
	}
	if len(owner) != g.NumVertices() {
		return nil, fmt.Errorf("core: parallel: owner table has %d entries for %d vertices", len(owner), g.NumVertices())
	}
	if k < 1 || k > g.R {
		return nil, fmt.Errorf("core: parallel: K = %d out of range", k)
	}
	aK := int64(1)
	for i := 0; i < k; i++ {
		aK *= int64(g.A())
	}
	var target int64
	relaxed := relaxedTarget > 0
	if relaxed {
		target = relaxedTarget
		if target > aK/2 {
			return nil, fmt.Errorf("core: parallel: relaxed target %d > aᴷ/2", target)
		}
	} else {
		if m < 1 {
			return nil, fmt.Errorf("core: parallel: M = %d", m)
		}
		if aK < 72*m {
			return nil, fmt.Errorf("core: parallel: aᴷ = %d < 72M", aK)
		}
		target = 36 * m
	}

	// Counted weights exactly as in the sequential argument.
	collection := g.InputDisjointCollection(k)
	if len(collection) == 0 {
		return nil, fmt.Errorf("core: parallel: no input-disjoint subcomputations")
	}
	inC := make(map[int64]struct{}, len(collection))
	for _, pr := range collection {
		inC[pr] = struct{}{}
	}
	weight := make(map[cdag.V]int64)
	add := func(v cdag.V) {
		if sub := g.Subcomputation(v, k); sub >= 0 {
			if _, ok := inC[sub]; ok {
				weight[g.MetaRoot(v)]++
			}
		}
	}
	for _, kind := range []cdag.Kind{cdag.EncA, cdag.EncB} {
		n := int64(g.LayerSize(kind, g.R-k))
		for i := int64(0); i < n; i++ {
			add(g.ID(kind, g.R-k, i))
		}
	}
	nDec := int64(g.LayerSize(cdag.Dec, k))
	for i := int64(0); i < nDec; i++ {
		add(g.ID(cdag.Dec, k, i))
	}

	// Per-processor counted totals (counted vertex charged to the
	// processor computing it; meta members may be spread — charge the
	// root's owner, the paper's value-level accounting).
	perProc := make([]int64, p)
	for root, w := range weight {
		o := owner[root]
		if int(o) >= p || o < 0 {
			return nil, fmt.Errorf("core: parallel: owner %d out of range", o)
		}
		perProc[o] += w
	}
	busiest, best := 0, int64(-1)
	var total int64
	for proc, c := range perProc {
		total += c
		if c > best {
			best = c
			busiest = proc
		}
	}
	if best*int64(p) < total {
		return nil, fmt.Errorf("core: parallel: busiest processor below average — accounting bug")
	}
	cert := &ParallelCertificate{P: p, BusiestProc: busiest, BusiestCounted: best, MinDeltaRatio: 1e18}

	// The busiest processor's own computation sequence.
	var mine []cdag.V
	for _, v := range sched {
		if owner[v] == int32(busiest) {
			mine = append(mine, v)
		}
	}
	// Segment it by counted quota and bound each segment's meta
	// boundary: vertices the processor reads from others, writes to
	// others, or shares across segment boundaries all cross the network
	// or its local memory; δ′(S′) − 2M of them are words moved.
	seen := make(map[cdag.V]struct{})
	start, acc := 0, int64(0)
	type seg struct{ start, end int }
	var segs []seg
	for pos, v := range mine {
		root := g.MetaRoot(v)
		if _, dup := seen[root]; !dup {
			seen[root] = struct{}{}
			if w, ok := weight[root]; ok {
				acc += w
			}
		}
		if acc >= target {
			segs = append(segs, seg{start, pos + 1})
			start, acc = pos+1, 0
			clear(seen)
		}
	}
	for _, sg := range segs {
		s := pebble.MetaClosure(g, mine[sg.start:sg.end])
		b := pebble.ComputeBoundary(g, s)
		ratio := float64(b.DeltaMeta) / float64(target)
		if ratio < cert.MinDeltaRatio {
			cert.MinDeltaRatio = ratio
		}
		if 12*b.DeltaMeta < target {
			return cert, fmt.Errorf("core: parallel Equation (2) fails on segment [%d,%d)", sg.start, sg.end)
		}
		cert.CompleteSegments++
	}
	if !relaxed {
		cert.CertifiedWords = int64(cert.CompleteSegments) * m
	}
	return cert, nil
}
