package pathrouting

import (
	"math/rand"
	"testing"
)

func TestCatalogAllValid(t *testing.T) {
	algs := Catalog()
	if len(algs) < 7 {
		t.Fatalf("catalog has %d algorithms", len(algs))
	}
	for _, alg := range algs {
		if err := alg.Validate(); err != nil {
			t.Errorf("%s: %v", alg.Name, err)
		}
	}
}

func TestMeasureIOAgainstBounds(t *testing.T) {
	// The end-to-end sandwich: closed-form lower bound ≤ measured DFS
	// I/O ≤ closed-form upper bound (up to the model's constants).
	alg := Strassen()
	r, m := 5, 64
	n := float64(int(1) << r)
	res, err := MeasureIO(alg, r, m, MIN, ScheduleDFS)
	if err != nil {
		t.Fatal(err)
	}
	lb := SequentialLowerBound(alg, n, float64(m))
	ub := DFSUpperBound(alg, n, float64(m))
	if float64(res.IO()) < lb/12 {
		t.Errorf("measured %d below lower bound %v (even with constant slack)", res.IO(), lb)
	}
	if float64(res.IO()) > 4*ub {
		t.Errorf("measured %d far above DFS upper bound %v", res.IO(), ub)
	}
}

func TestVerifyRoutingTheoremPublicAPI(t *testing.T) {
	st, err := VerifyRoutingTheorem(Strassen(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if int64(st.MaxVertexHits) > st.Bound {
		t.Errorf("stats inconsistent: %v", st)
	}
	if _, err := VerifyGuaranteedRouting(Winograd(), 2); err != nil {
		t.Error(err)
	}
	if _, err := VerifyDecodingRouting(Strassen(), 2); err != nil {
		t.Error(err)
	}
	if _, err := VerifyDecodingRouting(Classical(2), 2); err == nil {
		t.Error("decoding routing must fail for classical")
	}
}

func TestCertifySchedulePublicAPI(t *testing.T) {
	g, err := NewCDAG(Strassen(), 4)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := BuildSchedule(g, ScheduleDFS, nil)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := CertifySchedule(g, sched, CertifyOptions{K: 2, RelaxedTarget: 8})
	if err != nil {
		t.Fatal(err)
	}
	if cert.MinDeltaRatio < 1.0/12 {
		t.Errorf("ratio %v", cert.MinDeltaRatio)
	}
}

func TestBuildScheduleErrors(t *testing.T) {
	g, err := NewCDAG(Strassen(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildSchedule(g, ScheduleRandom, nil); err == nil {
		t.Error("random schedule without rng accepted")
	}
	if _, err := BuildSchedule(g, ScheduleKind(99), nil); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := BuildSchedule(g, ScheduleRandom, rand.New(rand.NewSource(1))); err != nil {
		t.Error(err)
	}
}

func TestExpansionMotivation(t *testing.T) {
	if !AnalyzeExpansion(Strassen()).EdgeExpansionUsable {
		t.Error("expansion must be usable for Strassen")
	}
	if AnalyzeExpansion(DisconnectedFast()).EdgeExpansionUsable {
		t.Error("expansion must fail for disconnected56 — the paper's motivation")
	}
}

func TestParallelFacade(t *testing.T) {
	if _, err := RunCannon(64, 8); err != nil {
		t.Error(err)
	}
	if _, err := RunTwoPointFiveD(64, 4, 2); err != nil {
		t.Error(err)
	}
	if _, err := RunCAPS(Strassen(), 256, 49, 1<<30); err != nil {
		t.Error(err)
	}
}

func TestMatrixFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := RandomDense(12, 12, rng), RandomDense(12, 12, rng)
	want := Mul(a, b)
	if !MulBlocked(a, b, 4).Equalish(want, 1e-9) {
		t.Error("blocked mismatch")
	}
	if !MulFast(Strassen(), a, b, 3).Equalish(want, 1e-8) {
		t.Error("fast mismatch")
	}
}

func TestBoundFacadeConsistency(t *testing.T) {
	alg := Strassen()
	if CrossoverN(alg, 4096) <= 1 {
		t.Error("no crossover")
	}
	if ProofLowerBound(alg, 20, 64) <= 0 {
		t.Error("proof bound vacuous")
	}
	if MemoryIndependentLowerBound(alg, 1024, 1) != 1024*1024 {
		t.Error("memory-independent bound at P=1")
	}
	if ParallelLowerBound(alg, 1024, 64, 4)*4 != SequentialLowerBound(alg, 1024, 64) {
		t.Error("parallel bound is not sequential/P")
	}
	// Above the crossover the classical bound dominates (fast moves
	// fewer words asymptotically); n = 2^20 is far above it for M = 64.
	if ClassicalLowerBound(1<<20, 64) <= SequentialLowerBound(alg, 1<<20, 64) {
		t.Error("classical bound must dominate far above the crossover")
	}
}

func TestSection8Facade(t *testing.T) {
	st, err := VerifySection8(DisconnectedFast(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxMetaHits == 0 || int64(st.MaxMetaHits) > st.Bound {
		t.Errorf("section 8 stats: %v", st)
	}
}

func TestCompareMatchingsFacade(t *testing.T) {
	cmp, err := CompareMatchings(Strassen(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.HallLoad > 2 {
		t.Errorf("hall load %d", cmp.HallLoad)
	}
}

func TestRankBalancedPartitionFacade(t *testing.T) {
	g, err := NewCDAG(Strassen(), 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RankBalancedPartition(g, 4, PartitionContiguous, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.CriticalPath <= 0 {
		t.Error("no communication")
	}
}

func TestVerifyLemma6Facade(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	if err := VerifyLemma6(Strassen(), rng, 0); err != nil {
		t.Error(err)
	}
	if err := VerifyLemma6(DisconnectedFast(), rng, 50); err != nil {
		t.Error(err)
	}
}

func TestParallelFacadeFunctions(t *testing.T) {
	st, err := VerifyRoutingTheoremParallel(Strassen(), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := VerifyRoutingTheorem(Strassen(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxVertexHits != seq.MaxVertexHits {
		t.Errorf("parallel %d vs sequential %d", st.MaxVertexHits, seq.MaxVertexHits)
	}

	g, err := NewCDAG(Strassen(), 3)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := BuildSchedule(g, ScheduleDFS, nil)
	if err != nil {
		t.Fatal(err)
	}
	sweep := SweepIO(g, sched, MIN, []int{16, 64}, 2)
	if len(sweep) != 2 || sweep[0].Err != nil || sweep[0].IO <= sweep[1].IO {
		t.Errorf("sweep results: %+v", sweep)
	}

	rng := rand.New(rand.NewSource(6))
	a, b := RandomDense(20, 20, rng), RandomDense(20, 20, rng)
	if !MulFastParallel(Strassen(), a, b, 5, 0).Equalish(Mul(a, b), 1e-8) {
		t.Error("MulFastParallel mismatch")
	}

	hy := BuildHybridSchedule(g, 1)
	if len(hy) != len(sched) {
		t.Errorf("hybrid schedule length %d", len(hy))
	}

	lv, err := AnalyzeLiveness(g, sched)
	if err != nil || lv.Peak <= 0 {
		t.Errorf("liveness: %+v %v", lv, err)
	}
	mc, err := AnalyzeStackDistances(g, sched)
	if err != nil || mc.Compulsory <= 0 {
		t.Errorf("stack distances: %v", err)
	}
}

func TestCertifySection5Facade(t *testing.T) {
	g, err := NewCDAG(Strassen(), 5)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := BuildSchedule(g, ScheduleDFS, nil)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := CertifySection5(g, sched, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cert.MinDeltaRatio < 1.0/22 {
		t.Errorf("ratio %v", cert.MinDeltaRatio)
	}
	owner := make([]int32, g.NumVertices())
	for v := range owner {
		owner[v] = int32(v % 3)
	}
	par, err := CertifyParallel(g, sched, owner, 3, 2, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if par.CompleteSegments == 0 {
		t.Error("no parallel segments")
	}
}

func TestDualsAndSerializationFacade(t *testing.T) {
	duals := Duals(Winograd())
	if len(duals) < 3 {
		t.Errorf("duals: %d", len(duals))
	}
	data, err := MarshalAlgorithm(Strassen())
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalAlgorithm(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.B() != 7 {
		t.Error("round trip shape")
	}
	rng := rand.New(rand.NewSource(9))
	orbit, err := RandomOrbitAlgorithm(rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	if orbit.B() != 7 {
		t.Error("orbit shape")
	}
	if ArithmeticOps(Strassen(), 1) != 43 {
		t.Error("ops facade")
	}
	if MinFeasibleM(Strassen()) != 5 {
		t.Error("min feasible M facade")
	}
}

func TestFacadeErrorPaths(t *testing.T) {
	bad := Strassen()
	if _, err := NewCDAG(bad, 0); err == nil {
		t.Error("r=0 accepted")
	}
	if _, err := MeasureIO(bad, 0, 64, MIN, ScheduleDFS); err == nil {
		t.Error("MeasureIO r=0 accepted")
	}
	if _, err := MeasureIO(bad, 3, 2, MIN, ScheduleDFS); err == nil {
		t.Error("MeasureIO infeasible M accepted")
	}
	if _, err := VerifyRoutingTheorem(bad, 0); err == nil {
		t.Error("VerifyRoutingTheorem k=0 accepted")
	}
	if _, err := VerifyRoutingTheoremParallel(bad, 0, 2); err == nil {
		t.Error("parallel k=0 accepted")
	}
	if _, err := VerifyGuaranteedRouting(bad, 0); err == nil {
		t.Error("VerifyGuaranteedRouting k=0 accepted")
	}
	if _, err := VerifyDecodingRouting(bad, 0); err == nil {
		t.Error("VerifyDecodingRouting k=0 accepted")
	}
	if _, err := VerifySection8(bad, 0); err == nil {
		t.Error("VerifySection8 k=0 accepted")
	}
	if _, err := CompareMatchings(bad, 0); err == nil {
		t.Error("CompareMatchings k=0 accepted")
	}
	if _, err := Laderman(); err != nil {
		t.Error("Laderman must construct")
	}
	if _, err := UnmarshalAlgorithm([]byte("garbage")); err == nil {
		t.Error("garbage JSON accepted")
	}
	g, err := NewCDAG(bad, 2)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := BuildSchedule(g, ScheduleDFS, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CertifySchedule(g, sched, CertifyOptions{K: 0, M: 1}); err == nil {
		t.Error("CertifySchedule K=0 accepted")
	}
	if _, err := CertifySection5(g, sched, 0, 1); err == nil {
		t.Error("CertifySection5 k=0 accepted")
	}
	if _, err := CertifyParallel(g, sched, nil, 2, 1, 1, 0); err == nil {
		t.Error("CertifyParallel nil owners accepted")
	}
	if _, err := AnalyzeLiveness(g, sched); err != nil {
		t.Error(err)
	}
	if _, err := RunCannon(10, 3); err == nil {
		t.Error("bad Cannon accepted")
	}
	if _, err := RunTwoPointFiveD(10, 3, 2); err == nil {
		t.Error("bad 2.5D accepted")
	}
	if _, err := RunCAPS(bad, 64, 3, 1<<30); err == nil {
		t.Error("bad CAPS P accepted")
	}
	if _, err := RankBalancedPartition(g, 0, PartitionContiguous, nil); err == nil {
		t.Error("P=0 partition accepted")
	}
}

func TestFacadeBoundEdgeCases(t *testing.T) {
	alg := Strassen()
	if SequentialLowerBound(alg, 0, 64) != 0 {
		t.Error("n=0 bound")
	}
	if DFSUpperBound(alg, 4, 1<<20) != 48 {
		t.Error("in-cache upper bound")
	}
	if ClassicalLowerBound(0, 0) != 0 {
		t.Error("degenerate classical bound")
	}
	if ProofLowerBound(alg, 2, 1<<30) != 0 {
		t.Error("out-of-regime proof bound")
	}
	if CrossoverN(Classical(2), 64) != 0 {
		t.Error("classical crossover")
	}
}
