module pathrouting

go 1.22
