package pathrouting_test

import (
	"fmt"

	"pathrouting"
)

// The catalog algorithms are verified bilinear algorithms; their
// exponents drive every bound in the library.
func ExampleStrassen() {
	alg := pathrouting.Strassen()
	fmt.Printf("%s: %d multiplications, omega0 = %.3f\n", alg.Name, alg.B(), alg.Omega0())
	// Output: strassen: 7 multiplications, omega0 = 2.807
}

// SequentialLowerBound evaluates the paper's Theorem 1 in its Θ-form.
func ExampleSequentialLowerBound() {
	lb := pathrouting.SequentialLowerBound(pathrouting.Strassen(), 4096, 4096)
	fmt.Printf("%.3g words\n", lb)
	// Output: 4.82e+08 words
}

// VerifyRoutingTheorem constructs the paper's central object — the
// 6aᵏ-routing of Theorem 2 — and verifies it exactly.
func ExampleVerifyRoutingTheorem() {
	st, err := pathrouting.VerifyRoutingTheorem(pathrouting.Strassen(), 2)
	if err != nil {
		fmt.Println("verification failed:", err)
		return
	}
	fmt.Printf("%d paths, max hits %d <= bound %d\n", st.NumPaths, st.MaxVertexHits, st.Bound)
	// Output: 512 paths, max hits 72 <= bound 96
}

// MeasureIO runs the red-blue pebble game on an explicit computation
// DAG. With a cache big enough for everything, only the compulsory
// traffic remains: 2n² reads, n² writes.
func ExampleMeasureIO() {
	res, err := pathrouting.MeasureIO(pathrouting.Strassen(), 3, 1<<20,
		pathrouting.MIN, pathrouting.ScheduleDFS)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("reads=%d writes=%d\n", res.Reads, res.Writes)
	// Output: reads=128 writes=64
}

// AnalyzeExpansion shows the paper's motivation: the prior
// edge-expansion technique fails on fast algorithms with disconnected
// decoding graphs.
func ExampleAnalyzeExpansion() {
	rep := pathrouting.AnalyzeExpansion(pathrouting.DisconnectedFast())
	fmt.Printf("decoding connected: %v, edge expansion usable: %v\n",
		rep.DecodingConnected, rep.EdgeExpansionUsable)
	// Output: decoding connected: false, edge expansion usable: false
}
