// The constructive proof, end to end: this example walks the entire
// chain of the paper on explicit graphs — base Hall matching (Lemma 5 /
// Theorem 3), chain routing of guaranteed dependencies (Lemma 3 via
// Claim 2), the three-chain composition (Lemma 4), the Routing Theorem
// bound, and finally the segment argument (Equation 2) certifying an
// I/O lower bound for a concrete schedule.
//
//	go run ./examples/routingproof
package main

import (
	"fmt"
	"log"

	"pathrouting"
)

func main() {
	for _, alg := range []*pathrouting.Algorithm{
		pathrouting.Strassen(),
		pathrouting.DisconnectedFast(), // the case prior techniques cannot handle
	} {
		fmt.Printf("——— %s (n0=%d, b=%d, ω₀=%.3f) ———\n", alg.Name, alg.N0, alg.B(), alg.Omega0())
		k := 2
		if alg.A() >= 16 {
			k = 1
		}

		// Step 1+2: Lemma 3 — Hall matching exists and lifts to a
		// chains-only routing of all guaranteed dependencies.
		chains, err := pathrouting.VerifyGuaranteedRouting(alg, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Lemma 3:   %5d chains, max vertex hits %3d ≤ 2n₀ᵏ = %d ✓\n",
			chains.NumPaths, chains.MaxVertexHits, chains.Bound)

		// Step 3: Lemma 4 + Theorem 2 — all input-output pairs routed,
		// nobody hit more than 6aᵏ times (vertices or meta-vertices).
		full, err := pathrouting.VerifyRoutingTheorem(alg, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Theorem 2: %5d paths,  max vertex hits %3d, max meta hits %3d ≤ 6aᵏ = %d ✓\n",
			full.NumPaths, full.MaxVertexHits, full.MaxMetaHits, full.Bound)

		// Step 4: the segment argument on a real schedule.
		g, err := pathrouting.NewCDAG(alg, k+2)
		if err != nil {
			log.Fatal(err)
		}
		sched, err := pathrouting.BuildSchedule(g, pathrouting.ScheduleDFS, nil)
		if err != nil {
			log.Fatal(err)
		}
		// The relaxed quota must satisfy target ≤ aᵏ/2 with headroom for
		// the worst meta-vertex weight (multiple-copying algorithms can
		// add several counted vertices at once); probe downward.
		aK := int64(1)
		for i := 0; i < k; i++ {
			aK *= int64(alg.A())
		}
		var cert *pathrouting.Certificate
		var err2 error
		for target := aK / 2; target >= 2; target /= 2 {
			cert, err2 = pathrouting.CertifySchedule(g, sched, pathrouting.CertifyOptions{
				K: k, RelaxedTarget: target,
			})
			if err2 == nil {
				break
			}
		}
		if err2 != nil {
			fmt.Printf("Equation 2: not certifiable here (%v)\n\n", err2)
			continue
		}
		fmt.Printf("Equation 2: %d segments on G_%d, min |δ′(S′)|/|S̄| = %.3f ≥ 1/12 ✓\n",
			cert.CompleteSegments, g.R, cert.MinDeltaRatio)

		// Context: why this matters — the prior technique's status.
		rep := pathrouting.AnalyzeExpansion(alg)
		if rep.EdgeExpansionUsable {
			fmt.Printf("(edge expansion also applies to %s — this paper re-derives its bound)\n\n", alg.Name)
		} else {
			fmt.Printf("(edge expansion FAILS for %s — only the path-routing argument applies)\n\n", alg.Name)
		}
	}
}
