// Parallel scaling: the bandwidth cost of classical (Cannon, 2.5D) and
// Strassen-like (CAPS) distributed matrix multiplication against the
// parallel lower bounds of Theorem 1.
//
//	go run ./examples/parallelscaling
package main

import (
	"fmt"
	"log"

	"pathrouting"
)

func main() {
	n := 4096
	alg := pathrouting.Strassen()

	fmt.Printf("n = %d, words on the critical path:\n", n)
	fmt.Printf("%-12s %-8s %-14s %-14s %-14s\n", "algorithm", "P", "bandwidth", "mem/proc", "lower bound")

	for _, p := range []int{8, 16, 32} {
		res, err := pathrouting.RunCannon(n, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %-8d %-14d %-14d %-14.0f\n",
			"cannon", res.P, res.Bandwidth, res.MemoryPerProc,
			float64(n)*float64(n)/float64(p))
	}
	for _, grid := range [][2]int{{16, 4}, {32, 4}} {
		res, err := pathrouting.RunTwoPointFiveD(n, grid[0], grid[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %-8d %-14d %-14d %-14s\n",
			"2.5d(c=4)", res.P, res.Bandwidth, res.MemoryPerProc, "-")
	}
	for _, p := range []int{7, 49, 343} {
		res, err := pathrouting.RunCAPS(alg, n, p, 1<<44)
		if err != nil {
			log.Fatal(err)
		}
		lb := pathrouting.MemoryIndependentLowerBound(alg, float64(n), p)
		fmt.Printf("%-12s %-8d %-14d %-14d %-14.0f\n",
			"caps", res.P, res.Bandwidth, res.PeakMemory, lb)
	}

	fmt.Println("\nMemory-constrained CAPS (P = 49): DFS steps trade memory for time,")
	fmt.Println("bandwidth tracks the memory-dependent bound (n/√M)^ω₀·M/P:")
	fmt.Printf("%-14s %-14s %-10s %-14s\n", "M (words)", "bandwidth", "BFS/DFS", "Thm 1 LB")
	base := 3 * int64(n) * int64(n) / 49
	for _, extra := range []int64{1 << 12, 1 << 16, 1 << 20, 1 << 30} {
		m := base + extra
		res, err := pathrouting.RunCAPS(alg, n, 49, m)
		if err != nil {
			log.Fatal(err)
		}
		lb := pathrouting.ParallelLowerBound(alg, float64(n), float64(m), 49)
		fmt.Printf("%-14d %-14d %d/%-8d %-14.0f\n", m, res.Bandwidth, res.BFSLevels, res.DFSLevels, lb)
	}
}
