// Quickstart: the five-minute tour of the pathrouting library.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pathrouting"
)

func main() {
	// 1. Pick a Strassen-like algorithm from the verified catalog.
	alg := pathrouting.Strassen()
	fmt.Printf("%s: n0=%d, %d multiplications, ω₀=%.3f\n",
		alg.Name, alg.N0, alg.B(), alg.Omega0())

	// 2. It really multiplies matrices.
	rng := rand.New(rand.NewSource(1))
	a := pathrouting.RandomDense(64, 64, rng)
	b := pathrouting.RandomDense(64, 64, rng)
	fast := pathrouting.MulFast(alg, a, b, 8)
	classical := pathrouting.Mul(a, b)
	fmt.Printf("fast multiply max error vs classical: %.2e\n", fast.MaxAbsDiff(classical))

	// 3. The paper's lower bound, and a measured execution against it.
	n, m := 32.0, 48
	lb := pathrouting.SequentialLowerBound(alg, n, float64(m))
	res, err := pathrouting.MeasureIO(alg, 5, m, pathrouting.MIN, pathrouting.ScheduleDFS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n=%.0f M=%d: lower bound %.0f words, measured DFS+MIN I/O %d (ratio %.1f)\n",
		n, m, lb, res.IO(), float64(res.IO())/lb)

	// 4. The paper's central object: a verified 6aᵏ-routing.
	st, err := pathrouting.VerifyRoutingTheorem(alg, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Routing Theorem on G_2: %d paths, max vertex hits %d ≤ 6a² = %d ✓\n",
		st.NumPaths, st.MaxVertexHits, st.Bound)

	// 5. And the reason the technique exists: edge expansion fails on
	// fast algorithms with disconnected decoding graphs, path routing
	// does not.
	hard := pathrouting.DisconnectedFast()
	rep := pathrouting.AnalyzeExpansion(hard)
	fmt.Printf("%s (ω₀=%.3f): edge-expansion technique usable? %v\n",
		hard.Name, hard.Omega0(), rep.EdgeExpansionUsable)
	st, err = pathrouting.VerifyRoutingTheorem(hard, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("...but the path routing verifies: max hits %d ≤ %d ✓\n", st.MaxVertexHits, st.Bound)
}
