// Lower bounds in action: the I/O of real schedules sandwiched between
// the paper's lower bound and the blocked-recursion upper bound, and
// the price of ignoring locality.
//
//	go run ./examples/lowerbounds
package main

import (
	"fmt"
	"log"
	"math"

	"pathrouting"
)

func main() {
	alg := pathrouting.Strassen()
	m := 48

	fmt.Println("Strassen-like I/O versus the Theorem 1 bound (M = 48 words):")
	fmt.Printf("%-4s %-6s | %-12s %-12s %-12s | %-10s %-10s\n",
		"r", "n", "LB (Thm 1)", "DFS+MIN", "UB (DFS)", "rank+MIN", "DFS/LB")
	for r := 2; r <= 5; r++ {
		n := math.Pow(2, float64(r))
		lb := pathrouting.SequentialLowerBound(alg, n, float64(m))
		ub := pathrouting.DFSUpperBound(alg, n, float64(m))
		dfs, err := pathrouting.MeasureIO(alg, r, m, pathrouting.MIN, pathrouting.ScheduleDFS)
		if err != nil {
			log.Fatal(err)
		}
		rank, err := pathrouting.MeasureIO(alg, r, m, pathrouting.MIN, pathrouting.ScheduleRankByRank)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4d %-6.0f | %-12.0f %-12d %-12.0f | %-10d %-10.2f\n",
			r, n, lb, dfs.IO(), ub, rank.IO(), float64(dfs.IO())/lb)
	}

	fmt.Println("\nTakeaways:")
	fmt.Println(" * DFS+MIN I/O grows like b^r = n^ω₀ — the bound's shape — while")
	fmt.Println("   the rank-by-rank schedule degenerates toward |V(G_r)| ~ n^ω₀ with a")
	fmt.Println("   much larger constant once layers stop fitting in cache.")
	fmt.Println(" * No schedule can beat the lower bound: that is Theorem 1,")
	fmt.Println("   machine-checked in this repository by internal/core.Certify.")

	fmt.Println("\nClassical vs fast, by bound (who moves fewer words):")
	fmt.Printf("%-8s %-12s\n", "M", "crossover n")
	for _, mm := range []float64{256, 4096, 65536} {
		fmt.Printf("%-8.0f %-12.0f\n", mm, pathrouting.CrossoverN(alg, mm))
	}
}
