// Cache behaviour under the microscope: liveness profiles, replacement
// policies, and the price of each lost cache word, on the pebble-game
// machine the paper's bounds govern.
//
//	go run ./examples/cachesim
package main

import (
	"fmt"
	"log"

	"pathrouting"
)

func main() {
	alg := pathrouting.Strassen()
	r := 4
	g, err := pathrouting.NewCDAG(alg, r)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Strassen G_%d: %d vertices, n = %d\n\n", r, g.NumVertices(), 1<<r)

	// 1. Liveness: what cache size makes each schedule I/O-free?
	fmt.Println("live-set profiles (peak = smallest M with compulsory-only I/O):")
	fmt.Printf("%-8s %-8s %-10s\n", "schedule", "peak", "average")
	for _, kind := range []pathrouting.ScheduleKind{pathrouting.ScheduleDFS, pathrouting.ScheduleRankByRank} {
		name := "dfs"
		if kind == pathrouting.ScheduleRankByRank {
			name = "rank"
		}
		sched, err := pathrouting.BuildSchedule(g, kind, nil)
		if err != nil {
			log.Fatal(err)
		}
		lv, err := pathrouting.AnalyzeLiveness(g, sched)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %-8d %-10.1f\n", name, lv.Peak, lv.Average)
	}

	// 2. Policies: MIN is the offline optimum; LRU pays for not seeing
	// the future; FIFO pays more.
	fmt.Println("\nreplacement policies at M = 48 (DFS schedule):")
	fmt.Printf("%-8s %-10s %-10s %-10s\n", "policy", "reads", "writes", "IO")
	for _, pol := range []pathrouting.Policy{pathrouting.MIN, pathrouting.LRU, pathrouting.FIFO} {
		res, err := pathrouting.MeasureIO(alg, r, 48, pol, pathrouting.ScheduleDFS)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8v %-10d %-10d %-10d\n", pol, res.Reads, res.Writes, res.IO())
	}

	// 3. The M-sweep: every halving of cache multiplies I/O, down to the
	// feasibility floor.
	fmt.Println("\ncache-size sweep (DFS + MIN), against the Theorem 1 bound:")
	fmt.Printf("%-8s %-12s %-12s %-8s\n", "M", "IO", "Thm1 LB", "IO/LB")
	for m := 1024; m >= 6; m /= 2 {
		res, err := pathrouting.MeasureIO(alg, r, m, pathrouting.MIN, pathrouting.ScheduleDFS)
		if err != nil {
			fmt.Printf("%-8d %v\n", m, err)
			continue
		}
		lb := pathrouting.SequentialLowerBound(alg, float64(int(1)<<r), float64(m))
		fmt.Printf("%-8d %-12d %-12.0f %-8.2f\n", m, res.IO(), lb, float64(res.IO())/lb)
	}
	fmt.Println("\n(M below the max fan-in + 1 is infeasible: a computation cannot")
	fmt.Println(" hold its operands; the paper's machine model needs M ≥ 5 here.)")
}
