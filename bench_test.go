package pathrouting

// Benchmark harness: one benchmark per experiment of EXPERIMENTS.md
// (E1–E12, plus ablations A1–A9). The paper has no empirical tables —
// its checkable content is the set of theorems, lemmas and figures — so
// each benchmark both
// times the operation and reports the reproduction metric (measured /
// bound ratios etc.) via b.ReportMetric. cmd/paperrepro prints the full
// tables the metrics summarize.

import (
	"math/rand"
	"runtime"
	"testing"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/cdag"
	"pathrouting/internal/core"
	"pathrouting/internal/hall"
	"pathrouting/internal/obs"
	"pathrouting/internal/parallel"
	"pathrouting/internal/pebble"
	"pathrouting/internal/routing"
	"pathrouting/internal/schedule"
	"pathrouting/internal/viz"
)

// BenchmarkE1SequentialIO measures the I/O of the blocked recursive
// schedule under MIN replacement against the Theorem 1 lower bound.
// The reported metric io/bound must stay in a constant band as r grows
// — the headline optimality statement.
func BenchmarkE1SequentialIO(b *testing.B) {
	for _, tc := range []struct {
		alg *Algorithm
		r   int
		m   int
	}{
		{Strassen(), 4, 48},
		{Strassen(), 5, 48},
		{Winograd(), 4, 48},
		{DisconnectedFast(), 2, 96},
	} {
		g, err := cdag.New(tc.alg, tc.r)
		if err != nil {
			b.Fatal(err)
		}
		sched := schedule.RecursiveDFS(g)
		b.Run(tc.alg.Name+"/r="+itoa(tc.r), func(b *testing.B) {
			var io int64
			for i := 0; i < b.N; i++ {
				res, err := (&pebble.Simulator{G: g, M: tc.m, P: pebble.MIN}).Run(sched)
				if err != nil {
					b.Fatal(err)
				}
				io = res.IO()
			}
			n := 1.0
			for i := 0; i < tc.r; i++ {
				n *= float64(tc.alg.N0)
			}
			lb := SequentialLowerBound(tc.alg, n, float64(tc.m))
			b.ReportMetric(float64(io)/lb, "io/bound")
		})
	}
}

// BenchmarkE2DecodingRouting verifies Claim 1's (11·7ᵏ)-routing in the
// decoding graph of Strassen's algorithm and reports the slack
// maxHits·bound⁻¹ (must be ≤ 1).
func BenchmarkE2DecodingRouting(b *testing.B) {
	for k := 1; k <= 3; k++ {
		g, err := cdag.New(bilinear.Strassen(), k)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("strassen/k="+itoa(k), func(b *testing.B) {
			var st routing.Stats
			for i := 0; i < b.N; i++ {
				dr, err := routing.NewDecodingRouter(g)
				if err != nil {
					b.Fatal(err)
				}
				st, err = dr.VerifyClaim1()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.MaxVertexHits)/float64(st.Bound), "hits/bound")
		})
	}
}

// BenchmarkE3RoutingTheorem verifies the 6aᵏ-routing of Theorem 2 for
// every catalog algorithm and reports the hit-count slack.
func BenchmarkE3RoutingTheorem(b *testing.B) {
	for _, tc := range []struct {
		alg *Algorithm
		k   int
	}{
		{Strassen(), 2},
		{Strassen(), 3},
		{Winograd(), 2},
		{Classical(2), 2},
		{DisconnectedFast(), 1},
	} {
		g, err := cdag.New(tc.alg, tc.k)
		if err != nil {
			b.Fatal(err)
		}
		r, err := routing.NewRouter(g)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(tc.alg.Name+"/k="+itoa(tc.k), func(b *testing.B) {
			var st routing.Stats
			for i := 0; i < b.N; i++ {
				var err error
				st, err = r.VerifyFullRouting()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.MaxVertexHits)/float64(st.Bound), "hits/bound")
			b.ReportMetric(float64(st.MaxMetaHits)/float64(st.Bound), "metahits/bound")
		})
	}
}

// BenchmarkE4GuaranteedDeps verifies the Lemma 3 chain routing
// (2n₀ᵏ bound).
func BenchmarkE4GuaranteedDeps(b *testing.B) {
	for _, k := range []int{2, 3, 4} {
		g, err := cdag.New(bilinear.Strassen(), k)
		if err != nil {
			b.Fatal(err)
		}
		r, err := routing.NewRouter(g)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("strassen/k="+itoa(k), func(b *testing.B) {
			var st routing.Stats
			for i := 0; i < b.N; i++ {
				var err error
				st, err = r.VerifyGuaranteedRouting()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.MaxVertexHits)/float64(st.Bound), "hits/bound")
		})
	}
}

// BenchmarkE5ChainComposition verifies Lemma 4's exact 3n₀ᵏ chain-usage
// count.
func BenchmarkE5ChainComposition(b *testing.B) {
	for _, k := range []int{2, 3} {
		g, err := cdag.New(bilinear.Strassen(), k)
		if err != nil {
			b.Fatal(err)
		}
		r, err := routing.NewRouter(g)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("strassen/k="+itoa(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := r.VerifyChainUsage(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6HallCondition checks Lemma 5's Hall condition exhaustively
// for n₀ = 2 algorithms and by max-flow for the rest of the catalog.
func BenchmarkE6HallCondition(b *testing.B) {
	algs := Catalog()
	b.Run("flow/catalog", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, alg := range algs {
				if _, err := routing.NewBaseMatching(alg); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("exhaustive/strassen", func(b *testing.B) {
		alg := bilinear.Strassen()
		for i := 0; i < b.N; i++ {
			for _, side := range []Side{SideA, SideB} {
				deps := routing.GuaranteedBaseDeps(alg, side)
				viol := hall.CheckHall(len(deps), alg.B(),
					func(x int) []int { return routing.DepProducts(alg, side, deps[x][0], deps[x][1]) },
					func(int) int { return alg.N0 })
				if viol != nil {
					b.Fatalf("Hall violated: %v", viol)
				}
			}
		}
	})
}

// BenchmarkE7SegmentBoundary runs the executable segment argument
// (Equation (2)) on Strassen G_4 and reports the worst δ′/S̄ ratio
// (must be ≥ 1/12 ≈ 0.083).
func BenchmarkE7SegmentBoundary(b *testing.B) {
	g, err := cdag.New(bilinear.Strassen(), 4)
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range []ScheduleKind{ScheduleDFS, ScheduleRankByRank} {
		name := "dfs"
		if kind == ScheduleRankByRank {
			name = "rank"
		}
		sched, err := BuildSchedule(g, kind, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				cert, err := core.Certify(g, sched, core.Options{K: 2, RelaxedTarget: 8})
				if err != nil {
					b.Fatal(err)
				}
				ratio = cert.MinDeltaRatio
			}
			b.ReportMetric(ratio, "min-delta-ratio")
		})
	}
}

// BenchmarkE8InputDisjoint measures the Lemma 1 input-disjoint
// collection density (must be ≥ 1/b² = 1/49 for Strassen).
func BenchmarkE8InputDisjoint(b *testing.B) {
	for _, tc := range []struct{ r, k int }{{4, 2}, {5, 3}} {
		g, err := cdag.New(bilinear.Strassen(), tc.r)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("strassen/r="+itoa(tc.r), func(b *testing.B) {
			var picked int
			for i := 0; i < b.N; i++ {
				picked = len(g.InputDisjointCollection(tc.k))
			}
			nSub := 1
			for i := 0; i < tc.r-tc.k; i++ {
				nSub *= 7
			}
			b.ReportMetric(float64(picked)/float64(nSub), "density")
		})
	}
}

// BenchmarkE9DecodingNoCopy exercises the Lemma 2 / Lemma 6 structural
// checks across the catalog.
func BenchmarkE9DecodingNoCopy(b *testing.B) {
	algs := Catalog()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, alg := range algs {
			st := bilinear.Analyze(alg)
			if st.DecodingHasCopy {
				b.Fatalf("%s: decoding copy", alg.Name)
			}
		}
	}
}

// BenchmarkE10ParallelBW compares Cannon, 2.5D, and CAPS bandwidth and
// reports CAPS's ratio to the memory-independent lower bound.
func BenchmarkE10ParallelBW(b *testing.B) {
	b.Run("cannon/P=1024", func(b *testing.B) {
		var bw int64
		for i := 0; i < b.N; i++ {
			res, err := RunCannon(1024, 32)
			if err != nil {
				b.Fatal(err)
			}
			bw = res.Bandwidth
		}
		b.ReportMetric(float64(bw), "words")
	})
	b.Run("25d/P=1024c4", func(b *testing.B) {
		var bw int64
		for i := 0; i < b.N; i++ {
			res, err := RunTwoPointFiveD(1024, 16, 4)
			if err != nil {
				b.Fatal(err)
			}
			bw = res.Bandwidth
		}
		b.ReportMetric(float64(bw), "words")
	})
	b.Run("caps/P=343", func(b *testing.B) {
		alg := Strassen()
		var bw int64
		for i := 0; i < b.N; i++ {
			res, err := RunCAPS(alg, 1024, 343, 1<<40)
			if err != nil {
				b.Fatal(err)
			}
			bw = res.Bandwidth
		}
		lb := MemoryIndependentLowerBound(alg, 1024, 343)
		b.ReportMetric(float64(bw)/lb, "bw/bound")
	})
}

// BenchmarkE11Crossover times the real arithmetic of blocked classical
// versus recursive fast multiplication around the bound-predicted
// crossover regime.
func BenchmarkE11Crossover(b *testing.B) {
	rng := rand.New(rand.NewSource(33))
	for _, n := range []int{64, 128, 256} {
		a, bb := RandomDense(n, n, rng), RandomDense(n, n, rng)
		b.Run("classical/n="+itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MulBlocked(a, bb, 32)
			}
		})
		b.Run("strassen/n="+itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MulFast(Strassen(), a, bb, 32)
			}
		})
	}
}

// BenchmarkE12Render regenerates the paper's illustrative figures.
func BenchmarkE12Render(b *testing.B) {
	g, err := cdag.New(bilinear.Strassen(), 2)
	if err != nil {
		b.Fatal(err)
	}
	r, err := routing.NewRouter(g)
	if err != nil {
		b.Fatal(err)
	}
	chain, _ := r.AppendChain(SideA, 0, 1, nil)
	for i := 0; i < b.N; i++ {
		_ = viz.BaseGraphDOT(bilinear.Strassen())
		_ = viz.PathDOT(g, chain, "figure 4")
		_ = viz.Lemma4ASCII(4, 0, 1, 2, 3)
		_ = viz.HGraphDOT(bilinear.Strassen(), SideA, 1, 0)
		_ = viz.G1CircleDOT(bilinear.Strassen(), 1, []int{0, 1, 2})
	}
}

func itoa(x int) string {
	if x == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for x > 0 {
		i--
		buf[i] = byte('0' + x%10)
		x /= 10
	}
	return string(buf[i:])
}

// BenchmarkA1MatchingAblation measures the greedy-vs-Hall matching
// ablation: the greedy assignment overloads products and (at depth)
// breaks the Routing Theorem bound the Hall matching guarantees.
func BenchmarkA1MatchingAblation(b *testing.B) {
	var cmp routing.MatchingComparison
	for i := 0; i < b.N; i++ {
		var err error
		cmp, err = routing.CompareMatchings(bilinear.Strassen(), 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cmp.HallMaxHits)/float64(cmp.Bound), "hall-hits/bound")
	b.ReportMetric(float64(cmp.GreedyHits)/float64(cmp.Bound), "greedy-hits/bound")
}

// BenchmarkA2Section8 verifies the value-class (Section 8 conjecture)
// routing bound on the assumption-violating catalog entry.
func BenchmarkA2Section8(b *testing.B) {
	g, err := cdag.New(bilinear.DisconnectedFast(), 1)
	if err != nil {
		b.Fatal(err)
	}
	r, err := routing.NewRouter(g)
	if err != nil {
		b.Fatal(err)
	}
	var st routing.Stats
	for i := 0; i < b.N; i++ {
		st, err = r.VerifyValueClassRouting()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(st.MaxMetaHits)/float64(st.Bound), "classhits/bound")
}

// BenchmarkA3Partition measures the rank-balanced partition
// communication against the cache-independent bound.
func BenchmarkA3Partition(b *testing.B) {
	g, err := cdag.New(bilinear.Strassen(), 5)
	if err != nil {
		b.Fatal(err)
	}
	alg := bilinear.Strassen()
	for _, p := range []int{4, 16, 49} {
		b.Run("P="+itoa(p), func(b *testing.B) {
			var res parallel.PartitionResult
			for i := 0; i < b.N; i++ {
				res, err = parallel.RankBalancedPartition(g, p, parallel.Contiguous, nil)
				if err != nil {
					b.Fatal(err)
				}
			}
			lb := MemoryIndependentLowerBound(alg, 32, p)
			b.ReportMetric(float64(res.CriticalPath)/lb, "words/bound")
		})
	}
}

// BenchmarkA4Lemma6 runs the exhaustive Winograd-bound check on the
// n₀ = 2 base graphs.
func BenchmarkA4Lemma6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, alg := range []*bilinear.Algorithm{bilinear.Strassen(), bilinear.Winograd(), bilinear.Classical(2)} {
			if err := bilinear.VerifyLemma6Exhaustive(alg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkA5PolicyAblation compares replacement policies on the same
// schedule (MIN is the offline optimum; LRU's gap is the price of not
// knowing the future).
func BenchmarkA5PolicyAblation(b *testing.B) {
	g, err := cdag.New(bilinear.Strassen(), 4)
	if err != nil {
		b.Fatal(err)
	}
	sched := schedule.RecursiveDFS(g)
	var ios [3]float64
	for i, pol := range []pebble.Policy{pebble.MIN, pebble.LRU, pebble.FIFO} {
		b.Run(pol.String(), func(b *testing.B) {
			var io int64
			for j := 0; j < b.N; j++ {
				res, err := (&pebble.Simulator{G: g, M: 48, P: pol}).Run(sched)
				if err != nil {
					b.Fatal(err)
				}
				io = res.IO()
			}
			ios[i] = float64(io)
			if i > 0 {
				b.ReportMetric(ios[i]/ios[0], "io/min-io")
			}
		})
	}
}

// BenchmarkA6FastCutoff sweeps the recursion cutoff of the real
// arithmetic (the classic Strassen tuning knob).
func BenchmarkA6FastCutoff(b *testing.B) {
	rng := rand.New(rand.NewSource(77))
	a, bb := RandomDense(128, 128, rng), RandomDense(128, 128, rng)
	for _, cutoff := range []int{8, 16, 32, 64} {
		b.Run("cutoff="+itoa(cutoff), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MulFast(Strassen(), a, bb, cutoff)
			}
		})
	}
}

// BenchmarkA7ParallelVerification compares sequential and concurrent
// Routing Theorem verification (the check is embarrassingly parallel
// over inputs). The instrumented variant runs the same parallel
// verification with the full metric bundle attached — its gap to
// "parallel" is the observability overhead (metric flushes are batched
// at progress-snapshot cadence, so the gap must stay within noise).
func BenchmarkA7ParallelVerification(b *testing.B) {
	g, err := cdag.New(bilinear.Strassen(), 4)
	if err != nil {
		b.Fatal(err)
	}
	r, err := routing.NewRouter(g)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := r.VerifyFullRouting(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := r.VerifyFullRoutingParallel(0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel-instrumented", func(b *testing.B) {
		r.Obs = routing.NewInstruments(obs.NewRegistry())
		defer func() { r.Obs = nil }()
		for i := 0; i < b.N; i++ {
			if _, err := r.VerifyFullRoutingParallel(0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkVerifyFullRoutingAdjacency isolates what the CSR adjacency
// index buys the verification hot path: full (stride 1) edge-by-edge
// adjacency checking of every pair path, answered either by the index
// or by the seed's per-edge linear scan over freshly enumerated parent
// slices.
func BenchmarkVerifyFullRoutingAdjacency(b *testing.B) {
	g, err := cdag.New(bilinear.Strassen(), 3)
	if err != nil {
		b.Fatal(err)
	}
	r, err := routing.NewRouter(g)
	if err != nil {
		b.Fatal(err)
	}
	r.AdjacencySampleStride = 1
	g.EnsureAdjacencyIndex() // pay the one-time build outside the timer
	for _, tc := range []struct {
		name   string
		linear bool
	}{
		{"csr", false},
		{"linear-scan", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			r.LinearAdjacency = tc.linear
			var st routing.Stats
			for i := 0; i < b.N; i++ {
				var err error
				st, err = r.VerifyFullRouting()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(st.PathsPerSecond(), "paths/s")
		})
	}
	r.LinearAdjacency = false
	r.AdjacencySampleStride = 0
}

// BenchmarkA10OrbitReduction measures the orbit-reduced full-routing
// scan against full enumeration at Strassen k=4 (the ISSUE 6 headline
// case): same bit-identical Stats, but the per-path work drops from
// three chain constructions plus a quadratic meta-root dedup scan to
// one chain construction plus a stamped linear walk. Run via
// `make bench`; EXPERIMENTS.md A10 holds the measured table.
func BenchmarkA10OrbitReduction(b *testing.B) {
	g, err := cdag.New(bilinear.Strassen(), 4)
	if err != nil {
		b.Fatal(err)
	}
	r, err := routing.NewRouter(g)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name   string
		orbits bool
	}{
		{"full", false},
		{"orbit", true},
	} {
		for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
			b.Run("mode="+mode.name+"/workers="+itoa(w), func(b *testing.B) {
				r.OrbitReduction = mode.orbits
				defer func() { r.OrbitReduction = false }()
				b.ReportAllocs()
				var st routing.Stats
				for i := 0; i < b.N; i++ {
					var err error
					st, err = r.VerifyFullRoutingParallel(w)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(st.PathsPerSecond(), "paths/s")
			})
		}
	}
}

// BenchmarkA11StageTwoKernel compares the two orbit kernels at
// Strassen k=4 (ISSUE 10): stage 1 rebuilds both shared chains per
// orbit through the division-heavy AppendChain and synthesizes chain 3
// per member; stage 2 maintains the shared chains incrementally across
// the fixed-digit odometer (digit-local updates, no divisions) and
// accumulates chain-3 vertices over whole member blocks with the
// hitVec addBlock/bumpStride helpers. Stats are bit-identical
// (TestOrbitStatsBitIdentical is the gate); this measures the
// throughput gap. Run via `make bench`; EXPERIMENTS.md A11 holds the
// measured table.
func BenchmarkA11StageTwoKernel(b *testing.B) {
	g, err := cdag.New(bilinear.Strassen(), 4)
	if err != nil {
		b.Fatal(err)
	}
	r, err := routing.NewRouter(g)
	if err != nil {
		b.Fatal(err)
	}
	r.OrbitReduction = true
	defer func() { r.OrbitReduction = false }()
	for _, kernel := range []struct {
		name   string
		stage1 bool
	}{
		{"stage1", true},
		{"stage2", false},
	} {
		for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
			b.Run("kernel="+kernel.name+"/workers="+itoa(w), func(b *testing.B) {
				r.OrbitStage1 = kernel.stage1
				defer func() { r.OrbitStage1 = false }()
				b.ReportAllocs()
				var st routing.Stats
				for i := 0; i < b.N; i++ {
					var err error
					st, err = r.VerifyFullRoutingParallel(w)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(st.PathsPerSecond(), "paths/s")
			})
		}
	}
}

// BenchmarkA9EnumerationKernel is the enumeration-kernel ablation: the
// seed kernel (per-path slice/closure allocations, MetaRoot copy-edge
// walks, map-based dedup — selected by Router.SeedEnumeration) against
// the allocation-free scratch kernel, at 1, 2, and GOMAXPROCS workers.
// With -benchmem the B/op and allocs/op columns show the allocation
// storm the scratch kernel removes; on a multi-core box the worker
// sweep shows the parallel scaling the seed kernel's allocator
// contention destroyed. Run via `make bench` (EXPERIMENTS.md A9 holds
// the measured table).
func BenchmarkA9EnumerationKernel(b *testing.B) {
	g, err := cdag.New(bilinear.Strassen(), 4)
	if err != nil {
		b.Fatal(err)
	}
	r, err := routing.NewRouter(g)
	if err != nil {
		b.Fatal(err)
	}
	for _, kernel := range []struct {
		name string
		seed bool
	}{
		{"seed", true},
		{"scratch", false},
	} {
		for _, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
			b.Run("kernel="+kernel.name+"/workers="+itoa(w), func(b *testing.B) {
				r.SeedEnumeration = kernel.seed
				defer func() { r.SeedEnumeration = false }()
				b.ReportAllocs()
				var st routing.Stats
				for i := 0; i < b.N; i++ {
					var err error
					st, err = r.VerifyFullRoutingParallel(w)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(st.PathsPerSecond(), "paths/s")
			})
		}
	}
}

// BenchmarkA8ParallelMultiply compares the sequential and concurrent
// fast multiplies on real arithmetic.
func BenchmarkA8ParallelMultiply(b *testing.B) {
	rng := rand.New(rand.NewSource(88))
	a, bb := RandomDense(256, 256, rng), RandomDense(256, 256, rng)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MulFast(Strassen(), a, bb, 32)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MulFastParallel(Strassen(), a, bb, 32, 0)
		}
	})
}
