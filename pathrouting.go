// Package pathrouting is a full executable reproduction of
// Scott, Holtz, Schwartz — "Matrix Multiplication I/O-Complexity by
// Path Routing" (SPAA 2015).
//
// The paper proves optimal I/O-complexity lower bounds
// Ω((n/√M)^ω₀·M) for all Strassen-like fast matrix multiplication
// algorithms via a new path-routing technique. This library makes every
// object of that proof executable:
//
//   - a catalog of verified bilinear algorithms (Strassen, Winograd,
//     Laderman, classical, and tensor constructions with disconnected
//     decoding graphs and multiple copying) — Catalog, Strassen, …;
//   - explicit computation DAGs G_r with ranked tensor structure,
//     meta-vertices, and Fact 1 subcomputations — NewCDAG;
//   - the routings of Lemma 3, Lemma 4, Claim 1 and the Routing Theorem,
//     constructed and verified against their hit-count bounds —
//     NewRouter, VerifyRoutingTheorem;
//   - the red-blue pebble-game machine with MIN/LRU/FIFO replacement —
//     MeasureIO;
//   - the executable Theorem 1 argument certifying I/O lower bounds on
//     concrete schedules — CertifySchedule;
//   - closed-form bounds and parallel (Cannon / 2.5D / CAPS) bandwidth
//     simulations — SequentialLowerBound, RunCAPS, ….
//
// The subpackages under internal/ carry the implementation; this
// package re-exports the surface a downstream user needs.
package pathrouting

import (
	"fmt"
	"math/rand"

	"pathrouting/internal/bilinear"
	"pathrouting/internal/bounds"
	"pathrouting/internal/cdag"
	"pathrouting/internal/core"
	"pathrouting/internal/expansion"
	"pathrouting/internal/matrix"
	"pathrouting/internal/parallel"
	"pathrouting/internal/pebble"
	"pathrouting/internal/routing"
	"pathrouting/internal/schedule"
)

// Core re-exported types. The aliases expose the internal
// implementations as public API.
type (
	// Algorithm is a base bilinear algorithm ⟨U,V,W⟩ for n₀×n₀
	// multiplication.
	Algorithm = bilinear.Algorithm
	// Side selects operand A or B.
	Side = bilinear.Side
	// Graph is the computation DAG G_r.
	Graph = cdag.Graph
	// V is a vertex of a Graph.
	V = cdag.V
	// Router constructs and verifies the paper's routings on a G_k.
	Router = routing.Router
	// RoutingStats reports verified hit counts of a routing.
	RoutingStats = routing.Stats
	// RoutingProgress is a periodic snapshot delivered to
	// Router.Progress by the full-routing verifiers.
	RoutingProgress = routing.Progress
	// Simulator is the red-blue pebble-game machine.
	Simulator = pebble.Simulator
	// IOResult reports measured reads/writes of a simulation.
	IOResult = pebble.Result
	// Policy is a cache replacement policy.
	Policy = pebble.Policy
	// Certificate is the outcome of the executable Theorem 1 argument.
	Certificate = core.Certificate
	// CertifyOptions configures CertifySchedule.
	CertifyOptions = core.Options
	// Dense is a dense float64 matrix.
	Dense = matrix.Dense
	// ExpansionReport describes whether the prior edge-expansion
	// technique applies to a base graph.
	ExpansionReport = expansion.Report
)

// Replacement policies for MeasureIO.
const (
	// MIN is Belady's offline-optimal policy.
	MIN = pebble.MIN
	// LRU evicts the least recently used value.
	LRU = pebble.LRU
	// FIFO evicts the oldest cache resident.
	FIFO = pebble.FIFO
)

// Operand sides.
const (
	SideA = bilinear.SideA
	SideB = bilinear.SideB
)

// Catalog returns every verified algorithm in the catalog.
func Catalog() []*Algorithm { return bilinear.All() }

// Strassen returns Strassen's 7-multiplication algorithm.
func Strassen() *Algorithm { return bilinear.Strassen() }

// Winograd returns Winograd's variant of Strassen's algorithm.
func Winograd() *Algorithm { return bilinear.Winograd() }

// Classical returns the classical n₀³-multiplication algorithm.
func Classical(n0 int) *Algorithm { return bilinear.Classical(n0) }

// Laderman returns the 23-multiplication 3×3 algorithm.
func Laderman() (*Algorithm, error) { return bilinear.Laderman() }

// DisconnectedFast returns the fast 4×4 algorithm with a disconnected
// decoding base graph (Strassen⊗classical), the case motivating the
// paper.
func DisconnectedFast() *Algorithm { return bilinear.DisconnectedFast() }

// NewCDAG builds the computation DAG G_r of the algorithm.
func NewCDAG(alg *Algorithm, r int) (*Graph, error) { return cdag.New(alg, r) }

// NewRouter builds a router (base Hall matching included) for g.
func NewRouter(g *Graph) (*Router, error) { return routing.NewRouter(g) }

// ScheduleKind selects a schedule generator.
type ScheduleKind int

// Available schedule generators.
const (
	// ScheduleDFS is the I/O-optimal recursive depth-first order.
	ScheduleDFS ScheduleKind = iota
	// ScheduleRankByRank is the layer-major breadth-first order.
	ScheduleRankByRank
	// ScheduleRandom is a random topological order.
	ScheduleRandom
)

// BuildSchedule generates a schedule of the given kind for g. The rng
// is only used by ScheduleRandom (pass nil otherwise).
func BuildSchedule(g *Graph, kind ScheduleKind, rng *rand.Rand) ([]V, error) {
	switch kind {
	case ScheduleDFS:
		return schedule.RecursiveDFS(g), nil
	case ScheduleRankByRank:
		return schedule.RankByRank(g), nil
	case ScheduleRandom:
		if rng == nil {
			return nil, fmt.Errorf("pathrouting: ScheduleRandom needs a rand source")
		}
		return schedule.RandomTopological(g, rng)
	default:
		return nil, fmt.Errorf("pathrouting: unknown schedule kind %d", kind)
	}
}

// MeasureIO simulates the schedule kind on G_r(alg) with cache size M
// under the policy and returns the measured I/O.
func MeasureIO(alg *Algorithm, r int, m int, policy Policy, kind ScheduleKind) (IOResult, error) {
	g, err := cdag.New(alg, r)
	if err != nil {
		return IOResult{}, err
	}
	sched, err := BuildSchedule(g, kind, rand.New(rand.NewSource(1)))
	if err != nil {
		return IOResult{}, err
	}
	return (&pebble.Simulator{G: g, M: m, P: policy}).Run(sched)
}

// SequentialLowerBound returns the Θ-form Theorem 1 bound
// (n/√M)^ω₀·M for the algorithm.
func SequentialLowerBound(alg *Algorithm, n, m float64) float64 {
	return bounds.Theorem1Sequential(alg.Omega0(), n, m)
}

// ParallelLowerBound returns the Θ-form parallel bandwidth bound of
// Theorem 1.
func ParallelLowerBound(alg *Algorithm, n, m float64, p int) float64 {
	return bounds.Theorem1Parallel(alg.Omega0(), n, m, p)
}

// MemoryIndependentLowerBound returns the cache-independent bound
// n²/P^(2/ω₀).
func MemoryIndependentLowerBound(alg *Algorithm, n float64, p int) float64 {
	return bounds.MemoryIndependent(alg.Omega0(), n, p)
}

// ProofLowerBound returns the exact lower bound with the paper's
// Section 6 constants, or 0 out of regime.
func ProofLowerBound(alg *Algorithm, r int, m int64) int64 {
	return bounds.ProofSequential(alg, r, m)
}

// DFSUpperBound returns the I/O upper bound of the blocked recursive
// schedule, the matching upper bound from Ballard et al. [3].
func DFSUpperBound(alg *Algorithm, n, m float64) float64 {
	return bounds.DFSUpperBound(alg, n, m)
}

// ClassicalLowerBound returns the Hong–Kung classical bound for
// comparison.
func ClassicalLowerBound(n, m float64) float64 { return bounds.HongKungClassical(n, m) }

// CrossoverN returns the dimension above which the fast algorithm's
// bound beats the classical bound at cache size M.
func CrossoverN(alg *Algorithm, m float64) float64 {
	return bounds.CrossoverN(alg.Omega0(), m)
}

// VerifyRoutingTheorem constructs the Routing Theorem's 6aᵏ-routing on
// G_k(alg) and verifies its hit-count bounds exactly.
func VerifyRoutingTheorem(alg *Algorithm, k int) (RoutingStats, error) {
	g, err := cdag.New(alg, k)
	if err != nil {
		return RoutingStats{}, err
	}
	r, err := routing.NewRouter(g)
	if err != nil {
		return RoutingStats{}, err
	}
	return r.VerifyFullRouting()
}

// VerifyGuaranteedRouting verifies the Lemma 3 chain routing on G_k.
func VerifyGuaranteedRouting(alg *Algorithm, k int) (RoutingStats, error) {
	g, err := cdag.New(alg, k)
	if err != nil {
		return RoutingStats{}, err
	}
	r, err := routing.NewRouter(g)
	if err != nil {
		return RoutingStats{}, err
	}
	return r.VerifyGuaranteedRouting()
}

// VerifyDecodingRouting verifies the Section 5 (Claim 1) decoding-only
// routing on D_k; it fails for disconnected base decoding graphs.
func VerifyDecodingRouting(alg *Algorithm, k int) (RoutingStats, error) {
	g, err := cdag.New(alg, k)
	if err != nil {
		return RoutingStats{}, err
	}
	dr, err := routing.NewDecodingRouter(g)
	if err != nil {
		return RoutingStats{}, err
	}
	return dr.VerifyClaim1()
}

// CertifySchedule runs the executable Theorem 1 argument on a schedule.
func CertifySchedule(g *Graph, sched []V, opts CertifyOptions) (*Certificate, error) {
	return core.Certify(g, sched, opts)
}

// AnalyzeExpansion reports whether the prior edge-expansion technique
// applies to the algorithm's base graph.
func AnalyzeExpansion(alg *Algorithm) ExpansionReport { return expansion.Analyze(alg) }

// Parallel simulations.

// CannonResult reports a Cannon run.
type CannonResult = parallel.CannonResult

// CAPSResult reports a CAPS run.
type CAPSResult = parallel.CAPSResult

// TwoPointFiveDResult reports a 2.5D run.
type TwoPointFiveDResult = parallel.TwoPointFiveDResult

// RunCannon simulates Cannon's algorithm on a p×p grid.
func RunCannon(n, p int) (CannonResult, error) { return parallel.Cannon(n, p) }

// RunTwoPointFiveD simulates the 2.5D algorithm on a p×p×c grid.
func RunTwoPointFiveD(n, p, c int) (TwoPointFiveDResult, error) {
	return parallel.TwoPointFiveD(n, p, c)
}

// RunCAPS simulates the CAPS-style parallel Strassen-like algorithm.
func RunCAPS(alg *Algorithm, n, p int, m int64) (CAPSResult, error) {
	return parallel.CAPS(alg, n, p, m)
}

// Dense matrix helpers.

// NewDense returns a zero matrix.
func NewDense(rows, cols int) *Dense { return matrix.NewDense(rows, cols) }

// RandomDense returns a random matrix with entries in [-1, 1).
func RandomDense(rows, cols int, rng *rand.Rand) *Dense { return matrix.Random(rows, cols, rng) }

// Mul multiplies classically.
func Mul(a, b *Dense) *Dense { return matrix.Mul(a, b) }

// MulBlocked multiplies with square blocking (classical I/O-optimal
// layout for block size √(M/3)).
func MulBlocked(a, b *Dense, blockSize int) *Dense { return matrix.MulBlocked(a, b, blockSize) }

// MulFast multiplies with the recursive Strassen-like algorithm.
func MulFast(alg *Algorithm, a, b *Dense, cutoff int) *Dense {
	return matrix.Fast(alg, a, b, cutoff)
}

// Extensions beyond the paper's proven statements.

// MatchingComparison reports the greedy-vs-Hall matching ablation.
type MatchingComparison = routing.MatchingComparison

// CompareMatchings quantifies what the Theorem 3 Hall matching buys:
// it routes G_k once with the capacity-n₀ matching and once with a
// naive greedy assignment and reports both max hit counts against the
// 6aᵏ bound.
func CompareMatchings(alg *Algorithm, k int) (MatchingComparison, error) {
	return routing.CompareMatchings(alg, k)
}

// VerifySection8 runs the Routing Theorem verification with vertices
// identified by value class (the paper's one-vertex-per-value model) —
// an empirical test of the Section 8 conjecture that the standing
// assumption can be lifted. Stats.MaxMetaHits carries the per-class
// path count.
func VerifySection8(alg *Algorithm, k int) (RoutingStats, error) {
	g, err := cdag.New(alg, k)
	if err != nil {
		return RoutingStats{}, err
	}
	r, err := routing.NewRouter(g)
	if err != nil {
		return RoutingStats{}, err
	}
	return r.VerifyValueClassRouting()
}

// PartitionResult reports a rank-balanced CDAG partition's
// communication.
type PartitionResult = parallel.PartitionResult

// PartitionStyle selects the per-rank assignment rule.
type PartitionStyle = parallel.PartitionStyle

// Partition assignment rules.
const (
	// PartitionContiguous assigns index-contiguous shares.
	PartitionContiguous = parallel.Contiguous
	// PartitionShuffled assigns random shares.
	PartitionShuffled = parallel.Shuffled
)

// RankBalancedPartition assigns G_r's vertices to P processors rank by
// rank and counts forced communication — the setting of Theorem 1's
// cache-independent bound.
func RankBalancedPartition(g *Graph, p int, style PartitionStyle, rng *rand.Rand) (PartitionResult, error) {
	return parallel.RankBalancedPartition(g, p, style, rng)
}

// VerifyLemma6 checks Winograd's multiplication bound (Lemma 6) on
// every product subset of the base graph (exhaustive for b ≤ 14, or
// nTrials random subsets otherwise).
func VerifyLemma6(alg *Algorithm, rng *rand.Rand, nTrials int) error {
	if alg.B() <= 14 {
		return bilinear.VerifyLemma6Exhaustive(alg)
	}
	return bilinear.VerifyLemma6Random(alg, rng, nTrials)
}

// Liveness reports the live-set profile of a schedule (pebble machine).
type Liveness = pebble.Liveness

// AnalyzeLiveness computes the live-set profile of a schedule: the peak
// is the smallest cache size at which the schedule runs with compulsory
// I/O only.
func AnalyzeLiveness(g *Graph, sched []V) (Liveness, error) {
	return pebble.AnalyzeLiveness(g, sched)
}

// ArithmeticOps returns the exact arithmetic operation count of the
// recursive algorithm on n₀^r × n₀^r matrices.
func ArithmeticOps(alg *Algorithm, r int) int64 { return bounds.ArithmeticOps(alg, r) }

// MinFeasibleM returns the smallest cache the pebble machine needs for
// the algorithm's CDAG (max fan-in + 1).
func MinFeasibleM(alg *Algorithm) int { return bounds.MinFeasibleM(alg) }

// MissCurve is the result of a Mattson stack-distance pass: the LRU
// miss count for every cache size at once.
type MissCurve = pebble.MissCurve

// AnalyzeStackDistances computes the full LRU miss curve of a schedule
// in one pass.
func AnalyzeStackDistances(g *Graph, sched []V) (*MissCurve, error) {
	return pebble.AnalyzeStackDistances(g, sched)
}

// Duals returns the verified symmetry family of the algorithm (the
// tensor's S₃-orbit members that pass exact verification).
func Duals(alg *Algorithm) []*Algorithm { return bilinear.Duals(alg) }

// MarshalAlgorithm serializes a verified algorithm to JSON with exact
// rational coefficients.
func MarshalAlgorithm(alg *Algorithm) ([]byte, error) { return bilinear.MarshalAlgorithm(alg) }

// UnmarshalAlgorithm parses and Brent-verifies an algorithm from JSON.
func UnmarshalAlgorithm(data []byte) (*Algorithm, error) { return bilinear.UnmarshalAlgorithm(data) }

// RandomOrbitAlgorithm draws a verified algorithm from the de Groote
// symmetry orbit of base (nil for Strassen's).
func RandomOrbitAlgorithm(rng *rand.Rand, base *Algorithm) (*Algorithm, error) {
	return bilinear.RandomAlgorithm(rng, base)
}

// Section5Certificate is the outcome of the paper's simpler Section 5
// argument (Equation (1), decoding-only counting).
type Section5Certificate = core.Section5Certificate

// CertifySection5 machine-checks the Section 5 argument (66M quota,
// |δ(S)| ≥ |S̄|/22) on a schedule; it refuses algorithms with
// disconnected base decoding graphs — exactly the gap Section 6 closes.
func CertifySection5(g *Graph, sched []V, k int, m int64) (*Section5Certificate, error) {
	return core.CertifySection5(g, sched, k, m)
}

// ParallelCertificate is the outcome of the executable parallel
// argument (busiest-processor segmenting).
type ParallelCertificate = core.ParallelCertificate

// CertifyParallel applies the paper's parallel step: segment the
// computation sequence of the processor owning the most counted
// vertices and certify the words it must move.
func CertifyParallel(g *Graph, sched []V, owner []int32, p, k int, m, relaxedTarget int64) (*ParallelCertificate, error) {
	return core.CertifyParallel(g, sched, owner, p, k, m, relaxedTarget)
}

// BuildHybridSchedule returns the depth-bounded blocked order: DFS to
// the given depth, rank-major below (the schedule-structure ablation
// between ScheduleRankByRank and ScheduleDFS).
func BuildHybridSchedule(g *Graph, depth int) []V { return schedule.HybridDFS(g, depth) }

// VerifyRoutingTheoremParallel is VerifyRoutingTheorem distributed over
// a worker pool (workers ≤ 0 uses GOMAXPROCS); results are identical.
func VerifyRoutingTheoremParallel(alg *Algorithm, k, workers int) (RoutingStats, error) {
	g, err := cdag.New(alg, k)
	if err != nil {
		return RoutingStats{}, err
	}
	r, err := routing.NewRouter(g)
	if err != nil {
		return RoutingStats{}, err
	}
	return r.VerifyFullRoutingParallel(workers)
}

// Checkpointed verification (crash-safe long runs).

// RoutingCheckpointConfig configures VerifyRoutingTheoremCheckpointed.
type RoutingCheckpointConfig = routing.CheckpointConfig

// RoutingShardDone is the per-shard completion notification delivered
// to RoutingCheckpointConfig.OnShard.
type RoutingShardDone = routing.ShardDone

// ErrRoutingPaused is wrapped by the error a checkpointed verification
// returns when MaxShards stops it before completion; test with
// errors.Is. The checkpoint file holds all completed work.
var ErrRoutingPaused = routing.ErrPaused

// VerifyRoutingTheoremCheckpointed is VerifyRoutingTheoremParallel with
// sharded crash-safe persistence: completed shards are merged into the
// checkpoint file as the run proceeds, and a run resumed from that file
// skips them, producing final stats bit-identical to an uninterrupted
// run at any worker count.
func VerifyRoutingTheoremCheckpointed(alg *Algorithm, k, workers int, cfg RoutingCheckpointConfig) (RoutingStats, error) {
	g, err := cdag.New(alg, k)
	if err != nil {
		return RoutingStats{}, err
	}
	r, err := routing.NewRouter(g)
	if err != nil {
		return RoutingStats{}, err
	}
	return r.VerifyFullRoutingCheckpointed(workers, cfg)
}

// MulFastParallel is MulFast with the top-level subproducts computed
// concurrently (workers ≤ 0 uses GOMAXPROCS).
func MulFastParallel(alg *Algorithm, a, b *Dense, cutoff, workers int) *Dense {
	return matrix.FastParallel(alg, a, b, cutoff, workers)
}

// SweepResult pairs a cache size with measured I/O in a sweep.
type SweepResult = pebble.SweepResult

// SweepIO simulates the schedule at every listed cache size
// concurrently under the policy.
func SweepIO(g *Graph, sched []V, policy Policy, ms []int, workers int) []SweepResult {
	return pebble.SweepM(g, sched, policy, ms, workers)
}
