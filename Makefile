# Tier-1 verify loop: static analysis, build+tests, and a race pass
# over the concurrent verification engine.
GO ?= go
RESUME_DIR ?= .verify-resume
OBS_DIR ?= .obs-smoke
ROUTED_DIR ?= .routed-smoke

.PHONY: verify build test vet vet386 race bench-routing bench bench-diff bench-smoke verify-resume obs-smoke routed-smoke

# Routing benchmarks: the adjacency-index and parallel-verification
# suites plus the A9 enumeration-kernel ablation, the A10 orbit
# reduction, and the A11 stage-1/stage-2 orbit kernel comparison;
# -benchmem adds the B/op and allocs/op columns the kernel work is
# judged by.
BENCH_PATTERN = BenchmarkVerifyFullRoutingAdjacency|BenchmarkA7ParallelVerification|BenchmarkA9EnumerationKernel|BenchmarkA10OrbitReduction|BenchmarkA11StageTwoKernel

verify: vet test race vet386

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# 32-bit build + vet pass: catches int-width truncation bugs (like the
# nzKey byte(idx) collision and unguarded int(int64) casts on the
# checkpoint claim path) that are invisible on 64-bit hosts.
vet386:
	GOARCH=386 $(GO) build ./...
	GOARCH=386 $(GO) vet ./...

# The routing package owns all the goroutine fan-out (parallel
# Routing Theorem verification, lazy CSR index construction), the
# serve package layers SSE fan-out and the job broadcaster on top, and
# the obs package's runtime sampler publishes into the registry the
# debug server scrapes concurrently; run all three under the race
# detector on every verify.
race:
	$(GO) test -race ./internal/routing/... ./internal/serve/... ./internal/obs/...

bench-routing:
	$(GO) test -run xxx -bench '$(BENCH_PATTERN)' -benchtime 5x -benchmem .

# Machine-readable routing benchmark results (paths/s and allocation
# columns next to ns/op), via the stdlib-only converter in
# cmd/benchjson — no jq required. Single shell + trap so the
# intermediate .out is removed even when the bench or the converter
# fails.
bench:
	@set -e; trap 'rm -f bench_routing.out' EXIT; \
	$(GO) test -run xxx -bench '$(BENCH_PATTERN)' -benchtime 5x -benchmem . > bench_routing.out; \
	$(GO) run ./cmd/benchjson -o BENCH_routing.json < bench_routing.out

# Benchmark regression diff: rerun the routing suite and compare the
# ns/op / B/op / allocs/op columns against the checked-in
# BENCH_routing.json baseline via cmd/benchjson. allocs/op is the hard
# leg (benchjson -hard, exit 4 fails the target and CI): allocation
# counts are deterministic, so a regression there is a real kernel
# change, never runner noise. The wall-clock columns stay soft —
# shared runners are too noisy to gate on ns/op — so benchjson's soft
# exit 3 is downgraded to a warning while the delta table in the log
# keeps the regression visible.
# benchjson is run as a built binary, not `go run`: go run collapses
# every non-zero child exit to 1, which would erase the soft-vs-hard
# distinction the gate depends on.
BENCH_TOLERANCE ?= 25
bench-diff:
	@set -e; trap 'rm -f bench_diff.out bench_diff.benchjson' EXIT; \
	$(GO) test -run xxx -bench '$(BENCH_PATTERN)' -benchtime 5x -benchmem . > bench_diff.out; \
	$(GO) build -o bench_diff.benchjson ./cmd/benchjson; \
	st=0; ./bench_diff.benchjson -baseline BENCH_routing.json -tolerance $(BENCH_TOLERANCE) -hard allocs/op < bench_diff.out || st=$$?; \
	if [ $$st -eq 3 ]; then echo "bench-diff: WARNING: soft (wall-clock) metric past $(BENCH_TOLERANCE)% — not failing the gate"; st=0; fi; \
	exit $$st

# CI smoke: one iteration of the parallel-verification benchmark, with
# allocation counts — catches a bench-harness or kernel regression
# without paying for a full measured run.
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkA7ParallelVerification' -benchtime 1x -benchmem .

# End-to-end checkpoint/resume acceptance check: pause a Strassen k=4
# verification after 3 of 8 shards, resume it at a different worker
# count, and require the final stats line to be byte-identical to an
# uninterrupted run. Exit code 3 is the verifier's "paused, rerun with
# -resume" signal. Single shell + trap so the scratch dir is removed
# even when a step fails.
verify-resume:
	@set -e; trap 'rm -rf $(RESUME_DIR)' EXIT; \
	rm -rf $(RESUME_DIR); mkdir -p $(RESUME_DIR); \
	$(GO) build -o $(RESUME_DIR)/routecheck ./cmd/routecheck; \
	st=0; $(RESUME_DIR)/routecheck -alg strassen -k 4 -workers 3 -shardrows 64 -maxshards 3 \
		-checkpoint $(RESUME_DIR)/k4.ckpt -journal $(RESUME_DIR)/runs.jsonl \
		> $(RESUME_DIR)/paused.out || st=$$?; \
	if [ $$st -ne 3 ]; then echo "expected pause exit 3, got $$st"; exit 1; fi; \
	$(RESUME_DIR)/routecheck -alg strassen -k 4 -workers 5 \
		-checkpoint $(RESUME_DIR)/k4.ckpt -resume -journal $(RESUME_DIR)/runs.jsonl \
		> $(RESUME_DIR)/resumed.out; \
	$(RESUME_DIR)/routecheck -alg strassen -k 4 -workers 2 > $(RESUME_DIR)/fresh.out; \
	grep '^stats:' $(RESUME_DIR)/resumed.out > $(RESUME_DIR)/resumed.stats; \
	grep '^stats:' $(RESUME_DIR)/fresh.out > $(RESUME_DIR)/fresh.stats; \
	cmp $(RESUME_DIR)/resumed.stats $(RESUME_DIR)/fresh.stats; \
	$(RESUME_DIR)/routecheck -summarize $(RESUME_DIR)/runs.jsonl; \
	echo "verify-resume: PASS — resumed stats byte-identical to an uninterrupted run"

# Observability acceptance check: run a real verification with the
# debug server on an ephemeral port, scrape /metrics and /healthz, and
# assert the routing metric families and the live progress document are
# there. -debughold keeps the server up after the (short) run so the
# scrape cannot race its exit.
obs-smoke:
	@set -e; pid=""; trap 'rm -rf $(OBS_DIR); [ -z "$$pid" ] || kill $$pid 2>/dev/null || true' EXIT; \
	rm -rf $(OBS_DIR); mkdir -p $(OBS_DIR); \
	$(GO) build -o $(OBS_DIR)/routecheck ./cmd/routecheck; \
	$(OBS_DIR)/routecheck -alg strassen -k 4 -shardrows 64 \
		-checkpoint $(OBS_DIR)/k4.ckpt -debugaddr 127.0.0.1:0 -debughold 60s \
		> $(OBS_DIR)/run.out 2> $(OBS_DIR)/run.err & pid=$$!; \
	url=""; i=0; while [ $$i -lt 100 ]; do \
		url=$$(sed -n 's/^debug server listening on //p' $(OBS_DIR)/run.err); \
		[ -n "$$url" ] && break; i=$$((i+1)); sleep 0.1; done; \
	if [ -z "$$url" ]; then echo "obs-smoke: debug server never announced its URL"; cat $(OBS_DIR)/run.err; exit 1; fi; \
	ok=""; i=0; while [ $$i -lt 100 ]; do \
		if curl -sf "$$url/healthz" > $(OBS_DIR)/healthz.json 2>/dev/null \
			&& grep -q '"progress"' $(OBS_DIR)/healthz.json \
			&& grep -q '"checkpoint_shards"' $(OBS_DIR)/healthz.json; then ok=1; break; fi; \
		i=$$((i+1)); sleep 0.1; done; \
	if [ -z "$$ok" ]; then echo "obs-smoke: /healthz never reported progress + shard coverage"; cat $(OBS_DIR)/healthz.json 2>/dev/null; exit 1; fi; \
	grep -q '"status": "ok"' $(OBS_DIR)/healthz.json; \
	curl -sf "$$url/metrics" > $(OBS_DIR)/metrics.txt; \
	grep -q '^# TYPE routing_paths_verified_total counter' $(OBS_DIR)/metrics.txt; \
	grep -q '^routing_paths_verified_total ' $(OBS_DIR)/metrics.txt; \
	grep -q '^routing_paths_per_second ' $(OBS_DIR)/metrics.txt; \
	grep -q '^# TYPE routing_shard_enumerate_seconds histogram' $(OBS_DIR)/metrics.txt; \
	grep -q '^routing_shard_enumerate_seconds_bucket{le="+Inf"} ' $(OBS_DIR)/metrics.txt; \
	curl -sfo /dev/null "$$url/debug/pprof/"; \
	echo "obs-smoke: PASS — /metrics and /healthz live on $$url"

# Verification-service acceptance check, two legs against real daemons
# on ephemeral ports. Cache leg: submit a job, poll it to completion,
# resubmit the identical spec, and require the response to be served
# from the result cache — "cached": true and the engine's
# routing_paths_verified_total counter not advancing (nothing was
# re-enumerated). Durability leg: submit a 76-shard job to a daemon
# started with the -crashaftershards failpoint, let it die mid-job
# (exit 2, checkpoints flushed per shard), restart over the same data
# dir, and require the recovered job to resume and finish with a
# certificate byte-identical to the uninterrupted run from the first
# leg. The resume is watched two ways at once: an SSE stream on
# /jobs/{id}/events whose terminal `final` event must carry the same
# certificate the polling loop sees, and the per-job journals of both
# daemon generations, which routelog must merge into a single trace
# (the trace ID is persisted with the spec, so the crash and resume
# legs share one identity). The resumed job's final doc must also
# carry a populated resources block with legs=2 — cost accounting
# accumulated across both daemon generations, not reset by the crash —
# and a manually triggered pprof capture must land in the ring and be
# retrievable from /debug/captures.
routed-smoke:
	@set -e; pids=""; trap 'rm -rf $(ROUTED_DIR); [ -z "$$pids" ] || kill $$pids 2>/dev/null || true' EXIT; \
	rm -rf $(ROUTED_DIR); mkdir -p $(ROUTED_DIR); \
	$(GO) build -o $(ROUTED_DIR)/routed ./cmd/routed; \
	$(ROUTED_DIR)/routed -addr 127.0.0.1:0 -datadir $(ROUTED_DIR)/data1 \
		-journal $(ROUTED_DIR)/d1.jsonl 2> $(ROUTED_DIR)/d1.err & pids="$$!"; \
	url=""; i=0; while [ $$i -lt 100 ]; do \
		url=$$(sed -n 's/^routed listening on //p' $(ROUTED_DIR)/d1.err); \
		[ -n "$$url" ] && break; i=$$((i+1)); sleep 0.1; done; \
	if [ -z "$$url" ]; then echo "routed-smoke: daemon1 never announced its URL"; cat $(ROUTED_DIR)/d1.err; exit 1; fi; \
	curl -sf -X POST -d '{"alg":"strassen","k":2}' "$$url/jobs" > $(ROUTED_DIR)/submit1.json; \
	id=$$(sed -n 's/^  "id": "\(j[0-9]*\)",*$$/\1/p' $(ROUTED_DIR)/submit1.json); \
	if [ -z "$$id" ]; then echo "routed-smoke: no job id in submit response"; cat $(ROUTED_DIR)/submit1.json; exit 1; fi; \
	ok=""; i=0; while [ $$i -lt 600 ]; do \
		curl -sf "$$url/jobs/$$id" > $(ROUTED_DIR)/job1.json; \
		if grep -q '"state": "done"' $(ROUTED_DIR)/job1.json; then ok=1; break; fi; \
		i=$$((i+1)); sleep 0.1; done; \
	if [ -z "$$ok" ]; then echo "routed-smoke: job $$id never completed"; cat $(ROUTED_DIR)/job1.json; exit 1; fi; \
	curl -sf "$$url/metrics" | sed -n 's/^routing_paths_verified_total //p' > $(ROUTED_DIR)/paths1; \
	curl -sf -X POST -d '{"alg":"strassen","k":2}' "$$url/jobs" > $(ROUTED_DIR)/submit2.json; \
	grep -q '"cached": true' $(ROUTED_DIR)/submit2.json \
		|| { echo "routed-smoke: resubmission missed the result cache"; cat $(ROUTED_DIR)/submit2.json; exit 1; }; \
	curl -sf "$$url/metrics" | sed -n 's/^routing_paths_verified_total //p' > $(ROUTED_DIR)/paths2; \
	cmp $(ROUTED_DIR)/paths1 $(ROUTED_DIR)/paths2 \
		|| { echo "routed-smoke: cache hit re-enumerated paths"; exit 1; }; \
	curl -sf -X POST -d '{"alg":"strassen","k":4,"shardrows":64}' "$$url/jobs" > $(ROUTED_DIR)/submit3.json; \
	id=$$(sed -n 's/^  "id": "\(j[0-9]*\)",*$$/\1/p' $(ROUTED_DIR)/submit3.json); \
	ok=""; i=0; while [ $$i -lt 3600 ]; do \
		curl -sf "$$url/jobs/$$id" > $(ROUTED_DIR)/job3.json; \
		if grep -q '"state": "done"' $(ROUTED_DIR)/job3.json; then ok=1; break; fi; \
		i=$$((i+1)); sleep 0.1; done; \
	if [ -z "$$ok" ]; then echo "routed-smoke: reference k=4 job never completed"; cat $(ROUTED_DIR)/job3.json; exit 1; fi; \
	sed -n 's/^  "certificate": "\(.*\)",*$$/\1/p' $(ROUTED_DIR)/job3.json > $(ROUTED_DIR)/fresh.cert; \
	[ -s $(ROUTED_DIR)/fresh.cert ] || { echo "routed-smoke: no certificate in reference job"; exit 1; }; \
	$(ROUTED_DIR)/routed -addr 127.0.0.1:0 -datadir $(ROUTED_DIR)/data2 \
		-journal $(ROUTED_DIR)/d2.jsonl \
		-crashaftershards 3 2> $(ROUTED_DIR)/d2.err & cpid=$$!; \
	url2=""; i=0; while [ $$i -lt 100 ]; do \
		url2=$$(sed -n 's/^routed listening on //p' $(ROUTED_DIR)/d2.err); \
		[ -n "$$url2" ] && break; i=$$((i+1)); sleep 0.1; done; \
	if [ -z "$$url2" ]; then echo "routed-smoke: failpoint daemon never announced its URL"; cat $(ROUTED_DIR)/d2.err; exit 1; fi; \
	curl -sf -X POST -d '{"alg":"strassen","k":4,"shardrows":64}' "$$url2/jobs" > $(ROUTED_DIR)/submit4.json; \
	st=0; wait $$cpid || st=$$?; \
	if [ $$st -ne 2 ]; then echo "routed-smoke: expected failpoint exit 2, got $$st"; cat $(ROUTED_DIR)/d2.err; exit 1; fi; \
	grep -q 'failpoint' $(ROUTED_DIR)/d2.err; \
	$(ROUTED_DIR)/routed -addr 127.0.0.1:0 -datadir $(ROUTED_DIR)/data2 \
		-journal $(ROUTED_DIR)/d3.jsonl \
		2> $(ROUTED_DIR)/d3.err & pids="$$pids $$!"; \
	url3=""; i=0; while [ $$i -lt 100 ]; do \
		url3=$$(sed -n 's/^routed listening on //p' $(ROUTED_DIR)/d3.err); \
		[ -n "$$url3" ] && break; i=$$((i+1)); sleep 0.1; done; \
	if [ -z "$$url3" ]; then echo "routed-smoke: restarted daemon never announced its URL"; cat $(ROUTED_DIR)/d3.err; exit 1; fi; \
	curl -sN "$$url3/jobs/j00000001/events" > $(ROUTED_DIR)/sse.out & pids="$$pids $$!"; \
	ok=""; i=0; while [ $$i -lt 3600 ]; do \
		curl -sf "$$url3/jobs/j00000001" > $(ROUTED_DIR)/job4.json; \
		if grep -q '"state": "done"' $(ROUTED_DIR)/job4.json; then ok=1; break; fi; \
		i=$$((i+1)); sleep 0.1; done; \
	if [ -z "$$ok" ]; then echo "routed-smoke: crashed job never resumed to completion"; cat $(ROUTED_DIR)/job4.json; exit 1; fi; \
	grep -q '"resumed": true' $(ROUTED_DIR)/job4.json \
		|| { echo "routed-smoke: recovered job not marked resumed"; cat $(ROUTED_DIR)/job4.json; exit 1; }; \
	sed -n 's/^  "certificate": "\(.*\)",*$$/\1/p' $(ROUTED_DIR)/job4.json > $(ROUTED_DIR)/resumed.cert; \
	cmp $(ROUTED_DIR)/resumed.cert $(ROUTED_DIR)/fresh.cert \
		|| { echo "routed-smoke: resumed certificate differs from uninterrupted run"; exit 1; }; \
	ok=""; i=0; while [ $$i -lt 100 ]; do \
		if grep -q '^event: final' $(ROUTED_DIR)/sse.out 2>/dev/null; then ok=1; break; fi; \
		i=$$((i+1)); sleep 0.1; done; \
	if [ -z "$$ok" ]; then echo "routed-smoke: SSE stream never delivered a final event"; cat $(ROUTED_DIR)/sse.out; exit 1; fi; \
	sed -n '/^event: final/{n;s/.*"certificate":"\([^"]*\)".*/\1/p;}' $(ROUTED_DIR)/sse.out > $(ROUTED_DIR)/sse.cert; \
	cmp $(ROUTED_DIR)/sse.cert $(ROUTED_DIR)/fresh.cert \
		|| { echo "routed-smoke: SSE terminal certificate differs from polled certificate"; cat $(ROUTED_DIR)/sse.out; exit 1; }; \
	grep -q '"legs": 2' $(ROUTED_DIR)/job4.json \
		|| { echo "routed-smoke: resumed job doc lacks accumulated resources (legs 2)"; cat $(ROUTED_DIR)/job4.json; exit 1; }; \
	grep -q '"wall_sec"' $(ROUTED_DIR)/job4.json && grep -q '"queue_wait_sec"' $(ROUTED_DIR)/job4.json \
		|| { echo "routed-smoke: resumed job doc has no cost attribution"; cat $(ROUTED_DIR)/job4.json; exit 1; }; \
	curl -sf -X POST "$$url3/debug/captures?reason=smoke" > $(ROUTED_DIR)/capture.json; \
	grep -q '"reason": "smoke"' $(ROUTED_DIR)/capture.json \
		|| { echo "routed-smoke: manual capture trigger failed"; cat $(ROUTED_DIR)/capture.json; exit 1; }; \
	hf=$$(sed -n 's/^  "heap_file": "\(.*\)",*$$/\1/p' $(ROUTED_DIR)/capture.json); \
	[ -n "$$hf" ] || { echo "routed-smoke: capture has no heap file"; cat $(ROUTED_DIR)/capture.json; exit 1; }; \
	curl -sfo $(ROUTED_DIR)/capture.heap "$$url3/debug/captures/$$hf" \
		|| { echo "routed-smoke: capture heap profile not retrievable"; exit 1; }; \
	[ -s $(ROUTED_DIR)/capture.heap ] || { echo "routed-smoke: capture heap profile empty"; exit 1; }; \
	curl -sf "$$url3/debug/captures" | grep -q '"total": 1' \
		|| { echo "routed-smoke: capture ring does not list the capture"; exit 1; }; \
	tr2=$$(sed -n 's/^  "trace": "\(.*\)",*$$/\1/p' $(ROUTED_DIR)/job4.json); \
	[ -n "$$tr2" ] || { echo "routed-smoke: resumed job has no trace ID"; cat $(ROUTED_DIR)/job4.json; exit 1; }; \
	$(GO) run ./cmd/routelog $(ROUTED_DIR)/d2.jsonl $(ROUTED_DIR)/d3.jsonl > $(ROUTED_DIR)/routelog.out; \
	[ $$(grep -c "^trace $$tr2" $(ROUTED_DIR)/routelog.out) -eq 1 ] \
		|| { echo "routed-smoke: crash and resume legs did not merge into one trace"; cat $(ROUTED_DIR)/routelog.out; exit 1; }; \
	grep "^trace $$tr2" $(ROUTED_DIR)/routelog.out | grep -q 'final paths=' \
		|| { echo "routed-smoke: merged trace has no final"; cat $(ROUTED_DIR)/routelog.out; exit 1; }; \
	grep -q '^ waterfall:' $(ROUTED_DIR)/routelog.out \
		|| { echo "routed-smoke: routelog produced no waterfall"; cat $(ROUTED_DIR)/routelog.out; exit 1; }; \
	echo "routed-smoke: PASS — cache hit served without re-enumeration; crashed job resumed to a byte-identical certificate (polled and streamed) with two-leg cost accounting; capture ring live; routelog merged both legs into one trace"
