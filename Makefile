# Tier-1 verify loop: static analysis, build+tests, and a race pass
# over the concurrent verification engine.
GO ?= go
RESUME_DIR ?= .verify-resume

.PHONY: verify build test vet race bench-routing bench verify-resume

verify: vet test race

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The routing package owns all the goroutine fan-out (parallel
# Routing Theorem verification, lazy CSR index construction); run it
# under the race detector on every verify.
race:
	$(GO) test -race ./internal/routing/...

bench-routing:
	$(GO) test -run xxx -bench 'BenchmarkVerifyFullRoutingAdjacency|BenchmarkA7ParallelVerification' -benchtime 5x .

# Machine-readable routing benchmark results (paths/s next to ns/op),
# via the stdlib-only converter in cmd/benchjson — no jq required.
bench:
	$(GO) test -run xxx -bench 'BenchmarkVerifyFullRoutingAdjacency|BenchmarkA7ParallelVerification' -benchtime 5x . > bench_routing.out
	$(GO) run ./cmd/benchjson -o BENCH_routing.json < bench_routing.out
	@rm -f bench_routing.out

# End-to-end checkpoint/resume acceptance check: pause a Strassen k=4
# verification after 3 of 8 shards, resume it at a different worker
# count, and require the final stats line to be byte-identical to an
# uninterrupted run. Exit code 3 is the verifier's "paused, rerun with
# -resume" signal.
verify-resume:
	@rm -rf $(RESUME_DIR)
	@mkdir -p $(RESUME_DIR)
	$(GO) build -o $(RESUME_DIR)/routecheck ./cmd/routecheck
	$(RESUME_DIR)/routecheck -alg strassen -k 4 -workers 3 -shardrows 64 -maxshards 3 \
		-checkpoint $(RESUME_DIR)/k4.ckpt -journal $(RESUME_DIR)/runs.jsonl \
		> $(RESUME_DIR)/paused.out; st=$$?; \
		if [ $$st -ne 3 ]; then echo "expected pause exit 3, got $$st"; exit 1; fi
	$(RESUME_DIR)/routecheck -alg strassen -k 4 -workers 5 \
		-checkpoint $(RESUME_DIR)/k4.ckpt -resume -journal $(RESUME_DIR)/runs.jsonl \
		> $(RESUME_DIR)/resumed.out
	$(RESUME_DIR)/routecheck -alg strassen -k 4 -workers 2 > $(RESUME_DIR)/fresh.out
	grep '^stats:' $(RESUME_DIR)/resumed.out > $(RESUME_DIR)/resumed.stats
	grep '^stats:' $(RESUME_DIR)/fresh.out > $(RESUME_DIR)/fresh.stats
	cmp $(RESUME_DIR)/resumed.stats $(RESUME_DIR)/fresh.stats
	$(RESUME_DIR)/routecheck -summarize $(RESUME_DIR)/runs.jsonl
	@rm -rf $(RESUME_DIR)
	@echo "verify-resume: PASS — resumed stats byte-identical to an uninterrupted run"
