# Tier-1 verify loop: static analysis, build+tests, and a race pass
# over the concurrent verification engine.
GO ?= go

.PHONY: verify build test vet race bench-routing

verify: vet test race

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The routing package owns all the goroutine fan-out (parallel
# Routing Theorem verification, lazy CSR index construction); run it
# under the race detector on every verify.
race:
	$(GO) test -race ./internal/routing/...

bench-routing:
	$(GO) test -run xxx -bench 'BenchmarkVerifyFullRoutingAdjacency|BenchmarkA7ParallelVerification' -benchtime 5x .
